// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding result at
// the scaled bench size and prints the rendered table/series, so
//
//	go test -bench=. -benchmem
//
// produces the full reproduction report (EXPERIMENTS.md compares it
// against the paper). Run a single experiment with e.g.
//
//	go test -bench=BenchmarkTable2
//
// Paper-scale runs are available through cmd/ciabench -paper.
package ciarec

import (
	"fmt"
	"sync"
	"testing"

	"github.com/collablearn/ciarec/internal/experiments"
)

// benchSpec is shared by all benchmarks; rendering happens once per
// benchmark regardless of b.N (the runners are deterministic in the
// seed, so re-running them would measure the same work).
func benchSpec() experiments.Spec { return experiments.BenchSpec() }

// printOnce deduplicates table output across -benchtime iterations.
var printOnce sync.Map

func report(b *testing.B, key, out string) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Println(out)
	}
}

func BenchmarkTable2_FedRecsCIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table2", experiments.RenderRows("Table II: CIA on FedRecs", rows))
	}
}

func BenchmarkTable3_GossipCIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table3", experiments.RenderRows("Table III: CIA on GossipRecs", rows))
	}
}

func BenchmarkTable4_Collusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table4", experiments.RenderRows("Table IV: collusion in Rand-Gossip (GMF, MovieLens-like)", rows))
	}
}

func BenchmarkTable5_CollusionShareLess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table5", experiments.RenderRows("Table V: collusion under Share-less", rows))
	}
}

func BenchmarkTable6_Momentum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable6(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table6", experiments.RenderRows("Table VI: momentum ablation under collusion", rows))
	}
}

func BenchmarkTable7_KSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable7(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table7", experiments.RenderTable7(rows))
	}
}

func BenchmarkTable8_MIAProxy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable8(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table8", experiments.RenderTable8(res))
	}
}

func BenchmarkTable9_Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable9(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "table9", experiments.RenderTable9(res))
	}
}

func BenchmarkFigure1_HealthCommunity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig1", experiments.RenderFigure1(res))
	}
}

func BenchmarkFigure3_GMFTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFigure3(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig3", experiments.RenderTradeoff("Figure 3: GMF privacy/utility trade-off", "HR", points))
	}
}

func BenchmarkFigure4_PRMETradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFigure4(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig4", experiments.RenderTradeoff("Figure 4: PRME privacy/utility trade-off", "F1", points))
	}
}

func BenchmarkFigure5_DPSGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFigure5(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig5", experiments.RenderFigure5(points))
	}
}

func BenchmarkSection8E_Universality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunUniversality(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "sec8e", experiments.RenderUniversality(res))
	}
}

func BenchmarkSection8C_AIAProxy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAIAComparison(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "sec8c2", experiments.RenderAIAComparison(res))
	}
}

// The remaining benchmarks cover the design-choice ablations of
// DESIGN.md §6 plus the Secure-Aggregation extension of §IX — not
// numbered results in the paper, but the studies that justify them.

func BenchmarkAblation_SecureAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSecureAggAblation(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-sa", experiments.RenderSecureAggAblation(rows))
	}
}

func BenchmarkAblation_StaticGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunStaticGraphAblation(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-static", experiments.RenderStaticGraphAblation(rows))
	}
}

func BenchmarkAblation_FictiveUser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFictiveAblation(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-fictive", experiments.RenderFictiveAblation(rows))
	}
}

func BenchmarkAblation_PRMERelevance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRelevanceAblation(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-relevance", experiments.RenderRelevanceAblation(rows))
	}
}

func BenchmarkAblation_Participation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunParticipationAblation(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl-participation", experiments.RenderParticipationAblation(rows))
	}
}

func BenchmarkExtension_ModelFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunModelFamilyStudy(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "ext-modelfamily", experiments.RenderModelFamilyStudy(rows))
	}
}

func BenchmarkExtension_Sparsification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSparsifyStudy(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "ext-sparsify", experiments.RenderSparsifyStudy(rows))
	}
}
