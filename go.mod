module github.com/collablearn/ciarec

go 1.24.0
