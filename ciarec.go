// Package ciarec is a Go implementation of the Community Inference
// Attack (CIA) on collaborative-learning recommender systems, together
// with every substrate the attack is evaluated on in
//
//	Belal, Maouche, Ben Mokhtar, Simonet-Boulogne.
//	"Inferring Communities of Interest in Collaborative
//	Learning-based Recommender Systems", IEEE ICDCS 2025.
//	(arXiv:2306.08929)
//
// The library simulates Federated (FedAvg) and Gossip-Learning
// (Rand-Gossip, Pers-Gossip) recommender systems training GMF or PRME
// models, runs the comparison-based CIA from any adversary vantage
// point (server, single gossip node, colluding coalition), and
// evaluates the paper's two defenses (the Share-less policy and
// user-level DP-SGD).
//
// # Quick start
//
//	data := ciarec.MovieLensLike(0.15, 1)
//	data.SplitLeaveOneOut()
//	report, err := ciarec.Run(ciarec.RunConfig{
//		Dataset:  data,
//		Model:    ciarec.GMF,
//		Protocol: ciarec.Federated,
//		Rounds:   25,
//	})
//	// report.MaxAAC vs report.RandomBound quantifies the leakage.
//
// See the examples/ directory for runnable end-to-end scenarios and
// EXPERIMENTS.md for the paper-reproduction results.
package ciarec

import (
	"fmt"

	"github.com/collablearn/ciarec/internal/dataset"
)

// ModelFamily selects the recommendation model (§V-B).
type ModelFamily string

const (
	// GMF is Generalized Matrix Factorization (He et al. 2017).
	GMF ModelFamily = "gmf"
	// PRME is Personalized Ranking Metric Embedding (Feng et al. 2015).
	PRME ModelFamily = "prme"
	// BPRMF is matrix factorization with the BPR ranking loss (Rendle
	// et al. 2009) — an extension family beyond the paper's two,
	// showing CIA is not tied to a particular training objective.
	BPRMF ModelFamily = "bprmf"
	// NeuMF is Neural Matrix Factorization (He et al. 2017), the NCF
	// paper's GMF+MLP fusion — an extension family showing CIA
	// survives deeper architectures.
	NeuMF ModelFamily = "neumf"
)

// Protocol selects the collaborative-learning protocol (§V-D).
type Protocol string

const (
	// Federated is the classic FedAvg federation with a central server.
	Federated Protocol = "fl"
	// RandGossip is decentralized learning with uniform peer sampling.
	RandGossip Protocol = "rand-gossip"
	// PersGossip is personalization-oriented gossip (Pepper-style
	// performance-aware peer sampling).
	PersGossip Protocol = "pers-gossip"
)

// Dataset is an implicit-feedback interaction dataset. Construct one
// with MovieLensLike, FoursquareLike, GowallaLike, Generate or
// LoadMovieLens100K, then apply exactly one split before running.
type Dataset struct {
	inner *dataset.Dataset
	// splitOK caches a successful ensureSplit answer so repeated Run
	// calls don't rescan every user; splits only ever add held-out
	// interactions, so a positive answer never goes stale.
	splitOK bool
}

// MovieLensLike builds a synthetic dataset shaped like MovieLens-100k
// (943 users, 1682 items at scale 1) with planted taste communities.
// scale in (0, 1] shrinks it proportionally.
func MovieLensLike(scale float64, seed uint64) *Dataset {
	return &Dataset{inner: dataset.MovieLensLike(scale, seed)}
}

// FoursquareLike builds a synthetic dataset shaped like Foursquare-NYC
// (1083 users, 38333 POIs at scale 1), with POI categories including
// "Health & Medicine" and a small health-focused community, as in the
// paper's motivating example (§II).
func FoursquareLike(scale float64, seed uint64) *Dataset {
	return &Dataset{inner: dataset.FoursquareLike(scale, seed)}
}

// GowallaLike builds a synthetic dataset shaped like Gowalla-NYC
// (718 users, 32924 POIs at scale 1).
func GowallaLike(scale float64, seed uint64) *Dataset {
	return &Dataset{inner: dataset.GowallaLike(scale, seed)}
}

// LoadMovieLens100K parses a real MovieLens-100k `u.data` file for
// users who have the original trace.
func LoadMovieLens100K(path string) (*Dataset, error) {
	d, err := dataset.LoadMovieLens100K(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: d}, nil
}

// GenerateConfig parameterizes Generate, the custom synthetic-dataset
// constructor. Zero fields take sensible defaults; see the fields of
// the internal generator for the full generative model (topic-based
// planted communities with Zipf popularity).
type GenerateConfig struct {
	Name             string
	NumUsers         int
	NumItems         int
	NumCommunities   int
	MeanItemsPerUser int
	// Affinity in [0,1] is the probability an interaction comes from
	// the user's own community topic (default 0.8).
	Affinity float64
	Seed     uint64
}

// Generate builds a synthetic dataset with planted communities.
func Generate(cfg GenerateConfig) (*Dataset, error) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name:             cfg.Name,
		NumUsers:         cfg.NumUsers,
		NumItems:         cfg.NumItems,
		NumCommunities:   cfg.NumCommunities,
		MeanItemsPerUser: cfg.MeanItemsPerUser,
		Affinity:         cfg.Affinity,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: d}, nil
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return d.inner.NumUsers }

// NumItems returns the catalogue size.
func (d *Dataset) NumItems() int { return d.inner.NumItems }

// NumInteractions returns the number of training interactions.
func (d *Dataset) NumInteractions() int { return d.inner.NumInteractions() }

// TrainItems returns a copy of user u's training items in interaction
// order.
func (d *Dataset) TrainItems(u int) []int {
	return append([]int(nil), d.inner.Train[u]...)
}

// SplitLeaveOneOut holds out each user's last interaction (the GMF /
// HR@K evaluation protocol).
func (d *Dataset) SplitLeaveOneOut() { d.inner.SplitLeaveOneOut(3) }

// SplitFraction holds out the trailing frac of each user's
// interactions (the PRME / F1@K protocol; the paper uses 0.2).
func (d *Dataset) SplitFraction(frac float64) { d.inner.SplitFraction(frac) }

// Stats returns a one-line dataset summary.
func (d *Dataset) Stats() string { return d.inner.ComputeStats().String() }

// CategoryID resolves an item-category name (-1 when absent). Only
// Foursquare-like datasets carry categories.
func (d *Dataset) CategoryID(name string) int { return d.inner.CategoryID(name) }

// CategoryNames lists the dataset's item categories (nil when none).
func (d *Dataset) CategoryNames() []string {
	return append([]string(nil), d.inner.CategoryNames...)
}

// ItemsInCategory lists the items labelled with category id c.
func (d *Dataset) ItemsInCategory(c int) []int { return d.inner.ItemsInCategory(c) }

// CategoryShare returns the fraction of user u's training interactions
// in category c.
func (d *Dataset) CategoryShare(u, c int) float64 { return d.inner.CategoryShare(u, c) }

// GlobalCategoryShare returns the population-wide interaction share of
// category c.
func (d *Dataset) GlobalCategoryShare(c int) float64 { return d.inner.GlobalCategoryShare(c) }

// HealthCategory is the category name targeted by the paper's
// motivating example on Foursquare-like data.
const HealthCategory = dataset.HealthCategory

// Jaccard returns the Jaccard similarity between two users' training
// sets — the paper's ground-truth community criterion (Eq. 5).
func (d *Dataset) Jaccard(u, v int) float64 {
	return jaccard(d.inner, u, v)
}

func (d *Dataset) ensureSplit() error {
	if d.splitOK {
		return nil
	}
	for u := 0; u < d.inner.NumUsers; u++ {
		if len(d.inner.Test[u]) > 0 {
			d.splitOK = true
			return nil
		}
	}
	return fmt.Errorf("ciarec: dataset has no evaluation split; call SplitLeaveOneOut or SplitFraction first")
}
