GO ?= go
# benchstat needs several samples per benchmark to compute intervals.
BENCH_COUNT ?= 6

.PHONY: all build vet lint test race fuzz chaos bench bench-tables bench-compare

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full static-analysis gate: standard vet, then the in-repo cialint
# suite (detrand, mapiter, poolleak, mathxseam — see ANALYSIS.md) as a
# -vettool plus the Makefile/chaos-suite sync check, then the pinned
# external tools when they are installed (tools/tools.go documents the
# pinned install; offline checkouts get a skip notice, not a failure).
lint: vet
	$(GO) build -o bin/cialint ./cmd/cialint
	$(GO) vet -vettool=$(abspath bin/cialint) ./...
	bin/cialint -chaos-sync
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH; skipping (see tools/tools.go for the pinned install)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not on PATH; skipping (see tools/tools.go for the pinned install)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout=40m ./...

# Short coverage-guided fuzz of the wire codecs (dense CPS1 and the
# sparse+quantized CPQ1 decoder), the RPC frame decoder and the
# declarative scenario decoder (the committed seed corpora under
# */testdata/fuzz always run as part of `make test`).
fuzz:
	$(GO) test -fuzz='^FuzzParamSetReadFrom$$' -fuzztime=30s -run='^$$' ./internal/param/
	$(GO) test -fuzz='^FuzzSparseCodecDecode$$' -fuzztime=30s -run='^$$' ./internal/param/
	$(GO) test -fuzz='^FuzzFrameRead$$' -fuzztime=30s -run='^$$' ./internal/transport/rpc/
	$(GO) test -fuzz='^FuzzScenarioDecode$$' -fuzztime=30s -run='^$$' ./internal/experiments/

# Fault-injection suite under the race detector: the deterministic
# chaos equivalence runs (same (seed, plan) → byte-identical output on
# every backend and worker count), the RPC lifecycle/retry races
# (concurrent Close vs in-flight round-trips, server Close mid-
# broadcast, graceful drain), and the golden chaos + relay-restart
# acceptance checks. See RESILIENCE.md.
chaos:
	$(GO) test -race -timeout=20m \
		-run='Faulty|Fault|Resilience|Straggler|Quorum|Blackout|DeliverFailure|UploadLoss|InactivePlan|Retry|Backoff|Reconnect|Timeout|Shutdown|Close|Eviction|Idle|Unreachable|GivesUp|SilentServer|RelayRestart' \
		./internal/transport/ ./internal/transport/rpc/ ./internal/fed/ ./internal/gossip/ ./internal/experiments/

# Microbenchmarks of the round engine and the parameter pipeline,
# emitted in benchstat-comparable form. Compare two trees with e.g.
#
#	make bench > old.txt   # on the baseline checkout
#	make bench > new.txt   # on the candidate
#	benchstat old.txt new.txt
bench:
	$(GO) test -run='^$$' -count=$(BENCH_COUNT) -benchmem \
		-bench='BenchmarkFedRound|BenchmarkObsOverhead|BenchmarkGossipCycle|BenchmarkParamClone|BenchmarkUtilityHR|BenchmarkUtilityF1|BenchmarkFedAggregate|BenchmarkWireRound|BenchmarkSocketRound|BenchmarkScoreItems|BenchmarkCodecThroughput' \
		./internal/fed/ ./internal/gossip/ ./internal/param/ ./internal/model/

# Full paper-table reproduction pass (one iteration per table).
bench-tables:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

# One-command regression check for perf PRs: compare two `make bench`
# captures with benchstat when it is installed, falling back to the
# bundled averaging script otherwise.
#
#	make bench > old.txt   # on the baseline checkout
#	make bench > new.txt   # on the candidate
#	make bench-compare OLD=old.txt NEW=new.txt
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" || \
		{ echo "usage: make bench-compare OLD=old.txt NEW=new.txt"; exit 2; }
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat "$(OLD)" "$(NEW)"; \
	else \
		echo "benchstat not found (go install golang.org/x/perf/cmd/benchstat@latest); using scripts/benchdiff.awk"; \
		awk -f scripts/benchdiff.awk "$(OLD)" "$(NEW)"; \
	fi
