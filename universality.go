package ciarec

import "github.com/collablearn/ciarec/internal/classify"

// UniversalityConfig parameterizes RunUniversality, the paper's
// §VIII-E experiment: CIA against a *classification* federation with a
// strongly non-iid partition (each client holds one class), showing
// the attack is not recommender-specific.
type UniversalityConfig struct {
	// Clients defaults to 100 (the paper's setup); Classes to 10.
	Clients int
	Classes int
	// Dim is the synthetic feature dimension (default 32).
	Dim int
	// SamplesPerClient defaults to 40.
	SamplesPerClient int
	// Rounds defaults to 25; HiddenUnits to 100 (the paper's MLP).
	Rounds      int
	HiddenUnits int
	Seed        uint64
}

// UniversalityReport is the §VIII-E outcome.
type UniversalityReport struct {
	// GlobalAccuracy is the federation's final test accuracy
	// (the paper reports 87% on MNIST).
	GlobalAccuracy float64
	// CIAAccuracy is the best community-recovery accuracy
	// (the paper reports 100%).
	CIAAccuracy float64
	// RandomBound is K/N for the class partition (10% in the paper).
	RandomBound float64
}

// RunUniversality runs CIA against a non-iid classification
// federation.
func RunUniversality(cfg UniversalityConfig) (UniversalityReport, error) {
	res, err := classify.RunUniversality(classify.RunConfig{
		Gen: classify.GenConfig{
			NumClients:       cfg.Clients,
			NumClasses:       cfg.Classes,
			Dim:              cfg.Dim,
			SamplesPerClient: cfg.SamplesPerClient,
			Seed:             cfg.Seed,
		},
		Rounds: cfg.Rounds,
		Hidden: cfg.HiddenUnits,
		Seed:   cfg.Seed ^ 0x1e57,
	})
	if err != nil {
		return UniversalityReport{}, err
	}
	return UniversalityReport{
		GlobalAccuracy: res.GlobalAccuracy,
		CIAAccuracy:    res.CIAAccuracy,
		RandomBound:    res.RandomBound,
	}, nil
}
