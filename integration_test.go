package ciarec

import (
	"testing"
)

// End-to-end determinism through the public API: identical
// configuration and seed must produce bit-identical reports across the
// full pipeline (generation, training, protocol, attack, metrics).
func TestIntegrationDeterminism(t *testing.T) {
	run := func() *Report {
		d, err := Generate(GenerateConfig{
			Name: "det", NumUsers: 60, NumItems: 150,
			NumCommunities: 3, MeanItemsPerUser: 20, Affinity: 0.9, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SplitLeaveOneOut()
		report, err := Run(RunConfig{
			Dataset:      d,
			Protocol:     RandGossip,
			Rounds:       15,
			TrackUtility: true,
			Seed:         12,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.MaxAAC != b.MaxAAC || a.Best10AAC != b.Best10AAC || a.UpperBound != b.UpperBound {
		t.Fatalf("non-deterministic reports: %+v vs %+v", a, b)
	}
	for i := range a.AACSeries {
		if a.AACSeries[i] != b.AACSeries[i] {
			t.Fatalf("AAC series diverged at round %d", i)
		}
	}
	for i := range a.UtilitySeries {
		if a.UtilitySeries[i] != b.UtilitySeries[i] {
			t.Fatalf("utility series diverged at round %d", i)
		}
	}
}

// The paper's central comparison through the public API: on the same
// data, the FL server out-attacks a single gossip adversary, and both
// defenses change the picture in the documented directions.
func TestIntegrationProtocolOrdering(t *testing.T) {
	d, err := Generate(GenerateConfig{
		Name: "ordering", NumUsers: 80, NumItems: 200,
		NumCommunities: 4, MeanItemsPerUser: 25, Affinity: 0.9, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut()

	fl, err := Run(RunConfig{Dataset: d, Rounds: 15, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	gl, err := Run(RunConfig{Dataset: d, Protocol: RandGossip, Rounds: 30, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	flDefended, err := Run(RunConfig{Dataset: d, Defense: ShareLess(5), Rounds: 15, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}

	if fl.MaxAAC <= gl.MaxAAC {
		t.Fatalf("FL (%.3f) must leak more than gossip (%.3f)", fl.MaxAAC, gl.MaxAAC)
	}
	if fl.MaxAAC <= 2*fl.RandomBound {
		t.Fatalf("FL attack too weak: %.3f vs random %.3f", fl.MaxAAC, fl.RandomBound)
	}
	if flDefended.MaxAAC >= fl.MaxAAC {
		t.Fatalf("share-less (%.3f) must reduce FL leakage (%.3f)", flDefended.MaxAAC, fl.MaxAAC)
	}
}

// DP-SGD with a tight budget must crush utility relative to the
// undefended run (the paper's Figure-5 story) — via the public API.
func TestIntegrationDPUtilityCollapse(t *testing.T) {
	d, err := Generate(GenerateConfig{
		Name: "dp", NumUsers: 60, NumItems: 150,
		NumCommunities: 3, MeanItemsPerUser: 20, Affinity: 0.9, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut()

	const rounds = 15
	free, err := Run(RunConfig{Dataset: d, Rounds: rounds, TrackUtility: true, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(RunConfig{
		Dataset: d, Rounds: rounds, TrackUtility: true, Seed: 32,
		Defense: DPSGDWithEpsilon(2, 1, 1e-6, rounds),
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.BestUtility() >= free.BestUtility() {
		t.Fatalf("eps=1 DP-SGD should hurt utility: %.3f vs %.3f",
			noisy.BestUtility(), free.BestUtility())
	}
}
