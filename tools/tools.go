//go:build tools

// Package tools pins the external lint binaries to exact versions via
// this module's require list (the classic tools.go pattern, kept in a
// nested module so the root module stays dependency-free). Install
// the pinned versions with:
//
//	cd tools && go mod tidy && \
//		go install honnef.co/go/tools/cmd/staticcheck && \
//		go install golang.org/x/vuln/cmd/govulncheck
//
// go mod tidy populates go.sum on the first networked run; commit it
// when it appears. `make lint` runs whichever of the two binaries are
// on PATH and prints a skip notice (without failing) for the rest, so
// offline checkouts still get the full in-repo cialint suite.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
