module github.com/collablearn/ciarec/tools

go 1.24.0

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
