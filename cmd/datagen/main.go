// Command datagen generates and inspects the synthetic datasets used
// by the reproduction.
//
// Usage:
//
//	datagen -dataset foursquare -scale 0.1          # summary stats
//	datagen -dataset movielens -scale 1 -out d.tsv  # dump interactions
//	datagen -dataset foursquare -categories         # category shares
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/collablearn/ciarec/internal/dataset"
)

func main() {
	var (
		name       = flag.String("dataset", "movielens", "movielens | foursquare | gowalla")
		scale      = flag.Float64("scale", 0.1, "dataset scale in (0,1]; 1 = paper size")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "write interactions as TSV (user\\titem\\trank) to this file")
		categories = flag.Bool("categories", false, "print per-category interaction shares")
	)
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "movielens":
		d = dataset.MovieLensLike(*scale, *seed)
	case "foursquare":
		d = dataset.FoursquareLike(*scale, *seed)
	case "gowalla":
		d = dataset.GowallaLike(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: generated dataset invalid: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", d.Name, d.ComputeStats())

	if *categories {
		if d.Categories == nil {
			fmt.Println("dataset has no item categories")
		} else {
			for c, cname := range d.CategoryNames {
				fmt.Printf("  %-28s items=%-6d share=%.2f%%\n",
					cname, len(d.ItemsInCategory(c)), 100*d.GlobalCategoryShare(c))
			}
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for u := range d.Train {
			for rank, it := range d.Train[u] {
				fmt.Fprintf(w, "%d\t%d\t%d\n", u, it, rank)
			}
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d interactions to %s\n", d.NumInteractions(), *out)
	}
}
