package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// runChaosSync keeps `make chaos` honest: the target hand-picks
// resilience tests with a -run regex, and a new fault-injection test
// whose name misses every alternative silently drops out of the chaos
// gate. The check enforces both directions over the packages the
// Makefile target lists:
//
//  1. every Test function defined in a resilience-suite file
//     (*resilience*_test.go, *faulty*_test.go, *chaos*_test.go) must
//     be matched by the -run regex, and
//  2. every alternative in the regex must still match at least one
//     test (no dead selectors), except the reserved marker prefix
//     "Resilience" which names the suite and is kept so new tests can
//     adopt it without a Makefile edit.
var chaosSuiteFile = regexp.MustCompile(`(resilience|faulty|chaos)[^/]*_test\.go$`)

const reservedChaosPrefix = "Resilience"

func runChaosSync(root string) error {
	mk, err := os.ReadFile(filepath.Join(root, "Makefile"))
	if err != nil {
		return err
	}
	runRE, pkgs, err := parseChaosTarget(string(mk))
	if err != nil {
		return err
	}
	re, err := regexp.Compile(runRE)
	if err != nil {
		return fmt.Errorf("chaos -run regex does not compile: %v", err)
	}

	var problems []string
	matchedAlt := map[string]bool{}
	alts := splitAlternatives(runRE)
	for _, pkg := range pkgs {
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pkg, "./")))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("chaos target lists %s but %v", pkg, err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			names, err := testFuncNames(filepath.Join(dir, e.Name()))
			if err != nil {
				return err
			}
			inSuiteFile := chaosSuiteFile.MatchString(e.Name())
			for _, name := range names {
				if re.MatchString(name) || strings.HasPrefix(name, "Test"+reservedChaosPrefix) {
					for _, alt := range alts {
						if strings.Contains(name, alt) {
							matchedAlt[alt] = true
						}
					}
					continue
				}
				if inSuiteFile {
					problems = append(problems, fmt.Sprintf(
						"%s/%s: %s is in a resilience-suite file but the make chaos -run regex does not select it",
						pkg, e.Name(), name))
				}
			}
		}
	}
	for _, alt := range alts {
		if alt == reservedChaosPrefix {
			continue
		}
		if !matchedAlt[alt] {
			problems = append(problems, fmt.Sprintf(
				"make chaos -run alternative %q matches no test in the listed packages (dead selector: tighten or remove it)", alt))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("chaos selection out of sync:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// parseChaosTarget extracts the -run='…' regex and the ./pkg/ list
// from the Makefile's chaos recipe, tolerating line continuations.
func parseChaosTarget(mk string) (runRE string, pkgs []string, err error) {
	lines := strings.Split(mk, "\n")
	for i := 0; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], "chaos:") {
			continue
		}
		// Join the recipe (tab-indented lines, folding trailing \).
		var recipe strings.Builder
		for j := i + 1; j < len(lines) && strings.HasPrefix(lines[j], "\t"); j++ {
			recipe.WriteString(strings.TrimSuffix(strings.TrimSpace(lines[j]), "\\"))
			recipe.WriteString(" ")
		}
		text := recipe.String()
		m := regexp.MustCompile(`-run='([^']+)'`).FindStringSubmatch(text)
		if m == nil {
			return "", nil, fmt.Errorf("chaos target has no -run='…' selection")
		}
		for _, f := range strings.Fields(text) {
			if strings.HasPrefix(f, "./") {
				pkgs = append(pkgs, strings.TrimSuffix(f, "/"))
			}
		}
		if len(pkgs) == 0 {
			return "", nil, fmt.Errorf("chaos target lists no ./… packages")
		}
		return m[1], pkgs, nil
	}
	return "", nil, fmt.Errorf("no chaos target in Makefile")
}

// splitAlternatives breaks a simple alternation regex (the only shape
// the chaos target uses) into its literal branches, skipping any
// branch that carries regex metacharacters beyond word chars.
func splitAlternatives(re string) []string {
	var out []string
	for _, alt := range strings.Split(re, "|") {
		if alt != "" && regexp.MustCompile(`^\w+$`).MatchString(alt) {
			out = append(out, alt)
		}
	}
	return out
}

// testFuncNames parses one file (declarations only are needed, but a
// full parse keeps it simple) and returns its TestXxx function names.
func testFuncNames(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || !strings.HasPrefix(fn.Name.Name, "Test") {
			continue
		}
		names = append(names, fn.Name.Name)
	}
	return names, nil
}
