package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"github.com/collablearn/ciarec/internal/analysis"
)

// unitConfig mirrors the JSON compilation-unit description `go vet`
// hands a -vettool (the x/tools unitchecker Config). Only the fields
// the suite needs are declared; unknown fields are ignored by the
// JSON decoder.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit per the go vet protocol and
// exits: 0 clean, 1 findings, 2 internal error.
func runUnit(cfgFile string, jsonOut bool) {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}

	// go vet expects the facts output file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	diags, err := analyzeUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	if jsonOut {
		emitJSON(fset, cfg, diags)
		os.Exit(0) // JSON consumers read findings from stdout
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func readUnitConfig(cfgFile string) (*unitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func analyzeUnit(fset *token.FileSet, cfg *unitConfig) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return analysis.ApplySuppressions(fset, files, diags), nil
}

func emitJSON(fset *token.FileSet, cfg *unitConfig, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	tree := map[string]map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer, ok := tree[cfg.ID]
		if !ok {
			byAnalyzer = map[string][]jsonDiag{}
			tree[cfg.ID] = byAnalyzer
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer],
			jsonDiag{fset.Position(d.Pos).String(), d.Message})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
