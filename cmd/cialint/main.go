// Command cialint is the repository's invariant linter: the five
// custom analyzers in internal/analysis (detrand, mapiter, poolleak,
// mathxseam, obsleak) behind the `go vet -vettool` unit-checker
// protocol.
//
// Usage:
//
//	go vet -vettool=$(pwd)/bin/cialint ./...   # preferred: build cache supplies types
//	cialint ./...                              # convenience: re-execs go vet -vettool=self
//	cialint -chaos-sync                        # verify Makefile chaos regex covers the suites
//
// The protocol half (-V=full, -flags, *.cfg) matches what cmd/go
// expects of a vet tool: -V=full prints a content-hashed version so
// results cache, -flags declares the flag surface, and a .cfg
// argument names a JSON compilation-unit description whose GoFiles
// are parsed and type-checked against the export data go vet already
// built. Findings print as file:line:col: message (analyzer) on
// stderr and exit 1, so both `go vet` and `make lint` fail on any
// finding.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cialint: ")

	var (
		printFlags = flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
		jsonOut    = flag.Bool("json", false, "emit diagnostics as JSON")
		chaosSync  = flag.Bool("chaos-sync", false, "check the Makefile chaos -run regex covers the resilience suites")
	)
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `cialint statically enforces the repo's determinism, pool-recycling
and kernel-seam invariants (see ANALYSIS.md).

usage:
	cialint [packages]     # runs go vet -vettool=cialint over the packages
	cialint unit.cfg       # go vet protocol: analyze one compilation unit
	cialint -chaos-sync    # check make chaos test selection is in sync
`)
		os.Exit(2)
	}
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		return
	}
	if *chaosSync {
		if err := runChaosSync("."); err != nil {
			log.Fatal(err)
		}
		fmt.Println("cialint: chaos selection in sync with the resilience suites")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], *jsonOut)
		return
	}

	// Standalone mode: let go vet do package loading and caching,
	// pointing it back at this executable as the vet tool.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
}

// versionFlag implements the -V=full handshake go vet uses to fold
// the tool's identity into its build cache key.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(self)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", self, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	fmt.Print("[")
	for i, f := range out {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("\n\t{\"Name\":%q,\"Bool\":%v,\"Usage\":%q}", f.Name, f.Bool, f.Usage)
	}
	fmt.Println("\n]")
}
