package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeChaosTree lays out a minimal repo: a Makefile with a chaos
// target selecting runRE over ./pkg/, and one resilience-suite test
// file defining the given test functions.
func writeChaosTree(t *testing.T, runRE string, testFuncs []string) string {
	t.Helper()
	root := t.TempDir()
	mk := fmt.Sprintf("all:\n\ttrue\n\nchaos:\n\tgo test -count=1 -run='%s' \\\n\t\t./pkg/\n", runRE)
	if err := os.WriteFile(filepath.Join(root, "Makefile"), []byte(mk), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(root, "pkg"), 0o777); err != nil {
		t.Fatal(err)
	}
	var src strings.Builder
	src.WriteString("package pkg\n\nimport \"testing\"\n")
	for _, fn := range testFuncs {
		fmt.Fprintf(&src, "\nfunc %s(t *testing.T) {}\n", fn)
	}
	if err := os.WriteFile(filepath.Join(root, "pkg", "faulty_round_test.go"), []byte(src.String()), 0o666); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestChaosSyncInSync(t *testing.T) {
	root := writeChaosTree(t, "Faulty|Quorum|Resilience",
		[]string{"TestFaultyUpload", "TestQuorumLoss"})
	if err := runChaosSync(root); err != nil {
		t.Fatalf("in-sync tree reported: %v", err)
	}
}

func TestChaosSyncUnselectedTest(t *testing.T) {
	root := writeChaosTree(t, "Faulty|Resilience",
		[]string{"TestFaultyUpload", "TestStragglerDrain"})
	err := runChaosSync(root)
	if err == nil || !strings.Contains(err.Error(), "TestStragglerDrain") {
		t.Fatalf("unselected resilience test not reported, got: %v", err)
	}
}

func TestChaosSyncDeadAlternative(t *testing.T) {
	root := writeChaosTree(t, "Faulty|Ghost|Resilience",
		[]string{"TestFaultyUpload"})
	err := runChaosSync(root)
	if err == nil || !strings.Contains(err.Error(), `"Ghost"`) {
		t.Fatalf("dead alternative not reported, got: %v", err)
	}
}

// The reserved marker prefix names the suite: it is exempt from the
// dead-alternative check and tests adopting it are always selected.
func TestChaosSyncReservedPrefix(t *testing.T) {
	root := writeChaosTree(t, "Faulty|Resilience",
		[]string{"TestFaultyUpload", "TestResilienceNewFault"})
	if err := runChaosSync(root); err != nil {
		t.Fatalf("reserved Resilience prefix mishandled: %v", err)
	}
}

func TestParseChaosTargetFoldsContinuations(t *testing.T) {
	mk := "chaos:\n\tgo test -race -count=1 \\\n\t\t-run='A|B' \\\n\t\t./x/ ./y/z/\n"
	runRE, pkgs, err := parseChaosTarget(mk)
	if err != nil {
		t.Fatal(err)
	}
	if runRE != "A|B" {
		t.Fatalf("runRE = %q", runRE)
	}
	if len(pkgs) != 2 || pkgs[0] != "./x" || pkgs[1] != "./y/z" {
		t.Fatalf("pkgs = %v", pkgs)
	}
}
