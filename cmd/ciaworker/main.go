// Command ciaworker runs the round-transport RPC server as a
// standalone OS process: ciabench (or any program threading a
// transport.Dial instance into the simulators) can then route every
// parameter transfer of a round through it, making the protocol
// genuinely multi-process while staying byte-identical to the
// in-process backends.
//
// Usage:
//
//	ciaworker -network unix -addr /tmp/cia.sock
//	ciaworker -network tcp  -addr 127.0.0.1:7100
//
// then, in another process:
//
//	ciabench -exp table2 -transport socket -addr /tmp/cia.sock
//
// The worker serves until SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/collablearn/ciarec/internal/transport/rpc"
)

func main() {
	var (
		network = flag.String("network", "unix", "socket family: unix | tcp")
		addr    = flag.String("addr", "", "listen address: a socket path (unix) or host:port (tcp)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ciaworker: -addr is required")
		os.Exit(2)
	}
	srv, err := rpc.Serve(*network, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciaworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ciaworker: serving %s %s\n", srv.Network(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ciaworker: close: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ciaworker: shut down (%d conn errors observed)\n", srv.ConnErrors())
}
