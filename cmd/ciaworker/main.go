// Command ciaworker runs the round-transport RPC server as a
// standalone OS process: ciabench (or any program threading a
// transport.Dial instance into the simulators) can then route every
// parameter transfer of a round through it, making the protocol
// genuinely multi-process while staying byte-identical to the
// in-process backends.
//
// Usage:
//
//	ciaworker -network unix -addr /tmp/cia.sock
//	ciaworker -network tcp  -addr 127.0.0.1:7100
//
// then, in another process:
//
//	ciabench -exp table2 -transport socket -addr /tmp/cia.sock
//
// The worker serves until SIGINT/SIGTERM, then drains gracefully:
// the listener closes immediately (no new connections), in-flight
// RPCs get -grace to finish, and the process exits 0. A second signal
// aborts the drain.
//
// With -ready <path>, the worker writes "<network> <address>\n" to
// path (atomically, via rename) once the listener is accepting. With
// -addr of "auto" (unix) or a :0 port (tcp) the kernel picks the
// address, so supervisors can avoid collisions by reading it back
// from the ready file.
//
// Observability (see OBSERVABILITY.md): -metrics-addr serves the
// worker's RPC counters as Prometheus text exposition and expvar,
// -pprof-addr serves net/http/pprof, and -trace writes a per-request
// span trace (Chrome trace_event JSON) at shutdown. None of them
// affect the bytes served.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// writeReady atomically publishes the worker's bound address.
func writeReady(path, network, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(network+" "+addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	var (
		network = flag.String("network", "unix", "socket family: unix | tcp")
		addr    = flag.String("addr", "", "listen address: a socket path (unix, or 'auto' for a temp path) or host:port (tcp; port 0 lets the kernel pick)")
		ready   = flag.String("ready", "", "file to write '<network> <address>' to once the listener is accepting (written atomically)")
		grace   = flag.Duration("grace", 5*time.Second, "drain window for in-flight RPCs after SIGINT/SIGTERM")

		traceOut    = flag.String("trace", "", "write a per-request span trace to this file at shutdown: Chrome trace_event JSON, or JSON lines with a .jsonl extension")
		metricsAddr = flag.String("metrics-addr", "", "serve the worker's RPC counters over HTTP at this address (host:port; port 0 picks one): /metrics Prometheus text exposition, /metrics.json, /debug/vars expvar")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof at this address (host:port; port 0 picks one)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ciaworker: -addr is required")
		os.Exit(2)
	}
	listen := *addr
	var tmpDir string
	if *network == "unix" && listen == "auto" {
		d, err := os.MkdirTemp("", "ciaworker-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciaworker: %v\n", err)
			os.Exit(1)
		}
		tmpDir = d
		listen = filepath.Join(d, "rpc.sock")
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultSpansPerRing)
	}
	srv, err := rpc.Listen(*network, listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciaworker: %v\n", err)
		os.Exit(1)
	}
	srv.Trace = tracer
	srv.Start()
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.RegisterFunc("rpc_conn_errors_total", func() float64 { return float64(srv.ConnErrors()) })
		reg.RegisterFunc("rpc_idle_drops_total", func() float64 { return float64(srv.IdleDrops()) })
		reg.RegisterFunc("rpc_broadcast_evictions_total", func() float64 { return float64(srv.BroadcastEvictions()) })
		reg.RegisterTracer(tracer)
		msrv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciaworker: -metrics-addr: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("ciaworker: metrics at http://%s/metrics\n", msrv.Addr())
	}
	if *pprofAddr != "" {
		psrv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciaworker: -pprof-addr: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		defer psrv.Close()
		fmt.Printf("ciaworker: pprof at http://%s/debug/pprof/\n", psrv.Addr())
	}
	if *ready != "" {
		if err := writeReady(*ready, srv.Network(), srv.Addr()); err != nil {
			fmt.Fprintf(os.Stderr, "ciaworker: ready file: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
	}
	fmt.Printf("ciaworker: serving %s %s\n", srv.Network(), srv.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: stop accepting, let in-flight RPCs finish within
	// the grace window, then exit 0. A second signal aborts the drain.
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(*grace) }()
	select {
	case err = <-done:
	case <-sig:
		if tmpDir != "" {
			os.RemoveAll(tmpDir)
		}
		os.Exit(130)
	}
	if tmpDir != "" {
		os.RemoveAll(tmpDir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciaworker: shutdown: %v\n", err)
		os.Exit(1)
	}
	if tracer != nil {
		if werr := tracer.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ciaworker: -trace: %v\n", werr)
			os.Exit(1)
		}
	}
	fmt.Printf("ciaworker: drained and shut down (%d conn errors observed)\n", srv.ConnErrors())
}
