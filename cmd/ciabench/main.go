// Command ciabench reproduces the paper's tables and figures from the
// command line.
//
// Usage:
//
//	ciabench -exp table2            # one experiment
//	ciabench -exp all               # every table and figure
//	ciabench -exp fig5 -seed 7      # different seed
//	ciabench -exp table2 -paper     # full paper-scale sizes (slow)
//	ciabench -scenario churn-byz    # run a declarative scenario preset
//	ciabench -scenario run.json     # ... or one decoded from a JSON file
//	ciabench -list                  # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/experiments"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

type runner func(spec experiments.Spec) (string, error)

var runners = map[string]runner{
	"table2": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable2(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRows("Table II: CIA on FedRecs", rows), nil
	},
	"table3": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable3(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRows("Table III: CIA on GossipRecs", rows), nil
	},
	"table4": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable4(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRows("Table IV: collusion in Rand-Gossip (GMF, MovieLens-like)", rows), nil
	},
	"table5": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable5(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRows("Table V: collusion under Share-less", rows), nil
	},
	"table6": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable6(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRows("Table VI: momentum ablation under collusion", rows), nil
	},
	"table7": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunTable7(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable7(rows), nil
	},
	"table8": func(spec experiments.Spec) (string, error) {
		res, err := experiments.RunTable8(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable8(res), nil
	},
	"table9": func(spec experiments.Spec) (string, error) {
		res, err := experiments.RunTable9(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable9(res), nil
	},
	"fig1": func(spec experiments.Spec) (string, error) {
		res, err := experiments.RunFigure1(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure1(res), nil
	},
	"fig3": func(spec experiments.Spec) (string, error) {
		points, err := experiments.RunFigure3(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderTradeoff("Figure 3: GMF privacy/utility trade-off", "HR", points), nil
	},
	"fig4": func(spec experiments.Spec) (string, error) {
		points, err := experiments.RunFigure4(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderTradeoff("Figure 4: PRME privacy/utility trade-off", "F1", points), nil
	},
	"fig5": func(spec experiments.Spec) (string, error) {
		points, err := experiments.RunFigure5(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderFigure5(points), nil
	},
	"sec8e": func(spec experiments.Spec) (string, error) {
		res, err := experiments.RunUniversality(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderUniversality(res), nil
	},
	"sec8c2": func(spec experiments.Spec) (string, error) {
		res, err := experiments.RunAIAComparison(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderAIAComparison(res), nil
	},
	"ablation-secureagg": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunSecureAggAblation(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderSecureAggAblation(rows), nil
	},
	"ablation-staticgraph": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunStaticGraphAblation(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderStaticGraphAblation(rows), nil
	},
	"ablation-fictive": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunFictiveAblation(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderFictiveAblation(rows), nil
	},
	"ablation-relevance": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunRelevanceAblation(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderRelevanceAblation(rows), nil
	},
	"ablation-participation": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunParticipationAblation(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderParticipationAblation(rows), nil
	},
	"ext-modelfamily": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunModelFamilyStudy(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderModelFamilyStudy(rows), nil
	},
	"ext-sparsify": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunSparsifyStudy(spec)
		if err != nil {
			return "", err
		}
		return experiments.RenderSparsifyStudy(rows), nil
	},
	"compress-ratio": func(spec experiments.Spec) (string, error) {
		rows, err := experiments.RunCompressionRatio(spec, nil, nil)
		if err != nil {
			return "", err
		}
		return experiments.RenderCompressionRatio(rows), nil
	},
}

// runScenarioFile loads a scenario — a preset name or a JSON file —
// and executes it with the process's observability sinks attached
// (both may be nil). Decode/validation errors name the offending
// field.
func runScenarioFile(path string, tr *obs.Tracer, reg *obs.Registry) (string, error) {
	sc, ok := experiments.ScenarioPreset(path)
	if !ok {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		defer f.Close()
		sc, err = experiments.DecodeScenario(f)
		if err != nil {
			return "", err
		}
	}
	spec, err := sc.Spec()
	if err != nil {
		return "", err
	}
	spec.Trace = tr
	spec.Metrics = reg
	res, err := experiments.RunScenarioWith(sc, spec)
	if err != nil {
		return "", err
	}
	return experiments.RenderScenario(sc, res), nil
}

// writeTrace flushes the recorded spans to the -trace file (no-op
// without one): Chrome trace_event JSON, or JSON lines for a .jsonl
// extension.
func writeTrace(tr *obs.Tracer, path string) {
	if tr == nil {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "ciabench: -trace: %v\n", err)
		os.Exit(1)
	}
}

// scenarioNames lists the built-in scenario presets for -scenario's
// usage string.
func scenarioNames() string {
	presets := experiments.ScenarioPresets()
	names := make([]string, len(presets))
	for i, sc := range presets {
		names[i] = sc.Name
	}
	return strings.Join(names, " | ")
}

func experimentIDs() []string {
	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		paper  = flag.Bool("paper", false, "paper-scale datasets and rounds (slow, memory-hungry)")
		seed   = flag.Uint64("seed", 1, "master seed")
		rounds = flag.Int("rounds", 0, "override FL round count")
		trans  = flag.String("transport", "", "round transport backend: "+strings.Join(transport.Names(), " | ")+", optionally behind the fault-injecting prefix \"faulty:\" (default inproc; socket backends spin up a loopback server unless -addr is given)")
		addr   = flag.String("addr", "", "external ciaworker address for the socket backends: a socket path (socket) or host:port (socket-tcp)")
		faults = flag.String("faults", "", "deterministic fault-injection spec, e.g. 'seed=7,drop=0.05,send-loss=0.05,slow=0.1,slow-latency=500ms' or 'default'; wraps the transport in the fault injector and drives straggler latencies")
		retry  = flag.String("retry", "", "socket RPC retry policy, e.g. 'attempts=6,backoff=5ms,timeout=2s' (empty keeps the defaults)")
		comp   = flag.String("compress", "", "wire compression for every parameter transfer: 'off' (default, lossless dense codec) or '8'/'16' for the sparse+quantized delta codec at that bit width")
		quorum = flag.Float64("quorum", 0, "minimum fraction of sampled clients whose uploads must arrive in time for an FL round to aggregate; below it the round keeps the previous global model (0 disables)")
		sdl    = flag.Duration("straggler-deadline", 0, "FL per-round upload deadline: uploads whose fault-plan latency exceeds it are observed by the adversary but excluded from aggregation (0 disables)")
		churn  = flag.String("churn", "", "deterministic participant-churn spec, e.g. 'seed=5,initial=0.8,leave=0.25,join=0.5,stale-bound=2' or 'default'; memberships grow and shrink round over round, rejoiners resume from their stale snapshot")
		byz    = flag.String("byz", "", "Byzantine adversary spec, e.g. 'kind=sign-flip,frac=0.1,seed=1' or 'default'; kinds: sign-flip, scaled-noise, collude")
		agg    = flag.String("agg", "", "FL aggregation rule: fedavg (default), median, trimmed-mean or norm-clip")
		trim   = flag.Float64("trim", 0, "trimmed-mean per-end trim fraction in [0, 0.5) (0 keeps the default 0.1)")
		clip   = flag.Float64("clip", 0, "norm-clip per-upload L2 bound (required with -agg norm-clip)")
		scen   = flag.String("scenario", "", "run one declarative scenario instead of -exp: a JSON file or a preset name ("+scenarioNames()+"); all other knob flags except the observability ones are ignored")
		list   = flag.Bool("list", false, "list experiment ids and exit")

		traceOut    = flag.String("trace", "", "write a per-round phase trace of the run(s) to this file at exit: Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev), or JSON lines with a .jsonl extension")
		metricsAddr = flag.String("metrics-addr", "", "serve the live metrics registry over HTTP at this address (host:port; port 0 picks one): /metrics Prometheus text exposition, /metrics.json, /debug/vars expvar")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof at this address (host:port; port 0 picks one)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experimentIDs(), "\n"))
		return
	}

	// Observability sinks: a tracer when a trace file was asked for, a
	// shared registry when it is being served. Neither influences
	// results (see OBSERVABILITY.md); runners fall back to private
	// registries when reg stays nil.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultSpansPerRing)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ciabench: metrics at http://%s/metrics\n", srv.Addr())
	}
	if *pprofAddr != "" {
		srv, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -pprof-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ciabench: pprof at http://%s/debug/pprof/\n", srv.Addr())
	}

	if *scen != "" {
		start := time.Now()
		out, err := runScenarioFile(*scen, tracer, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -scenario: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(out)
		fmt.Printf("[scenario completed in %.1fs]\n", time.Since(start).Seconds())
		writeTrace(tracer, *traceOut)
		return
	}
	spec := experiments.BenchSpec()
	if *paper {
		spec = experiments.PaperSpec()
	}
	spec.Seed = *seed
	if *rounds > 0 {
		spec.Rounds = *rounds
	}
	if !transport.Known(*trans) {
		fmt.Fprintf(os.Stderr, "ciabench: unknown transport %q (have %s, optionally behind %q)\n",
			*trans, strings.Join(transport.Names(), ", "), transport.FaultyPrefix)
		os.Exit(2)
	}
	if base := strings.TrimPrefix(*trans, transport.FaultyPrefix); *addr != "" && base != "socket" && base != "socket-tcp" {
		fmt.Fprintf(os.Stderr, "ciabench: -addr requires -transport socket or socket-tcp\n")
		os.Exit(2)
	}
	spec.Transport = *trans
	spec.TransportAddr = *addr
	if *faults != "" {
		plan, err := transport.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -faults: %v\n", err)
			os.Exit(2)
		}
		spec.FaultPlan = &plan
	}
	if *retry != "" {
		policy, err := transport.ParseRetryPolicy(*retry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -retry: %v\n", err)
			os.Exit(2)
		}
		spec.Retry = &policy
	}
	compression, err := param.ParseCompression(*comp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciabench: -compress: %v\n", err)
		os.Exit(2)
	}
	spec.Compression = compression
	if *quorum < 0 || *quorum > 1 {
		fmt.Fprintf(os.Stderr, "ciabench: -quorum %v out of [0,1]\n", *quorum)
		os.Exit(2)
	}
	spec.Quorum = *quorum
	spec.StragglerDeadline = *sdl
	if *churn != "" {
		plan, err := transport.ParseChurnPlan(*churn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -churn: %v\n", err)
			os.Exit(2)
		}
		spec.ChurnPlan = &plan
	}
	if *byz != "" {
		adv, err := attack.ParseByzantine(*byz)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: -byz: %v\n", err)
			os.Exit(2)
		}
		spec.Byzantine = &adv
	}
	aggregator, err := fed.ParseAggregator(*agg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciabench: -agg: %v\n", err)
		os.Exit(2)
	}
	spec.Aggregator = aggregator
	if *trim < 0 || *trim >= 0.5 {
		fmt.Fprintf(os.Stderr, "ciabench: -trim %v out of [0, 0.5)\n", *trim)
		os.Exit(2)
	}
	spec.TrimFraction = *trim
	if *clip < 0 {
		fmt.Fprintf(os.Stderr, "ciabench: -clip %v is negative\n", *clip)
		os.Exit(2)
	}
	spec.ClipNorm = *clip
	spec.Trace = tracer
	spec.Metrics = reg

	ids := experimentIDs()
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "ciabench: unknown experiment %q; available: %s\n",
				*exp, strings.Join(ids, ", "))
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := runners[id](spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	writeTrace(tracer, *traceOut)
}
