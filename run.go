package ciarec

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/experiments"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// Defense selects a mitigation strategy (§III-D, §III-E). The zero
// value is no defense (full model sharing).
type Defense struct {
	kind  string
	tau   float64
	clip  float64
	noise float64
}

// NoDefense is the full-model-sharing baseline.
func NoDefense() Defense { return Defense{kind: "full"} }

// ShareLess keeps user embeddings on-device and regularizes item
// embedding drift with factor tau (Eq. 2). Tau controls the
// privacy/utility trade-off: the reproduction's experiments use 5,
// which lands the defense in the paper's Figure-3 regime (large attack
// drop, single-digit-to-modest utility cost); weak tau (≲2) leaves
// item-embedding drift informative enough that CIA's fictive-user
// adaptation can match the undefended attack.
func ShareLess(tau float64) Defense { return Defense{kind: "share-less", tau: tau} }

// DPSGD applies user-level DP-SGD with L2 clipping threshold clip and
// the given Gaussian noise multiplier (noise std = multiplier × clip).
func DPSGD(clip, noiseMultiplier float64) Defense {
	return Defense{kind: "dp-sgd", clip: clip, noise: noiseMultiplier}
}

// DPSGDWithEpsilon calibrates the noise multiplier so that `rounds`
// rounds of training satisfy (epsilon, delta)-DP, then behaves like
// DPSGD. Pass math.Inf(1) for a no-noise baseline.
func DPSGDWithEpsilon(clip, epsilon, delta float64, rounds int) Defense {
	iota := defense.Accountant{Delta: delta, Rounds: rounds}.Calibrate(epsilon)
	return DPSGD(clip, iota)
}

// Name returns the defense's identifier ("full", "share-less",
// "dp-sgd").
func (d Defense) Name() string {
	if d.kind == "" {
		return "full"
	}
	return d.kind
}

func (d Defense) policy() defense.Policy {
	switch d.kind {
	case "share-less":
		return defense.ShareLess{Tau: d.tau}
	case "dp-sgd":
		return defense.DPSGD{Clip: d.clip, NoiseMultiplier: d.noise}
	default:
		return defense.FullSharing{}
	}
}

// TransportKind selects the round-transport backend carrying every
// parameter transfer inside the simulated protocols (see
// internal/transport). Results are byte-identical across backends; the
// wire backends exist to exercise — and cost — the serialization path
// a real deployment would pay.
type TransportKind string

const (
	// TransportInproc passes payload pointers in memory (the default).
	TransportInproc TransportKind = "inproc"
	// TransportWire round-trips every transfer through the binary wire
	// codec using pooled buffers.
	TransportWire TransportKind = "wire"
	// TransportWireChunked is TransportWire with fixed-size frame
	// reassembly on the receive path.
	TransportWireChunked TransportKind = "wire-chunked"
	// TransportSocket pushes every transfer through the framed RPC
	// protocol over a Unix-domain socket: against an in-process
	// loopback server by default, or an external ciaworker process
	// when TransportAddr is set — the round then spans OS processes.
	TransportSocket TransportKind = "socket"
	// TransportSocketTCP is TransportSocket over TCP.
	TransportSocketTCP TransportKind = "socket-tcp"
)

// RunConfig describes one end-to-end experiment: train a collaborative
// recommender and attack it with CIA, with every user playing the
// adversary (the paper's evaluation protocol, §V-C).
type RunConfig struct {
	// Dataset must have an evaluation split applied.
	Dataset *Dataset
	// Model defaults to GMF.
	Model ModelFamily
	// Protocol defaults to Federated.
	Protocol Protocol
	// Defense defaults to NoDefense.
	Defense Defense
	// Transport defaults to TransportInproc.
	Transport TransportKind
	// TransportAddr dials an external RPC worker (a running ciaworker
	// process) at this address instead of a loopback server: a socket
	// path for TransportSocket, a host:port for TransportSocketTCP.
	// Requires one of the socket transports.
	TransportAddr string
	// Faults is a deterministic fault-injection spec, e.g.
	// "seed=7,drop=0.05,send-loss=0.05,slow=0.1,slow-latency=500ms" or
	// "default": the run's transport is wrapped in the seed-driven
	// fault injector and the simulators apply the same plan's straggler
	// latencies. A (Seed, Faults) pair reproduces the chaos run exactly
	// on every backend. Empty disables injection. Alternatively prefix
	// the Transport kind with "faulty:" for the default plan.
	Faults string
	// Retry tunes the socket transports' RPC retry policy, e.g.
	// "attempts=6,backoff=5ms,timeout=2s". Empty keeps the defaults
	// (4 attempts, capped jittered exponential backoff, 30s deadline).
	Retry string
	// Compression selects the wire codec for every parameter transfer:
	// "" or "off" keeps the lossless dense codec, "8" / "8bit" and
	// "16" / "16bit" run uploads and broadcasts through the
	// sparse+quantized delta codec at that bit width (see
	// internal/param). Compressed runs stay deterministic across
	// backends and worker counts but are quantized, so they are not
	// byte-identical to uncompressed runs.
	Compression string
	// StragglerDeadline is the FL server's per-round upload deadline:
	// uploads whose fault-plan latency exceeds it are observed by the
	// adversary but excluded from aggregation. 0 disables. Ignored
	// under gossip protocols.
	StragglerDeadline time.Duration
	// Quorum is the minimum fraction of sampled clients whose uploads
	// must arrive in time for the FL round to aggregate; below it the
	// round keeps the previous global model. 0 disables. Ignored under
	// gossip protocols.
	Quorum float64

	// Rounds defaults to 25 for FL and 80 for gossip.
	Rounds int
	// CommunitySize is the attack's K (default: 5% of users, the
	// paper's regime).
	CommunitySize int
	// Momentum is the CIA β (default 0.9; the paper uses 0.99 over
	// longer horizons).
	Momentum float64
	// ColluderFraction > 0 gives the gossip adversary a coalition of
	// that fraction of nodes (§VI-D). Ignored under Federated.
	ColluderFraction float64
	// ClientFraction < 1 samples that fraction of clients per FedAvg
	// round instead of full participation. 0 defaults to 1 (the paper's
	// setting). Ignored under gossip protocols.
	ClientFraction float64
	// DropoutProb injects per-round client upload failures (crash after
	// training, before upload) with this probability. Ignored under
	// gossip protocols.
	DropoutProb float64
	// EmbeddingDim defaults to 8.
	EmbeddingDim int
	// LocalEpochs defaults to 2.
	LocalEpochs int
	// TrackUtility also records the per-round recommendation quality
	// (HR@10 for GMF, F1@10 for PRME).
	TrackUtility bool
	Seed         uint64
}

// Report is the outcome of Run, mirroring the paper's metrics (§V-C).
type Report struct {
	// MaxAAC is the maximum average attack accuracy over rounds.
	MaxAAC float64
	// MaxRound is the round where MaxAAC was attained.
	MaxRound int
	// Best10AAC is the minimum accuracy among the best 10% adversaries
	// at MaxRound.
	Best10AAC float64
	// RandomBound is the expected accuracy of random guessing (K/N).
	RandomBound float64
	// UpperBound is the adversaries' mean observation-limited accuracy
	// ceiling (1 for the FL server).
	UpperBound float64
	// AACSeries is the average attack accuracy per round.
	AACSeries []float64
	// UtilitySeries is the per-round utility when TrackUtility is set.
	UtilitySeries []float64
}

// BestUtility returns the best recorded utility (0 when not tracked).
func (r *Report) BestUtility() float64 {
	if len(r.UtilitySeries) == 0 {
		return 0
	}
	return mathx.Max(r.UtilitySeries)
}

// LeakageFactor returns MaxAAC / RandomBound — "how many times better
// than guessing" the adversary is (the paper headlines ~10x in FL).
func (r *Report) LeakageFactor() float64 {
	if r.RandomBound == 0 {
		return math.Inf(1)
	}
	return r.MaxAAC / r.RandomBound
}

func (c *RunConfig) spec() experiments.Spec {
	s := experiments.BenchSpec()
	if c.Rounds > 0 {
		s.Rounds = c.Rounds
		s.GLRounds = c.Rounds
	}
	if c.Momentum > 0 {
		s.Beta = c.Momentum
	}
	if c.EmbeddingDim > 0 {
		s.Dim = c.EmbeddingDim
	}
	if c.LocalEpochs > 0 {
		s.LocalEpochs = c.LocalEpochs
	}
	if c.CommunitySize > 0 {
		s.KFrac = float64(c.CommunitySize) / float64(c.Dataset.NumUsers())
	}
	s.Seed = c.Seed
	s.Transport = string(c.Transport)
	s.TransportAddr = c.TransportAddr
	if c.Faults != "" {
		// Parse errors were caught by normalize.
		if p, err := transport.ParseFaultPlan(c.Faults); err == nil && p.Enabled() {
			s.FaultPlan = &p
		}
	}
	if c.Retry != "" {
		if rp, err := transport.ParseRetryPolicy(c.Retry); err == nil {
			s.Retry = &rp
		}
	}
	if comp, err := param.ParseCompression(c.Compression); err == nil {
		s.Compression = comp
	}
	s.StragglerDeadline = c.StragglerDeadline
	s.Quorum = c.Quorum
	return s
}

func (c *RunConfig) normalize() error {
	if c.Dataset == nil {
		return fmt.Errorf("ciarec: RunConfig.Dataset is required")
	}
	if err := c.Dataset.ensureSplit(); err != nil {
		return err
	}
	if c.Model == "" {
		c.Model = GMF
	}
	switch c.Model {
	case GMF, PRME, BPRMF, NeuMF:
	default:
		return fmt.Errorf("ciarec: unknown model %q", c.Model)
	}
	if c.Protocol == "" {
		c.Protocol = Federated
	}
	switch c.Protocol {
	case Federated, RandGossip, PersGossip:
	default:
		return fmt.Errorf("ciarec: unknown protocol %q", c.Protocol)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("ciarec: Rounds %d must not be negative (0 selects the default)", c.Rounds)
	}
	if c.ColluderFraction < 0 || c.ColluderFraction >= 1 {
		return fmt.Errorf("ciarec: ColluderFraction %v out of [0,1)", c.ColluderFraction)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("ciarec: ClientFraction %v out of [0,1] (0 selects full participation)", c.ClientFraction)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("ciarec: DropoutProb %v out of [0,1)", c.DropoutProb)
	}
	if !transport.Known(string(c.Transport)) {
		return fmt.Errorf("ciarec: unknown transport %q", c.Transport)
	}
	if c.TransportAddr != "" {
		switch TransportKind(strings.TrimPrefix(string(c.Transport), transport.FaultyPrefix)) {
		case TransportSocket, TransportSocketTCP:
		default:
			return fmt.Errorf("ciarec: TransportAddr requires a socket transport, got %q", c.Transport)
		}
	}
	if _, err := transport.ParseFaultPlan(c.Faults); err != nil {
		return fmt.Errorf("ciarec: Faults: %w", err)
	}
	if _, err := transport.ParseRetryPolicy(c.Retry); err != nil {
		return fmt.Errorf("ciarec: Retry: %w", err)
	}
	if _, err := param.ParseCompression(c.Compression); err != nil {
		return fmt.Errorf("ciarec: Compression: %w", err)
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("ciarec: Quorum %v out of [0,1]", c.Quorum)
	}
	if c.StragglerDeadline < 0 {
		return fmt.Errorf("ciarec: StragglerDeadline %v is negative", c.StragglerDeadline)
	}
	return nil
}

// Run executes the experiment described by cfg and returns the attack
// report.
func Run(cfg RunConfig) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	spec := cfg.spec()
	utility := experiments.UtilityNone
	if cfg.TrackUtility {
		utility = experiments.UtilityHR
		if cfg.Model == PRME {
			utility = experiments.UtilityF1
		}
	}
	var (
		res experiments.RunResult
		err error
	)
	if cfg.Protocol == Federated {
		res, err = experiments.RunFLCIA(experiments.FLOpts{
			Data:           cfg.Dataset.inner,
			Family:         string(cfg.Model),
			Policy:         cfg.Defense.policy(),
			Spec:           spec,
			Utility:        utility,
			ClientFraction: cfg.ClientFraction,
			DropoutProb:    cfg.DropoutProb,
		})
	} else {
		variant := gossip.RandGossip
		if cfg.Protocol == PersGossip {
			variant = gossip.PersGossip
		}
		if cfg.Rounds == 0 {
			spec.GLRounds = 80
		}
		res, err = experiments.RunGLCIA(experiments.GLOpts{
			Data:         cfg.Dataset.inner,
			Family:       string(cfg.Model),
			Policy:       cfg.Defense.policy(),
			Variant:      variant,
			Spec:         spec,
			Utility:      utility,
			ColluderFrac: cfg.ColluderFraction,
		})
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		MaxAAC:        res.Attack.MaxAAC,
		MaxRound:      res.Attack.MaxRound,
		Best10AAC:     res.Attack.Best10AAC,
		RandomBound:   res.Attack.RandomBound,
		UpperBound:    res.Attack.UpperBound,
		AACSeries:     res.Attack.Series,
		UtilitySeries: res.Utility,
	}, nil
}

// TargetedConfig describes a single-target attack: the adversary
// hand-crafts V_target (e.g. from a public POI category, §II) and
// wants the K users most interested in it.
type TargetedConfig struct {
	Dataset *Dataset
	// Target is the crafted item set (required).
	Target []int
	// CommunitySize is K (required).
	CommunitySize int
	// Model defaults to GMF; Defense defaults to NoDefense.
	Model   ModelFamily
	Defense Defense
	// Rounds defaults to 25; Momentum to 0.9; EmbeddingDim to 8;
	// LocalEpochs to 2.
	Rounds       int
	Momentum     float64
	EmbeddingDim int
	LocalEpochs  int
	Seed         uint64
}

// RunTargeted trains a federation and returns the K users CIA ranks as
// most interested in the target item set.
func RunTargeted(cfg TargetedConfig) ([]int, error) {
	rc := RunConfig{
		Dataset:      cfg.Dataset,
		Model:        cfg.Model,
		Defense:      cfg.Defense,
		Rounds:       cfg.Rounds,
		Momentum:     cfg.Momentum,
		EmbeddingDim: cfg.EmbeddingDim,
		LocalEpochs:  cfg.LocalEpochs,
		Seed:         cfg.Seed,
	}
	if err := rc.normalize(); err != nil {
		return nil, err
	}
	if cfg.CommunitySize <= 0 {
		return nil, fmt.Errorf("ciarec: TargetedConfig.CommunitySize is required")
	}
	return experiments.RunTargetedFL(
		cfg.Dataset.inner, string(rc.Model), rc.spec(),
		cfg.Target, cfg.CommunitySize, cfg.Defense.policy())
}

// jaccard is defined here to keep ciarec.go free of mathx imports.
func jaccard(d interface {
	TrainSet(int) map[int]struct{}
}, u, v int) float64 {
	return mathx.JaccardInt(d.TrainSet(u), d.TrainSet(v))
}
