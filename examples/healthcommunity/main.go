// Health community inference — the paper's motivating example (§II,
// Figure 1).
//
// A point-of-interest recommender is trained with Federated Learning
// on Foursquare-like check-ins. The adversary (the server) crafts a
// target item set from the *public* POI catalogue — the most popular
// "Health & Medicine" venues — and runs CIA to identify the users who
// visit health venues most. No private data is read: only the models
// users upload.
package main

import (
	"fmt"
	"log"
	"sort"

	ciarec "github.com/collablearn/ciarec"
)

func main() {
	data := ciarec.FoursquareLike(0.12, 7)
	data.SplitLeaveOneOut()
	fmt.Println("dataset:", data.Stats())

	health := data.CategoryID(ciarec.HealthCategory)
	healthItems := data.ItemsInCategory(health)
	fmt.Printf("catalogue: %d %q POIs (public information)\n",
		len(healthItems), ciarec.HealthCategory)
	fmt.Printf("baseline: %.1f%% of all check-ins are health venues\n\n",
		100*data.GlobalCategoryShare(health))

	// The adversary targets the 40 most plausible health venues. In a
	// real deployment popularity is public too (ratings counts, map
	// rankings); here we approximate it with the first items returned.
	target := healthItems
	if len(target) > 40 {
		target = target[:40]
	}

	members, err := ciarec.RunTargeted(ciarec.TargetedConfig{
		Dataset:       data,
		Target:        target,
		CommunitySize: 3, // the paper extracts a 3-community
		Rounds:        25,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Ints(members)
	fmt.Printf("inferred 3-community of health-vulnerable users: %v\n", members)
	for _, u := range members {
		fmt.Printf("  user %3d: %.0f%% of their check-ins are health venues\n",
			u, 100*data.CategoryShare(u, health))
	}
	fmt.Println("\nEvery member is far above the population baseline — the kind of")
	fmt.Println("signal an insurer or advertiser could exploit (§II).")
}
