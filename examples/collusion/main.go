// Collusion in gossip learning (§VI-D, Table IV).
//
// Gossip learning looks safer than FL because each adversary node only
// observes its neighbours' models. This example sweeps coalition sizes
// and shows how colluding nodes close the gap towards the federated
// server's accuracy.
package main

import (
	"fmt"
	"log"

	ciarec "github.com/collablearn/ciarec"
)

func main() {
	data := ciarec.MovieLensLike(0.15, 11)
	data.SplitLeaveOneOut()
	fmt.Println("dataset:", data.Stats())
	fmt.Println()

	// Reference point: the federated server sees everyone.
	fl, err := ciarec.Run(ciarec.RunConfig{
		Dataset: data, Protocol: ciarec.Federated, Rounds: 25, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s MaxAAC %5.1f%%  ceiling %5.1f%%\n", "FL server", 100*fl.MaxAAC, 100*fl.UpperBound)

	for _, frac := range []float64{0, 0.05, 0.10, 0.20} {
		report, err := ciarec.Run(ciarec.RunConfig{
			Dataset:          data,
			Protocol:         ciarec.RandGossip,
			Rounds:           80,
			ColluderFraction: frac,
			Seed:             11,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "single gossip adversary"
		if frac > 0 {
			label = fmt.Sprintf("%.0f%% colluders", 100*frac)
		}
		fmt.Printf("%-24s MaxAAC %5.1f%%  ceiling %5.1f%%\n",
			label, 100*report.MaxAAC, 100*report.UpperBound)
	}
	fmt.Printf("\nrandom guessing: %.1f%%\n", 100*fl.RandomBound)
	fmt.Println("Collusion buys observation coverage, which buys accuracy — but a")
	fmt.Println("realistic coalition still trails the FL server (the paper's RQ4).")
}
