// Quickstart: train a federated recommender on a synthetic dataset
// with planted taste communities and measure how well a curious server
// can recover those communities with the Community Inference Attack.
package main

import (
	"fmt"
	"log"

	ciarec "github.com/collablearn/ciarec"
)

func main() {
	// A MovieLens-shaped dataset at 15% scale: ~141 users, ~252 items,
	// with latent communities of shared taste.
	data := ciarec.MovieLensLike(0.15, 42)
	data.SplitLeaveOneOut()
	fmt.Println("dataset:", data.Stats())

	report, err := ciarec.Run(ciarec.RunConfig{
		Dataset:      data,
		Model:        ciarec.GMF,
		Protocol:     ciarec.Federated,
		Rounds:       25,
		TrackUtility: true,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack:  Max AAC %.1f%% at round %d (best-10%% adversaries reach %.1f%%)\n",
		100*report.MaxAAC, report.MaxRound, 100*report.Best10AAC)
	fmt.Printf("bounds:  random guessing %.1f%%, observation ceiling %.1f%%\n",
		100*report.RandomBound, 100*report.UpperBound)
	fmt.Printf("leakage: the adversary is %.1fx better than guessing\n", report.LeakageFactor())
	fmt.Printf("utility: best HR@10 %.3f — the federation still learned to recommend\n",
		report.BestUtility())
}
