// Universality of CIA (§VIII-E).
//
// The attack is not recommender-specific: any federation whose clients
// have non-iid data distributions leaks community structure. Here 100
// clients each hold samples of a single class of a synthetic
// image-like dataset and train a one-hidden-layer MLP; the server runs
// the *same* CIA implementation used against recommenders and recovers
// the class communities essentially perfectly.
package main

import (
	"fmt"
	"log"

	ciarec "github.com/collablearn/ciarec"
)

func main() {
	report, err := ciarec.RunUniversality(ciarec.UniversalityConfig{
		Clients:          100,
		Classes:          10,
		Dim:              32,
		SamplesPerClient: 40,
		Rounds:           25,
		HiddenUnits:      100, // the paper's MLP width
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global model accuracy: %.1f%% (the federation learns the task)\n",
		100*report.GlobalAccuracy)
	fmt.Printf("CIA community recovery: %.1f%% (random guessing: %.1f%%)\n",
		100*report.CIAAccuracy, 100*report.RandomBound)
	fmt.Println("\nClients sharing a data distribution form a community the server")
	fmt.Println("can read off the model exchanges — recommenders are just the")
	fmt.Println("most intuitive instance (paper: 100% recovery vs 10% random).")
}
