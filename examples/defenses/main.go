// Defense comparison (§VII, Figures 3 and 5).
//
// Two mitigations are evaluated against CIA on a federated GMF
// recommender: the Share-less policy (keep user embeddings private,
// regularize item drift) and user-level DP-SGD across privacy budgets.
// The output is the privacy/utility frontier the paper argues about:
// Share-less trades a little utility for a real accuracy drop, while
// DP-SGD destroys utility before it provides meaningful protection.
package main

import (
	"fmt"
	"log"
	"math"

	ciarec "github.com/collablearn/ciarec"
)

func main() {
	data := ciarec.MovieLensLike(0.15, 23)
	data.SplitLeaveOneOut()
	fmt.Println("dataset:", data.Stats())
	fmt.Println()
	fmt.Printf("%-28s %10s %10s\n", "defense", "MaxAAC", "HR@10")

	const rounds = 25
	run := func(label string, d ciarec.Defense) {
		report, err := ciarec.Run(ciarec.RunConfig{
			Dataset:      data,
			Protocol:     ciarec.Federated,
			Defense:      d,
			Rounds:       rounds,
			TrackUtility: true,
			Seed:         23,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.1f%% %10.3f\n", label, 100*report.MaxAAC, report.BestUtility())
	}

	run("none (full sharing)", ciarec.NoDefense())
	run("share-less (tau=5)", ciarec.ShareLess(5))
	for _, eps := range []float64{math.Inf(1), 1000, 100, 10, 1} {
		label := fmt.Sprintf("dp-sgd (eps=%g)", eps)
		if math.IsInf(eps, 1) {
			label = "dp-sgd (eps=inf, clip only)"
		}
		run(label, ciarec.DPSGDWithEpsilon(2, eps, 1e-6, rounds))
	}
	fmt.Println("\nShare-less cuts attack accuracy at a modest utility cost; DP-SGD")
	fmt.Println("needs ruinous noise before the attack approaches the random bound.")
}
