//go:build ignore

// Checktrace validates observability artifacts from the obs smoke
// run (scripts/obs_smoke.sh): each trace-file argument must be valid
// Chrome trace_event JSON — the {"traceEvents": [...]} shape that
// chrome://tracing and ui.perfetto.dev load — containing at least one
// complete ("X") slice, and a file passed via -metrics must be a
// non-empty JSON object of numeric samples.
//
// Usage:
//
//	go run scripts/checktrace.go [-metrics metrics.json] trace.json...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func checkTrace(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(blob, &tf); err != nil {
		return fmt.Errorf("%s: not valid trace_event JSON: %v", path, err)
	}
	slices := 0
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("%s: unnamed complete slice", path)
			}
			if ev.Dur < 0 || ev.Ts < 0 {
				return fmt.Errorf("%s: slice %q has negative ts/dur (%v/%v)", path, ev.Name, ev.Ts, ev.Dur)
			}
			slices++
		case "M":
			// metadata (process/thread names): fine
		default:
			return fmt.Errorf("%s: unexpected event phase %q", path, ev.Ph)
		}
	}
	if slices == 0 {
		return fmt.Errorf("%s: no complete slices recorded", path)
	}
	fmt.Printf("checktrace: %s ok (%d slices, %d events)\n", path, slices, len(tf.TraceEvents))
	return nil
}

func checkMetrics(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	samples := map[string]float64{}
	if err := json.Unmarshal(blob, &samples); err != nil {
		return fmt.Errorf("%s: not a JSON metrics object: %v", path, err)
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: empty metrics dump", path)
	}
	fmt.Printf("checktrace: %s ok (%d samples)\n", path, len(samples))
	return nil
}

func main() {
	metrics := flag.String("metrics", "", "also validate this end-of-run JSON metrics dump")
	flag.Parse()
	fail := false
	for _, path := range flag.Args() {
		if err := checkTrace(path); err != nil {
			fmt.Fprintf(os.Stderr, "checktrace: %v\n", err)
			fail = true
		}
	}
	if *metrics != "" {
		if err := checkMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "checktrace: %v\n", err)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
