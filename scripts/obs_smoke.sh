#!/usr/bin/env bash
# Obs smoke: a short two-process socket scenario with the full
# observability surface on, asserting that
#   - the worker's -metrics-addr endpoint serves non-empty Prometheus
#     text exposition while traffic flows,
#   - both processes write valid Chrome trace_event JSON (-trace),
#   - the scenario's metrics_out dump is a non-empty JSON object.
# Run from the repository root (CI does; see .github/workflows/ci.yml).
set -euo pipefail

workdir="$(mktemp -d)"
worker_pid=""
cleanup() {
  if [[ -n "$worker_pid" ]] && kill -0 "$worker_pid" 2>/dev/null; then
    kill -TERM "$worker_pid" 2>/dev/null || true
    wait "$worker_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "obs_smoke: building"
go build -o "$workdir/ciabench" ./cmd/ciabench
go build -o "$workdir/ciaworker" ./cmd/ciaworker

echo "obs_smoke: starting traced worker"
"$workdir/ciaworker" -network unix -addr auto -ready "$workdir/ready" \
  -metrics-addr 127.0.0.1:0 -trace "$workdir/worker-trace.json" \
  >"$workdir/worker.log" 2>&1 &
worker_pid=$!

for _ in $(seq 1 100); do
  [[ -f "$workdir/ready" ]] && break
  kill -0 "$worker_pid" 2>/dev/null || { cat "$workdir/worker.log"; echo "obs_smoke: worker died before ready"; exit 1; }
  sleep 0.1
done
[[ -f "$workdir/ready" ]] || { echo "obs_smoke: worker never became ready"; exit 1; }
read -r _net sock <"$workdir/ready"
metrics_url="$(sed -n 's/^ciaworker: metrics at \(http:[^ ]*\)$/\1/p' "$workdir/worker.log")"
[[ -n "$metrics_url" ]] || { cat "$workdir/worker.log"; echo "obs_smoke: worker printed no metrics address"; exit 1; }

echo "obs_smoke: running socket scenario against $sock"
cat >"$workdir/scenario.json" <<EOF
{
  "name": "obs-smoke",
  "protocol": "fed",
  "dataset": "movielens",
  "family": "gmf",
  "rounds": 2,
  "seed": 7,
  "transport": "socket",
  "transport_addr": "$sock",
  "metrics_out": "$workdir/metrics.json"
}
EOF
"$workdir/ciabench" -scenario "$workdir/scenario.json" -trace "$workdir/bench-trace.json"

echo "obs_smoke: probing worker metrics endpoint $metrics_url"
exposition="$(curl -sSf "$metrics_url")"
[[ -n "$exposition" ]] || { echo "obs_smoke: empty exposition"; exit 1; }
grep -q '^# TYPE rpc_conn_errors_total' <<<"$exposition" || {
  echo "obs_smoke: exposition missing rpc counters:"; echo "$exposition"; exit 1; }

echo "obs_smoke: draining worker"
kill -TERM "$worker_pid"
wait "$worker_pid"
worker_pid=""

go run scripts/checktrace.go -metrics "$workdir/metrics.json" \
  "$workdir/bench-trace.json" "$workdir/worker-trace.json"
echo "obs_smoke: ok"
