# benchdiff.awk — minimal fallback for benchstat when the binary is not
# installed: averages ns/op per benchmark across samples in two `go test
# -bench` output files and prints old → new with the percentage delta.
#
#   awk -f scripts/benchdiff.awk old.txt new.txt
#
# Unlike benchstat it computes no confidence intervals; treat deltas
# within a few percent as noise (or install benchstat:
# go install golang.org/x/perf/cmd/benchstat@latest).
/^Benchmark/ {
    # Lines look like: BenchmarkName-8  <iters>  <value> ns/op [...]
    value = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") { value = $(i - 1); break }
    }
    if (value == "") next
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (FILENAME == ARGV[1]) {
        oldsum[name] += value
        oldn[name]++
    } else {
        newsum[name] += value
        newn[name]++
        if (!(name in order)) {
            order[name] = ++count
            names[count] = name
        }
    }
}
END {
    printf "%-60s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    for (i = 1; i <= count; i++) {
        name = names[i]
        if (!(name in oldsum)) continue
        o = oldsum[name] / oldn[name]
        n = newsum[name] / newn[name]
        printf "%-60s %14.0f %14.0f %+8.1f%%\n", name, o, n, (n - o) * 100 / o
    }
}
