package ciarec

import (
	"math"
	"testing"
)

func quickDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(GenerateConfig{
		Name: "facade-test", NumUsers: 80, NumItems: 200,
		NumCommunities: 4, MeanItemsPerUser: 25, Affinity: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDatasetAccessors(t *testing.T) {
	d := quickDataset(t)
	if d.NumUsers() != 80 || d.NumItems() != 200 {
		t.Fatalf("shape %d/%d", d.NumUsers(), d.NumItems())
	}
	if d.NumInteractions() == 0 {
		t.Fatal("no interactions")
	}
	items := d.TrainItems(0)
	if len(items) == 0 {
		t.Fatal("no items for user 0")
	}
	items[0] = -1 // must be a copy
	if d.TrainItems(0)[0] == -1 {
		t.Fatal("TrainItems returned live storage")
	}
	if j := d.Jaccard(0, 0); j != 1 {
		t.Fatalf("self-Jaccard %v", j)
	}
	if d.Stats() == "" {
		t.Fatal("empty stats")
	}
}

func TestPresets(t *testing.T) {
	ml := MovieLensLike(0.1, 1)
	if ml.NumUsers() == 0 {
		t.Fatal("empty movielens preset")
	}
	fs := FoursquareLike(0.05, 1)
	if fs.CategoryID(HealthCategory) != 0 {
		t.Fatal("foursquare preset lacks the health category")
	}
	if len(fs.CategoryNames()) == 0 {
		t.Fatal("foursquare preset lacks category names")
	}
	if len(fs.ItemsInCategory(0)) == 0 {
		t.Fatal("no health items")
	}
	gw := GowallaLike(0.05, 1)
	if gw.NumUsers() == 0 {
		t.Fatal("empty gowalla preset")
	}
}

func TestRunRequiresSplit(t *testing.T) {
	d := quickDataset(t)
	if _, err := Run(RunConfig{Dataset: d}); err == nil {
		t.Fatal("Run must demand an evaluation split")
	}
}

func TestRunValidation(t *testing.T) {
	d := quickDataset(t)
	d.SplitLeaveOneOut()
	cases := []RunConfig{
		{},
		{Dataset: d, Model: "nope"},
		{Dataset: d, Protocol: "nope"},
		{Dataset: d, ColluderFraction: 1.5},
		{Dataset: d, Rounds: -1},
		{Dataset: d, ClientFraction: -0.1},
		{Dataset: d, ClientFraction: 1.1},
		{Dataset: d, DropoutProb: -0.1},
		{Dataset: d, DropoutProb: 1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunFederatedEndToEnd(t *testing.T) {
	d := quickDataset(t)
	d.SplitLeaveOneOut()
	report, err := Run(RunConfig{
		Dataset:      d,
		Rounds:       10,
		TrackUtility: true,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxAAC < 2*report.RandomBound {
		t.Fatalf("attack not above random: %.3f vs %.3f", report.MaxAAC, report.RandomBound)
	}
	if report.UpperBound != 1 {
		t.Fatalf("FL upper bound %v", report.UpperBound)
	}
	if len(report.AACSeries) != 10 {
		t.Fatalf("series length %d", len(report.AACSeries))
	}
	if report.BestUtility() <= 0 {
		t.Fatal("utility not tracked")
	}
	if report.LeakageFactor() < 2 {
		t.Fatalf("leakage factor %.2f", report.LeakageFactor())
	}
}

func TestRunGossipWithDefense(t *testing.T) {
	d := quickDataset(t)
	d.SplitLeaveOneOut()
	report, err := Run(RunConfig{
		Dataset:  d,
		Protocol: RandGossip,
		Defense:  ShareLess(5),
		Rounds:   20,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.UpperBound >= 1 {
		t.Fatal("gossip upper bound should reflect partial observation")
	}
	if report.MaxAAC < 0 || report.MaxAAC > 1 {
		t.Fatalf("MaxAAC out of range: %v", report.MaxAAC)
	}
}

func TestDefenseConstructors(t *testing.T) {
	if NoDefense().Name() != "full" {
		t.Fatal("NoDefense name")
	}
	if ShareLess(0.5).Name() != "share-less" {
		t.Fatal("ShareLess name")
	}
	if DPSGD(2, 0.1).Name() != "dp-sgd" {
		t.Fatal("DPSGD name")
	}
	noNoise := DPSGDWithEpsilon(2, math.Inf(1), 1e-6, 10)
	if noNoise.noise != 0 {
		t.Fatal("infinite epsilon should calibrate zero noise")
	}
	tight := DPSGDWithEpsilon(2, 1, 1e-6, 10)
	if tight.noise <= 0 {
		t.Fatal("epsilon=1 should calibrate positive noise")
	}
}

func TestRunTargetedFindsPlantedCommunity(t *testing.T) {
	fs := FoursquareLike(0.08, 4)
	fs.SplitLeaveOneOut()
	health := fs.ItemsInCategory(fs.CategoryID(HealthCategory))
	if len(health) == 0 {
		t.Fatal("no health items")
	}
	target := health
	if len(target) > 40 {
		target = target[:40]
	}
	members, err := RunTargeted(TargetedConfig{
		Dataset:       fs,
		Target:        target,
		CommunitySize: 3,
		Rounds:        12,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("got %d members", len(members))
	}
	hc := fs.CategoryID(HealthCategory)
	var share float64
	for _, u := range members {
		share += fs.CategoryShare(u, hc)
	}
	share /= 3
	if share < 3*fs.GlobalCategoryShare(hc) {
		t.Fatalf("inferred members not health-focused: %.3f vs %.3f",
			share, fs.GlobalCategoryShare(hc))
	}
}

func TestRunTargetedValidation(t *testing.T) {
	d := quickDataset(t)
	d.SplitLeaveOneOut()
	if _, err := RunTargeted(TargetedConfig{Dataset: d, Target: []int{1}}); err == nil {
		t.Fatal("missing CommunitySize should fail")
	}
	if _, err := RunTargeted(TargetedConfig{Dataset: d, CommunitySize: 3}); err == nil {
		t.Fatal("missing Target should fail")
	}
}

func TestRunUniversalityFacade(t *testing.T) {
	report, err := RunUniversality(UniversalityConfig{
		Clients: 30, Classes: 5, Dim: 16, SamplesPerClient: 20,
		Rounds: 15, HiddenUnits: 32, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.CIAAccuracy < 0.9 {
		t.Fatalf("universality CIA %.3f", report.CIAAccuracy)
	}
	if report.RandomBound != 0.2 {
		t.Fatalf("random bound %v", report.RandomBound)
	}
}
