package dataset

import (
	"fmt"
	"math"

	"github.com/collablearn/ciarec/internal/mathx"
)

// SyntheticConfig parameterizes the planted-community generator.
//
// The generative model: every item has a primary topic drawn uniformly
// from [0, NumCommunities); within a topic, items follow a Zipf
// popularity law. Every user belongs to one latent community. Each of
// the user's interactions is drawn from the user's own community's
// topic with probability Affinity (its override, if any), and from the
// global catalogue otherwise. High affinity ⇒ tight communities ⇒ a
// strong signal for the attack; Affinity→0 degenerates to iid users,
// where CIA should approach the random bound (dataset tests pin both
// ends of this spectrum).
type SyntheticConfig struct {
	Name           string
	NumUsers       int
	NumItems       int
	NumCommunities int

	// MeanItemsPerUser and MinItemsPerUser bound the per-user history
	// size; sizes are lognormal-ish around the mean like real traces.
	MeanItemsPerUser int
	MinItemsPerUser  int

	// Affinity is the probability an interaction is drawn from the
	// user's own community topic (default 0.8).
	Affinity float64
	// AffinityOverride lets individual communities deviate (e.g. the
	// "health-vulnerable" community in the Figure-1 example).
	AffinityOverride map[int]float64
	// CommunitySizes optionally pins the size of the first
	// len(CommunitySizes) communities; remaining users spread uniformly
	// over the remaining communities.
	CommunitySizes []int

	// ZipfExponent controls popularity skew within and across topics
	// (default 0.8, a typical implicit-feedback skew).
	ZipfExponent float64

	// NumCategories > 0 assigns each topic a category id
	// (topic mod NumCategories) and labels items accordingly.
	NumCategories int
	CategoryNames []string

	Seed uint64
}

func (c *SyntheticConfig) setDefaults() {
	if c.Name == "" {
		c.Name = "synthetic"
	}
	if c.Affinity == 0 {
		c.Affinity = 0.8
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.8
	}
	if c.MeanItemsPerUser == 0 {
		c.MeanItemsPerUser = 50
	}
	if c.MinItemsPerUser == 0 {
		c.MinItemsPerUser = 8
	}
	if c.NumCommunities == 0 {
		c.NumCommunities = 10
	}
}

func (c *SyntheticConfig) validate() error {
	if c.NumUsers <= 0 || c.NumItems <= 0 {
		return fmt.Errorf("dataset: synthetic config needs positive users/items, got %d/%d", c.NumUsers, c.NumItems)
	}
	if c.NumCommunities > c.NumUsers {
		return fmt.Errorf("dataset: more communities (%d) than users (%d)", c.NumCommunities, c.NumUsers)
	}
	if c.NumCommunities > c.NumItems {
		return fmt.Errorf("dataset: more communities (%d) than items (%d)", c.NumCommunities, c.NumItems)
	}
	if c.Affinity < 0 || c.Affinity > 1 {
		return fmt.Errorf("dataset: affinity %v out of [0,1]", c.Affinity)
	}
	var pinned int
	for _, s := range c.CommunitySizes {
		if s < 0 {
			return fmt.Errorf("dataset: negative community size")
		}
		pinned += s
	}
	if pinned > c.NumUsers {
		return fmt.Errorf("dataset: pinned community sizes (%d) exceed users (%d)", pinned, c.NumUsers)
	}
	if len(c.CommunitySizes) > c.NumCommunities {
		return fmt.Errorf("dataset: %d pinned sizes for %d communities", len(c.CommunitySizes), c.NumCommunities)
	}
	return nil
}

// GenerateSynthetic builds a dataset from cfg. It is deterministic in
// cfg.Seed. The returned dataset has an empty test split; apply
// SplitLeaveOneOut or SplitFraction before training.
func GenerateSynthetic(cfg SyntheticConfig) (*Dataset, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := mathx.NewRand(cfg.Seed)

	// Assign items to topics; keep per-topic item lists.
	topicItems := make([][]int, cfg.NumCommunities)
	categories := []int(nil)
	if cfg.NumCategories > 0 {
		categories = make([]int, cfg.NumItems)
	}
	for it := 0; it < cfg.NumItems; it++ {
		// Round-robin base assignment guarantees no topic is empty,
		// then a shuffle below removes the id/topic correlation.
		topic := it % cfg.NumCommunities
		topicItems[topic] = append(topicItems[topic], it)
		if categories != nil {
			categories[it] = topic % cfg.NumCategories
		}
	}
	for t := range topicItems {
		mathx.Shuffle(r, topicItems[t])
	}

	// Assign users to communities: pinned sizes first, then uniform.
	community := make([]int, cfg.NumUsers)
	order := mathx.Perm(r, cfg.NumUsers)
	idx := 0
	for c, size := range cfg.CommunitySizes {
		for k := 0; k < size; k++ {
			community[order[idx]] = c
			idx++
		}
	}
	free := cfg.NumCommunities - len(cfg.CommunitySizes)
	for ; idx < cfg.NumUsers; idx++ {
		if free > 0 {
			community[order[idx]] = len(cfg.CommunitySizes) + r.IntN(free)
		} else {
			community[order[idx]] = r.IntN(cfg.NumCommunities)
		}
	}

	// Popularity tables: one per topic plus a global one.
	globalZipf := mathx.NewZipfTable(cfg.NumItems, cfg.ZipfExponent)
	topicZipf := make([]*mathx.ZipfTable, cfg.NumCommunities)
	for t := range topicZipf {
		topicZipf[t] = mathx.NewZipfTable(len(topicItems[t]), cfg.ZipfExponent)
	}
	globalOrder := mathx.Perm(r, cfg.NumItems) // rank → item id

	d := &Dataset{
		Name:             cfg.Name,
		NumUsers:         cfg.NumUsers,
		NumItems:         cfg.NumItems,
		Train:            make([][]int, cfg.NumUsers),
		Test:             make([][]int, cfg.NumUsers),
		Categories:       categories,
		CategoryNames:    cfg.CategoryNames,
		PlantedCommunity: community,
	}
	if categories != nil && len(cfg.CategoryNames) == 0 {
		d.CategoryNames = make([]string, cfg.NumCategories)
		for i := range d.CategoryNames {
			d.CategoryNames[i] = fmt.Sprintf("category-%d", i)
		}
	}

	for u := 0; u < cfg.NumUsers; u++ {
		c := community[u]
		aff := cfg.Affinity
		if ov, ok := cfg.AffinityOverride[c]; ok {
			aff = ov
		}
		// Lognormal-ish history length with a floor, capped by catalogue.
		n := int(math.Round(float64(cfg.MeanItemsPerUser) * math.Exp(0.4*r.NormFloat64())))
		if n < cfg.MinItemsPerUser {
			n = cfg.MinItemsPerUser
		}
		if n > cfg.NumItems/2 {
			n = cfg.NumItems / 2
		}
		seen := make(map[int]struct{}, n)
		items := make([]int, 0, n)
		attempts := 0
		for len(items) < n && attempts < 50*n {
			attempts++
			var it int
			if mathx.Bernoulli(r, aff) {
				it = topicItems[c][topicZipf[c].Draw(r)]
			} else {
				it = globalOrder[globalZipf.Draw(r)]
			}
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items = append(items, it)
		}
		d.Train[u] = items
	}
	d.finalize()
	return d, nil
}

// Foursquare-style POI category names. The first entry is the
// health category targeted by the paper's motivating example (§II).
var foursquareCategories = []string{
	"Health & Medicine",
	"Food",
	"Retail",
	"Nightlife",
	"Outdoors & Recreation",
	"Travel & Transport",
	"Education",
	"Arts & Entertainment",
	"Residence",
	"Professional & Office",
}

// HealthCategory is the name of the category used by the Figure-1
// motivating-example experiment.
const HealthCategory = "Health & Medicine"

// FoursquareCategories returns the POI category names used by the
// Foursquare-like generator, in category-id order (the health category
// is id 0). Callers get a copy.
func FoursquareCategories() []string {
	return append([]string(nil), foursquareCategories...)
}

// MovieLensLike builds a synthetic dataset shaped like MovieLens-100k
// (943 users, 1682 items, ~100k ratings at scale 1). scale in (0,1]
// shrinks users/items proportionally so unit tests and benches stay
// fast; experiments pass 1 for paper-sized runs.
func MovieLensLike(scale float64, seed uint64) *Dataset {
	d, err := GenerateSynthetic(SyntheticConfig{
		Name:             "movielens-like",
		NumUsers:         scaled(943, scale),
		NumItems:         scaled(1682, scale),
		NumCommunities:   communitiesFor(scaled(943, scale)),
		MeanItemsPerUser: 100,
		MinItemsPerUser:  20,
		Affinity:         0.8,
		ZipfExponent:     0.9,
		Seed:             seed,
	})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	return d
}

// FoursquareLike builds a synthetic dataset shaped like Foursquare-NYC
// (1083 users, 38333 POIs, ~200k check-ins at scale 1), with POI
// categories including "Health & Medicine". A small dedicated
// health-focused community reproduces the §II motivating example:
// its members draw ≳70% of their visits from health POIs while the
// global health share stays well under 10%.
func FoursquareLike(scale float64, seed uint64) *Dataset {
	users := scaled(1083, scale)
	items := scaled(38333, scale)
	ncom := communitiesFor(users)
	healthUsers := users / 50
	if healthUsers < 3 {
		healthUsers = 3
	}
	d, err := GenerateSynthetic(SyntheticConfig{
		Name:             "foursquare-like",
		NumUsers:         users,
		NumItems:         items,
		NumCommunities:   ncom,
		MeanItemsPerUser: 180,
		MinItemsPerUser:  25,
		Affinity:         0.8,
		// Community 0's topic maps to category 0 = Health & Medicine.
		AffinityOverride: map[int]float64{0: 0.9},
		CommunitySizes:   []int{healthUsers},
		ZipfExponent:     0.8,
		NumCategories:    len(foursquareCategories),
		CategoryNames:    foursquareCategories,
		Seed:             seed,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// GowallaLike builds a synthetic dataset shaped like Gowalla-NYC
// (718 users, 32924 POIs, ~186k check-ins at scale 1).
func GowallaLike(scale float64, seed uint64) *Dataset {
	users := scaled(718, scale)
	d, err := GenerateSynthetic(SyntheticConfig{
		Name:             "gowalla-like",
		NumUsers:         users,
		NumItems:         scaled(32924, scale),
		NumCommunities:   communitiesFor(users),
		MeanItemsPerUser: 250,
		MinItemsPerUser:  25,
		Affinity:         0.8,
		ZipfExponent:     0.8,
		Seed:             seed,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// scaled shrinks a paper-scale count, keeping a usable floor.
func scaled(full int, scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(math.Round(float64(full) * scale))
	if n < 20 {
		n = 20
	}
	return n
}

// communitiesFor keeps community sizes near the paper's K=50 regime:
// roughly one community per ~75 users, at least 4.
func communitiesFor(users int) int {
	n := users / 75
	if n < 4 {
		n = 4
	}
	return n
}
