package dataset

import "testing"

func TestNewConstructor(t *testing.T) {
	d, err := New("custom", 3, 10, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 3 || d.NumItems != 10 {
		t.Fatalf("shape %d/%d", d.NumUsers, d.NumItems)
	}
	// Missing users get empty histories.
	if len(d.Train[2]) != 0 {
		t.Fatal("user 2 should be empty")
	}
	// Train sets must be built.
	if _, ok := d.TrainSet(0)[1]; !ok {
		t.Fatal("train set cache not built")
	}
}

func TestNewConstructorErrors(t *testing.T) {
	cases := map[string]func() (*Dataset, error){
		"zero users":     func() (*Dataset, error) { return New("x", 0, 5, nil) },
		"zero items":     func() (*Dataset, error) { return New("x", 5, 0, nil) },
		"too many rows":  func() (*Dataset, error) { return New("x", 1, 5, [][]int{{0}, {1}}) },
		"item oob":       func() (*Dataset, error) { return New("x", 1, 5, [][]int{{7}}) },
		"duplicate item": func() (*Dataset, error) { return New("x", 1, 5, [][]int{{1, 1}}) },
	}
	for name, f := range cases {
		if _, err := f(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
