package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleUData = `1	10	5	100
1	20	3	50
2	10	4	10
2	30	2	99
3	5	1	1
`

func TestParseMovieLens(t *testing.T) {
	d, err := ParseMovieLens(strings.NewReader(sampleUData), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 3 || d.NumItems != 30 {
		t.Fatalf("shape %d/%d, want 3/30", d.NumUsers, d.NumItems)
	}
	// User 0's items must be timestamp-ordered: item 19 (ts 50), item 9 (ts 100).
	if len(d.Train[0]) != 2 || d.Train[0][0] != 19 || d.Train[0][1] != 9 {
		t.Fatalf("user 0 sequence %v, want [19 9]", d.Train[0])
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMovieLensDeduplicates(t *testing.T) {
	in := "1\t10\t5\t1\n1\t10\t4\t2\n1\t11\t3\t3\n"
	d, err := ParseMovieLens(strings.NewReader(in), "dup")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Train[0]) != 2 {
		t.Fatalf("duplicates not removed: %v", d.Train[0])
	}
}

func TestParseMovieLensErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "1\t2\n",
		"bad user":       "x\t2\t3\t4\n",
		"bad item":       "1\ty\t3\t4\n",
		"bad timestamp":  "1\t2\t3\tz\n",
		"zero id":        "0\t2\t3\t4\n",
		"empty":          "",
	}
	for name, in := range cases {
		if _, err := ParseMovieLens(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseMovieLensSkipsBlankLines(t *testing.T) {
	in := "1\t10\t5\t1\n\n   \n2\t11\t4\t2\n"
	d, err := ParseMovieLens(strings.NewReader(in), "blank")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 2 {
		t.Fatalf("users = %d, want 2", d.NumUsers)
	}
}

func TestLoadMovieLens100K(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.data")
	if err := os.WriteFile(path, []byte(sampleUData), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadMovieLens100K(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 3 {
		t.Fatalf("users = %d", d.NumUsers)
	}
	if _, err := LoadMovieLens100K(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

const sampleUItem = `1|Toy Story (1995)|01-Jan-1995||http://x|0|0|0|1|1|1|0|0|0|0|0|0|0|0|0|0|0|0|0
2|GoldenEye (1995)|01-Jan-1995||http://x|0|1|1|0|0|0|0|0|0|0|0|0|0|0|0|0|1|0|0
30|Belle de jour (1967)|01-Jan-1967||http://x|0|0|0|0|0|0|0|0|1|0|0|0|0|0|0|0|0|0|0
`

func TestParseMovieLensGenres(t *testing.T) {
	d, err := ParseMovieLens(strings.NewReader(sampleUData), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseMovieLensGenres(d, strings.NewReader(sampleUItem)); err != nil {
		t.Fatal(err)
	}
	// Item 0 (Toy Story): first set flag is Animation (index 3).
	if d.Categories[0] != 3 {
		t.Fatalf("item 0 category %d, want 3 (Animation)", d.Categories[0])
	}
	// Item 1 (GoldenEye): Action (index 1).
	if d.Categories[1] != 1 {
		t.Fatalf("item 1 category %d, want 1 (Action)", d.Categories[1])
	}
	// Item 29 (id 30): Drama (index 8).
	if d.Categories[29] != 8 {
		t.Fatalf("item 29 category %d, want 8 (Drama)", d.Categories[29])
	}
	// Unlabelled items default to "unknown" (0).
	if d.Categories[5] != 0 {
		t.Fatalf("unlabelled item category %d, want 0", d.Categories[5])
	}
	if d.CategoryID("Drama") != 8 {
		t.Fatal("category names not attached")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMovieLensGenresErrors(t *testing.T) {
	d, err := ParseMovieLens(strings.NewReader(sampleUData), "sample")
	if err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string]string{
		"too few fields": "1|Title|date\n",
		"bad id":         "x|T|d||u|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0|0\n",
	} {
		if err := ParseMovieLensGenres(d, strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadMovieLensGenresFile(t *testing.T) {
	d, err := ParseMovieLens(strings.NewReader(sampleUData), "sample")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "u.item")
	if err := os.WriteFile(path, []byte(sampleUItem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadMovieLensGenres(d, path); err != nil {
		t.Fatal(err)
	}
	if err := LoadMovieLensGenres(d, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
