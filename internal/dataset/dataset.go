// Package dataset provides the implicit-feedback recommendation data
// substrate for the reproduction.
//
// The paper evaluates on MovieLens-100k, Foursquare-NYC and
// Gowalla-NYC. Those traces are not redistributable and the module is
// built offline, so this package supplies synthetic generators with
// *planted latent communities* that preserve the two statistical
// properties the Community Inference Attack exploits: non-iid user
// tastes, and groups of users sharing a taste. A loader for the real
// MovieLens `u.data` format is included for users who have the files
// (see LoadMovieLens100K). DESIGN.md §2 documents the substitution.
package dataset

import (
	"fmt"
	"math/rand/v2"
)

// Dataset is an implicit-feedback interaction dataset. Ratings are
// binarized as in the paper (§V-A): observed interactions are 1,
// everything else 0. Train holds each user's items in interaction
// order (PRME consumes the order; GMF ignores it).
type Dataset struct {
	Name     string
	NumUsers int
	NumItems int

	// Train[u] lists user u's training items in interaction order.
	Train [][]int
	// Test[u] lists user u's held-out items (empty before a split).
	Test [][]int

	// Categories[i] is the category id of item i, or nil when the
	// dataset has no item taxonomy. CategoryNames names the ids.
	Categories    []int
	CategoryNames []string

	// PlantedCommunity[u] is the generator's latent community for user
	// u, or nil for real data. It exists ONLY to validate generators in
	// tests and examples; ground-truth communities for experiments are
	// always recomputed from the data via the Jaccard criterion
	// (internal/evalx), exactly as the paper defines them.
	PlantedCommunity []int

	trainSets []map[int]struct{}
	// trainBits[u] is a bitset over the item catalogue mirroring
	// trainSets[u]. Negative sampling is the hottest membership probe in
	// the repository (every SGD step and every HR sweep draws through
	// it), and a word test is an order of magnitude cheaper than a map
	// lookup. nil when the users×items bit table would exceed
	// trainBitsMaxBytes; SampleNegative then falls back to the maps.
	trainBits [][]uint64
}

// trainBitsMaxBytes caps the memory the bitset membership index may
// take (64 MiB ≈ a 250k-user × 2k-item catalogue, far beyond the
// paper-scale datasets). Larger shapes keep the map-only path.
const trainBitsMaxBytes = 64 << 20

// New assembles a dataset from explicit training interactions (test
// splits start empty). train may be shorter than numUsers; missing
// users get empty histories. The slices are adopted, not copied.
func New(name string, numUsers, numItems int, train [][]int) (*Dataset, error) {
	if numUsers <= 0 || numItems <= 0 {
		return nil, fmt.Errorf("dataset: New requires positive sizes, got %d/%d", numUsers, numItems)
	}
	if len(train) > numUsers {
		return nil, fmt.Errorf("dataset: %d train histories for %d users", len(train), numUsers)
	}
	d := &Dataset{
		Name:     name,
		NumUsers: numUsers,
		NumItems: numItems,
		Train:    make([][]int, numUsers),
		Test:     make([][]int, numUsers),
	}
	copy(d.Train, train)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	d.finalize()
	return d, nil
}

// finalize builds the cached per-user train sets (maps for the TrainSet
// API, bitsets for the sampling hot path). Every constructor and split
// must call it after mutating Train.
func (d *Dataset) finalize() {
	d.trainSets = make([]map[int]struct{}, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		set := make(map[int]struct{}, len(d.Train[u]))
		for _, it := range d.Train[u] {
			set[it] = struct{}{}
		}
		d.trainSets[u] = set
	}
	words := (d.NumItems + 63) / 64
	if int64(d.NumUsers)*int64(words)*8 > trainBitsMaxBytes {
		d.trainBits = nil
		return
	}
	bits := make([]uint64, d.NumUsers*words)
	d.trainBits = make([][]uint64, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		row := bits[u*words : (u+1)*words]
		for _, it := range d.Train[u] {
			row[it>>6] |= 1 << (uint(it) & 63)
		}
		d.trainBits[u] = row
	}
}

// TrainSet returns user u's training items as a set. The returned map
// is shared; callers must not mutate it.
func (d *Dataset) TrainSet(u int) map[int]struct{} { return d.trainSets[u] }

// NumInteractions returns the total number of training interactions.
func (d *Dataset) NumInteractions() int {
	var n int
	for _, items := range d.Train {
		n += len(items)
	}
	return n
}

// SampleNegative draws an item the user has not interacted with in
// either split. It panics if the user has interacted with every item.
//
// The rejection loop consumes the generator identically whichever
// membership index answers the probe (bitset or map), so sampling
// streams — and therefore every downstream result — are independent of
// the index the dataset shape selected.
func (d *Dataset) SampleNegative(r *rand.Rand, u int) int {
	if len(d.Train[u])+len(d.Test[u]) >= d.NumItems {
		panic(fmt.Sprintf("dataset: user %d has no negative items", u))
	}
	if bits := d.trainBits; bits != nil {
		row := bits[u]
		test := d.Test[u]
		for {
			it := r.IntN(d.NumItems)
			if row[it>>6]&(1<<(uint(it)&63)) != 0 {
				continue
			}
			held := false
			for _, h := range test {
				if h == it {
					held = true
					break
				}
			}
			if !held {
				return it
			}
		}
	}
	for {
		it := r.IntN(d.NumItems)
		if _, pos := d.trainSets[u][it]; pos {
			continue
		}
		held := false
		for _, h := range d.Test[u] {
			if h == it {
				held = true
				break
			}
		}
		if !held {
			return it
		}
	}
}

// SplitLeaveOneOut moves the last training interaction of every user
// with at least min items into the test split (the NCF evaluation
// protocol used for GMF's HR@K). Users below the threshold keep all
// items in train and get an empty test set.
func (d *Dataset) SplitLeaveOneOut(min int) {
	if min < 2 {
		min = 2
	}
	for u := 0; u < d.NumUsers; u++ {
		if len(d.Train[u]) < min {
			continue
		}
		last := len(d.Train[u]) - 1
		d.Test[u] = append(d.Test[u], d.Train[u][last])
		d.Train[u] = d.Train[u][:last]
	}
	d.finalize()
}

// SplitFraction moves the trailing frac of every user's interactions
// into the test split (used for PRME's F1@K). Each user keeps at least
// two training items and at most len-1 are held out.
func (d *Dataset) SplitFraction(frac float64) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("dataset: SplitFraction frac %v out of (0,1)", frac))
	}
	for u := 0; u < d.NumUsers; u++ {
		n := len(d.Train[u])
		k := int(float64(n) * frac)
		if k > n-2 {
			k = n - 2
		}
		if k <= 0 {
			continue
		}
		cut := n - k
		d.Test[u] = append(d.Test[u], d.Train[u][cut:]...)
		d.Train[u] = d.Train[u][:cut]
	}
	d.finalize()
}

// CategoryShare returns, for user u, the fraction of training
// interactions whose item belongs to category c. It returns 0 when the
// dataset has no categories or the user has no interactions.
func (d *Dataset) CategoryShare(u, c int) float64 {
	if d.Categories == nil || len(d.Train[u]) == 0 {
		return 0
	}
	var n int
	for _, it := range d.Train[u] {
		if d.Categories[it] == c {
			n++
		}
	}
	return float64(n) / float64(len(d.Train[u]))
}

// GlobalCategoryShare returns the fraction of all training
// interactions that fall in category c.
func (d *Dataset) GlobalCategoryShare(c int) float64 {
	if d.Categories == nil {
		return 0
	}
	var n, total int
	for u := range d.Train {
		for _, it := range d.Train[u] {
			if d.Categories[it] == c {
				n++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// CategoryID returns the id for a category name, or -1 if absent.
func (d *Dataset) CategoryID(name string) int {
	for i, n := range d.CategoryNames {
		if n == name {
			return i
		}
	}
	return -1
}

// ItemsInCategory returns every item id whose category is c.
func (d *Dataset) ItemsInCategory(c int) []int {
	var out []int
	for it, cat := range d.Categories {
		if cat == c {
			out = append(out, it)
		}
	}
	return out
}

// Clone returns a deep copy of the dataset (fresh slices and sets).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Name:     d.Name,
		NumUsers: d.NumUsers,
		NumItems: d.NumItems,
		Train:    make([][]int, d.NumUsers),
		Test:     make([][]int, d.NumUsers),
	}
	for u := range d.Train {
		out.Train[u] = append([]int(nil), d.Train[u]...)
		out.Test[u] = append([]int(nil), d.Test[u]...)
	}
	if d.Categories != nil {
		out.Categories = append([]int(nil), d.Categories...)
		out.CategoryNames = append([]string(nil), d.CategoryNames...)
	}
	if d.PlantedCommunity != nil {
		out.PlantedCommunity = append([]int(nil), d.PlantedCommunity...)
	}
	out.finalize()
	return out
}

// Validate checks structural invariants and returns the first
// violation found, or nil. It is cheap enough to call from tests after
// every split.
func (d *Dataset) Validate() error {
	if d.NumUsers != len(d.Train) || d.NumUsers != len(d.Test) {
		return fmt.Errorf("dataset %s: user count %d != train %d / test %d",
			d.Name, d.NumUsers, len(d.Train), len(d.Test))
	}
	if d.Categories != nil && len(d.Categories) != d.NumItems {
		return fmt.Errorf("dataset %s: categories %d != items %d",
			d.Name, len(d.Categories), d.NumItems)
	}
	for u := 0; u < d.NumUsers; u++ {
		seen := make(map[int]struct{}, len(d.Train[u])+len(d.Test[u]))
		for _, it := range d.Train[u] {
			if it < 0 || it >= d.NumItems {
				return fmt.Errorf("dataset %s: user %d train item %d out of range", d.Name, u, it)
			}
			if _, dup := seen[it]; dup {
				return fmt.Errorf("dataset %s: user %d duplicate item %d", d.Name, u, it)
			}
			seen[it] = struct{}{}
		}
		for _, it := range d.Test[u] {
			if it < 0 || it >= d.NumItems {
				return fmt.Errorf("dataset %s: user %d test item %d out of range", d.Name, u, it)
			}
			if _, dup := seen[it]; dup {
				return fmt.Errorf("dataset %s: user %d item %d in both splits", d.Name, u, it)
			}
			seen[it] = struct{}{}
		}
	}
	return nil
}

// Stats summarizes a dataset for logs and the datagen CLI.
type Stats struct {
	Users, Items, Interactions int
	MinPerUser, MaxPerUser     int
	MeanPerUser                float64
	Density                    float64
}

// ComputeStats returns summary statistics over the training split.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{Users: d.NumUsers, Items: d.NumItems}
	if d.NumUsers == 0 {
		return s
	}
	s.MinPerUser = len(d.Train[0])
	for _, items := range d.Train {
		n := len(items)
		s.Interactions += n
		if n < s.MinPerUser {
			s.MinPerUser = n
		}
		if n > s.MaxPerUser {
			s.MaxPerUser = n
		}
	}
	s.MeanPerUser = float64(s.Interactions) / float64(s.Users)
	if d.NumItems > 0 {
		s.Density = float64(s.Interactions) / (float64(s.Users) * float64(s.Items))
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("users=%d items=%d interactions=%d per-user[min=%d mean=%.1f max=%d] density=%.4f",
		s.Users, s.Items, s.Interactions, s.MinPerUser, s.MeanPerUser, s.MaxPerUser, s.Density)
}
