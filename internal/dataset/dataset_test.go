package dataset

import (
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

func smallSynthetic(t *testing.T, seed uint64) *Dataset {
	t.Helper()
	d, err := GenerateSynthetic(SyntheticConfig{
		Name:             "test",
		NumUsers:         60,
		NumItems:         200,
		NumCommunities:   4,
		MeanItemsPerUser: 25,
		MinItemsPerUser:  6,
		Affinity:         0.85,
		Seed:             seed,
	})
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	return d
}

func TestGenerateSyntheticInvariants(t *testing.T) {
	d := smallSynthetic(t, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 60 || d.NumItems != 200 {
		t.Fatalf("shape %d/%d", d.NumUsers, d.NumItems)
	}
	for u := 0; u < d.NumUsers; u++ {
		if len(d.Train[u]) < 6 {
			t.Fatalf("user %d below min history: %d", u, len(d.Train[u]))
		}
	}
	if len(d.PlantedCommunity) != d.NumUsers {
		t.Fatal("missing planted communities")
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	a := smallSynthetic(t, 7)
	b := smallSynthetic(t, 7)
	for u := range a.Train {
		if len(a.Train[u]) != len(b.Train[u]) {
			t.Fatal("same seed produced different datasets")
		}
		for i := range a.Train[u] {
			if a.Train[u][i] != b.Train[u][i] {
				t.Fatal("same seed produced different item sequences")
			}
		}
	}
	c := smallSynthetic(t, 8)
	diff := false
	for u := range a.Train {
		if len(a.Train[u]) != len(c.Train[u]) {
			diff = true
			break
		}
		for i := range a.Train[u] {
			if a.Train[u][i] != c.Train[u][i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical datasets")
	}
}

// Intra-community Jaccard similarity must exceed inter-community
// similarity by a wide margin — this is the signal CIA consumes.
func TestPlantedCommunitiesAreCohesive(t *testing.T) {
	d := smallSynthetic(t, 3)
	var intra, inter []float64
	for u := 0; u < d.NumUsers; u++ {
		for v := u + 1; v < d.NumUsers; v++ {
			j := mathx.JaccardInt(d.TrainSet(u), d.TrainSet(v))
			if d.PlantedCommunity[u] == d.PlantedCommunity[v] {
				intra = append(intra, j)
			} else {
				inter = append(inter, j)
			}
		}
	}
	mi, mo := mathx.Mean(intra), mathx.Mean(inter)
	if mi < 3*mo {
		t.Fatalf("communities not cohesive: intra=%.4f inter=%.4f", mi, mo)
	}
}

// With affinity 0, users are iid draws and community structure must
// vanish (the other end of the spectrum promised in the config docs).
func TestZeroAffinityHasNoCommunities(t *testing.T) {
	d, err := GenerateSynthetic(SyntheticConfig{
		NumUsers: 60, NumItems: 300, NumCommunities: 4,
		MeanItemsPerUser: 25, MinItemsPerUser: 6,
		Affinity: 1e-12, // ~0; exactly 0 would be replaced by the default
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter []float64
	for u := 0; u < d.NumUsers; u++ {
		for v := u + 1; v < d.NumUsers; v++ {
			j := mathx.JaccardInt(d.TrainSet(u), d.TrainSet(v))
			if d.PlantedCommunity[u] == d.PlantedCommunity[v] {
				intra = append(intra, j)
			} else {
				inter = append(inter, j)
			}
		}
	}
	mi, mo := mathx.Mean(intra), mathx.Mean(inter)
	if mi > 1.5*mo+0.02 {
		t.Fatalf("iid users still show community structure: intra=%.4f inter=%.4f", mi, mo)
	}
}

func TestCommunitySizesPinned(t *testing.T) {
	d, err := GenerateSynthetic(SyntheticConfig{
		NumUsers: 100, NumItems: 200, NumCommunities: 5,
		CommunitySizes: []int{7}, MeanItemsPerUser: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var c0 int
	for _, c := range d.PlantedCommunity {
		if c == 0 {
			c0++
		}
	}
	if c0 != 7 {
		t.Fatalf("pinned community size = %d, want 7", c0)
	}
}

func TestGenerateSyntheticConfigErrors(t *testing.T) {
	bad := []SyntheticConfig{
		{NumUsers: 0, NumItems: 10},
		{NumUsers: 10, NumItems: 0},
		{NumUsers: 5, NumItems: 100, NumCommunities: 10},
		{NumUsers: 100, NumItems: 5, NumCommunities: 10},
		{NumUsers: 10, NumItems: 10, Affinity: 1.5},
		{NumUsers: 10, NumItems: 100, NumCommunities: 2, CommunitySizes: []int{20}},
		{NumUsers: 10, NumItems: 100, NumCommunities: 2, CommunitySizes: []int{1, 1, 1}},
		{NumUsers: 10, NumItems: 100, NumCommunities: 2, CommunitySizes: []int{-1}},
	}
	for i, cfg := range bad {
		if _, err := GenerateSynthetic(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestSplitLeaveOneOut(t *testing.T) {
	d := smallSynthetic(t, 2)
	before := d.NumInteractions()
	d.SplitLeaveOneOut(2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var heldOut int
	for u := 0; u < d.NumUsers; u++ {
		heldOut += len(d.Test[u])
		if len(d.Test[u]) != 1 {
			t.Fatalf("user %d has %d test items, want 1", u, len(d.Test[u]))
		}
	}
	if d.NumInteractions()+heldOut != before {
		t.Fatal("split lost interactions")
	}
	// Train sets must have been rebuilt.
	for u := 0; u < d.NumUsers; u++ {
		if _, ok := d.TrainSet(u)[d.Test[u][0]]; ok {
			t.Fatal("held-out item still in train set")
		}
	}
}

func TestSplitFraction(t *testing.T) {
	d := smallSynthetic(t, 2)
	d.SplitFraction(0.2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers; u++ {
		if len(d.Train[u]) < 2 {
			t.Fatalf("user %d train shrunk below 2", u)
		}
		if len(d.Test[u]) == 0 && len(d.Train[u]) > 10 {
			t.Fatalf("user %d with %d items has no test split", u, len(d.Train[u]))
		}
	}
}

func TestSplitFractionPanicsOutOfRange(t *testing.T) {
	d := smallSynthetic(t, 2)
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SplitFraction(%v) must panic", frac)
				}
			}()
			d.SplitFraction(frac)
		}()
	}
}

func TestSampleNegative(t *testing.T) {
	d := smallSynthetic(t, 4)
	d.SplitLeaveOneOut(2)
	r := mathx.NewRand(1)
	for u := 0; u < d.NumUsers; u++ {
		for k := 0; k < 20; k++ {
			neg := d.SampleNegative(r, u)
			if _, pos := d.TrainSet(u)[neg]; pos {
				t.Fatal("negative sample is a training positive")
			}
			for _, h := range d.Test[u] {
				if h == neg {
					t.Fatal("negative sample is a held-out item")
				}
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := smallSynthetic(t, 6)
	c := d.Clone()
	c.Train[0][0] = (c.Train[0][0] + 1) % c.NumItems
	c.finalize()
	if d.Train[0][0] == c.Train[0][0] {
		t.Fatal("Clone shares Train storage")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	d := smallSynthetic(t, 9)
	s := d.ComputeStats()
	if s.Users != 60 || s.Items != 200 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.Interactions != d.NumInteractions() {
		t.Fatal("stats interactions mismatch")
	}
	if s.MinPerUser > s.MaxPerUser || s.MeanPerUser <= 0 || s.Density <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}
