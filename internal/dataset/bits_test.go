package dataset

import (
	"math/rand/v2"
	"testing"
)

// TestTrainBitsMirrorTrainSets checks the bitset membership index
// against the map index item for item.
func TestTrainBitsMirrorTrainSets(t *testing.T) {
	d, err := GenerateSynthetic(SyntheticConfig{
		Name: "bits", NumUsers: 60, NumItems: 130,
		NumCommunities: 3, MeanItemsPerUser: 25, MinItemsPerUser: 5,
		Affinity: 0.8, ZipfExponent: 0.8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	if d.trainBits == nil {
		t.Fatal("bitset index not built at bench scale")
	}
	for u := 0; u < d.NumUsers; u++ {
		for it := 0; it < d.NumItems; it++ {
			_, inMap := d.trainSets[u][it]
			inBits := d.trainBits[u][it>>6]&(1<<(uint(it)&63)) != 0
			if inMap != inBits {
				t.Fatalf("user %d item %d: map=%v bits=%v", u, it, inMap, inBits)
			}
		}
	}
}

// TestSampleNegativeIndexInvariance pins the determinism contract: the
// bitset fast path and the map fallback consume the generator
// identically, so the sampled negative streams match draw for draw.
func TestSampleNegativeIndexInvariance(t *testing.T) {
	d, err := GenerateSynthetic(SyntheticConfig{
		Name: "bits-stream", NumUsers: 40, NumItems: 90,
		NumCommunities: 2, MeanItemsPerUser: 30, MinItemsPerUser: 5,
		Affinity: 0.85, ZipfExponent: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	fallback := d.Clone()
	fallback.trainBits = nil // force the map path
	r1 := rand.New(rand.NewPCG(5, 7))
	r2 := rand.New(rand.NewPCG(5, 7))
	for i := 0; i < 5000; i++ {
		u := i % d.NumUsers
		if a, b := d.SampleNegative(r1, u), fallback.SampleNegative(r2, u); a != b {
			t.Fatalf("draw %d user %d: bitset %d != map %d", i, u, a, b)
		}
	}
}
