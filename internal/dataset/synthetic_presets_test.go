package dataset

import "testing"

func TestMovieLensLikeShape(t *testing.T) {
	d := MovieLensLike(0.1, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers != 94 || d.NumItems != 168 {
		t.Fatalf("scale 0.1 shape = %d/%d, want 94/168", d.NumUsers, d.NumItems)
	}
	if d.Categories != nil {
		t.Fatal("movielens-like should not carry categories")
	}
}

func TestFoursquareLikeHealthCommunity(t *testing.T) {
	d := FoursquareLike(0.1, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	hc := d.CategoryID(HealthCategory)
	if hc != 0 {
		t.Fatalf("health category id = %d, want 0", hc)
	}
	// Members of planted community 0 must be strongly health-focused,
	// while the global share stays low — the §II phenomenon.
	global := d.GlobalCategoryShare(hc)
	if global > 0.20 {
		t.Fatalf("global health share too high: %v", global)
	}
	var members int
	for u := 0; u < d.NumUsers; u++ {
		if d.PlantedCommunity[u] != 0 {
			continue
		}
		members++
		if share := d.CategoryShare(u, hc); share < 0.5 {
			t.Fatalf("health community member %d has share %v, want >= 0.5", u, share)
		}
	}
	if members < 3 {
		t.Fatalf("health community has %d members, want >= 3", members)
	}
	if members > d.NumUsers/10 {
		t.Fatalf("health community too large: %d of %d", members, d.NumUsers)
	}
}

func TestGowallaLikeShape(t *testing.T) {
	d := GowallaLike(0.08, 2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers < 20 || d.NumItems < 100 {
		t.Fatalf("degenerate shape %d/%d", d.NumUsers, d.NumItems)
	}
}

func TestPresetFullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation is slow")
	}
	ml := MovieLensLike(1, 1)
	if ml.NumUsers != 943 || ml.NumItems != 1682 {
		t.Fatalf("movielens full scale %d/%d", ml.NumUsers, ml.NumItems)
	}
	fs := FoursquareLike(1, 1)
	if fs.NumUsers != 1083 || fs.NumItems != 38333 {
		t.Fatalf("foursquare full scale %d/%d", fs.NumUsers, fs.NumItems)
	}
	gw := GowallaLike(1, 1)
	if gw.NumUsers != 718 || gw.NumItems != 32924 {
		t.Fatalf("gowalla full scale %d/%d", gw.NumUsers, gw.NumItems)
	}
}

func TestItemsInCategoryPartition(t *testing.T) {
	d := FoursquareLike(0.05, 3)
	var total int
	for c := range d.CategoryNames {
		total += len(d.ItemsInCategory(c))
	}
	if total != d.NumItems {
		t.Fatalf("categories partition %d of %d items", total, d.NumItems)
	}
	if d.CategoryID("No Such Category") != -1 {
		t.Fatal("unknown category must map to -1")
	}
}
