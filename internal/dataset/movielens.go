package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// LoadMovieLens100K parses the classic MovieLens-100k `u.data` format:
// one interaction per line, tab-separated "user item rating timestamp",
// with 1-based user and item ids. Ratings are binarized (any rating is
// an observed interaction, per §V-A of the paper) and each user's
// interactions are ordered by timestamp so PRME sees real sequences.
//
// The synthetic generators are the default substrate (the module is
// built offline); this loader exists so users with the real trace can
// reproduce on it directly.
func LoadMovieLens100K(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open movielens file: %w", err)
	}
	defer f.Close()
	return ParseMovieLens(f, "movielens-100k")
}

type interaction struct {
	user, item int
	ts         int64
}

// MovieLensGenres are the 19 genre flags of the MovieLens-100k u.item
// format, in column order.
var MovieLensGenres = []string{
	"unknown", "Action", "Adventure", "Animation", "Children's",
	"Comedy", "Crime", "Documentary", "Drama", "Fantasy", "Film-Noir",
	"Horror", "Musical", "Mystery", "Romance", "Sci-Fi", "Thriller",
	"War", "Western",
}

// LoadMovieLensGenres parses the MovieLens-100k `u.item` file and
// attaches genre categories to d (each item's category is its first
// set genre flag). With categories attached, the targeted-attack
// workflow of the §II motivating example works on the real trace, e.g.
// crafting V_target from every Horror movie.
func LoadMovieLensGenres(d *Dataset, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: open u.item: %w", err)
	}
	defer f.Close()
	return ParseMovieLensGenres(d, f)
}

// ParseMovieLensGenres reads u.item-formatted metadata from r and
// attaches it to d. The format is pipe-separated:
// id|title|date|videodate|url|flag0|...|flag18 with 1-based ids.
func ParseMovieLensGenres(d *Dataset, r io.Reader) error {
	categories := make([]int, d.NumItems)
	for i := range categories {
		categories[i] = 0 // "unknown"
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "|")
		if len(fields) < 5+len(MovieLensGenres) {
			return fmt.Errorf("dataset: u.item line %d: %d fields, want >= %d",
				line, len(fields), 5+len(MovieLensGenres))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 1 {
			return fmt.Errorf("dataset: u.item line %d: bad item id %q", line, fields[0])
		}
		if id-1 >= d.NumItems {
			continue // item never interacted with; no slot to label
		}
		for g := range MovieLensGenres {
			if fields[5+g] == "1" {
				categories[id-1] = g
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dataset: u.item scan: %w", err)
	}
	d.Categories = categories
	d.CategoryNames = append([]string(nil), MovieLensGenres...)
	return nil
}

// ParseMovieLens reads u.data-formatted interactions from r.
// Malformed lines produce an error rather than being skipped, so a
// truncated download is caught immediately.
func ParseMovieLens(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var rows []interaction
	maxUser, maxItem := -1, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("dataset: %s line %d: want >=3 fields, got %d", name, line, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad user id: %w", name, line, err)
		}
		it, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: bad item id: %w", name, line, err)
		}
		var ts int64
		if len(fields) >= 4 {
			ts, err = strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s line %d: bad timestamp: %w", name, line, err)
			}
		}
		if u < 1 || it < 1 {
			return nil, fmt.Errorf("dataset: %s line %d: ids must be 1-based positive", name, line)
		}
		rows = append(rows, interaction{user: u - 1, item: it - 1, ts: ts})
		if u-1 > maxUser {
			maxUser = u - 1
		}
		if it-1 > maxItem {
			maxItem = it - 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %s: scan: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s: no interactions", name)
	}

	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].user != rows[b].user {
			return rows[a].user < rows[b].user
		}
		return rows[a].ts < rows[b].ts
	})

	d := &Dataset{
		Name:     name,
		NumUsers: maxUser + 1,
		NumItems: maxItem + 1,
		Train:    make([][]int, maxUser+1),
		Test:     make([][]int, maxUser+1),
	}
	for _, row := range rows {
		// Deduplicate repeat interactions, keeping first occurrence.
		dup := false
		for _, prev := range d.Train[row.user] {
			if prev == row.item {
				dup = true
				break
			}
		}
		if !dup {
			d.Train[row.user] = append(d.Train[row.user], row.item)
		}
	}
	d.finalize()
	return d, nil
}
