package model

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

func TestNewBPRMFShape(t *testing.T) {
	m := NewBPRMF(5, 7, 4, 1)
	if m.NumUsers() != 5 || m.NumItems() != 7 || m.Name() != "bprmf" {
		t.Fatal("wrong identity")
	}
	for _, name := range []string{BPRMFUserEmb, BPRMFItemEmb, BPRMFItemBias} {
		if !m.Params().Has(name) {
			t.Fatalf("missing entry %s", name)
		}
	}
	if len(m.PrivateEntries()) != 1 || len(m.ItemEntries()) != 1 {
		t.Fatal("entry classification wrong")
	}
}

func TestBPRMFCloneIndependent(t *testing.T) {
	m := NewBPRMF(3, 3, 2, 1)
	c := m.Clone()
	c.Params().Get(BPRMFItemBias)[0] += 5
	if m.Params().Get(BPRMFItemBias)[0] == c.Params().Get(BPRMFItemBias)[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestBPRMFNumericalGradient(t *testing.T) {
	m := NewBPRMF(2, 5, 3, 7)
	u, pos, neg := 0, 1, 3
	p := m.userEmb.Row(u)
	loss := func() float64 {
		z := m.score(p, pos) - m.score(p, neg)
		return -mathx.LogSigmoid(z)
	}
	z := m.score(p, pos) - m.score(p, neg)
	g := -mathx.Sigmoid(-z)
	qp, qn := m.itemEmb.Row(pos), m.itemEmb.Row(neg)
	const eps = 1e-6
	for k := 0; k < 3; k++ {
		analytic := g * (qp[k] - qn[k])
		p[k] += eps
		up := loss()
		p[k] -= 2 * eps
		down := loss()
		p[k] += eps
		numeric := (up - down) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-5 {
			t.Fatalf("dP[%d]: analytic %.8f numeric %.8f", k, analytic, numeric)
		}
	}
	// Item-bias gradient: dL/db_pos = g.
	m.itemBias[pos] += eps
	up := loss()
	m.itemBias[pos] -= 2 * eps
	down := loss()
	m.itemBias[pos] += eps
	if numeric := (up - down) / (2 * eps); math.Abs(g-numeric) > 1e-5 {
		t.Fatalf("dB: analytic %.8f numeric %.8f", g, numeric)
	}
}

func TestBPRMFTrainingRanksPositivesHigher(t *testing.T) {
	d := tinyDataset(t)
	m := NewBPRMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(3)
	u := 0
	for e := 0; e < 25; e++ {
		m.TrainLocal(d, u, TrainOptions{Rand: r})
	}
	var pos, neg float64
	for _, it := range d.Train[u] {
		pos += m.score(m.userEmb.Row(u), it)
	}
	pos /= float64(len(d.Train[u]))
	for i := 0; i < 50; i++ {
		neg += m.score(m.userEmb.Row(u), d.SampleNegative(r, u))
	}
	neg /= 50
	if pos <= neg {
		t.Fatalf("BPR did not separate positives: pos=%.3f neg=%.3f", pos, neg)
	}
}

func TestBPRMFHitRatioImproves(t *testing.T) {
	d := tinyDataset(t)
	m := NewBPRMF(d.NumUsers, d.NumItems, 8, 3)
	before := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	r := mathx.NewRand(1)
	for e := 0; e < 15; e++ {
		for u := 0; u < d.NumUsers; u++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	after := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	if after <= before {
		t.Fatalf("training did not improve HR: %.3f -> %.3f", before, after)
	}
}

func TestBPRMFFictiveUser(t *testing.T) {
	d := tinyDataset(t)
	m := NewBPRMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(5)
	for u := 0; u < 8; u++ {
		for e := 0; e < 10; e++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	target := d.Train[0]
	vec := m.FitFictiveUser(target, TrainOptions{Rand: r, Epochs: 15})
	random := make([]float64, 8)
	mathx.FillNormal(mathx.NewRand(99), random, 0, bprmfInitStd)
	if m.RelevanceWithUserVec(vec, target) <= m.RelevanceWithUserVec(random, target) {
		t.Fatal("fictive user no better than random")
	}
}

func TestBPRMFPerExampleClipBoundsUpdate(t *testing.T) {
	d := tinyDataset(t)
	const clip = 1e-3
	m := NewBPRMF(d.NumUsers, d.NumItems, 8, 2)
	before := m.Params().Clone()
	m.TrainLocal(d, 0, TrainOptions{Rand: mathx.NewRand(4), PerExampleClip: clip, L2: -1})
	diff := m.Params().Clone()
	diff.Axpy(-1, before)
	steps := float64(len(d.Train[0]) * 4)
	if got := diff.L2Norm(); got > steps*bprmfDefaultLR*clip*1.0001 {
		t.Fatalf("clipped update norm %.6f too large", got)
	}
}

func TestBPRMFShareLessDrift(t *testing.T) {
	d := tinyDataset(t)
	mFree := NewBPRMF(d.NumUsers, d.NumItems, 8, 7)
	mDrift := mFree.Clone().(*BPRMF)
	ref := mFree.Params().Clone()
	r1, r2 := mathx.NewRand(8), mathx.NewRand(8)
	for e := 0; e < 10; e++ {
		mFree.TrainLocal(d, 0, TrainOptions{Rand: r1})
		mDrift.TrainLocal(d, 0, TrainOptions{Rand: r2, DriftTau: 2, DriftRef: ref})
	}
	dist := func(m *BPRMF) float64 {
		cur := m.Params().Get(BPRMFItemEmb)
		old := ref.Get(BPRMFItemEmb)
		var s float64
		for i := range cur {
			dd := cur[i] - old[i]
			s += dd * dd
		}
		return s
	}
	if dist(mDrift) >= dist(mFree) {
		t.Fatal("drift regularizer ineffective for BPR-MF")
	}
}
