package model

import (
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
)

func tinyUnsplit(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 24, NumItems: 80, NumCommunities: 3,
		MeanItemsPerUser: 15, MinItemsPerUser: 5, Affinity: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHitRatioBoundsAndImprovement(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 3)
	r := mathx.NewRand(1)
	untrained := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	if untrained < 0 || untrained > 1 {
		t.Fatalf("HR out of range: %v", untrained)
	}
	for e := 0; e < 15; e++ {
		for u := 0; u < d.NumUsers; u++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	trained := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	if trained <= untrained {
		t.Fatalf("training did not improve HR: %.3f -> %.3f", untrained, trained)
	}
}

func TestHitRatioK1VsKAll(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 4, 3)
	hr1 := HitRatioAtK(m, d, 1, 20, EvalOptions{Seed: 5, Workers: -1})
	hrAll := HitRatioAtK(m, d, 21, 20, EvalOptions{Seed: 5, Workers: -1})
	if hrAll != 1 {
		t.Fatalf("HR@(numNeg+1) = %v, want 1", hrAll)
	}
	if hr1 > hrAll {
		t.Fatal("HR must be monotone in K")
	}
}

func TestHitRatioNoTestUsers(t *testing.T) {
	d := tinyUnsplit(t)
	m := NewGMF(d.NumUsers, d.NumItems, 4, 3)
	if got := HitRatioAtK(m, d, 5, 10, EvalOptions{Seed: 1, Workers: -1}); got != 0 {
		t.Fatalf("HR with no test split = %v, want 0", got)
	}
}

func TestHitRatioPanicsOnBadArgs(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 0")
		}
	}()
	HitRatioAtK(m, d, 0, 10, EvalOptions{Seed: 1, Workers: -1})
}

func TestF1AtKBoundsAndImprovement(t *testing.T) {
	d := tinyUnsplit(t)
	d.SplitFraction(0.25)
	m := NewPRME(d.NumUsers, d.NumItems, 8, 3)
	before := F1AtK(m, d, 10, EvalOptions{Workers: -1})
	if before < 0 || before > 1 {
		t.Fatalf("F1 out of range: %v", before)
	}
	r := mathx.NewRand(1)
	for e := 0; e < 20; e++ {
		for u := 0; u < d.NumUsers; u++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	after := F1AtK(m, d, 10, EvalOptions{Workers: -1})
	if after <= before {
		t.Fatalf("training did not improve F1: %.4f -> %.4f", before, after)
	}
}

func TestF1AtKNoTestUsers(t *testing.T) {
	d := tinyUnsplit(t)
	m := NewPRME(d.NumUsers, d.NumItems, 4, 3)
	if got := F1AtK(m, d, 5, EvalOptions{Workers: -1}); got != 0 {
		t.Fatalf("F1 with no test split = %v, want 0", got)
	}
}

func TestF1ExcludesTrainingItems(t *testing.T) {
	// Construct a model whose best-scoring items are exactly user 0's
	// training items; F1 must still be computed over unseen items only,
	// so a perfect-memorization model scores 0 unless test items rank
	// next.
	d := tinyUnsplit(t)
	d.SplitFraction(0.25)
	m := NewPRME(d.NumUsers, d.NumItems, 8, 3)
	r := mathx.NewRand(2)
	for e := 0; e < 30; e++ {
		m.TrainLocal(d, 0, TrainOptions{Rand: r})
	}
	// Sanity: the function runs and stays in range even for heavily
	// trained single users.
	if f1 := F1AtK(m, d, 10, EvalOptions{Workers: -1}); f1 < 0 || f1 > 1 {
		t.Fatalf("F1 = %v out of range", f1)
	}
}
