package model

import (
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

// The engine's core guarantee: utility sweeps are byte-identical for
// every worker count, for both metrics and for a scratch-owning model
// family (NeuMF routes its forward pass through model-owned scratch).
func TestEvalWorkersInvariance(t *testing.T) {
	d := tinyDataset(t)
	families := map[string]Recommender{
		"gmf":   NewGMF(d.NumUsers, d.NumItems, 8, 3),
		"neumf": NewNeuMF(d.NumUsers, d.NumItems, 8, 3),
	}
	for name, m := range families {
		serialHR := HitRatioAtK(m, d, 10, 30, EvalOptions{Seed: 9, Workers: -1})
		parallelHR := HitRatioAtK(m, d, 10, 30, EvalOptions{Seed: 9, Workers: 4})
		if serialHR != parallelHR {
			t.Errorf("%s: HR differs across workers: %v != %v", name, serialHR, parallelHR)
		}
		serialF1 := F1AtK(m, d, 10, EvalOptions{Workers: -1})
		parallelF1 := F1AtK(m, d, 10, EvalOptions{Workers: 4})
		if serialF1 != parallelF1 {
			t.Errorf("%s: F1 differs across workers: %v != %v", name, serialF1, parallelF1)
		}
	}
}

// The counter-based streams make a sweep a pure function of
// (seed, round, model): re-evaluating must reproduce the value exactly,
// regardless of any evaluation that happened in between, and distinct
// rounds must draw distinct negatives.
func TestEvalHistoryIndependence(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 3)
	e := NewEval(d, 2, 9)
	pick := e.ClonePick(m)

	first := e.HR(3, pick, 10, 30)
	// Unrelated consumption: other rounds, other metrics.
	e.HR(0, pick, 10, 30)
	e.HR(7, pick, 5, 20)
	e.F1(pick, 10)
	if again := e.HR(3, pick, 10, 30); again != first {
		t.Fatalf("HR at round 3 shifted after unrelated evaluation: %v != %v", again, first)
	}
	// A fresh engine with the same seed agrees too.
	if fresh := NewEval(d, 4, 9); fresh.HR(3, fresh.ClonePick(m), 10, 30) != first {
		t.Fatal("fresh engine disagrees with original at the same (seed, round)")
	}
}

// F1 sweeps draw no randomness, so the engine must agree exactly with
// the single-user reference implementation.
func TestEvalF1MatchesPerUserReference(t *testing.T) {
	d := tinyUnsplit(t)
	d.SplitFraction(0.25)
	m := NewPRME(d.NumUsers, d.NumItems, 8, 3)
	r := mathx.NewRand(1)
	for u := 0; u < d.NumUsers; u++ {
		m.TrainLocal(d, u, TrainOptions{Rand: r, Epochs: 3})
	}
	var sum float64
	var evaluable int
	for u := 0; u < d.NumUsers; u++ {
		if f1, ok := F1ForUser(m, d, u, 10); ok {
			sum += f1
			evaluable++
		}
	}
	want := sum / float64(evaluable)
	if got := F1AtK(m, d, 10, EvalOptions{Workers: 3}); got != want {
		t.Fatalf("engine F1 %v != per-user reference %v", got, want)
	}
}

// HR sweeps on the engine must agree with the single-user reference
// when that reference is driven by the same per-user streams.
func TestEvalHRMatchesPerUserReference(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 3)
	const seed, round = 5, 2
	var sum float64
	var evaluable int
	for u := 0; u < d.NumUsers; u++ {
		r := mathx.NewStreamRand(seed, uint64(round), uint64(u))
		if hit, ok := HitForUser(m, d, u, 10, 30, r); ok {
			sum += hit
			evaluable++
		}
	}
	want := sum / float64(evaluable)
	e := NewEval(d, 4, seed)
	if got := e.HR(round, e.ClonePick(m), 10, 30); got != want {
		t.Fatalf("engine HR %v != per-user reference %v", got, want)
	}
}
