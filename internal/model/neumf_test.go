package model

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

func TestNewNeuMFShape(t *testing.T) {
	m := NewNeuMF(5, 7, 4, 1)
	if m.NumUsers() != 5 || m.NumItems() != 7 || m.Name() != "neumf" {
		t.Fatal("wrong identity")
	}
	for _, name := range []string{
		NeuMFUserEmbGMF, NeuMFItemEmbGMF, NeuMFUserEmbMLP, NeuMFItemEmbMLP,
		NeuMFW1, NeuMFB1, NeuMFW2, NeuMFB2, NeuMFOutput, NeuMFBias,
	} {
		if !m.Params().Has(name) {
			t.Fatalf("missing entry %s", name)
		}
	}
	if len(m.PrivateEntries()) != 2 || len(m.ItemEntries()) != 2 {
		t.Fatal("entry classification wrong")
	}
}

func TestNewNeuMFOddDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd dim must panic")
		}
	}()
	NewNeuMF(2, 2, 3, 1)
}

func TestNeuMFCloneIndependent(t *testing.T) {
	m := NewNeuMF(3, 3, 4, 1)
	c := m.Clone()
	if c.Predict(1, 2) != m.Predict(1, 2) {
		t.Fatal("clone differs")
	}
	c.Params().Get(NeuMFW1)[0] += 5
	if c.Predict(1, 2) == m.Predict(1, 2) {
		t.Fatal("clone shares storage")
	}
}

// Full finite-difference check of the hand-derived backprop: train one
// example with a tiny lr, recover the gradient from the parameter
// delta, compare against numerical derivatives of the BCE loss.
func TestNeuMFNumericalGradient(t *testing.T) {
	m := NewNeuMF(3, 5, 4, 7)
	u, it := 1, 2
	label := 1.0
	loss := func() float64 {
		p := m.Predict(u, it)
		return -label*math.Log(p+1e-12) - (1-label)*math.Log(1-p+1e-12)
	}

	before := m.Params().Clone()
	const lr = 1e-5
	m.sgdStep(u, it, label, TrainOptions{LR: lr, L2: -1, NegPerPos: 1, Epochs: 1, Rand: mathx.NewRand(1)}.withDefaults(lr, 0))
	after := m.Params().Clone()
	m.Params().CopyFrom(before)

	const eps = 1e-6
	for _, entry := range []string{
		NeuMFUserEmbGMF, NeuMFItemEmbGMF, NeuMFUserEmbMLP, NeuMFItemEmbMLP,
		NeuMFW1, NeuMFB1, NeuMFW2, NeuMFB2, NeuMFOutput, NeuMFBias,
	} {
		data := m.Params().Get(entry)
		b := before.Get(entry)
		a := after.Get(entry)
		for _, idx := range []int{0, len(data) / 2, len(data) - 1} {
			analytic := (b[idx] - a[idx]) / lr
			data[idx] += eps
			up := loss()
			data[idx] -= 2 * eps
			down := loss()
			data[idx] += eps
			numeric := (up - down) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %.8f numeric %.8f", entry, idx, analytic, numeric)
			}
		}
	}
}

func TestNeuMFTrainingSeparatesPositives(t *testing.T) {
	d := tinyDataset(t)
	m := NewNeuMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(3)
	u := 0
	for e := 0; e < 25; e++ {
		m.TrainLocal(d, u, TrainOptions{Rand: r})
	}
	var pos, neg float64
	for _, it := range d.Train[u] {
		pos += m.Predict(u, it)
	}
	pos /= float64(len(d.Train[u]))
	for i := 0; i < 50; i++ {
		neg += m.Predict(u, d.SampleNegative(r, u))
	}
	neg /= 50
	if pos < neg+0.15 {
		t.Fatalf("NeuMF did not separate positives: pos=%.3f neg=%.3f", pos, neg)
	}
}

func TestNeuMFHitRatioImproves(t *testing.T) {
	d := tinyDataset(t)
	m := NewNeuMF(d.NumUsers, d.NumItems, 8, 3)
	before := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	r := mathx.NewRand(1)
	for e := 0; e < 12; e++ {
		for u := 0; u < d.NumUsers; u++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	after := HitRatioAtK(m, d, 10, 40, EvalOptions{Seed: 2, Workers: -1})
	if after <= before {
		t.Fatalf("training did not improve HR: %.3f -> %.3f", before, after)
	}
}

func TestNeuMFFictiveUser(t *testing.T) {
	d := tinyDataset(t)
	m := NewNeuMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(5)
	for u := 0; u < 8; u++ {
		for e := 0; e < 8; e++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	target := d.Train[0]
	// NeuMF's fictive fit needs a longer run than the shallow models:
	// the MLP tower's gradient path is weaker at init.
	vec := m.FitFictiveUser(target, TrainOptions{Rand: r, Epochs: 30})
	if len(vec) != 16 {
		t.Fatalf("fictive vector length %d, want 16 ([gmf ; mlp])", len(vec))
	}
	random := make([]float64, 16)
	mathx.FillNormal(mathx.NewRand(99), random, 0, neumfInitStd)
	if m.RelevanceWithUserVec(vec, target) <= m.RelevanceWithUserVec(random, target) {
		t.Fatal("fictive user no better than random")
	}
}

func TestNeuMFRelevanceVectorLengthPanics(t *testing.T) {
	m := NewNeuMF(2, 3, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length user vector must panic")
		}
	}()
	m.RelevanceWithUserVec(make([]float64, 4), []int{0})
}

func TestNeuMFShareLessDrift(t *testing.T) {
	d := tinyDataset(t)
	mFree := NewNeuMF(d.NumUsers, d.NumItems, 8, 7)
	mDrift := mFree.Clone().(*NeuMF)
	ref := mFree.Params().Clone()
	r1, r2 := mathx.NewRand(8), mathx.NewRand(8)
	for e := 0; e < 8; e++ {
		mFree.TrainLocal(d, 0, TrainOptions{Rand: r1})
		mDrift.TrainLocal(d, 0, TrainOptions{Rand: r2, DriftTau: 2, DriftRef: ref})
	}
	dist := func(m *NeuMF, entry string) float64 {
		cur := m.Params().Get(entry)
		old := ref.Get(entry)
		var s float64
		for i := range cur {
			dd := cur[i] - old[i]
			s += dd * dd
		}
		return s
	}
	if dist(mDrift, NeuMFItemEmbGMF) >= dist(mFree, NeuMFItemEmbGMF) {
		t.Fatal("drift regularizer ineffective on the GMF item table")
	}
	if dist(mDrift, NeuMFItemEmbMLP) >= dist(mFree, NeuMFItemEmbMLP) {
		t.Fatal("drift regularizer ineffective on the MLP item table")
	}
}
