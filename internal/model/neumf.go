package model

import (
	"math"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// Parameter-entry names shared with defenses and attacks.
const (
	NeuMFUserEmbGMF = "neumf/user_emb_gmf"
	NeuMFItemEmbGMF = "neumf/item_emb_gmf"
	NeuMFUserEmbMLP = "neumf/user_emb_mlp"
	NeuMFItemEmbMLP = "neumf/item_emb_mlp"
	NeuMFW1         = "neumf/w1"
	NeuMFB1         = "neumf/b1"
	NeuMFW2         = "neumf/w2"
	NeuMFB2         = "neumf/b2"
	NeuMFOutput     = "neumf/h"
	NeuMFBias       = "neumf/bias"
)

// NeuMF is Neural Matrix Factorization (He et al., WWW 2017), the NCF
// paper's flagship model fusing two towers:
//
//   - a GMF tower producing the element-wise product p_g ⊙ q_g;
//   - an MLP tower feeding [p_m ; q_m] through two ReLU layers
//     (2d → d → d/2);
//
// the towers' outputs are concatenated and projected:
//
//	ŷ_ui = σ( h · [ p_g⊙q_g ; φ(u,i) ] + b ).
//
// The paper evaluates GMF; NeuMF is included as an extension family to
// show CIA transfers to deeper recommendation models unchanged. All
// gradients are hand-derived (see the numerical check in the tests).
type NeuMF struct {
	users, items, dim int // dim = d (GMF and MLP embedding width)
	h1, h2            int // MLP hidden widths: h1 = dim, h2 = dim/2

	userG, itemG *mathx.Matrix // GMF tower embeddings (users/items × dim)
	userM, itemM *mathx.Matrix // MLP tower embeddings (users/items × dim)
	w1           *mathx.Matrix // h1 × 2dim
	b1           []float64     // h1
	w2           *mathx.Matrix // h2 × h1
	b2           []float64     // h2
	h            []float64     // dim + h2
	bias         []float64     // 1
	set          *param.Set

	// forward scratch (models are not goroutine-safe).
	in1, a1, a2 []float64
	// backprop scratch (delta2 | delta1 | dIn), allocated lazily so
	// Clone and the constructor stay oblivious.
	grad []float64
	// batched-scoring scratch: wg is the h-weighted GMF user vector,
	// uPart the user half of the first MLP layer (W1[:, :dim]·p_m + b1)
	// hoisted once per scored user, scoreBuf the grown-on-demand
	// per-item staging area. Allocated lazily by scoreBatch.
	wg, uPart, scoreBuf []float64
}

// gradViews carves the lazily-allocated backprop workspace into its
// delta2, delta1 and dIn views. delta2 is zeroed here because callers
// only write its positive-activation entries; delta1 and dIn are fully
// overwritten by MulVecT.
func (m *NeuMF) gradViews() (delta2, delta1, dIn []float64) {
	if m.grad == nil {
		m.grad = make([]float64, m.h2+m.h1+2*m.dim)
	}
	delta2 = m.grad[0:m.h2]
	delta1 = m.grad[m.h2 : m.h2+m.h1]
	dIn = m.grad[m.h2+m.h1:]
	for j := range delta2 {
		delta2[j] = 0
	}
	return delta2, delta1, dIn
}

var _ Recommender = (*NeuMF)(nil)

const (
	neumfDefaultLR = 0.05
	neumfDefaultL2 = 1e-5
	neumfInitStd   = 0.1
)

// NewNeuMF returns a randomly initialized NeuMF model. dim must be
// even (the second hidden layer has dim/2 units).
func NewNeuMF(numUsers, numItems, dim int, seed uint64) *NeuMF {
	if numUsers <= 0 || numItems <= 0 || dim <= 0 {
		panic("model: NewNeuMF requires positive sizes")
	}
	if dim%2 != 0 {
		panic("model: NewNeuMF requires an even embedding dim")
	}
	r := mathx.NewRand(seed)
	h1, h2 := dim, dim/2
	m := &NeuMF{
		users: numUsers, items: numItems, dim: dim, h1: h1, h2: h2,
		userG: mathx.NewMatrix(numUsers, dim),
		itemG: mathx.NewMatrix(numItems, dim),
		userM: mathx.NewMatrix(numUsers, dim),
		itemM: mathx.NewMatrix(numItems, dim),
		w1:    mathx.NewMatrix(h1, 2*dim),
		b1:    make([]float64, h1),
		w2:    mathx.NewMatrix(h2, h1),
		b2:    make([]float64, h2),
		h:     make([]float64, dim+h2),
		bias:  make([]float64, 1),
		in1:   make([]float64, 2*dim),
		a1:    make([]float64, h1),
		a2:    make([]float64, h2),
	}
	mathx.FillNormal(r, m.userG.Data, 0, neumfInitStd)
	mathx.FillNormal(r, m.itemG.Data, 0, neumfInitStd)
	mathx.FillNormal(r, m.userM.Data, 0, neumfInitStd)
	mathx.FillNormal(r, m.itemM.Data, 0, neumfInitStd)
	mathx.FillNormal(r, m.w1.Data, 0, math.Sqrt(2/float64(2*dim)))
	mathx.FillNormal(r, m.w2.Data, 0, math.Sqrt(2/float64(h1)))
	// As with GMF, the output weights start near 1 on the GMF half so
	// the multiplicative path carries gradient from the first step;
	// the MLP half starts small.
	for i := range m.h {
		if i < dim {
			m.h[i] = 1 + mathx.Normal(r, 0, 0.01)
		} else {
			m.h[i] = mathx.Normal(r, 0, 0.1)
		}
	}
	m.set = param.New()
	m.set.AddMatrix(NeuMFUserEmbGMF, m.userG)
	m.set.AddMatrix(NeuMFItemEmbGMF, m.itemG)
	m.set.AddMatrix(NeuMFUserEmbMLP, m.userM)
	m.set.AddMatrix(NeuMFItemEmbMLP, m.itemM)
	m.set.AddMatrix(NeuMFW1, m.w1)
	m.set.AddVector(NeuMFB1, m.b1)
	m.set.AddMatrix(NeuMFW2, m.w2)
	m.set.AddVector(NeuMFB2, m.b2)
	m.set.AddVector(NeuMFOutput, m.h)
	m.set.AddVector(NeuMFBias, m.bias)
	return m
}

// NewNeuMFFactory returns a Factory producing NeuMF models.
func NewNeuMFFactory(numUsers, numItems, dim int) Factory {
	return func(seed uint64) Recommender { return NewNeuMF(numUsers, numItems, dim, seed) }
}

func (m *NeuMF) Name() string       { return "neumf" }
func (m *NeuMF) Params() *param.Set { return m.set }
func (m *NeuMF) NumUsers() int      { return m.users }
func (m *NeuMF) NumItems() int      { return m.items }

// Clone returns a deep copy with fresh storage.
func (m *NeuMF) Clone() Recommender {
	c := NewNeuMF(m.users, m.items, m.dim, 0)
	c.set.CopyFrom(m.set)
	return c
}

// forward computes the logit for explicit user vectors (GMF half ug,
// MLP half um) against item it, filling the activation scratch.
func (m *NeuMF) forward(ug, um []float64, it int) float64 {
	qg, qm := m.itemG.Row(it), m.itemM.Row(it)
	copy(m.in1[:m.dim], um)
	copy(m.in1[m.dim:], qm)
	m.w1.MulVec(m.in1, m.a1)
	mathx.Axpy(1, m.b1, m.a1)
	mathx.ReLU(m.a1, m.a1)
	m.w2.MulVec(m.a1, m.a2)
	mathx.Axpy(1, m.b2, m.a2)
	mathx.ReLU(m.a2, m.a2)

	var s float64
	//lint:ignore mathxseam the logit accumulates both towers into one running sum whose order golden hashes pin
	for k := 0; k < m.dim; k++ {
		s += m.h[k] * ug[k] * qg[k]
	}
	//lint:ignore mathxseam continues the same golden-pinned accumulator across the tower boundary
	for j := 0; j < m.h2; j++ {
		s += m.h[m.dim+j] * m.a2[j]
	}
	return s + m.bias[0]
}

func (m *NeuMF) logit(owner, it int) float64 {
	return m.forward(m.userG.Row(owner), m.userM.Row(owner), it)
}

// Predict returns σ(logit).
func (m *NeuMF) Predict(owner, item int) float64 {
	return mathx.Sigmoid(m.logit(owner, item))
}

// Relevance is the mean predicted score over items (Eq. 3's Ŷ),
// computed on the batched scorer.
func (m *NeuMF) Relevance(owner int, items []int) float64 {
	if len(items) == 0 {
		return 0
	}
	m.scoreBuf = growFloats(m.scoreBuf, len(items))
	buf := m.scoreBuf
	m.scoreBatch(m.userG.Row(owner), m.userM.Row(owner), items, buf)
	mathx.SigmoidInto(buf, buf)
	return mathx.Sum(buf) / float64(len(items))
}

// scoreBatch writes the logit of every candidate into dst (items nil
// selects the full catalogue, dst then spans NumItems) for explicit
// tower user vectors ug/um.
//
// Unlike the training-path forward, the first MLP layer is split at
// the tower boundary: the user half W1[:, :dim]·p_m + b1 is hoisted
// into uPart once per call and only the item half W1[:, dim:]·q_m is
// recomputed per item, halving the layer-1 work of a catalogue sweep;
// the GMF tower likewise dots pre-weighted h ⊙ p_g against item rows.
// Every batched entry point (ScoreItems, ScoreAll, PredictItems, the
// relevance sweeps) routes through this one function, so batch and
// singleton scoring are bit-identical by construction.
func (m *NeuMF) scoreBatch(ug, um []float64, items []int, dst []float64) {
	dim, h1c, h2c := m.dim, m.h1, m.h2
	if m.wg == nil {
		m.wg = make([]float64, dim)
		m.uPart = make([]float64, h1c)
	}
	mathx.Hadamard(m.h[:dim], ug, m.wg)
	for j := 0; j < h1c; j++ {
		m.uPart[j] = mathx.Dot(m.w1.Row(j)[:dim], um) + m.b1[j]
	}
	hOut := m.h[dim:]
	n := len(dst)
	for i := 0; i < n; i++ {
		it := i
		if items != nil {
			it = items[i]
		}
		qg, qm := m.itemG.Row(it), m.itemM.Row(it)
		for j := 0; j < h1c; j++ {
			a := m.uPart[j] + mathx.Dot(m.w1.Row(j)[dim:], qm)
			if a < 0 {
				a = 0
			}
			m.a1[j] = a
		}
		for j := 0; j < h2c; j++ {
			a := mathx.Dot(m.w2.Row(j), m.a1) + m.b2[j]
			if a < 0 {
				a = 0
			}
			m.a2[j] = a
		}
		dst[i] = mathx.Dot(m.wg, qg) + mathx.Dot(hOut, m.a2) + m.bias[0]
	}
}

// RelevanceWithUserVec scores items against an explicit concatenated
// user vector [p_g ; p_m] of length 2·dim (as produced by
// FitFictiveUser), on the batched scorer.
func (m *NeuMF) RelevanceWithUserVec(vec []float64, items []int) float64 {
	if len(vec) != 2*m.dim {
		panic("model: NeuMF user vector must be [gmf ; mlp] of length 2*dim")
	}
	if len(items) == 0 {
		return 0
	}
	m.scoreBuf = growFloats(m.scoreBuf, len(items))
	buf := m.scoreBuf
	m.scoreBatch(vec[:m.dim], vec[m.dim:], items, buf)
	mathx.SigmoidInto(buf, buf)
	return mathx.Sum(buf) / float64(len(items))
}

// ScoreItems ranks candidates by raw logit on the batched scorer;
// prev is ignored.
func (m *NeuMF) ScoreItems(owner, prev int, items []int, dst []float64) {
	m.scoreBatch(m.userG.Row(owner), m.userM.Row(owner), items, dst)
}

// ScoreAll scores the full catalogue with per-user tower hoisting.
func (m *NeuMF) ScoreAll(owner, prev int, dst []float64) {
	m.scoreBatch(m.userG.Row(owner), m.userM.Row(owner), nil, dst)
}

// PredictItems is the batched Predict: σ over the batched logits.
func (m *NeuMF) PredictItems(owner int, items []int, dst []float64) {
	m.scoreBatch(m.userG.Row(owner), m.userM.Row(owner), items, dst)
	mathx.SigmoidInto(dst, dst)
}

func (m *NeuMF) PrivateEntries() []string {
	return []string{NeuMFUserEmbGMF, NeuMFUserEmbMLP}
}

func (m *NeuMF) ItemEntries() []string {
	return []string{NeuMFItemEmbGMF, NeuMFItemEmbMLP}
}

// TrainLocal runs BCE SGD with negative sampling, as for GMF.
func (m *NeuMF) TrainLocal(d *dataset.Dataset, u int, opt TrainOptions) {
	opt = opt.withDefaults(neumfDefaultLR, neumfDefaultL2)
	items := d.Train[u]
	if len(items) == 0 {
		return
	}
	order := make([]int, len(items))
	copy(order, items)
	for e := 0; e < opt.Epochs; e++ {
		mathx.Shuffle(opt.Rand, order)
		for _, pos := range order {
			m.sgdStep(u, pos, 1, opt)
			for n := 0; n < opt.NegPerPos; n++ {
				m.sgdStep(u, d.SampleNegative(opt.Rand, u), 0, opt)
			}
		}
	}
}

// sgdStep applies one (user, item, label) BCE step through both towers.
func (m *NeuMF) sgdStep(u, it int, label float64, opt TrainOptions) {
	pg, pm := m.userG.Row(u), m.userM.Row(u)
	qg, qm := m.itemG.Row(it), m.itemM.Row(it)
	g := mathx.Sigmoid(m.forward(pg, pm, it)) - label // dL/dlogit
	// Forward left activations in m.in1 (MLP input), m.a1, m.a2.

	dim, h1c, h2c := m.dim, m.h1, m.h2

	// Output-layer deltas.
	// GMF half: dH[k] = g*pg[k]*qg[k]; dPg = g*h[k]*qg[k]; dQg = g*h[k]*pg[k].
	// MLP half: dH[dim+j] = g*a2[j]; delta2[j] = g*h[dim+j]*relu'(a2).
	delta2, delta1, dIn := m.gradViews()
	for j := 0; j < h2c; j++ {
		if m.a2[j] > 0 {
			delta2[j] = g * m.h[dim+j]
		}
	}
	m.w2.MulVecT(delta2, delta1)
	for j := 0; j < h1c; j++ {
		if m.a1[j] <= 0 {
			delta1[j] = 0
		}
	}
	// Input deltas: dIn = W1ᵀ · delta1 → split into dPm, dQm.
	m.w1.MulVecT(delta1, dIn)

	lr := opt.LR
	l2 := opt.LR * opt.L2

	// Per-example clipping: accumulate the squared norm of every
	// gradient component before applying (the same convention as GMF).
	if opt.PerExampleClip > 0 {
		var sq float64
		for k := 0; k < dim; k++ {
			dPg := g * m.h[k] * qg[k]
			dQg := g * m.h[k] * pg[k]
			dH := g * pg[k] * qg[k]
			sq += dPg*dPg + dQg*dQg + dH*dH
		}
		for j := 0; j < h2c; j++ {
			dH := g * m.a2[j]
			sq += dH*dH + delta2[j]*delta2[j]*(1+mathx.Dot(m.a1, m.a1))
		}
		for j := 0; j < h1c; j++ {
			sq += delta1[j] * delta1[j] * (1 + mathx.Dot(m.in1, m.in1))
		}
		//lint:ignore mathxseam clip-norm accumulation order is golden-pinned; Dot is unrolled and not bit-identical
		for k := 0; k < 2*dim; k++ {
			sq += dIn[k] * dIn[k]
		}
		sq += g * g
		if norm := math.Sqrt(sq); norm > opt.PerExampleClip {
			lr *= opt.PerExampleClip / norm
		}
	}

	// Apply GMF-half updates.
	for k := 0; k < dim; k++ {
		dPg := g * m.h[k] * qg[k]
		dQg := g * m.h[k] * pg[k]
		dH := g * pg[k] * qg[k]
		pg[k] -= lr*dPg + l2*pg[k]
		qg[k] -= lr*dQg + l2*qg[k]
		m.h[k] -= lr * dH
	}
	// Output layer over the MLP half.
	mathx.Axpy(-(lr * g), m.a2, m.h[dim:])
	m.bias[0] -= lr * g

	// W2/b2: dW2[j][i] = delta2[j]*a1[i].
	for j := 0; j < h2c; j++ {
		mathx.Axpy(-(lr * delta2[j]), m.a1, m.w2.Row(j))
		m.b2[j] -= lr * delta2[j]
	}
	// W1/b1: dW1[j][i] = delta1[j]*in1[i].
	for j := 0; j < h1c; j++ {
		mathx.Axpy(-(lr * delta1[j]), m.in1, m.w1.Row(j))
		m.b1[j] -= lr * delta1[j]
	}
	// MLP embeddings.
	for k := 0; k < dim; k++ {
		pm[k] -= lr*dIn[k] + l2*pm[k]
		qm[k] -= lr*dIn[dim+k] + l2*qm[k]
	}

	// Share-less drift regularizer on both item tables.
	if opt.DriftTau > 0 {
		for _, pair := range [2]struct {
			entry string
			row   []float64
		}{{NeuMFItemEmbGMF, qg}, {NeuMFItemEmbMLP, qm}} {
			ref := opt.DriftRef.Get(pair.entry)
			base := it * dim
			mathx.DriftToward(opt.LR*2*opt.DriftTau, ref[base:base+dim], pair.row)
		}
	}
}

// FitFictiveUser trains fresh user vectors for both towers against the
// target items (§IV-C) and returns them concatenated [p_g ; p_m].
func (m *NeuMF) FitFictiveUser(items []int, opt TrainOptions) []float64 {
	opt = opt.withDefaults(neumfDefaultLR, neumfDefaultL2)
	vec := make([]float64, 2*m.dim)
	mathx.FillNormal(opt.Rand, vec, 0, neumfInitStd)
	if len(items) == 0 {
		return vec
	}
	ug, um := vec[:m.dim], vec[m.dim:]
	positives := asSet(items)
	for e := 0; e < opt.Epochs; e++ {
		for _, pos := range items {
			m.fictiveStep(ug, um, pos, 1, opt)
			for n := 0; n < opt.NegPerPos; n++ {
				m.fictiveStep(ug, um, negativeOutside(opt.Rand, m.items, positives), 0, opt)
			}
		}
	}
	return vec
}

// fictiveStep updates only the fictive user vectors, holding every
// model parameter fixed.
func (m *NeuMF) fictiveStep(ug, um []float64, it int, label float64, opt TrainOptions) {
	qg := m.itemG.Row(it)
	g := mathx.Sigmoid(m.forward(ug, um, it)) - label
	dim := m.dim

	delta2, delta1, dIn := m.gradViews()
	for j := 0; j < m.h2; j++ {
		if m.a2[j] > 0 {
			delta2[j] = g * m.h[dim+j]
		}
	}
	m.w2.MulVecT(delta2, delta1)
	for j := 0; j < m.h1; j++ {
		if m.a1[j] <= 0 {
			delta1[j] = 0
		}
	}
	m.w1.MulVecT(delta1, dIn)

	for k := 0; k < dim; k++ {
		ug[k] -= opt.LR * (g*m.h[k]*qg[k] + opt.L2*ug[k])
		um[k] -= opt.LR * (dIn[k] + opt.L2*um[k])
	}
}
