package model

import (
	"math"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// Parameter-entry names shared with defenses and attacks.
const (
	BPRMFUserEmb  = "bprmf/user_emb"
	BPRMFItemEmb  = "bprmf/item_emb"
	BPRMFItemBias = "bprmf/item_bias"
)

// BPRMF is matrix factorization trained with the Bayesian Personalized
// Ranking criterion (Rendle et al. 2009): score(u, i) = p_u · q_i + b_i,
// optimized so observed items outrank sampled negatives.
//
// The paper evaluates GMF and PRME; BPR-MF is included as an extension
// model (a third loss family) to check that CIA's leakage is not an
// artifact of a particular training objective. It satisfies the same
// Recommender contract, so every protocol, defense and attack works on
// it unchanged.
type BPRMF struct {
	users, items, dim int
	userEmb           *mathx.Matrix
	itemEmb           *mathx.Matrix
	itemBias          []float64
	set               *param.Set

	// grad is the per-step gradient workspace (3 dim-sized views),
	// allocated lazily so Clone and the constructor stay oblivious.
	// Models are not goroutine-safe; each client/worker owns a copy.
	grad []float64
	// scoreBuf is the grown-on-demand staging area of the batched
	// relevance sweeps.
	scoreBuf []float64
}

var _ Recommender = (*BPRMF)(nil)

const (
	bprmfDefaultLR = 0.05
	bprmfDefaultL2 = 1e-4
	bprmfInitStd   = 0.1
)

// NewBPRMF returns a randomly initialized BPR-MF model.
func NewBPRMF(numUsers, numItems, dim int, seed uint64) *BPRMF {
	if numUsers <= 0 || numItems <= 0 || dim <= 0 {
		panic("model: NewBPRMF requires positive sizes")
	}
	r := mathx.NewRand(seed)
	m := &BPRMF{
		users:    numUsers,
		items:    numItems,
		dim:      dim,
		userEmb:  mathx.NewMatrix(numUsers, dim),
		itemEmb:  mathx.NewMatrix(numItems, dim),
		itemBias: make([]float64, numItems),
	}
	mathx.FillNormal(r, m.userEmb.Data, 0, bprmfInitStd)
	mathx.FillNormal(r, m.itemEmb.Data, 0, bprmfInitStd)
	m.set = param.New()
	m.set.AddMatrix(BPRMFUserEmb, m.userEmb)
	m.set.AddMatrix(BPRMFItemEmb, m.itemEmb)
	m.set.AddVector(BPRMFItemBias, m.itemBias)
	return m
}

// NewBPRMFFactory returns a Factory producing BPR-MF models.
func NewBPRMFFactory(numUsers, numItems, dim int) Factory {
	return func(seed uint64) Recommender { return NewBPRMF(numUsers, numItems, dim, seed) }
}

func (m *BPRMF) Name() string       { return "bprmf" }
func (m *BPRMF) Params() *param.Set { return m.set }
func (m *BPRMF) NumUsers() int      { return m.users }
func (m *BPRMF) NumItems() int      { return m.items }

// Clone returns a deep copy with fresh storage.
func (m *BPRMF) Clone() Recommender {
	c := &BPRMF{
		users:    m.users,
		items:    m.items,
		dim:      m.dim,
		userEmb:  m.userEmb.Clone(),
		itemEmb:  m.itemEmb.Clone(),
		itemBias: append([]float64(nil), m.itemBias...),
	}
	c.set = param.New()
	c.set.AddMatrix(BPRMFUserEmb, c.userEmb)
	c.set.AddMatrix(BPRMFItemEmb, c.itemEmb)
	c.set.AddVector(BPRMFItemBias, c.itemBias)
	return c
}

func (m *BPRMF) score(vec []float64, item int) float64 {
	return mathx.Dot(vec, m.itemEmb.Row(item)) + m.itemBias[item]
}

// Predict squashes the raw score through a sigmoid: BPR is a ranking
// model, so this is a confidence proxy rather than a likelihood.
func (m *BPRMF) Predict(owner, item int) float64 {
	return mathx.Sigmoid(m.score(m.userEmb.Row(owner), item))
}

// Relevance is the mean raw score over items (Eq. 3's Ŷ).
func (m *BPRMF) Relevance(owner int, items []int) float64 {
	return m.RelevanceWithUserVec(m.userEmb.Row(owner), items)
}

// RelevanceWithUserVec scores items against an explicit user vector,
// batched through one gathered matrix-vector product. The per-item
// values and the mean's addition order match the historical scalar
// loop bit for bit.
func (m *BPRMF) RelevanceWithUserVec(vec []float64, items []int) float64 {
	if len(items) == 0 {
		return 0
	}
	m.scoreBuf = growFloats(m.scoreBuf, len(items))
	buf := m.scoreBuf
	mathx.GemvRows(m.itemEmb, items, vec, m.itemBias, buf)
	return mathx.Sum(buf) / float64(len(items))
}

// ScoreItems ranks candidates by raw score on the batched kernels
// (bias gathered by item id); prev is ignored.
func (m *BPRMF) ScoreItems(owner, prev int, items []int, dst []float64) {
	mathx.GemvRows(m.itemEmb, items, m.userEmb.Row(owner), m.itemBias, dst)
}

// ScoreAll scores the full catalogue in one blocked matrix-vector
// product, bit-identical to scoring each item through score().
func (m *BPRMF) ScoreAll(owner, prev int, dst []float64) {
	mathx.Gemv(m.itemEmb, m.userEmb.Row(owner), m.itemBias, dst)
}

// PredictItems is the batched Predict: σ over the batched scores.
func (m *BPRMF) PredictItems(owner int, items []int, dst []float64) {
	m.ScoreItems(owner, -1, items, dst)
	mathx.SigmoidInto(dst, dst)
}

func (m *BPRMF) PrivateEntries() []string { return []string{BPRMFUserEmb} }
func (m *BPRMF) ItemEntries() []string    { return []string{BPRMFItemEmb} }

// TrainLocal runs BPR SGD over the user's items: each positive is
// paired with NegPerPos sampled negatives.
func (m *BPRMF) TrainLocal(d *dataset.Dataset, u int, opt TrainOptions) {
	opt = opt.withDefaults(bprmfDefaultLR, bprmfDefaultL2)
	items := d.Train[u]
	if len(items) == 0 {
		return
	}
	order := make([]int, len(items))
	copy(order, items)
	for e := 0; e < opt.Epochs; e++ {
		mathx.Shuffle(opt.Rand, order)
		for _, pos := range order {
			for n := 0; n < opt.NegPerPos; n++ {
				m.bprStep(u, pos, d.SampleNegative(opt.Rand, u), opt)
			}
		}
	}
}

// bprStep: z = s(u,pos) − s(u,neg); loss −logσ(z); dL/dz = −σ(−z).
func (m *BPRMF) bprStep(u, pos, neg int, opt TrainOptions) {
	p := m.userEmb.Row(u)
	qp, qn := m.itemEmb.Row(pos), m.itemEmb.Row(neg)
	z := m.score(p, pos) - m.score(p, neg)
	g := -mathx.Sigmoid(-z)

	dim := m.dim
	if m.grad == nil {
		m.grad = make([]float64, 3*dim)
	}
	dP := m.grad[0*dim : 1*dim]
	dQp := m.grad[1*dim : 2*dim]
	dQn := m.grad[2*dim : 3*dim]
	for k := 0; k < dim; k++ {
		dP[k] = g * (qp[k] - qn[k])
		dQp[k] = g * p[k]
		dQn[k] = -g * p[k]
	}
	dBp, dBn := g, -g

	scale := 1.0
	if opt.PerExampleClip > 0 {
		var sq float64
		//lint:ignore mathxseam clip-norm accumulation order is golden-pinned; Dot is unrolled and not bit-identical
		for k := 0; k < dim; k++ {
			sq += dP[k]*dP[k] + dQp[k]*dQp[k] + dQn[k]*dQn[k]
		}
		sq += dBp*dBp + dBn*dBn
		if norm := math.Sqrt(sq); norm > opt.PerExampleClip {
			scale = opt.PerExampleClip / norm
		}
	}
	lr := opt.LR * scale
	for k := 0; k < dim; k++ {
		p[k] -= lr*dP[k] + opt.LR*opt.L2*p[k]
		qp[k] -= lr*dQp[k] + opt.LR*opt.L2*qp[k]
		qn[k] -= lr*dQn[k] + opt.LR*opt.L2*qn[k]
	}
	m.itemBias[pos] -= lr*dBp + opt.LR*opt.L2*m.itemBias[pos]
	m.itemBias[neg] -= lr*dBn + opt.LR*opt.L2*m.itemBias[neg]

	if opt.DriftTau > 0 {
		ref := opt.DriftRef.Get(BPRMFItemEmb)
		for _, it := range [2]int{pos, neg} {
			base := it * dim
			mathx.DriftToward(opt.LR*2*opt.DriftTau, ref[base:base+dim], m.itemEmb.Row(it))
		}
	}
}

// FitFictiveUser trains a fresh user vector by BPR against the target
// items with sampled negatives, holding everything else fixed (§IV-C).
// Unlike PRME there is no metric-space repulsion pathology: the dot-
// product objective is maximized by aligning with the target items'
// direction, so plain SGD converges to a useful reference basis.
func (m *BPRMF) FitFictiveUser(items []int, opt TrainOptions) []float64 {
	opt = opt.withDefaults(bprmfDefaultLR, bprmfDefaultL2)
	vec := make([]float64, m.dim)
	mathx.FillNormal(opt.Rand, vec, 0, bprmfInitStd)
	if len(items) == 0 {
		return vec
	}
	positives := asSet(items)
	for e := 0; e < opt.Epochs; e++ {
		for _, pos := range items {
			for n := 0; n < opt.NegPerPos; n++ {
				neg := negativeOutside(opt.Rand, m.items, positives)
				z := m.score(vec, pos) - m.score(vec, neg)
				g := -mathx.Sigmoid(-z)
				qp, qn := m.itemEmb.Row(pos), m.itemEmb.Row(neg)
				//lint:ignore mathxseam fused BPR step couples vec into its own update; no bit-identical kernel exists yet
				for k := 0; k < m.dim; k++ {
					vec[k] -= opt.LR * (g*(qp[k]-qn[k]) + opt.L2*vec[k])
				}
			}
		}
	}
	return vec
}
