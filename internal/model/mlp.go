package model

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// MLP is a fully-connected network with ReLU hidden activations and
// either a softmax (multi-class) or sigmoid (binary) head. Two places
// in the paper need it:
//
//   - §VIII-E (universality): a one-hidden-layer, 100-unit softmax
//     classifier trained in FL on a non-iid image-like dataset;
//   - §VIII-C2 (AIA proxy): a five-layer binary classifier trained on
//     gradients to separate community members from non-members.
type MLP struct {
	sizes   []int
	binary  bool
	weights []*mathx.Matrix // weights[l]: sizes[l+1] × sizes[l]
	biases  [][]float64     // biases[l]: sizes[l+1]
	set     *param.Set

	// forward/backward scratch, sized per layer.
	acts   [][]float64 // acts[0] = input copy, acts[l+1] = layer l output
	deltas [][]float64
}

// NewMLP builds an MLP with the given layer sizes, e.g.
// [784, 100, 10]. binary selects a sigmoid head (sizes must then end
// in 1); otherwise the head is a softmax over sizes[last] classes.
func NewMLP(sizes []int, binary bool, seed uint64) *MLP {
	if len(sizes) < 2 {
		panic("model: NewMLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("model: NewMLP layer sizes must be positive")
		}
	}
	if binary && sizes[len(sizes)-1] != 1 {
		panic("model: binary MLP must end in a single unit")
	}
	r := mathx.NewRand(seed)
	m := &MLP{sizes: append([]int(nil), sizes...), binary: binary}
	m.set = param.New()
	for l := 0; l < len(sizes)-1; l++ {
		w := mathx.NewMatrix(sizes[l+1], sizes[l])
		// He initialization for the ReLU stack.
		std := math.Sqrt(2 / float64(sizes[l]))
		mathx.FillNormal(r, w.Data, 0, std)
		b := make([]float64, sizes[l+1])
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
		m.set.AddMatrix(fmt.Sprintf("mlp/w%d", l), w)
		m.set.AddVector(fmt.Sprintf("mlp/b%d", l), b)
	}
	m.acts = make([][]float64, len(sizes))
	m.deltas = make([][]float64, len(sizes))
	for l, s := range sizes {
		m.acts[l] = make([]float64, s)
		m.deltas[l] = make([]float64, s)
	}
	return m
}

// Params returns a live view of the network parameters.
func (m *MLP) Params() *param.Set { return m.set }

// Sizes returns the layer sizes.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// Clone returns a deep copy.
func (m *MLP) Clone() *MLP {
	c := NewMLP(m.sizes, m.binary, 0)
	c.set.CopyFrom(m.set)
	return c
}

// Forward runs the network on x and returns the output activations:
// class probabilities (softmax) or a 1-element probability (sigmoid).
// The returned slice is scratch owned by the model; copy to retain.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("model: MLP input size %d != %d", len(x), m.sizes[0]))
	}
	copy(m.acts[0], x)
	last := len(m.weights) - 1
	for l, w := range m.weights {
		out := m.acts[l+1]
		w.MulVec(m.acts[l], out)
		mathx.Axpy(1, m.biases[l], out)
		if l < last {
			mathx.ReLU(out, out)
		}
	}
	out := m.acts[len(m.acts)-1]
	if m.binary {
		out[0] = mathx.Sigmoid(out[0])
	} else {
		mathx.Softmax(out)
	}
	return out
}

// Loss returns the cross-entropy of the model on (x, label); for a
// binary head, label must be 0 or 1.
func (m *MLP) Loss(x []float64, label int) float64 {
	out := m.Forward(x)
	const eps = 1e-12
	if m.binary {
		p := out[0]
		if label == 1 {
			return -math.Log(p + eps)
		}
		return -math.Log(1 - p + eps)
	}
	if label < 0 || label >= len(out) {
		panic(fmt.Sprintf("model: label %d out of range", label))
	}
	return -math.Log(out[label] + eps)
}

// PredictClass returns the argmax class (softmax) or out[0] >= 0.5
// mapped to {0,1} (binary).
func (m *MLP) PredictClass(x []float64) int {
	out := m.Forward(x)
	if m.binary {
		if out[0] >= 0.5 {
			return 1
		}
		return 0
	}
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best
}

// PredictProb returns the probability assigned to label.
func (m *MLP) PredictProb(x []float64, label int) float64 {
	out := m.Forward(x)
	if m.binary {
		if label == 1 {
			return out[0]
		}
		return 1 - out[0]
	}
	return out[label]
}

// TrainExample applies one SGD step on (x, label) with learning rate
// lr and returns the pre-update loss. Softmax + cross-entropy and
// sigmoid + BCE share the same convenient output delta: p − y.
func (m *MLP) TrainExample(x []float64, label int, lr float64) float64 {
	out := m.Forward(x)
	const eps = 1e-12
	var loss float64
	top := m.deltas[len(m.deltas)-1]
	if m.binary {
		y := float64(label)
		loss = -y*math.Log(out[0]+eps) - (1-y)*math.Log(1-out[0]+eps)
		top[0] = out[0] - y
	} else {
		loss = -math.Log(out[label] + eps)
		copy(top, out)
		top[label] -= 1
	}

	for l := len(m.weights) - 1; l >= 0; l-- {
		w := m.weights[l]
		in := m.acts[l]
		delta := m.deltas[l+1]
		// Backprop into the previous layer before mutating w.
		if l > 0 {
			prev := m.deltas[l]
			w.MulVecT(delta, prev)
			// ReLU derivative gates on the post-activation values.
			for k := range prev {
				if m.acts[l][k] <= 0 {
					prev[k] = 0
				}
			}
		}
		for j := 0; j < w.Rows; j++ {
			row := w.Row(j)
			g := delta[j]
			mathx.Axpy(-(lr * g), in, row)
			m.biases[l][j] -= lr * g
		}
	}
	return loss
}

// Accuracy returns the classification accuracy over a sample batch.
func (m *MLP) Accuracy(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var hits int
	for i, x := range xs {
		if m.PredictClass(x) == labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(xs))
}

// MeanLoss returns the mean cross-entropy over a sample batch.
func (m *MLP) MeanLoss(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i, x := range xs {
		s += m.Loss(x, labels[i])
	}
	return s / float64(len(xs))
}

// MeanLossLabel returns the mean cross-entropy of a batch that shares
// one label — the shadow-model scoring sweep of the universality
// experiment (every target sample of a class is scored against that
// class). The per-sample forwards run on the blocked Gemv kernels.
func (m *MLP) MeanLossLabel(xs [][]float64, label int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += m.Loss(x, label)
	}
	return s / float64(len(xs))
}

// TrainEpoch shuffles the batch and applies one SGD pass, returning
// the mean loss.
func (m *MLP) TrainEpoch(r *rand.Rand, xs [][]float64, labels []int, lr float64) float64 {
	order := mathx.Perm(r, len(xs))
	var s float64
	for _, i := range order {
		s += m.TrainExample(xs[i], labels[i], lr)
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
