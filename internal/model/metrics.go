package model

import (
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
)

// HitForUser evaluates the NCF leave-one-out protocol for a single
// user: rank the held-out item against numNeg sampled negatives and
// report 1 when it lands in the top k. ok is false when the user has
// no held-out item.
func HitForUser(m Recommender, d *dataset.Dataset, u, k, numNeg int, r *rand.Rand) (hit float64, ok bool) {
	if k <= 0 || numNeg <= 0 {
		panic("model: HitForUser requires positive k and numNeg")
	}
	if len(d.Test[u]) == 0 {
		return 0, false
	}
	candidates := make([]int, numNeg+1)
	scores := make([]float64, numNeg+1)
	candidates[0] = d.Test[u][0]
	for i := 1; i <= numNeg; i++ {
		candidates[i] = d.SampleNegative(r, u)
	}
	prev := -1
	if n := len(d.Train[u]); n > 0 {
		prev = d.Train[u][n-1]
	}
	m.ScoreItems(u, prev, candidates, scores)
	rank := 0
	for i := 1; i <= numNeg; i++ {
		if scores[i] > scores[0] {
			rank++
		}
	}
	if rank < k {
		return 1, true
	}
	return 0, true
}

// HitRatioAtK implements the NCF evaluation protocol used for GMF in
// the paper: the mean of HitForUser over evaluable users (0 when there
// are none).
func HitRatioAtK(m Recommender, d *dataset.Dataset, k, numNeg int, r *rand.Rand) float64 {
	var sum float64
	var evaluable int
	for u := 0; u < d.NumUsers; u++ {
		if hit, ok := HitForUser(m, d, u, k, numNeg, r); ok {
			sum += hit
			evaluable++
		}
	}
	if evaluable == 0 {
		return 0
	}
	return sum / float64(evaluable)
}

// F1ForUser computes the F1 score of the model's top-k unseen-item
// slate against user u's held-out set. ok is false when the user has
// no held-out items.
func F1ForUser(m Recommender, d *dataset.Dataset, u, k int) (f1 float64, ok bool) {
	if k <= 0 {
		panic("model: F1ForUser requires positive k")
	}
	if len(d.Test[u]) == 0 {
		return 0, false
	}
	allItems := make([]int, d.NumItems)
	for i := range allItems {
		allItems[i] = i
	}
	scores := make([]float64, d.NumItems)
	prev := -1
	if n := len(d.Train[u]); n > 0 {
		prev = d.Train[u][n-1]
	}
	m.ScoreItems(u, prev, allItems, scores)
	// Exclude training items from the recommendation slate.
	for it := range d.TrainSet(u) {
		scores[it] = negInf
	}
	top := mathx.TopK(scores, k)
	heldSet := make(map[int]struct{}, len(d.Test[u]))
	for _, it := range d.Test[u] {
		heldSet[it] = struct{}{}
	}
	var hits int
	for _, it := range top {
		if _, ok := heldSet[it]; ok {
			hits++
		}
	}
	if hits == 0 {
		return 0, true
	}
	precision := float64(hits) / float64(len(top))
	recall := float64(hits) / float64(len(heldSet))
	return 2 * precision * recall / (precision + recall), true
}

// F1AtK evaluates PRME-style held-out recovery: the mean of F1ForUser
// over evaluable users (0 when there are none).
func F1AtK(m Recommender, d *dataset.Dataset, k int) float64 {
	var sum float64
	var evaluable int
	for u := 0; u < d.NumUsers; u++ {
		if f1, ok := F1ForUser(m, d, u, k); ok {
			sum += f1
			evaluable++
		}
	}
	if evaluable == 0 {
		return 0
	}
	return sum / float64(evaluable)
}

const negInf = -1e300
