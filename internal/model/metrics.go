package model

import (
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
)

// HitForUser evaluates the NCF leave-one-out protocol for a single
// user: rank the held-out item against numNeg sampled negatives and
// report 1 when it lands in the top k. ok is false when the user has
// no held-out item.
func HitForUser(m Recommender, d *dataset.Dataset, u, k, numNeg int, r *rand.Rand) (hit float64, ok bool) {
	if k <= 0 || numNeg <= 0 {
		panic("model: HitForUser requires positive k and numNeg")
	}
	if len(d.Test[u]) == 0 {
		return 0, false
	}
	return hitForUserInto(m, d, u, k, numNeg, r,
		make([]int, numNeg+1), make([]float64, numNeg+1))
}

// hitForUserInto is the allocation-free core of HitForUser: candidates
// and scores are caller-owned buffers of length numNeg+1. The caller
// has already validated k/numNeg and that the user is evaluable.
func hitForUserInto(m Recommender, d *dataset.Dataset, u, k, numNeg int, r *rand.Rand, candidates []int, scores []float64) (hit float64, ok bool) {
	candidates[0] = d.Test[u][0]
	for i := 1; i <= numNeg; i++ {
		candidates[i] = d.SampleNegative(r, u)
	}
	prev := -1
	if n := len(d.Train[u]); n > 0 {
		prev = d.Train[u][n-1]
	}
	m.ScoreItems(u, prev, candidates, scores)
	rank := 0
	for i := 1; i <= numNeg; i++ {
		if scores[i] > scores[0] {
			rank++
		}
	}
	if rank < k {
		return 1, true
	}
	return 0, true
}

// HitRatioAtK implements the NCF evaluation protocol used for GMF in
// the paper: the mean of HitForUser over evaluable users (0 when there
// are none). The sweep runs on the deterministic parallel engine — the
// result is byte-identical for every opt.Workers setting and depends
// only on (opt.Seed, opt.Round, model parameters), never on prior RNG
// consumption. Long-lived callers (the protocol simulators) hold a
// model.Eval instead of paying the per-call engine construction.
func HitRatioAtK(m Recommender, d *dataset.Dataset, k, numNeg int, opt EvalOptions) float64 {
	e := NewEval(d, opt.Workers, opt.Seed)
	return e.HR(opt.Round, e.ClonePick(m), k, numNeg)
}

// F1ForUser computes the F1 score of the model's top-k unseen-item
// slate against user u's held-out set. ok is false when the user has
// no held-out items.
func F1ForUser(m Recommender, d *dataset.Dataset, u, k int) (f1 float64, ok bool) {
	if k <= 0 {
		panic("model: F1ForUser requires positive k")
	}
	if len(d.Test[u]) == 0 {
		return 0, false
	}
	kTop := k
	if kTop > d.NumItems {
		kTop = d.NumItems
	}
	return f1ForUserInto(m, d, u, k, make([]float64, d.NumItems), make([]int, kTop))
}

// f1ForUserInto is the allocation-free core of F1ForUser. scores is a
// NumItems-length buffer (consumed: training items are overwritten with
// -Inf before selection) and top has capacity for min(k, NumItems)
// indices. The caller has already validated k and that the user is
// evaluable. The full-catalogue sweep runs on the model's batched
// ScoreAll kernel.
func f1ForUserInto(m Recommender, d *dataset.Dataset, u, k int, scores []float64, top []int) (f1 float64, ok bool) {
	prev := -1
	if n := len(d.Train[u]); n > 0 {
		prev = d.Train[u][n-1]
	}
	m.ScoreAll(u, prev, scores)
	// Exclude training items from the recommendation slate (Train[u] is
	// duplicate-free per dataset.Validate, so the slice walk masks the
	// same set the historical TrainSet map iteration did).
	for _, it := range d.Train[u] {
		scores[it] = negInf
	}
	top = mathx.TopKSelect(scores, k, top)
	var hits int
	for _, it := range top {
		for _, h := range d.Test[u] {
			if h == it {
				hits++
				break
			}
		}
	}
	if hits == 0 {
		return 0, true
	}
	// Test[u] is duplicate-free (dataset.Validate), so its length is the
	// held-out set size.
	precision := float64(hits) / float64(len(top))
	recall := float64(hits) / float64(len(d.Test[u]))
	return 2 * precision * recall / (precision + recall), true
}

// F1AtK evaluates PRME-style held-out recovery: the mean of F1ForUser
// over evaluable users (0 when there are none), on the deterministic
// parallel engine. Only opt.Workers is consulted — the metric draws no
// randomness.
func F1AtK(m Recommender, d *dataset.Dataset, k int, opt EvalOptions) float64 {
	e := NewEval(d, opt.Workers, opt.Seed)
	return e.F1(e.ClonePick(m), k)
}

const negInf = -1e300
