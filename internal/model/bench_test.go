package model

import (
	"fmt"
	"testing"
)

// BenchmarkScoreItems prices one full-catalogue scoring sweep per model
// family at a paper-scale catalogue (20k items, dim 16 — the MovieLens
// sizing of the paper's tables), comparing the blocked batch kernels
// (ScoreAll) against the equivalent per-item ScoreItems singleton loop.
// The batch path is the one the HR/F1 utility sweeps, CIA re-scoring
// and the MIA/AIA evaluators run on; scalar is the seed behaviour.
func BenchmarkScoreItems(b *testing.B) {
	const users, items, dim = 100, 20000, 16
	factories := []struct {
		name string
		f    Factory
	}{
		{"gmf", NewGMFFactory(users, items, dim)},
		{"prme", NewPRMEFactory(users, items, dim)},
		{"bprmf", NewBPRMFFactory(users, items, dim)},
		{"neumf", NewNeuMFFactory(users, items, dim)},
	}
	for _, fam := range factories {
		m := fam.f(1)
		dst := make([]float64, items)
		b.Run(fmt.Sprintf("%s/batch", fam.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.ScoreAll(i%users, -1, dst)
			}
		})
		b.Run(fmt.Sprintf("%s/scalar", fam.name), func(b *testing.B) {
			one := make([]float64, 1)
			single := make([]int, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for it := 0; it < items; it++ {
					single[0] = it
					m.ScoreItems(i%users, -1, single, one)
					dst[it] = one[0]
				}
			}
		})
	}
}
