package model

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

func TestMLPForwardShapes(t *testing.T) {
	m := NewMLP([]int{4, 8, 3}, false, 1)
	out := m.Forward([]float64{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("output size %d", len(out))
	}
	if math.Abs(mathx.Sum(out)-1) > 1e-9 {
		t.Fatalf("softmax output sums to %v", mathx.Sum(out))
	}
}

func TestMLPBinaryHead(t *testing.T) {
	m := NewMLP([]int{3, 4, 1}, true, 1)
	out := m.Forward([]float64{1, 2, 3})
	if len(out) != 1 || out[0] <= 0 || out[0] >= 1 {
		t.Fatalf("binary head output %v", out)
	}
	if p0, p1 := m.PredictProb([]float64{1, 2, 3}, 0), m.PredictProb([]float64{1, 2, 3}, 1); math.Abs(p0+p1-1) > 1e-12 {
		t.Fatalf("binary probs do not sum to 1: %v + %v", p0, p1)
	}
}

func TestMLPConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"too few layers": func() { NewMLP([]int{3}, false, 1) },
		"zero size":      func() { NewMLP([]int{3, 0, 1}, false, 1) },
		"binary multi":   func() { NewMLP([]int{3, 4, 2}, true, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMLPNumericalGradient(t *testing.T) {
	m := NewMLP([]int{3, 5, 4, 2}, false, 3)
	x := []float64{0.5, -1, 2}
	label := 1

	// Snapshot, compute analytic update with lr, recover gradient as
	// (before-after)/lr, compare with finite differences on the loss.
	before := m.Params().Clone()
	const lr = 1e-4
	m.TrainExample(x, label, lr)
	after := m.Params().Clone()
	m.Params().CopyFrom(before)

	const eps = 1e-6
	for _, entry := range []string{"mlp/w0", "mlp/w1", "mlp/w2", "mlp/b0", "mlp/b2"} {
		data := m.Params().Get(entry)
		b := before.Get(entry)
		a := after.Get(entry)
		// Spot-check a few coordinates per entry.
		for _, idx := range []int{0, len(data) / 2, len(data) - 1} {
			analytic := (b[idx] - a[idx]) / lr
			data[idx] += eps
			up := m.Loss(x, label)
			data[idx] -= 2 * eps
			down := m.Loss(x, label)
			data[idx] += eps
			numeric := (up - down) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %.8f numeric %.8f", entry, idx, analytic, numeric)
			}
		}
	}
}

func TestMLPLearnsSeparableTask(t *testing.T) {
	// Two Gaussian blobs; a small MLP must reach high accuracy fast.
	r := mathx.NewRand(7)
	var xs [][]float64
	var labels []int
	for i := 0; i < 400; i++ {
		c := i % 2
		x := make([]float64, 4)
		center := -1.0
		if c == 1 {
			center = 1.0
		}
		for k := range x {
			x[k] = mathx.Normal(r, center, 0.5)
		}
		xs = append(xs, x)
		labels = append(labels, c)
	}
	m := NewMLP([]int{4, 16, 2}, false, 5)
	for e := 0; e < 10; e++ {
		m.TrainEpoch(r, xs, labels, 0.05)
	}
	if acc := m.Accuracy(xs, labels); acc < 0.95 {
		t.Fatalf("accuracy %.3f after training, want >= 0.95", acc)
	}
}

func TestMLPBinaryLearnsSeparableTask(t *testing.T) {
	r := mathx.NewRand(9)
	var xs [][]float64
	var labels []int
	for i := 0; i < 300; i++ {
		c := i % 2
		x := make([]float64, 3)
		for k := range x {
			x[k] = mathx.Normal(r, float64(2*c-1), 0.4)
		}
		xs = append(xs, x)
		labels = append(labels, c)
	}
	m := NewMLP([]int{3, 8, 8, 1}, true, 5)
	for e := 0; e < 15; e++ {
		m.TrainEpoch(r, xs, labels, 0.05)
	}
	if acc := m.Accuracy(xs, labels); acc < 0.95 {
		t.Fatalf("binary accuracy %.3f, want >= 0.95", acc)
	}
}

func TestMLPCloneIndependent(t *testing.T) {
	m := NewMLP([]int{2, 3, 2}, false, 1)
	c := m.Clone()
	if !paramsEqual(m, c) {
		t.Fatal("clone differs from original")
	}
	c.Params().Get("mlp/w0")[0] += 1
	if paramsEqual(m, c) {
		t.Fatal("clone shares storage")
	}
}

func paramsEqual(a, b *MLP) bool {
	for _, n := range a.Params().Names() {
		av, bv := a.Params().Get(n), b.Params().Get(n)
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func TestMLPMeanLossDecreases(t *testing.T) {
	r := mathx.NewRand(11)
	xs := [][]float64{{1, 1}, {-1, -1}, {1, -1}, {-1, 1}}
	labels := []int{0, 0, 1, 1} // XOR-ish but linearly separable by sign product? No: use as-is.
	m := NewMLP([]int{2, 16, 2}, false, 13)
	before := m.MeanLoss(xs, labels)
	for e := 0; e < 300; e++ {
		m.TrainEpoch(r, xs, labels, 0.1)
	}
	after := m.MeanLoss(xs, labels)
	if after >= before {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", before, after)
	}
	if after > 0.1 {
		t.Fatalf("XOR task not learned: loss %.4f", after)
	}
}
