package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/collablearn/ciarec/internal/mathx"
)

// Property: GMF predictions are always valid probabilities, for any
// seed and any (user, item) pair.
func TestGMFPredictBoundedProperty(t *testing.T) {
	f := func(seed uint64, uRaw, iRaw uint8) bool {
		m := NewGMF(8, 12, 4, seed)
		u := int(uRaw) % 8
		it := int(iRaw) % 12
		p := m.Predict(u, it)
		return p > 0 && p < 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: clones behave identically to the original under the same
// randomness — training a model and its clone with identically-seeded
// generators yields identical parameters.
func TestCloneTrainingEquivalenceProperty(t *testing.T) {
	d := tinyDataset(t)
	f := func(seed uint64, uRaw uint8) bool {
		u := int(uRaw) % d.NumUsers
		m1 := NewGMF(d.NumUsers, d.NumItems, 4, seed)
		m2 := m1.Clone()
		m1.TrainLocal(d, u, TrainOptions{Rand: mathx.NewRand(seed ^ 1)})
		m2.TrainLocal(d, u, TrainOptions{Rand: mathx.NewRand(seed ^ 1)})
		p1, p2 := m1.Params(), m2.Params()
		for _, name := range p1.Names() {
			a, b := p1.Get(name), p2.Get(name)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: GMF relevance over a set equals the mean of per-item
// predictions (the Eq. 3 definition).
func TestGMFRelevanceIsMeanProperty(t *testing.T) {
	m := NewGMF(6, 20, 4, 3)
	f := func(uRaw uint8, itemsRaw []uint8) bool {
		if len(itemsRaw) == 0 {
			return true
		}
		u := int(uRaw) % 6
		items := make([]int, len(itemsRaw))
		var mean float64
		for i, raw := range itemsRaw {
			items[i] = int(raw) % 20
			mean += m.Predict(u, items[i])
		}
		mean /= float64(len(items))
		return math.Abs(m.Relevance(u, items)-mean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PRME embeddings stay inside the max-norm ball through any
// amount of training.
func TestPRMEMaxNormInvariantProperty(t *testing.T) {
	d := tinyDataset(t)
	f := func(seed uint64, epochsRaw uint8) bool {
		m := NewPRME(d.NumUsers, d.NumItems, 4, seed)
		epochs := 1 + int(epochsRaw)%3
		r := mathx.NewRand(seed)
		for e := 0; e < epochs; e++ {
			for u := 0; u < d.NumUsers; u += 5 {
				m.TrainLocal(d, u, TrainOptions{Rand: r})
			}
		}
		for u := 0; u < d.NumUsers; u++ {
			if mathx.L2Norm(m.userEmb.Row(u)) > prmeMaxNorm*(1+1e-9) {
				return false
			}
		}
		for it := 0; it < d.NumItems; it++ {
			if mathx.L2Norm(m.itemPref.Row(it)) > prmeMaxNorm*(1+1e-9) {
				return false
			}
			if mathx.L2Norm(m.itemSeq.Row(it)) > prmeMaxNorm*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the MLP softmax head always produces a distribution.
func TestMLPDistributionProperty(t *testing.T) {
	m := NewMLP([]int{3, 8, 4}, false, 7)
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		out := m.Forward([]float64{math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)})
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
