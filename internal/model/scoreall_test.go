package model

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

// scoreShapes property-tests the batched scoring paths over catalogue
// sizes straddling the kernel block size and embedding widths around
// the 4-way unroll boundary.
var scoreShapes = []struct{ users, items, dim int }{
	{3, 1, 2}, {5, 7, 4}, {4, 40, 6}, {6, 255, 8}, {4, 300, 10}, {3, 600, 16},
}

// TestScoreItemsMatchesScalar pins the tentpole bit-identity contract
// for every model family: the full-catalogue ScoreAll, the gathered
// ScoreItems and singleton ScoreItems calls must agree with tolerance
// zero, item for item, across random shapes, owners and sequential
// contexts.
func TestScoreItemsMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	for _, sh := range scoreShapes {
		dim := sh.dim
		factories := map[string]Factory{
			"gmf":   NewGMFFactory(sh.users, sh.items, dim),
			"prme":  NewPRMEFactory(sh.users, sh.items, dim),
			"bprmf": NewBPRMFFactory(sh.users, sh.items, dim),
			"neumf": NewNeuMFFactory(sh.users, sh.items, dim),
		}
		for name, f := range factories {
			m := f(r.Uint64())
			owner := r.IntN(sh.users)
			for _, prev := range []int{-1, r.IntN(sh.items)} {
				all := make([]float64, sh.items)
				m.ScoreAll(owner, prev, all)

				items := make([]int, sh.items)
				for i := range items {
					items[i] = r.IntN(sh.items)
				}
				gathered := make([]float64, len(items))
				m.ScoreItems(owner, prev, items, gathered)
				one := make([]float64, 1)
				for i, it := range items {
					if gathered[i] != all[it] {
						t.Fatalf("%s %v prev=%d: gathered[%d]=%v != ScoreAll[%d]=%v",
							name, sh, prev, i, gathered[i], it, all[it])
					}
					m.ScoreItems(owner, prev, items[i:i+1], one)
					if one[0] != all[it] {
						t.Fatalf("%s %v prev=%d: singleton score %v != ScoreAll[%d]=%v",
							name, sh, prev, one[0], it, all[it])
					}
				}
			}
		}
	}
}

// TestScoreAllMatchesReference checks the batched scores against
// independent reimplementations of each family's scoring formula built
// from the scalar mathx kernels, tolerance zero.
func TestScoreAllMatchesReference(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	const users, items, dim = 4, 300, 8

	t.Run("gmf", func(t *testing.T) {
		m := NewGMF(users, items, dim, r.Uint64())
		dst := make([]float64, items)
		m.ScoreAll(1, -1, dst)
		w := make([]float64, dim)
		mathx.Hadamard(m.h, m.userEmb.Row(1), w)
		for it := 0; it < items; it++ {
			if want := mathx.Dot(m.itemEmb.Row(it), w) + m.bias[0]; dst[it] != want {
				t.Fatalf("item %d: %v != %v", it, dst[it], want)
			}
		}
	})

	t.Run("bprmf", func(t *testing.T) {
		m := NewBPRMF(users, items, dim, r.Uint64())
		dst := make([]float64, items)
		m.ScoreAll(2, -1, dst)
		for it := 0; it < items; it++ {
			// The historical scalar path: Dot + item bias.
			if want := m.score(m.userEmb.Row(2), it); dst[it] != want {
				t.Fatalf("item %d: %v != %v", it, dst[it], want)
			}
		}
	})

	t.Run("prme", func(t *testing.T) {
		m := NewPRME(users, items, dim, r.Uint64())
		dst := make([]float64, items)
		for _, prev := range []int{-1, 17} {
			m.ScoreAll(3, prev, dst)
			for it := 0; it < items; it++ {
				// The historical scalar path: the two-space score.
				if want := m.score(m.userEmb.Row(3), prev, it); dst[it] != want {
					t.Fatalf("prev=%d item %d: %v != %v", prev, it, dst[it], want)
				}
			}
		}
	})
}

// TestPredictItemsMatchesPredict checks the batched confidences against
// per-item Predict. PRME and BPRMF share the exact scalar computation
// (tolerance 0); GMF and NeuMF batch the logit through the Dot-order
// kernels, so their sigmoids may differ from the sequential scalar
// logit by float rounding only.
func TestPredictItemsMatchesPredict(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	const users, items, dim = 4, 120, 8
	cases := []struct {
		name string
		f    Factory
		tol  float64
	}{
		{"gmf", NewGMFFactory(users, items, dim), 1e-12},
		{"prme", NewPRMEFactory(users, items, dim), 0},
		{"bprmf", NewBPRMFFactory(users, items, dim), 0},
		{"neumf", NewNeuMFFactory(users, items, dim), 1e-12},
	}
	for _, c := range cases {
		m := c.f(r.Uint64())
		ids := make([]int, items)
		for i := range ids {
			ids[i] = i
		}
		got := make([]float64, items)
		m.PredictItems(1, ids, got)
		for it := 0; it < items; it++ {
			want := m.Predict(1, it)
			if d := math.Abs(got[it] - want); d > c.tol {
				t.Fatalf("%s item %d: batched %v vs scalar %v (|Δ|=%g > %g)",
					c.name, it, got[it], want, d, c.tol)
			}
		}
	}
}

// TestRelevanceMatchesBatched cross-checks the batched relevance sweeps
// against per-item Predict/score means (the historical definition).
func TestRelevanceMatchesBatched(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	const users, items, dim = 5, 90, 8
	target := []int{3, 11, 42, 89, 11}
	for name, f := range map[string]Factory{
		"gmf":   NewGMFFactory(users, items, dim),
		"bprmf": NewBPRMFFactory(users, items, dim),
		"neumf": NewNeuMFFactory(users, items, dim),
	} {
		m := f(r.Uint64())
		var want float64
		for _, it := range target {
			want += m.Predict(2, it)
		}
		want /= float64(len(target))
		got := m.Relevance(2, target)
		// BPRMF relevance is over raw scores, not sigmoids.
		if name == "bprmf" {
			buf := make([]float64, len(target))
			m.ScoreItems(2, -1, target, buf)
			want = mathx.Sum(buf) / float64(len(target))
		}
		if d := math.Abs(got - want); d > 1e-12 {
			t.Fatalf("%s relevance %v != %v (|Δ|=%g)", name, got, want, d)
		}
	}
}
