package model

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
)

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 24, NumItems: 80, NumCommunities: 3,
		MeanItemsPerUser: 15, MinItemsPerUser: 5, Affinity: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	return d
}

func TestNewGMFShape(t *testing.T) {
	m := NewGMF(5, 7, 4, 1)
	if m.NumUsers() != 5 || m.NumItems() != 7 {
		t.Fatalf("shape %d/%d", m.NumUsers(), m.NumItems())
	}
	p := m.Params()
	for _, name := range []string{GMFUserEmb, GMFItemEmb, GMFOutput, GMFBias} {
		if !p.Has(name) {
			t.Fatalf("missing entry %s", name)
		}
	}
	if p.NumParams() != 5*4+7*4+4+1 {
		t.Fatalf("NumParams = %d", p.NumParams())
	}
}

func TestGMFParamsAreLive(t *testing.T) {
	m := NewGMF(2, 2, 2, 1)
	before := m.Predict(0, 0)
	emb := m.Params().Get(GMFUserEmb)
	for i := range emb {
		emb[i] = 10
	}
	if m.Predict(0, 0) == before {
		t.Fatal("Params must be a live view of the model")
	}
}

func TestGMFCloneIndependent(t *testing.T) {
	m := NewGMF(3, 3, 2, 1)
	c := m.Clone()
	c.Params().Get(GMFOutput)[0] += 5
	if m.Params().Get(GMFOutput)[0] == c.Params().Get(GMFOutput)[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestGMFDeterministicInit(t *testing.T) {
	a, b := NewGMF(4, 4, 3, 9), NewGMF(4, 4, 3, 9)
	if a.Predict(1, 2) != b.Predict(1, 2) {
		t.Fatal("same seed produced different models")
	}
}

// Training on a user's positives must raise their predicted scores
// relative to never-seen items — the generalization signal CIA relies on.
func TestGMFTrainingIncreasesPositiveScores(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(3)
	u := 0
	for e := 0; e < 30; e++ {
		m.TrainLocal(d, u, TrainOptions{Rand: r})
	}
	var posMean, negMean float64
	for _, it := range d.Train[u] {
		posMean += m.Predict(u, it)
	}
	posMean /= float64(len(d.Train[u]))
	for i := 0; i < 50; i++ {
		negMean += m.Predict(u, d.SampleNegative(r, u))
	}
	negMean /= 50
	if posMean < negMean+0.2 {
		t.Fatalf("training did not separate positives: pos=%.3f neg=%.3f", posMean, negMean)
	}
}

func TestGMFRelevanceOrdersUsersByTaste(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(3)
	u := 1
	for e := 0; e < 20; e++ {
		m.TrainLocal(d, u, TrainOptions{Rand: r})
	}
	// The trained user's relevance for their own items must exceed the
	// relevance computed for an untrained user row.
	own := m.Relevance(u, d.Train[u])
	other := m.Relevance((u+5)%d.NumUsers, d.Train[u])
	if own <= other {
		t.Fatalf("relevance does not identify the trained user: own=%.4f other=%.4f", own, other)
	}
}

func TestGMFRelevanceEmptyTarget(t *testing.T) {
	m := NewGMF(2, 2, 2, 1)
	if got := m.Relevance(0, nil); got != 0 {
		t.Fatalf("empty-target relevance = %v, want 0", got)
	}
}

func TestGMFNumericalGradient(t *testing.T) {
	// Finite-difference check of the BCE gradient for a single
	// (user, item, label) example.
	m := NewGMF(2, 3, 4, 5)
	u, item := 1, 2
	label := 1.0

	loss := func() float64 {
		p := m.Predict(u, item)
		return -label*math.Log(p+1e-12) - (1-label)*math.Log(1-p+1e-12)
	}

	// Analytic gradient wrt p_u[k]: g * h[k] * q[k].
	g := m.Predict(u, item) - label
	const eps = 1e-6
	for k := 0; k < 4; k++ {
		analytic := g * m.h[k] * m.itemEmb.At(item, k)
		m.userEmb.Row(u)[k] += eps
		up := loss()
		m.userEmb.Row(u)[k] -= 2 * eps
		down := loss()
		m.userEmb.Row(u)[k] += eps
		numeric := (up - down) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-4 {
			t.Fatalf("dP[%d]: analytic %.6f numeric %.6f", k, analytic, numeric)
		}
	}
	// And wrt h[k]: g * p[k] * q[k].
	for k := 0; k < 4; k++ {
		analytic := g * m.userEmb.At(u, k) * m.itemEmb.At(item, k)
		m.h[k] += eps
		up := loss()
		m.h[k] -= 2 * eps
		down := loss()
		m.h[k] += eps
		numeric := (up - down) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-4 {
			t.Fatalf("dH[%d]: analytic %.6f numeric %.6f", k, analytic, numeric)
		}
	}
}

func TestGMFPerExampleClipBoundsUpdate(t *testing.T) {
	d := tinyDataset(t)
	const clip = 1e-3
	m := NewGMF(d.NumUsers, d.NumItems, 8, 2)
	before := m.Params().Clone()
	r := mathx.NewRand(4)
	m.TrainLocal(d, 0, TrainOptions{Rand: r, PerExampleClip: clip, L2: -1})
	after := m.Params()
	// Total update norm <= steps * lr * clip.
	steps := float64(len(d.Train[0]) * 5) // 1 pos + 4 neg per positive
	diff := after.Clone()
	diff.Axpy(-1, before)
	maxNorm := steps * gmfDefaultLR * clip * 1.0001
	if got := diff.L2Norm(); got > maxNorm {
		t.Fatalf("clipped update norm %.6f exceeds bound %.6f", got, maxNorm)
	}
}

func TestGMFFitFictiveUser(t *testing.T) {
	d := tinyDataset(t)
	m := NewGMF(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(5)
	// Train a few users so item embeddings carry signal.
	for u := 0; u < 8; u++ {
		for e := 0; e < 10; e++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	target := d.Train[0]
	vec := m.FitFictiveUser(target, TrainOptions{Rand: r, Epochs: 20})
	if len(vec) != 8 {
		t.Fatalf("fictive vector dim %d", len(vec))
	}
	rel := m.RelevanceWithUserVec(vec, target)
	// A random user vector must be less relevant than the fitted one.
	random := make([]float64, 8)
	mathx.FillNormal(mathx.NewRand(99), random, 0, gmfInitStd)
	if rel <= m.RelevanceWithUserVec(random, target) {
		t.Fatalf("fictive user no better than random: %.4f", rel)
	}
}

func TestGMFShareLessDriftShrinksItemDivergence(t *testing.T) {
	d := tinyDataset(t)
	mFree := NewGMF(d.NumUsers, d.NumItems, 8, 7)
	mDrift := mFree.Clone().(*GMF)
	ref := mFree.Params().Clone()
	r1, r2 := mathx.NewRand(8), mathx.NewRand(8)
	for e := 0; e < 10; e++ {
		mFree.TrainLocal(d, 0, TrainOptions{Rand: r1})
		mDrift.TrainLocal(d, 0, TrainOptions{Rand: r2, DriftTau: 2.0, DriftRef: ref})
	}
	divFree := itemDivergence(mFree, ref)
	divDrift := itemDivergence(mDrift, ref)
	if divDrift >= divFree {
		t.Fatalf("drift regularizer did not reduce item divergence: %.5f >= %.5f", divDrift, divFree)
	}
}

func itemDivergence(m *GMF, ref interface{ Get(string) []float64 }) float64 {
	cur := m.Params().Get(GMFItemEmb)
	old := ref.Get(GMFItemEmb)
	var s float64
	for i := range cur {
		d := cur[i] - old[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestGMFFactory(t *testing.T) {
	f := NewGMFFactory(3, 4, 2)
	m := f(1)
	if m.Name() != "gmf" || m.NumUsers() != 3 || m.NumItems() != 4 {
		t.Fatal("factory produced wrong model")
	}
}

func TestTrainOptionsRequireRand(t *testing.T) {
	m := NewGMF(2, 4, 2, 1)
	d, _ := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 2, NumItems: 4, NumCommunities: 2, MeanItemsPerUser: 2, MinItemsPerUser: 1, Seed: 1,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rand")
		}
	}()
	m.TrainLocal(d, 0, TrainOptions{})
}
