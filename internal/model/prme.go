package model

import (
	"math"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// Parameter-entry names shared with defenses and attacks.
const (
	PRMEUserEmb     = "prme/user_emb"
	PRMEItemEmbPref = "prme/item_emb_pref"
	PRMEItemEmbSeq  = "prme/item_emb_seq"
)

// PRME is Personalized Ranking Metric Embedding (Feng et al., IJCAI
// 2015), a next-item model with two latent metric spaces:
//
//   - a preference space with user points P_u and item points L_i;
//   - a sequential space with item points S_i.
//
// The recommendation score of item i for user u whose previous item is
// l is the negative weighted squared distance
//
//	score(u, l, i) = -( α‖P_u − L_i‖² + (1−α)‖S_l − S_i‖² )
//
// trained with a BPR-style ranking loss: observed transitions should
// outscore sampled negatives. As in the paper, PRME learns a harder
// task than GMF and is correspondingly less utility-accurate and less
// attack-sensitive.
type PRME struct {
	users, items, dim int
	alpha             float64
	userEmb           *mathx.Matrix // users × dim (P)
	itemPref          *mathx.Matrix // items × dim (L)
	itemSeq           *mathx.Matrix // items × dim (S)
	set               *param.Set
	rawRelevance      bool

	// grad is the per-step gradient workspace (6 dim-sized views),
	// allocated lazily so Clone and the constructors stay oblivious.
	// Models are not goroutine-safe; each client/worker owns a copy.
	grad []float64
	// scoreBuf is the grown-on-demand staging area of the batched
	// scoring sweeps (two halves: preference and sequential distances).
	scoreBuf []float64
}

var _ Recommender = (*PRME)(nil)

// PRME hyper-parameters following the original work.
const (
	prmeDefaultLR    = 0.02
	prmeDefaultL2    = 1e-4
	prmeDefaultAlpha = 0.2
	prmeInitStd      = 0.1
	// prmeMaxNorm clamps every embedding point to the unit ball after
	// each update, the standard stabilizer for metric-embedding BPR:
	// without it the repulsion from sampled negatives inflates all
	// distances and the metric space degenerates.
	prmeMaxNorm = 1.0
)

// NewPRME returns a randomly initialized PRME model.
func NewPRME(numUsers, numItems, dim int, seed uint64) *PRME {
	if numUsers <= 0 || numItems <= 0 || dim <= 0 {
		panic("model: NewPRME requires positive sizes")
	}
	r := mathx.NewRand(seed)
	m := &PRME{
		users:    numUsers,
		items:    numItems,
		dim:      dim,
		alpha:    prmeDefaultAlpha,
		userEmb:  mathx.NewMatrix(numUsers, dim),
		itemPref: mathx.NewMatrix(numItems, dim),
		itemSeq:  mathx.NewMatrix(numItems, dim),
	}
	mathx.FillNormal(r, m.userEmb.Data, 0, prmeInitStd)
	mathx.FillNormal(r, m.itemPref.Data, 0, prmeInitStd)
	mathx.FillNormal(r, m.itemSeq.Data, 0, prmeInitStd)
	m.set = param.New()
	m.set.AddMatrix(PRMEUserEmb, m.userEmb)
	m.set.AddMatrix(PRMEItemEmbPref, m.itemPref)
	m.set.AddMatrix(PRMEItemEmbSeq, m.itemSeq)
	return m
}

// NewPRMEFactory returns a Factory producing PRME models of this shape.
func NewPRMEFactory(numUsers, numItems, dim int) Factory {
	return func(seed uint64) Recommender { return NewPRME(numUsers, numItems, dim, seed) }
}

func (m *PRME) Name() string       { return "prme" }
func (m *PRME) Params() *param.Set { return m.set }
func (m *PRME) NumUsers() int      { return m.users }
func (m *PRME) NumItems() int      { return m.items }

// Clone returns a deep copy with fresh storage.
func (m *PRME) Clone() Recommender {
	c := &PRME{
		users:        m.users,
		items:        m.items,
		dim:          m.dim,
		alpha:        m.alpha,
		userEmb:      m.userEmb.Clone(),
		itemPref:     m.itemPref.Clone(),
		itemSeq:      m.itemSeq.Clone(),
		rawRelevance: m.rawRelevance,
	}
	c.set = param.New()
	c.set.AddMatrix(PRMEUserEmb, c.userEmb)
	c.set.AddMatrix(PRMEItemEmbPref, c.itemPref)
	c.set.AddMatrix(PRMEItemEmbSeq, c.itemSeq)
	return c
}

// prefScore is the preference-space part of the score: -‖vec − L_i‖².
func (m *PRME) prefScore(vec []float64, item int) float64 {
	return -mathx.SqDist(vec, m.itemPref.Row(item))
}

// relScore is the relevance metric used for cross-model comparison:
// the norm-adjusted preference score
//
//	2·vec·L_i − ‖L_i‖²  =  -‖vec − L_i‖² + ‖vec‖².
//
// Within one user it ranks items identically to prefScore (the ‖vec‖²
// shift is constant), but when CIA compares *different users' models*
// the raw -‖vec−L_i‖² carries a target-independent -‖P_u‖² term —
// pure per-model noise that varies with how much each user trained.
// Dropping it is a legitimate choice of "any recommendation quality
// metric" (§IV-B) and is ablated in DESIGN.md §6 (decision 2).
func (m *PRME) relScore(vec []float64, item int) float64 {
	l := m.itemPref.Row(item)
	var dot, nrm float64
	for k := range l {
		dot += vec[k] * l[k]
		nrm += l[k] * l[k]
	}
	return 2*dot - nrm
}

// score is the full two-space score; prev < 0 drops the sequential term.
func (m *PRME) score(uvec []float64, prev, item int) float64 {
	s := m.alpha * mathx.SqDist(uvec, m.itemPref.Row(item))
	if prev >= 0 {
		s += (1 - m.alpha) * mathx.SqDist(m.itemSeq.Row(prev), m.itemSeq.Row(item))
	}
	return -s
}

// Predict maps the preference-space score through a sigmoid so it is a
// probability-like confidence comparable across items, as the
// entropy-MIA requires. The +1 shift centres typical distances so
// confident items land above 0.5.
func (m *PRME) Predict(owner, item int) float64 {
	return mathx.Sigmoid(m.prefScore(m.userEmb.Row(owner), item) + 1)
}

// Relevance is the mean preference-space score over items (Eq. 3's Ŷ).
// The sequential term is deliberately excluded: V_target is an
// unordered set crafted by the adversary, so it has no "previous
// check-in" context (design choice 2 in DESIGN.md §6). Higher (less
// negative) means more relevant; CIA only needs the ordering.
func (m *PRME) Relevance(owner int, items []int) float64 {
	return m.RelevanceWithUserVec(m.userEmb.Row(owner), items)
}

// SetRawRelevance switches the Relevance metrics to the raw
// -‖u − L_i‖² distance instead of the norm-adjusted default — the
// ablation for DESIGN.md §6 decision 2 (the raw metric carries a
// per-user ‖P_u‖² confound that cripples cross-model comparison).
func (m *PRME) SetRawRelevance(raw bool) { m.rawRelevance = raw }

// RelevanceWithUserVec scores items against an explicit user vector,
// batched: one gathered pass over the preference table computing the
// dots and squared norms the metric needs (raw mode gathers squared
// distances instead).
func (m *PRME) RelevanceWithUserVec(vec []float64, items []int) float64 {
	if len(items) == 0 {
		return 0
	}
	n := len(items)
	m.scoreBuf = growFloats(m.scoreBuf, 2*n)
	if m.rawRelevance {
		d := m.scoreBuf[:n]
		mathx.SqDistRowsGather(m.itemPref, items, vec, d)
		var s float64
		for _, v := range d {
			s += -v
		}
		return s / float64(n)
	}
	dots, norms := m.scoreBuf[:n], m.scoreBuf[n:2*n]
	mathx.DotNormRows(m.itemPref, items, vec, dots, norms)
	var s float64
	//lint:ignore mathxseam score reduction order is golden-pinned; Sum-composition would reassociate the accumulation
	for i := range dots {
		s += 2*dots[i] - norms[i]
	}
	return s / float64(n)
}

// ScoreItems ranks candidates with the full two-space score, using
// prev as the sequential context (-1 for none). The batched form
// gathers the preference-space (and, with context, sequential-space)
// squared distances in blocked passes; each candidate's score is
// bit-identical to the scalar score().
func (m *PRME) ScoreItems(owner, prev int, items []int, dst []float64) {
	uvec := m.userEmb.Row(owner)
	mathx.SqDistRowsGather(m.itemPref, items, uvec, dst)
	if prev < 0 {
		mathx.NegScaleInto(m.alpha, dst, dst)
		return
	}
	m.scoreBuf = growFloats(m.scoreBuf, len(items))
	d2 := m.scoreBuf[:len(items)]
	mathx.SqDistRowsGather(m.itemSeq, items, m.itemSeq.Row(prev), d2)
	m.combineTwoSpace(dst, d2)
}

// ScoreAll scores the full catalogue with two blocked distance sweeps
// (one when there is no sequential context).
func (m *PRME) ScoreAll(owner, prev int, dst []float64) {
	uvec := m.userEmb.Row(owner)
	mathx.SqDistRows(m.itemPref, uvec, dst)
	if prev < 0 {
		mathx.NegScaleInto(m.alpha, dst, dst)
		return
	}
	m.scoreBuf = growFloats(m.scoreBuf, m.items)
	d2 := m.scoreBuf[:m.items]
	mathx.SqDistRows(m.itemSeq, m.itemSeq.Row(prev), d2)
	m.combineTwoSpace(dst, d2)
}

// combineTwoSpace folds preference distances (in dst) and sequential
// distances (in d2) into the final scores, with the exact operation
// order of the scalar score(): s = α·d1; s += (1−α)·d2; −s.
func (m *PRME) combineTwoSpace(dst, d2 []float64) {
	for i := range dst {
		s := m.alpha * dst[i]
		s += (1 - m.alpha) * d2[i]
		dst[i] = -s
	}
}

// PredictItems is the batched Predict: σ(−‖P_u − L_i‖² + 1) from one
// gathered distance sweep, bit-identical to Predict per item.
func (m *PRME) PredictItems(owner int, items []int, dst []float64) {
	mathx.SqDistRowsGather(m.itemPref, items, m.userEmb.Row(owner), dst)
	for i, d := range dst {
		dst[i] = mathx.Sigmoid(-d + 1)
	}
}

func (m *PRME) PrivateEntries() []string { return []string{PRMEUserEmb} }
func (m *PRME) ItemEntries() []string    { return []string{PRMEItemEmbPref, PRMEItemEmbSeq} }

// TrainLocal runs BPR-style SGD over user u's consecutive transitions:
// for each (prev → pos) pair, a sampled negative must score lower.
func (m *PRME) TrainLocal(d *dataset.Dataset, u int, opt TrainOptions) {
	opt = opt.withDefaults(prmeDefaultLR, prmeDefaultL2)
	seq := d.Train[u]
	if len(seq) == 0 {
		return
	}
	for e := 0; e < opt.Epochs; e++ {
		for t := 0; t < len(seq); t++ {
			prev := -1
			if t > 0 {
				prev = seq[t-1]
			}
			pos := seq[t]
			for n := 0; n < opt.NegPerPos; n++ {
				neg := d.SampleNegative(opt.Rand, u)
				m.bprStep(u, prev, pos, neg, opt)
			}
		}
	}
}

// bprStep applies one ranking update: increase score(u,prev,pos) over
// score(u,prev,neg). With z = s_pos − s_neg the BPR loss is
// −log σ(z); dL/dz = σ(z) − 1 = −σ(−z).
func (m *PRME) bprStep(u, prev, pos, neg int, opt TrainOptions) {
	uvec := m.userEmb.Row(u)
	z := m.score(uvec, prev, pos) - m.score(uvec, prev, neg)
	g := -mathx.Sigmoid(-z) // dL/dz, negative

	lp, ln := m.itemPref.Row(pos), m.itemPref.Row(neg)

	// Preference space. d s_pos/d uvec = -2α(uvec − L_pos), etc.
	// Accumulate the example gradient first so DP clipping sees the
	// whole example.
	dim := m.dim
	if m.grad == nil {
		m.grad = make([]float64, 6*dim)
	}
	dU := m.grad[0*dim : 1*dim]
	dLp := m.grad[1*dim : 2*dim]
	dLn := m.grad[2*dim : 3*dim]
	var dSprev, dSp, dSn []float64
	var sp, spos, sneg []float64
	for k := 0; k < dim; k++ {
		dp := uvec[k] - lp[k]
		dn := uvec[k] - ln[k]
		// z contributes -α‖u−Lp‖² + α‖u−Ln‖² (pref part).
		dU[k] = g * (-2*m.alpha*dp + 2*m.alpha*dn)
		dLp[k] = g * (2 * m.alpha * dp)
		dLn[k] = g * (-2 * m.alpha * dn)
	}
	if prev >= 0 {
		sp = m.itemSeq.Row(prev)
		spos = m.itemSeq.Row(pos)
		sneg = m.itemSeq.Row(neg)
		dSprev = m.grad[3*dim : 4*dim]
		dSp = m.grad[4*dim : 5*dim]
		dSn = m.grad[5*dim : 6*dim]
		for k := 0; k < dim; k++ {
			dp := sp[k] - spos[k]
			dn := sp[k] - sneg[k]
			dSprev[k] = g * (-2*(1-m.alpha)*dp + 2*(1-m.alpha)*dn)
			dSp[k] = g * (2 * (1 - m.alpha) * dp)
			dSn[k] = g * (-2 * (1 - m.alpha) * dn)
		}
	}

	scale := 1.0
	if opt.PerExampleClip > 0 {
		var sq float64
		for _, grad := range [][]float64{dU, dLp, dLn, dSprev, dSp, dSn} {
			for _, v := range grad {
				sq += v * v
			}
		}
		if norm := math.Sqrt(sq); norm > opt.PerExampleClip {
			scale = opt.PerExampleClip / norm
		}
	}
	lr := opt.LR * scale
	for k := 0; k < dim; k++ {
		uvec[k] -= lr*dU[k] + opt.LR*opt.L2*uvec[k]
		lp[k] -= lr*dLp[k] + opt.LR*opt.L2*lp[k]
		ln[k] -= lr*dLn[k] + opt.LR*opt.L2*ln[k]
	}
	mathx.ClipL2(uvec, prmeMaxNorm)
	mathx.ClipL2(lp, prmeMaxNorm)
	mathx.ClipL2(ln, prmeMaxNorm)
	if prev >= 0 {
		for k := 0; k < dim; k++ {
			sp[k] -= lr*dSprev[k] + opt.LR*opt.L2*sp[k]
			spos[k] -= lr*dSp[k] + opt.LR*opt.L2*spos[k]
			sneg[k] -= lr*dSn[k] + opt.LR*opt.L2*sneg[k]
		}
		mathx.ClipL2(sp, prmeMaxNorm)
		mathx.ClipL2(spos, prmeMaxNorm)
		mathx.ClipL2(sneg, prmeMaxNorm)
	}

	// Share-less drift regularizer (Eq. 2) on the touched item rows.
	if opt.DriftTau > 0 {
		m.drift(pos, PRMEItemEmbPref, m.itemPref, opt)
		m.drift(neg, PRMEItemEmbPref, m.itemPref, opt)
		if prev >= 0 {
			m.drift(prev, PRMEItemEmbSeq, m.itemSeq, opt)
			m.drift(pos, PRMEItemEmbSeq, m.itemSeq, opt)
			m.drift(neg, PRMEItemEmbSeq, m.itemSeq, opt)
		}
	}
}

func (m *PRME) drift(item int, entry string, mat *mathx.Matrix, opt TrainOptions) {
	ref := opt.DriftRef.Get(entry)
	base := item * m.dim
	mathx.DriftToward(opt.LR*2*opt.DriftTau, ref[base:base+m.dim], mat.Row(item))
}

// FitFictiveUser returns a preference-space user point representing "a
// user who likes items", holding every other parameter fixed (§IV-C).
//
// For a metric-embedding model the fictive-user objective
// min_v Σ_{i∈items} ‖v − L_i‖² has the closed-form optimum v = centroid
// of the target items' preference points, so we use it directly.
// Running BPR with sampled negatives here would let the repulsion term
// push v to the max-norm boundary — away from every item point — which
// destroys the comparison basis CIA needs.
func (m *PRME) FitFictiveUser(items []int, opt TrainOptions) []float64 {
	opt = opt.withDefaults(prmeDefaultLR, prmeDefaultL2)
	vec := make([]float64, m.dim)
	if len(items) == 0 {
		mathx.FillNormal(opt.Rand, vec, 0, prmeInitStd)
		return vec
	}
	for _, it := range items {
		mathx.Axpy(1, m.itemPref.Row(it), vec)
	}
	mathx.Scale(1/float64(len(items)), vec)
	mathx.ClipL2(vec, prmeMaxNorm)
	return vec
}
