package model

import (
	"math"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// Parameter-entry names shared with defenses and attacks.
const (
	GMFUserEmb = "gmf/user_emb"
	GMFItemEmb = "gmf/item_emb"
	GMFOutput  = "gmf/h"
	GMFBias    = "gmf/bias"
)

// GMF is Generalized Matrix Factorization (He et al., "Neural
// Collaborative Filtering", WWW 2017): the prediction for (u, i) is
//
//	ŷ_ui = σ( h · (p_u ⊙ q_i) + b )
//
// trained with binary cross-entropy over observed interactions plus
// sampled negatives.
type GMF struct {
	users, items, dim int
	userEmb           *mathx.Matrix // users × dim (p)
	itemEmb           *mathx.Matrix // items × dim (q)
	h                 []float64     // dim
	bias              []float64     // 1
	set               *param.Set

	// scratch buffers reused across SGD steps — one per gradient (dP,
	// dQ, dH) so a step is allocation-free. Models are not
	// goroutine-safe; each simulated client/worker owns its own copy.
	scratch, scratchQ, scratchH []float64
	// wuser holds the h-weighted user vector h ⊙ p_u the batched
	// scoring kernels dot against item rows; scoreBuf is the grown-on-
	// demand per-item staging area of the relevance/predict sweeps.
	wuser, scoreBuf []float64
}

var _ Recommender = (*GMF)(nil)

// GMF hyper-parameters following the NCF reference implementation.
const (
	gmfDefaultLR = 0.05
	gmfDefaultL2 = 1e-5
	gmfInitStd   = 0.1
)

// NewGMF returns a randomly initialized GMF model.
func NewGMF(numUsers, numItems, dim int, seed uint64) *GMF {
	if numUsers <= 0 || numItems <= 0 || dim <= 0 {
		panic("model: NewGMF requires positive sizes")
	}
	r := mathx.NewRand(seed)
	m := &GMF{
		users:    numUsers,
		items:    numItems,
		dim:      dim,
		userEmb:  mathx.NewMatrix(numUsers, dim),
		itemEmb:  mathx.NewMatrix(numItems, dim),
		h:        make([]float64, dim),
		bias:     make([]float64, 1),
		scratch:  make([]float64, dim),
		scratchQ: make([]float64, dim),
		scratchH: make([]float64, dim),
		wuser:    make([]float64, dim),
	}
	mathx.FillNormal(r, m.userEmb.Data, 0, gmfInitStd)
	mathx.FillNormal(r, m.itemEmb.Data, 0, gmfInitStd)
	// h starts at 1 (plus jitter): GMF then begins as a plain MF dot
	// product, which keeps the p⊙q gradient path alive from step one.
	// A small-h initialization starves the embedding gradients and the
	// model degenerates to fitting the global bias.
	for i := range m.h {
		m.h[i] = 1 + mathx.Normal(r, 0, 0.01)
	}
	m.set = param.New()
	m.set.AddMatrix(GMFUserEmb, m.userEmb)
	m.set.AddMatrix(GMFItemEmb, m.itemEmb)
	m.set.AddVector(GMFOutput, m.h)
	m.set.AddVector(GMFBias, m.bias)
	return m
}

// NewGMFFactory returns a Factory producing GMF models of this shape.
func NewGMFFactory(numUsers, numItems, dim int) Factory {
	return func(seed uint64) Recommender { return NewGMF(numUsers, numItems, dim, seed) }
}

func (m *GMF) Name() string       { return "gmf" }
func (m *GMF) Params() *param.Set { return m.set }
func (m *GMF) NumUsers() int      { return m.users }
func (m *GMF) NumItems() int      { return m.items }

// Clone returns a deep copy with fresh storage.
func (m *GMF) Clone() Recommender {
	c := &GMF{
		users:    m.users,
		items:    m.items,
		dim:      m.dim,
		userEmb:  m.userEmb.Clone(),
		itemEmb:  m.itemEmb.Clone(),
		h:        append([]float64(nil), m.h...),
		bias:     append([]float64(nil), m.bias...),
		scratch:  make([]float64, m.dim),
		scratchQ: make([]float64, m.dim),
		scratchH: make([]float64, m.dim),
		wuser:    make([]float64, m.dim),
	}
	c.set = param.New()
	c.set.AddMatrix(GMFUserEmb, c.userEmb)
	c.set.AddMatrix(GMFItemEmb, c.itemEmb)
	c.set.AddVector(GMFOutput, c.h)
	c.set.AddVector(GMFBias, c.bias)
	return c
}

// logit computes h·(uvec ⊙ q_i) + b.
func (m *GMF) logit(uvec []float64, item int) float64 {
	q := m.itemEmb.Row(item)
	return mathx.Dot3(m.h, uvec, q) + m.bias[0]
}

// Predict returns σ(logit) for (owner, item).
func (m *GMF) Predict(owner, item int) float64 {
	return mathx.Sigmoid(m.logit(m.userEmb.Row(owner), item))
}

// Relevance is the mean predicted score over items for owner (Eq. 3's
// Ŷ). An empty item set scores 0.
func (m *GMF) Relevance(owner int, items []int) float64 {
	return m.RelevanceWithUserVec(m.userEmb.Row(owner), items)
}

// weightedUser fills the wuser scratch with h ⊙ vec: the logit
// h·(p ⊙ q) + b factors as (h ⊙ p)·q + b, so one Hadamard per user
// turns the full-catalogue sweep into a single matrix-vector product.
// The products (h[k]*p[k])*q[k] round exactly as the scalar logit's
// h[k]*p[k]*q[k] (Go evaluates left to right), so only the kernel's
// documented accumulation order distinguishes the two paths.
func (m *GMF) weightedUser(vec []float64) []float64 {
	mathx.Hadamard(m.h, vec, m.wuser)
	return m.wuser
}

// RelevanceWithUserVec scores items against an explicit user vector,
// batched: one gathered matrix-vector product and a sigmoid pass over
// a model-owned buffer.
func (m *GMF) RelevanceWithUserVec(vec []float64, items []int) float64 {
	if len(items) == 0 {
		return 0
	}
	m.scoreBuf = growFloats(m.scoreBuf, len(items))
	buf := m.scoreBuf
	mathx.GemvRows(m.itemEmb, items, m.weightedUser(vec), nil, buf)
	mathx.AddScalar(m.bias[0], buf)
	mathx.SigmoidInto(buf, buf)
	return mathx.Sum(buf) / float64(len(items))
}

// ScoreItems ranks candidates by raw logit on the batched kernels;
// prev is ignored (GMF is not sequence-aware).
func (m *GMF) ScoreItems(owner, prev int, items []int, dst []float64) {
	mathx.GemvRows(m.itemEmb, items, m.weightedUser(m.userEmb.Row(owner)), nil, dst)
	mathx.AddScalar(m.bias[0], dst)
}

// ScoreAll scores the full catalogue in one blocked matrix-vector
// product over the item table.
func (m *GMF) ScoreAll(owner, prev int, dst []float64) {
	mathx.Gemv(m.itemEmb, m.weightedUser(m.userEmb.Row(owner)), nil, dst)
	mathx.AddScalar(m.bias[0], dst)
}

// PredictItems is the batched Predict: σ over the batched logits.
func (m *GMF) PredictItems(owner int, items []int, dst []float64) {
	m.ScoreItems(owner, -1, items, dst)
	mathx.SigmoidInto(dst, dst)
}

func (m *GMF) PrivateEntries() []string { return []string{GMFUserEmb} }
func (m *GMF) ItemEntries() []string    { return []string{GMFItemEmb} }

// TrainLocal runs opt.Epochs passes of BCE SGD with negative sampling
// over user u's training items, updating u's embedding row, the
// touched item embeddings, h and the bias — exactly the parameters a
// FedRec client owns during a round.
func (m *GMF) TrainLocal(d *dataset.Dataset, u int, opt TrainOptions) {
	opt = opt.withDefaults(gmfDefaultLR, gmfDefaultL2)
	items := d.Train[u]
	if len(items) == 0 {
		return
	}
	order := make([]int, len(items))
	copy(order, items)
	for e := 0; e < opt.Epochs; e++ {
		mathx.Shuffle(opt.Rand, order)
		for _, pos := range order {
			m.sgdStep(u, pos, 1, opt)
			for n := 0; n < opt.NegPerPos; n++ {
				m.sgdStep(u, d.SampleNegative(opt.Rand, u), 0, opt)
			}
		}
	}
}

// sgdStep applies one (user, item, label) BCE gradient step.
func (m *GMF) sgdStep(u, item int, label float64, opt TrainOptions) {
	p := m.userEmb.Row(u)
	q := m.itemEmb.Row(item)
	g := mathx.Sigmoid(m.logit(p, item)) - label // dL/dlogit

	// Raw gradients (before clip): dP = g·h⊙q, dQ = g·h⊙p, dH = g·p⊙q, dB = g.
	dP := m.scratch
	dQ := m.scratchQ
	dH := m.scratchH
	var sq float64
	for k := 0; k < m.dim; k++ {
		dP[k] = g * m.h[k] * q[k]
		dQ[k] = g * m.h[k] * p[k]
		dH[k] = g * p[k] * q[k]
		sq += dP[k]*dP[k] + dQ[k]*dQ[k] + dH[k]*dH[k]
	}
	sq += g * g
	scale := 1.0
	if opt.PerExampleClip > 0 {
		norm := math.Sqrt(sq)
		if norm > opt.PerExampleClip {
			scale = opt.PerExampleClip / norm
		}
	}
	lr := opt.LR * scale
	for k := 0; k < m.dim; k++ {
		p[k] -= lr*dP[k] + opt.LR*opt.L2*p[k]
		q[k] -= lr*dQ[k] + opt.LR*opt.L2*q[k]
		m.h[k] -= lr * dH[k]
	}
	m.bias[0] -= lr * g

	// Share-less drift regularizer (Eq. 2): pull the touched item
	// embedding towards its reference value.
	if opt.DriftTau > 0 {
		ref := opt.DriftRef.Get(GMFItemEmb)
		base := item * m.dim
		mathx.DriftToward(opt.LR*2*opt.DriftTau, ref[base:base+m.dim], q)
	}
}

// FitFictiveUser trains a fresh user vector on the fabricated
// interaction matrix R_A = {(A, i) : i ∈ items}, holding item
// embeddings, h and bias fixed (§IV-C).
func (m *GMF) FitFictiveUser(items []int, opt TrainOptions) []float64 {
	opt = opt.withDefaults(gmfDefaultLR, gmfDefaultL2)
	vec := make([]float64, m.dim)
	mathx.FillNormal(opt.Rand, vec, 0, gmfInitStd)
	if len(items) == 0 {
		return vec
	}
	positives := asSet(items)
	for e := 0; e < opt.Epochs; e++ {
		for _, pos := range items {
			m.fictiveStep(vec, pos, 1, opt)
			for n := 0; n < opt.NegPerPos; n++ {
				m.fictiveStep(vec, negativeOutside(opt.Rand, m.items, positives), 0, opt)
			}
		}
	}
	return vec
}

func (m *GMF) fictiveStep(vec []float64, item int, label float64, opt TrainOptions) {
	q := m.itemEmb.Row(item)
	g := mathx.Sigmoid(m.logit(vec, item)) - label
	//lint:ignore mathxseam fused fictive-user step couples vec into its own update; no bit-identical kernel exists yet
	for k := 0; k < m.dim; k++ {
		vec[k] -= opt.LR * (g*m.h[k]*q[k] + opt.L2*vec[k])
	}
}
