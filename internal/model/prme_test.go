package model

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
)

func TestNewPRMEShape(t *testing.T) {
	m := NewPRME(5, 7, 4, 1)
	if m.NumUsers() != 5 || m.NumItems() != 7 || m.Name() != "prme" {
		t.Fatal("wrong identity")
	}
	p := m.Params()
	for _, name := range []string{PRMEUserEmb, PRMEItemEmbPref, PRMEItemEmbSeq} {
		if !p.Has(name) {
			t.Fatalf("missing entry %s", name)
		}
	}
	if got := len(m.PrivateEntries()); got != 1 {
		t.Fatalf("private entries = %d", got)
	}
	if got := len(m.ItemEntries()); got != 2 {
		t.Fatalf("item entries = %d", got)
	}
}

func TestPRMECloneIndependent(t *testing.T) {
	m := NewPRME(3, 3, 2, 1)
	c := m.Clone()
	c.Params().Get(PRMEUserEmb)[0] += 5
	if m.Params().Get(PRMEUserEmb)[0] == c.Params().Get(PRMEUserEmb)[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestPRMERelevanceOrdering(t *testing.T) {
	m := NewPRME(2, 3, 2, 1)
	// Place user 0 exactly on item 0's preference point and user 1 on
	// the antipode: user 0's model must consider item 0 more relevant.
	copy(m.userEmb.Row(0), m.itemPref.Row(0))
	for k, v := range m.itemPref.Row(0) {
		m.userEmb.Row(1)[k] = -v
	}
	if m.Relevance(0, []int{0}) <= m.Relevance(1, []int{0}) {
		t.Fatal("co-located user must be more relevant than the antipodal user")
	}
	// Per-user item ordering must match the raw distance score: the
	// norm-adjusted relevance only shifts by a per-user constant.
	u := m.userEmb.Row(0)
	if (m.relScore(u, 1) > m.relScore(u, 2)) != (m.prefScore(u, 1) > m.prefScore(u, 2)) {
		t.Fatal("relScore must preserve per-user item ordering")
	}
}

// The property CIA relies on: after identical amounts of training,
// users who share a community with the target set score it higher than
// users who do not. (Comparing a trained row against an *untrained*
// row is meaningless for a metric model: near-origin init points are
// spuriously close to everything.)
func TestPRMETrainingSeparatesCommunities(t *testing.T) {
	d := tinyDataset(t)
	m := NewPRME(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(3)
	for e := 0; e < 12; e++ {
		for u := 0; u < d.NumUsers; u++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	target := d.Train[0]
	var same, other []float64
	for u := 1; u < d.NumUsers; u++ {
		rel := m.Relevance(u, target)
		if d.PlantedCommunity[u] == d.PlantedCommunity[0] {
			same = append(same, rel)
		} else {
			other = append(other, rel)
		}
	}
	if len(same) == 0 || len(other) == 0 {
		t.Skip("degenerate community split")
	}
	if mathx.Mean(same) <= mathx.Mean(other) {
		t.Fatalf("community members not more relevant: same=%.4f other=%.4f",
			mathx.Mean(same), mathx.Mean(other))
	}
}

func TestPRMEScoreItemsUsesSequentialContext(t *testing.T) {
	m := NewPRME(2, 4, 3, 5)
	items := []int{1, 2, 3}
	withPrev := make([]float64, 3)
	noPrev := make([]float64, 3)
	m.ScoreItems(0, 0, items, withPrev)
	m.ScoreItems(0, -1, items, noPrev)
	same := true
	for i := range items {
		if withPrev[i] != noPrev[i] {
			same = false
		}
	}
	if same {
		t.Fatal("sequential context has no effect on scores")
	}
}

func TestPRMENumericalGradient(t *testing.T) {
	// Finite-difference check of the BPR gradient wrt the user vector.
	m := NewPRME(2, 5, 3, 7)
	u, prev, pos, neg := 0, 1, 2, 3
	uvec := m.userEmb.Row(u)

	loss := func() float64 {
		z := m.score(uvec, prev, pos) - m.score(uvec, prev, neg)
		return -mathx.LogSigmoid(z)
	}
	z := m.score(uvec, prev, pos) - m.score(uvec, prev, neg)
	g := -mathx.Sigmoid(-z)
	lp, ln := m.itemPref.Row(pos), m.itemPref.Row(neg)
	const eps = 1e-6
	for k := 0; k < 3; k++ {
		analytic := g * (-2*m.alpha*(uvec[k]-lp[k]) + 2*m.alpha*(uvec[k]-ln[k]))
		uvec[k] += eps
		up := loss()
		uvec[k] -= 2 * eps
		down := loss()
		uvec[k] += eps
		numeric := (up - down) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-5 {
			t.Fatalf("dU[%d]: analytic %.8f numeric %.8f", k, analytic, numeric)
		}
	}
}

func TestPRMEFitFictiveUserApproachesTarget(t *testing.T) {
	d := tinyDataset(t)
	m := NewPRME(d.NumUsers, d.NumItems, 8, 2)
	r := mathx.NewRand(5)
	for u := 0; u < 6; u++ {
		for e := 0; e < 8; e++ {
			m.TrainLocal(d, u, TrainOptions{Rand: r})
		}
	}
	target := d.Train[0]
	vec := m.FitFictiveUser(target, TrainOptions{Rand: r, Epochs: 20})
	random := make([]float64, 8)
	mathx.FillNormal(mathx.NewRand(99), random, 0, prmeInitStd)
	if m.RelevanceWithUserVec(vec, target) <= m.RelevanceWithUserVec(random, target) {
		t.Fatal("fictive user no better than random")
	}
}

func TestPRMEPerExampleClipBoundsUpdate(t *testing.T) {
	d := tinyDataset(t)
	const clip = 1e-3
	m := NewPRME(d.NumUsers, d.NumItems, 8, 2)
	before := m.Params().Clone()
	r := mathx.NewRand(4)
	m.TrainLocal(d, 0, TrainOptions{Rand: r, PerExampleClip: clip, L2: -1})
	diff := m.Params().Clone()
	diff.Axpy(-1, before)
	steps := float64(len(d.Train[0]) * 4)
	maxNorm := steps * prmeDefaultLR * clip * 1.0001
	if got := diff.L2Norm(); got > maxNorm {
		t.Fatalf("clipped update norm %.6f exceeds bound %.6f", got, maxNorm)
	}
}

func TestPRMEPredictInUnitInterval(t *testing.T) {
	m := NewPRME(3, 5, 4, 11)
	for u := 0; u < 3; u++ {
		for it := 0; it < 5; it++ {
			p := m.Predict(u, it)
			if p <= 0 || p >= 1 {
				t.Fatalf("Predict(%d,%d) = %v out of (0,1)", u, it, p)
			}
		}
	}
}
