package model

import (
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/parx"
)

// EvalOptions is the deterministic sweep context for HitRatioAtK and
// F1AtK. The zero value evaluates on every core with seed 0 at round 0.
type EvalOptions struct {
	// Workers bounds the sweep's parallelism (parx semantics: 0 selects
	// runtime.NumCPU(), negative forces serial). The result is
	// byte-identical for every setting.
	Workers int
	// Seed is the base seed of the negative-sampling streams. Each user
	// draws from the independent (Seed, Round, user) stream, so the
	// sweep never depends on what any other RNG consumer did before it.
	Seed uint64
	// Round labels the sweep: re-evaluating the same round reproduces
	// the same negatives, while distinct rounds get fresh ones.
	Round int
}

// Eval is a reusable deterministic parallel evaluation engine for the
// per-user utility sweeps (leave-one-out HR@K, top-K F1). It fans users
// out over a bounded worker pool with per-worker scratch, derives an
// independent counter-based RNG stream per (seed, round, user) via
// mathx.StreamSeeds, and reduces per-user results in ascending user
// order — so a sweep is byte-identical for every worker count, a pure
// function of (seed, round, model parameters), and allocation-free in
// steady state.
type Eval struct {
	d       *dataset.Dataset
	seed    uint64
	workers int
	scratch []evalScratch
	vals    []float64
	oks     []bool
}

// evalScratch is one worker's private buffers: a reseedable generator
// (redirected to the (seed, round, user) stream before each user) and
// the candidate/score storage the per-user metrics write into.
type evalScratch struct {
	pcg        *rand.PCG
	rng        *rand.Rand
	candidates []int
	scores     []float64
	top        []int
}

// NewEval builds an engine for d. workers follows parx semantics and is
// additionally clamped to the user count (a sweep never has more
// independent work items than users).
func NewEval(d *dataset.Dataset, workers int, seed uint64) *Eval {
	w := parx.Workers(workers)
	if w > d.NumUsers {
		w = d.NumUsers
	}
	if w < 1 {
		w = 1
	}
	e := &Eval{
		d:       d,
		seed:    seed,
		workers: w,
		scratch: make([]evalScratch, w),
		vals:    make([]float64, d.NumUsers),
		oks:     make([]bool, d.NumUsers),
	}
	for i := range e.scratch {
		pcg := rand.NewPCG(0, 0)
		e.scratch[i] = evalScratch{pcg: pcg, rng: rand.New(pcg)}
	}
	return e
}

// Workers returns the resolved worker count, so callers can size
// per-worker model scratch to match the pick function's w argument.
func (e *Eval) Workers() int { return e.workers }

// HR computes the mean leave-one-out hit ratio over evaluable users
// (0 when there are none). pick(w, u) returns the model worker w
// evaluates user u with; it runs on worker w's goroutine and may
// prepare per-worker scratch models, but must not touch state shared
// with other workers. round selects the negative-sampling streams (see
// EvalOptions). It panics unless k and numNeg are positive.
func (e *Eval) HR(round int, pick func(w, u int) Recommender, k, numNeg int) float64 {
	if k <= 0 || numNeg <= 0 {
		panic("model: HR sweep requires positive k and numNeg")
	}
	parx.ForEach(e.workers, e.d.NumUsers, func(w, u int) {
		if len(e.d.Test[u]) == 0 {
			e.oks[u] = false
			return
		}
		sc := &e.scratch[w]
		sc.pcg.Seed(mathx.StreamSeeds(e.seed, uint64(round), uint64(u)))
		sc.candidates = growInts(sc.candidates, numNeg+1)
		sc.scores = growFloats(sc.scores, numNeg+1)
		e.vals[u], e.oks[u] = hitForUserInto(
			pick(w, u), e.d, u, k, numNeg, sc.rng, sc.candidates, sc.scores)
	})
	return e.reduce()
}

// F1 computes the mean top-k F1 over evaluable users (0 when there are
// none). The metric is deterministic given the model parameters — no
// RNG is involved — so no round label is needed. pick follows the same
// contract as in HR. It panics unless k is positive.
func (e *Eval) F1(pick func(w, u int) Recommender, k int) float64 {
	if k <= 0 {
		panic("model: F1 sweep requires positive k")
	}
	kTop := k
	if kTop > e.d.NumItems {
		kTop = e.d.NumItems
	}
	parx.ForEach(e.workers, e.d.NumUsers, func(w, u int) {
		if len(e.d.Test[u]) == 0 {
			e.oks[u] = false
			return
		}
		sc := &e.scratch[w]
		sc.scores = growFloats(sc.scores, e.d.NumItems)
		sc.top = growInts(sc.top, kTop)
		e.vals[u], e.oks[u] = f1ForUserInto(
			pick(w, u), e.d, u, k, sc.scores[:e.d.NumItems], sc.top)
	})
	return e.reduce()
}

// ClonePick returns a pick function serving m itself to worker 0 and
// lazily-built clones to the others. Batched scoring routes through
// model-owned scratch in every family (weighted-user vectors, hoisted
// tower activations, per-item staging), so concurrent workers must
// never score through one shared Recommender.
func (e *Eval) ClonePick(m Recommender) func(w, u int) Recommender {
	clones := make([]Recommender, e.workers)
	clones[0] = m
	return func(w, _ int) Recommender {
		if clones[w] == nil {
			clones[w] = m.Clone()
		}
		return clones[w]
	}
}

// reduce folds the per-user staging area in ascending user order, which
// fixes the floating-point addition order independently of which worker
// produced which value.
func (e *Eval) reduce() float64 {
	var sum float64
	var evaluable int
	for u, ok := range e.oks {
		if ok {
			sum += e.vals[u]
			evaluable++
		}
	}
	if evaluable == 0 {
		return 0
	}
	return sum / float64(evaluable)
}

// growInts returns s resized to n, reallocating only when capacity is
// insufficient (the steady-state path is allocation-free).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
