// Package model implements the recommendation models evaluated in the
// paper — Generalized Matrix Factorization (GMF, He et al. 2017) and
// Personalized Ranking Metric Embedding (PRME, Feng et al. 2015) — plus
// the small MLPs used by the universality experiment (§VIII-E) and the
// AIA gradient classifier (§VIII-C2). Gradients are hand-derived and
// exact; there is no autograd substrate.
package model

import (
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/param"
)

// Recommender is the contract the collaborative-learning protocols,
// defenses and attacks require from a recommendation model.
//
// Identity convention: models carry the full user-embedding table (the
// paper's "full model sharing" baseline), and a model received from
// user u is scored with u's own embedding row.
type Recommender interface {
	// Name identifies the model family ("gmf", "prme").
	Name() string
	// Params returns a live view of the model's parameters: mutating
	// the returned set mutates the model. Clone it to snapshot.
	Params() *param.Set
	// Clone returns a deep copy.
	Clone() Recommender
	NumUsers() int
	NumItems() int

	// TrainLocal runs local SGD on user u's training data, exactly as
	// a protocol client would between model exchanges.
	TrainLocal(d *dataset.Dataset, u int, opt TrainOptions)

	// Relevance returns the mean relevance score the model assigns to
	// items when asked on behalf of owner — the quantity
	// Ŷ(Θ_u, V_target) from Eq. 3. Higher means "owner likes these
	// items more". Scores are comparable across models of one family.
	Relevance(owner int, items []int) float64

	// RelevanceWithUserVec scores items against an explicit user
	// vector instead of a stored row. The Share-less adaptation of CIA
	// (§IV-C) passes the adversary's fictive-user embedding here.
	RelevanceWithUserVec(vec []float64, items []int) float64

	// FitFictiveUser trains a fresh user vector representing "a user
	// who likes items", holding every other parameter fixed (§IV-C).
	FitFictiveUser(items []int, opt TrainOptions) []float64

	// Predict returns the model's probability-like confidence in
	// owner liking item, in (0,1). The entropy-based MIA thresholds
	// the binary entropy of this value.
	Predict(owner, item int) float64

	// ScoreItems writes a ranking score for each candidate item into
	// dst (len(dst) == len(items)). prev is the id of the user's most
	// recent item for sequence-aware models, or -1; GMF ignores it.
	// Implementations route through the batched mathx scoring kernels;
	// scoring a candidate in a batch is bit-identical to scoring it in
	// a singleton call.
	ScoreItems(owner, prev int, items []int, dst []float64)

	// ScoreAll writes a ranking score for every catalogue item into dst
	// (len(dst) == NumItems()): the full-catalogue batched form of
	// ScoreItems the top-K utility sweeps run on. dst[i] is
	// bit-identical to the score ScoreItems produces for item i.
	ScoreAll(owner, prev int, dst []float64)

	// PredictItems writes the probability-like confidence for each
	// candidate item into dst (len(dst) == len(items)) — the batched
	// form of Predict used by the membership-inference evaluator.
	PredictItems(owner int, items []int, dst []float64)

	// PrivateEntries lists the parameter entries the Share-less policy
	// withholds from messages (the user-embedding tables).
	PrivateEntries() []string

	// ItemEntries lists the item-embedding entries subject to the
	// Share-less drift regularizer (Eq. 2).
	ItemEntries() []string
}

// TrainOptions configures one local-training call. The zero value asks
// the model for its defaults (per-family learning rate, one epoch,
// NCF-style 4 negatives per positive).
type TrainOptions struct {
	// Epochs is the number of passes over the user's items (default 1).
	Epochs int
	// LR overrides the model's default learning rate when > 0.
	LR float64
	// NegPerPos is the number of sampled negatives per positive
	// (default 4, as in the NCF evaluation protocol).
	NegPerPos int
	// L2 is the weight-decay coefficient on touched embeddings
	// (default: model-specific).
	L2 float64

	// DriftTau enables the Share-less item-drift regularizer (Eq. 2)
	// when > 0: touched item embeddings are pulled towards their value
	// in DriftRef with strength tau.
	DriftTau float64
	// DriftRef holds the reference (received) parameters for the drift
	// regularizer. Required when DriftTau > 0.
	DriftRef *param.Set

	// PerExampleClip > 0 clips each example's gradient to this L2 norm
	// before applying it (the clipping half of DP-SGD; the calibrated
	// noise is added to the shared update by internal/defense).
	PerExampleClip float64

	// Rand is the client's RNG; required (training is stochastic).
	Rand *rand.Rand
}

func (o TrainOptions) withDefaults(lr, l2 float64) TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 1
	}
	if o.LR <= 0 {
		o.LR = lr
	}
	if o.NegPerPos <= 0 {
		o.NegPerPos = 4
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = l2
	}
	if o.Rand == nil {
		panic("model: TrainOptions.Rand is required")
	}
	if o.DriftTau > 0 && o.DriftRef == nil {
		panic("model: DriftTau requires DriftRef")
	}
	return o
}

// Factory builds a fresh, randomly-initialized model. Protocols use it
// to give every gossip node its own starting point and the FL server
// its global model.
type Factory func(seed uint64) Recommender

// negativeOutside draws an item id outside the given positive set —
// the negative-sampling rule of the fictive interaction matrix R_A
// (§IV-C): non-member examples come from V ∖ V_target. Sampling
// negatives from the full catalogue would let them collide with the
// target items and cancel the positive updates.
func negativeOutside(r *rand.Rand, numItems int, positives map[int]struct{}) int {
	if len(positives) >= numItems {
		panic("model: no negatives outside the positive set")
	}
	for {
		it := r.IntN(numItems)
		if _, ok := positives[it]; !ok {
			return it
		}
	}
}

// asSet converts an item list to a set for negativeOutside.
func asSet(items []int) map[int]struct{} {
	s := make(map[int]struct{}, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}
