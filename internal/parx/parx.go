// Package parx provides the tiny bounded-parallelism helpers shared by
// the protocol simulators and the experiment harness.
//
// The design constraint throughout this repository is determinism:
// simulations must produce byte-identical results whatever the worker
// count. ForEach therefore only distributes *independent* work items —
// each item owns its RNG stream and mutable state — and callers
// sequence every order-sensitive effect (message delivery, observer
// callbacks, aggregation) outside the parallel region, indexing
// results by item rather than by completion order.
package parx

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a configured worker count: n > 0 is used as
// given, n == 0 selects runtime.NumCPU(), and n < 0 forces serial
// execution (1).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if n == 0 {
		return runtime.NumCPU()
	}
	return 1
}

// ForEach runs fn(w, i) for every i in [0, n), distributing items
// across at most `workers` goroutines via an atomic work queue. w is
// the worker index in [0, workers) — callers use it to select
// per-worker scratch state (e.g. a scratch model) that is never shared
// between concurrently running items. With workers <= 1 (or n <= 1)
// everything runs inline on the calling goroutine with w == 0.
//
// Items are claimed in index order but may complete out of order; any
// observable effect whose order matters must be applied by the caller
// after ForEach returns, indexed by i.
func ForEach(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work items. It returns the error
// of the lowest-indexed failed item, which keeps the reported error
// deterministic regardless of completion order: an item is only
// skipped when a lower-indexed item has already failed, and that
// lower-indexed failure always wins the report. Items above the first
// observed failure are skipped so an early error doesn't burn the
// remaining work (each item can be an entire simulation).
func ForEachErr(workers, n int, fn func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	minFailed := int64(n)
	var mu sync.Mutex
	ForEach(workers, n, func(w, i int) {
		if int64(i) > atomic.LoadInt64(&minFailed) {
			return
		}
		if err := fn(w, i); err != nil {
			errs[i] = err
			mu.Lock()
			if int64(i) < minFailed {
				atomic.StoreInt64(&minFailed, int64(i))
			}
			mu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
