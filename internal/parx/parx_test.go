package parx

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU", got)
	}
	if got := Workers(-5); got != 1 {
		t.Fatalf("Workers(-5) = %d, want 1", got)
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 57
		hits := make([]int32, n)
		ForEach(workers, n, func(w, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachWorkerIndexBounded(t *testing.T) {
	var bad atomic.Bool
	ForEach(4, 100, func(w, i int) {
		if w < 0 || w >= 4 {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatal("worker index out of range")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(w, i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	err := ForEachErr(4, 10, func(w, i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want lowest-indexed error", err)
	}
	if err := ForEachErr(4, 10, func(w, i int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

// After a failure, higher-indexed items must be skipped instead of
// burning their (potentially expensive) work. Serial mode makes the
// skip deterministic: everything after the failing index is skipped.
func TestForEachErrSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran [10]bool
	err := ForEachErr(1, 10, func(w, i int) error {
		ran[i] = true
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	for i, r := range ran {
		if want := i <= 3; r != want {
			t.Fatalf("item %d ran=%v, want %v", i, r, want)
		}
	}
}
