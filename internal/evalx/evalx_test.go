package evalx

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 40, NumItems: 120, NumCommunities: 4,
		MeanItemsPerUser: 20, MinItemsPerUser: 6, Affinity: 0.9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrueCommunityContainsSelf(t *testing.T) {
	d := testDataset(t)
	for a := 0; a < d.NumUsers; a += 7 {
		c := TrueCommunity(d, d.Train[a], 5)
		if len(c) != 5 {
			t.Fatalf("community size %d, want 5", len(c))
		}
		if _, ok := c[a]; !ok {
			t.Fatalf("user %d (Jaccard 1 with own set) missing from own community", a)
		}
	}
}

func TestTrueCommunityMatchesPlantedStructure(t *testing.T) {
	d := testDataset(t)
	// Most of a user's ground-truth community should share the user's
	// planted community (by construction of the generator).
	var agree, total int
	for a := 0; a < d.NumUsers; a++ {
		for u := range TrueCommunity(d, d.Train[a], 8) {
			total++
			if d.PlantedCommunity[u] == d.PlantedCommunity[a] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.7 {
		t.Fatalf("only %.2f of Jaccard community members share planted community", frac)
	}
}

func TestTrueCommunitiesShape(t *testing.T) {
	d := testDataset(t)
	cs := TrueCommunities(d, 6)
	if len(cs) != d.NumUsers {
		t.Fatalf("got %d communities", len(cs))
	}
	for _, c := range cs {
		if len(c) != 6 {
			t.Fatalf("community size %d", len(c))
		}
	}
}

func TestAccuracy(t *testing.T) {
	truth := map[int]struct{}{1: {}, 2: {}, 3: {}, 4: {}}
	tests := []struct {
		name string
		pred []int
		want float64
	}{
		{"perfect", []int{1, 2, 3, 4}, 1},
		{"half", []int{1, 2, 9, 8}, 0.5},
		{"none", []int{7, 8, 9, 10}, 0},
		{"short pred", []int{1}, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Accuracy(tt.pred, truth); got != tt.want {
				t.Errorf("Accuracy = %v, want %v", got, tt.want)
			}
		})
	}
	if got := Accuracy([]int{1}, nil); got != 0 {
		t.Errorf("empty truth accuracy = %v", got)
	}
}

func TestUpperBound(t *testing.T) {
	truth := map[int]struct{}{1: {}, 2: {}}
	seen := map[int]struct{}{2: {}, 3: {}, 4: {}}
	if got := UpperBound(seen, truth); got != 0.5 {
		t.Fatalf("UpperBound = %v, want 0.5", got)
	}
	if got := UpperBound(nil, truth); got != 0 {
		t.Fatalf("empty seen bound = %v", got)
	}
}

func TestRandomBound(t *testing.T) {
	if got := RandomBound(50, 1000); got != 0.05 {
		t.Fatalf("RandomBound = %v", got)
	}
	if got := RandomBound(5, 0); got != 0 {
		t.Fatalf("RandomBound div-by-zero = %v", got)
	}
}

func TestRecorderMetrics(t *testing.T) {
	r := NewRecorder()
	r.Record([]float64{0.1, 0.2, 0.3})
	r.Record([]float64{0.5, 0.6, 0.7}) // best round
	r.Record([]float64{0.2, 0.2, 0.2})
	aac, round := r.MaxAAC()
	if round != 1 || math.Abs(aac-0.6) > 1e-12 {
		t.Fatalf("MaxAAC = %v at round %d", aac, round)
	}
	if b := r.Best10At(round); math.Abs(b-0.68) > 1e-9 {
		t.Fatalf("Best10 = %v, want 0.68 (90th pct of [.5 .6 .7])", b)
	}
	if r.NumRounds() != 3 {
		t.Fatal("NumRounds wrong")
	}
	series := r.Series()
	if len(series) != 3 || math.Abs(series[0]-0.2) > 1e-12 {
		t.Fatalf("Series = %v", series)
	}
	res := r.Summarize(0.05, 1)
	if res.MaxAAC != aac || res.RandomBound != 0.05 || res.UpperBound != 1 {
		t.Fatalf("Summarize = %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty Result string")
	}
}

func TestRecorderCopiesInput(t *testing.T) {
	r := NewRecorder()
	accs := []float64{0.5}
	r.Record(accs)
	accs[0] = 0.9
	if got := r.AAC(0); got != 0.5 {
		t.Fatalf("Recorder aliased caller slice: %v", got)
	}
}

func TestMaxAACPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder().MaxAAC()
}

func TestUtilityCurve(t *testing.T) {
	var c UtilityCurve
	if c.Final() != 0 || c.Best() != 0 {
		t.Fatal("empty curve should report 0")
	}
	c.Record(0.3)
	c.Record(0.6)
	c.Record(0.4)
	if c.Final() != 0.4 || c.Best() != 0.6 {
		t.Fatalf("Final=%v Best=%v", c.Final(), c.Best())
	}
	if len(c.Values()) != 3 {
		t.Fatal("Values length wrong")
	}
}

func TestSortedByScoreDesc(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	got := SortedByScoreDesc(scores, nil)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedByScoreDesc = %v, want %v", got, want)
		}
	}
	// Mask filters unseen users.
	got = SortedByScoreDesc(scores, []bool{true, false, true, false})
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("masked sort = %v", got)
	}
}

// A zero-round run (nothing recorded) must summarize to a zero Result
// carrying only the configuration-derived bounds, not panic.
func TestSummarizeNoRounds(t *testing.T) {
	res := NewRecorder().Summarize(0.05, 1)
	if res.MaxAAC != 0 || res.MaxRound != 0 || res.Best10AAC != 0 {
		t.Fatalf("non-zero attack metrics from an empty recorder: %+v", res)
	}
	if len(res.Series) != 0 {
		t.Fatalf("non-empty series from an empty recorder: %v", res.Series)
	}
	if res.RandomBound != 0.05 || res.UpperBound != 1 {
		t.Fatalf("bounds not carried through: %+v", res)
	}
}
