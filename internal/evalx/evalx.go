// Package evalx implements the paper's evaluation machinery: the
// Jaccard ground-truth communities (Eq. 5), the attack accuracy
// metrics (Accuracy@R, Average/Max Attack Accuracy, Best-10% AAC),
// and the random/upper accuracy bounds (§V-C).
package evalx

import (
	"fmt"
	"sort"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
)

// TrueCommunity returns the ground-truth community for a target item
// set: the k users whose training sets are most Jaccard-similar to
// target (Eq. 5). Ties break by ascending user id for determinism.
func TrueCommunity(d *dataset.Dataset, target []int, k int) map[int]struct{} {
	targetSet := make(map[int]struct{}, len(target))
	for _, it := range target {
		targetSet[it] = struct{}{}
	}
	sims := make([]float64, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		sims[u] = mathx.JaccardInt(targetSet, d.TrainSet(u))
	}
	top := mathx.TopK(sims, k)
	out := make(map[int]struct{}, len(top))
	for _, u := range top {
		out[u] = struct{}{}
	}
	return out
}

// TrueCommunities computes the ground truth for the paper's standard
// protocol where every user u plays the adversary with
// V_target = Train[u]: element a is the community for target user a.
func TrueCommunities(d *dataset.Dataset, k int) []map[int]struct{} {
	out := make([]map[int]struct{}, d.NumUsers)
	for a := 0; a < d.NumUsers; a++ {
		out[a] = TrueCommunity(d, d.Train[a], k)
	}
	return out
}

// Accuracy is Eq. 6: |pred ∩ truth| / k where k = |truth|.
// An empty truth set scores 0.
func Accuracy(pred []int, truth map[int]struct{}) float64 {
	if len(truth) == 0 {
		return 0
	}
	var inter int
	for _, u := range pred {
		if _, ok := truth[u]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(truth))
}

// UpperBound is the accuracy ceiling of an adversary who has observed
// models from exactly the users in seen: |seen ∩ truth| / |truth|
// (§V-C "Accuracy upper bound"). It is 1 for the FL server.
func UpperBound(seen map[int]struct{}, truth map[int]struct{}) float64 {
	if len(truth) == 0 {
		return 0
	}
	var inter int
	for u := range seen {
		if _, ok := truth[u]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(truth))
}

// RandomBound is the expected accuracy of a uniform random guess of k
// users out of n (hypergeometric mean K/N, §V-D).
func RandomBound(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

// Recorder accumulates per-round, per-adversary attack accuracies and
// derives the paper's summary metrics.
type Recorder struct {
	rounds [][]float64 // rounds[t][a] = accuracy of adversary a at round t
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one round of per-adversary accuracies. The slice is
// copied. Rounds must be recorded in order.
func (r *Recorder) Record(accs []float64) {
	r.rounds = append(r.rounds, append([]float64(nil), accs...))
}

// NumRounds returns the number of recorded rounds.
func (r *Recorder) NumRounds() int { return len(r.rounds) }

// AAC returns the Average Attack Accuracy at round t.
func (r *Recorder) AAC(t int) float64 {
	return mathx.Mean(r.rounds[t])
}

// Series returns the AAC for every recorded round.
func (r *Recorder) Series() []float64 {
	out := make([]float64, len(r.rounds))
	for t := range r.rounds {
		out[t] = r.AAC(t)
	}
	return out
}

// MaxAAC returns the maximum AAC over all rounds and the round where
// it is attained (§V-C "Maximum Attack Accuracy"). It panics if no
// rounds were recorded.
func (r *Recorder) MaxAAC() (aac float64, round int) {
	if len(r.rounds) == 0 {
		panic("evalx: MaxAAC with no recorded rounds")
	}
	round = 0
	aac = r.AAC(0)
	for t := 1; t < len(r.rounds); t++ {
		if v := r.AAC(t); v > aac {
			aac, round = v, t
		}
	}
	return aac, round
}

// Best10At returns the minimum accuracy among the best 10% adversaries
// at round t — i.e. the 90th percentile of the accuracy distribution
// (§V-C "Best 10% AAC").
func (r *Recorder) Best10At(t int) float64 {
	return mathx.Quantile(r.rounds[t], 0.9)
}

// Result bundles the attack metrics of one experiment configuration in
// the exact shape of the paper's tables.
type Result struct {
	MaxAAC      float64 // Max AAC (%, when multiplied by 100)
	MaxRound    int     // round where Max AAC is attained
	Best10AAC   float64 // Best 10% AAC at MaxRound
	RandomBound float64
	UpperBound  float64   // mean adversary accuracy upper bound
	Series      []float64 // AAC per round
}

// Summarize derives a Result from the recorder plus the bound inputs.
// upper is the mean over adversaries of their observation upper bound
// (pass 1 for FL). With no recorded rounds (e.g. a zero-round run) it
// returns a zero-valued Result carrying only the bounds, which are
// configuration-derived and well-defined without any rounds.
func (r *Recorder) Summarize(randomBound, upper float64) Result {
	if len(r.rounds) == 0 {
		return Result{RandomBound: randomBound, UpperBound: upper}
	}
	aac, round := r.MaxAAC()
	return Result{
		MaxAAC:      aac,
		MaxRound:    round,
		Best10AAC:   r.Best10At(round),
		RandomBound: randomBound,
		UpperBound:  upper,
		Series:      r.Series(),
	}
}

func (res Result) String() string {
	return fmt.Sprintf("MaxAAC=%.1f%% (round %d) Best10%%=%.1f%% random=%.1f%% upper=%.1f%%",
		100*res.MaxAAC, res.MaxRound, 100*res.Best10AAC, 100*res.RandomBound, 100*res.UpperBound)
}

// UtilityCurve tracks a utility metric (HR@K or F1@K) across rounds.
type UtilityCurve struct {
	vals []float64
}

// Record appends one round's utility value.
func (c *UtilityCurve) Record(v float64) { c.vals = append(c.vals, v) }

// Final returns the last value (0 when empty).
func (c *UtilityCurve) Final() float64 {
	if len(c.vals) == 0 {
		return 0
	}
	return c.vals[len(c.vals)-1]
}

// Best returns the maximum value (0 when empty).
func (c *UtilityCurve) Best() float64 {
	if len(c.vals) == 0 {
		return 0
	}
	return mathx.Max(c.vals)
}

// Values returns the recorded series.
func (c *UtilityCurve) Values() []float64 { return append([]float64(nil), c.vals...) }

// SortedByScoreDesc returns user ids ordered by descending score with
// ascending-id tie-break; unseen users (NaN scores) are excluded.
// It is the ranking primitive shared by the attack implementations.
func SortedByScoreDesc(scores []float64, isSet []bool) []int {
	var ids []int
	for u := range scores {
		if isSet == nil || isSet[u] {
			ids = append(ids, u)
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return scores[ids[a]] > scores[ids[b]] })
	return ids
}
