package evalx

import (
	"testing"
	"testing/quick"

	"github.com/collablearn/ciarec/internal/mathx"
)

// Property: Accuracy is bounded by min(1, |pred|/|truth|) and by the
// upper bound computed from any superset of the prediction.
func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRand(seed)
		n := 5 + r.IntN(30)
		k := 1 + r.IntN(n)
		pred := mathx.SampleWithoutReplacement(r, n, 1+r.IntN(k))
		truth := map[int]struct{}{}
		for _, u := range mathx.SampleWithoutReplacement(r, n, k) {
			truth[u] = struct{}{}
		}
		acc := Accuracy(pred, truth)
		if acc < 0 || acc > 1 {
			return false
		}
		if acc > float64(len(pred))/float64(len(truth))+1e-12 {
			return false
		}
		seen := map[int]struct{}{}
		for _, u := range pred {
			seen[u] = struct{}{}
		}
		return acc <= UpperBound(seen, truth)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Recorder.MaxAAC is an upper bound of every per-round AAC,
// and Best10At(t) is at least AAC(t) (the best decile dominates the
// mean... for the 90th percentile this holds when accuracies are
// bounded — verify empirically against the recorded data).
func TestRecorderConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRand(seed)
		rec := NewRecorder()
		rounds := 1 + r.IntN(10)
		users := 3 + r.IntN(20)
		for t := 0; t < rounds; t++ {
			accs := make([]float64, users)
			for i := range accs {
				accs[i] = r.Float64()
			}
			rec.Record(accs)
		}
		maxAAC, at := rec.MaxAAC()
		for t := 0; t < rounds; t++ {
			if rec.AAC(t) > maxAAC+1e-12 {
				return false
			}
		}
		// The 90th percentile is >= the median >= ... not necessarily
		// the mean, but it must be within [min, max] of the round.
		b := rec.Best10At(at)
		return b >= 0 && b <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TrueCommunity is deterministic and always returns exactly
// min(k, users) members.
func TestTrueCommunitySizeProperty(t *testing.T) {
	d := testDataset(t)
	f := func(aRaw, kRaw uint8) bool {
		a := int(aRaw) % d.NumUsers
		k := 1 + int(kRaw)%d.NumUsers
		c1 := TrueCommunity(d, d.Train[a], k)
		c2 := TrueCommunity(d, d.Train[a], k)
		if len(c1) != k || len(c2) != k {
			return false
		}
		for u := range c1 {
			if _, ok := c2[u]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
