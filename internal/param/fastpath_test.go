package param

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

// withPortableCodec runs f with the zero-copy fast path disabled, so
// both codec implementations stay compiled and exercised regardless of
// the host's byte order. Package tests do not run in parallel, so
// toggling the flag is safe.
func withPortableCodec(t *testing.T, f func()) {
	t.Helper()
	saved := codecFastPath
	codecFastPath = false
	defer func() { codecFastPath = saved }()
	f()
}

func randomSet(r *rand.Rand) *Set {
	s := New()
	n := 1 + r.IntN(4)
	for i := 0; i < n; i++ {
		rows, cols := 1+r.IntN(40), 1+r.IntN(17)
		data := make([]float64, rows*cols)
		for j := range data {
			data[j] = r.NormFloat64() * math.Pow(10, float64(r.IntN(7)-3))
		}
		s.Add(string(rune('a'+i))+"/entry", rows, cols, data)
	}
	return s
}

// TestCodecFastPathPortableEquivalence pins the two codec paths to each
// other: identical encoded bytes, and identical decoded values through
// both ReadFrom and DecodeFrom, in every fast/portable combination.
func TestCodecFastPathPortableEquivalence(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 50; trial++ {
		s := randomSet(r)

		var fast, portable bytes.Buffer
		if _, err := s.WriteTo(&fast); err != nil {
			t.Fatal(err)
		}
		withPortableCodec(t, func() {
			if _, err := s.WriteTo(&portable); err != nil {
				t.Fatal(err)
			}
		})
		if !bytes.Equal(fast.Bytes(), portable.Bytes()) {
			t.Fatalf("trial %d: fast and portable encodings differ", trial)
		}

		// Decode the shared bytes through all four (path × entry point)
		// combinations; every result must match the source bit for bit.
		check := func(name string, got *Set) {
			t.Helper()
			if !Equal(s, got, 0) {
				t.Fatalf("trial %d: %s decode differs from source", trial, name)
			}
		}
		var viaRead Set
		if _, err := viaRead.ReadFrom(bytes.NewReader(fast.Bytes())); err != nil {
			t.Fatal(err)
		}
		check("fast ReadFrom", &viaRead)
		viaDecode := s.Clone()
		viaDecode.Scale(0) // ensure the decode really writes every value
		if _, err := viaDecode.DecodeFrom(bytes.NewReader(fast.Bytes())); err != nil {
			t.Fatal(err)
		}
		check("fast DecodeFrom", viaDecode)
		withPortableCodec(t, func() {
			var p Set
			if _, err := p.ReadFrom(bytes.NewReader(fast.Bytes())); err != nil {
				t.Fatal(err)
			}
			check("portable ReadFrom", &p)
			pd := s.Clone()
			pd.Scale(0)
			if _, err := pd.DecodeFrom(bytes.NewReader(fast.Bytes())); err != nil {
				t.Fatal(err)
			}
			check("portable DecodeFrom", pd)
		})
	}
}

// TestCodecFastPathRejectsNaN keeps the untrusted-input NaN guard alive
// on the bulk-copy path.
func TestCodecFastPathRejectsNaN(t *testing.T) {
	s := New()
	data := make([]float64, 70)
	data[69] = math.NaN()
	s.Add("x", 7, 10, data)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var out Set
	if _, err := out.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("fast-path ReadFrom accepted NaN")
	}
	withPortableCodec(t, func() {
		var out Set
		if _, err := out.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("portable ReadFrom accepted NaN")
		}
	})
}
