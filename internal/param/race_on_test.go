//go:build race

package param

// raceEnabled gates assertions that are invalid under the race
// detector (sync.Pool intentionally randomizes item reuse in race
// builds, so pointer-identity checks on recycled storage would flake).
const raceEnabled = true
