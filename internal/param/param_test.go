package param

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/collablearn/ciarec/internal/mathx"
)

func newTestSet(vals ...float64) *Set {
	s := New()
	a := make([]float64, 2)
	b := make([]float64, 4)
	for i := range a {
		if i < len(vals) {
			a[i] = vals[i]
		}
	}
	for i := range b {
		if i+2 < len(vals) {
			b[i] = vals[i+2]
		}
	}
	s.AddVector("bias", a)
	s.Add("emb", 2, 2, b)
	return s
}

func TestAddAndGet(t *testing.T) {
	s := New()
	s.AddVector("v", []float64{1, 2, 3})
	if !s.Has("v") || s.Has("w") {
		t.Fatal("Has is wrong")
	}
	if got := s.Get("v"); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Get = %v", got)
	}
	e := s.Entry("v")
	if e.Rows != 3 || e.Cols != 1 {
		t.Fatalf("Entry shape = %dx%d", e.Rows, e.Cols)
	}
	if s.NumParams() != 3 || s.Len() != 1 {
		t.Fatal("NumParams/Len wrong")
	}
}

func TestAddAdoptsStorage(t *testing.T) {
	data := []float64{1, 2}
	s := New()
	s.AddVector("v", data)
	data[0] = 9
	if s.Get("v")[0] != 9 {
		t.Fatal("Add must adopt, not copy, the caller's slice")
	}
}

func TestAddMatrix(t *testing.T) {
	m := mathx.NewMatrix(2, 3)
	m.Set(1, 2, 5)
	s := New()
	s.AddMatrix("m", m)
	e := s.Entry("m")
	if e.Rows != 2 || e.Cols != 3 || e.Data[5] != 5 {
		t.Fatalf("AddMatrix entry wrong: %+v", e)
	}
}

func TestDuplicatePanics(t *testing.T) {
	s := New()
	s.AddVector("v", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate-name panic")
		}
	}()
	s.AddVector("v", []float64{2})
}

func TestShapeMismatchPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	s.Add("bad", 2, 2, []float64{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	s := newTestSet(1, 2, 3, 4, 5, 6)
	c := s.Clone()
	c.Get("bias")[0] = 99
	if s.Get("bias")[0] == 99 {
		t.Fatal("Clone shares storage")
	}
	if !Equal(s, newTestSet(1, 2, 3, 4, 5, 6), 0) {
		t.Fatal("original mutated")
	}
}

func TestFilterAndWithout(t *testing.T) {
	s := newTestSet(1, 2, 3, 4, 5, 6)
	f := s.Filter("emb", "nonexistent")
	if f.Len() != 1 || !f.Has("emb") {
		t.Fatalf("Filter kept wrong entries: %v", f.Names())
	}
	// Filter must deep-copy.
	f.Get("emb")[0] = 42
	if s.Get("emb")[0] == 42 {
		t.Fatal("Filter shares storage")
	}
	w := s.Without("emb")
	if w.Len() != 1 || !w.Has("bias") {
		t.Fatalf("Without kept wrong entries: %v", w.Names())
	}
}

func TestCopyShared(t *testing.T) {
	full := newTestSet(1, 2, 3, 4, 5, 6)
	partial := full.Filter("emb")
	partial.Get("emb")[0] = 100
	dst := newTestSet(0, 0, 0, 0, 0, 0)
	n := dst.CopyShared(partial)
	if n != 1 {
		t.Fatalf("CopyShared copied %d entries, want 1", n)
	}
	if dst.Get("emb")[0] != 100 {
		t.Fatal("CopyShared did not install shared entry")
	}
	if dst.Get("bias")[0] != 0 {
		t.Fatal("CopyShared touched a private entry")
	}
}

func TestAxpyScaleZero(t *testing.T) {
	s := newTestSet(1, 1, 1, 1, 1, 1)
	x := newTestSet(1, 2, 3, 4, 5, 6)
	s.Axpy(2, x)
	if s.Get("bias")[1] != 5 { // 1 + 2*2
		t.Fatalf("Axpy wrong: %v", s.Get("bias"))
	}
	s.Scale(0.5)
	if s.Get("bias")[1] != 2.5 {
		t.Fatalf("Scale wrong: %v", s.Get("bias"))
	}
	s.Zero()
	if s.L2Norm() != 0 {
		t.Fatal("Zero left nonzero params")
	}
}

func TestLerpMomentumSemantics(t *testing.T) {
	v := newTestSet(0, 0, 0, 0, 0, 0)
	th := newTestSet(10, 10, 10, 10, 10, 10)
	v.Lerp(0.9, th)
	if got := v.Get("bias")[0]; !almost(got, 1) {
		t.Fatalf("one momentum step = %v, want 1", got)
	}
	// Repeated application converges towards th.
	for i := 0; i < 200; i++ {
		v.Lerp(0.9, th)
	}
	if got := v.Get("emb")[3]; math.Abs(got-10) > 1e-6 {
		t.Fatalf("momentum did not converge: %v", got)
	}
}

func TestL2NormAndClip(t *testing.T) {
	s := New()
	s.AddVector("a", []float64{3})
	s.AddVector("b", []float64{4})
	if !almost(s.L2Norm(), 5) {
		t.Fatalf("L2Norm = %v, want 5", s.L2Norm())
	}
	f := s.ClipL2(1)
	if !almost(f, 0.2) || !almost(s.L2Norm(), 1) {
		t.Fatalf("clip factor %v norm %v", f, s.L2Norm())
	}
	if f := s.ClipL2(100); f != 1 {
		t.Fatal("no-op clip must return 1")
	}
}

func TestAddNoiseZeroStddevNoop(t *testing.T) {
	s := newTestSet(1, 2, 3, 4, 5, 6)
	s.AddNoise(func() float64 { return 1 }, 0)
	if !Equal(s, newTestSet(1, 2, 3, 4, 5, 6), 0) {
		t.Fatal("AddNoise with stddev 0 modified params")
	}
	s.AddNoise(func() float64 { return 1 }, 2)
	if s.Get("bias")[0] != 3 {
		t.Fatalf("AddNoise wrong: %v", s.Get("bias")[0])
	}
}

func TestWeightedSumAndUniformAverage(t *testing.T) {
	a := newTestSet(1, 1, 1, 1, 1, 1)
	b := newTestSet(3, 3, 3, 3, 3, 3)
	dst := newTestSet()
	WeightedSum(dst, []*Set{a, b}, []float64{0.25, 0.75})
	if !almost(dst.Get("bias")[0], 2.5) {
		t.Fatalf("WeightedSum = %v", dst.Get("bias")[0])
	}
	UniformAverage(dst, []*Set{a, b})
	if !almost(dst.Get("emb")[0], 2) {
		t.Fatalf("UniformAverage = %v", dst.Get("emb")[0])
	}
}

func TestUniformAveragePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformAverage(newTestSet(), nil)
}

func TestMismatchedStructurePanics(t *testing.T) {
	a := newTestSet()
	b := New()
	b.AddVector("other", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected structural panic")
		}
	}()
	a.Axpy(1, b)
}

func TestEqual(t *testing.T) {
	a := newTestSet(1, 2, 3, 4, 5, 6)
	b := newTestSet(1, 2, 3, 4, 5, 6.0000001)
	if Equal(a, b, 0) {
		t.Fatal("Equal(tol=0) should fail")
	}
	if !Equal(a, b, 1e-3) {
		t.Fatal("Equal(tol=1e-3) should pass")
	}
}

func TestStringIsStable(t *testing.T) {
	s := newTestSet()
	want := "{bias:2x1 emb:2x2}"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestLerpFixpointProperty(t *testing.T) {
	// Property: Lerp of a set with itself is the identity for any beta.
	f := func(beta float64, v1, v2 float64) bool {
		if math.IsNaN(beta) || math.IsInf(beta, 0) {
			return true
		}
		beta = math.Mod(beta, 1)
		if math.IsNaN(v1) || math.IsInf(v1, 0) || math.IsNaN(v2) || math.IsInf(v2, 0) {
			return true
		}
		s := newTestSet(v1, v2, v1, v2, v1, v2)
		c := s.Clone()
		s.Lerp(beta, c)
		return Equal(s, c, math.Abs(v1)*1e-9+math.Abs(v2)*1e-9+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
