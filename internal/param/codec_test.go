package param

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// compressRoundTrip encodes s with c against ref and decodes the bytes
// back through the transport's in-place path, returning the
// reconstruction and the encoded size.
func compressRoundTrip(t *testing.T, s *Set, c Compression, ref *Set) (*Set, int) {
	t.Helper()
	var buf bytes.Buffer
	n, err := s.WriteCompressedTo(&buf, c, ref)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("encode reported %d bytes, wrote %d", n, buf.Len())
	}
	dec := s.Clone()
	for i := 0; i < dec.Len(); i++ {
		d := dec.At(i).Data
		for j := range d {
			d[j] = math.Inf(1) // scrub so reconstruction is not vacuous
		}
	}
	dn, err := dec.DecodeFromRef(bytes.NewReader(buf.Bytes()), ref)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dn != n {
		t.Fatalf("decode consumed %d of %d bytes", dn, n)
	}
	return dec, buf.Len()
}

// quantTestPayloads builds deterministic payloads covering the shapes
// the quantizer must survive: smooth random ranges at several scales,
// constant and near-constant entries, signed and single-value data,
// and an empty entry.
func quantTestPayloads(seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New()
	smooth := make([]float64, 400)
	for i := range smooth {
		smooth[i] = rng.NormFloat64()
	}
	s.Add("smooth", 20, 20, smooth)
	scaled := make([]float64, 300)
	for i := range scaled {
		scaled[i] = 1e-6 * (rng.Float64() - 0.5)
	}
	s.Add("tiny_scale", 30, 10, scaled)
	big := make([]float64, 64)
	for i := range big {
		big[i] = 1e9 * rng.Float64()
	}
	s.Add("big_scale", 8, 8, big)
	s.AddVector("constant", []float64{3.25, 3.25, 3.25, 3.25})
	s.AddVector("single", []float64{-42.5})
	s.AddVector("signed", []float64{-1, 1, -0.5, 0.5, 0})
	s.Add("empty", 0, 3, nil)
	return s
}

// The documented error contract: every reconstructed coordinate is
// within Compression.MaxError of the original, where the span is the
// entry's own value range (its nonzero range when the encoder went
// sparse — storedness is part of the contract, so an exact-zero
// coordinate stays exactly zero).
func TestQuantizationErrorBound(t *testing.T) {
	for _, bits := range []int{8, 16} {
		c := Compression{Bits: bits}
		src := quantTestPayloads(11)
		dec, _ := compressRoundTrip(t, src, c, nil)
		for i := 0; i < src.Len(); i++ {
			e := src.At(i)
			got := dec.Get(e.Name)
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range e.Data {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			bound := c.MaxError(hi - lo)
			// Up to ordinary float64 rounding of the reconstruction.
			slack := 1e-12 * math.Max(math.Abs(lo), math.Abs(hi))
			for j, v := range e.Data {
				if err := math.Abs(got[j] - v); err > bound+slack {
					t.Errorf("%dbit %s[%d]: |%g - %g| = %g exceeds bound %g",
						bits, e.Name, j, got[j], v, err, bound)
				}
			}
		}
	}
}

// Delta coding against a reference: the bound applies to the delta's
// range (far tighter than the absolute range when client and global
// models differ in few coordinates), and coordinates with a zero
// delta reconstruct the reference value exactly.
func TestQuantizationErrorBoundDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []int{8, 16} {
		c := Compression{Bits: bits}
		ref := New()
		data := make([]float64, 500)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		ref.Add("emb", 50, 10, data)
		src := ref.Clone()
		d := src.Get("emb")
		// Perturb 7% of the coordinates, as a local training step would.
		var deltaLo, deltaHi float64
		for i := range d {
			if rng.Float64() < 0.07 {
				delta := 0.01 * rng.NormFloat64()
				d[i] += delta
				deltaLo = math.Min(deltaLo, d[i]-data[i])
				deltaHi = math.Max(deltaHi, d[i]-data[i])
			}
		}
		dec, size := compressRoundTrip(t, src, c, ref)
		bound := c.MaxError(deltaHi - deltaLo)
		got := dec.Get("emb")
		for i, v := range d {
			if v == data[i] {
				if got[i] != data[i] {
					t.Fatalf("%dbit: untouched coordinate %d: %g != reference %g", bits, i, got[i], data[i])
				}
				continue
			}
			if err := math.Abs(got[i] - v); err > bound+1e-12 {
				t.Errorf("%dbit emb[%d]: error %g exceeds delta bound %g", bits, i, err, bound)
			}
		}
		if dense := len(d) * bits / 8; size >= dense {
			t.Errorf("%dbit: sparse delta encoding (%d bytes) not smaller than dense levels (%d bytes)",
				bits, size, dense)
		}
	}
}

// Round-trip canonicality: encode∘decode∘encode is byte-stable — in
// fact on non-degenerate payloads the very first re-encode reproduces
// the stream, because levels 0 and max are always attained (so the
// grid survives exactly) and every grid point re-quantizes to itself.
func TestCompressedRoundTripCanonical(t *testing.T) {
	for _, bits := range []int{8, 16} {
		c := Compression{Bits: bits}
		for _, tc := range []struct {
			name string
			src  *Set
			ref  *Set
		}{
			{"absolute", quantTestPayloads(23), nil},
			{"delta", quantTestPayloads(29), quantTestPayloads(31)},
			{"empty-set", New(), nil},
			{"all-zero", func() *Set {
				s := New()
				s.Add("z", 16, 16, make([]float64, 256))
				return s
			}(), nil},
		} {
			var e1 bytes.Buffer
			if _, err := tc.src.WriteCompressedTo(&e1, c, tc.ref); err != nil {
				t.Fatalf("%dbit %s: encode: %v", bits, tc.name, err)
			}
			dec := tc.src.Clone()
			if _, err := dec.DecodeFromRef(bytes.NewReader(e1.Bytes()), tc.ref); err != nil {
				t.Fatalf("%dbit %s: decode: %v", bits, tc.name, err)
			}
			var e2 bytes.Buffer
			if _, err := dec.WriteCompressedTo(&e2, c, tc.ref); err != nil {
				t.Fatalf("%dbit %s: re-encode: %v", bits, tc.name, err)
			}
			if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
				t.Errorf("%dbit %s: re-encode of the decoded set is not byte-identical (%d vs %d bytes)",
					bits, tc.name, e1.Len(), e2.Len())
			}
		}
	}
}

// Sparsify-then-encode idempotence: a payload that is already a
// sparse delta against the reference (the shape defense.TopKSparsify
// emits) keeps its sparsity pattern through the codec — unstored
// coordinates reconstruct the reference exactly, stored ones stay
// stored — so encoding the reconstruction changes nothing.
func TestSparsifyThenEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ref := quantTestPayloads(43)
	src := ref.Clone()
	// Sparse top-k-style delta: touch ~5% of each entry's coordinates.
	touched := 0
	for i := 0; i < src.Len(); i++ {
		d := src.At(i).Data
		for j := range d {
			if rng.Float64() < 0.05 {
				d[j] += 0.1 * rng.NormFloat64()
				touched++
			}
		}
	}
	c := Compression{Bits: 8}
	dec1, size1 := compressRoundTrip(t, src, c, ref)
	dec2, size2 := compressRoundTrip(t, dec1, c, ref)
	if size1 != size2 {
		t.Errorf("re-encode changed the size: %d then %d bytes", size1, size2)
	}
	if !Equal(dec1, dec2, 0) {
		t.Error("second codec pass changed values: sparsify-then-encode is not idempotent")
	}
	// The sparsity pattern survived: exactly the untouched coordinates
	// equal the reference.
	same := 0
	total := 0
	for i := 0; i < ref.Len(); i++ {
		e := ref.At(i)
		got := dec1.Get(e.Name)
		total += len(e.Data)
		for j := range e.Data {
			if got[j] == e.Data[j] {
				same++
			}
		}
	}
	if want := total - touched; same < want {
		t.Errorf("%d coordinates reconstruct the reference exactly, want at least the %d untouched ones", same, want)
	}
}

// The per-payload negotiation: a dense-ish payload must not pay the
// sparse form's index overhead, and either form must beat the dense
// float64 wire size at 8 bits by a wide margin.
func TestCompressedModeChoice(t *testing.T) {
	c := Compression{Bits: 8}
	dense := New()
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i%17) - 8
	}
	dense.Add("d", 100, 10, vals)
	_, denseSize := compressRoundTrip(t, dense, c, nil)
	if denseSize > 1100 {
		t.Errorf("dense-ish 1000-value payload took %d bytes (want ≈1 byte/value)", denseSize)
	}
	if raw := dense.WireBytes(); denseSize*4 > raw {
		t.Errorf("8-bit encoding %d bytes vs %d dense float64 — less than 4x smaller", denseSize, raw)
	}
	sparse := New()
	sv := make([]float64, 1000)
	sv[3], sv[500], sv[999] = 1, -2, 3
	sparse.Add("s", 100, 10, sv)
	dec, sparseSize := compressRoundTrip(t, sparse, c, nil)
	if sparseSize > 100 {
		t.Errorf("3-of-1000 sparse payload took %d bytes (want ≈5 bytes/stored value)", sparseSize)
	}
	for i, v := range dec.Get("s") {
		if sv[i] == 0 && v != 0 {
			t.Fatalf("sparse form must keep exact zeros: coordinate %d became %g", i, v)
		}
		if sv[i] != 0 && v == 0 {
			t.Fatalf("stored coordinate %d collapsed to zero", i)
		}
	}
}

func TestParseCompression(t *testing.T) {
	for spec, want := range map[string]Compression{
		"":      {},
		"off":   {},
		"none":  {},
		"8":     {Bits: 8},
		"8bit":  {Bits: 8},
		"16":    {Bits: 16},
		"16BIT": {Bits: 16},
	} {
		got, err := ParseCompression(spec)
		if err != nil || got != want {
			t.Errorf("ParseCompression(%q) = %v, %v; want %v", spec, got, err, want)
		}
		if _, err := ParseCompression(got.String()); err != nil {
			t.Errorf("String/Parse round trip broken for %q", spec)
		}
	}
	for _, bad := range []string{"4bit", "32", "fast", "8 bit"} {
		if _, err := ParseCompression(bad); err == nil {
			t.Errorf("ParseCompression(%q) should fail", bad)
		}
	}
	if err := (Compression{Bits: 12}).Validate(); err == nil {
		t.Error("Validate must reject 12-bit compression")
	}
}

// Delta streams only decode against the encoder's reference: the
// untrusted path rejects them, and the in-place path demands a
// matching reference entry.
func TestDeltaStreamNeedsReference(t *testing.T) {
	ref := quantTestPayloads(53)
	src := ref.Clone()
	var buf bytes.Buffer
	if _, err := src.WriteCompressedTo(&buf, Compression{Bits: 8}, ref); err != nil {
		t.Fatal(err)
	}
	if _, err := New().ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ReadFrom must reject delta-coded entries")
	}
	if _, err := src.Clone().DecodeFromRef(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Error("DecodeFromRef without a reference must reject delta-coded entries")
	}
	if _, err := src.Clone().DecodeFromRef(bytes.NewReader(buf.Bytes()), ref); err != nil {
		t.Errorf("DecodeFromRef with the encoder's reference failed: %v", err)
	}
}

// Compression requires finite payloads: a diverged simulation fails
// loudly at the encoder instead of writing an undecodable range.
func TestCompressedEncodeRejectsNonFinite(t *testing.T) {
	s := New()
	s.AddVector("v", []float64{1, math.NaN()})
	if _, err := s.WriteCompressedTo(&bytes.Buffer{}, Compression{Bits: 8}, nil); err == nil {
		t.Error("NaN payload must fail to encode")
	}
	s2 := New()
	s2.AddVector("v", []float64{1, math.Inf(-1)})
	if _, err := s2.WriteCompressedTo(&bytes.Buffer{}, Compression{Bits: 16}, nil); err == nil {
		t.Error("Inf payload must fail to encode")
	}
}
