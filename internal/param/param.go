// Package param provides named dense parameter sets — the wire format
// of the simulated collaborative-learning protocols.
//
// A model registers each of its tensors (user embeddings, item
// embeddings, output weights, ...) under a stable name. Protocol
// messages, FedAvg aggregation, gossip merging, the attack's momentum
// tracker (Eq. 4 of the paper) and the Share-less parameter filter all
// operate uniformly on these sets, so none of them needs to know which
// recommendation model is being trained.
package param

import (
	"fmt"
	"math"
	"sort"

	"github.com/collablearn/ciarec/internal/mathx"
)

// Entry is one named dense tensor. Data is row-major with Rows*Cols
// elements; vectors use Cols == 1.
type Entry struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// Set is an ordered collection of named tensors. The zero value is an
// empty set ready to use.
type Set struct {
	entries []Entry
	index   map[string]int
	// sig is the structural signature used by Buffers to key its
	// free-lists, maintained eagerly by Add so concurrent readers never
	// observe a cache fill.
	sig string
}

// New returns an empty set.
func New() *Set {
	return &Set{index: make(map[string]int)}
}

// Add registers a tensor under name, adopting (not copying) data.
// Models register their live storage so a Set doubles as a mutable
// view of the model; use Clone to snapshot it for a message.
// It panics on duplicate names or when len(data) != rows*cols.
func (s *Set) Add(name string, rows, cols int, data []float64) {
	if s.index == nil {
		s.index = make(map[string]int)
	}
	if _, dup := s.index[name]; dup {
		panic(fmt.Sprintf("param: duplicate entry %q", name))
	}
	if rows*cols != len(data) {
		panic(fmt.Sprintf("param: entry %q shape %dx%d != len %d", name, rows, cols, len(data)))
	}
	s.index[name] = len(s.entries)
	e := Entry{Name: name, Rows: rows, Cols: cols, Data: data}
	s.entries = append(s.entries, e)
	s.sig = appendEntrySig(s.sig, e)
}

// AddVector registers a length-n vector under name.
func (s *Set) AddVector(name string, data []float64) {
	s.Add(name, len(data), 1, data)
}

// AddMatrix registers a mathx.Matrix under name, adopting its storage.
func (s *Set) AddMatrix(name string, m *mathx.Matrix) {
	s.Add(name, m.Rows, m.Cols, m.Data)
}

// Has reports whether the set contains an entry called name.
func (s *Set) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Get returns the backing slice of the named entry.
// It panics if the entry does not exist.
func (s *Set) Get(name string) []float64 {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("param: no entry %q", name))
	}
	return s.entries[i].Data
}

// Entry returns the full entry metadata for name.
// It panics if the entry does not exist.
func (s *Set) Entry(name string) Entry {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("param: no entry %q", name))
	}
	return s.entries[i]
}

// Names returns the entry names in registration order.
func (s *Set) Names() []string {
	out := make([]string, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Name
	}
	return out
}

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.entries) }

// At returns the i'th entry in registration order. Together with Len
// it lets hot loops walk a set without the allocation of Names().
func (s *Set) At(i int) Entry { return s.entries[i] }

// NumParams returns the total number of scalar parameters.
func (s *Set) NumParams() int {
	var n int
	for _, e := range s.entries {
		n += len(e.Data)
	}
	return n
}

// Clone returns a deep copy of s (fresh backing storage).
func (s *Set) Clone() *Set {
	out := New()
	for _, e := range s.entries {
		d := make([]float64, len(e.Data))
		copy(d, e.Data)
		out.Add(e.Name, e.Rows, e.Cols, d)
	}
	return out
}

// CloneInto overwrites dst with a deep copy of s, reusing dst's
// backing storage when the shapes match. When dst is nil or shaped
// differently a fresh set is allocated, so the idiom
//
//	snapshot = src.CloneInto(snapshot)
//
// allocates on the first call and is allocation-free afterwards. It
// returns the destination.
func (s *Set) CloneInto(dst *Set) *Set {
	if dst == nil || !SameShape(dst, s) {
		return s.Clone()
	}
	for i := range dst.entries {
		copy(dst.entries[i].Data, s.entries[i].Data)
	}
	return dst
}

// Filter returns a deep copy containing only the entries whose names
// appear in keep. Missing names are ignored, so defenses can express
// "share item embeddings and the output layer" without knowing every
// model's full inventory. Registration order is preserved.
func (s *Set) Filter(keep ...string) *Set {
	want := make(map[string]struct{}, len(keep))
	for _, k := range keep {
		want[k] = struct{}{}
	}
	out := New()
	for _, e := range s.entries {
		if _, ok := want[e.Name]; !ok {
			continue
		}
		d := make([]float64, len(e.Data))
		copy(d, e.Data)
		out.Add(e.Name, e.Rows, e.Cols, d)
	}
	return out
}

// Without returns a deep copy excluding the named entries.
func (s *Set) Without(drop ...string) *Set {
	skip := make(map[string]struct{}, len(drop))
	for _, d := range drop {
		skip[d] = struct{}{}
	}
	out := New()
	for _, e := range s.entries {
		if _, ok := skip[e.Name]; ok {
			continue
		}
		d := make([]float64, len(e.Data))
		copy(d, e.Data)
		out.Add(e.Name, e.Rows, e.Cols, d)
	}
	return out
}

// SameShape reports whether a and b contain identical entries (names,
// registration order and shapes) — the precondition of every in-place
// binary operation on sets.
func SameShape(a, b *Set) bool {
	if len(a.entries) != len(b.entries) {
		return false
	}
	for i, e := range a.entries {
		o := b.entries[i]
		if e.Name != o.Name || e.Rows != o.Rows || e.Cols != o.Cols {
			return false
		}
	}
	return true
}

// sameShape panics unless a and b contain identical entries
// (names, order, shapes).
func sameShape(op string, a, b *Set) {
	if len(a.entries) != len(b.entries) {
		panic(fmt.Sprintf("param: %s entry count mismatch %d != %d", op, len(a.entries), len(b.entries)))
	}
	for i, e := range a.entries {
		o := b.entries[i]
		if e.Name != o.Name || e.Rows != o.Rows || e.Cols != o.Cols {
			panic(fmt.Sprintf("param: %s entry %d mismatch %q(%dx%d) != %q(%dx%d)",
				op, i, e.Name, e.Rows, e.Cols, o.Name, o.Rows, o.Cols))
		}
	}
}

// CopyFrom overwrites s with the values of src (shapes must match).
func (s *Set) CopyFrom(src *Set) {
	sameShape("CopyFrom", s, src)
	for i := range s.entries {
		copy(s.entries[i].Data, src.entries[i].Data)
	}
}

// CopyShared overwrites only the entries of s that also exist in src
// (matching shapes required). It returns the number of entries copied.
// This is how a Share-less client installs a received partial model.
func (s *Set) CopyShared(src *Set) int {
	var n int
	for i := range s.entries {
		e := &s.entries[i]
		j, ok := src.index[e.Name]
		if !ok {
			continue
		}
		o := src.entries[j]
		if o.Rows != e.Rows || o.Cols != e.Cols {
			panic(fmt.Sprintf("param: CopyShared shape mismatch for %q", e.Name))
		}
		copy(e.Data, o.Data)
		n++
	}
	return n
}

// Zero sets every parameter to zero.
func (s *Set) Zero() {
	for _, e := range s.entries {
		mathx.Zero(e.Data)
	}
}

// Axpy computes s += alpha*x element-wise (shapes must match).
func (s *Set) Axpy(alpha float64, x *Set) {
	sameShape("Axpy", s, x)
	for i := range s.entries {
		mathx.Axpy(alpha, x.entries[i].Data, s.entries[i].Data)
	}
}

// Scale multiplies every parameter by alpha.
func (s *Set) Scale(alpha float64) {
	for _, e := range s.entries {
		mathx.Scale(alpha, e.Data)
	}
}

// Lerp performs the momentum update s = beta*s + (1-beta)*x (Eq. 4).
func (s *Set) Lerp(beta float64, x *Set) {
	sameShape("Lerp", s, x)
	for i := range s.entries {
		mathx.Lerp(beta, s.entries[i].Data, x.entries[i].Data)
	}
}

// L2Norm returns the Euclidean norm over all parameters.
func (s *Set) L2Norm() float64 {
	var sq float64
	for _, e := range s.entries {
		n := mathx.L2Norm(e.Data)
		sq += n * n
	}
	return math.Sqrt(sq)
}

// ClipL2 scales all parameters jointly so the global L2 norm does not
// exceed c, returning the factor applied (1 when no clipping occurred).
func (s *Set) ClipL2(c float64) float64 {
	if c <= 0 {
		return 1
	}
	n := s.L2Norm()
	if n <= c || n == 0 {
		return 1
	}
	f := c / n
	s.Scale(f)
	return f
}

// AddNoise adds independent N(0, stddev²) noise to every parameter
// using the provided generator-backed source.
func (s *Set) AddNoise(noise func() float64, stddev float64) {
	if stddev <= 0 {
		return
	}
	for _, e := range s.entries {
		for i := range e.Data {
			e.Data[i] += stddev * noise()
		}
	}
}

// WeightedSum overwrites dst with sum_i weights[i]*sets[i]. All sets
// (and dst) must share the same shape. Weights are used as given; the
// caller normalizes if averaging is intended.
func WeightedSum(dst *Set, sets []*Set, weights []float64) {
	if len(sets) != len(weights) {
		panic("param: WeightedSum sets/weights length mismatch")
	}
	dst.Zero()
	for i, s := range sets {
		dst.Axpy(weights[i], s)
	}
}

// UniformAverage overwrites dst with the unweighted mean of sets.
// It panics on an empty input.
func UniformAverage(dst *Set, sets []*Set) {
	if len(sets) == 0 {
		panic("param: UniformAverage of no sets")
	}
	w := make([]float64, len(sets))
	for i := range w {
		w[i] = 1 / float64(len(sets))
	}
	WeightedSum(dst, sets, w)
}

// Equal reports whether a and b have the same structure and all values
// within tol of each other.
func Equal(a, b *Set, tol float64) bool {
	if len(a.entries) != len(b.entries) {
		return false
	}
	for i, e := range a.entries {
		o := b.entries[i]
		if e.Name != o.Name || e.Rows != o.Rows || e.Cols != o.Cols {
			return false
		}
		for j := range e.Data {
			d := e.Data[j] - o.Data[j]
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// String returns a compact structural description, e.g.
// "{item_emb:100x16 user_emb:50x16}".
func (s *Set) String() string {
	names := s.Names()
	sort.Strings(names)
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		e := s.Entry(n)
		out += fmt.Sprintf("%s:%dx%d", n, e.Rows, e.Cols)
	}
	return out + "}"
}
