package param

import (
	"bytes"
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	s := newTestSet(1.5, -2, 0, 4.25, 1e-9, 6e12)
	var buf bytes.Buffer
	wrote, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", wrote, buf.Len())
	}
	if int(wrote) != s.WireBytes() {
		t.Fatalf("WireBytes %d != actual %d", s.WireBytes(), wrote)
	}
	out := New()
	read, err := out.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if read != wrote {
		t.Fatalf("read %d bytes, want %d", read, wrote)
	}
	if !Equal(s, out, 0) {
		t.Fatal("round trip changed values")
	}
	// Entry order and shapes preserved.
	if strings.Join(out.Names(), ",") != strings.Join(s.Names(), ",") {
		t.Fatal("entry order lost")
	}
}

func TestSerializeEmptySet(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := newTestSet(1, 2) // non-empty receiver gets replaced
	if _, err := out.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("deserialized empty set has entries")
	}
}

func TestDeserializeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty input": {},
		"bad magic":   []byte("XXXX\x00\x00\x00\x00"),
		"truncated":   []byte("CPS1\x02\x00\x00\x00"),
	}
	for name, in := range cases {
		out := New()
		if _, err := out.ReadFrom(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDeserializeRejectsNaN(t *testing.T) {
	s := New()
	s.AddVector("v", []float64{1})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the float into a NaN (all-ones exponent + mantissa bit).
	b := buf.Bytes()
	for i := len(b) - 8; i < len(b); i++ {
		b[i] = 0xFF
	}
	out := New()
	if _, err := out.ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("NaN payload must be rejected")
	}
}

func TestWireBytesMatchesModelScale(t *testing.T) {
	s := New()
	s.Add("m", 10, 4, make([]float64, 40))
	want := 4 + 4 + (4 + 1 + 8 + 8*40)
	if got := s.WireBytes(); got != want {
		t.Fatalf("WireBytes = %d, want %d", got, want)
	}
}
