package param

import (
	"math"
	"testing"
	"testing/quick"
)

func sanitize(vs []float64) []float64 {
	out := make([]float64, 6)
	for i := range out {
		if i < len(vs) {
			v := vs[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			out[i] = math.Mod(v, 1e6)
		}
	}
	return out
}

// WeightedSum is linear: WeightedSum(a, w) + WeightedSum(b, w) ==
// WeightedSum(a+b, w) element-wise.
func TestWeightedSumLinearityProperty(t *testing.T) {
	f := func(rawA, rawB []float64, w1, w2 float64) bool {
		va, vb := sanitize(rawA), sanitize(rawB)
		if math.IsNaN(w1) || math.IsInf(w1, 0) {
			w1 = 0.5
		}
		if math.IsNaN(w2) || math.IsInf(w2, 0) {
			w2 = 0.25
		}
		w1, w2 = math.Mod(w1, 100), math.Mod(w2, 100)

		a := newTestSet(va...)
		b := newTestSet(vb...)
		sum := newTestSet(va...)
		sum.Axpy(1, b)

		lhs := newTestSet()
		WeightedSum(lhs, []*Set{a, b}, []float64{w1, w2})

		rhsA := newTestSet()
		WeightedSum(rhsA, []*Set{a}, []float64{w1})
		rhsB := newTestSet()
		WeightedSum(rhsB, []*Set{b}, []float64{w2})
		rhsA.Axpy(1, rhsB)

		scale := math.Abs(w1) + math.Abs(w2) + 1
		var maxAbs float64
		for _, v := range append(va, vb...) {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tol := 1e-9 * scale * (maxAbs + 1)
		return Equal(lhs, rhsA, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Filter(names) and Without(names) partition the entry set.
func TestFilterWithoutComplementProperty(t *testing.T) {
	f := func(raw []float64, keepBias bool) bool {
		s := newTestSet(sanitize(raw)...)
		var name string
		if keepBias {
			name = "bias"
		} else {
			name = "emb"
		}
		kept := s.Filter(name)
		dropped := s.Without(name)
		return kept.Len()+dropped.Len() == s.Len() &&
			kept.Has(name) && !dropped.Has(name) &&
			kept.NumParams()+dropped.NumParams() == s.NumParams()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Clip then norm never exceeds the threshold; clipping twice is
// idempotent.
func TestClipIdempotentProperty(t *testing.T) {
	f := func(raw []float64, cRaw float64) bool {
		c := math.Abs(math.Mod(cRaw, 50)) + 0.1
		s := newTestSet(sanitize(raw)...)
		s.ClipL2(c)
		n1 := s.L2Norm()
		s.ClipL2(c)
		n2 := s.L2Norm()
		return n1 <= c*(1+1e-9) && math.Abs(n1-n2) <= 1e-9*(n1+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Scale then Axpy inverse: s + (-1)*s == 0.
func TestAxpySelfInverseProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := newTestSet(sanitize(raw)...)
		c := s.Clone()
		s.Axpy(-1, c)
		return s.L2Norm() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
