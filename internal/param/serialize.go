package param

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization for parameter sets: model checkpointing, and
// the byte-accounting basis for the protocols' communication metrics.
//
// Format (little-endian):
//
//	magic "CPS1" | uint32 numEntries | entries...
//	entry: uint32 nameLen | name | uint32 rows | uint32 cols | float64s
const serializeMagic = "CPS1"

// WriteTo serializes the set. It implements io.WriterTo.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(serializeMagic); err != nil {
		return n, err
	}
	n += int64(len(serializeMagic))
	if err := write(uint32(len(s.entries))); err != nil {
		return n, err
	}
	for _, e := range s.entries {
		if err := write(uint32(len(e.Name))); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(e.Name); err != nil {
			return n, err
		}
		n += int64(len(e.Name))
		if err := write(uint32(e.Rows)); err != nil {
			return n, err
		}
		if err := write(uint32(e.Cols)); err != nil {
			return n, err
		}
		if err := write(e.Data); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a set previously produced by WriteTo,
// replacing the receiver's contents. It implements io.ReaderFrom.
func (s *Set) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	read := func(data any) error {
		if err := binary.Read(br, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	magic := make([]byte, len(serializeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return n, fmt.Errorf("param: read magic: %w", err)
	}
	n += int64(len(magic))
	if string(magic) != serializeMagic {
		return n, fmt.Errorf("param: bad magic %q", magic)
	}
	var count uint32
	if err := read(&count); err != nil {
		return n, fmt.Errorf("param: read entry count: %w", err)
	}
	if count > 1<<20 {
		return n, fmt.Errorf("param: implausible entry count %d", count)
	}
	out := New()
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := read(&nameLen); err != nil {
			return n, fmt.Errorf("param: entry %d name length: %w", i, err)
		}
		if nameLen > 4096 {
			return n, fmt.Errorf("param: entry %d name too long (%d)", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return n, fmt.Errorf("param: entry %d name: %w", i, err)
		}
		n += int64(nameLen)
		var rows, cols uint32
		if err := read(&rows); err != nil {
			return n, err
		}
		if err := read(&cols); err != nil {
			return n, err
		}
		size := uint64(rows) * uint64(cols)
		if size > 1<<32 {
			return n, fmt.Errorf("param: entry %q implausible size %d", name, size)
		}
		data := make([]float64, size)
		if err := read(data); err != nil {
			return n, fmt.Errorf("param: entry %q data: %w", name, err)
		}
		for _, v := range data {
			if math.IsNaN(v) {
				return n, fmt.Errorf("param: entry %q contains NaN", name)
			}
		}
		out.Add(string(name), int(rows), int(cols), data)
	}
	*s = *out
	return n, nil
}

// WireBytes returns the serialized size of the set without writing it:
// the message-size accounting used by the protocols' traffic metrics.
func (s *Set) WireBytes() int {
	n := len(serializeMagic) + 4
	for _, e := range s.entries {
		n += 4 + len(e.Name) + 8 + 8*len(e.Data)
	}
	return n
}
