package param

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"
	"unsafe"
)

// Binary serialization for parameter sets: model checkpointing, the
// byte-accounting basis for the protocols' communication metrics, and
// the payload codec of the wire transport (internal/transport).
//
// Format (little-endian):
//
//	magic "CPS1" | uint32 numEntries | entries...
//	entry: uint32 nameLen | name | uint32 rows | uint32 cols | float64s
const serializeMagic = "CPS1"

// floatChunk is the streaming granularity (in float64s) of the codec:
// entry data moves through a pooled fixed-size scratch buffer instead
// of one allocation per entry, so (a) the steady-state wire transport
// encodes and decodes without allocating, and (b) a malformed header
// claiming a huge entry cannot force a large upfront allocation —
// storage grows only as data actually arrives.
const floatChunk = 1024

// scratchPool recycles the codec's chunk buffers. WriteTo/ReadFrom/
// DecodeFrom run concurrently on worker goroutines under the wire
// transport, so the scratch cannot be package-level state.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 8*floatChunk)
		return &b
	},
}

// codecFastPath selects the zero-copy entry-payload codec: on hosts
// whose native byte order is the wire order (little-endian — every
// platform this module targets), a []float64 payload and its encoded
// bytes share one memory representation, so entry data moves as bulk
// copies instead of a binary.LittleEndian+math.Float64bits loop per
// float. Detected once at init; the portable per-float path stays
// compiled (and exercised by tests that clear this flag) for
// big-endian hosts. The wire format is identical on both paths.
var codecFastPath = binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1

// floatsAsBytes views a []float64 as its in-memory bytes. The view is
// only used on little-endian hosts, where it equals the wire encoding
// of the payload. (A float64 slice is always 8-byte aligned, so the
// reverse of this view is never needed.)
func floatsAsBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 8*len(f))
}

// WriteTo serializes the set. It implements io.WriterTo. Writers that
// are already buffered or in-memory (anything implementing
// io.ByteWriter, e.g. *bytes.Buffer or *bufio.Writer) are written
// directly; others are wrapped in a bufio.Writer first.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	type buffered interface {
		io.Writer
		io.ByteWriter
	}
	if bw, ok := w.(buffered); ok {
		return s.encode(bw)
	}
	bw := bufio.NewWriter(w)
	n, err := s.encode(bw)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

func (s *Set) encode(w io.Writer) (int64, error) {
	sp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(sp)
	scratch := *sp
	var n int64
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		if _, err := w.Write(scratch[:4]); err != nil {
			return err
		}
		n += 4
		return nil
	}
	if _, err := io.WriteString(w, serializeMagic); err != nil {
		return n, err
	}
	n += int64(len(serializeMagic))
	if err := writeU32(uint32(len(s.entries))); err != nil {
		return n, err
	}
	for _, e := range s.entries {
		if err := writeU32(uint32(len(e.Name))); err != nil {
			return n, err
		}
		if _, err := io.WriteString(w, e.Name); err != nil {
			return n, err
		}
		n += int64(len(e.Name))
		if err := writeU32(uint32(e.Rows)); err != nil {
			return n, err
		}
		if err := writeU32(uint32(e.Cols)); err != nil {
			return n, err
		}
		if codecFastPath {
			// Zero-copy: the payload's memory is its wire encoding, so
			// hand it to the writer as one slice (writers here copy —
			// bytes.Buffer, bufio — so exposing live model storage is
			// safe, and is exactly what the scalar loop read anyway).
			wn, err := w.Write(floatsAsBytes(e.Data))
			n += int64(wn)
			if err != nil {
				return n, err
			}
			continue
		}
		for lo := 0; lo < len(e.Data); lo += floatChunk {
			hi := min(lo+floatChunk, len(e.Data))
			buf := scratch[:8*(hi-lo)]
			for j, v := range e.Data[lo:hi] {
				binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
			}
			if _, err := w.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
		}
	}
	return n, nil
}

// wireReader decodes the codec stream through the shared scratch
// buffer, tracking the logical byte position both ReadFrom and
// DecodeFrom report. It owns the prologue (magic + entry count) and
// the entry-header field reads so the two decode paths cannot drift
// apart on format changes.
type wireReader struct {
	r       io.Reader
	scratch []byte
	n       int64
}

func (d *wireReader) full(b []byte) error {
	if _, err := io.ReadFull(d.r, b); err != nil {
		return err
	}
	d.n += int64(len(b))
	return nil
}

func (d *wireReader) u32(v *uint32) error {
	if err := d.full(d.scratch[:4]); err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint32(d.scratch[:4])
	return nil
}

// header consumes and validates the stream prologue — magic, the
// compressed format's quantization width, and the entry count —
// reporting which codec the stream carries: comp.Enabled() selects
// the CPQ1 sparse+quantized decode (codec.go), otherwise the stream
// is a dense CPS1 one.
func (d *wireReader) header() (comp Compression, count uint32, err error) {
	if err = d.full(d.scratch[:len(serializeMagic)]); err != nil {
		return comp, 0, fmt.Errorf("param: read magic: %w", err)
	}
	switch string(d.scratch[:len(serializeMagic)]) {
	case serializeMagic:
	case compressMagic:
		var bits byte
		if err = d.u8(&bits); err != nil {
			return comp, 0, fmt.Errorf("param: read quantization width: %w", err)
		}
		if bits != 8 && bits != 16 {
			return comp, 0, fmt.Errorf("param: unsupported quantization width %d", bits)
		}
		comp = Compression{Bits: int(bits)}
	default:
		return comp, 0, fmt.Errorf("param: bad magic %q", d.scratch[:len(serializeMagic)])
	}
	if err = d.u32(&count); err != nil {
		return comp, 0, fmt.Errorf("param: read entry count: %w", err)
	}
	return comp, count, nil
}

// entryHeader consumes one entry's name-length/name/rows/cols fields.
// The returned name is a view into scratch (parked past the u32 field
// window so the rows/cols reads cannot clobber it) and is only valid
// until the next read.
func (d *wireReader) entryHeader(i uint32) (name []byte, rows, cols uint32, err error) {
	var nameLen uint32
	if err = d.u32(&nameLen); err != nil {
		return nil, 0, 0, fmt.Errorf("param: entry %d name length: %w", i, err)
	}
	if nameLen > 4096 {
		return nil, 0, 0, fmt.Errorf("param: entry %d name too long (%d)", i, nameLen)
	}
	name = d.scratch[8 : 8+nameLen]
	if err = d.full(name); err != nil {
		return nil, 0, 0, fmt.Errorf("param: entry %d name: %w", i, err)
	}
	if err = d.u32(&rows); err != nil {
		return nil, 0, 0, err
	}
	if err = d.u32(&cols); err != nil {
		return nil, 0, 0, err
	}
	return name, rows, cols, nil
}

// ReadFrom deserializes a set previously produced by WriteTo or
// WriteCompressedTo (the codec is sniffed from the magic), replacing
// the receiver's contents. It implements io.ReaderFrom.
//
// ReadFrom is the untrusted-input entry point (checkpoint loading,
// fuzzing): malformed streams — bad magic, truncation, implausible
// shapes, duplicate entry names, NaN values, unsorted sparse indices —
// fail with an error, never a panic, and entry storage grows
// incrementally with the bytes that actually arrive (plus a bounded
// zero-fill budget for compressed sparse entries), so a header lying
// about its size cannot trigger a huge allocation. Delta-coded
// compressed entries are rejected: they only reconstruct against the
// encoder's reference, via DecodeFromRef.
func (s *Set) ReadFrom(r io.Reader) (int64, error) {
	sp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(sp)
	d := wireReader{r: bufio.NewReader(r), scratch: *sp}
	comp, count, err := d.header()
	if err != nil {
		return d.n, err
	}
	if count > 1<<20 {
		return d.n, fmt.Errorf("param: implausible entry count %d", count)
	}
	if comp.Enabled() {
		err := s.readCompressed(&d, comp, count)
		return d.n, err
	}
	out := New()
	for i := uint32(0); i < count; i++ {
		nameBytes, rows, cols, err := d.entryHeader(i)
		if err != nil {
			return d.n, err
		}
		name := string(nameBytes)
		if out.Has(name) {
			return d.n, fmt.Errorf("param: duplicate entry %q", name)
		}
		size := uint64(rows) * uint64(cols)
		if size > 1<<32 {
			return d.n, fmt.Errorf("param: entry %q implausible size %d", name, size)
		}
		data := make([]float64, 0, min(size, floatChunk))
		for uint64(len(data)) < size {
			c := int(min(size-uint64(len(data)), floatChunk))
			buf := d.scratch[:8*c]
			if err := d.full(buf); err != nil {
				return d.n, fmt.Errorf("param: entry %q data: %w", name, err)
			}
			if codecFastPath {
				// Bulk-copy the chunk into the grown tail and NaN-scan
				// the floats in place (the value check is the only
				// per-float work the untrusted path keeps).
				lo := len(data)
				data = slices.Grow(data, c)[:lo+c]
				copy(floatsAsBytes(data[lo:]), buf)
				for _, v := range data[lo:] {
					if math.IsNaN(v) {
						return d.n, fmt.Errorf("param: entry %q contains NaN", name)
					}
				}
				continue
			}
			for j := 0; j < c; j++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
				if math.IsNaN(v) {
					return d.n, fmt.Errorf("param: entry %q contains NaN", name)
				}
				data = append(data, v)
			}
		}
		out.Add(name, int(rows), int(cols), data)
	}
	*s = *out
	return d.n, nil
}

// DecodeFrom reads a stream produced by WriteTo into s's existing
// entries, requiring the incoming structure (entry names, shapes,
// registration order) to match s's exactly. Values are written
// directly into s's backing storage — sets that alias live model
// parameters are updated in place — which makes this the
// allocation-free receive path of the wire transport
// (internal/transport).
//
// On a structural mismatch or malformed input it returns an error; s's
// values are then partially overwritten and unspecified. Unlike
// ReadFrom, DecodeFrom does not reject NaN: the transport must be
// value-transparent and deliver whatever the sender's simulation
// produced — input validation belongs to the checkpoint-loading path.
//
// DecodeFrom also accepts compressed (CPQ1) streams, sniffed from the
// magic, as long as they carry no delta-coded entries; those need
// DecodeFromRef.
func (s *Set) DecodeFrom(r io.Reader) (int64, error) {
	return s.DecodeFromRef(r, nil)
}

// DecodeFromRef is DecodeFrom for streams that may be delta-coded:
// compressed (CPQ1) entries flagged as deltas reconstruct against
// ref's same-name entry — the transports pass the broadcast source the
// sending side encoded against. ref may be nil when the stream carries
// no deltas, and is ignored entirely for dense CPS1 streams.
func (s *Set) DecodeFromRef(r io.Reader, ref *Set) (int64, error) {
	sp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(sp)
	d := wireReader{r: r, scratch: *sp}
	comp, count, err := d.header()
	if err != nil {
		return d.n, err
	}
	if int(count) != len(s.entries) {
		return d.n, fmt.Errorf("param: decode entry count %d != receiver's %d", count, len(s.entries))
	}
	if comp.Enabled() {
		err := s.decodeCompressed(&d, comp, ref)
		return d.n, err
	}
	for i := range s.entries {
		e := &s.entries[i]
		name, rows, cols, err := d.entryHeader(uint32(i))
		if err != nil {
			return d.n, err
		}
		if string(name) != e.Name {
			return d.n, fmt.Errorf("param: entry %d name %q != receiver's %q", i, name, e.Name)
		}
		if int(rows) != e.Rows || int(cols) != e.Cols {
			return d.n, fmt.Errorf("param: entry %q shape %dx%d != receiver's %dx%d",
				e.Name, rows, cols, e.Rows, e.Cols)
		}
		if codecFastPath {
			// Zero-copy receive: the stream lands directly in the
			// entry's backing storage (live model parameters under the
			// wire transport) with no intermediate scratch chunking.
			if err := d.full(floatsAsBytes(e.Data)); err != nil {
				return d.n, fmt.Errorf("param: entry %q data: %w", e.Name, err)
			}
			continue
		}
		for lo := 0; lo < len(e.Data); lo += floatChunk {
			hi := min(lo+floatChunk, len(e.Data))
			buf := d.scratch[:8*(hi-lo)]
			if err := d.full(buf); err != nil {
				return d.n, fmt.Errorf("param: entry %q data: %w", e.Name, err)
			}
			for j := range hi - lo {
				e.Data[lo+j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
			}
		}
	}
	return d.n, nil
}

// WireBytes returns the serialized size of the set without writing it:
// the message-size accounting used by the protocols' traffic metrics.
func (s *Set) WireBytes() int {
	n := len(serializeMagic) + 4
	for _, e := range s.entries {
		n += 4 + len(e.Name) + 8 + 8*len(e.Data)
	}
	return n
}
