package param

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
)

// benchSet mirrors a bench-scale GMF parameter set (140 users, 260
// items, dim 8 plus the output vector).
func benchSet() *Set {
	r := rand.New(rand.NewPCG(1, 2))
	fill := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		return x
	}
	s := New()
	s.Add("user_emb", 140, 8, fill(140*8))
	s.Add("item_emb", 260, 8, fill(260*8))
	s.AddVector("h", fill(8))
	return s
}

// BenchmarkParamClone tracks the per-message payload cost: the seed's
// Clone-per-message baseline vs the recycled pipeline the simulators
// now use. allocs/op is the headline number.
func BenchmarkParamClone(b *testing.B) {
	src := benchSet()
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := src.Clone()
			_ = s
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var pool Buffers
		pool.Put(pool.Clone(src)) // warm the free-list
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := pool.Clone(src)
			pool.Put(s)
		}
	})
	b.Run("pooled-without", func(b *testing.B) {
		var pool Buffers
		pool.Put(pool.CloneWithout(src, "user_emb"))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := pool.CloneWithout(src, "user_emb")
			pool.Put(s)
		}
	})
	b.Run("cloneinto", func(b *testing.B) {
		dst := src.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = src.CloneInto(dst)
		}
	})
}

// paperSet mirrors a paper-scale GMF parameter set (~1000 users, 20k
// items, dim 16 ≈ 2.7 MB encoded) — the sizing where codec throughput,
// not per-message overhead, dominates the wire transport.
func paperSet() *Set {
	r := rand.New(rand.NewPCG(3, 4))
	fill := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		return x
	}
	s := New()
	s.Add("user_emb", 1000, 16, fill(1000*16))
	s.Add("item_emb", 20000, 16, fill(20000*16))
	s.AddVector("h", fill(16))
	s.AddVector("bias", fill(1))
	return s
}

// BenchmarkCodecThroughput prices the wire codec in MB/s (the B/s
// column) on a paper-scale payload, for the zero-copy little-endian
// fast path and the portable per-float fallback: encode (WriteTo into a
// warm buffer), trusted decode (DecodeFrom, the transport receive
// path), and untrusted decode (ReadFrom, checkpoint loading).
func BenchmarkCodecThroughput(b *testing.B) {
	src := paperSet()
	size := int64(src.WireBytes())
	var encoded bytes.Buffer
	if _, err := src.WriteTo(&encoded); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"portable", false}} {
		saved := codecFastPath
		codecFastPath = mode.fast
		b.Run(fmt.Sprintf("encode/%s", mode.name), func(b *testing.B) {
			var buf bytes.Buffer
			buf.Grow(int(size))
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := src.WriteTo(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decode/%s", mode.name), func(b *testing.B) {
			dst := src.Clone()
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dst.DecodeFrom(bytes.NewReader(encoded.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("readfrom/%s", mode.name), func(b *testing.B) {
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out Set
				if _, err := out.ReadFrom(bytes.NewReader(encoded.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
		codecFastPath = saved
	}
}
