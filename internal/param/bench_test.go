package param

import (
	"math/rand/v2"
	"testing"
)

// benchSet mirrors a bench-scale GMF parameter set (140 users, 260
// items, dim 8 plus the output vector).
func benchSet() *Set {
	r := rand.New(rand.NewPCG(1, 2))
	fill := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		return x
	}
	s := New()
	s.Add("user_emb", 140, 8, fill(140*8))
	s.Add("item_emb", 260, 8, fill(260*8))
	s.AddVector("h", fill(8))
	return s
}

// BenchmarkParamClone tracks the per-message payload cost: the seed's
// Clone-per-message baseline vs the recycled pipeline the simulators
// now use. allocs/op is the headline number.
func BenchmarkParamClone(b *testing.B) {
	src := benchSet()
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := src.Clone()
			_ = s
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var pool Buffers
		pool.Put(pool.Clone(src)) // warm the free-list
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := pool.Clone(src)
			pool.Put(s)
		}
	})
	b.Run("pooled-without", func(b *testing.B) {
		var pool Buffers
		pool.Put(pool.CloneWithout(src, "user_emb"))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := pool.CloneWithout(src, "user_emb")
			pool.Put(s)
		}
	})
	b.Run("cloneinto", func(b *testing.B) {
		dst := src.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = src.CloneInto(dst)
		}
	})
}
