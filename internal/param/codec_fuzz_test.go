package param

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// sparseCodecSeeds returns the hand-picked seed inputs mirrored in
// testdata/fuzz/FuzzSparseCodecDecode (go's fuzzer merges both; the
// -update flag of TestSparseCodecSeedCorpusInSync rewrites the
// committed copies): valid streams of both modes and widths, plus one
// specimen of every malformed-stream class the decoder must reject
// without panicking.
func sparseCodecSeeds() []struct {
	name string
	data []byte
} {
	encode := func(c Compression, build func(s *Set)) []byte {
		s := New()
		build(s)
		var buf bytes.Buffer
		if _, err := s.WriteCompressedTo(&buf, c, nil); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	dense8 := encode(Compression{Bits: 8}, func(s *Set) {
		s.Add("emb", 3, 4, []float64{1.5, -2, 0.25, 4.25, 1e-3, 0.5, -0.5, 2, 3, 4, 5, 6})
		s.AddVector("bias", []float64{0.25, -0.75})
	})
	sparse16 := encode(Compression{Bits: 16}, func(s *Set) {
		d := make([]float64, 64)
		d[3], d[17], d[41] = 0.5, -1.25, 2e-2
		s.Add("delta", 8, 8, d)
	})
	empty := encode(Compression{Bits: 8}, func(s *Set) {})
	// A sparse entry header: u32 nnz=2 | lo=-1 | hi=1 | 2 (u32 idx, u8
	// level) pairs — reused below with broken index orders.
	sparsePair := func(i0, i1 uint32) []byte {
		var b bytes.Buffer
		b.WriteString("CPQ1")
		b.WriteByte(8)
		b.Write([]byte{1, 0, 0, 0}) // one entry
		b.Write([]byte{1, 0, 0, 0}) // nameLen 1
		b.WriteByte('d')
		b.Write([]byte{8, 0, 0, 0}) // rows 8
		b.Write([]byte{1, 0, 0, 0}) // cols 1
		b.WriteByte(1)              // flags: sparse
		b.Write([]byte{2, 0, 0, 0}) // nnz 2
		binary.Write(&b, binary.LittleEndian, float64(-1))
		binary.Write(&b, binary.LittleEndian, float64(1))
		binary.Write(&b, binary.LittleEndian, i0)
		b.WriteByte(10)
		binary.Write(&b, binary.LittleEndian, i1)
		b.WriteByte(200)
		return b.Bytes()
	}
	deltaFlagged := append([]byte(nil), dense8...)
	// Flip the first entry's flags byte (right after the 12-byte entry
	// header following the 9-byte prologue + 3-byte name) to delta.
	deltaFlagged[9+12+3] |= flagDelta
	return []struct {
		name string
		data []byte
	}{
		{"valid-dense-8bit", dense8},
		{"valid-sparse-16bit", sparse16},
		{"valid-empty-set", empty},
		{"truncated", dense8[:len(dense8)/2]},
		{"unsorted-indices", sparsePair(5, 2)},
		{"duplicate-indices", sparsePair(3, 3)},
		{"index-out-of-range", sparsePair(3, 9)},
		{"delta-without-reference", deltaFlagged},
		{"bad-bit-width", []byte("CPQ1\x07")},
		{"huge-count", []byte("CPQ1\x08\xff\xff\xff\xff")},
		// One sparse entry claiming a 2^16 × 2^15 dense shape with a
		// 2-value payload: the expansion budget must refuse it cheaply.
		{"sparse-bomb-claim",
			append([]byte("CPQ1\x08\x01\x00\x00\x00\x01\x00\x00\x00m\x00\x00\x01\x00\x00\x80\x00\x00\x01\x02\x00\x00\x00"),
				make([]byte, 26)...)},
	}
}

// TestSparseCodecSeedCorpusInSync pins the committed seed corpus to
// sparseCodecSeeds: every seed must sit under testdata/fuzz in go's
// corpus-file format, byte-identical. Run with -update to rewrite the
// files after changing the seed list.
func TestSparseCodecSeedCorpusInSync(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSparseCodecDecode")
	if *updateCorpus {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, seed := range sparseCodecSeeds() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed.data)
			if err := os.WriteFile(filepath.Join(dir, "seed-"+seed.name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, seed := range sparseCodecSeeds() {
		raw, err := os.ReadFile(filepath.Join(dir, "seed-"+seed.name))
		if err != nil {
			t.Fatalf("missing corpus file (run with -update to regenerate): %v", err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("seed-%s: not a go corpus file", seed.name)
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		got, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("seed-%s: unquote: %v", seed.name, err)
		}
		if !bytes.Equal([]byte(got), seed.data) {
			t.Errorf("seed-%s drifted from sparseCodecSeeds (run with -update)", seed.name)
		}
	}
}

var updateCorpus = flag.Bool("update", false, "rewrite the FuzzSparseCodecDecode seed corpus from sparseCodecSeeds")

// FuzzSparseCodecDecode fuzzes the compressed (CPQ1) decode path:
//
//   - any input either parses or fails with an error — never a panic,
//     and never an allocation proportional to a lying length claim;
//   - the reported byte count never exceeds the input length;
//   - a successful parse re-encodes: the decoded set is finite by
//     construction, so WriteCompressedTo at the stream's bit width
//     must succeed, and never produce more bytes than the consumed
//     prefix (the encoder picks the smaller payload form per entry);
//   - the transport's in-place decode (DecodeFrom on a receiver with
//     the parsed structure) accepts everything ReadFrom accepts and
//     produces the same values.
func FuzzSparseCodecDecode(f *testing.F) {
	for _, seed := range sparseCodecSeeds() {
		f.Add(seed.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if !bytes.HasPrefix(data, []byte(compressMagic)) {
			// Dense CPS1 space is FuzzParamSetReadFrom's.
			return
		}
		s := New()
		n, err := s.ReadFrom(bytes.NewReader(data))
		if n > int64(len(data)) {
			t.Fatalf("ReadFrom reported %d bytes from a %d-byte input", n, len(data))
		}
		if err != nil {
			return
		}
		c := Compression{Bits: int(data[4])}
		var re bytes.Buffer
		rn, err := s.WriteCompressedTo(&re, c, nil)
		if err != nil {
			t.Fatalf("re-encode of parsed set failed: %v", err)
		}
		if rn > n {
			t.Fatalf("re-encode grew the stream: %d bytes from a %d-byte parsed prefix", rn, n)
		}
		redec := New()
		if _, err := redec.ReadFrom(bytes.NewReader(re.Bytes())); err != nil {
			t.Fatalf("decode of canonical re-encoding failed: %v", err)
		}
		dst := s.Clone()
		for i := 0; i < dst.Len(); i++ {
			d := dst.At(i).Data
			for j := range d {
				d[j] = 7 // scrub so agreement is not vacuous
			}
		}
		dn, err := dst.DecodeFrom(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("DecodeFrom rejected a ReadFrom-accepted stream: %v", err)
		}
		if dn != n {
			t.Fatalf("DecodeFrom consumed %d bytes, ReadFrom %d", dn, n)
		}
		if !Equal(s, dst, 0) {
			t.Fatal("DecodeFrom and ReadFrom disagree on values")
		}
	})
}

// A sparse entry's dense size is claimed by its header, not carried as
// bytes, so a ~50-byte stream could demand gigabytes of zero-fill.
// The untrusted decode path must refuse such claims after allocating
// storage proportional to the bytes that actually arrived.
func TestCompressedSparseBombRejected(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("CPQ1")
	in.WriteByte(8)
	in.Write([]byte{1, 0, 0, 0})   // one entry
	in.Write([]byte{1, 0, 0, 0})   // nameLen 1
	in.WriteByte('m')              //
	in.Write([]byte{0, 0, 1, 0})   // rows = 65536
	in.Write([]byte{0, 128, 0, 0}) // cols = 32768 → 2^31 zeros claimed
	in.WriteByte(1)                // flags: sparse
	in.Write([]byte{2, 0, 0, 0})   // nnz 2
	binary.Write(&in, binary.LittleEndian, float64(-1))
	binary.Write(&in, binary.LittleEndian, float64(1))
	in.Write(make([]byte, 10)) // the two (idx, level) pairs
	data := in.Bytes()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out := New()
	_, err := out.ReadFrom(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("sparse expansion beyond the stream budget must fail")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("ReadFrom allocated %d bytes for a %d-byte input", grew, len(data))
	}
}

// Levels of a valid stream always reconstruct finite values: the range
// header is capped at ±1e300, so a decoded set can be re-encoded. A
// range whose ends are finite but whose span overflows must be caught
// by the cap, not produce ±Inf coordinates.
func TestCompressedRangeBeyondCapRejected(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{-math.MaxFloat64, math.MaxFloat64},
		{0, math.Inf(1)},
		{math.NaN(), 1},
		{1, -1}, // lo > hi
	} {
		var in bytes.Buffer
		in.WriteString("CPQ1")
		in.WriteByte(8)
		in.Write([]byte{1, 0, 0, 0}) // one entry
		in.Write([]byte{1, 0, 0, 0}) // nameLen 1
		in.WriteByte('v')
		in.Write([]byte{2, 0, 0, 0}) // rows 2
		in.Write([]byte{1, 0, 0, 0}) // cols 1
		in.WriteByte(0)              // flags: dense
		binary.Write(&in, binary.LittleEndian, tc.lo)
		binary.Write(&in, binary.LittleEndian, tc.hi)
		in.Write([]byte{0, 255})
		out := New()
		if _, err := out.ReadFrom(bytes.NewReader(in.Bytes())); err == nil {
			t.Errorf("range [%g, %g] must be rejected", tc.lo, tc.hi)
		}
	}
}
