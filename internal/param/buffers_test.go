package param

import (
	"sync"
	"testing"
)

func testSet(fill float64) *Set {
	s := New()
	a := make([]float64, 6)
	b := make([]float64, 4)
	for i := range a {
		a[i] = fill + float64(i)
	}
	for i := range b {
		b[i] = -fill - float64(i)
	}
	s.Add("item_emb", 3, 2, a)
	s.AddVector("h", b)
	return s
}

func TestSameShape(t *testing.T) {
	a, b := testSet(1), testSet(9)
	if !SameShape(a, b) {
		t.Fatal("identical structures reported different")
	}
	c := New()
	c.Add("item_emb", 2, 3, make([]float64, 6)) // same size, different shape
	c.AddVector("h", make([]float64, 4))
	if SameShape(a, c) {
		t.Fatal("different shapes reported same")
	}
	if SameShape(a, New()) {
		t.Fatal("empty set reported same as non-empty")
	}
}

func TestCloneIntoReusesStorage(t *testing.T) {
	src := testSet(1)
	dst := testSet(100)
	before := dst.Get("item_emb")
	got := src.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto allocated despite matching shape")
	}
	if &before[0] != &got.Get("item_emb")[0] {
		t.Fatal("CloneInto replaced backing storage")
	}
	if !Equal(src, got, 0) {
		t.Fatal("CloneInto values differ from source")
	}
	// Mismatched or nil destination falls back to a fresh clone.
	if fresh := src.CloneInto(nil); !Equal(src, fresh, 0) {
		t.Fatal("CloneInto(nil) not a clone")
	}
	other := New()
	other.AddVector("h", make([]float64, 4))
	if fresh := src.CloneInto(other); fresh == other || !Equal(src, fresh, 0) {
		t.Fatal("CloneInto with mismatched shape must allocate a clone")
	}
}

func TestBuffersCloneRecycles(t *testing.T) {
	var b Buffers
	src := testSet(1)
	first := b.Clone(src)
	if !Equal(src, first, 0) {
		t.Fatal("pooled clone differs from source")
	}
	addr := &first.Get("item_emb")[0]
	b.Put(first)
	src2 := testSet(7)
	second := b.Clone(src2)
	if !Equal(src2, second, 0) {
		t.Fatal("recycled clone differs from source")
	}
	// sync.Pool randomizes reuse under the race detector, so only
	// assert storage identity in regular builds.
	if !raceEnabled && &second.Get("item_emb")[0] != addr {
		t.Fatal("second clone did not reuse recycled storage")
	}
}

func TestBuffersDoesNotMixShapes(t *testing.T) {
	var b Buffers
	full := testSet(1)
	b.Put(b.Clone(full))
	partial := New()
	partial.AddVector("h", []float64{1, 2, 3, 4})
	got := b.Clone(partial)
	if got.Len() != 1 || !got.Has("h") || got.Has("item_emb") {
		t.Fatalf("clone of partial set has wrong structure: %v", got)
	}
	if !Equal(partial, got, 0) {
		t.Fatal("partial clone values differ")
	}
}

func TestBuffersCloneWithout(t *testing.T) {
	var b Buffers
	src := testSet(3)
	first := b.CloneWithout(src, "item_emb")
	if first.Has("item_emb") || !first.Has("h") {
		t.Fatalf("CloneWithout kept dropped entry: %v", first)
	}
	for i, v := range first.Get("h") {
		if v != src.Get("h")[i] {
			t.Fatal("CloneWithout values differ")
		}
	}
	addr := &first.Get("h")[0]
	b.Put(first)
	src2 := testSet(11)
	second := b.CloneWithout(src2, "item_emb")
	if !raceEnabled && &second.Get("h")[0] != addr {
		t.Fatal("filtered clone did not reuse recycled storage")
	}
	for i, v := range second.Get("h") {
		if v != src2.Get("h")[i] {
			t.Fatal("recycled filtered clone values differ")
		}
	}
	// The filtered structure must not satisfy a full-structure request.
	if got := b.Clone(src); !SameShape(got, src) {
		t.Fatal("full clone received filtered structure")
	}
}

func TestNilBuffersFallBack(t *testing.T) {
	var b *Buffers
	src := testSet(2)
	if got := b.Clone(src); !Equal(src, got, 0) {
		t.Fatal("nil Buffers Clone broken")
	}
	if got := b.CloneWithout(src, "item_emb"); got.Has("item_emb") {
		t.Fatal("nil Buffers CloneWithout broken")
	}
	b.Put(src) // must not panic
}

// The pool is shared by all workers of a simulation; hammer it from
// several goroutines to give the race detector something to chew on.
func TestBuffersConcurrent(t *testing.T) {
	var b Buffers
	src := testSet(5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := b.Clone(src)
				if len(c.Get("item_emb")) != 6 {
					panic("bad clone")
				}
				p := b.CloneWithout(src, "item_emb")
				b.Put(c, p)
			}
		}(w)
	}
	wg.Wait()
}
