package param

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
)

// Lossy wire compression for parameter sets: sparse-index encoding of
// mostly-zero payloads (sorted u32 coordinates + values) combined with
// 8- or 16-bit linear quantization. It is the transport-level
// counterpart of the defense layer's top-k sparsification
// (internal/defense): a sparsified delta that the policy re-densified
// goes back on the wire as indices and quantized values instead of a
// full dense float64 image.
//
// Format (little-endian):
//
//	magic "CPQ1" | uint8 bits | uint32 numEntries | entries...
//	entry: uint32 nameLen | name | uint32 rows | uint32 cols | uint8 flags
//	  flags bit0: sparse — payload stores only nonzero coordinates
//	  flags bit1: delta  — values are offsets against a reference set
//	               the decoder must supply (DecodeFromRef)
//	dense payload:  float64 lo | float64 hi | n × level
//	sparse payload: uint32 nnz | float64 lo | float64 hi |
//	                nnz × (uint32 index | level)
//
// A level is a uint8 or uint16 (per the prologue's bits field) on the
// uniform grid between lo and hi; sparse indices are strictly
// ascending row-major coordinates. The encoder picks the smaller of
// the two payload forms per entry, so the format degrades gracefully:
// dense-ish payloads cost n·bits/8 bytes, sparse ones nnz·(4+bits/8).
//
// Decoders accept both this format and the dense CPS1 format of
// serialize.go by sniffing the 4-byte magic, which is what lets one
// transport seam negotiate compression per payload.
const compressMagic = "CPQ1"

const (
	flagSparse byte = 1 << 0
	flagDelta  byte = 1 << 1
)

// codecRangeLimit bounds the values (after delta subtraction) the
// compressed codec accepts: keeping lo/hi within ±1e300 guarantees
// every reconstructed grid point is finite, so a decoded set can
// always be re-encoded. A recommender simulation that leaves this
// range has diverged long before compression is its problem.
const codecRangeLimit = 1e300

// sparseExpandBudget caps how many coordinates the untrusted decode
// path (ReadFrom) will materialize for sparse entries across one
// stream: a sparse entry's dense size is claimed by its header, not
// carried as bytes, so without a cap a ~40-byte stream could demand
// gigabytes of zero-fill. 2^22 float64s = 32 MiB. The transport's
// in-place DecodeFromRef path has no such cap — its storage exists
// before any byte is read.
const sparseExpandBudget = 1 << 22

// Compression selects the lossy wire codec. The zero value disables
// compression: payloads travel as dense float64 CPS1 streams and the
// transport stays value-transparent (the tolerance-0 golden
// reference). Bits 8 or 16 enable CPQ1 sparse+quantized encoding.
//
// Error contract: with span = hi − lo the quantization range of an
// entry (its value range, or its delta range when a reference is in
// play), every reconstructed coordinate v' of an original value v
// satisfies |v' − v| ≤ MaxError(span) — up to ordinary float64
// rounding of the reconstruction arithmetic, and provided the grid is
// not degenerate (span not many orders of magnitude below the values'
// magnitude, where float64 itself cannot tell grid points apart).
// Coordinates the sparse form leaves unstored are exact: zero, or the
// reference value under delta coding. The bound is tested in
// codec_test.go.
type Compression struct {
	// Bits is the quantization width per stored coordinate: 0 disables
	// compression, 8 and 16 select the CPQ1 level width.
	Bits int
}

// Enabled reports whether the lossy codec is selected.
func (c Compression) Enabled() bool { return c.Bits != 0 }

// Validate rejects widths the codec does not implement.
func (c Compression) Validate() error {
	switch c.Bits {
	case 0, 8, 16:
		return nil
	}
	return fmt.Errorf("param: unsupported compression %d (want off, 8 or 16 bits)", c.Bits)
}

// String renders the knob the way ParseCompression reads it.
func (c Compression) String() string {
	if !c.Enabled() {
		return "off"
	}
	return fmt.Sprintf("%dbit", c.Bits)
}

// ParseCompression reads a compression spec: "off" (or "", "none")
// disables, "8bit"/"8" and "16bit"/"16" select the width.
func ParseCompression(s string) (Compression, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "none", "0":
		return Compression{}, nil
	case "8", "8bit":
		return Compression{Bits: 8}, nil
	case "16", "16bit":
		return Compression{Bits: 16}, nil
	}
	return Compression{}, fmt.Errorf("param: unknown compression %q (want off, 8bit or 16bit)", s)
}

// MaxError returns the documented per-coordinate reconstruction error
// bound for a quantization span of hi−lo = span: half a grid step for
// dense coordinates, plus up to one more step for the sparse form's
// zero-avoidance nudge (see quantizer.levelNonzero).
func (c Compression) MaxError(span float64) float64 {
	if !c.Enabled() {
		return 0
	}
	return 1.5 * span / float64(int(1)<<c.Bits-1)
}

// levelBytes is the stored size of one quantized level.
func (c Compression) levelBytes() int { return c.Bits / 8 }

// quantizer maps values in [lo, hi] onto 2^bits uniformly spaced
// levels and back. Levels 0 and max reconstruct exactly lo and hi, so
// the extremes of a payload survive the codec bit-for-bit and a
// decoded set re-encodes onto the identical grid.
type quantizer struct {
	lo, hi, step float64
	max          int
}

func newQuantizer(c Compression, lo, hi float64) quantizer {
	m := int(1)<<c.Bits - 1
	return quantizer{lo: lo, hi: hi, step: (hi - lo) / float64(m), max: m}
}

// value reconstructs a level.
func (q quantizer) value(l int) float64 {
	switch l {
	case 0:
		return q.lo
	case q.max:
		return q.hi
	}
	return q.lo + float64(l)*q.step
}

// level returns the canonical level for v: the level whose
// reconstruction is nearest to v, lowest level on ties. The ±1
// neighbor probe after the arithmetic guess makes grid points
// quantize back to themselves even when (v−lo)/step cannot be
// evaluated exactly — which is what makes encode∘decode∘encode
// byte-stable.
func (q quantizer) level(v float64) int {
	if q.step <= 0 {
		return 0
	}
	f := math.Round((v - q.lo) / q.step)
	var l int
	switch {
	case f < 0:
		l = 0
	case f > float64(q.max):
		l = q.max
	default:
		l = int(f)
	}
	best, bd := l, math.Abs(v-q.value(l))
	for _, cand := range [2]int{l - 1, l + 1} {
		if cand < 0 || cand > q.max {
			continue
		}
		if d := math.Abs(v - q.value(cand)); d < bd || (d == bd && cand < best) {
			best, bd = cand, d
		}
	}
	return best
}

// levelNonzero is level for sparse-entry coordinates, which are
// nonzero by selection and must stay nonzero through the codec: a
// stored level reconstructing exactly 0.0 would be dropped from the
// index set on re-encode. Such a level is nudged to the nearest level
// with a nonzero reconstruction — one always exists, because lo and
// hi are themselves stored nonzero values.
func (q quantizer) levelNonzero(v float64) int {
	l := q.level(v)
	if q.value(l) != 0 {
		return l
	}
	for off := 1; ; off++ {
		if u := l + off; u <= q.max && q.value(u) != 0 {
			return u
		}
		if d := l - off; d >= 0 && q.value(d) != 0 {
			return d
		}
	}
}

// WriteCompressedTo serializes the set with the lossy CPQ1 codec.
// When ref is non-nil, entries with a same-name same-shape entry in
// ref are delta-coded against it — the transports pass the round's
// broadcast source here, so an upload that diverges from the global
// model in few coordinates encodes as a genuinely sparse delta. The
// resulting stream decodes through DecodeFromRef with the same ref
// (delta-free streams also through ReadFrom/DecodeFrom).
//
// All values (after delta subtraction) must be finite and within
// ±1e300; see Compression for the reconstruction-error contract.
func (s *Set) WriteCompressedTo(w io.Writer, c Compression, ref *Set) (int64, error) {
	type buffered interface {
		io.Writer
		io.ByteWriter
	}
	if bw, ok := w.(buffered); ok {
		return s.encodeCompressed(bw, c, ref)
	}
	bw := bufio.NewWriter(w)
	n, err := s.encodeCompressed(bw, c, ref)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

func (s *Set) encodeCompressed(w io.Writer, c Compression, ref *Set) (int64, error) {
	if c.Bits != 8 && c.Bits != 16 {
		return 0, fmt.Errorf("param: unsupported compression %d (want 8 or 16 bits)", c.Bits)
	}
	sp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(sp)
	scratch := *sp
	lb := c.levelBytes()
	var n int64
	write := func(b []byte) error {
		if _, err := w.Write(b); err != nil {
			return err
		}
		n += int64(len(b))
		return nil
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		return write(scratch[:4])
	}
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		return write(scratch[:8])
	}
	putLevel := func(b []byte, l int) {
		if lb == 1 {
			b[0] = byte(l)
			return
		}
		binary.LittleEndian.PutUint16(b, uint16(l))
	}
	if _, err := io.WriteString(w, compressMagic); err != nil {
		return n, err
	}
	n += int64(len(compressMagic))
	scratch[0] = byte(c.Bits)
	if err := write(scratch[:1]); err != nil {
		return n, err
	}
	if err := writeU32(uint32(len(s.entries))); err != nil {
		return n, err
	}
	for i := range s.entries {
		e := &s.entries[i]
		var refData []float64
		if ref != nil {
			if ri, ok := ref.index[e.Name]; ok {
				if re := &ref.entries[ri]; re.Rows == e.Rows && re.Cols == e.Cols {
					refData = re.Data
				}
			}
		}
		// First pass: value range and sparsity of the (delta) payload.
		var nnz int
		loAll, hiAll := math.Inf(1), math.Inf(-1)
		loNZ, hiNZ := math.Inf(1), math.Inf(-1)
		for j, v := range e.Data {
			if refData != nil {
				v -= refData[j]
			}
			if math.IsNaN(v) || v < -codecRangeLimit || v > codecRangeLimit {
				return n, fmt.Errorf("param: entry %q: value %g at %d outside the codec's ±%g range",
					e.Name, v, j, float64(codecRangeLimit))
			}
			loAll = math.Min(loAll, v)
			hiAll = math.Max(hiAll, v)
			if v != 0 {
				nnz++
				loNZ = math.Min(loNZ, v)
				hiNZ = math.Max(hiNZ, v)
			}
		}
		if len(e.Data) == 0 {
			loAll, hiAll = 0, 0
		}
		if nnz == 0 {
			loNZ, hiNZ = 0, 0
		}
		sparse := 20+nnz*(4+lb) < 16+len(e.Data)*lb
		flags := byte(0)
		if sparse {
			flags |= flagSparse
		}
		if refData != nil {
			flags |= flagDelta
		}
		if err := writeU32(uint32(len(e.Name))); err != nil {
			return n, err
		}
		if _, err := io.WriteString(w, e.Name); err != nil {
			return n, err
		}
		n += int64(len(e.Name))
		if err := writeU32(uint32(e.Rows)); err != nil {
			return n, err
		}
		if err := writeU32(uint32(e.Cols)); err != nil {
			return n, err
		}
		scratch[0] = flags
		if err := write(scratch[:1]); err != nil {
			return n, err
		}
		if sparse {
			if err := writeU32(uint32(nnz)); err != nil {
				return n, err
			}
			if err := writeF64(loNZ); err != nil {
				return n, err
			}
			if err := writeF64(hiNZ); err != nil {
				return n, err
			}
			q := newQuantizer(c, loNZ, hiNZ)
			pair := 4 + lb
			k := 0
			for j, v := range e.Data {
				if refData != nil {
					v -= refData[j]
				}
				if v == 0 {
					continue
				}
				binary.LittleEndian.PutUint32(scratch[k:], uint32(j))
				putLevel(scratch[k+4:], q.levelNonzero(v))
				if k += pair; k+pair > len(scratch) {
					if err := write(scratch[:k]); err != nil {
						return n, err
					}
					k = 0
				}
			}
			if k > 0 {
				if err := write(scratch[:k]); err != nil {
					return n, err
				}
			}
		} else {
			if err := writeF64(loAll); err != nil {
				return n, err
			}
			if err := writeF64(hiAll); err != nil {
				return n, err
			}
			q := newQuantizer(c, loAll, hiAll)
			k := 0
			for j, v := range e.Data {
				if refData != nil {
					v -= refData[j]
				}
				putLevel(scratch[k:], q.level(v))
				if k += lb; k+lb > len(scratch) {
					if err := write(scratch[:k]); err != nil {
						return n, err
					}
					k = 0
				}
			}
			if k > 0 {
				if err := write(scratch[:k]); err != nil {
					return n, err
				}
			}
		}
	}
	return n, nil
}

func (d *wireReader) u8(v *byte) error {
	if err := d.full(d.scratch[:1]); err != nil {
		return err
	}
	*v = d.scratch[0]
	return nil
}

func (d *wireReader) f64(v *float64) error {
	if err := d.full(d.scratch[:8]); err != nil {
		return err
	}
	*v = math.Float64frombits(binary.LittleEndian.Uint64(d.scratch[:8]))
	return nil
}

// quantRange reads and validates one entry's lo/hi quantization range.
// The ±1e300 limit mirrors the encoder's, so every level of a valid
// stream reconstructs to a finite value.
func (d *wireReader) quantRange(c Compression) (quantizer, error) {
	var lo, hi float64
	if err := d.f64(&lo); err != nil {
		return quantizer{}, fmt.Errorf("quantization range: %w", err)
	}
	if err := d.f64(&hi); err != nil {
		return quantizer{}, fmt.Errorf("quantization range: %w", err)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi ||
		lo < -codecRangeLimit || hi > codecRangeLimit {
		return quantizer{}, fmt.Errorf("invalid quantization range [%g, %g]", lo, hi)
	}
	return newQuantizer(c, lo, hi), nil
}

// levelAt reads one stored level.
func levelAt(b []byte, lb int) int {
	if lb == 1 {
		return int(b[0])
	}
	return int(binary.LittleEndian.Uint16(b))
}

// sparseBody walks a sparse entry payload — nnz (index, level) pairs —
// calling fn with each reconstructed coordinate in ascending index
// order. Indices must be strictly ascending and below size; the pairs
// stream through scratch, so a lying nnz costs no allocation.
func (d *wireReader) sparseBody(q quantizer, c Compression, size uint64, nnz uint32, fn func(idx int, v float64)) error {
	lb := c.levelBytes()
	pair := 4 + lb
	perChunk := len(d.scratch) / pair
	prev := -1
	for read := 0; read < int(nnz); {
		cn := min(int(nnz)-read, perChunk)
		buf := d.scratch[:pair*cn]
		if err := d.full(buf); err != nil {
			return err
		}
		for j := 0; j < cn; j++ {
			off := pair * j
			idx := int(binary.LittleEndian.Uint32(buf[off:]))
			if idx <= prev {
				return fmt.Errorf("sparse index %d after %d (want strictly ascending)", idx, prev)
			}
			if uint64(idx) >= size {
				return fmt.Errorf("sparse index %d out of range (size %d)", idx, size)
			}
			prev = idx
			fn(idx, q.value(levelAt(buf[off+4:], lb)))
		}
		read += cn
	}
	return nil
}

// denseBody walks a dense-quantized entry payload of size levels,
// calling fn with each reconstructed coordinate in order.
func (d *wireReader) denseBody(q quantizer, c Compression, size uint64, fn func(idx int, v float64)) error {
	lb := c.levelBytes()
	perChunk := len(d.scratch) / lb
	for done := 0; uint64(done) < size; {
		cn := min(int(size-uint64(done)), perChunk)
		buf := d.scratch[:lb*cn]
		if err := d.full(buf); err != nil {
			return err
		}
		for j := 0; j < cn; j++ {
			fn(done+j, q.value(levelAt(buf[lb*j:], lb)))
		}
		done += cn
	}
	return nil
}

// readCompressed is ReadFrom's CPQ1 tail: the untrusted allocating
// decode, entered after the prologue has been consumed. Delta-coded
// entries are rejected — without the encoder's reference there is
// nothing sound to reconstruct; the transports decode deltas in place
// via DecodeFromRef.
func (s *Set) readCompressed(d *wireReader, c Compression, count uint32) error {
	out := New()
	budget := int64(sparseExpandBudget)
	for i := uint32(0); i < count; i++ {
		nameBytes, rows, cols, err := d.entryHeader(i)
		if err != nil {
			return err
		}
		name := string(nameBytes)
		if out.Has(name) {
			return fmt.Errorf("param: duplicate entry %q", name)
		}
		size := uint64(rows) * uint64(cols)
		if size > 1<<32 {
			return fmt.Errorf("param: entry %q implausible size %d", name, size)
		}
		var flags byte
		if err := d.u8(&flags); err != nil {
			return fmt.Errorf("param: entry %q flags: %w", name, err)
		}
		if flags&^(flagSparse|flagDelta) != 0 {
			return fmt.Errorf("param: entry %q unknown flags %#x", name, flags)
		}
		if flags&flagDelta != 0 {
			return fmt.Errorf("param: entry %q is delta-coded and only decodes against a reference (DecodeFromRef)", name)
		}
		if flags&flagSparse != 0 {
			var nnz uint32
			if err := d.u32(&nnz); err != nil {
				return fmt.Errorf("param: entry %q sparse count: %w", name, err)
			}
			if uint64(nnz) > size {
				return fmt.Errorf("param: entry %q sparse count %d exceeds size %d", name, nnz, size)
			}
			q, err := d.quantRange(c)
			if err != nil {
				return fmt.Errorf("param: entry %q %w", name, err)
			}
			if int64(size) > budget {
				return fmt.Errorf("param: entry %q sparse expansion %d exceeds the stream budget (%d values)",
					name, size, int64(sparseExpandBudget))
			}
			budget -= int64(size)
			data := make([]float64, size)
			if err := d.sparseBody(q, c, size, nnz, func(idx int, v float64) { data[idx] = v }); err != nil {
				return fmt.Errorf("param: entry %q: %w", name, err)
			}
			out.Add(name, int(rows), int(cols), data)
		} else {
			q, err := d.quantRange(c)
			if err != nil {
				return fmt.Errorf("param: entry %q %w", name, err)
			}
			data := make([]float64, 0, min(size, floatChunk))
			if err := d.denseBody(q, c, size, func(_ int, v float64) { data = append(data, v) }); err != nil {
				return fmt.Errorf("param: entry %q data: %w", name, err)
			}
			out.Add(name, int(rows), int(cols), data)
		}
	}
	*s = *out
	return nil
}

// decodeCompressed is DecodeFromRef's CPQ1 tail: the in-place
// structure-matched decode of the transport receive path, entered
// after the prologue has been consumed. Delta-coded entries
// reconstruct against ref, which must carry a same-name same-shape
// entry (the transports pass the broadcast source the encoder used).
func (s *Set) decodeCompressed(d *wireReader, c Compression, ref *Set) error {
	for i := range s.entries {
		e := &s.entries[i]
		name, rows, cols, err := d.entryHeader(uint32(i))
		if err != nil {
			return err
		}
		if string(name) != e.Name {
			return fmt.Errorf("param: entry %d name %q != receiver's %q", i, name, e.Name)
		}
		if int(rows) != e.Rows || int(cols) != e.Cols {
			return fmt.Errorf("param: entry %q shape %dx%d != receiver's %dx%d",
				e.Name, rows, cols, e.Rows, e.Cols)
		}
		var flags byte
		if err := d.u8(&flags); err != nil {
			return fmt.Errorf("param: entry %q flags: %w", e.Name, err)
		}
		if flags&^(flagSparse|flagDelta) != 0 {
			return fmt.Errorf("param: entry %q unknown flags %#x", e.Name, flags)
		}
		var refData []float64
		if flags&flagDelta != 0 {
			var re *Entry
			if ref != nil {
				if ri, ok := ref.index[e.Name]; ok {
					re = &ref.entries[ri]
				}
			}
			if re == nil || re.Rows != e.Rows || re.Cols != e.Cols {
				return fmt.Errorf("param: entry %q is delta-coded but the reference set has no matching entry", e.Name)
			}
			refData = re.Data
		}
		size := uint64(len(e.Data))
		if flags&flagSparse != 0 {
			var nnz uint32
			if err := d.u32(&nnz); err != nil {
				return fmt.Errorf("param: entry %q sparse count: %w", e.Name, err)
			}
			if uint64(nnz) > size {
				return fmt.Errorf("param: entry %q sparse count %d exceeds size %d", e.Name, nnz, size)
			}
			q, err := d.quantRange(c)
			if err != nil {
				return fmt.Errorf("param: entry %q %w", e.Name, err)
			}
			// Unstored coordinates are exact: the reference value under
			// delta coding, zero otherwise.
			if refData != nil {
				copy(e.Data, refData)
			} else {
				clear(e.Data)
			}
			if err := d.sparseBody(q, c, size, nnz, func(idx int, v float64) { e.Data[idx] += v }); err != nil {
				return fmt.Errorf("param: entry %q: %w", e.Name, err)
			}
		} else {
			q, err := d.quantRange(c)
			if err != nil {
				return fmt.Errorf("param: entry %q %w", e.Name, err)
			}
			fn := func(idx int, v float64) { e.Data[idx] = v }
			if refData != nil {
				fn = func(idx int, v float64) { e.Data[idx] = refData[idx] + v }
			}
			if err := d.denseBody(q, c, size, fn); err != nil {
				return fmt.Errorf("param: entry %q data: %w", e.Name, err)
			}
		}
	}
	return nil
}
