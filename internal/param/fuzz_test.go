package param

import (
	"bytes"
	"runtime"
	"testing"
)

// fuzzSeeds returns the hand-picked seed inputs mirrored in
// testdata/fuzz/FuzzParamSetReadFrom (go's fuzzer merges both).
func fuzzSeeds() [][]byte {
	var valid bytes.Buffer
	s := New()
	s.Add("user_emb", 3, 4, []float64{1.5, -2, 0, 4.25, 1e-9, 6e12, -0.5, 2, 3, 4, 5, 6})
	s.AddVector("bias", []float64{0.25, -0.75})
	if _, err := s.WriteTo(&valid); err != nil {
		panic(err)
	}
	var empty bytes.Buffer
	if _, err := New().WriteTo(&empty); err != nil {
		panic(err)
	}
	return [][]byte{
		valid.Bytes(),
		empty.Bytes(),
		valid.Bytes()[:len(valid.Bytes())/2],           // truncated mid-data
		[]byte("XXXX\x00\x00\x00\x00"),                 // bad magic
		[]byte("CPS1\xff\xff\xff\xff"),                 // implausible entry count
		[]byte("CPS1\x01\x00\x00\x00\xff\xff\x00\x00"), // name length too long
		// One entry claiming a huge 2^16 × 2^15 shape with no data: the
		// incremental-allocation guard must fail this cheaply.
		[]byte("CPS1\x01\x00\x00\x00\x01\x00\x00\x00m\x00\x00\x01\x00\x00\x80\x00\x00"),
	}
}

// FuzzParamSetReadFrom fuzzes the wire codec's untrusted entry point:
//
//   - any input either parses or fails with an error — never a panic;
//   - a successful parse is canonical: re-encoding the parsed set
//     reproduces exactly the consumed prefix of the input
//     (WriteTo ∘ ReadFrom = identity on the wire), and the transport's
//     in-place DecodeFrom agrees with ReadFrom on it;
//   - the reported byte count never exceeds the input length.
func FuzzParamSetReadFrom(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if bytes.HasPrefix(data, []byte(compressMagic)) {
			// Mutated into the lossy CPQ1 format, whose re-encode is not
			// byte-identical to the input; FuzzSparseCodecDecode owns
			// that space with the compressed invariants.
			return
		}
		s := New()
		n, err := s.ReadFrom(bytes.NewReader(data))
		if n > int64(len(data)) {
			t.Fatalf("ReadFrom reported %d bytes from a %d-byte input", n, len(data))
		}
		if err != nil {
			return
		}
		var re bytes.Buffer
		if _, err := s.WriteTo(&re); err != nil {
			t.Fatalf("re-encode of parsed set failed: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:n]) {
			t.Fatalf("re-encode is not byte-identical to the parsed prefix (%d vs %d bytes)", re.Len(), n)
		}
		// The in-place decode path must accept everything ReadFrom
		// accepts and produce the same values.
		dst := s.Clone()
		dst.Scale(0) // scrub so agreement is not vacuous
		dn, err := dst.DecodeFrom(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("DecodeFrom rejected a ReadFrom-accepted stream: %v", err)
		}
		if dn != n {
			t.Fatalf("DecodeFrom consumed %d bytes, ReadFrom %d", dn, n)
		}
		if !Equal(s, dst, 0) {
			t.Fatal("DecodeFrom and ReadFrom disagree on values")
		}
	})
}

// A header lying about its entry size must fail after allocating
// storage proportional to the bytes that actually arrived, not to the
// claimed size (a 2^31-element claim would otherwise allocate 16 GiB
// before the first data byte is read).
func TestReadFromHugeClaimDoesNotOverAllocate(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("CPS1")
	in.Write([]byte{1, 0, 0, 0})   // one entry
	in.Write([]byte{1, 0, 0, 0})   // nameLen 1
	in.WriteByte('m')              //
	in.Write([]byte{0, 0, 1, 0})   // rows = 65536
	in.Write([]byte{0, 128, 0, 0}) // cols = 32768 → 2^31 elements
	in.Write(make([]byte, 4096))   // only 4 KiB of data ever arrives
	data := in.Bytes()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out := New()
	_, err := out.ReadFrom(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated huge-claim input must fail")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("ReadFrom allocated %d bytes for a %d-byte input", grew, len(data))
	}
}

func TestReadFromRejectsDuplicateEntryNames(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("CPS1")
	in.Write([]byte{2, 0, 0, 0})
	for i := 0; i < 2; i++ {
		in.Write([]byte{1, 0, 0, 0}) // nameLen 1
		in.WriteByte('d')            // same name twice
		in.Write([]byte{1, 0, 0, 0}) // rows 1
		in.Write([]byte{1, 0, 0, 0}) // cols 1
		in.Write(make([]byte, 8))    // one float64
	}
	out := New()
	if _, err := out.ReadFrom(bytes.NewReader(in.Bytes())); err == nil {
		t.Fatal("duplicate entry names must be rejected, not panic Add")
	}
}

func TestDecodeFromMatchingStructure(t *testing.T) {
	src := newTestSet(1.5, -2, 0, 4.25, 1e-9, 6e12)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	dst.Scale(0)
	backing := dst.At(0).Data
	n, err := dst.DecodeFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("consumed %d of %d bytes", n, buf.Len())
	}
	if !Equal(src, dst, 0) {
		t.Fatal("decoded values differ")
	}
	if &backing[0] != &dst.At(0).Data[0] {
		t.Fatal("DecodeFrom replaced backing storage instead of writing in place")
	}
}

func TestDecodeFromStructureMismatch(t *testing.T) {
	src := newTestSet(1, 2, 3, 4, 5, 6)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Set{
		"empty receiver": New(),
		"extra entry": func() *Set {
			s := src.Clone()
			s.AddVector("extra", []float64{1})
			return s
		}(),
		"renamed entry": func() *Set {
			s := New()
			for i := 0; i < src.Len(); i++ {
				e := src.At(i)
				s.Add(e.Name+"x", e.Rows, e.Cols, append([]float64(nil), e.Data...))
			}
			return s
		}(),
	}
	for name, dst := range cases {
		if _, err := dst.DecodeFrom(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("%s: expected structural-mismatch error", name)
		}
	}
}

// DecodeFrom is the transport's receive path and must be value-
// transparent: NaN payloads (a diverged simulation) pass through
// rather than erroring, unlike the checkpoint-loading ReadFrom.
func TestDecodeFromCarriesNaN(t *testing.T) {
	src := New()
	src.AddVector("v", []float64{1, 2})
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for i := len(b) - 8; i < len(b); i++ {
		b[i] = 0xFF // corrupt the last float into a NaN
	}
	dst := src.Clone()
	if _, err := dst.DecodeFrom(bytes.NewReader(b)); err != nil {
		t.Fatalf("transport decode must carry NaN: %v", err)
	}
	if v := dst.Get("v")[1]; v == v {
		t.Fatal("expected NaN to survive the decode")
	}
}
