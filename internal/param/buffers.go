package param

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// signature returns the structural key of the set: entry names and
// shapes in registration order. Two sets with equal signatures can
// exchange backing storage. Add maintains the value eagerly, so this
// is a pure read and safe to call from concurrent cloners of a shared
// source set.
func (s *Set) signature() string { return s.sig }

func writeEntrySig(b *strings.Builder, e Entry) {
	b.WriteString(e.Name)
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(e.Rows))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(e.Cols))
	b.WriteByte(';')
}

// appendEntrySig extends a signature with one more entry (the eager
// per-Add maintenance path).
func appendEntrySig(sig string, e Entry) string {
	var b strings.Builder
	b.Grow(len(sig) + len(e.Name) + 16)
	b.WriteString(sig)
	writeEntrySig(&b, e)
	return b.String()
}

// Buffers is a concurrency-safe free-list of parameter sets keyed by
// set structure. The protocol simulators keep one Buffers per
// simulation so that message payloads — previously a fresh deep copy
// per message — are recycled once the round that produced them is
// over, making the steady-state parameter pipeline allocation-free.
//
// All methods are safe for concurrent use and tolerate a nil receiver
// (every operation then degrades to a plain allocation), so code paths
// can thread an optional pool without branching.
type Buffers struct {
	pools sync.Map // signature string → *sync.Pool of *Set

	// hits counts pool fetches satisfied from recycled storage and
	// misses fetches that fell through to a fresh allocation — the
	// feed for the obs registry's param_pool_* views.
	hits   atomic.Int64
	misses atomic.Int64

	// filtered caches CloneWithout signatures: a simulation filters the
	// same structure with the same short drop list every message, and
	// rebuilding the string each time would put an allocation back into
	// the steady-state pipeline.
	mu       sync.RWMutex
	filtered map[withoutKey]string
}

// withoutKey identifies a CloneWithout result signature for drop lists
// of up to two entries (models withhold at most a couple of private
// tables; longer lists skip the cache).
type withoutKey struct {
	src, drop0, drop1 string
}

func (b *Buffers) pool(sig string) *sync.Pool {
	if p, ok := b.pools.Load(sig); ok {
		return p.(*sync.Pool)
	}
	p, _ := b.pools.LoadOrStore(sig, &sync.Pool{})
	return p.(*sync.Pool)
}

// Clone returns a deep copy of src, reusing recycled storage of the
// same structure when available. Return the set with Put when its
// values are no longer needed.
func (b *Buffers) Clone(src *Set) *Set {
	if b == nil {
		return src.Clone()
	}
	if got, ok := b.pool(src.signature()).Get().(*Set); ok && got != nil {
		b.hits.Add(1)
		got.CopyFrom(src)
		return got
	}
	b.misses.Add(1)
	return src.Clone()
}

// GetShaped returns a recycled set with the same structure as like
// without copying any values (the contents are whatever the previous
// user left), or nil when the free-list has nothing of that shape. The
// wire transport decodes received bytes into it, so initializing the
// values here would be wasted work.
func (b *Buffers) GetShaped(like *Set) *Set {
	if b == nil {
		return nil
	}
	if got, ok := b.pool(like.signature()).Get().(*Set); ok && got != nil {
		b.hits.Add(1)
		return got
	}
	b.misses.Add(1)
	return nil
}

// CloneWithout returns a deep copy of src excluding the named entries
// (the Share-less payload filter), reusing recycled storage of the
// filtered structure when available.
func (b *Buffers) CloneWithout(src *Set, drop ...string) *Set {
	if b == nil {
		return src.Without(drop...)
	}
	// Drop lists are short (a model's one or two private entries), so a
	// linear scan beats building a set.
	skip := func(name string) bool {
		for _, d := range drop {
			if d == name {
				return true
			}
		}
		return false
	}
	sig := b.filteredSig(src, drop, skip)
	if got, ok := b.pool(sig).Get().(*Set); ok && got != nil {
		b.hits.Add(1)
		// The pooled set has exactly the filtered structure (pools are
		// keyed by it), so values copy positionally.
		j := 0
		for _, e := range src.entries {
			if skip(e.Name) {
				continue
			}
			copy(got.entries[j].Data, e.Data)
			j++
		}
		return got
	}
	b.misses.Add(1)
	return src.Without(drop...)
}

// filteredSig returns the signature of src minus the dropped entries,
// cached for drop lists of up to two names.
func (b *Buffers) filteredSig(src *Set, drop []string, skip func(string) bool) string {
	key := withoutKey{src: src.signature()}
	cacheable := len(drop) <= 2
	if cacheable {
		if len(drop) > 0 {
			key.drop0 = drop[0]
		}
		if len(drop) > 1 {
			key.drop1 = drop[1]
		}
		b.mu.RLock()
		sig, ok := b.filtered[key]
		b.mu.RUnlock()
		if ok {
			return sig
		}
	}
	var sb strings.Builder
	for _, e := range src.entries {
		if skip(e.Name) {
			continue
		}
		writeEntrySig(&sb, e)
	}
	sig := sb.String()
	if cacheable {
		b.mu.Lock()
		if b.filtered == nil {
			b.filtered = make(map[withoutKey]string)
		}
		b.filtered[key] = sig
		b.mu.Unlock()
	}
	return sig
}

// Stats returns the pool's cumulative fetch counts: hits served from
// recycled storage and misses that allocated fresh sets. Zero on a
// nil receiver.
func (b *Buffers) Stats() (hits, misses int64) {
	if b == nil {
		return 0, 0
	}
	return b.hits.Load(), b.misses.Load()
}

// Put returns sets to the free-list for reuse. Nil sets are ignored.
// Callers must not touch a set after putting it back; the values will
// be overwritten by the next Clone of the same structure.
func (b *Buffers) Put(sets ...*Set) {
	if b == nil {
		return
	}
	for _, s := range sets {
		if s == nil || len(s.entries) == 0 {
			continue
		}
		b.pool(s.signature()).Put(s)
	}
}
