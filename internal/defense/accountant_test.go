package defense

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEpsilonMonotoneInNoise(t *testing.T) {
	a := Accountant{Delta: 1e-6, Rounds: 100}
	prev := math.Inf(1)
	for _, iota := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		eps := a.Epsilon(iota)
		if eps >= prev {
			t.Fatalf("epsilon not decreasing in noise: ι=%v ε=%v prev=%v", iota, eps, prev)
		}
		prev = eps
	}
}

func TestEpsilonInfiniteWithoutNoise(t *testing.T) {
	a := Accountant{Delta: 1e-6, Rounds: 10}
	if !math.IsInf(a.Epsilon(0), 1) {
		t.Fatal("zero noise must yield infinite epsilon")
	}
}

func TestEpsilonGrowsWithRounds(t *testing.T) {
	e1 := Accountant{Delta: 1e-6, Rounds: 10}.Epsilon(1)
	e2 := Accountant{Delta: 1e-6, Rounds: 100}.Epsilon(1)
	if e2 <= e1 {
		t.Fatalf("composition not increasing: %v <= %v", e2, e1)
	}
}

func TestCalibrateRoundTrip(t *testing.T) {
	a := Accountant{Delta: 1e-6, Rounds: 50}
	for _, eps := range []float64{1, 10, 100, 1000} {
		iota := a.Calibrate(eps)
		got := a.Epsilon(iota)
		if got > eps*1.001 {
			t.Fatalf("calibrated ι=%v yields ε=%v > target %v", iota, got, eps)
		}
		if got < eps*0.9 {
			t.Fatalf("calibration too loose: ε=%v for target %v", got, eps)
		}
	}
}

func TestCalibrateInfinite(t *testing.T) {
	a := Accountant{Delta: 1e-6, Rounds: 50}
	if got := a.Calibrate(math.Inf(1)); got != 0 {
		t.Fatalf("infinite epsilon should need no noise, got ι=%v", got)
	}
}

func TestCalibratePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accountant{Delta: 1e-6, Rounds: 10}.Calibrate(0)
}

func TestEpsilonPanicsOnBadDelta(t *testing.T) {
	for _, delta := range []float64{0, 1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("delta=%v should panic", delta)
				}
			}()
			Accountant{Delta: delta, Rounds: 10}.Epsilon(1)
		}()
	}
}

func TestCalibrateMonotoneProperty(t *testing.T) {
	// Property: smaller epsilon targets require more noise.
	a := Accountant{Delta: 1e-6, Rounds: 30}
	f := func(e1, e2 float64) bool {
		e1 = 0.5 + math.Abs(math.Mod(e1, 1000))
		e2 = 0.5 + math.Abs(math.Mod(e2, 1000))
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return a.Calibrate(e1) >= a.Calibrate(e2)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
