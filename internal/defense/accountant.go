package defense

import (
	"fmt"
	"math"
)

// Accountant converts between the DP-SGD noise multiplier and (ε, δ)
// guarantees using zero-concentrated differential privacy (zCDP)
// composition of the Gaussian mechanism:
//
//	one round with noise multiplier ι satisfies ρ-zCDP with ρ = 1/(2ι²);
//	T rounds compose to T·ρ; and ρ-zCDP implies
//	(ρ + 2·sqrt(ρ·ln(1/δ)), δ)-DP.
//
// Every client participates in every round at the user level (no
// subsampling amplification is claimed), which errs conservative. The
// paper only needs the ε ordering ∞ > 1000 > 100 > 10 > 1, which any
// monotone accountant preserves.
type Accountant struct {
	// Delta is the δ of the (ε, δ) guarantee (the paper uses 1e-6).
	Delta float64
	// Rounds is the number of composed training rounds T.
	Rounds int
}

// Epsilon returns the ε guarantee after Rounds rounds with the given
// noise multiplier. It returns +Inf for a non-positive multiplier.
func (a Accountant) Epsilon(noiseMultiplier float64) float64 {
	if noiseMultiplier <= 0 {
		return math.Inf(1)
	}
	if a.Delta <= 0 || a.Delta >= 1 {
		panic(fmt.Sprintf("defense: accountant delta %v out of (0,1)", a.Delta))
	}
	rho := float64(a.Rounds) / (2 * noiseMultiplier * noiseMultiplier)
	return rho + 2*math.Sqrt(rho*math.Log(1/a.Delta))
}

// Calibrate returns the smallest noise multiplier achieving at most
// epsilon after Rounds rounds, via binary search. Infinite epsilon
// returns 0 (no noise).
func (a Accountant) Calibrate(epsilon float64) float64 {
	if math.IsInf(epsilon, 1) {
		return 0
	}
	if epsilon <= 0 {
		panic(fmt.Sprintf("defense: cannot calibrate epsilon %v", epsilon))
	}
	lo, hi := 1e-6, 1e-6
	// Grow hi until it satisfies the target.
	for a.Epsilon(hi) > epsilon {
		hi *= 2
		if hi > 1e12 {
			panic("defense: calibration diverged")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if a.Epsilon(mid) > epsilon {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
