package defense

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

func TestTopKSparsifyKeepsLargestCoordinates(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	prev := m.Params().Clone()
	// Construct a known delta: one large coordinate, many small ones.
	item := m.Params().Get(model.GMFItemEmb)
	for i := range item {
		item[i] += 0.001
	}
	item[3] += 10

	out := TopKSparsify{Fraction: 0.05}.Outgoing(m, prev, nil, nil)
	delta := out.Clone()
	delta.Axpy(-1, prev)
	d := delta.Get(model.GMFItemEmb)
	if math.Abs(d[3]-10.001) > 1e-9 {
		t.Fatalf("largest coordinate not kept: %v", d[3])
	}
	var nonzero int
	for _, name := range delta.Names() {
		for _, v := range delta.Get(name) {
			if v != 0 {
				nonzero++
			}
		}
	}
	total := delta.NumParams()
	if nonzero > total/10 {
		t.Fatalf("sparsification kept %d of %d coordinates at 5%%", nonzero, total)
	}
}

func TestTopKSparsifyFullFractionIsIdentity(t *testing.T) {
	d := defTestDataset(t)
	m := model.NewGMF(d.NumUsers, d.NumItems, 4, 1)
	prev := m.Params().Clone()
	m.TrainLocal(d, 0, model.TrainOptions{Rand: mathx.NewRand(2)})
	out := TopKSparsify{Fraction: 1}.Outgoing(m, prev, nil, nil)
	cur := m.Params()
	for _, name := range cur.Names() {
		a, b := cur.Get(name), out.Get(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("fraction=1 must transmit the full update")
			}
		}
	}
}

func TestTopKSparsifyNoUpdateNoChange(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	prev := m.Params().Clone()
	out := TopKSparsify{Fraction: 0.5}.Outgoing(m, prev, nil, nil)
	if out.L2Norm() != prev.L2Norm() {
		t.Fatal("zero delta must yield prev unchanged")
	}
}

func TestTopKSparsifyPanics(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	for name, f := range map[string]func(){
		"nil prev":     func() { TopKSparsify{Fraction: 0.5}.Outgoing(m, nil, nil, nil) },
		"bad fraction": func() { TopKSparsify{Fraction: 0}.Outgoing(m, m.Params().Clone(), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
