package defense

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

func TestTopKSparsifyKeepsLargestCoordinates(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	prev := m.Params().Clone()
	// Construct a known delta: one large coordinate, many small ones.
	item := m.Params().Get(model.GMFItemEmb)
	for i := range item {
		item[i] += 0.001
	}
	item[3] += 10

	out := TopKSparsify{Fraction: 0.05}.Outgoing(m, prev, nil, nil)
	delta := out.Clone()
	delta.Axpy(-1, prev)
	d := delta.Get(model.GMFItemEmb)
	if math.Abs(d[3]-10.001) > 1e-9 {
		t.Fatalf("largest coordinate not kept: %v", d[3])
	}
	var nonzero int
	for _, name := range delta.Names() {
		for _, v := range delta.Get(name) {
			if v != 0 {
				nonzero++
			}
		}
	}
	total := delta.NumParams()
	if nonzero > total/10 {
		t.Fatalf("sparsification kept %d of %d coordinates at 5%%", nonzero, total)
	}
}

func TestTopKSparsifyFullFractionIsIdentity(t *testing.T) {
	d := defTestDataset(t)
	m := model.NewGMF(d.NumUsers, d.NumItems, 4, 1)
	prev := m.Params().Clone()
	m.TrainLocal(d, 0, model.TrainOptions{Rand: mathx.NewRand(2)})
	out := TopKSparsify{Fraction: 1}.Outgoing(m, prev, nil, nil)
	cur := m.Params()
	for _, name := range cur.Names() {
		a, b := cur.Get(name), out.Get(name)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("fraction=1 must transmit the full update")
			}
		}
	}
}

func TestTopKSparsifyNoUpdateNoChange(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	prev := m.Params().Clone()
	out := TopKSparsify{Fraction: 0.5}.Outgoing(m, prev, nil, nil)
	if out.L2Norm() != prev.L2Norm() {
		t.Fatal("zero delta must yield prev unchanged")
	}
}

// TestTopKSparsifyTable pins the exact survivor set for hand-built
// deltas — the contract the wire codec's sparse encoder relies on:
// the magnitude threshold is the keep-th largest |Δ| over the *nonzero*
// coordinates of all entries jointly, every coordinate with |Δ| ≥
// threshold survives (so ties at the threshold are all kept, possibly
// more than keep of them), survivors keep their exact value and
// position, and everything else is exactly zero. keep =
// int(Fraction·nnz) clamped to ≥1, so Fraction=1 is keep=nnz (the
// k≥len case: zeros stay zero, every nonzero survives).
func TestTopKSparsifyTable(t *testing.T) {
	cases := []struct {
		name string
		frac float64
		// delta is written verbatim into the 4×2 item_emb entry (its
		// prev is zeroed first, so the computed Δ is exactly this
		// vector); all other entries carry a zero delta.
		delta []float64
		kept  []int // item_emb indices expected to survive, in order
	}{
		{
			name:  "ties at threshold all survive",
			frac:  0.5, // nnz=4 → keep=2, threshold=2
			delta: []float64{3, 2, 2, 2, 0, 0, 0, 0},
			kept:  []int{0, 1, 2, 3},
		},
		{
			name:  "magnitude not sign decides",
			frac:  0.5, // nnz=4 → keep=2, threshold=4
			delta: []float64{-5, 4, -3, 1, 0, 0, 0, 0},
			kept:  []int{0, 1},
		},
		{
			name:  "keep clamps to one",
			frac:  0.01, // nnz=8 → int(0.08)=0 → keep=1
			delta: []float64{1, 2, 3, 4, 5, 6, 7, 8},
			kept:  []int{7},
		},
		{
			name:  "keep-one tie keeps both maxima",
			frac:  0.01, // keep=1, threshold=7 — both ±7 survive
			delta: []float64{7, -7, 1, 1, 1, 1, 1, 1},
			kept:  []int{0, 1},
		},
		{
			name:  "fraction one keeps every nonzero",
			frac:  1, // keep=nnz=5: the k≥len edge — zeros stay zero
			delta: []float64{0.5, 0, -0.25, 1, 0, 2, 0, -3},
			kept:  []int{0, 2, 3, 5, 7},
		},
		{
			name:  "keep rounds down",
			frac:  0.5, // nnz=5 → int(2.5)=2, threshold=4
			delta: []float64{1, 2, 3, 4, 5, 0, 0, 0},
			kept:  []int{3, 4},
		},
		{
			name:  "all-zero delta keeps nothing",
			frac:  0.5,
			delta: []float64{0, 0, 0, 0, 0, 0, 0, 0},
			kept:  nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := model.NewGMF(2, 4, 2, 1)
			item := m.Params().Get(model.GMFItemEmb)
			if len(item) != len(tc.delta) {
				t.Fatalf("item_emb has %d coords, case wants %d", len(item), len(tc.delta))
			}
			mathx.Zero(item)
			prev := m.Params().Clone()
			copy(item, tc.delta)

			out := TopKSparsify{Fraction: tc.frac}.Outgoing(m, prev, nil, nil)
			got := out.Clone()
			got.Axpy(-1, prev)
			for _, name := range got.Names() {
				if name == model.GMFItemEmb {
					continue
				}
				for i, v := range got.Get(name) {
					if v != 0 {
						t.Fatalf("entry %s[%d]: zero-delta coordinate changed to %v", name, i, v)
					}
				}
			}
			keep := make(map[int]bool, len(tc.kept))
			for _, i := range tc.kept {
				keep[i] = true
			}
			for i, v := range got.Get(model.GMFItemEmb) {
				switch {
				case keep[i] && v != tc.delta[i]:
					t.Errorf("index %d: survivor value %v, want exactly %v", i, v, tc.delta[i])
				case !keep[i] && v != 0:
					t.Errorf("index %d: want zeroed, got %v", i, v)
				}
			}
		})
	}
}

func TestTopKSparsifyPanics(t *testing.T) {
	m := model.NewGMF(2, 4, 2, 1)
	for name, f := range map[string]func(){
		"nil prev":     func() { TopKSparsify{Fraction: 0.5}.Outgoing(m, nil, nil, nil) },
		"bad fraction": func() { TopKSparsify{Fraction: 0}.Outgoing(m, m.Params().Clone(), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
