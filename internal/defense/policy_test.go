package defense

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

func defTestDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 12, NumItems: 50, NumCommunities: 3,
		MeanItemsPerUser: 10, MinItemsPerUser: 4, Affinity: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFullSharingOutgoingIsCompleteCopy(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	out := FullSharing{}.Outgoing(m, nil, nil, nil)
	if out.Len() != m.Params().Len() {
		t.Fatalf("full sharing dropped entries: %v", out.Names())
	}
	// Must not alias live storage.
	out.Get(model.GMFOutput)[0] += 1
	if m.Params().Get(model.GMFOutput)[0] == out.Get(model.GMFOutput)[0] {
		t.Fatal("Outgoing aliases model storage")
	}
}

func TestShareLessHidesUserEmbeddings(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	out := ShareLess{Tau: 1}.Outgoing(m, nil, nil, nil)
	if out.Has(model.GMFUserEmb) {
		t.Fatal("share-less leaked user embeddings")
	}
	for _, name := range []string{model.GMFItemEmb, model.GMFOutput, model.GMFBias} {
		if !out.Has(name) {
			t.Fatalf("share-less dropped %s", name)
		}
	}

	p := model.NewPRME(4, 6, 3, 1)
	outP := ShareLess{Tau: 1}.Outgoing(p, nil, nil, nil)
	if outP.Has(model.PRMEUserEmb) {
		t.Fatal("share-less leaked PRME user embeddings")
	}
}

func TestShareLessPrepareTrainSetsDrift(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	received := m.Params().Clone()
	var opt model.TrainOptions
	ShareLess{Tau: 0.5}.PrepareTrain(&opt, m, received)
	if opt.DriftTau != 0.5 || opt.DriftRef != received {
		t.Fatal("drift not wired to received payload")
	}
	// Nil payload (first round): falls back to own params snapshot.
	var opt2 model.TrainOptions
	ShareLess{Tau: 0.5}.PrepareTrain(&opt2, m, nil)
	if opt2.DriftRef == nil {
		t.Fatal("first-round drift reference missing")
	}
	// Zero tau: policy is inert.
	var opt3 model.TrainOptions
	ShareLess{}.PrepareTrain(&opt3, m, received)
	if opt3.DriftTau != 0 || opt3.DriftRef != nil {
		t.Fatal("zero-tau share-less should not enable drift")
	}
}

func TestShareLessPartialPayloadFallsBack(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	// A payload missing item entries (e.g. corrupted) must not be used
	// as the drift reference.
	bogus := param.New()
	bogus.AddVector("unrelated", []float64{1})
	var opt model.TrainOptions
	ShareLess{Tau: 1}.PrepareTrain(&opt, m, bogus)
	if opt.DriftRef == bogus {
		t.Fatal("drift reference must contain the item entries")
	}
	if opt.DriftRef == nil || !opt.DriftRef.Has(model.GMFItemEmb) {
		t.Fatal("fallback reference missing item entries")
	}
}

func TestDPSGDPrepareTrainEnablesClipping(t *testing.T) {
	var opt model.TrainOptions
	DPSGD{Clip: 2, NoiseMultiplier: 0.1}.PrepareTrain(&opt, nil, nil)
	if opt.PerExampleClip != 2 {
		t.Fatal("per-example clip not set")
	}
}

func TestDPSGDOutgoingClipsDelta(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	prev := m.Params().Clone()
	// Apply a huge fake local update.
	m.Params().Get(model.GMFItemEmb)[0] += 100
	p := DPSGD{Clip: 1, NoiseMultiplier: 0}
	out := p.Outgoing(m, prev, mathx.NewRand(1), nil)
	delta := out.Clone()
	delta.Axpy(-1, prev)
	if n := delta.L2Norm(); n > 1+1e-9 {
		t.Fatalf("shared delta norm %v exceeds clip 1", n)
	}
}

func TestDPSGDOutgoingAddsNoise(t *testing.T) {
	m := model.NewGMF(4, 6, 3, 1)
	prev := m.Params().Clone()
	p := DPSGD{Clip: 1, NoiseMultiplier: 1}
	a := p.Outgoing(m, prev, mathx.NewRand(1), nil)
	b := p.Outgoing(m, prev, mathx.NewRand(2), nil)
	if param.Equal(a, b, 1e-12) {
		t.Fatal("DP noise is deterministic across different RNGs")
	}
	// Noise magnitude sanity: std of (out - prev) ≈ ι·C = 1.
	diff := a.Clone()
	diff.Axpy(-1, prev)
	var vals []float64
	vals = append(vals, diff.Get(model.GMFItemEmb)...)
	if sd := mathx.StdDev(vals); sd < 0.5 || sd > 1.5 {
		t.Fatalf("noise std %v, want ~1", sd)
	}
}

func TestDPSGDOutgoingRequiresPrev(t *testing.T) {
	m := model.NewGMF(2, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without prev snapshot")
		}
	}()
	DPSGD{Clip: 1}.Outgoing(m, nil, mathx.NewRand(1), nil)
}

// End-to-end: a share-less client round trip trains, shares partial
// params, and the drift regularizer keeps item embeddings closer to
// the reference than undefended training does.
func TestShareLessRoundTrip(t *testing.T) {
	d := defTestDataset(t)
	mFree := model.NewGMF(d.NumUsers, d.NumItems, 8, 2)
	mDef := mFree.Clone()
	ref := mFree.Params().Clone()

	r1, r2 := mathx.NewRand(9), mathx.NewRand(9)
	optFree := model.TrainOptions{Rand: r1}
	optDef := model.TrainOptions{Rand: r2}
	ShareLess{Tau: 3}.PrepareTrain(&optDef, mDef, ref)
	for e := 0; e < 5; e++ {
		mFree.TrainLocal(d, 0, optFree)
		mDef.TrainLocal(d, 0, optDef)
	}
	divFree := entryDist(mFree.Params(), ref, model.GMFItemEmb)
	divDef := entryDist(mDef.Params(), ref, model.GMFItemEmb)
	if divDef >= divFree {
		t.Fatalf("drift regularizer ineffective: %v >= %v", divDef, divFree)
	}
}

func entryDist(a, b *param.Set, entry string) float64 {
	av, bv := a.Get(entry), b.Get(entry)
	var s float64
	for i := range av {
		d := av[i] - bv[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestPolicyNames(t *testing.T) {
	if (FullSharing{}).Name() != "full" || (ShareLess{}).Name() != "share-less" || (DPSGD{}).Name() != "dp-sgd" {
		t.Fatal("policy names changed; experiment output depends on them")
	}
}
