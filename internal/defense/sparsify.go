package defense

import (
	"math"
	"math/rand/v2"
	"sort"

	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// TopKSparsify is an extension defense (the paper's future work calls
// for new mitigations): clients share only the fraction of update
// coordinates with the largest magnitudes, zeroing the rest. Top-k
// sparsification is primarily a bandwidth technique in FL, but it is
// privacy-relevant here: CIA reads taste from the *pattern* of item-
// embedding movement, and transmitting only the heaviest coordinates
// concentrates the signal rather than hiding it — the sparsification
// study quantifies how little protection it buys.
type TopKSparsify struct {
	// Fraction of update coordinates kept, in (0, 1].
	Fraction float64
}

var _ Policy = TopKSparsify{}

// Name implements Policy.
func (TopKSparsify) Name() string { return "topk-sparsify" }

// PrepareTrain implements Policy (no adjustment to local training).
func (TopKSparsify) PrepareTrain(*model.TrainOptions, model.Recommender, *param.Set) {}

// Outgoing implements Policy: prev + top-k(Δ) over all entries jointly.
func (p TopKSparsify) Outgoing(m model.Recommender, prev *param.Set, _ *rand.Rand, buf *param.Buffers) *param.Set {
	if prev == nil {
		panic("defense: TopKSparsify.Outgoing requires the pre-training snapshot")
	}
	frac := p.Fraction
	if frac <= 0 || frac > 1 {
		panic("defense: TopKSparsify.Fraction out of (0,1]")
	}
	delta := buf.Clone(m.Params())
	delta.Axpy(-1, prev)

	// Find the magnitude threshold across all coordinates.
	var mags []float64
	for _, name := range delta.Names() {
		for _, v := range delta.Get(name) {
			if v != 0 {
				mags = append(mags, math.Abs(v))
			}
		}
	}
	if len(mags) == 0 {
		buf.Put(delta)
		return buf.Clone(prev)
	}
	keep := int(frac * float64(len(mags)))
	if keep < 1 {
		keep = 1
	}
	sort.Float64s(mags)
	threshold := mags[len(mags)-keep]

	for _, name := range delta.Names() {
		data := delta.Get(name)
		for i, v := range data {
			if math.Abs(v) < threshold {
				data[i] = 0
			}
		}
	}
	out := buf.Clone(prev)
	out.Axpy(1, delta)
	buf.Put(delta)
	return out
}
