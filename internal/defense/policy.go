// Package defense implements the two mitigation strategies evaluated
// in the paper: the Share-less policy (§III-D, keep user embeddings
// private and regularize item-embedding drift) and user-level DP-SGD
// (§III-E, per-example clipping plus calibrated Gaussian noise on the
// shared update), together with a zCDP privacy accountant.
//
// Both federated and gossip clients interact with defenses through the
// Policy interface: a policy shapes the client's local training and
// builds the outgoing message payload from the client's live model.
package defense

import (
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// Policy shapes what a collaborative-learning client shares and how it
// trains locally. Implementations must be stateless with respect to
// individual clients (one Policy instance serves every client).
type Policy interface {
	// Name identifies the policy in experiment output
	// ("full", "share-less", "dp-sgd").
	Name() string

	// PrepareTrain adjusts the client's local-training options.
	// received is the payload the client installed at the start of the
	// round (the drift reference for Share-less); it may be nil on the
	// very first round.
	PrepareTrain(opt *model.TrainOptions, m model.Recommender, received *param.Set)

	// Outgoing builds the message payload from the client's live model
	// after local training. prev is a snapshot of the client's
	// parameters before local training (DP-SGD clips and noises the
	// prev→current delta). The returned set must not alias model
	// storage. buf is an optional recycled-set pool (nil is valid and
	// falls back to plain allocation); payloads drawn from it are
	// returned to it by the simulator once the round is over.
	Outgoing(m model.Recommender, prev *param.Set, rng *rand.Rand, buf *param.Buffers) *param.Set
}

// FullSharing is the no-defense baseline: the complete model is shared
// and local training is unmodified.
type FullSharing struct{}

var _ Policy = FullSharing{}

// Name implements Policy.
func (FullSharing) Name() string { return "full" }

// PrepareTrain implements Policy (no adjustment).
func (FullSharing) PrepareTrain(*model.TrainOptions, model.Recommender, *param.Set) {}

// Outgoing implements Policy: a deep copy of all parameters.
func (FullSharing) Outgoing(m model.Recommender, _ *param.Set, _ *rand.Rand, buf *param.Buffers) *param.Set {
	return buf.Clone(m.Params())
}

// ShareLess implements the §III-D policy: user embeddings never leave
// the device, and local updates to item embeddings are pulled towards
// their received values with strength Tau (Eq. 2).
type ShareLess struct {
	// Tau is the regularization factor τ of Eq. 2.
	Tau float64
}

var _ Policy = ShareLess{}

// Name implements Policy.
func (ShareLess) Name() string { return "share-less" }

// PrepareTrain implements Policy: enables the item-drift regularizer
// against the received payload. On the first round (no payload yet)
// the client regularizes against its own initial parameters, matching
// the paper's GL convention of using e_{j,u}^{t-1}.
func (p ShareLess) PrepareTrain(opt *model.TrainOptions, m model.Recommender, received *param.Set) {
	if p.Tau <= 0 {
		return
	}
	opt.DriftTau = p.Tau
	if received != nil && hasAll(received, m.ItemEntries()) {
		opt.DriftRef = received
	} else {
		opt.DriftRef = m.Params().Clone()
	}
}

// Outgoing implements Policy: every entry except the model's private
// (user-embedding) entries.
func (ShareLess) Outgoing(m model.Recommender, _ *param.Set, _ *rand.Rand, buf *param.Buffers) *param.Set {
	return buf.CloneWithout(m.Params(), m.PrivateEntries()...)
}

func hasAll(s *param.Set, names []string) bool {
	for _, n := range names {
		if !s.Has(n) {
			return false
		}
	}
	return true
}

// DPSGD implements user-level local differential privacy (§III-E):
// per-example gradients are clipped to Clip during local SGD, the
// whole local update (current − prev) is clipped to Clip again, and
// Gaussian noise N(0, (NoiseMultiplier·Clip)²) is added to every
// coordinate of the shared update.
type DPSGD struct {
	// Clip is the L2 clipping threshold C (the paper uses 2).
	Clip float64
	// NoiseMultiplier is ι; the per-coordinate noise std is ι·C.
	NoiseMultiplier float64
}

var _ Policy = DPSGD{}

// Name implements Policy.
func (DPSGD) Name() string { return "dp-sgd" }

// PrepareTrain implements Policy: enables per-example clipping.
func (p DPSGD) PrepareTrain(opt *model.TrainOptions, _ model.Recommender, _ *param.Set) {
	opt.PerExampleClip = p.Clip
}

// Outgoing implements Policy: prev + clip(Δ) + noise, over all entries.
func (p DPSGD) Outgoing(m model.Recommender, prev *param.Set, rng *rand.Rand, buf *param.Buffers) *param.Set {
	if prev == nil {
		panic("defense: DPSGD.Outgoing requires the pre-training snapshot")
	}
	delta := buf.Clone(m.Params())
	delta.Axpy(-1, prev)
	delta.ClipL2(p.Clip)
	if p.NoiseMultiplier > 0 {
		delta.AddNoise(rng.NormFloat64, p.NoiseMultiplier*p.Clip)
	}
	out := buf.Clone(prev)
	out.Axpy(1, delta)
	buf.Put(delta)
	return out
}
