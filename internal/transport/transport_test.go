package transport

import (
	"sync"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
)

// testSet builds a model-shaped set: a private user table, an item
// table and a bias vector, with distinctive values.
func testSet(scale float64) *param.Set {
	s := param.New()
	ue := make([]float64, 6*4)
	ie := make([]float64, 10*4)
	b := make([]float64, 10)
	for i := range ue {
		ue[i] = scale * (1.5 + float64(i))
	}
	for i := range ie {
		ie[i] = scale * (-0.25 * float64(i+1))
	}
	for i := range b {
		b[i] = scale * float64(i) * 1e-3
	}
	s.Add("user_emb", 6, 4, ue)
	s.Add("item_emb", 10, 4, ie)
	s.AddVector("bias", b)
	return s
}

func TestNewBackends(t *testing.T) {
	for _, name := range append([]string{""}, Names()...) {
		tr, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "inproc"
		}
		if tr.Name() != want {
			t.Fatalf("New(%q).Name() = %q", name, tr.Name())
		}
		if !Known(name) {
			t.Fatalf("Known(%q) = false for a New-able backend", name)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("New(%q).Close(): %v", name, err)
		}
	}
	if _, err := New("carrier-pigeon"); err == nil {
		t.Fatal("unknown backend must error")
	}
	if Known("carrier-pigeon") {
		t.Fatal("Known must reject unknown backends")
	}
}

func TestInprocSendPassesPointerThrough(t *testing.T) {
	tr := NewInproc()
	var pool param.Buffers
	payload := testSet(1)
	got, err := tr.Send(0, 0, payload, &pool)
	if err != nil {
		t.Fatal(err)
	}
	if got != payload {
		t.Fatal("inproc Send must return the same set")
	}
	st := tr.Stats()
	if st.Messages != 1 || st.Bytes != int64(payload.WireBytes()) || st.Chunks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWireSendRoundTripsValues(t *testing.T) {
	for _, tr := range []Transport{NewWire(), NewChunkedWire(64)} {
		t.Run(tr.Name(), func(t *testing.T) {
			var pool param.Buffers
			payload := testSet(1)
			want := payload.Clone()
			got, err := tr.Send(0, 0, payload, &pool)
			if err != nil {
				t.Fatal(err)
			}
			if got == payload {
				t.Fatal("wire Send must not return the sender's set")
			}
			if !param.Equal(want, got, 0) {
				t.Fatal("wire Send changed values")
			}
			st := tr.Stats()
			if st.Messages != 1 || st.Bytes != int64(want.WireBytes()) {
				t.Fatalf("stats = %+v, want 1 message of %d bytes", st, want.WireBytes())
			}
		})
	}
}

// The wire backend's received sets must not alias the sender's
// storage: mutating the sender afterwards cannot leak into the
// receiver (that would be Inproc semantics by accident).
func TestWireSendDoesNotAlias(t *testing.T) {
	tr := NewWire()
	payload := testSet(1)
	got, _ := tr.Send(0, 0, payload, nil) // nil pool: Send falls back to allocation
	payload.Get("item_emb")[0] = 1e9
	if got.Get("item_emb")[0] == 1e9 {
		t.Fatal("received set aliases sender storage")
	}
}

// Chunk framing must not change delivered bytes, only the Chunks
// accounting.
func TestChunkedWireAccounting(t *testing.T) {
	chunk := 128
	tr := NewChunkedWire(chunk)
	var pool param.Buffers
	payload := testSet(1)
	wire := int64(payload.WireBytes())
	got, err := tr.Send(0, 0, payload, &pool)
	if err != nil {
		t.Fatal(err)
	}
	if !param.Equal(testSet(1), got, 0) {
		t.Fatal("chunked send changed values")
	}
	st := tr.Stats()
	wantChunks := (wire + int64(chunk) - 1) / int64(chunk)
	if st.Chunks != wantChunks {
		t.Fatalf("chunks = %d, want %d", st.Chunks, wantChunks)
	}
	if wantChunks < 2 {
		t.Fatalf("test payload too small to exercise framing (%d bytes)", wire)
	}
}

func TestBroadcastDelivers(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			src := testSet(2)
			bc, err := tr.OpenBroadcast(0, src)
			if err != nil {
				t.Fatal(err)
			}
			dsts := []*param.Set{testSet(0), testSet(-1), testSet(7)}
			for i, dst := range dsts {
				if err := bc.Deliver(i, dst); err != nil {
					t.Fatal(err)
				}
			}
			bc.Close()
			for i, dst := range dsts {
				if !param.Equal(src, dst, 0) {
					t.Fatalf("receiver %d differs from source", i)
				}
			}
			st := tr.Stats()
			if st.BroadcastMessages != 3 || st.BroadcastBytes != 3*int64(src.WireBytes()) {
				t.Fatalf("stats = %+v", st)
			}
			if st.Messages != 0 {
				t.Fatal("broadcast must not count as point-to-point traffic")
			}
		})
	}
}

// Broadcast delivery writes values into the destination's existing
// backing storage — receivers register live model tensors and rely on
// the aliasing surviving a download.
func TestBroadcastDeliverPreservesAliasing(t *testing.T) {
	for _, name := range Names() {
		tr, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		src := testSet(3)
		dst := testSet(0)
		backing := dst.Get("item_emb")
		bc, err := tr.OpenBroadcast(0, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.Deliver(0, dst); err != nil {
			t.Fatal(err)
		}
		bc.Close()
		if &backing[0] != &dst.Get("item_emb")[0] {
			t.Fatalf("%s: Deliver replaced the destination's backing storage", name)
		}
		if backing[0] != src.Get("item_emb")[0] {
			t.Fatalf("%s: delivered values missing from backing storage", name)
		}
	}
}

// Send and Deliver run from worker goroutines in the simulators; the
// backends must tolerate concurrent use (run under -race in CI).
func TestConcurrentUse(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			var pool param.Buffers
			src := testSet(5)
			bc, err := tr.OpenBroadcast(0, src)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			const perG = 20
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					dst := testSet(0)
					for i := 0; i < perG; i++ {
						if err := bc.Deliver(g, dst); err != nil {
							panic(err)
						}
						got, err := tr.Send(0, 0, pool.Clone(src), &pool)
						if err != nil {
							panic(err)
						}
						if !param.Equal(src, got, 0) || !param.Equal(src, dst, 0) {
							panic("concurrent transfer corrupted values")
						}
						pool.Put(got)
					}
				}(g)
			}
			wg.Wait()
			bc.Close()
			st := tr.Stats()
			if st.Messages != goroutines*perG || st.BroadcastMessages != goroutines*perG {
				t.Fatalf("stats = %+v, want %d of each", st, goroutines*perG)
			}
		})
	}
}

// After the pool warms up, the wire backend's steady state allocates
// nothing on the Send path beyond what the codec itself needs.
func TestWireSendReusesPool(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes reuse under -race")
	}
	tr := NewWire()
	var pool param.Buffers
	send := func() *param.Set {
		got, err := tr.Send(0, 0, pool.Clone(testSet(1)), &pool)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	// Warm: first sends populate the free-list.
	for i := 0; i < 4; i++ {
		pool.Put(send())
	}
	allocs := testing.AllocsPerRun(50, func() {
		pool.Put(send())
	})
	// testSet itself allocates ~10; the transfer should add ~0. Allow
	// slack for pool misses under GC.
	if allocs > 16 {
		t.Fatalf("steady-state wire send allocates too much: %.1f allocs/op", allocs)
	}
}
