// Package transport carries every inter-participant parameter transfer
// of the protocol simulators: federated client→server uploads, the
// server→client global-model broadcast, and gossip node→neighbour
// pushes. It is the seam where the ROADMAP's multi-process / RPC round
// engine plugs in — the simulators speak only to the Transport
// interface, never to each other's memory.
//
// Five backends ship today:
//
//   - Inproc passes payload pointers through unchanged — the
//     historical in-memory behaviour, byte-identical to the
//     pre-transport simulators.
//   - Wire round-trips every payload through the binary codec
//     (param.Set WriteTo → pooled byte buffers → DecodeFrom),
//     optionally reading across fixed-size chunk frames ("wire" /
//     "wire-chunked"). It proves that a deployment which actually
//     serializes its traffic computes exactly the same models.
//   - Socket ("socket" over a Unix-domain socket, "socket-tcp" over
//     TCP) pushes every payload through the framed RPC protocol of
//     internal/transport/rpc against a real socket server: each Send
//     is a request/response round-trip carrying the codec bytes, each
//     broadcast is uploaded once and downloaded per receiver.
//     transport.New spins the server up in-process over a loopback
//     socket (the deterministic test/bench mode); transport.Dial
//     connects to an external `ciaworker` process so a round spans OS
//     process boundaries. Results remain byte-identical — the
//     cross-backend equivalence suites in internal/fed and
//     internal/gossip hold every backend to tolerance 0.
//   - Faulty ("faulty:<inner>", e.g. "faulty:wire") wraps any other
//     backend and injects deterministic, seed-driven failures — lost
//     sends, failed broadcast downloads, per-round participant
//     blackouts — from a declarative FaultPlan, so every chaos
//     scenario is reproducible from a (seed, plan) pair.
//
// # Contract
//
// Ownership: Send consumes its payload whether or not it succeeds —
// the caller must not touch it afterwards. Inproc returns the same
// set; the serializing backends recycle the payload into the caller's
// param.Buffers pool and return a decoded copy drawn from that pool.
// Either way the caller owns the returned set and recycles it
// (pool.Put) once the receiver has consumed it. On error the payload
// has been recycled and the returned set is nil. Broadcast handles
// borrow src only until Close.
//
// Errors: transfers can fail — that is the point of the resilience
// layer. Send and Deliver return an error when the message was lost
// (an injected fault, or a socket round-trip that exhausted its
// RetryPolicy and surfaced rpc.ErrUnavailable); OpenBroadcast returns
// an error when the fan-out source could not be staged. The in-memory
// backends never fail (codec bugs still panic: bytes produced by the
// matching encoder in the same process can only fail to parse if the
// codec itself is broken). The simulators treat transfer errors as
// protocol events — a lost upload, an unreachable participant — never
// as panics.
//
// Marshalling time: Send and Broadcast.Deliver are called from inside
// the simulators' parallel regions (parx.ForEach), so the serializing
// backends' encode/decode (and socket round-trip) cost is spread
// across the worker pool. OpenBroadcast encodes — and, on socket,
// uploads — once, before the parallel region, and Deliver only
// downloads/decodes, mirroring a real server that serializes the
// global model once per round and fans the bytes out.
//
// Determinism: with compression off (the default), implementations
// must be value-transparent — the received set is bit-identical to the
// sent one, float64 survives the codec exactly. With an
// Options.Compression level set, every backend instead pushes each
// payload through the sparse+quantized CPQ1 codec (param.Set.
// WriteCompressedTo / DecodeFromRef): the received values differ from
// the sent ones by at most the codec's documented error bound
// (param.Compression.MaxError), but deterministically so — the same
// payload always decodes to the same values, on every backend (Inproc
// applies the same encode→decode round-trip the serializing backends
// do), so compressed runs are still byte-identical across backends and
// worker counts. Uploads sent while the round's broadcast is open are
// delta-coded against the broadcast source; compressed payloads must
// be finite and within the codec's ±1e300 range (a violation panics,
// like any other codec bug). All implementations must be safe for
// concurrent use; traffic counters are atomic sums, so totals are
// independent of worker interleaving. A transport
// must not source free-running randomness or reorder messages:
// delivery order stays the simulators' responsibility, and the Faulty
// wrapper draws every fault decision from counter-based streams keyed
// by (plan seed, round, participant) — pure functions, independent of
// scheduling and of the wrapped backend.
//
// Lifecycle: the creator of a transport owns it — the simulators never
// close the instance they are configured with. Close releases backend
// resources (the socket backends' connections, and the loopback mode's
// in-process server); Stats stays readable afterwards. Stats are
// accumulated per transport instance, so instances must not be shared
// between simulations.
package transport

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// RetryPolicy re-exports the RPC client's retry/timeout/backoff knobs
// so upper layers configure resilience without importing the rpc
// package.
type RetryPolicy = rpc.RetryPolicy

// DefaultRetryPolicy re-exports the RPC client's default policy.
func DefaultRetryPolicy() RetryPolicy { return rpc.DefaultRetryPolicy() }

// ParseRetryPolicy re-exports the RPC retry-spec parser (e.g.
// "attempts=6,backoff=5ms,timeout=2s").
func ParseRetryPolicy(spec string) (RetryPolicy, error) { return rpc.ParseRetryPolicy(spec) }

// Stats is a transport's accumulated traffic accounting.
type Stats struct {
	// Messages and Bytes count point-to-point sends (fed uploads,
	// gossip pushes) and their wire size.
	Messages int64
	Bytes    int64
	// BroadcastMessages and BroadcastBytes count per-receiver broadcast
	// deliveries (the fed global-model download).
	BroadcastMessages int64
	BroadcastBytes    int64
	// Chunks counts wire framing units (equal to Messages +
	// BroadcastMessages for unchunked backends, including socket, whose
	// RPC frames each carry a whole payload).
	Chunks int64
	// RawBytes and RawBroadcastBytes are the dense-codec sizes of the
	// same traffic (param.Set.WireBytes summed per transfer): what the
	// payloads would have cost without compression. With compression
	// off they equal Bytes/BroadcastBytes exactly; with it on, the
	// Bytes/RawBytes ratio is the measured wire saving.
	RawBytes          int64
	RawBroadcastBytes int64
	// RoundTrips counts completed RPC request/response exchanges and
	// Reconnects counts pooled connections replaced by a fresh dial
	// mid-call. Both stay 0 on the in-process backends.
	RoundTrips int64
	Reconnects int64
	// Retries, Timeouts and GaveUp are the RPC client's RetryPolicy
	// counters: extra attempts spent, attempts lost to I/O deadlines,
	// and round-trips that exhausted their attempts (surfacing
	// rpc.ErrUnavailable). All 0 on the in-process backends.
	Retries  int64
	Timeouts int64
	GaveUp   int64
	// InjectedFaults counts failures the Faulty wrapper injected
	// (lost sends, failed deliveries, participant blackouts).
	InjectedFaults int64
}

// Transport moves parameter sets between protocol participants. See
// the package documentation for the ownership, error, marshalling,
// determinism and lifecycle contract.
type Transport interface {
	// Name identifies the backend ("inproc", "wire", "socket",
	// "faulty:wire", ...).
	Name() string

	// Compression reports the payload codec the instance was built
	// with: the zero value is the dense float64 codec (the tolerance-0
	// golden reference), 8 or 16 bits selects the sparse+quantized
	// CPQ1 codec for every transfer. Fixed for the instance's lifetime.
	Compression() param.Compression

	// Send transmits a point-to-point payload from the given
	// participant in the given round, returning the set the receiver
	// observes. It consumes payload — success or not — and may draw the
	// returned set from pool; the caller owns the result and recycles
	// it into the same pool when the receiver is done. On error the
	// message was lost (injected fault or unreachable backend) and the
	// returned set is nil. Safe for concurrent use.
	Send(round, from int, payload *param.Set, pool *param.Buffers) (*param.Set, error)

	// OpenBroadcast prepares src for fan-out delivery to many receivers
	// in the given round. src is borrowed until Close and must not be
	// mutated while the broadcast is open. Deliver may be called
	// concurrently. On error no broadcast is open and the returned
	// handle is nil.
	OpenBroadcast(round int, src *param.Set) (Broadcast, error)

	// Stats returns the traffic accumulated by this instance.
	Stats() Stats

	// Close releases the backend's resources (connections, the loopback
	// server). The transport must not be used for transfers afterwards;
	// Stats remains readable. The socket backends return a typed error
	// (rpc.ErrClientClosed) on a second Close; the in-memory backends
	// hold no resources and their Close is a nil-returning no-op.
	Close() error
}

// Broadcast is one message delivered to many receivers.
type Broadcast interface {
	// Deliver installs the broadcast payload into receiver to's set,
	// whose structure must match the source's. On error the receiver
	// did not obtain the payload (injected fault or unreachable
	// backend) and dst is unspecified — the receiver must not use it.
	// Safe for concurrent use.
	Deliver(to int, dst *param.Set) error
	// Close releases the broadcast's resources.
	Close()
}

// counters is the shared atomic accounting embedded by every backend.
type counters struct {
	messages, bytes     atomic.Int64
	bMessages, bBytes   atomic.Int64
	chunks              atomic.Int64
	rawBytes, rawBBytes atomic.Int64
}

func (c *counters) Stats() Stats {
	return Stats{
		Messages:          c.messages.Load(),
		Bytes:             c.bytes.Load(),
		BroadcastMessages: c.bMessages.Load(),
		BroadcastBytes:    c.bBytes.Load(),
		Chunks:            c.chunks.Load(),
		RawBytes:          c.rawBytes.Load(),
		RawBroadcastBytes: c.rawBBytes.Load(),
	}
}

// Options carries the resilience configuration a backend is built
// with. The zero value selects the defaults everywhere.
type Options struct {
	// Plan, when non-nil, wraps the backend in a Faulty fault injector
	// driven by this plan (the "faulty:" name prefix does the same with
	// DefaultFaultPlan when Plan is nil).
	Plan *FaultPlan
	// Retry overrides the socket backends' RPC RetryPolicy (nil keeps
	// rpc.DefaultRetryPolicy). Ignored by the in-memory backends,
	// which cannot fail.
	Retry *RetryPolicy
	// Compression selects the payload codec for every backend: the
	// zero value keeps the dense float64 codec, 8 or 16 bits switches
	// all transfers to the sparse+quantized CPQ1 codec. Inproc applies
	// the same encode→decode round-trip the serializing backends do,
	// so a compressed run computes identical values on every backend.
	Compression param.Compression
}

func (o Options) retry() rpc.RetryPolicy {
	if o.Retry != nil {
		return *o.Retry
	}
	return rpc.RetryPolicy{}
}

// FaultyPrefix is the name prefix selecting the fault-injection
// wrapper: "faulty:<inner>" builds <inner> and wraps it in a Faulty.
const FaultyPrefix = "faulty:"

// Names lists the base backend names New accepts (the empty string
// selects inproc). Any of them can additionally be wrapped in the
// fault injector via the "faulty:" prefix, e.g. "faulty:wire".
func Names() []string {
	return []string{"inproc", "wire", "wire-chunked", "socket", "socket-tcp"}
}

// Known reports whether name selects a backend — a base name, the
// empty string (inproc), or a "faulty:"-prefixed base name. Use it to
// validate configuration without instantiating anything — New on a
// socket backend starts a loopback server.
func Known(name string) bool {
	name = strings.TrimPrefix(name, FaultyPrefix)
	if name == "" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New builds a fresh transport instance for a backend name: "inproc"
// (or ""), "wire", "wire-chunked" (wire with DefaultChunkBytes
// framing), "socket" (RPC over an in-process loopback Unix-domain
// socket server), "socket-tcp" (the same over loopback TCP), or any of
// those behind the "faulty:" fault-injection prefix. Each call returns
// an independent instance with its own stats; the caller owns the
// instance and Closes it when the simulation is done. To reach an
// external worker process instead of a loopback server, use Dial; to
// attach a FaultPlan or RetryPolicy, use NewOptions.
func New(name string) (Transport, error) {
	return NewOptions(name, Options{})
}

// NewOptions is New with explicit resilience options.
func NewOptions(name string, o Options) (Transport, error) {
	if err := o.Compression.Validate(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	inner, wrap := strings.CutPrefix(name, FaultyPrefix)
	var t Transport
	var err error
	switch inner {
	case "", "inproc":
		ip := NewInproc()
		ip.comp = o.Compression
		t = ip
	case "wire":
		w := NewWire()
		w.comp = o.Compression
		t = w
	case "wire-chunked":
		w := NewChunkedWire(DefaultChunkBytes)
		w.comp = o.Compression
		t = w
	case "socket":
		t, err = newLoopbackSocket("unix", o.retry(), o.Compression)
	case "socket-tcp":
		t, err = newLoopbackSocket("tcp", o.retry(), o.Compression)
	default:
		return nil, fmt.Errorf("transport: unknown backend %q (have %v, optionally behind %q)",
			name, Names(), FaultyPrefix)
	}
	if err != nil {
		return nil, err
	}
	return maybeFaulty(t, wrap, o.Plan), nil
}

// Dial connects a socket backend to an external RPC worker (a
// `ciaworker` process) instead of a loopback server: "socket" dials a
// Unix-domain socket path, "socket-tcp" a TCP host:port; both accept
// the "faulty:" prefix. The in-process backends have no address to
// dial and are rejected.
func Dial(name, addr string) (Transport, error) {
	return DialOptions(name, addr, Options{})
}

// DialOptions is Dial with explicit resilience options.
func DialOptions(name, addr string, o Options) (Transport, error) {
	if err := o.Compression.Validate(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	inner, wrap := strings.CutPrefix(name, FaultyPrefix)
	var t Transport
	var err error
	switch inner {
	case "socket":
		t, err = dialSocket("unix", addr, o.retry(), o.Compression)
	case "socket-tcp":
		t, err = dialSocket("tcp", addr, o.retry(), o.Compression)
	default:
		return nil, fmt.Errorf("transport: backend %q cannot dial an address (want socket or socket-tcp)", name)
	}
	if err != nil {
		return nil, err
	}
	return maybeFaulty(t, wrap, o.Plan), nil
}

// maybeFaulty wraps t in the fault injector when the name carried the
// "faulty:" prefix or an explicit plan was supplied.
func maybeFaulty(t Transport, wrap bool, plan *FaultPlan) Transport {
	if plan == nil {
		if !wrap {
			return t
		}
		p := DefaultFaultPlan()
		plan = &p
	}
	return NewFaulty(t, *plan)
}
