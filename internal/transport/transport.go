// Package transport carries every inter-participant parameter transfer
// of the protocol simulators: federated client→server uploads, the
// server→client global-model broadcast, and gossip node→neighbour
// pushes. It is the seam where the ROADMAP's multi-process / RPC round
// engine plugs in — the simulators speak only to the Transport
// interface, never to each other's memory.
//
// Four backends ship today:
//
//   - Inproc passes payload pointers through unchanged — the
//     historical in-memory behaviour, byte-identical to the
//     pre-transport simulators.
//   - Wire round-trips every payload through the binary codec
//     (param.Set WriteTo → pooled byte buffers → DecodeFrom),
//     optionally reading across fixed-size chunk frames ("wire" /
//     "wire-chunked"). It proves that a deployment which actually
//     serializes its traffic computes exactly the same models.
//   - Socket ("socket" over a Unix-domain socket, "socket-tcp" over
//     TCP) pushes every payload through the framed RPC protocol of
//     internal/transport/rpc against a real socket server: each Send
//     is a request/response round-trip carrying the codec bytes, each
//     broadcast is uploaded once and downloaded per receiver.
//     transport.New spins the server up in-process over a loopback
//     socket (the deterministic test/bench mode); transport.Dial
//     connects to an external `ciaworker` process so a round spans OS
//     process boundaries. Results remain byte-identical — the
//     cross-backend equivalence suites in internal/fed and
//     internal/gossip hold every backend to tolerance 0.
//
// # Contract
//
// Ownership: Send consumes its payload — the caller must not touch it
// afterwards. Inproc returns the same set; the serializing backends
// recycle the payload into the caller's param.Buffers pool and return
// a decoded copy drawn from that pool. Either way the caller owns the
// returned set and recycles it (pool.Put) once the receiver has
// consumed it. Broadcast handles borrow src only until Close.
//
// Marshalling time: Send and Broadcast.Deliver are called from inside
// the simulators' parallel regions (parx.ForEach), so the serializing
// backends' encode/decode (and socket round-trip) cost is spread
// across the worker pool. OpenBroadcast encodes — and, on socket,
// uploads — once, before the parallel region, and Deliver only
// downloads/decodes, mirroring a real server that serializes the
// global model once per round and fans the bytes out.
//
// Determinism: implementations must be value-transparent (the received
// set is bit-identical to the sent one — float64 survives the codec
// exactly) and safe for concurrent use; traffic counters are atomic
// sums, so totals are independent of worker interleaving. A transport
// must not source randomness or reorder messages: delivery order
// stays the simulators' responsibility (order-sensitive effects happen
// sequentially between parallel phases, indexed by item, per the
// internal/parx discipline).
//
// Lifecycle: the creator of a transport owns it — the simulators never
// close the instance they are configured with. Close releases backend
// resources (the socket backends' connections, and the loopback mode's
// in-process server); Stats stays readable afterwards. Stats are
// accumulated per transport instance, so instances must not be shared
// between simulations.
package transport

import (
	"fmt"
	"sync/atomic"

	"github.com/collablearn/ciarec/internal/param"
)

// Stats is a transport's accumulated traffic accounting.
type Stats struct {
	// Messages and Bytes count point-to-point sends (fed uploads,
	// gossip pushes) and their wire size.
	Messages int64
	Bytes    int64
	// BroadcastMessages and BroadcastBytes count per-receiver broadcast
	// deliveries (the fed global-model download).
	BroadcastMessages int64
	BroadcastBytes    int64
	// Chunks counts wire framing units (equal to Messages +
	// BroadcastMessages for unchunked backends, including socket, whose
	// RPC frames each carry a whole payload).
	Chunks int64
	// RoundTrips counts completed RPC request/response exchanges and
	// Reconnects counts pooled connections replaced by a fresh dial
	// mid-call. Both stay 0 on the in-process backends.
	RoundTrips int64
	Reconnects int64
}

// Transport moves parameter sets between protocol participants. See
// the package documentation for the ownership, marshalling,
// determinism and lifecycle contract.
type Transport interface {
	// Name identifies the backend ("inproc", "wire", "socket", ...).
	Name() string

	// Send transmits a point-to-point payload from the given
	// participant in the given round, returning the set the receiver
	// observes. It consumes payload and may draw the returned set from
	// pool; the caller owns the result and recycles it into the same
	// pool when the receiver is done. Safe for concurrent use.
	Send(round, from int, payload *param.Set, pool *param.Buffers) *param.Set

	// OpenBroadcast prepares src for fan-out delivery to many receivers
	// in the given round. src is borrowed until Close and must not be
	// mutated while the broadcast is open. Deliver may be called
	// concurrently.
	OpenBroadcast(round int, src *param.Set) Broadcast

	// Stats returns the traffic accumulated by this instance.
	Stats() Stats

	// Close releases the backend's resources (connections, the loopback
	// server). The transport must not be used for transfers afterwards;
	// Stats remains readable. The socket backends return a typed error
	// (rpc.ErrClientClosed) on a second Close; the in-memory backends
	// hold no resources and their Close is a nil-returning no-op.
	Close() error
}

// Broadcast is one message delivered to many receivers.
type Broadcast interface {
	// Deliver installs the broadcast payload into a receiver-owned set
	// whose structure matches the source's. Safe for concurrent use.
	Deliver(dst *param.Set)
	// Close releases the broadcast's resources.
	Close()
}

// counters is the shared atomic accounting embedded by every backend.
type counters struct {
	messages, bytes   atomic.Int64
	bMessages, bBytes atomic.Int64
	chunks            atomic.Int64
}

func (c *counters) Stats() Stats {
	return Stats{
		Messages:          c.messages.Load(),
		Bytes:             c.bytes.Load(),
		BroadcastMessages: c.bMessages.Load(),
		BroadcastBytes:    c.bBytes.Load(),
		Chunks:            c.chunks.Load(),
	}
}

// Names lists the backend names New accepts (the empty string selects
// inproc).
func Names() []string {
	return []string{"inproc", "wire", "wire-chunked", "socket", "socket-tcp"}
}

// Known reports whether name selects a backend (the empty string
// counts: it selects inproc). Use it to validate configuration without
// instantiating anything — New on a socket backend starts a loopback
// server.
func Known(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New builds a fresh transport instance for a backend name: "inproc"
// (or ""), "wire", "wire-chunked" (wire with DefaultChunkBytes
// framing), "socket" (RPC over an in-process loopback Unix-domain
// socket server) or "socket-tcp" (the same over loopback TCP). Each
// call returns an independent instance with its own stats; the caller
// owns the instance and Closes it when the simulation is done. To
// reach an external worker process instead of a loopback server, use
// Dial.
func New(name string) (Transport, error) {
	switch name {
	case "", "inproc":
		return NewInproc(), nil
	case "wire":
		return NewWire(), nil
	case "wire-chunked":
		return NewChunkedWire(DefaultChunkBytes), nil
	case "socket":
		return newLoopbackSocket("unix")
	case "socket-tcp":
		return newLoopbackSocket("tcp")
	}
	return nil, fmt.Errorf("transport: unknown backend %q (have %v)", name, Names())
}

// Dial connects a socket backend to an external RPC worker (a
// `ciaworker` process) instead of a loopback server: "socket" dials a
// Unix-domain socket path, "socket-tcp" a TCP host:port. The in-process
// backends have no address to dial and are rejected.
func Dial(name, addr string) (Transport, error) {
	switch name {
	case "socket":
		return dialSocket("unix", addr)
	case "socket-tcp":
		return dialSocket("tcp", addr)
	}
	return nil, fmt.Errorf("transport: backend %q cannot dial an address (want socket or socket-tcp)", name)
}
