// Package transport carries every inter-participant parameter transfer
// of the protocol simulators: federated client→server uploads, the
// server→client global-model broadcast, and gossip node→neighbour
// pushes. It is the seam where the ROADMAP's multi-process / RPC round
// engine plugs in — the simulators speak only to the Transport
// interface, never to each other's memory.
//
// Two backends ship today:
//
//   - Inproc passes payload pointers through unchanged — the
//     historical in-memory behaviour, byte-identical to the
//     pre-transport simulators.
//   - Wire round-trips every payload through the binary codec
//     (param.Set WriteTo → pooled byte buffers → DecodeFrom),
//     optionally reading across fixed-size chunk frames. It proves
//     that a deployment which actually serializes its traffic computes
//     exactly the same models: the cross-backend equivalence suites in
//     internal/fed and internal/gossip hold it to tolerance 0.
//
// # Contract
//
// Ownership: Send consumes its payload — the caller must not touch it
// afterwards. Inproc returns the same set; Wire recycles the payload
// into the caller's param.Buffers pool and returns a decoded copy
// drawn from that pool. Either way the caller owns the returned set
// and recycles it (pool.Put) once the receiver has consumed it.
// Broadcast handles borrow src only until Close.
//
// Marshalling time: Send and Broadcast.Deliver are called from inside
// the simulators' parallel regions (parx.ForEach), so the wire
// backend's encode/decode cost is spread across the worker pool.
// OpenBroadcast encodes once, before the parallel region, and Deliver
// only decodes — mirroring a real server that serializes the global
// model once per round and fans the bytes out.
//
// Determinism: implementations must be value-transparent (the received
// set is bit-identical to the sent one — float64 survives the codec
// exactly) and safe for concurrent use; traffic counters are atomic
// sums, so totals are independent of worker interleaving. A transport
// must not source randomness or reorder messages: delivery order
// stays the simulators' responsibility (order-sensitive effects happen
// sequentially between parallel phases, indexed by item, per the
// internal/parx discipline).
//
// Stats are accumulated per transport instance, so instances must not
// be shared between simulations.
package transport

import (
	"fmt"
	"sync/atomic"

	"github.com/collablearn/ciarec/internal/param"
)

// Stats is a transport's accumulated traffic accounting.
type Stats struct {
	// Messages and Bytes count point-to-point sends (fed uploads,
	// gossip pushes) and their wire size.
	Messages int64
	Bytes    int64
	// BroadcastMessages and BroadcastBytes count per-receiver broadcast
	// deliveries (the fed global-model download).
	BroadcastMessages int64
	BroadcastBytes    int64
	// Chunks counts wire framing units (equal to Messages +
	// BroadcastMessages for unchunked backends).
	Chunks int64
}

// Transport moves parameter sets between protocol participants. See
// the package documentation for the ownership, marshalling and
// determinism contract.
type Transport interface {
	// Name identifies the backend ("inproc", "wire", ...).
	Name() string

	// Send transmits a point-to-point payload, returning the set the
	// receiver observes. It consumes payload and may draw the returned
	// set from pool; the caller owns the result and recycles it into
	// the same pool when the receiver is done. Safe for concurrent use.
	Send(payload *param.Set, pool *param.Buffers) *param.Set

	// OpenBroadcast prepares src for fan-out delivery to many
	// receivers. src is borrowed until Close and must not be mutated
	// while the broadcast is open. Deliver may be called concurrently.
	OpenBroadcast(src *param.Set) Broadcast

	// Stats returns the traffic accumulated by this instance.
	Stats() Stats
}

// Broadcast is one message delivered to many receivers.
type Broadcast interface {
	// Deliver installs the broadcast payload into a receiver-owned set
	// whose structure matches the source's. Safe for concurrent use.
	Deliver(dst *param.Set)
	// Close releases the broadcast's resources.
	Close()
}

// counters is the shared atomic accounting embedded by every backend.
type counters struct {
	messages, bytes   atomic.Int64
	bMessages, bBytes atomic.Int64
	chunks            atomic.Int64
}

func (c *counters) Stats() Stats {
	return Stats{
		Messages:          c.messages.Load(),
		Bytes:             c.bytes.Load(),
		BroadcastMessages: c.bMessages.Load(),
		BroadcastBytes:    c.bBytes.Load(),
		Chunks:            c.chunks.Load(),
	}
}

// Names lists the backend names New accepts (the empty string selects
// inproc).
func Names() []string { return []string{"inproc", "wire", "wire-chunked"} }

// New builds a fresh transport instance for a backend name: "inproc"
// (or ""), "wire", or "wire-chunked" (wire with DefaultChunkBytes
// framing). Each call returns an independent instance with its own
// stats.
func New(name string) (Transport, error) {
	switch name {
	case "", "inproc":
		return NewInproc(), nil
	case "wire":
		return NewWire(), nil
	case "wire-chunked":
		return NewChunkedWire(DefaultChunkBytes), nil
	}
	return nil, fmt.Errorf("transport: unknown backend %q (have %v)", name, Names())
}
