package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/collablearn/ciarec/internal/param"
)

// chaosPlan is a representative mixed-fault scenario used across the
// wrapper tests: every family active at a rate that fires within a few
// hundred (round, participant) cells.
func chaosPlan() FaultPlan {
	return FaultPlan{
		Seed:              3,
		DropProb:          0.15,
		SendLossProb:      0.15,
		DeliverLossProb:   0.15,
		BroadcastFailProb: 0.1,
		SlowProb:          0.3,
		SlowLatency:       500 * time.Millisecond,
	}
}

// Every fault decision must be a pure function of (seed, family,
// round, participant): repeated queries agree, and a different seed
// produces a different schedule.
func TestFaultPlanDeterminism(t *testing.T) {
	p := chaosPlan()
	q := p
	q.Seed = 4
	var same, diff int
	for round := 0; round < 40; round++ {
		for id := 0; id < 20; id++ {
			a := [4]bool{p.Unreachable(round, id), p.SendLost(round, id), p.DeliverLost(round, id), p.Slow(round, id)}
			b := [4]bool{p.Unreachable(round, id), p.SendLost(round, id), p.DeliverLost(round, id), p.Slow(round, id)}
			if a != b {
				t.Fatalf("fault decision not deterministic at round %d id %d", round, id)
			}
			c := [4]bool{q.Unreachable(round, id), q.SendLost(round, id), q.DeliverLost(round, id), q.Slow(round, id)}
			if a == c {
				same++
			} else {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed never changed the fault schedule")
	}
}

// Enabling one fault family must not shift another family's decisions:
// each family draws from its own counter-based stream.
func TestFaultPlanFamilyIndependence(t *testing.T) {
	base := FaultPlan{Seed: 9, DropProb: 0.2}
	more := base
	more.SendLossProb = 0.5
	more.DeliverLossProb = 0.5
	more.SlowProb = 0.5
	for round := 0; round < 50; round++ {
		for id := 0; id < 20; id++ {
			if base.Unreachable(round, id) != more.Unreachable(round, id) {
				t.Fatalf("enabling other families shifted Unreachable at round %d id %d", round, id)
			}
		}
	}
}

// FromRound/ToRound bound the active window; outside it nothing fires.
func TestFaultPlanWindow(t *testing.T) {
	p := FaultPlan{Seed: 1, DropProb: 1, FromRound: 2, ToRound: 5}
	for round := 0; round < 8; round++ {
		want := round >= 2 && round < 5
		if got := p.Unreachable(round, 0); got != want {
			t.Fatalf("round %d: Unreachable = %v, want %v", round, got, want)
		}
	}
	// ToRound == 0 means "no upper bound".
	open := FaultPlan{Seed: 1, DropProb: 1, FromRound: 3}
	if open.Unreachable(2, 0) || !open.Unreachable(1000, 0) {
		t.Fatal("open-ended window misbehaved")
	}
}

// Latency is BaseLatency plus SlowLatency exactly when Slow fires.
func TestFaultPlanLatency(t *testing.T) {
	p := FaultPlan{Seed: 5, SlowProb: 0.5, BaseLatency: 10 * time.Millisecond, SlowLatency: 300 * time.Millisecond}
	var slow, fast int
	for id := 0; id < 50; id++ {
		want := p.BaseLatency
		if p.Slow(0, id) {
			want += p.SlowLatency
			slow++
		} else {
			fast++
		}
		if got := p.Latency(0, id); got != want {
			t.Fatalf("id %d: latency %v, want %v", id, got, want)
		}
	}
	if slow == 0 || fast == 0 {
		t.Fatalf("SlowProb=0.5 over 50 ids drew slow=%d fast=%d — stream looks degenerate", slow, fast)
	}
}

// String must render a form ParseFaultPlan reads back verbatim.
func TestFaultPlanStringRoundTrip(t *testing.T) {
	plans := []FaultPlan{
		{Seed: 7},
		chaosPlan(),
		DefaultFaultPlan(),
		{Seed: 2, DropProb: 0.5, BaseLatency: time.Millisecond, FromRound: 1, ToRound: 9, RealSleep: true},
	}
	for _, p := range plans {
		got, err := ParseFaultPlan(p.String())
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip of %q: got %+v, want %+v", p.String(), got, p)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	if p, err := ParseFaultPlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: plan %+v err %v, want inactive zero plan", p, err)
	}
	if p, err := ParseFaultPlan("default"); err != nil || p != DefaultFaultPlan() {
		t.Fatalf("'default' spec: plan %+v err %v", p, err)
	}
	p, err := ParseFaultPlan("seed=7,drop=0.1,slow=0.2,slow-latency=1s,from=2,to=8,real-sleep")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{Seed: 7, DropProb: 0.1, SlowProb: 0.2, SlowLatency: time.Second, FromRound: 2, ToRound: 8, RealSleep: true}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	for _, bad := range []string{
		"drop",           // no value
		"drop=1.5",       // probability out of range
		"drop=-0.1",      // probability out of range
		"drop=x",         // not a number
		"slow-latency=9", // not a duration
		"warp=0.5",       // unknown key
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted a bad spec", bad)
		}
	}
}

// A certain-loss plan must convert every transfer into an ErrInjected
// failure, recycle the payload into the pool, and count the injection —
// without the inner backend seeing any traffic.
func TestFaultyInjectsAndRecycles(t *testing.T) {
	tr := NewFaulty(NewInproc(), FaultPlan{Seed: 1, SendLossProb: 1})
	var pool param.Buffers
	payload := testSet(1)
	got, err := tr.Send(0, 4, payload, &pool)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Send under certain loss = (%v, %v), want ErrInjected", got, err)
	}
	if got != nil {
		t.Fatal("failed Send must return a nil set")
	}
	// The payload went back to the pool: a shaped Get must find it.
	// Not assertable under -race, whose runtime drops random pool puts.
	if reused := pool.GetShaped(payload); reused == nil && !raceEnabled {
		t.Fatal("failed Send did not recycle the payload into the pool")
	}
	st := tr.Stats()
	if st.InjectedFaults != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", st.InjectedFaults)
	}
	if st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("inner backend saw traffic despite certain loss: %+v", st)
	}
}

func TestFaultyBroadcastFailure(t *testing.T) {
	tr := NewFaulty(NewInproc(), FaultPlan{Seed: 1, BroadcastFailProb: 1})
	bc, err := tr.OpenBroadcast(0, testSet(2))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("OpenBroadcast under certain failure = (%v, %v), want ErrInjected", bc, err)
	}
	if tr.Stats().InjectedFaults != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", tr.Stats().InjectedFaults)
	}
}

func TestFaultyDeliverFailure(t *testing.T) {
	tr := NewFaulty(NewWire(), FaultPlan{Seed: 1, DeliverLossProb: 1})
	src := testSet(2)
	bc, err := tr.OpenBroadcast(0, src)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	dst := testSet(0)
	if err := bc.Deliver(3, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("Deliver under certain loss = %v, want ErrInjected", err)
	}
	st := tr.Stats()
	if st.InjectedFaults != 1 || st.BroadcastMessages != 0 {
		t.Fatalf("stats after injected delivery loss: %+v", st)
	}
}

// The wrapper injects the identical fault schedule over every inner
// backend, and the surviving transfers stay value-transparent: the
// per-(round, participant) outcome grid is equal across inproc, wire
// and socket under the same plan.
func TestFaultyScheduleBackendIndependent(t *testing.T) {
	plan := chaosPlan()
	type outcome struct {
		sendOK, deliverOK bool
	}
	record := func(backend string) ([]outcome, int64) {
		tr, err := NewOptions(FaultyPrefix+backend, Options{Plan: &plan})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if want := FaultyPrefix + backend; tr.Name() != want {
			t.Fatalf("Name() = %q, want %q", tr.Name(), want)
		}
		var pool param.Buffers
		var grid []outcome
		for round := 0; round < 12; round++ {
			bc, err := tr.OpenBroadcast(round, testSet(2))
			for id := 0; id < 8; id++ {
				var o outcome
				if err == nil {
					dst := testSet(0)
					o.deliverOK = bc.Deliver(id, dst) == nil
					if o.deliverOK && !param.Equal(testSet(2), dst, 0) {
						t.Fatalf("%s: surviving delivery corrupted values", backend)
					}
				}
				got, serr := tr.Send(round, id, testSet(1), &pool)
				o.sendOK = serr == nil
				if o.sendOK {
					if !param.Equal(testSet(1), got, 0) {
						t.Fatalf("%s: surviving send corrupted values", backend)
					}
					pool.Put(got)
				}
				grid = append(grid, o)
			}
			if err == nil {
				bc.Close()
			}
		}
		return grid, tr.Stats().InjectedFaults
	}
	refGrid, refInjected := record("inproc")
	if refInjected == 0 {
		t.Fatal("chaos plan injected nothing over 12 rounds × 8 participants")
	}
	var survived bool
	for _, o := range refGrid {
		if o.sendOK || o.deliverOK {
			survived = true
			break
		}
	}
	if !survived {
		t.Fatal("chaos plan killed every transfer — schedule looks degenerate")
	}
	for _, backend := range []string{"wire", "socket"} {
		grid, injected := record(backend)
		if injected != refInjected {
			t.Fatalf("%s injected %d faults, inproc injected %d", backend, injected, refInjected)
		}
		for i := range refGrid {
			if grid[i] != refGrid[i] {
				t.Fatalf("%s: fault schedule diverges from inproc at cell %d: %+v vs %+v",
					backend, i, grid[i], refGrid[i])
			}
		}
	}
}

// The "faulty:" prefix must thread through New, Known and Names-based
// validation; an explicit Options.Plan wraps even without the prefix.
func TestFaultyConstruction(t *testing.T) {
	for _, base := range Names() {
		name := FaultyPrefix + base
		if !Known(name) {
			t.Fatalf("Known(%q) = false", name)
		}
		tr, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		f, ok := tr.(*Faulty)
		if !ok {
			t.Fatalf("New(%q) is %T, want *Faulty", name, tr)
		}
		if f.Plan() != DefaultFaultPlan() {
			t.Fatalf("bare prefix must select DefaultFaultPlan, got %+v", f.Plan())
		}
		if f.Inner().Name() != base {
			t.Fatalf("inner backend = %q, want %q", f.Inner().Name(), base)
		}
		tr.Close()
	}
	if _, err := New(FaultyPrefix + "carrier-pigeon"); err == nil {
		t.Fatal("faulty over an unknown backend must error")
	}
	plan := FaultPlan{Seed: 2, DropProb: 0.5}
	tr, err := NewOptions("wire", Options{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	f, ok := tr.(*Faulty)
	if !ok || f.Plan() != plan {
		t.Fatalf("explicit plan did not wrap: %T", tr)
	}
}

// RealSleep burns the virtual latency as wall time inside Send.
func TestFaultyRealSleep(t *testing.T) {
	plan := FaultPlan{Seed: 1, BaseLatency: 30 * time.Millisecond, RealSleep: true}
	tr := NewFaulty(NewInproc(), plan)
	var pool param.Buffers
	start := time.Now()
	if _, err := tr.Send(0, 0, testSet(1), &pool); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < plan.BaseLatency {
		t.Fatalf("RealSleep send took %v, want >= %v", elapsed, plan.BaseLatency)
	}
}

// Example-style check that the documented spec grammar keeps parsing.
func TestFaultPlanSpecExamples(t *testing.T) {
	for _, spec := range []string{
		"seed=7,drop=0.05,send-loss=0.05,slow=0.1,slow-latency=500ms",
		"seed=1,bcast-fail=0.02,deliver-loss=0.1,base-latency=5ms",
		"default",
	} {
		if _, err := ParseFaultPlan(spec); err != nil {
			t.Fatalf("documented spec %q no longer parses: %v", spec, err)
		}
	}
	// String of a parsed spec must parse again (idempotence).
	p, _ := ParseFaultPlan("seed=7,drop=0.05,slow=0.1,slow-latency=500ms")
	q, err := ParseFaultPlan(p.String())
	if err != nil || q != p {
		t.Fatalf("String/Parse idempotence broke: %v (%+v vs %+v)", err, q, p)
	}
	_ = fmt.Sprintf("%s", p) // String must not panic on partially-filled plans
}
