package transport

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/collablearn/ciarec/internal/param"
)

// compressor is the codec-selection state shared by the concrete
// backends: the configured Compression level and, while a broadcast is
// open, the round's broadcast source — the delta reference point-to-
// point uploads are coded against.
//
// The reference is published with an atomic pointer because the
// simulators call Send from inside their parallel regions while the
// broadcast stays open (OpenBroadcast before the region, Broadcast.
// Close after): setRef/clearRef run on the round's sequential spine,
// sendRef on worker goroutines. Encode and decode happen on the same
// transport instance (the socket server only relays bytes), so both
// sides always resolve the same reference.
type compressor struct {
	comp param.Compression
	bref atomic.Pointer[bcastRef]
}

// bcastRef pins a broadcast source to its round so a stale reference
// can never leak across rounds.
type bcastRef struct {
	round int
	src   *param.Set
}

// Compression implements Transport.
func (c *compressor) Compression() param.Compression { return c.comp }

// sendRef returns the delta reference for a point-to-point send in the
// given round: the round's open broadcast source, when one is open. A
// send outside a broadcast window (gossip pushes, fed rounds after
// Broadcast.Close) is coded absolute.
func (c *compressor) sendRef(round int) *param.Set {
	if ref := c.bref.Load(); ref != nil && ref.round == round {
		return ref.src
	}
	return nil
}

// setRef publishes src as the round's delta reference (no-op with
// compression off — the dense codec takes no reference).
func (c *compressor) setRef(round int, src *param.Set) {
	if c.comp.Enabled() {
		c.bref.Store(&bcastRef{round: round, src: src})
	}
}

// clearRef withdraws the published reference at Broadcast.Close, when
// the borrowed source may be mutated again.
func (c *compressor) clearRef() {
	if c.comp.Enabled() {
		c.bref.Store(nil)
	}
}

// encodeSet marshals s for the wire — dense CPS1 with compression off,
// sparse/quantized CPQ1 (delta-coded against ref when non-nil) with it
// on — and returns the encoded length. Panics on encoder errors: the
// payload comes from the simulators in the same process, so a
// non-finite or out-of-range value is a bug upstream, not a runtime
// condition (see the package determinism contract).
func (c *compressor) encodeSet(buf io.Writer, s, ref *param.Set) int64 {
	if !c.comp.Enabled() {
		n, err := s.WriteTo(buf)
		if err != nil {
			panic(fmt.Sprintf("transport: encode: %v", err))
		}
		return n
	}
	n, err := s.WriteCompressedTo(buf, c.comp, ref)
	if err != nil {
		panic(fmt.Sprintf("transport: compressed encode: %v", err))
	}
	return n
}
