package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// ErrInjected tags transfer failures manufactured by the Faulty
// wrapper, so tests and simulators can distinguish injected chaos from
// a genuinely unreachable backend.
var ErrInjected = errors.New("transport: injected fault")

// Fault-decision stream tags. Each fault family draws from its own
// counter-based stream so enabling one probability never shifts
// another family's decisions.
const (
	faultTagDrop uint64 = iota + 1
	faultTagSendLoss
	faultTagDeliverLoss
	faultTagBcast
	faultTagSlow
)

// FaultPlan is a declarative, seed-driven failure scenario. Every
// decision — is participant p unreachable in round r, is this send
// lost, how slow is this client — is a pure function of (Seed, fault
// family, round, participant), computed with the same counter-based
// stream derivation (mathx.StreamSeeds) the simulators use for their
// own randomness. A plan therefore injects the identical fault
// schedule regardless of backend, worker count, or scheduling, and a
// (seed, plan) pair reproduces a chaos run exactly.
//
// Latencies are virtual by default: Latency reports how slow a
// participant is this round, and the simulators compare it against
// their straggler deadline as a logical quantity — no wall-clock
// sleeping, so chaos suites run at full speed and stay deterministic.
// RealSleep additionally burns the latency as wall time inside the
// wrapper, for exercising real deadline expiry.
type FaultPlan struct {
	// Seed drives every fault decision stream (0 is a valid seed).
	Seed uint64
	// DropProb is the per-(round, participant) probability of a full
	// blackout: every send from and every broadcast delivery to the
	// participant fails that round.
	DropProb float64
	// SendLossProb and DeliverLossProb independently lose individual
	// point-to-point sends (keyed by sender) and broadcast deliveries
	// (keyed by receiver) on top of blackouts.
	SendLossProb    float64
	DeliverLossProb float64
	// BroadcastFailProb fails OpenBroadcast for a whole round — on fed,
	// a blackout round where no client receives the global model.
	BroadcastFailProb float64
	// SlowProb marks a (round, participant) as a straggler; its Latency
	// is BaseLatency + SlowLatency instead of BaseLatency.
	SlowProb    float64
	BaseLatency time.Duration
	SlowLatency time.Duration
	// FromRound and ToRound bound the active window: faults inject only
	// in rounds r with FromRound <= r and (ToRound == 0 or r < ToRound).
	FromRound int
	ToRound   int
	// RealSleep burns Latency as wall-clock sleep inside the wrapper's
	// Send/Deliver, in addition to reporting it virtually.
	RealSleep bool
}

// DefaultFaultPlan is the scenario behind the bare "faulty:" prefix:
// moderate blackout, loss and straggler rates from seed 1, active in
// every round, virtual latency only.
func DefaultFaultPlan() FaultPlan {
	return FaultPlan{
		Seed:            1,
		DropProb:        0.05,
		SendLossProb:    0.05,
		DeliverLossProb: 0.05,
		SlowProb:        0.1,
		SlowLatency:     500 * time.Millisecond,
	}
}

// active reports whether the plan injects faults in the given round.
func (p FaultPlan) active(round int) bool {
	return round >= p.FromRound && (p.ToRound == 0 || round < p.ToRound)
}

// draw is the shared Bernoulli decision: a pure function of (Seed,
// tag, round, id) with probability prob.
func (p FaultPlan) draw(tag uint64, round, id int, prob float64) bool {
	if prob <= 0 || !p.active(round) {
		return false
	}
	lo, _ := mathx.StreamSeeds(p.Seed, tag, uint64(round), uint64(id))
	return float64(lo>>11)/(1<<53) < prob
}

// Unreachable reports whether the participant is blacked out for the
// whole round (sends from it and deliveries to it all fail).
func (p FaultPlan) Unreachable(round, id int) bool {
	return p.draw(faultTagDrop, round, id, p.DropProb)
}

// SendLost reports whether the sender's point-to-point message in this
// round is lost (independently of blackouts).
func (p FaultPlan) SendLost(round, from int) bool {
	return p.draw(faultTagSendLoss, round, from, p.SendLossProb)
}

// DeliverLost reports whether the receiver's broadcast download in
// this round is lost (independently of blackouts).
func (p FaultPlan) DeliverLost(round, to int) bool {
	return p.draw(faultTagDeliverLoss, round, to, p.DeliverLossProb)
}

// BroadcastFails reports whether the round's broadcast open fails
// outright.
func (p FaultPlan) BroadcastFails(round int) bool {
	return p.draw(faultTagBcast, round, 0, p.BroadcastFailProb)
}

// Slow reports whether the participant is a straggler this round.
func (p FaultPlan) Slow(round, id int) bool {
	return p.draw(faultTagSlow, round, id, p.SlowProb)
}

// Latency returns the participant's virtual latency for the round:
// BaseLatency, plus SlowLatency when Slow. Simulators compare it
// against their straggler deadline as a logical quantity.
func (p FaultPlan) Latency(round, id int) time.Duration {
	d := p.BaseLatency
	if p.Slow(round, id) {
		d += p.SlowLatency
	}
	return d
}

// Enabled reports whether the plan can inject anything at all.
func (p FaultPlan) Enabled() bool {
	return p.DropProb > 0 || p.SendLossProb > 0 || p.DeliverLossProb > 0 ||
		p.BroadcastFailProb > 0 || p.SlowProb > 0 || p.BaseLatency > 0
}

// String renders the plan in the form ParseFaultPlan accepts.
func (p FaultPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	add := func(k string, v float64) {
		if v > 0 {
			fmt.Fprintf(&b, ",%s=%g", k, v)
		}
	}
	add("drop", p.DropProb)
	add("send-loss", p.SendLossProb)
	add("deliver-loss", p.DeliverLossProb)
	add("bcast-fail", p.BroadcastFailProb)
	add("slow", p.SlowProb)
	if p.BaseLatency > 0 {
		fmt.Fprintf(&b, ",base-latency=%s", p.BaseLatency)
	}
	if p.SlowLatency > 0 {
		fmt.Fprintf(&b, ",slow-latency=%s", p.SlowLatency)
	}
	if p.FromRound > 0 {
		fmt.Fprintf(&b, ",from=%d", p.FromRound)
	}
	if p.ToRound > 0 {
		fmt.Fprintf(&b, ",to=%d", p.ToRound)
	}
	if p.RealSleep {
		b.WriteString(",real-sleep")
	}
	return b.String()
}

// ParseFaultPlan parses a comma-separated key=value fault spec, e.g.
// "seed=7,drop=0.1,slow=0.2,slow-latency=1s,from=2,to=8". The bare
// flag "real-sleep" takes no value; "default" selects DefaultFaultPlan
// verbatim. Probabilities must lie in [0, 1]. An empty string is the
// zero (inactive) plan.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	if spec == "default" {
		return DefaultFaultPlan(), nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "real-sleep" {
			p.RealSleep = true
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("transport: fault spec %q: want key=value", kv)
		}
		var err error
		prob := func() (f float64) {
			f, err = strconv.ParseFloat(v, 64)
			if err == nil && (f < 0 || f > 1) {
				err = fmt.Errorf("probability %g outside [0, 1]", f)
			}
			return f
		}
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "drop":
			p.DropProb = prob()
		case "send-loss":
			p.SendLossProb = prob()
		case "deliver-loss":
			p.DeliverLossProb = prob()
		case "bcast-fail":
			p.BroadcastFailProb = prob()
		case "slow":
			p.SlowProb = prob()
		case "base-latency":
			p.BaseLatency, err = time.ParseDuration(v)
		case "slow-latency":
			p.SlowLatency, err = time.ParseDuration(v)
		case "from":
			p.FromRound, err = strconv.Atoi(v)
		case "to":
			p.ToRound, err = strconv.Atoi(v)
		default:
			return p, fmt.Errorf("transport: fault spec: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("transport: fault spec %q: %w", kv, err)
		}
	}
	return p, nil
}

// Faulty injects a FaultPlan's failures in front of any inner
// transport: lost sends and deliveries surface as transfer errors
// (wrapping ErrInjected) before the inner backend is touched, so the
// same chaos schedule applies identically over inproc, wire and
// socket. Successful transfers delegate unchanged — a faulty run's
// surviving traffic is still byte-identical across backends.
type Faulty struct {
	inner    Transport
	plan     FaultPlan
	injected atomic.Int64
}

var _ Transport = (*Faulty)(nil)

// NewFaulty wraps inner with plan-driven fault injection.
func NewFaulty(inner Transport, plan FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Plan returns the wrapper's fault plan.
func (t *Faulty) Plan() FaultPlan { return t.plan }

// Inner returns the wrapped transport.
func (t *Faulty) Inner() Transport { return t.inner }

// Name implements Transport.
func (t *Faulty) Name() string { return FaultyPrefix + t.inner.Name() }

// Compression implements Transport, reporting the inner backend's
// payload codec (the wrapper injects losses, not bytes).
func (t *Faulty) Compression() param.Compression { return t.inner.Compression() }

// Stats implements Transport: the inner backend's traffic plus the
// injected-fault count (lost transfers are not counted as traffic —
// they never reached the inner backend).
func (t *Faulty) Stats() Stats {
	st := t.inner.Stats()
	st.InjectedFaults = t.injected.Load()
	return st
}

// Close implements Transport, closing the inner backend.
func (t *Faulty) Close() error { return t.inner.Close() }

// inject counts one manufactured failure and builds its error.
func (t *Faulty) inject(what string, round, id int) error {
	t.injected.Add(1)
	return fmt.Errorf("transport: %w: %s round %d participant %d", ErrInjected, what, round, id)
}

// Send implements Transport: the message is lost when the sender is
// blacked out or the plan loses this send; otherwise it delegates.
// Either way the payload is consumed.
func (t *Faulty) Send(round, from int, payload *param.Set, pool *param.Buffers) (*param.Set, error) {
	if t.plan.RealSleep {
		if d := t.plan.Latency(round, from); d > 0 {
			time.Sleep(d)
		}
	}
	if t.plan.Unreachable(round, from) {
		pool.Put(payload)
		return nil, t.inject("send from unreachable participant", round, from)
	}
	if t.plan.SendLost(round, from) {
		pool.Put(payload)
		return nil, t.inject("send lost", round, from)
	}
	return t.inner.Send(round, from, payload, pool)
}

// OpenBroadcast implements Transport: a failed round opens nothing;
// otherwise deliveries are filtered per receiver.
func (t *Faulty) OpenBroadcast(round int, src *param.Set) (Broadcast, error) {
	if t.plan.BroadcastFails(round) {
		return nil, t.inject("broadcast open failed", round, 0)
	}
	inner, err := t.inner.OpenBroadcast(round, src)
	if err != nil {
		return nil, err
	}
	return &faultyBroadcast{t: t, round: round, inner: inner}, nil
}

type faultyBroadcast struct {
	t     *Faulty
	round int
	inner Broadcast
}

// Deliver fails when the receiver is blacked out or the plan loses
// this delivery; otherwise it delegates.
func (b *faultyBroadcast) Deliver(to int, dst *param.Set) error {
	if b.t.plan.RealSleep {
		if d := b.t.plan.Latency(b.round, to); d > 0 {
			time.Sleep(d)
		}
	}
	if b.t.plan.Unreachable(b.round, to) {
		return b.t.inject("delivery to unreachable participant", b.round, to)
	}
	if b.t.plan.DeliverLost(b.round, to) {
		return b.t.inject("delivery lost", b.round, to)
	}
	return b.inner.Deliver(to, dst)
}

func (b *faultyBroadcast) Close() { b.inner.Close() }
