package transport

import "testing"

func TestResilienceChurnPlanRoundTrip(t *testing.T) {
	plans := []ChurnPlan{
		{},
		DefaultChurnPlan(),
		{Seed: 5, InitialFraction: 0.8, LeaveProb: 0.25, JoinProb: 0.5, StaleBound: 2},
		{Seed: 9, LeaveProb: 0.1, FromRound: 2, ToRound: 8},
	}
	for _, p := range plans {
		got, err := ParseChurnPlan(p.String())
		if err != nil {
			t.Fatalf("ParseChurnPlan(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip of %q: got %+v want %+v", p.String(), got, p)
		}
	}
	if got, err := ParseChurnPlan("default"); err != nil || got != DefaultChurnPlan() {
		t.Errorf("ParseChurnPlan(default) = %+v, %v", got, err)
	}
	if got, err := ParseChurnPlan(""); err != nil || got.Enabled() {
		t.Errorf("empty spec should be the disabled plan, got %+v, %v", got, err)
	}
}

func TestResilienceChurnPlanParseErrors(t *testing.T) {
	for _, spec := range []string{
		"leave",           // no value
		"leave=2",         // probability out of range
		"join=-0.5",       // probability out of range
		"frobnicate=1",    // unknown key
		"seed=notanumber", // bad uint
		"stale-bound=-3",  // negative bound
	} {
		if _, err := ParseChurnPlan(spec); err == nil {
			t.Errorf("ParseChurnPlan(%q): want error, got nil", spec)
		}
	}
}

// TestResilienceChurnDecisionsPure pins the stream-independence
// contract: decisions are pure functions of (seed, family, round, id),
// so recomputing them gives identical answers, and changing one
// family's probability never shifts another family's schedule.
func TestResilienceChurnDecisionsPure(t *testing.T) {
	p := ChurnPlan{Seed: 7, InitialFraction: 0.5, LeaveProb: 0.3, JoinProb: 0.4}
	q := p
	q.LeaveProb = 0.9 // must not move the join or initial streams
	for id := 0; id < 200; id++ {
		if p.InitiallyPresent(id) != p.InitiallyPresent(id) {
			t.Fatalf("InitiallyPresent(%d) not stable", id)
		}
		if p.InitiallyPresent(id) != q.InitiallyPresent(id) {
			t.Fatalf("InitiallyPresent(%d) shifted by LeaveProb change", id)
		}
		for round := 0; round < 20; round++ {
			if p.Leaves(round, id) != p.Leaves(round, id) {
				t.Fatalf("Leaves(%d,%d) not stable", round, id)
			}
			if p.Joins(round, id) != q.Joins(round, id) {
				t.Fatalf("Joins(%d,%d) shifted by LeaveProb change", round, id)
			}
		}
	}
}

func TestResilienceChurnPlanWindow(t *testing.T) {
	p := ChurnPlan{Seed: 3, LeaveProb: 1, JoinProb: 1, FromRound: 2, ToRound: 4}
	for _, round := range []int{0, 1, 4, 5} {
		if p.Leaves(round, 0) || p.Joins(round, 0) {
			t.Errorf("round %d outside window [2,4) should be quiet", round)
		}
	}
	for _, round := range []int{2, 3} {
		if !p.Leaves(round, 0) || !p.Joins(round, 0) {
			t.Errorf("round %d inside window should fire with prob 1", round)
		}
	}
	// Initial presence ignores the window.
	q := ChurnPlan{Seed: 3, InitialFraction: 0.5, FromRound: 5}
	var present int
	for id := 0; id < 400; id++ {
		if q.InitiallyPresent(id) {
			present++
		}
	}
	if present == 0 || present == 400 {
		t.Errorf("InitialFraction=0.5 with FromRound=5: got %d/400 present", present)
	}
}

// TestResilienceMembershipFold replays the pure decision functions
// against the Membership fold: presence, staleness and the
// join/leave/rejoin counters must match the replay exactly.
func TestResilienceMembershipFold(t *testing.T) {
	const n, rounds = 120, 12
	plan := ChurnPlan{Seed: 11, InitialFraction: 0.7, LeaveProb: 0.2, JoinProb: 0.35}
	m := NewMembership(plan, n)

	// Independent replay of the same decisions.
	present := make([]bool, n)
	ever := make([]bool, n)
	last := make([]int, n)
	for id := range present {
		last[id] = -1
		present[id] = plan.InitiallyPresent(id)
		ever[id] = present[id]
	}
	var joins, leaves, rejoins int64
	for round := 0; round < rounds; round++ {
		wantStale := make([]int, n)
		for id := 0; id < n; id++ {
			if present[id] {
				if plan.Leaves(round, id) {
					present[id] = false
					leaves++
				}
			} else if plan.Joins(round, id) {
				present[id] = true
				joins++
				if ever[id] {
					rejoins++
					if last[id] >= 0 {
						wantStale[id] = round - last[id]
					}
				}
				ever[id] = true
			}
			if present[id] {
				last[id] = round
			}
		}
		m.Advance(round)
		var wantAlive int
		for id := 0; id < n; id++ {
			if m.Present(id) != present[id] {
				t.Fatalf("round %d id %d: Present=%v, replay says %v", round, id, m.Present(id), present[id])
			}
			if m.RejoinStaleness(id) != wantStale[id] {
				t.Fatalf("round %d id %d: staleness %d, replay says %d", round, id, m.RejoinStaleness(id), wantStale[id])
			}
			if present[id] {
				wantAlive++
			}
		}
		if m.NumPresent() != wantAlive {
			t.Fatalf("round %d: NumPresent=%d, replay says %d", round, m.NumPresent(), wantAlive)
		}
		ids := m.AppendPresent(nil)
		if len(ids) != wantAlive {
			t.Fatalf("round %d: AppendPresent returned %d ids, want %d", round, len(ids), wantAlive)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("round %d: AppendPresent not ascending: %v", round, ids)
			}
		}
	}
	if m.Joins() != joins || m.Leaves() != leaves || m.Rejoins() != rejoins {
		t.Errorf("counters joins/leaves/rejoins = %d/%d/%d, replay says %d/%d/%d",
			m.Joins(), m.Leaves(), m.Rejoins(), joins, leaves, rejoins)
	}
	if joins == 0 || leaves == 0 || rejoins == 0 {
		t.Errorf("scenario too quiet to be a real test: joins=%d leaves=%d rejoins=%d", joins, leaves, rejoins)
	}
}

func TestResilienceMembershipAdvanceOutOfOrder(t *testing.T) {
	m := NewMembership(DefaultChurnPlan(), 4)
	m.Advance(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(2) after Advance(0) should panic")
		}
	}()
	m.Advance(2)
}
