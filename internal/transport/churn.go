package transport

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/collablearn/ciarec/internal/mathx"
)

// Churn-decision stream tags. Disjoint from the fault tags so a
// combined (FaultPlan, ChurnPlan) scenario sharing a seed still draws
// every family from its own stream.
const (
	churnTagInitial uint64 = iota + 0x10
	churnTagLeave
	churnTagJoin
)

// ChurnPlan is the participant-dynamics sibling of FaultPlan: a
// declarative, seed-driven membership scenario. Every join, leave and
// rejoin decision is a pure function of (Seed, churn family, round,
// participant) via the same counter-based stream derivation
// (mathx.StreamSeeds) the simulators use — so a plan produces the
// identical membership trajectory regardless of backend, worker count
// or scheduling, and consumes no simulator RNG: a nil (or disabled)
// plan is byte-identical to no churn at all.
//
// Semantics are defined by Membership (the per-run fold of these
// decisions): a present participant leaves round r with LeaveProb, an
// absent one joins with JoinProb, and a joiner that has participated
// before is a rejoin — it resumes from whatever stale local state it
// held when it left (the simulators freeze absent participants'
// state). StaleBound governs the async-gossip merge rule for such
// rejoins; see gossip.Config.ChurnPlan.
type ChurnPlan struct {
	// Seed drives every churn decision stream (0 is a valid seed).
	Seed uint64
	// InitialFraction is the fraction of participants present at round
	// 0 (decided per participant from the initial-membership stream).
	// 0 means the default: everybody starts present.
	InitialFraction float64
	// LeaveProb is the per-(round, participant) probability that a
	// present participant leaves before the round runs.
	LeaveProb float64
	// JoinProb is the per-(round, participant) probability that an
	// absent participant (re)joins before the round runs.
	JoinProb float64
	// StaleBound bounds the staleness (rounds missed) a rejoining
	// gossip node may merge its own model through: a node that rejoins
	// staler than this discards its own model in favour of its
	// neighbours' (counted as a stale reset). 0 disables the bound.
	StaleBound int
	// FromRound and ToRound bound the window in which membership can
	// change: leaves/joins happen only in rounds r with FromRound <= r
	// and (ToRound == 0 or r < ToRound). Initial presence is decided
	// outside the window (it shapes round 0 regardless).
	FromRound int
	ToRound   int
}

// DefaultChurnPlan is the scenario behind the bare "default" spec:
// everyone starts present, 10% of present participants leave and 30%
// of absent ones rejoin each round, rejoins staler than 10 rounds
// reset, seed 1.
func DefaultChurnPlan() ChurnPlan {
	return ChurnPlan{
		Seed:       1,
		LeaveProb:  0.1,
		JoinProb:   0.3,
		StaleBound: 10,
	}
}

// active reports whether membership can change in the given round.
func (p ChurnPlan) active(round int) bool {
	return round >= p.FromRound && (p.ToRound == 0 || round < p.ToRound)
}

// initialFraction resolves the "0 means everybody" default.
func (p ChurnPlan) initialFraction() float64 {
	if p.InitialFraction <= 0 {
		return 1
	}
	return p.InitialFraction
}

// InitiallyPresent reports whether the participant is a member at
// round 0. Decided outside the FromRound/ToRound window: the window
// bounds membership *changes*, not the starting set.
func (p ChurnPlan) InitiallyPresent(id int) bool {
	frac := p.initialFraction()
	if frac >= 1 {
		return true
	}
	lo, _ := mathx.StreamSeeds(p.Seed, churnTagInitial, 0, uint64(id))
	return float64(lo>>11)/(1<<53) < frac
}

// Leaves reports whether a participant present entering round r leaves
// before it runs. Pure function of (Seed, round, id).
func (p ChurnPlan) Leaves(round, id int) bool {
	if p.LeaveProb <= 0 || !p.active(round) {
		return false
	}
	lo, _ := mathx.StreamSeeds(p.Seed, churnTagLeave, uint64(round), uint64(id))
	return float64(lo>>11)/(1<<53) < p.LeaveProb
}

// Joins reports whether a participant absent entering round r joins
// before it runs. Pure function of (Seed, round, id).
func (p ChurnPlan) Joins(round, id int) bool {
	if p.JoinProb <= 0 || !p.active(round) {
		return false
	}
	lo, _ := mathx.StreamSeeds(p.Seed, churnTagJoin, uint64(round), uint64(id))
	return float64(lo>>11)/(1<<53) < p.JoinProb
}

// Enabled reports whether the plan can change membership at all.
func (p ChurnPlan) Enabled() bool {
	return p.LeaveProb > 0 || p.JoinProb > 0 || p.initialFraction() < 1
}

// Validate checks the plan's probabilities and bounds.
func (p ChurnPlan) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("transport: churn plan: %s %g outside [0, 1]", name, v)
		}
		return nil
	}
	if err := check("initial", p.InitialFraction); err != nil {
		return err
	}
	if err := check("leave", p.LeaveProb); err != nil {
		return err
	}
	if err := check("join", p.JoinProb); err != nil {
		return err
	}
	if p.StaleBound < 0 {
		return fmt.Errorf("transport: churn plan: stale-bound %d is negative", p.StaleBound)
	}
	if p.FromRound < 0 || p.ToRound < 0 {
		return fmt.Errorf("transport: churn plan: round window [%d, %d) is negative", p.FromRound, p.ToRound)
	}
	return nil
}

// String renders the plan in the form ParseChurnPlan accepts.
func (p ChurnPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	add := func(k string, v float64) {
		if v > 0 {
			fmt.Fprintf(&b, ",%s=%g", k, v)
		}
	}
	add("initial", p.InitialFraction)
	add("leave", p.LeaveProb)
	add("join", p.JoinProb)
	if p.StaleBound > 0 {
		fmt.Fprintf(&b, ",stale-bound=%d", p.StaleBound)
	}
	if p.FromRound > 0 {
		fmt.Fprintf(&b, ",from=%d", p.FromRound)
	}
	if p.ToRound > 0 {
		fmt.Fprintf(&b, ",to=%d", p.ToRound)
	}
	return b.String()
}

// ParseChurnPlan parses a comma-separated key=value churn spec, e.g.
// "seed=5,initial=0.8,leave=0.25,join=0.5,stale-bound=2". "default"
// selects DefaultChurnPlan verbatim; an empty string is the zero
// (disabled) plan. Probabilities must lie in [0, 1].
func ParseChurnPlan(spec string) (ChurnPlan, error) {
	var p ChurnPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	if spec == "default" {
		return DefaultChurnPlan(), nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("transport: churn spec %q: want key=value", kv)
		}
		var err error
		prob := func() (f float64) {
			f, err = strconv.ParseFloat(v, 64)
			if err == nil && (f < 0 || f > 1) {
				err = fmt.Errorf("probability %g outside [0, 1]", f)
			}
			return f
		}
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "initial":
			p.InitialFraction = prob()
		case "leave":
			p.LeaveProb = prob()
		case "join":
			p.JoinProb = prob()
		case "stale-bound":
			p.StaleBound, err = strconv.Atoi(v)
		case "from":
			p.FromRound, err = strconv.Atoi(v)
		case "to":
			p.ToRound, err = strconv.Atoi(v)
		default:
			return p, fmt.Errorf("transport: churn spec: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("transport: churn spec %q: %w", kv, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Membership is the replayable fold of a ChurnPlan's per-round
// decisions over a fixed participant set: who is present each round,
// how stale a rejoiner's frozen state is, and the join/leave/rejoin
// accounting. The fold is pure — Advance(0..r) always yields the same
// state for the same (plan, n) — so tests can replay it to predict a
// simulator's churn counters exactly, and it draws from no RNG shared
// with the simulation.
//
// Advance must be called once per round, in round order, before the
// round's participant set is consulted.
type Membership struct {
	plan    ChurnPlan
	next    int // the next round Advance expects
	present []bool
	ever    []bool // has the participant ever been present?
	last    []int  // last round the participant was present (-1 never)
	rejoin  []int  // staleness of a rejoin in the round just advanced (0 = none/fresh)
	nAlive  int

	joins, leaves, rejoins int64
}

// NewMembership folds the plan's initial-presence decisions over n
// participants. Advance(0) applies round 0's leave/join transitions on
// top of it.
func NewMembership(plan ChurnPlan, n int) *Membership {
	m := &Membership{
		plan:    plan,
		present: make([]bool, n),
		ever:    make([]bool, n),
		last:    make([]int, n),
		rejoin:  make([]int, n),
	}
	for id := range m.present {
		m.last[id] = -1
		if plan.InitiallyPresent(id) {
			m.present[id] = true
			m.ever[id] = true
			m.nAlive++
		}
	}
	return m
}

// Advance applies round r's leave/join transitions. Rounds must be
// advanced consecutively from 0; a skipped or repeated round is a
// programming error.
func (m *Membership) Advance(round int) {
	if round != m.next {
		panic(fmt.Sprintf("transport: Membership.Advance(%d) out of order (want %d)", round, m.next))
	}
	m.next++
	for id := range m.present {
		m.rejoin[id] = 0
		if m.present[id] {
			if m.plan.Leaves(round, id) {
				m.present[id] = false
				m.nAlive--
				m.leaves++
			}
		} else if m.plan.Joins(round, id) {
			m.present[id] = true
			m.nAlive++
			m.joins++
			if m.ever[id] {
				m.rejoins++
				if m.last[id] >= 0 {
					m.rejoin[id] = round - m.last[id]
				}
			}
			m.ever[id] = true
		}
		if m.present[id] {
			m.last[id] = round
		}
	}
}

// Present reports whether the participant is a member of the round
// most recently advanced to.
func (m *Membership) Present(id int) bool { return m.present[id] }

// RejoinStaleness returns, for the round most recently advanced to,
// the number of rounds participant id missed if it rejoined this round
// after participating before — and 0 otherwise (still present, still
// absent, or a first-time joiner with no stale state).
func (m *Membership) RejoinStaleness(id int) int { return m.rejoin[id] }

// NumPresent returns the size of the current membership.
func (m *Membership) NumPresent() int { return m.nAlive }

// AppendPresent appends the current members in ascending id order.
func (m *Membership) AppendPresent(dst []int) []int {
	for id := range m.present {
		if m.present[id] {
			dst = append(dst, id)
		}
	}
	return dst
}

// Joins, Leaves and Rejoins return the accumulated transition counts
// (a rejoin is also counted as a join).
func (m *Membership) Joins() int64   { return m.joins }
func (m *Membership) Leaves() int64  { return m.leaves }
func (m *Membership) Rejoins() int64 { return m.rejoins }
