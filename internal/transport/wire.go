package transport

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"github.com/collablearn/ciarec/internal/param"
)

// DefaultChunkBytes is the frame size of the "wire-chunked" backend:
// large enough that headers stay a rounding error, small enough that
// every bench-scale message spans several frames (a GMF dim-8 payload
// at the bench sizing is ~26 KB).
const DefaultChunkBytes = 4096

// Wire is the serializing backend: every payload is marshalled through
// the param binary codec into a pooled byte buffer and unmarshalled on
// the receiving side, so all parameter traffic exercises the exact
// bytes a multi-process deployment would put on the network. With
// ChunkBytes > 0 the receiver additionally reads across fixed-size
// chunk frames, proving the codec survives arbitrary message
// fragmentation.
//
// Wire panics on codec errors: the bytes were produced by the matching
// encoder in the same process, so a failure is a codec bug, not a
// runtime condition. Its transfer methods therefore always return nil
// errors — message loss is injected by the Faulty wrapper or modelled
// by the simulators' LossProb/DropoutProb, never by this backend.
type Wire struct {
	counters
	compressor
	chunkBytes int
	bufs       sync.Pool // *bytes.Buffer
}

var _ Transport = (*Wire)(nil)

// NewWire returns a fresh unframed wire transport.
func NewWire() *Wire { return &Wire{} }

// NewChunkedWire returns a wire transport whose receivers read the
// encoded stream in frames of at most chunkBytes bytes.
func NewChunkedWire(chunkBytes int) *Wire {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	return &Wire{chunkBytes: chunkBytes}
}

// Name implements Transport.
func (t *Wire) Name() string {
	if t.chunkBytes > 0 {
		return "wire-chunked"
	}
	return "wire"
}

// Close implements Transport; the wire backend's pooled buffers need
// no teardown.
func (t *Wire) Close() error { return nil }

func (t *Wire) getBuf() *bytes.Buffer {
	if b, ok := t.bufs.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// encode marshals s into a pooled buffer and returns it with the
// encoded length (delta-coded against ref in compressed mode).
func (t *Wire) encode(s, ref *param.Set) (*bytes.Buffer, int64) {
	buf := t.getBuf()
	return buf, t.encodeSet(buf, s, ref)
}

// decode unmarshals an encoded stream into dst, which must have the
// encoded structure (and the encoder's ref in compressed delta mode).
func (t *Wire) decode(data []byte, dst, ref *param.Set) {
	r := chunkReader{data: data, chunk: t.chunkBytes}
	if _, err := dst.DecodeFromRef(&r, ref); err != nil {
		panic(fmt.Sprintf("transport: wire decode: %v", err))
	}
}

// frames returns the number of chunk frames an n-byte message spans.
func (t *Wire) frames(n int64) int64 {
	if t.chunkBytes <= 0 {
		return 1
	}
	return (n + int64(t.chunkBytes) - 1) / int64(t.chunkBytes)
}

// Send implements Transport: marshal, recycle the sender's set, and
// unmarshal into a pool-recycled set of the same structure.
func (t *Wire) Send(round, _ int, payload *param.Set, pool *param.Buffers) (*param.Set, error) {
	ref := t.sendRef(round)
	wire := int64(payload.WireBytes())
	buf, n := t.encode(payload, ref)
	recv := pool.GetShaped(payload)
	if recv == nil {
		// Pool cold (first rounds): clone the payload for its structure;
		// the decode below overwrites every value.
		recv = payload.Clone()
	}
	pool.Put(payload)
	t.decode(buf.Bytes(), recv, ref)
	t.bufs.Put(buf)
	t.messages.Add(1)
	t.bytes.Add(n)
	t.rawBytes.Add(wire)
	t.chunks.Add(t.frames(n))
	return recv, nil
}

// OpenBroadcast implements Transport: encode src once (coded absolute
// — receivers have no reference yet); every Deliver decodes the shared
// bytes into its receiver's set. In compressed mode the source also
// becomes the round's delta reference for uploads until Close.
func (t *Wire) OpenBroadcast(round int, src *param.Set) (Broadcast, error) {
	buf, n := t.encode(src, nil)
	t.setRef(round, src)
	return &wireBroadcast{t: t, buf: buf, n: n, wire: int64(src.WireBytes())}, nil
}

type wireBroadcast struct {
	t    *Wire
	buf  *bytes.Buffer
	n    int64
	wire int64
}

// Deliver decodes the broadcast bytes into dst. Concurrent Delivers
// share the read-only encoded buffer through per-call readers.
func (b *wireBroadcast) Deliver(_ int, dst *param.Set) error {
	b.t.decode(b.buf.Bytes(), dst, nil)
	b.t.bMessages.Add(1)
	b.t.bBytes.Add(b.n)
	b.t.rawBBytes.Add(b.wire)
	b.t.chunks.Add(b.t.frames(b.n))
	return nil
}

func (b *wireBroadcast) Close() {
	b.t.clearRef()
	b.t.bufs.Put(b.buf)
	b.buf = nil
}

// chunkReader serves a byte slice in reads of at most chunk bytes
// (unbounded when chunk <= 0), simulating a framed network stream: the
// decoder's io.ReadFull calls must reassemble values that straddle
// frame boundaries.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := len(p)
	if r.chunk > 0 && n > r.chunk {
		n = r.chunk
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}
