package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/collablearn/ciarec/internal/obs"
)

// ErrServerClosed is returned by Server.Close once the server has
// already been shut down, and tags late conn errors observed during
// shutdown.
var ErrServerClosed = errors.New("rpc: server closed")

// DefaultMaxBroadcasts bounds the in-flight broadcast store: the
// number of distinct broadcast payloads the server keeps resident for
// fan-out download. A well-behaved client holds one open broadcast per
// round, so the bound only bites on leaks — broadcasts orphaned by a
// replayed MsgBcastOpen whose first response was lost — which are
// evicted oldest-first instead of accumulating until shutdown.
const DefaultMaxBroadcasts = 64

// DefaultIdleTimeout is the per-connection read deadline between
// requests: a connection idle for longer is dropped (not an error —
// clients reconnect transparently). It bounds the file descriptors a
// worker pins for clients that vanished without closing.
const DefaultIdleTimeout = 5 * time.Minute

// DefaultWriteTimeout is the per-response write deadline: a client
// that stops draining its socket cannot wedge a handler goroutine
// forever.
const DefaultWriteTimeout = 30 * time.Second

// Server serves the socket transport protocol: it relays MsgSend
// payloads back to their sender's process (the bytes the receiving
// participant observes) and stores broadcast payloads for fan-out
// download. Each accepted connection is served by its own goroutine;
// broadcast state is shared across connections, so a client may open a
// broadcast on one pooled connection and deliver from another.
//
// The server holds no protocol state beyond open broadcasts (a
// bounded, oldest-first-evicting store) and never reorders or
// reinterprets payload bytes, preserving the transport determinism
// contract across process boundaries.
type Server struct {
	ln      net.Listener
	network string

	// ErrFunc, when non-nil, observes per-connection errors (a client
	// that disconnected mid-frame, a protocol violation). Set it between
	// Listen and Start; it may be called concurrently. Clean EOFs
	// between frames, idle-timeout drops and drain-deadline expiries are
	// not errors.
	ErrFunc func(error)

	// IdleTimeout, WriteTimeout and MaxBroadcasts override the
	// DefaultIdleTimeout / DefaultWriteTimeout / DefaultMaxBroadcasts
	// resource bounds. Negative disables the corresponding deadline
	// (unbounded); zero selects the default. Set between Listen and
	// Start.
	IdleTimeout   time.Duration
	WriteTimeout  time.Duration
	MaxBroadcasts int

	// Trace, when non-nil, records one span per served request (send
	// spans for MsgSend, broadcast spans for the broadcast ops), one
	// tracer ring per connection. Write-only observability: spans never
	// influence serving. Set between Listen and Start.
	Trace *obs.Tracer

	mu         sync.Mutex
	conns      map[net.Conn]struct{}
	bcasts     map[uint32][]byte
	bcastOrder []uint32 // insertion order, for oldest-first eviction
	nextID     uint32
	closed     bool
	draining   bool
	started    bool

	connErrs   atomic.Int64
	idleDrops  atomic.Int64
	evictions  atomic.Int64
	traceRings atomic.Int64 // next per-connection tracer ring index
	wg         sync.WaitGroup
}

// Listen binds a server to the address without accepting connections
// yet (so tests and callers can install ErrFunc first). network is
// "tcp" or "unix"; a busy address surfaces as a wrapped net error
// (errors.Is(err, syscall.EADDRINUSE) on POSIX hosts).
func Listen(network, addr string) (*Server, error) {
	switch network {
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("rpc: unsupported network %q (want tcp or unix)", network)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s %s: %w", network, addr, err)
	}
	return &Server{
		ln:      ln,
		network: network,
		conns:   make(map[net.Conn]struct{}),
		bcasts:  make(map[uint32][]byte),
	}, nil
}

// Serve is Listen followed by Start.
func Serve(network, addr string) (*Server, error) {
	s, err := Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.Start()
	return s, nil
}

// Start launches the accept loop. It is a no-op after the first call.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	if s.IdleTimeout == 0 {
		s.IdleTimeout = DefaultIdleTimeout
	}
	if s.WriteTimeout == 0 {
		s.WriteTimeout = DefaultWriteTimeout
	}
	if s.MaxBroadcasts == 0 {
		s.MaxBroadcasts = DefaultMaxBroadcasts
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
}

// Addr returns the bound listen address (the socket path for unix, the
// host:port — with the kernel-assigned port resolved — for tcp).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Network returns the listener's network ("tcp" or "unix").
func (s *Server) Network() string { return s.network }

// ConnErrors returns the number of connection errors observed so far
// (clients that vanished mid-frame, protocol violations).
func (s *Server) ConnErrors() int64 { return s.connErrs.Load() }

// IdleDrops returns how many connections were dropped by the idle
// read deadline (not errors; clients reconnect transparently).
func (s *Server) IdleDrops() int64 { return s.idleDrops.Load() }

// BroadcastEvictions returns how many stored broadcasts were evicted
// oldest-first to honour MaxBroadcasts.
func (s *Server) BroadcastEvictions() int64 { return s.evictions.Load() }

// Close shuts the server down immediately: the listener closes
// (unlinking the socket file on unix), every open connection is torn
// down, and all handler goroutines are joined. A second Close (or a
// Close after Shutdown) returns ErrServerClosed. For a graceful stop
// that lets in-flight requests finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: the listener closes (no new
// connections), connections currently serving a request finish the
// request/response exchange in flight, idle connections are released,
// and every handler goroutine is joined — all within roughly the given
// grace period, enforced by a read deadline on every connection. A
// second Shutdown (or one after Close) returns ErrServerClosed.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.closed = true
	s.draining = true
	err := s.ln.Close()
	//lint:ignore detrand drain grace period is wall-clock by design; it never enters payload bytes
	deadline := time.Now().Add(grace)
	for c := range s.conns {
		// Wake handlers blocked between requests; one already mid-frame
		// gets until the deadline to finish its exchange.
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // shutdown; per-conn handlers keep draining
			}
			// Transient accept failure (EMFILE under a dial burst,
			// ECONNABORTED): report it and keep accepting with a capped
			// backoff — a long-running worker must not silently stop
			// taking new connections while looking healthy.
			s.connError(fmt.Errorf("rpc: accept: %w", err))
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// connError records a per-connection failure without taking the server
// down: one misbehaving or vanished client must never hang or corrupt
// the rounds of the others.
func (s *Server) connError(err error) {
	s.connErrs.Add(1)
	if s.ErrFunc != nil {
		s.ErrFunc(err)
	}
}

// serveConn answers one connection's requests until it closes, idles
// out, or the server drains. The per-conn Frame is reused across
// requests, so steady-state serving allocates only when a payload
// outgrows every previous one.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(c)
	br := bufio.NewReaderSize(c, 32<<10)
	bw := bufio.NewWriterSize(c, 32<<10)
	// Each connection goroutine records into its own tracer ring so
	// tracing never serializes concurrent connections.
	connRing := int(s.traceRings.Add(1) - 1)
	var f Frame
	for {
		// Re-arm the idle deadline under the server mutex so it cannot
		// overwrite the drain deadline Shutdown installs (Shutdown flips
		// draining and sets deadlines in one critical section).
		s.mu.Lock()
		if !s.draining && s.IdleTimeout > 0 {
			//lint:ignore detrand I/O deadline on a real socket: wall time bounds blocking and never enters payload bytes
			c.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		s.mu.Unlock()
		if err := ReadFrame(br, &f); err != nil {
			switch {
			case err == io.EOF:
				// clean disconnect between frames
			case errors.Is(err, os.ErrDeadlineExceeded):
				// idle timeout or drain deadline: policy, not an error
				s.idleDrops.Add(1)
			case s.isDraining():
				// late failure during drain: the conn was torn down under us
			default:
				s.connError(fmt.Errorf("rpc: conn %s: %w", c.RemoteAddr(), err))
			}
			return
		}
		if s.WriteTimeout > 0 {
			//lint:ignore detrand I/O deadline on a real socket: wall time bounds blocking and never enters payload bytes
			c.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		reqStart := s.Trace.Start()
		reqPhase := obs.PhaseBroadcast
		if f.Type == MsgSend {
			reqPhase = obs.PhaseSend
		}
		var err error
		switch f.Type {
		case MsgSend:
			err = WriteFrame(bw, MsgSendAck, f.Round, f.ID, f.Payload)
		case MsgBcastOpen:
			id := s.storeBcast(f.Payload)
			err = WriteFrame(bw, MsgBcastOpened, f.Round, id, nil)
		case MsgBcastGet:
			data, ok := s.loadBcast(f.ID)
			if !ok {
				err = WriteFrame(bw, MsgError, f.Round, f.ID,
					fmt.Appendf(nil, "unknown broadcast id %d", f.ID))
				break
			}
			err = WriteFrame(bw, MsgBcastData, f.Round, f.ID, data)
		case MsgBcastClose:
			s.dropBcast(f.ID)
			err = WriteFrame(bw, MsgBcastClosed, f.Round, f.ID, nil)
		default:
			// A response type arriving as a request is a protocol
			// violation; answer and drop the connection.
			s.connError(fmt.Errorf("rpc: conn %s: %w: unexpected request type %d",
				c.RemoteAddr(), ErrBadFrame, f.Type))
			WriteFrame(bw, MsgError, f.Round, f.ID,
				fmt.Appendf(nil, "unexpected request type %d", f.Type))
			bw.Flush()
			return
		}
		if err == nil {
			err = bw.Flush()
		}
		s.Trace.Span(connRing, reqPhase, int(f.Round), obs.RoundLevel, reqStart)
		if err != nil {
			if !s.isDraining() {
				s.connError(fmt.Errorf("rpc: conn %s: write response: %w", c.RemoteAddr(), err))
			}
			return
		}
		if s.isDraining() {
			return // request in flight answered; drain the connection
		}
	}
}

// storeBcast copies the payload (the caller's frame buffer is reused)
// and registers it under a fresh id, evicting the oldest stored
// broadcast when the bounded store is full. A broadcast whose
// MsgBcastOpened response never reached the client (connection lost
// mid-exchange, the open then replayed on a fresh connection) is
// orphaned until it ages out of the bounded store.
func (s *Server) storeBcast(payload []byte) uint32 {
	data := make([]byte, len(payload))
	copy(data, payload)
	s.mu.Lock()
	max := s.MaxBroadcasts
	if max <= 0 {
		max = DefaultMaxBroadcasts
	}
	for len(s.bcastOrder) >= max {
		delete(s.bcasts, s.bcastOrder[0])
		s.bcastOrder = s.bcastOrder[1:]
		s.evictions.Add(1)
	}
	s.nextID++
	id := s.nextID
	s.bcasts[id] = data
	s.bcastOrder = append(s.bcastOrder, id)
	s.mu.Unlock()
	return id
}

func (s *Server) loadBcast(id uint32) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.bcasts[id]
	s.mu.Unlock()
	return data, ok
}

func (s *Server) dropBcast(id uint32) {
	s.mu.Lock()
	if _, ok := s.bcasts[id]; ok {
		delete(s.bcasts, id)
		for i, v := range s.bcastOrder {
			if v == id {
				s.bcastOrder = append(s.bcastOrder[:i], s.bcastOrder[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
}
