package rpc

import (
	"bytes"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func testClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cl, err := Dial(srv.Network(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestSendEcho(t *testing.T) {
	srv := testServer(t)
	cl := testClient(t, srv)
	payload := bytes.Repeat([]byte{7, 1}, 5000)
	err := cl.RoundTrip(MsgSend, 9, 4, payload, func(f *Frame) error {
		if f.Type != MsgSendAck || f.Round != 9 || f.ID != 4 {
			t.Fatalf("ack header %+v", f)
		}
		if !bytes.Equal(f.Payload, payload) {
			t.Fatal("echoed payload differs")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.RoundTrips() != 1 {
		t.Fatalf("round-trips = %d", cl.RoundTrips())
	}
}

func TestBroadcastLifecycle(t *testing.T) {
	srv := testServer(t)
	cl := testClient(t, srv)
	payload := []byte("the global model")
	var id uint32
	if err := cl.RoundTrip(MsgBcastOpen, 1, 0, payload, func(f *Frame) error {
		id = f.ID
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Concurrent delivers across pooled connections.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := cl.RoundTrip(MsgBcastGet, 1, id, nil, func(f *Frame) error {
					if f.Type != MsgBcastData || !bytes.Equal(f.Payload, payload) {
						panic("broadcast data corrupted")
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if err := cl.RoundTrip(MsgBcastClose, 1, id, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Delivering from a closed broadcast is a remote error, not a hang.
	err := cl.RoundTrip(MsgBcastGet, 1, id, nil, func(*Frame) error { return nil })
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("get after close = %v, want *RemoteError", err)
	}
}

// A client that vanishes mid-frame must be recorded as a typed conn
// error and must not wedge the server: other clients keep completing
// round-trips.
func TestClientDisconnectMidRound(t *testing.T) {
	srv2, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var mu sync.Mutex
	var seen []error
	srv2.ErrFunc = func(err error) {
		mu.Lock()
		seen = append(seen, err)
		mu.Unlock()
	}
	srv2.Start()

	raw, err := net.Dial("tcp", srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame: a header promising 100 bytes, then hang up.
	raw.Write(frameBytes(MsgSend, 1, 1, make([]byte, 100))[:HeaderLen+10])
	raw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv2.ConnErrors() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never observed the mid-frame disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	got := seen[len(seen)-1]
	mu.Unlock()
	if got == nil {
		t.Fatal("ErrFunc got nil error")
	}
	// The round must not hang for anyone else.
	cl := testClient(t, srv2)
	if err := cl.RoundTrip(MsgSend, 2, 2, []byte("ok"), nil); err != nil {
		t.Fatalf("healthy client blocked after another's disconnect: %v", err)
	}
}

func TestServerDoubleClose(t *testing.T) {
	srv, err := Serve("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second Close = %v, want ErrServerClosed", err)
	}
}

func TestClientDoubleClose(t *testing.T) {
	srv := testServer(t)
	cl, err := Dial(srv.Network(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := cl.Close(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("second Close = %v, want ErrClientClosed", err)
	}
	if err := cl.RoundTrip(MsgSend, 0, 0, nil, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("RoundTrip after Close = %v, want ErrClientClosed", err)
	}
}

func TestListenAddressInUse(t *testing.T) {
	srv := testServer(t)
	if _, err := Listen("tcp", srv.Addr()); !errors.Is(err, syscall.EADDRINUSE) {
		t.Fatalf("Listen on a bound port = %v, want EADDRINUSE", err)
	}
	if _, err := Listen("carrier-pigeon", "x"); err == nil {
		t.Fatal("unknown network must error")
	}
}

// A pooled connection severed while idle must be replaced by a fresh
// dial — counted in Reconnects — without surfacing an error.
func TestReconnectAfterIdleDrop(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "w.sock")
	srv, err := Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RoundTrip(MsgSend, 1, 1, []byte("warm"), nil); err != nil {
		t.Fatal(err)
	}
	// Bounce the server on the same address: the pooled conn is stale.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err = Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := cl.RoundTrip(MsgSend, 2, 2, []byte("retry"), nil); err != nil {
		t.Fatalf("round-trip after server bounce: %v", err)
	}
	if cl.Reconnects() == 0 {
		t.Fatal("stale-conn retry must be counted in Reconnects")
	}
}

// After a server restart every pooled connection is stale; a single
// round-trip must drain them all and succeed on a fresh dial instead
// of giving up after the first stale one.
func TestReconnectDrainsWholeStalePool(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "w.sock")
	srv, err := Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Grow the pool to 3 connections by holding 3 round-trips in flight
	// at once (a connection stays checked out while handle runs).
	const inFlight = 3
	var barrier, done sync.WaitGroup
	barrier.Add(inFlight)
	done.Add(inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			defer done.Done()
			err := cl.RoundTrip(MsgSend, 1, 1, []byte("grow"), func(*Frame) error {
				barrier.Done()
				barrier.Wait()
				return nil
			})
			if err != nil {
				panic(err)
			}
		}()
	}
	done.Wait()
	// Bounce the server: all pooled connections are now stale.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err = Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := cl.RoundTrip(MsgSend, 2, 2, []byte("drain"), nil); err != nil {
		t.Fatalf("round-trip after bounce with %d stale conns: %v", inFlight, err)
	}
	if got := cl.Reconnects(); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
}

// The unix listener must unlink its socket file on Close so the same
// path can be served again (the loopback transport relies on this).
func TestUnixSocketUnlinkedOnClose(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "w.sock")
	for i := 0; i < 2; i++ {
		srv, err := Serve("unix", sock)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d close: %v", i, err)
		}
	}
}
