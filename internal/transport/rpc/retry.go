package rpc

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/collablearn/ciarec/internal/mathx"
)

// ErrUnavailable tags round-trip failures where the server could not be
// reached within the client's RetryPolicy: every attempt either failed
// to dial or failed its I/O deadline. Callers distinguish it from
// protocol errors (ErrBadFrame, *RemoteError) to decide whether the
// peer is down versus misbehaving.
var ErrUnavailable = errors.New("rpc: server unavailable")

// RetryPolicy bounds how hard a Client tries to complete one
// round-trip against a flaky or partitioned server. The zero value
// selects the defaults below (see normalize), so existing callers get
// retry, timeouts and bounded redials without configuration.
//
// Requests in this protocol are replayable — the server holds no
// per-request state beyond stored broadcasts, and a replayed
// MsgBcastOpen at worst orphans one bounded-store entry — so retrying
// a round-trip whose response was lost is always safe.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per round-trip,
	// including the first (default 4). Stale pooled connections drained
	// after a server restart do not consume attempts; only fresh dials
	// and fresh-connection I/O failures do.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 2ms);
	// each further retry doubles it, capped at MaxBackoff (default
	// 250ms). The actual sleep is jittered deterministically into
	// [d/2, d) from JitterSeed, so a retry schedule is reproducible
	// from the seed while concurrent clients still decorrelate.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout is the per-attempt deadline covering dial, request write
	// and response read (default 30s; set via SetDeadline on the
	// connection). Expiries are counted in Timeouts.
	Timeout time.Duration
	// JitterSeed drives the deterministic backoff jitter (0 is a valid
	// seed).
	JitterSeed uint64
}

// DefaultRetryPolicy returns the defaults documented on RetryPolicy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Timeout:     30 * time.Second,
	}
}

// normalize fills unset fields with the defaults.
func (p RetryPolicy) normalize() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	return p
}

// backoff returns the jittered delay before retry number retry (1 =
// first retry). The jitter is a pure function of (JitterSeed, key,
// retry): reproducible from the seed, decorrelated across concurrent
// round-trips via the caller-supplied key.
func (p RetryPolicy) backoff(key uint64, retry int) time.Duration {
	d := p.BaseBackoff << (retry - 1)
	if d > p.MaxBackoff || d <= 0 { // <= 0: shift overflow
		d = p.MaxBackoff
	}
	lo, _ := mathx.StreamSeeds(p.JitterSeed, key, uint64(retry))
	u := float64(lo>>11) / (1 << 53) // [0, 1)
	return time.Duration((0.5 + 0.5*u) * float64(d))
}

// String renders the policy in the form ParseRetryPolicy accepts.
func (p RetryPolicy) String() string {
	p = p.normalize()
	return fmt.Sprintf("attempts=%d,backoff=%s,max-backoff=%s,timeout=%s,seed=%d",
		p.MaxAttempts, p.BaseBackoff, p.MaxBackoff, p.Timeout, p.JitterSeed)
}

// ParseRetryPolicy parses a comma-separated key=value retry spec, e.g.
// "attempts=6,backoff=5ms,timeout=2s". Unknown keys error; omitted
// keys keep the defaults. An empty string is the default policy.
func ParseRetryPolicy(spec string) (RetryPolicy, error) {
	p := DefaultRetryPolicy()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("rpc: retry spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(v)
		case "backoff":
			p.BaseBackoff, err = time.ParseDuration(v)
		case "max-backoff":
			p.MaxBackoff, err = time.ParseDuration(v)
		case "timeout":
			p.Timeout, err = time.ParseDuration(v)
		case "seed":
			p.JitterSeed, err = strconv.ParseUint(v, 10, 64)
		default:
			return p, fmt.Errorf("rpc: retry spec: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("rpc: retry spec %q: %w", kv, err)
		}
	}
	return p, nil
}

// isTimeout reports whether err is an I/O deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
