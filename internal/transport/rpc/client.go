package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// ErrClientClosed is returned by client operations after Close, and by
// a second Close.
var ErrClientClosed = errors.New("rpc: client closed")

// RemoteError is a failure the server answered with (an MsgError
// frame), e.g. delivering from a broadcast id that was already closed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Client issues protocol round-trips against a Server through a pool
// of connections — one connection per in-flight request, so concurrent
// round-trips from a simulator's worker goroutines never interleave
// frames. Idle connections are reused; a reused connection that fails
// mid-round-trip (the server restarted, an idle timeout fired) is
// replaced by a fresh dial once per call, counted in Reconnects.
type Client struct {
	network, addr string

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	roundTrips atomic.Int64
	reconnects atomic.Int64
}

// clientConn is one pooled connection with its buffers and reusable
// response frame. A connection is owned by exactly one round-trip at a
// time, so none of this needs locking.
type clientConn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	resp Frame
}

// Dial connects a client to a server. The first connection is
// established eagerly so an unreachable address fails here, not in the
// middle of a round.
func Dial(network, addr string) (*Client, error) {
	c := &Client{network: network, addr: addr}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
	return c, nil
}

// RoundTrips returns the number of completed request/response
// exchanges.
func (c *Client) RoundTrips() int64 { return c.roundTrips.Load() }

// Reconnects returns how many times a pooled connection had to be
// replaced by a fresh dial mid-call.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Close closes every pooled connection. Connections checked out by
// in-flight round-trips are closed as they are returned. A second
// Close returns ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.c.Close()
	}
	return nil
}

func (c *Client) dial() (*clientConn, error) {
	conn, err := net.Dial(c.network, c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s %s: %w", c.network, c.addr, err)
	}
	return &clientConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 32<<10),
		bw: bufio.NewWriterSize(conn, 32<<10),
	}, nil
}

// get checks a connection out of the pool, dialing when none is idle.
// reused reports whether the connection has served a previous call
// (and may therefore be stale).
func (c *Client) get() (cn *clientConn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		cn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, true, nil
	}
	c.mu.Unlock()
	cn, err = c.dial()
	return cn, false, err
}

func (c *Client) put(cn *clientConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.c.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// RoundTrip sends one request frame and hands the response frame to
// handle while the connection is checked out; the frame (and its
// payload) is only valid inside handle. An MsgError response is
// surfaced as *RemoteError without invoking handle. Safe for
// concurrent use.
func (c *Client) RoundTrip(typ byte, round, id uint32, payload []byte, handle func(resp *Frame) error) error {
	for {
		cn, reused, err := c.get()
		if err != nil {
			return err
		}
		if err := cn.call(typ, round, id, payload); err != nil {
			cn.c.Close()
			if reused {
				// The pooled connection went stale while idle (the server
				// restarted, an idle timeout fired) — and after a restart
				// every idle connection is stale, so keep draining them.
				// The loop is bounded: each failure discards one pooled
				// connection, and once the pool is empty get() dials fresh
				// (reused=false), whose failure is final. Requests are
				// replayable — the one caveat is MsgBcastOpen, where a
				// request the server acted on but whose response was lost
				// leaves an orphaned broadcast behind (see Server.storeBcast).
				c.reconnects.Add(1)
				continue
			}
			return fmt.Errorf("rpc: round-trip type %d: %w", typ, err)
		}
		c.roundTrips.Add(1)
		if cn.resp.Type == MsgError {
			err = &RemoteError{Msg: string(cn.resp.Payload)}
		} else if handle != nil {
			err = handle(&cn.resp)
		}
		c.put(cn)
		return err
	}
}

func (cn *clientConn) call(typ byte, round, id uint32, payload []byte) error {
	if err := WriteFrame(cn.bw, typ, round, id, payload); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	return ReadFrame(cn.br, &cn.resp)
}
