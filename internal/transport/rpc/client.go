package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed is returned by client operations after Close, and by
// a second Close.
var ErrClientClosed = errors.New("rpc: client closed")

// RemoteError is a failure the server answered with (an MsgError
// frame), e.g. delivering from a broadcast id that was already closed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Client issues protocol round-trips against a Server through a pool
// of connections — one connection per in-flight request, so concurrent
// round-trips from a simulator's worker goroutines never interleave
// frames. Idle connections are reused; a reused connection that fails
// mid-round-trip (the server restarted, an idle timeout fired) is
// replaced by a fresh dial, counted in Reconnects.
//
// Every round-trip runs under the client's RetryPolicy: each attempt
// carries an I/O deadline, failed attempts (dial failures included)
// back off exponentially with deterministic jitter, and a round-trip
// that exhausts its attempts returns an error wrapping ErrUnavailable
// instead of redialing in a tight loop.
type Client struct {
	network, addr string
	policy        RetryPolicy

	mu     sync.Mutex
	idle   []*clientConn
	closed bool

	roundTrips atomic.Int64
	reconnects atomic.Int64
	retries    atomic.Int64
	timeouts   atomic.Int64
	gaveUp     atomic.Int64
}

// clientConn is one pooled connection with its buffers and reusable
// response frame. A connection is owned by exactly one round-trip at a
// time, so none of this needs locking.
type clientConn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	resp Frame
}

// Dial connects a client to a server under the default RetryPolicy.
// The first connection is established eagerly so an unreachable
// address fails here — wrapping ErrUnavailable — not in the middle of
// a round.
func Dial(network, addr string) (*Client, error) {
	return DialPolicy(network, addr, RetryPolicy{})
}

// DialPolicy is Dial with an explicit RetryPolicy (zero fields keep
// the defaults, see RetryPolicy).
func DialPolicy(network, addr string, policy RetryPolicy) (*Client, error) {
	c := &Client{network: network, addr: addr, policy: policy.normalize()}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
	return c, nil
}

// Policy returns the client's normalized retry policy.
func (c *Client) Policy() RetryPolicy { return c.policy }

// RoundTrips returns the number of completed request/response
// exchanges.
func (c *Client) RoundTrips() int64 { return c.roundTrips.Load() }

// Reconnects returns how many times a pooled connection had to be
// replaced by a fresh dial mid-call.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Retries returns the number of retry attempts (beyond each
// round-trip's first) the policy has spent so far.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Timeouts returns how many attempts failed by I/O deadline expiry.
func (c *Client) Timeouts() int64 { return c.timeouts.Load() }

// GaveUp returns how many round-trips exhausted their attempts and
// surfaced ErrUnavailable.
func (c *Client) GaveUp() int64 { return c.gaveUp.Load() }

// Close closes every pooled connection. Connections checked out by
// in-flight round-trips are closed as they are returned. A second
// Close returns ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.c.Close()
	}
	return nil
}

func (c *Client) dial() (*clientConn, error) {
	conn, err := net.DialTimeout(c.network, c.addr, c.policy.Timeout)
	if err != nil {
		if isTimeout(err) {
			c.timeouts.Add(1)
		}
		return nil, fmt.Errorf("rpc: dial %s %s: %w: %w", c.network, c.addr, ErrUnavailable, err)
	}
	return &clientConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 32<<10),
		bw: bufio.NewWriterSize(conn, 32<<10),
	}, nil
}

// get checks a connection out of the pool without dialing. reused is
// false when the pool is empty and the caller must dial.
func (c *Client) get() (cn *clientConn, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		cn = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	return cn, nil
}

func (c *Client) put(cn *clientConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.c.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// RoundTrip sends one request frame and hands the response frame to
// handle while the connection is checked out; the frame (and its
// payload) is only valid inside handle. An MsgError response is
// surfaced as *RemoteError without invoking handle. Safe for
// concurrent use.
//
// Failure handling: pooled connections that went stale while idle (the
// server restarted, an idle timeout fired) are drained and replaced
// for free — after a restart every idle connection is stale, and each
// drain discards exactly one, so the drain loop is bounded by the pool
// size. Fresh dials and fresh-connection I/O failures consume policy
// attempts with capped, jittered backoff in between; once the attempts
// are spent the round-trip returns an error wrapping ErrUnavailable.
// Requests are replayable — the one caveat is MsgBcastOpen, where a
// request the server acted on but whose response was lost leaves an
// orphaned entry in the server's bounded broadcast store.
func (c *Client) RoundTrip(typ byte, round, id uint32, payload []byte, handle func(resp *Frame) error) error {
	p := c.policy
	key := uint64(round)<<32 | uint64(id)<<8 | uint64(typ)
	attempt := 1
	var lastErr error
	for {
		cn, err := c.get()
		reused := cn != nil
		if err == nil && cn == nil {
			cn, err = c.dial()
		}
		if err == nil {
			err = cn.call(p.Timeout, typ, round, id, payload)
			if err == nil {
				c.roundTrips.Add(1)
				if cn.resp.Type == MsgError {
					err = &RemoteError{Msg: string(cn.resp.Payload)}
				} else if handle != nil {
					err = handle(&cn.resp)
				}
				c.put(cn)
				return err
			}
			cn.c.Close()
			if isTimeout(err) {
				c.timeouts.Add(1)
			}
			if reused {
				// Stale pooled connection: drain it and try the next one
				// (or a fresh dial) without consuming an attempt.
				c.reconnects.Add(1)
				continue
			}
		}
		if errors.Is(err, ErrClientClosed) {
			return err
		}
		lastErr = err
		attempt++
		if attempt > p.MaxAttempts {
			c.gaveUp.Add(1)
			return fmt.Errorf("rpc: round-trip type %d: %w after %d attempts: %w",
				typ, ErrUnavailable, p.MaxAttempts, lastErr)
		}
		c.retries.Add(1)
		time.Sleep(p.backoff(key, attempt-1))
	}
}

// call runs one attempt on this connection under the given I/O
// deadline.
func (cn *clientConn) call(timeout time.Duration, typ byte, round, id uint32, payload []byte) error {
	if timeout > 0 {
		//lint:ignore detrand I/O deadline on a real socket: wall time bounds blocking and never enters payload bytes
		if err := cn.c.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	if err := WriteFrame(cn.bw, typ, round, id, payload); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	return ReadFrame(cn.br, &cn.resp)
}
