package rpc

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fastPolicy keeps retry tests quick: minimal backoff, short deadlines.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Timeout:     250 * time.Millisecond,
	}
}

// Dialing an address nobody listens on must fail eagerly with a typed
// ErrUnavailable, not surface mid-round.
func TestDialUnreachable(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "nobody.sock")
	if _, err := DialPolicy("unix", sock, fastPolicy(2)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Dial to dead address = %v, want ErrUnavailable", err)
	}
}

// A round-trip against a server that died must spend exactly the
// policy's attempts — with the stale pooled connection drained for free
// — then give up with ErrUnavailable, all counted.
func TestRoundTripGivesUpBounded(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "w.sock")
	srv, err := Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialPolicy("unix", sock, fastPolicy(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RoundTrip(MsgSend, 1, 1, []byte("warm"), nil); err != nil {
		t.Fatal(err)
	}
	// Kill the server for good: the socket file is unlinked, so fresh
	// dials fail immediately.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	err = cl.RoundTrip(MsgSend, 2, 2, []byte("doomed"), nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("round-trip against dead server = %v, want ErrUnavailable", err)
	}
	if got := cl.GaveUp(); got != 1 {
		t.Fatalf("GaveUp = %d, want 1", got)
	}
	// 3 attempts = 1 first try + 2 retries; the stale pooled conn drain
	// is free.
	if got := cl.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if got := cl.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1 (the stale pooled conn)", got)
	}
}

// A server that accepts but never answers must trip the per-attempt
// I/O deadline (counted in Timeouts), not hang the round-trip forever.
func TestRoundTripTimesOutOnSilentServer(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "silent.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Read(buf); err != nil {
						return // swallow requests, never answer
					}
				}
			}(c)
		}
	}()
	cl, err := DialPolicy("unix", sock, fastPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	err = cl.RoundTrip(MsgSend, 1, 1, []byte("into the void"), nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("round-trip against silent server = %v, want ErrUnavailable", err)
	}
	if cl.Timeouts() == 0 {
		t.Fatal("deadline expiries must be counted in Timeouts")
	}
	if cl.GaveUp() != 1 {
		t.Fatalf("GaveUp = %d, want 1", cl.GaveUp())
	}
	// 2 fresh attempts of ≤250ms plus the free stale drain: well under
	// the no-deadline regime (which would hang forever).
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded round-trip took %v", elapsed)
	}
}

// Close racing in-flight round-trips: every call must settle to nil or
// ErrClientClosed — no panic, no deadlock, no wedged goroutine. Run
// under -race this also shakes the pool accounting.
func TestConcurrentCloseVsInFlight(t *testing.T) {
	srv := testServer(t)
	cl, err := Dial(srv.Network(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := cl.RoundTrip(MsgSend, uint32(g), uint32(i), []byte("racing"), nil)
				if err != nil {
					if !errors.Is(err, ErrClientClosed) {
						panic("unexpected round-trip error during Close race: " + err.Error())
					}
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond) // let some round-trips get in flight
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := cl.RoundTrip(MsgSend, 0, 0, nil, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("RoundTrip after Close = %v, want ErrClientClosed", err)
	}
}

// Server.Close racing a broadcast fan-out: delivering goroutines must
// all unwind with bounded errors instead of hanging on a half-dead
// server.
func TestServerCloseMidBroadcastFanout(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "w.sock")
	srv, err := Serve("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialPolicy("unix", sock, fastPolicy(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var id uint32
	if err := cl.RoundTrip(MsgBcastOpen, 1, 0, []byte("the global model"), func(f *Frame) error {
		id = f.ID
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				err := cl.RoundTrip(MsgBcastGet, 1, id, nil, nil)
				if err != nil {
					// The server died under us: ErrUnavailable (dial/IO
					// failure after the socket vanished) and ErrClientClosed
					// are the only acceptable outcomes; a protocol error or a
					// hang is a bug.
					if !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrClientClosed) {
						panic("unexpected deliver error during server Close: " + err.Error())
					}
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close mid-fanout: %v", err)
	}
	wg.Wait()
}

// The broadcast store is bounded: opening more than MaxBroadcasts
// evicts oldest-first, and a delivery from an evicted id is a remote
// error, not a hang or a leak.
func TestBroadcastStoreEviction(t *testing.T) {
	srv, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxBroadcasts = 4
	srv.Start()
	defer srv.Close()
	cl := testClient(t, srv)

	open := func(round uint32) uint32 {
		t.Helper()
		var id uint32
		if err := cl.RoundTrip(MsgBcastOpen, round, 0, []byte("payload"), func(f *Frame) error {
			id = f.ID
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return id
	}
	first := open(0)
	var last uint32
	for r := 1; r < 6; r++ {
		last = open(uint32(r))
	}
	if got := srv.BroadcastEvictions(); got != 2 {
		t.Fatalf("BroadcastEvictions = %d, want 2 (6 opens into a store of 4)", got)
	}
	var remote *RemoteError
	if err := cl.RoundTrip(MsgBcastGet, 0, first, nil, nil); !errors.As(err, &remote) {
		t.Fatalf("get of evicted broadcast = %v, want *RemoteError", err)
	}
	if err := cl.RoundTrip(MsgBcastGet, 5, last, nil, nil); err != nil {
		t.Fatalf("get of resident broadcast: %v", err)
	}
}

// Shutdown must answer a request already in flight before tearing the
// connection down, and release idle connections within the grace
// window without counting them as errors.
func TestShutdownDrainsInFlightRequest(t *testing.T) {
	srv := testServer(t)
	raw, err := net.Dial(srv.Network(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Park half a frame so the handler is mid-read when Shutdown fires.
	frame := frameBytes(MsgSend, 3, 3, []byte("slow sender"))
	if _, err := raw.Write(frame[:HeaderLen+4]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the handler block on the partial frame

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(time.Second) }()
	time.Sleep(20 * time.Millisecond) // Shutdown has set the drain deadline
	if _, err := raw.Write(frame[HeaderLen+4:]); err != nil {
		t.Fatalf("finishing the in-flight frame: %v", err)
	}
	var resp Frame
	if err := ReadFrame(raw, &resp); err != nil {
		t.Fatalf("in-flight request was not answered during drain: %v", err)
	}
	if resp.Type != MsgSendAck || string(resp.Payload) != "slow sender" {
		t.Fatalf("drained response = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(time.Second); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second Shutdown = %v, want ErrServerClosed", err)
	}
	if err := srv.Close(); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Close after Shutdown = %v, want ErrServerClosed", err)
	}
	if srv.ConnErrors() != 0 {
		t.Fatalf("graceful drain recorded %d conn errors", srv.ConnErrors())
	}
}

// An idle connection must be dropped by the idle deadline — counted in
// IdleDrops, not ConnErrors — and the client must recover with a
// transparent reconnect.
func TestIdleTimeoutDropsAndClientRecovers(t *testing.T) {
	srv, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 50 * time.Millisecond
	srv.Start()
	defer srv.Close()
	cl := testClient(t, srv)
	if err := cl.RoundTrip(MsgSend, 1, 1, []byte("warm"), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.IdleDrops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.ConnErrors() != 0 {
		t.Fatalf("idle drop was recorded as %d conn errors", srv.ConnErrors())
	}
	if err := cl.RoundTrip(MsgSend, 2, 2, []byte("back"), nil); err != nil {
		t.Fatalf("round-trip after idle drop: %v", err)
	}
	if cl.Reconnects() == 0 {
		t.Fatal("recovery from an idle drop must be a counted reconnect")
	}
}

// The deterministic backoff schedule: pure function of (seed, key,
// retry), jittered into [d/2, d), capped at MaxBackoff.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 4 * time.Millisecond, MaxBackoff: 16 * time.Millisecond, JitterSeed: 9}.normalize()
	for retry := 1; retry <= 12; retry++ {
		d := p.backoff(42, retry)
		if d != p.backoff(42, retry) {
			t.Fatalf("backoff(42, %d) not deterministic", retry)
		}
		want := p.BaseBackoff << (retry - 1)
		if want > p.MaxBackoff || want <= 0 {
			want = p.MaxBackoff
		}
		if d < want/2 || d >= want {
			t.Fatalf("backoff(42, %d) = %v outside [%v, %v)", retry, d, want/2, want)
		}
	}
	if p.backoff(1, 3) == p.backoff(2, 3) {
		t.Fatal("distinct round-trip keys should decorrelate the jitter")
	}
}

func TestParseRetryPolicy(t *testing.T) {
	p, err := ParseRetryPolicy("attempts=6,backoff=5ms,timeout=2s")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAttempts != 6 || p.BaseBackoff != 5*time.Millisecond || p.Timeout != 2*time.Second {
		t.Fatalf("parsed %+v", p)
	}
	if p.MaxBackoff != DefaultRetryPolicy().MaxBackoff {
		t.Fatalf("omitted key must keep the default, got %v", p.MaxBackoff)
	}
	if p2, err := ParseRetryPolicy(""); err != nil || p2 != DefaultRetryPolicy() {
		t.Fatalf("empty spec: %+v, %v", p2, err)
	}
	// String renders a parseable form.
	rt, err := ParseRetryPolicy(p.String())
	if err != nil || rt != p {
		t.Fatalf("String round trip: %+v vs %+v (%v)", rt, p, err)
	}
	for _, bad := range []string{"attempts", "attempts=x", "backoff=7", "warp=1ms"} {
		if _, err := ParseRetryPolicy(bad); err == nil {
			t.Fatalf("ParseRetryPolicy(%q) accepted a bad spec", bad)
		}
	}
}
