package rpc

import (
	"bytes"
	"testing"
)

// FuzzFrameRead hardens the RPC frame decoder against hostile streams:
// malformed, truncated or oversized headers must produce an error —
// never a panic — and must not trigger allocations anywhere near the
// length an attacker-controlled header claims (payload storage may
// only grow with bytes that actually arrive). Valid frames must
// re-encode to the exact input bytes (canonical round-trip).
func FuzzFrameRead(f *testing.F) {
	// Seeds: every request/response shape plus classic malformations.
	f.Add([]byte{})
	f.Add(frameBytes(MsgSend, 1, 7, []byte("payload")))
	f.Add(frameBytes(MsgSendAck, 1, 7, []byte("payload")))
	f.Add(frameBytes(MsgBcastOpen, 3, 0, bytes.Repeat([]byte{0x42}, 300)))
	f.Add(frameBytes(MsgBcastOpened, 3, 9, nil))
	f.Add(frameBytes(MsgBcastGet, 3, 9, nil))
	f.Add(frameBytes(MsgBcastData, 3, 9, []byte{0, 1, 2, 3, 4, 5, 6, 7}))
	f.Add(frameBytes(MsgBcastClose, 3, 9, nil))
	f.Add(frameBytes(MsgError, 0, 0, []byte("boom")))
	f.Add(frameBytes(MsgSend, 1, 1, []byte("abc"))[:HeaderLen+1]) // truncated body
	f.Add(frameBytes(0, 0, 0, nil))                               // zero type
	f.Add(frameBytes(msgTypeMax+1, 0, 0, nil))                    // unknown type
	lying := frameBytes(MsgSend, 1, 1, nil)
	putLen(lying, MaxPayload-1) // huge claimed length, no body
	f.Add(lying)
	over := frameBytes(MsgSend, 1, 1, nil)
	putLen(over, MaxPayload+1) // beyond the protocol bound
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		err := ReadFrame(bytes.NewReader(data), &fr)
		if err != nil {
			// Error path: storage growth must be bounded by the bytes that
			// arrived, not by the header's claim (frameChunk slack for the
			// last partial chunk, doubled for append's growth policy).
			if cap(fr.Payload) > 2*(len(data)+frameChunk) {
				t.Fatalf("decoder allocated %d bytes for a %d-byte malformed input",
					cap(fr.Payload), len(data))
			}
			return
		}
		if fr.Type == 0 || fr.Type > msgTypeMax {
			t.Fatalf("accepted frame with invalid type %d", fr.Type)
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("accepted over-long payload %d", len(fr.Payload))
		}
		// Canonical round-trip: re-encoding must reproduce the consumed
		// prefix of the input exactly.
		var out bytes.Buffer
		if err := WriteFrame(&out, fr.Type, fr.Round, fr.ID, fr.Payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("re-encoded frame differs from input prefix")
		}
		// And decoding the re-encoding must agree with the first decode.
		var fr2 Frame
		if err := ReadFrame(bytes.NewReader(out.Bytes()), &fr2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Round != fr.Round || fr2.ID != fr.ID ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("re-decode disagrees with original decode")
		}
	})
}
