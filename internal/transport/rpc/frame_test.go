package rpc

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 3*frameChunk+17)}
	for _, payload := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgSend, 42, 7, payload); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != HeaderLen+len(payload) {
			t.Fatalf("frame size %d, want %d", buf.Len(), HeaderLen+len(payload))
		}
		var f Frame
		if err := ReadFrame(&buf, &f); err != nil {
			t.Fatal(err)
		}
		if f.Type != MsgSend || f.Round != 42 || f.ID != 7 || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("decoded frame %+v differs from written", f)
		}
	}
}

func TestFrameReuseAcrossReads(t *testing.T) {
	var buf bytes.Buffer
	big := bytes.Repeat([]byte{1}, 1024)
	WriteFrame(&buf, MsgSend, 1, 1, big)
	WriteFrame(&buf, MsgBcastGet, 2, 2, []byte("tiny"))
	var f Frame
	if err := ReadFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	firstCap := cap(f.Payload)
	if err := ReadFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "tiny" || f.Type != MsgBcastGet {
		t.Fatalf("second frame decoded wrong: %+v", f)
	}
	if cap(f.Payload) < firstCap {
		t.Fatal("payload storage must be reused, not reallocated smaller")
	}
}

func TestReadFrameMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short header":   {1, 2, 3},
		"zero type":      frameBytes(0, 0, 0, nil),
		"unknown type":   frameBytes(msgTypeMax+1, 0, 0, nil),
		"truncated body": frameBytes(MsgSend, 1, 1, []byte("abc"))[:HeaderLen+1],
	}
	for name, data := range cases {
		var f Frame
		err := ReadFrame(bytes.NewReader(data), &f)
		if err == nil {
			t.Fatalf("%s: want error", name)
		}
		if name == "empty" && err != io.EOF {
			t.Fatalf("empty stream must be a clean io.EOF, got %v", err)
		}
	}
	// A header lying about a huge payload must error (truncation)
	// without allocating anywhere near the claimed size.
	lying := frameBytes(MsgSend, 1, 1, nil)
	putLen(lying, MaxPayload-1)
	var f Frame
	if err := ReadFrame(bytes.NewReader(lying), &f); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying header: %v, want ErrUnexpectedEOF", err)
	}
	if cap(f.Payload) > 4*frameChunk {
		t.Fatalf("lying header allocated %d bytes", cap(f.Payload))
	}
	over := frameBytes(MsgSend, 1, 1, nil)
	putLen(over, MaxPayload+1)
	if err := ReadFrame(bytes.NewReader(over), &f); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("over-MaxPayload header: %v, want ErrBadFrame", err)
	}
	if err := WriteFrame(io.Discard, MsgSend, 0, 0, make([]byte, MaxPayload+1)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized write: %v, want ErrBadFrame", err)
	}
	if !strings.Contains(ErrBadFrame.Error(), "rpc") {
		t.Fatal("ErrBadFrame should identify the package")
	}
}

// frameBytes hand-builds an encoded frame (bypassing WriteFrame's
// validation) so tests can perform malformed-input surgery on it.
func frameBytes(typ byte, round, id uint32, payload []byte) []byte {
	b := make([]byte, HeaderLen, HeaderLen+len(payload))
	b[0] = typ
	putU32(b[1:5], round)
	putU32(b[5:9], id)
	putU32(b[9:13], uint32(len(payload)))
	return append(b, payload...)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putLen(frame []byte, n uint32) { putU32(frame[9:13], n) }
