// Package rpc implements the framed request/response protocol behind
// the socket transport backends (internal/transport "socket" and
// "socket-tcp"): a Server that relays parameter payloads for many
// concurrent clients over TCP or Unix-domain sockets, and a Client
// that issues round-trips against it through a reconnecting connection
// pool.
//
// The package is payload-agnostic: frames carry opaque byte payloads
// (in practice the param binary codec stream), so the protocol layer
// never interprets — and can never perturb — parameter values. That is
// what lets the socket transport satisfy the value-transparency
// contract of internal/transport bit-for-bit.
//
// # Wire format
//
// Every message is one frame:
//
//	header (13 bytes, little-endian):
//	  [0]    msg type
//	  [1:5]  round   (uint32; the protocol round that produced the message)
//	  [5:9]  id      (uint32; participant id on sends, broadcast id on
//	                  broadcast frames)
//	  [9:13] payload length (uint32, at most MaxPayload)
//	payload (length bytes; the param codec stream, or an error string
//	         on MsgError frames)
//
// Requests are serialized per connection (one in-flight round-trip at
// a time); concurrency comes from the client's connection pool, one
// connection per in-flight request.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

// Message types. Requests (client → server) pair with the response the
// server answers them with; MsgError may answer any request.
const (
	// MsgSend carries a point-to-point payload (a fed upload or gossip
	// push); the server relays it back as MsgSendAck — the bytes the
	// receiver observes.
	MsgSend byte = iota + 1
	MsgSendAck
	// MsgBcastOpen uploads an encoded broadcast source once; the server
	// stores it and answers MsgBcastOpened with the broadcast id.
	MsgBcastOpen
	MsgBcastOpened
	// MsgBcastGet downloads the stored broadcast payload (one per
	// receiver); answered by MsgBcastData.
	MsgBcastGet
	MsgBcastData
	// MsgBcastClose releases a stored broadcast; answered by
	// MsgBcastClosed.
	MsgBcastClose
	MsgBcastClosed
	// MsgError is a server-side failure; the payload is the error text.
	MsgError

	msgTypeMax = MsgError
)

// HeaderLen is the fixed frame-header size in bytes.
const HeaderLen = 13

// MaxPayload bounds a frame's declared payload length (1 GiB — far
// above any model payload; a header claiming more is malformed).
const MaxPayload = 1 << 30

// frameChunk is the incremental read granularity of ReadFrame: payload
// storage grows only as bytes actually arrive, so a truncated stream
// whose header lies about its length cannot force a large allocation.
const frameChunk = 64 << 10

// ErrBadFrame tags malformed-frame errors (unknown type, implausible
// length). Truncation surfaces as io.ErrUnexpectedEOF (or io.EOF when
// the stream ends cleanly between frames).
var ErrBadFrame = errors.New("rpc: malformed frame")

// Frame is one decoded protocol message. Payload is reused across
// ReadFrame calls on the same Frame and is only valid until the next
// call.
type Frame struct {
	Type    byte
	Round   uint32
	ID      uint32
	Payload []byte
}

// WriteFrame writes one frame to w. The caller is responsible for
// buffering (the server and client wrap connections in bufio).
func WriteFrame(w io.Writer, typ byte, round, id uint32, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds MaxPayload", ErrBadFrame, len(payload))
	}
	var hdr [HeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], round)
	binary.LittleEndian.PutUint32(hdr[5:9], id)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r into f, reusing f.Payload's
// storage. Malformed headers (unknown type, length beyond MaxPayload)
// and truncated streams error without over-allocating: payload storage
// grows in frameChunk steps with the bytes that actually arrive. A
// clean EOF before any header byte returns io.EOF.
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return io.EOF
		}
		return fmt.Errorf("rpc: frame header: %w", err)
	}
	typ := hdr[0]
	if typ == 0 || typ > msgTypeMax {
		return fmt.Errorf("%w: unknown message type %d", ErrBadFrame, typ)
	}
	length := binary.LittleEndian.Uint32(hdr[9:13])
	if length > MaxPayload {
		return fmt.Errorf("%w: payload length %d exceeds MaxPayload", ErrBadFrame, length)
	}
	f.Type = typ
	f.Round = binary.LittleEndian.Uint32(hdr[1:5])
	f.ID = binary.LittleEndian.Uint32(hdr[5:9])
	f.Payload = f.Payload[:0]
	for remaining := int(length); remaining > 0; {
		c := min(remaining, frameChunk)
		lo := len(f.Payload)
		f.Payload = slices.Grow(f.Payload, c)[:lo+c]
		if _, err := io.ReadFull(r, f.Payload[lo:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("rpc: frame payload: %w", err)
		}
		remaining -= c
	}
	return nil
}
