package transport

import (
	"errors"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// The socket backends must round-trip values bit-exactly through a
// real kernel socket, never alias the sender's storage, and account
// the RPC exchanges in the new Stats counters.
func TestSocketSendRoundTripsValues(t *testing.T) {
	for _, name := range []string{"socket", "socket-tcp"} {
		t.Run(name, func(t *testing.T) {
			tr, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			var pool param.Buffers
			payload := testSet(1)
			want := payload.Clone()
			got, err := tr.Send(3, 7, payload, &pool)
			if err != nil {
				t.Fatal(err)
			}
			if got == payload {
				t.Fatal("socket Send must not return the sender's set")
			}
			if !param.Equal(want, got, 0) {
				t.Fatal("socket Send changed values")
			}
			st := tr.Stats()
			if st.Messages != 1 || st.Bytes != int64(want.WireBytes()) || st.Chunks != 1 {
				t.Fatalf("stats = %+v, want 1 message of %d bytes", st, want.WireBytes())
			}
			if st.RoundTrips != 1 {
				t.Fatalf("round-trips = %d, want 1", st.RoundTrips)
			}
			bc, err := tr.OpenBroadcast(4, want)
			if err != nil {
				t.Fatal(err)
			}
			dst := testSet(0)
			if err := bc.Deliver(0, dst); err != nil {
				t.Fatal(err)
			}
			bc.Close()
			if !param.Equal(want, dst, 0) {
				t.Fatal("socket broadcast changed values")
			}
			st = tr.Stats()
			if st.BroadcastMessages != 1 || st.BroadcastBytes != int64(want.WireBytes()) {
				t.Fatalf("broadcast stats = %+v", st)
			}
			// Send + broadcast open + deliver + close = 4 exchanges.
			if st.RoundTrips != 4 {
				t.Fatalf("round-trips = %d, want 4", st.RoundTrips)
			}
		})
	}
}

// Dial must reach an externally managed rpc.Server (the ciaworker
// deployment shape) and reject backends that have no address.
func TestSocketDialExternal(t *testing.T) {
	srv, err := rpc.Serve("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := Dial("socket-tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var pool param.Buffers
	want := testSet(2)
	got, err := tr.Send(0, 0, pool.Clone(want), &pool)
	if err != nil {
		t.Fatal(err)
	}
	if !param.Equal(want, got, 0) {
		t.Fatal("dialed socket Send changed values")
	}
	if _, err := Dial("wire", "nowhere"); err == nil {
		t.Fatal("Dial must reject in-process backends")
	}
	if _, err := Dial("socket-tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("Dial must fail eagerly on an unreachable address")
	}
}

// Closing a socket transport twice must return a typed error, and the
// loopback server must shut down with it (a fresh Dial to its address
// fails).
func TestSocketDoubleClose(t *testing.T) {
	tr, err := New("socket-tcp")
	if err != nil {
		t.Fatal(err)
	}
	addr := tr.(*Socket).srv.Addr()
	if err := tr.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := tr.Close(); !errors.Is(err, rpc.ErrClientClosed) {
		t.Fatalf("second Close = %v, want rpc.ErrClientClosed", err)
	}
	if _, err := Dial("socket-tcp", addr); err == nil {
		t.Fatal("loopback server must be down after Close")
	}
}
