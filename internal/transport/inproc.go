package transport

import (
	"bytes"
	"sync"

	"github.com/collablearn/ciarec/internal/param"
)

// Inproc is the pointer-passing backend: payloads cross the "network"
// as the same *param.Set the sender built, with wire sizes accounted
// from WireBytes. It preserves the pre-transport simulators'
// behaviour byte-identically and costs nothing per message.
//
// With a Compression level set it stops being a pure pointer pass:
// every transfer runs the same CPQ1 encode→decode round-trip the
// serializing backends apply — point-to-point payloads are quantized
// in place (ownership transfers through Send anyway), broadcasts are
// quantized into a pooled staging copy so the borrowed source is
// never mutated. A compressed simulation therefore computes identical
// values whichever backend carries it — inproc is the cheapest way to
// measure compression's model-quality effect.
type Inproc struct {
	counters
	compressor
	bufs  sync.Pool     // *bytes.Buffer, compressed mode only
	stage param.Buffers // broadcast staging sets, compressed mode only
}

var _ Transport = (*Inproc)(nil)

// NewInproc returns a fresh in-process transport.
func NewInproc() *Inproc { return &Inproc{} }

// Name implements Transport.
func (t *Inproc) Name() string { return "inproc" }

// Close implements Transport; the in-memory backend holds nothing.
func (t *Inproc) Close() error { return nil }

func (t *Inproc) getBuf() *bytes.Buffer {
	if b, ok := t.bufs.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// roundTrip applies the compressed codec's lossy effect: encode src
// against ref, decode the bytes into dst (which may be src itself for
// an in-place quantization). It returns the encoded size — the bytes
// a serializing backend would have moved.
func (t *Inproc) roundTrip(src, dst, ref *param.Set) int64 {
	buf := t.getBuf()
	n := t.encodeSet(buf, src, ref)
	if _, err := dst.DecodeFromRef(bytes.NewReader(buf.Bytes()), ref); err != nil {
		panic("transport: inproc compressed decode: " + err.Error())
	}
	t.bufs.Put(buf)
	return n
}

// Send implements Transport: the receiver observes the sender's set
// (quantized in place first when compression is on). The in-memory
// backend never fails.
func (t *Inproc) Send(round, _ int, payload *param.Set, _ *param.Buffers) (*param.Set, error) {
	wire := int64(payload.WireBytes())
	n := wire
	if t.comp.Enabled() {
		n = t.roundTrip(payload, payload, t.sendRef(round))
	}
	t.messages.Add(1)
	t.bytes.Add(n)
	t.rawBytes.Add(wire)
	t.chunks.Add(1)
	return payload, nil
}

// OpenBroadcast implements Transport. In compressed mode the borrowed
// source stays untouched — its quantized image is staged in a pooled
// copy that Deliver fans out, and the original becomes the round's
// delta reference for uploads, exactly mirroring the serializing
// backends (whose server-side model never degrades either).
func (t *Inproc) OpenBroadcast(round int, src *param.Set) (Broadcast, error) {
	wire := int64(src.WireBytes())
	b := &inprocBroadcast{t: t, src: src, wire: wire, n: wire}
	if t.comp.Enabled() {
		stage := t.stage.GetShaped(src)
		if stage == nil {
			stage = src.Clone()
		}
		b.n = t.roundTrip(src, stage, nil)
		b.stage = stage
		t.setRef(round, src)
	}
	return b, nil
}

type inprocBroadcast struct {
	t     *Inproc
	src   *param.Set
	stage *param.Set // quantized image, compressed mode only
	wire  int64      // dense-codec size
	n     int64      // encoded size actually accounted
}

// Deliver copies the source (or its staged quantized image) directly
// into the receiver's set.
func (b *inprocBroadcast) Deliver(_ int, dst *param.Set) error {
	if b.stage != nil {
		dst.CopyFrom(b.stage)
	} else {
		dst.CopyFrom(b.src)
	}
	b.t.bMessages.Add(1)
	b.t.bBytes.Add(b.n)
	b.t.rawBBytes.Add(b.wire)
	b.t.chunks.Add(1)
	return nil
}

func (b *inprocBroadcast) Close() {
	if b.stage != nil {
		b.t.stage.Put(b.stage)
		b.stage = nil
		b.t.clearRef()
	}
	b.src = nil
}
