package transport

import "github.com/collablearn/ciarec/internal/param"

// Inproc is the pointer-passing backend: payloads cross the "network"
// as the same *param.Set the sender built, with wire sizes accounted
// from WireBytes. It preserves the pre-transport simulators'
// behaviour byte-identically and costs nothing per message.
type Inproc struct {
	counters
}

var _ Transport = (*Inproc)(nil)

// NewInproc returns a fresh in-process transport.
func NewInproc() *Inproc { return &Inproc{} }

// Name implements Transport.
func (t *Inproc) Name() string { return "inproc" }

// Close implements Transport; the in-memory backend holds nothing.
func (t *Inproc) Close() error { return nil }

// Send implements Transport: the receiver observes the sender's set.
// The in-memory backend never fails.
func (t *Inproc) Send(_, _ int, payload *param.Set, _ *param.Buffers) (*param.Set, error) {
	t.messages.Add(1)
	t.bytes.Add(int64(payload.WireBytes()))
	t.chunks.Add(1)
	return payload, nil
}

// OpenBroadcast implements Transport.
func (t *Inproc) OpenBroadcast(_ int, src *param.Set) (Broadcast, error) {
	return &inprocBroadcast{t: t, src: src, wire: int64(src.WireBytes())}, nil
}

type inprocBroadcast struct {
	t    *Inproc
	src  *param.Set
	wire int64
}

// Deliver copies the source directly into the receiver's set.
func (b *inprocBroadcast) Deliver(_ int, dst *param.Set) error {
	dst.CopyFrom(b.src)
	b.t.bMessages.Add(1)
	b.t.bBytes.Add(b.wire)
	b.t.chunks.Add(1)
	return nil
}

func (b *inprocBroadcast) Close() { b.src = nil }
