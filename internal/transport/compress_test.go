package transport

import (
	"testing"

	"github.com/collablearn/ciarec/internal/param"
)

// compressedBackends builds one instance of every base backend at the
// given compression level (callers Close them).
func compressedBackends(t *testing.T, comp param.Compression) []Transport {
	t.Helper()
	var ts []Transport
	for _, name := range Names() {
		tr, err := NewOptions(name, Options{Compression: comp})
		if err != nil {
			t.Fatalf("NewOptions(%q, %v): %v", name, comp, err)
		}
		ts = append(ts, tr)
	}
	return ts
}

// A compressed round — broadcast out, perturbed payload back — must
// compute bit-identical values on every backend: inproc applies the
// same encode→decode the serializing backends do, and the socket
// server only relays bytes. The received values must also stay within
// the codec's documented error bound of what was sent.
func TestCompressedBackendsEquivalent(t *testing.T) {
	for _, bits := range []int{8, 16} {
		comp := param.Compression{Bits: bits}
		t.Run(comp.String(), func(t *testing.T) {
			type result struct {
				name            string
				bcast, received *param.Set
			}
			var results []result
			for _, tr := range compressedBackends(t, comp) {
				src := testSet(2)
				origSrc := src.Clone()
				bc, err := tr.OpenBroadcast(3, src)
				if err != nil {
					t.Fatal(err)
				}
				dst := testSet(0)
				if err := bc.Deliver(0, dst); err != nil {
					t.Fatal(err)
				}
				// The upload: the delivered model locally perturbed — the
				// shape of a FedAvg round, sent while the broadcast is open
				// so it delta-codes against src.
				payload := dst.Clone()
				payload.Get("item_emb")[7] += 0.125
				payload.Get("bias")[2] -= 3e-3
				sent := payload.Clone()
				var pool param.Buffers
				got, err := tr.Send(3, 0, payload, &pool)
				if err != nil {
					t.Fatal(err)
				}
				if !param.Equal(src, origSrc, 0) {
					t.Fatalf("%s: compressed broadcast mutated the borrowed source", tr.Name())
				}
				bc.Close()
				for _, e := range []struct {
					name       string
					sent, recv *param.Set
				}{{"broadcast", origSrc, dst}, {"send", sent, got}} {
					for i := 0; i < e.sent.Len(); i++ {
						se, re := e.sent.At(i), e.recv.At(i)
						lo, hi := se.Data[0], se.Data[0]
						for _, v := range se.Data {
							lo, hi = min(lo, v), max(hi, v)
						}
						bound := comp.MaxError(hi - lo)
						for j := range se.Data {
							if d := re.Data[j] - se.Data[j]; d > bound || d < -bound {
								t.Fatalf("%s: %s %s[%d]: |%g - %g| beyond bound %g",
									tr.Name(), e.name, se.Name, j, re.Data[j], se.Data[j], bound)
							}
						}
					}
				}
				results = append(results, result{tr.Name(), dst, got.Clone()})
				pool.Put(got)
				tr.Close()
			}
			for _, r := range results[1:] {
				if !param.Equal(results[0].bcast, r.bcast, 0) {
					t.Errorf("broadcast values differ between %s and %s", results[0].name, r.name)
				}
				if !param.Equal(results[0].received, r.received, 0) {
					t.Errorf("received values differ between %s and %s", results[0].name, r.name)
				}
			}
		})
	}
}

// With compression off every backend must keep RawBytes == Bytes: the
// dense codec is the raw accounting.
func TestCompressionOffRawEqualsBytes(t *testing.T) {
	for _, tr := range compressedBackends(t, param.Compression{}) {
		var pool param.Buffers
		src := testSet(1)
		bc, err := tr.OpenBroadcast(0, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := bc.Deliver(0, testSet(0)); err != nil {
			t.Fatal(err)
		}
		bc.Close()
		got, err := tr.Send(0, 0, pool.Clone(src), &pool)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(got)
		st := tr.Stats()
		if st.RawBytes != st.Bytes || st.RawBroadcastBytes != st.BroadcastBytes {
			t.Errorf("%s: raw/actual bytes diverge with compression off: %+v", tr.Name(), st)
		}
		if st.RawBytes == 0 || st.RawBroadcastBytes == 0 {
			t.Errorf("%s: raw byte counters not accumulated: %+v", tr.Name(), st)
		}
		tr.Close()
	}
}

// An 8-bit delta-coded upload of a lightly-perturbed model must move
// at least 2× fewer payload bytes than the dense codec — the PR's
// headline saving, checked here on the real socket path (and every
// other backend) via the Stats raw-vs-actual counters.
func TestCompressedSendHalvesPayloadBytes(t *testing.T) {
	for _, tr := range compressedBackends(t, param.Compression{Bits: 8}) {
		var pool param.Buffers
		src := testSet(1)
		bc, err := tr.OpenBroadcast(0, src)
		if err != nil {
			t.Fatal(err)
		}
		payload := pool.Clone(src)
		payload.Get("item_emb")[3] += 0.5 // a sparse local update
		got, err := tr.Send(0, 0, payload, &pool)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(got)
		bc.Close()
		st := tr.Stats()
		if st.Bytes*2 > st.RawBytes {
			t.Errorf("%s: compressed upload moved %d bytes, dense %d — want ≥2× saving",
				tr.Name(), st.Bytes, st.RawBytes)
		}
		// The broadcast has no reference but still quantizes 8 bytes per
		// value down to ~1.
		if st.BroadcastBytes*2 > st.RawBroadcastBytes {
			t.Errorf("%s: compressed broadcast moved %d bytes, dense %d — want ≥2× saving",
				tr.Name(), st.BroadcastBytes, st.RawBroadcastBytes)
		}
		tr.Close()
	}
}

// The delta reference is scoped to the open broadcast's round: sends
// in other rounds, or after Close, code absolute (the decoder of a
// gossip push or a late upload has no broadcast to reconstruct from).
func TestCompressedSendRefScopedToRound(t *testing.T) {
	tr, err := NewOptions("wire", Options{Compression: param.Compression{Bits: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	w := tr.(*Wire)
	src := testSet(1)
	bc, err := tr.OpenBroadcast(4, src)
	if err != nil {
		t.Fatal(err)
	}
	if w.sendRef(4) != src {
		t.Fatal("open broadcast must publish its source as the round's send reference")
	}
	if w.sendRef(5) != nil {
		t.Fatal("the send reference must not leak into other rounds")
	}
	bc.Close()
	if w.sendRef(4) != nil {
		t.Fatal("Broadcast.Close must withdraw the send reference")
	}
}

// The faulty wrapper forwards the inner backend's codec: simulators
// validate their Config.Compression against it.
func TestFaultyDelegatesCompression(t *testing.T) {
	comp := param.Compression{Bits: 16}
	tr, err := NewOptions("faulty:wire", Options{Compression: comp})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Compression(); got != comp {
		t.Fatalf("faulty wrapper reports compression %v, inner has %v", got, comp)
	}
	if _, err := NewOptions("wire", Options{Compression: param.Compression{Bits: 12}}); err == nil {
		t.Fatal("invalid bit width must be rejected at construction")
	}
}
