//go:build race

package transport

// raceEnabled gates assertions that are invalid under the race
// detector (sync.Pool intentionally randomizes item reuse in race
// builds, so allocation and pointer-identity checks on recycled
// storage would flake).
const raceEnabled = true
