package transport

import "github.com/collablearn/ciarec/internal/obs"

// statsMetrics maps registry metric names to Stats field readers, in
// the registration (and exposition) order the traffic tables use.
var statsMetrics = []struct {
	name string
	get  func(Stats) int64
}{
	{"transport_messages_total", func(s Stats) int64 { return s.Messages }},
	{"transport_bytes_total", func(s Stats) int64 { return s.Bytes }},
	{"transport_broadcast_messages_total", func(s Stats) int64 { return s.BroadcastMessages }},
	{"transport_broadcast_bytes_total", func(s Stats) int64 { return s.BroadcastBytes }},
	{"transport_chunks_total", func(s Stats) int64 { return s.Chunks }},
	{"transport_raw_bytes_total", func(s Stats) int64 { return s.RawBytes }},
	{"transport_raw_broadcast_bytes_total", func(s Stats) int64 { return s.RawBroadcastBytes }},
	{"transport_round_trips_total", func(s Stats) int64 { return s.RoundTrips }},
	{"transport_reconnects_total", func(s Stats) int64 { return s.Reconnects }},
	{"transport_retries_total", func(s Stats) int64 { return s.Retries }},
	{"transport_timeouts_total", func(s Stats) int64 { return s.Timeouts }},
	{"transport_gave_up_total", func(s Stats) int64 { return s.GaveUp }},
	{"transport_injected_faults_total", func(s Stats) int64 { return s.InjectedFaults }},
}

// RegisterStats installs live views of tr's traffic counters into reg
// under the transport_* metric names (see OBSERVABILITY.md). The
// registry gathers tr.Stats() on demand, so the transport stays the
// owner of the counters and the registry is a read-only surface over
// them. No-op when either argument is nil.
func RegisterStats(reg *obs.Registry, tr Transport) {
	if reg == nil || tr == nil {
		return
	}
	for _, m := range statsMetrics {
		get := m.get
		reg.RegisterFunc(m.name, func() float64 { return float64(get(tr.Stats())) })
	}
}

// StatsSnapshot renders st under the same transport_* metric names
// RegisterStats uses — the fallback the table renderers take for rows
// that carry a plain Stats value but no registry snapshot.
func StatsSnapshot(st Stats) obs.Snapshot {
	out := make(obs.Snapshot, len(statsMetrics))
	for _, m := range statsMetrics {
		out[m.name] = float64(m.get(st))
	}
	return out
}
