package transport

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// Socket is the multi-process backend: every parameter transfer is a
// framed request/response round-trip over a real socket (Unix-domain
// or TCP) against an internal/transport/rpc server. A point-to-point
// Send uploads the codec bytes and decodes the relay the server
// answers with — the bytes the receiving participant observes; a
// broadcast uploads its source once and downloads it per receiver,
// like a parameter server fanning out the global model.
//
// In loopback mode (transport.New("socket") / "socket-tcp") the Socket
// owns an in-process rpc.Server listening on a real socket, so the
// complete network path — framing, kernel socket buffers, concurrent
// connections — runs inside one process, deterministically. Dialed
// mode (transport.Dial) connects to an external worker (cmd/ciaworker)
// and the same round spans OS processes.
//
// Like Wire, Socket panics on codec failures — the bytes come from the
// matching encoder, so a parse failure is a bug. Network failures are a
// runtime condition, handled by the client's RetryPolicy: a round-trip
// that exhausts its attempts surfaces as a transfer error (wrapping
// rpc.ErrUnavailable) for the simulators to treat as a lost message or
// unreachable participant.
type Socket struct {
	counters
	compressor
	name string
	cl   *rpc.Client
	srv  *rpc.Server // loopback mode only
	dir  string      // loopback unix socket temp dir
	bufs sync.Pool   // *bytes.Buffer
}

var _ Transport = (*Socket)(nil)

// newLoopbackSocket starts an in-process rpc.Server on the given
// network ("unix" on a fresh temp-dir socket path, "tcp" on a
// kernel-assigned loopback port) and connects a Socket to it.
func newLoopbackSocket(network string, policy rpc.RetryPolicy, comp param.Compression) (*Socket, error) {
	var addr, dir string
	switch network {
	case "unix":
		d, err := os.MkdirTemp("", "ciarec-sock-")
		if err != nil {
			return nil, fmt.Errorf("transport: loopback socket dir: %w", err)
		}
		dir = d
		addr = filepath.Join(d, "rpc.sock")
	case "tcp":
		addr = "127.0.0.1:0"
	default:
		return nil, fmt.Errorf("transport: unsupported loopback network %q", network)
	}
	srv, err := rpc.Serve(network, addr)
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	t, err := dialSocket(network, srv.Addr(), policy, comp)
	if err != nil {
		srv.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	t.srv = srv
	t.dir = dir
	return t, nil
}

// dialSocket connects a Socket to an already-running server.
func dialSocket(network, addr string, policy rpc.RetryPolicy, comp param.Compression) (*Socket, error) {
	cl, err := rpc.DialPolicy(network, addr, policy)
	if err != nil {
		return nil, err
	}
	name := "socket"
	if network == "tcp" {
		name = "socket-tcp"
	}
	t := &Socket{name: name, cl: cl}
	t.comp = comp
	return t, nil
}

// Name implements Transport.
func (t *Socket) Name() string { return t.name }

// Stats implements Transport, adding the RPC exchange counters on top
// of the shared traffic accounting.
func (t *Socket) Stats() Stats {
	st := t.counters.Stats()
	st.RoundTrips = t.cl.RoundTrips()
	st.Reconnects = t.cl.Reconnects()
	st.Retries = t.cl.Retries()
	st.Timeouts = t.cl.Timeouts()
	st.GaveUp = t.cl.GaveUp()
	return st
}

// Close implements Transport: it closes the connection pool and, in
// loopback mode, shuts the in-process server down (unlinking the unix
// socket). A second Close returns rpc.ErrClientClosed.
func (t *Socket) Close() error {
	err := t.cl.Close()
	if t.srv != nil {
		if serr := t.srv.Close(); err == nil {
			err = serr
		}
	}
	if t.dir != "" {
		os.RemoveAll(t.dir)
	}
	return err
}

func (t *Socket) getBuf() *bytes.Buffer {
	if b, ok := t.bufs.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// encode marshals s into a pooled buffer and returns it with the
// encoded length (delta-coded against ref in compressed mode).
func (t *Socket) encode(s, ref *param.Set) (*bytes.Buffer, int64) {
	buf := t.getBuf()
	return buf, t.encodeSet(buf, s, ref)
}

// decodeFrame decodes an RPC response payload into dst, which must
// have the encoded structure (and the encoder's ref in compressed
// delta mode — the server relays the frame bytes untouched, so the
// reference lives only on this, the encoding, side).
func decodeFrame(f *rpc.Frame, dst, ref *param.Set) error {
	var r bytes.Reader
	r.Reset(f.Payload)
	if _, err := dst.DecodeFromRef(&r, ref); err != nil {
		return err
	}
	return nil
}

// Send implements Transport: marshal, round-trip the bytes through the
// RPC server, recycle the sender's set, and unmarshal the relayed
// response into a pool-recycled set of the same structure. On RPC
// failure (the server stayed unreachable through the RetryPolicy) the
// payload has already been recycled, the receive set is returned to
// the pool, and the error surfaces for the simulator to treat as a
// lost message.
func (t *Socket) Send(round, from int, payload *param.Set, pool *param.Buffers) (*param.Set, error) {
	ref := t.sendRef(round)
	wire := int64(payload.WireBytes())
	buf, n := t.encode(payload, ref)
	recv := pool.GetShaped(payload)
	if recv == nil {
		// Pool cold (first rounds): clone the payload for its structure;
		// the decode below overwrites every value.
		recv = payload.Clone()
	}
	pool.Put(payload)
	err := t.cl.RoundTrip(rpc.MsgSend, uint32(round), uint32(from), buf.Bytes(), func(f *rpc.Frame) error {
		if f.Type != rpc.MsgSendAck {
			return fmt.Errorf("unexpected response type %d to send", f.Type)
		}
		return decodeFrame(f, recv, ref)
	})
	t.bufs.Put(buf)
	if err != nil {
		pool.Put(recv)
		return nil, fmt.Errorf("transport: socket send: %w", err)
	}
	t.messages.Add(1)
	t.bytes.Add(n)
	t.rawBytes.Add(wire)
	t.chunks.Add(1)
	return recv, nil
}

// OpenBroadcast implements Transport: upload the encoded source once
// (coded absolute — receivers have no reference yet); every Deliver
// downloads and decodes it. In compressed mode the source also becomes
// the round's delta reference for uploads until Close; the reference
// never crosses the socket, so a server restart or relay cannot
// desynchronize it.
func (t *Socket) OpenBroadcast(round int, src *param.Set) (Broadcast, error) {
	buf, n := t.encode(src, nil)
	var id uint32
	err := t.cl.RoundTrip(rpc.MsgBcastOpen, uint32(round), 0, buf.Bytes(), func(f *rpc.Frame) error {
		if f.Type != rpc.MsgBcastOpened {
			return fmt.Errorf("unexpected response type %d to broadcast open", f.Type)
		}
		id = f.ID
		return nil
	})
	t.bufs.Put(buf)
	if err != nil {
		return nil, fmt.Errorf("transport: socket broadcast open: %w", err)
	}
	t.setRef(round, src)
	return &socketBroadcast{t: t, round: uint32(round), id: id, n: n, wire: int64(src.WireBytes())}, nil
}

type socketBroadcast struct {
	t     *Socket
	round uint32
	id    uint32
	n     int64
	wire  int64
}

// Deliver downloads the stored broadcast payload into dst. Concurrent
// Delivers each ride their own pooled connection. On RPC failure dst
// is unchanged and the error surfaces for the simulator to treat as an
// unreachable receiver.
func (b *socketBroadcast) Deliver(_ int, dst *param.Set) error {
	err := b.t.cl.RoundTrip(rpc.MsgBcastGet, b.round, b.id, nil, func(f *rpc.Frame) error {
		if f.Type != rpc.MsgBcastData {
			return fmt.Errorf("unexpected response type %d to broadcast get", f.Type)
		}
		return decodeFrame(f, dst, nil)
	})
	if err != nil {
		return fmt.Errorf("transport: socket broadcast deliver: %w", err)
	}
	b.t.bMessages.Add(1)
	b.t.bBytes.Add(b.n)
	b.t.rawBBytes.Add(b.wire)
	b.t.chunks.Add(1)
	return nil
}

// Close releases the server-side broadcast storage. A close that fails
// (server unreachable) is tolerated silently: the server's bounded
// broadcast store evicts the orphaned entry on its own.
func (b *socketBroadcast) Close() {
	b.t.clearRef()
	b.t.cl.RoundTrip(rpc.MsgBcastClose, b.round, b.id, nil, func(f *rpc.Frame) error {
		if f.Type != rpc.MsgBcastClosed {
			return fmt.Errorf("unexpected response type %d to broadcast close", f.Type)
		}
		return nil
	})
}
