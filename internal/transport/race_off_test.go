//go:build !race

package transport

// raceEnabled gates assertions that are invalid under the race
// detector; see race_on_test.go.
const raceEnabled = false
