package classify

import "testing"

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(GenConfig{NumClients: 20, NumClasses: 5, Dim: 8, SamplesPerClient: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ClientX) != 20 || len(d.ClientY) != 20 {
		t.Fatal("client partition wrong")
	}
	for u := range d.ClientX {
		if len(d.ClientX[u]) != 10 {
			t.Fatalf("client %d has %d samples", u, len(d.ClientX[u]))
		}
		for i, y := range d.ClientY[u] {
			if y != d.ClientClass[u] {
				t.Fatalf("client %d sample %d label %d != class %d", u, i, y, d.ClientClass[u])
			}
		}
	}
	if len(d.TargetX) != 5 {
		t.Fatal("missing target sets")
	}
	if len(d.TestX) != len(d.TestY) || len(d.TestX) == 0 {
		t.Fatal("missing test set")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{NumClients: 3, NumClasses: 10}); err == nil {
		t.Fatal("expected error when clients < classes")
	}
}

func TestCommunityPartition(t *testing.T) {
	d, err := Generate(GenConfig{NumClients: 20, NumClasses: 5, Dim: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 5; c++ {
		com := d.Community(c)
		if len(com) != 4 {
			t.Fatalf("class %d community size %d, want 4", c, len(com))
		}
		total += len(com)
	}
	if total != 20 {
		t.Fatal("communities do not partition clients")
	}
}

// The §VIII-E headline: CIA finds every class community in a non-iid
// federation (paper: 100% vs 10% random), and the global model still
// learns the task.
func TestRunUniversality(t *testing.T) {
	res, err := RunUniversality(RunConfig{
		Gen:    GenConfig{NumClients: 30, NumClasses: 5, Dim: 16, SamplesPerClient: 20, Seed: 3},
		Rounds: 15,
		Hidden: 32,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalAccuracy < 0.8 {
		t.Fatalf("global accuracy %.3f; federation failed to learn", res.GlobalAccuracy)
	}
	if res.CIAAccuracy < 0.9 {
		t.Fatalf("CIA accuracy %.3f, want ~1 (paper reports 100%%)", res.CIAAccuracy)
	}
	if res.RandomBound != 0.2 {
		t.Fatalf("random bound %.3f, want 0.2", res.RandomBound)
	}
	if res.Rounds != 15 {
		t.Fatal("rounds not propagated")
	}
}

func TestRunUniversalityDeterministic(t *testing.T) {
	run := func() Result {
		res, err := RunUniversality(RunConfig{
			Gen:    GenConfig{NumClients: 15, NumClasses: 5, Dim: 8, SamplesPerClient: 10, Seed: 5},
			Rounds: 5, Hidden: 16, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %+v != %+v", a, b)
	}
}
