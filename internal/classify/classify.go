// Package classify reproduces the paper's universality experiment
// (§VIII-E): CIA applied to an image-classification task rather than a
// recommender.
//
// The paper uses MNIST with a strongly non-iid partition (each of 100
// clients holds samples of exactly one digit) and a one-hidden-layer
// 100-unit MLP trained in FL; a community is the set of clients
// holding the same class. MNIST is not available offline, so the
// substrate is a synthetic 10-class Gaussian-cluster dataset: class c
// has a random mean direction in R^d and samples are isotropic
// Gaussian around it. This preserves exactly the property the
// experiment tests — clients whose data share a label distribution
// form a community a model-comparison attack can find (DESIGN.md §2).
package classify

import (
	"fmt"
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// Data is a labelled vector dataset partitioned across clients.
type Data struct {
	Dim        int
	NumClasses int
	// ClientX[u] / ClientY[u] are client u's local samples.
	ClientX [][][]float64
	ClientY [][]int
	// ClientClass[u] is the single class client u holds (the community
	// ground truth).
	ClientClass []int
	// TargetX[c] are the adversary's crafted target samples for class
	// c (held out from every client's training data).
	TargetX [][][]float64
	// TestX/TestY is a shared held-out test set for utility.
	TestX [][]float64
	TestY []int
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	NumClients       int // default 100
	NumClasses       int // default 10
	Dim              int // default 32
	SamplesPerClient int // default 40
	TargetPerClass   int // default 20
	TestPerClass     int // default 20
	// Separation scales class-mean distances (default 2.5).
	Separation float64
	Seed       uint64
}

func (c *GenConfig) setDefaults() {
	if c.NumClients == 0 {
		c.NumClients = 100
	}
	if c.NumClasses == 0 {
		c.NumClasses = 10
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.SamplesPerClient == 0 {
		c.SamplesPerClient = 40
	}
	if c.TargetPerClass == 0 {
		c.TargetPerClass = 20
	}
	if c.TestPerClass == 0 {
		c.TestPerClass = 20
	}
	if c.Separation == 0 {
		// Default separation puts the Bayes accuracy of the 10-class
		// task near the paper's 87% MNIST accuracy.
		c.Separation = 3.2
	}
}

// Generate builds the non-iid partition: client u holds samples of
// class u mod NumClasses only.
func Generate(cfg GenConfig) (*Data, error) {
	cfg.setDefaults()
	if cfg.NumClients < cfg.NumClasses {
		return nil, fmt.Errorf("classify: need at least one client per class (%d < %d)",
			cfg.NumClients, cfg.NumClasses)
	}
	r := mathx.NewRand(cfg.Seed)
	means := make([][]float64, cfg.NumClasses)
	for c := range means {
		means[c] = make([]float64, cfg.Dim)
		mathx.FillNormal(r, means[c], 0, 1)
		mathx.ClipL2(means[c], 1)
		mathx.Scale(cfg.Separation, means[c])
	}
	sample := func(c int) []float64 {
		x := make([]float64, cfg.Dim)
		for k := range x {
			x[k] = means[c][k] + mathx.Normal(r, 0, 1)
		}
		return x
	}
	d := &Data{
		Dim:         cfg.Dim,
		NumClasses:  cfg.NumClasses,
		ClientX:     make([][][]float64, cfg.NumClients),
		ClientY:     make([][]int, cfg.NumClients),
		ClientClass: make([]int, cfg.NumClients),
		TargetX:     make([][][]float64, cfg.NumClasses),
	}
	for u := 0; u < cfg.NumClients; u++ {
		c := u % cfg.NumClasses
		d.ClientClass[u] = c
		for i := 0; i < cfg.SamplesPerClient; i++ {
			d.ClientX[u] = append(d.ClientX[u], sample(c))
			d.ClientY[u] = append(d.ClientY[u], c)
		}
	}
	for c := 0; c < cfg.NumClasses; c++ {
		for i := 0; i < cfg.TargetPerClass; i++ {
			d.TargetX[c] = append(d.TargetX[c], sample(c))
		}
		for i := 0; i < cfg.TestPerClass; i++ {
			d.TestX = append(d.TestX, sample(c))
			d.TestY = append(d.TestY, c)
		}
	}
	return d, nil
}

// Community returns the set of clients holding class c.
func (d *Data) Community(c int) map[int]struct{} {
	out := make(map[int]struct{})
	for u, cc := range d.ClientClass {
		if cc == c {
			out[u] = struct{}{}
		}
	}
	return out
}

// mlpEval scores momentum-averaged MLP states for CIA: the relevance
// of a model for class c's target samples is its negative mean
// cross-entropy on them (a well-trained-on-c model assigns high
// probability to c).
type mlpEval struct {
	scratch *model.MLP
	data    *Data
}

func (e *mlpEval) Load(state *param.Set) { e.scratch.Params().CopyFrom(state) }

func (e *mlpEval) Score(sender, t int) float64 {
	return -e.scratch.MeanLossLabel(e.data.TargetX[t], t)
}

func (e *mlpEval) NumTargets() int { return e.data.NumClasses }

// Result summarizes one universality run.
type Result struct {
	// GlobalAccuracy is the final global model's test accuracy
	// (the paper reports 87% on MNIST).
	GlobalAccuracy float64
	// CIAAccuracy is the mean community-recovery accuracy over all
	// class targets at the best round (the paper reports 100%).
	CIAAccuracy float64
	// RandomBound is K/N for this partition.
	RandomBound float64
	// Rounds is the number of FL rounds executed.
	Rounds int
}

// RunConfig parameterizes RunUniversality.
type RunConfig struct {
	Gen    GenConfig
	Rounds int     // default 25
	Hidden int     // default 100 (the paper's hidden width)
	LR     float64 // default 0.05
	Beta   float64 // CIA momentum, default 0.9
	Seed   uint64
}

// RunUniversality trains the MLP federation and runs CIA from the
// server, returning the utility/attack summary. The Evaluator and CIA
// machinery are the identical code paths used against recommenders —
// that reuse is the point of the experiment.
func RunUniversality(cfg RunConfig) (Result, error) {
	if cfg.Rounds == 0 {
		cfg.Rounds = 25
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 100
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.9
	}
	data, err := Generate(cfg.Gen)
	if err != nil {
		return Result{}, err
	}
	r := mathx.NewRand(cfg.Seed)
	sizes := []int{data.Dim, cfg.Hidden, data.NumClasses}
	global := model.NewMLP(sizes, false, r.Uint64())
	numClients := len(data.ClientX)
	clientRngs := make([]*rand.Rand, numClients)
	for u := range clientRngs {
		clientRngs[u] = mathx.Split(r)
	}

	communitySize := numClients / data.NumClasses
	truths := make([]map[int]struct{}, data.NumClasses)
	for c := range truths {
		truths[c] = data.Community(c)
	}

	// CIA from the server, identical wiring to the recommender case.
	ciaInst := newMLPCIA(cfg.Beta, communitySize, numClients, sizes, data)

	var bestCIA float64
	for round := 0; round < cfg.Rounds; round++ {
		deltas := param.New() // accumulated weighted deltas
		for _, name := range global.Params().Names() {
			e := global.Params().Entry(name)
			deltas.Add(name, e.Rows, e.Cols, make([]float64, len(e.Data)))
		}
		for u := 0; u < numClients; u++ {
			local := global.Clone()
			local.TrainEpoch(clientRngs[u], data.ClientX[u], data.ClientY[u], cfg.LR)
			payload := local.Params().Clone()
			ciaInst.Observe(u, payload)
			w := 1 / float64(numClients)
			for _, name := range deltas.Names() {
				pd := payload.Get(name)
				gd := global.Params().Get(name)
				dd := deltas.Get(name)
				for i := range dd {
					dd[i] += w * (pd[i] - gd[i])
				}
			}
		}
		global.Params().Axpy(1, deltas)
		ciaInst.EndRound()
		var acc float64
		for c := 0; c < data.NumClasses; c++ {
			acc += mathxAccuracy(ciaInst.Predict(c), truths[c])
		}
		acc /= float64(data.NumClasses)
		if acc > bestCIA {
			bestCIA = acc
		}
	}
	return Result{
		GlobalAccuracy: global.Accuracy(data.TestX, data.TestY),
		CIAAccuracy:    bestCIA,
		RandomBound:    float64(communitySize) / float64(numClients),
		Rounds:         cfg.Rounds,
	}, nil
}
