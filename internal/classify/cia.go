package classify

import (
	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/model"
)

// newMLPCIA wires the generic CIA implementation to an MLP evaluator.
func newMLPCIA(beta float64, k, numUsers int, sizes []int, data *Data) *attack.CIA {
	return attack.New(attack.Config{
		Beta:     beta,
		K:        k,
		NumUsers: numUsers,
		Eval:     &mlpEval{scratch: model.NewMLP(sizes, false, 0), data: data},
	})
}

// mathxAccuracy aliases evalx.Accuracy to keep classify.go free of a
// second evalx import site.
func mathxAccuracy(pred []int, truth map[int]struct{}) float64 {
	return evalx.Accuracy(pred, truth)
}
