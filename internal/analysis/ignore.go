package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is sanctioned in place with a justified directive on the
// flagged line or the line above it:
//
//	//lint:ignore detrand wall-clock is reporting-only, not simulation state
//	//lint:sorted keys are drained into a slice and sorted before hashing
//
// //lint:ignore takes a comma-separated analyzer list and a free-text
// justification. //lint:sorted is the mapiter-specific sanction the
// golden-pinned code uses (shorthand for "ignore mapiter"), and the
// justification is checked: an empty reason does not suppress — the
// driver reports the original finding plus the missing justification,
// so a bare directive can never silence a diagnostic.

// A directive is one parsed //lint: comment.
type directive struct {
	analyzers []string // lower-case analyzer names; ("sorted") → ("mapiter")
	reason    string
	pos       token.Pos
	line      int
	file      string
}

const sortedDirective = "sorted"

// parseDirectives extracts every //lint: directive from the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				verb, rest, _ := strings.Cut(text, " ")
				d := directive{
					reason: strings.TrimSpace(rest),
					pos:    c.Pos(),
					line:   fset.Position(c.Pos()).Line,
					file:   fset.Position(c.Pos()).Filename,
				}
				switch verb {
				case "ignore":
					names, reason, _ := strings.Cut(d.reason, " ")
					d.reason = strings.TrimSpace(reason)
					for _, n := range strings.Split(names, ",") {
						if n = strings.TrimSpace(n); n != "" {
							d.analyzers = append(d.analyzers, strings.ToLower(n))
						}
					}
				case sortedDirective:
					d.analyzers = []string{"mapiter"}
				default:
					continue // not ours (e.g. staticcheck file-level directives)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func (d *directive) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ApplySuppressions filters diags through the //lint: directives found
// in files. A diagnostic is dropped when a covering directive with a
// non-empty justification sits on the same line or the line above; a
// covering directive with an empty justification keeps the diagnostic
// and annotates it, enforcing the "checked justification" contract.
// Both the vettool driver and the analysistest runner route findings
// through here, so fixtures exercise the same path production uses.
func ApplySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(fset, files)
	if len(dirs) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, dg := range diags {
		pos := fset.Position(dg.Pos)
		suppressed := false
		for i := range dirs {
			d := &dirs[i]
			if d.file != pos.Filename || !d.covers(dg.Analyzer) {
				continue
			}
			if d.line != pos.Line && d.line != pos.Line-1 {
				continue
			}
			if d.reason == "" {
				dg.Message += " (suppression directive is missing its justification; write //lint:" +
					directiveSpelling(dg.Analyzer) + " <reason>)"
				break
			}
			suppressed = true
			break
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	return kept
}

func directiveSpelling(analyzer string) string {
	if analyzer == "mapiter" {
		return "sorted"
	}
	return "ignore " + analyzer
}
