package analysis_test

import (
	"testing"

	"github.com/collablearn/ciarec/internal/analysis"
	"github.com/collablearn/ciarec/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapIter, "gossip", "report")
}
