package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand enforces the seed-purity contract in deterministic
// packages: golden hashes must be a pure function of (seed, spec), so
// nothing in fed/gossip/model/attack/defense/transport/experiments may
// read the wall clock or draw from the process-global RNG. Randomness
// is derived with mathx.StreamSeeds/NewStreamRand or threaded through
// an explicit *rand.Rand; time may only be read at sanctioned sites
// (I/O deadlines, wall-clock reporting) carrying a justified
// //lint:ignore detrand directive.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid time.Now and global math/rand draws in deterministic (golden-pinned) packages",
	Run:  runDetRand,
}

// globalRandOK lists the math/rand(/v2) package-level functions that
// do not consume the global source: constructors and helpers that the
// threaded-RNG discipline still needs.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDetRand(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods on a threaded *rand.Rand are the sanctioned path
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now in deterministic package %s: golden hashes must be pure in the seed; thread a logical clock or justify with //lint:ignore detrand",
						pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandOK[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s in deterministic package %s: derive the stream with mathx.StreamSeeds/NewStreamRand or thread a *rand.Rand",
						fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
