package analysis

import (
	"go/ast"
	"go/types"
)

// PoolLeak enforces the pool-recycling contract of param.Buffers: a
// set acquired with Clone/GetShaped/CloneWithout must, on every
// control-flow path out of the acquiring scope — early error returns
// included — be recycled with Put or handed off (returned, stored,
// passed on). A pooled set that is simply dropped puts an allocation
// back into the steady-state parameter pipeline and silently erodes
// the allocation-free benchmarks.
//
// The analysis is a forward walk over the acquiring function's
// statement tree with an intentionally coarse transfer function: any
// mention of the acquired variable after the acquisition — Put, a
// transport send, a return of the value, capture by a closure —
// settles its obligation (ownership transferred or released). A path
// that reaches a return or falls off the end of the scope without
// mentioning the variable at all is a leak. This under-reports
// (mention is not proof of recycling) but never false-positives on
// the repo's hand-off idioms, and it catches the classic bug class:
// the early `return err` between Get and Put.
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc:  "require param.Buffers acquisitions to be recycled or handed off on every path",
	Run:  runPoolLeak,
}

// acquireMethods are the param.Buffers methods that hand out a pooled
// *Set the caller owes back to the pool.
var acquireMethods = map[string]bool{
	"Clone":        true,
	"GetShaped":    true,
	"CloneWithout": true,
	"Get":          true,
}

func runPoolLeak(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncForLeaks(pass, fn.Body)
		}
	}
	return nil
}

// checkFuncForLeaks finds each acquisition in body and walks the
// remainder of its innermost loop-or-function scope.
func checkFuncForLeaks(pass *Pass, body *ast.BlockStmt) {
	// Map each statement list to walk: the function body plus every
	// nested loop body (an acquisition inside a loop must settle every
	// iteration; a defer does not run per iteration).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncForLeaks(pass, n.Body)
			return false
		case *ast.BlockStmt:
			scanStmtsForAcquires(pass, n.List, n == body || isLoopBody(body, n))
		case *ast.CaseClause:
			scanStmtsForAcquires(pass, n.Body, false)
		case *ast.CommClause:
			scanStmtsForAcquires(pass, n.Body, false)
		}
		return true
	})
}

// scanStmtsForAcquires looks at the direct statements of one scope
// for `v := pool.Clone(...)` acquisitions and bare dropped results.
// terminal says whether falling off the end of the list discards the
// obligation (function and loop bodies: yes; an if/switch arm flows
// onward into statements this walk cannot see: no).
func scanStmtsForAcquires(pass *Pass, list []ast.Stmt, terminal bool) {
	for i, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isBuffersAcquire(pass, call) {
				pass.Reportf(call.Pos(),
					"result of param.Buffers.%s dropped: the pooled set can never be recycled",
					calleeName(call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				continue
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuffersAcquire(pass, call) {
				continue
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				if !ok {
					continue // stored into a field/element: handed off immediately
				}
				pass.Reportf(call.Pos(),
					"result of param.Buffers.%s assigned to _: the pooled set can never be recycled",
					calleeName(call))
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			w := &leakWalker{pass: pass, v: obj, acquire: call}
			// Walk the statements after the acquisition to the end of
			// this scope, then report if a path may exit unsettled.
			st := w.walkStmts(list[i+1:], held)
			if st == held && terminal {
				pass.Reportf(call.Pos(),
					"pooled set %s (param.Buffers.%s) may reach the end of its scope without Put or hand-off",
					id.Name, calleeName(call))
			}
		}
	}
}

func isLoopBody(root ast.Node, block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body == block {
				found = true
			}
		case *ast.RangeStmt:
			if n.Body == block {
				found = true
			}
		}
		return true
	})
	return found
}

// isBuffersAcquire reports whether call is pool.<Acquire>(...) on a
// receiver of (a pointer to) type param.Buffers.
func isBuffersAcquire(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !acquireMethods[sel.Sel.Name] {
		return false
	}
	return isBuffersType(pass.TypeOf(sel.X))
}

func isBuffersType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buffers" && obj.Pkg() != nil && obj.Pkg().Name() == "param"
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Get"
}

// ---- the path walk ----

// obligation state for the acquired variable on the current path.
type leakState int

const (
	held    leakState = iota // acquired, not yet mentioned
	settled                  // recycled or handed off (any mention)
)

func merge(a, b leakState) leakState {
	if a == settled && b == settled {
		return settled
	}
	return held
}

type leakWalker struct {
	pass    *Pass
	v       types.Object
	acquire *ast.CallExpr
}

// mentions reports whether n references w.v anywhere.
func (w *leakWalker) mentions(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && w.pass.ObjectOf(id) == w.v {
			found = true
		}
		return true
	})
	return found
}

// walkStmts runs the transfer function over a statement list.
func (w *leakWalker) walkStmts(list []ast.Stmt, st leakState) leakState {
	for _, s := range list {
		st = w.walkStmt(s, st)
		if st == settled {
			return settled // nothing downstream can un-settle
		}
	}
	return st
}

// walkStmt advances the state across one statement, reporting leaks
// at returns reached while the obligation is still held.
func (w *leakWalker) walkStmt(s ast.Stmt, st leakState) leakState {
	if st == settled {
		return settled
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if w.mentions(s) {
			return settled
		}
		w.pass.Reportf(s.Pos(),
			"return leaks pooled set %s acquired at line %d: recycle with Put (or hand it off) on this path too",
			w.v.Name(), w.pass.Fset.Position(w.acquire.Pos()).Line)
		return settled // report each leaky return once; don't cascade
	case *ast.IfStmt:
		if w.mentions(s.Init) || w.mentions(s.Cond) {
			return settled
		}
		thenSt := w.walkStmts(s.Body.List, st)
		elseSt := st
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt = w.walkStmts(e.List, st)
		case ast.Stmt:
			elseSt = w.walkStmt(e, st)
		}
		return merge(thenSt, elseSt)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, st)
	case *ast.ForStmt, *ast.RangeStmt, *ast.LabeledStmt, *ast.GoStmt, *ast.DeferStmt:
		// Loops and concurrency change the path structure in ways the
		// walk does not model; any mention inside settles, silence
		// leaves the state held for the statements that follow.
		if w.mentions(s) {
			return settled
		}
		return st
	case *ast.BranchStmt:
		// break/continue/goto exit this walk's straight-line view;
		// stay quiet rather than guess the target.
		return settled
	default:
		if w.mentions(s) {
			return settled
		}
		return st
	}
}

// walkCases merges the obligation state across switch/select bodies.
func (w *leakWalker) walkCases(s ast.Stmt, st leakState) leakState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if w.mentions(s.Init) || w.mentions(s.Tag) {
			return settled
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if w.mentions(s.Init) || w.mentions(s.Assign) {
			return settled
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := st
	first := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			if w.mentions2(cl.List) {
				return settled
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			if w.mentions(cl.Comm) {
				return settled
			}
			stmts = cl.Body
		}
		caseSt := w.walkStmts(stmts, st)
		if first {
			out, first = caseSt, false
		} else {
			out = merge(out, caseSt)
		}
	}
	if !hasDefault {
		out = merge(out, st) // no case taken: state flows through
	}
	return out
}

func (w *leakWalker) mentions2(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if w.mentions(e) {
			return true
		}
	}
	return false
}
