// Package analysis is a self-contained, stdlib-only re-creation of
// the golang.org/x/tools/go/analysis vocabulary, carrying the custom
// analyzers that enforce this repository's load-bearing invariants at
// compile time:
//
//   - detrand:   no wall-clock or global-RNG reads in deterministic
//     packages (golden hashes must be a pure function of seed).
//   - mapiter:   no order-sensitive work inside range-over-map in
//     golden-pinned code (map iteration order is randomized).
//   - poolleak:  every param.Buffers acquisition is recycled or handed
//     off on every path, including error returns.
//   - mathxseam: no handwritten []float64 reduction/saxpy loops
//     bypassing the mathx kernels in the hot packages.
//   - obsleak:   no obs API results or opaque-token conversions
//     flowing back into deterministic round state (observability is
//     write-only from golden-pinned code).
//
// The suite is driven by cmd/cialint, which speaks the `go vet
// -vettool` unit-checker protocol, so `go vet -vettool=$(cialint)
// ./...` runs it with the build cache providing type information. See
// ANALYSIS.md at the repository root for the contract each analyzer
// enforces and how to suppress a finding with justification.
//
// The framework half of this package exists only because the build
// environment pins a dependency-free module: it mirrors the
// x/tools/go/analysis API shape (Analyzer, Pass, Diagnostic) closely
// enough that the analyzers could be ported to the real framework by
// changing an import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. It mirrors the x/tools Analyzer
// surface that the suite needs: a name for diagnostics and
// suppression directives, one line of documentation, and a Run
// function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package. The
// driver owns the fields; analyzers only read them and call Report.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic to the driver. Suppression
	// directives (//lint:ignore, //lint:sorted) are applied by the
	// driver after Run returns, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the package being
// analyzed.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver; Report callers may leave it empty
}

// TypeOf returns the type of e, or nil if unknown. It tolerates a
// partially filled Types map the same way x/tools passes do.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// IsTestFile reports whether the file enclosing pos is a _test.go
// file. The suite's invariants protect the production determinism
// surface; tests exercise violations deliberately (fault plans, leak
// regression tests), so every analyzer skips test files.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && isTestFilename(f.Name())
}

func isTestFilename(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
