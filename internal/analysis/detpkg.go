package analysis

import "strings"

// deterministicPkgs names the packages whose outputs are pinned by
// golden hashes (directly, or by feeding state into golden-pinned
// simulations). Classification is by import-path segment so it holds
// for both the real module paths
// (github.com/collablearn/ciarec/internal/fed) and the GOPATH-style
// fixture paths the analysistest runner loads (plain "fed").
var deterministicPkgs = map[string]bool{
	"fed":         true,
	"gossip":      true,
	"model":       true,
	"attack":      true,
	"defense":     true,
	"transport":   true, // includes transport/rpc via segment match
	"experiments": true,
}

// hotKernelPkgs names the packages whose []float64 inner loops must go
// through the mathx seam (the mathxseam analyzer's scope).
var hotKernelPkgs = map[string]bool{
	"fed":    true,
	"model":  true,
	"attack": true,
}

// pkgInSet reports whether any import-path segment of path is in set.
// go vet hands test variants paths like "pkg [pkg.test]"; the bracket
// suffix is stripped before matching.
func pkgInSet(path string, set map[string]bool) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, seg := range strings.Split(path, "/") {
		if set[seg] {
			return true
		}
	}
	return false
}

// IsDeterministicPkg reports whether the import path belongs to the
// golden-pinned deterministic surface (see ANALYSIS.md).
func IsDeterministicPkg(path string) bool { return pkgInSet(path, deterministicPkgs) }
