package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MathxSeam keeps hot []float64 arithmetic behind the mathx kernel
// seam in fed/model/attack. A handwritten elementwise loop compiles,
// passes the equivalence suites, and silently forks the arithmetic
// away from the one implementation the float32/SIMD roadmap item will
// vectorize; this analyzer flags the recognizable kernel shapes —
// single-statement reduction and saxpy/scale loops over float slices —
// and points at the kernel to call instead.
var MathxSeam = &Analyzer{
	Name: "mathxseam",
	Doc:  "flag handwritten []float64 reduction/saxpy loops that bypass the mathx kernels",
	Run:  runMathxSeam,
}

func runMathxSeam(pass *Pass) error {
	if !pkgInSet(pass.Pkg.Path(), hotKernelPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			body, idxObj := loopOverIndex(pass, n)
			if body == nil || len(body.List) != 1 {
				return true
			}
			as, ok := body.List[0].(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			if kernel := classifyKernelLoop(pass, as, idxObj); kernel != "" {
				pass.Reportf(n.Pos(),
					"handwritten float-slice loop bypasses the mathx seam: use %s (or add the kernel to mathx) so the float32/SIMD backends stay bit-identical",
					kernel)
			}
			return true
		})
	}
	return nil
}

// loopOverIndex recognizes `for i := range x` and
// `for i := 0; i < n; i++` loops, returning the body and the index
// variable's object.
func loopOverIndex(pass *Pass, n ast.Node) (*ast.BlockStmt, types.Object) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		id, ok := n.Key.(*ast.Ident)
		if !ok || n.Value != nil {
			return nil, nil
		}
		return n.Body, pass.ObjectOf(id)
	case *ast.ForStmt:
		init, ok := n.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
			return nil, nil
		}
		id, ok := init.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, nil
		}
		return n.Body, pass.ObjectOf(id)
	}
	return nil, nil
}

// classifyKernelLoop decides whether the single assignment is a
// kernel shape and names the mathx call to use. Recognized:
//
//	s += x[i]                 → mathx.Sum
//	s += x[i] * y[i]          → mathx.Dot
//	x[i] += a * y[i] (or -=)  → mathx.Axpy
//	x[i] *= a                 → mathx.Scale
//	s += <arith over x[i]…>   → mathx reduction (Sum/Dot composition)
//
// The right-hand side must be pure float arithmetic over indexed
// float slices, identifiers and literals — any call breaks the shape
// (per-element work a kernel cannot absorb) and is not flagged.
func classifyKernelLoop(pass *Pass, as *ast.AssignStmt, idx types.Object) string {
	if idx == nil {
		return ""
	}
	rhs := as.Rhs[0]
	lhsIndexed := isFloatSliceIndex(pass, as.Lhs[0], idx)
	lhsScalar := !lhsIndexed && isFloatScalar(pass, as.Lhs[0])
	if !pureFloatArith(pass, rhs) {
		return ""
	}
	nIdx := countFloatSliceIndexes(pass, rhs, idx)
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if lhsScalar && nIdx >= 1 {
			if nIdx == 1 {
				if _, isBare := rhs.(*ast.IndexExpr); isBare {
					return "mathx.Sum"
				}
			}
			if isDotShape(pass, rhs, idx) {
				return "mathx.Dot"
			}
			return "a mathx reduction (compose Sum/Dot)"
		}
		if lhsIndexed && nIdx >= 1 {
			return "mathx.Axpy"
		}
		if lhsIndexed && nIdx == 0 {
			return "mathx.AddScalar"
		}
	case token.MUL_ASSIGN:
		if lhsIndexed && nIdx == 0 {
			return "mathx.Scale"
		}
	}
	return ""
}

// isDotShape matches x[i] * y[i] exactly.
func isDotShape(pass *Pass, e ast.Expr, idx types.Object) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.MUL {
		return false
	}
	return isFloatSliceIndex(pass, b.X, idx) && isFloatSliceIndex(pass, b.Y, idx)
}

// isFloatSliceIndex matches x[i] where x is a float slice and i is
// the loop index.
func isFloatSliceIndex(pass *Pass, e ast.Expr, idx types.Object) bool {
	ie, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ie.Index.(*ast.Ident)
	if !ok || pass.ObjectOf(id) != idx {
		return false
	}
	t := pass.TypeOf(ie.X)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func countFloatSliceIndexes(pass *Pass, e ast.Expr, idx types.Object) int {
	n := 0
	ast.Inspect(e, func(m ast.Node) bool {
		if me, ok := m.(ast.Expr); ok && isFloatSliceIndex(pass, me, idx) {
			n++
			return false
		}
		return true
	})
	return n
}

func isFloatScalar(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pureFloatArith reports whether e is built only from identifiers,
// selectors, index expressions, literals, parens, and arithmetic
// operators — no calls, no conversions with side effects.
func pureFloatArith(pass *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit, *ast.TypeAssertExpr:
			pure = false
			return false
		}
		return pure
	})
	return pure
}
