// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata/src tree and checks its diagnostics
// against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract the suite
// would use if the dependency were available.
//
// Fixture files annotate expected findings with a backquoted regular
// expression on the offending line:
//
//	rand.Shuffle(n, swap) // want `global rand\.Shuffle`
//
// Lines without a want comment must produce no diagnostic.
// Suppression directives are honored exactly as in production: the
// runner routes findings through analysis.ApplySuppressions, so
// fixtures can prove both that //lint:sorted sanctions a site and
// that an unjustified directive does not.
//
// Imports inside fixtures resolve first against sibling fixture
// packages (testdata/src/param stubs the real pool API), then against
// the standard library via `go list -export` and the gc importer, so
// the runner works offline from the build cache alone.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/collablearn/ciarec/internal/analysis"
)

// Run loads each named fixture package from dir/src and applies the
// analyzer, failing t on any mismatch between reported and expected
// diagnostics.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(dir)
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			lp, err := ld.load(pkg)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", pkg, err)
			}
			check(t, ld.fset, lp, a)
		})
	}
}

func check(t *testing.T, fset *token.FileSet, lp *loadedPkg, a *analysis.Analyzer) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     lp.files,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report: func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = analysis.ApplySuppressions(fset, lp.files, diags)

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		got[key{p.Filename, p.Line}] = append(got[key{p.Filename, p.Line}], d.Message)
	}
	want := map[key]*regexp.Regexp{}
	for _, exp := range collectWants(t, fset, lp.files) {
		want[key{exp.file, exp.line}] = exp.re
	}

	for k, re := range want {
		msgs := got[k]
		if len(msgs) == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			continue
		}
		matched := false
		for _, m := range msgs {
			if re.MatchString(m) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: diagnostics %q do not match %q", k.file, k.line, msgs, re)
		}
	}
	for k, msgs := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic %q", k.file, k.line, msgs)
		}
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					p := fset.Position(c.Pos())
					t.Fatalf("%s:%d: bad want regexp: %v", p.Filename, p.Line, err)
				}
				p := fset.Position(c.Pos())
				out = append(out, expectation{p.Filename, p.Line, re})
			}
		}
	}
	return out
}

// ---- fixture loading ----

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root   string // testdata dir containing src/
	fset   *token.FileSet
	loaded map[string]*loadedPkg
	std    types.ImporterFrom
	lookup map[string]string // std package path → export file
}

func newLoader(root string) *loader {
	ld := &loader{
		root:   root,
		fset:   token.NewFileSet(),
		loaded: map[string]*loadedPkg{},
		lookup: map[string]string{},
	}
	ld.std = importer.ForCompiler(ld.fset, "gc", ld.exportFile).(types.ImporterFrom)
	return ld
}

// Import implements types.Importer, resolving fixture siblings before
// the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, "src", path)); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, "src", path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.loaded[path] = lp
	return lp, nil
}

// exportFile locates a standard-library package's export data via
// `go list -export`, caching results per loader.
func (ld *loader) exportFile(path string) (io.ReadCloser, error) {
	file, ok := ld.lookup[path]
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-json=ImportPath,Export", path).Output()
		if err != nil {
			msg := err.Error()
			var ee *exec.ExitError
			if errors.As(err, &ee) {
				msg = string(ee.Stderr)
			}
			return nil, fmt.Errorf("go list -export %s: %s", path, msg)
		}
		var info struct{ ImportPath, Export string }
		if err := json.Unmarshal(bytes.TrimSpace(out), &info); err != nil {
			return nil, err
		}
		if info.Export == "" {
			return nil, fmt.Errorf("no export data for %s", path)
		}
		file = info.Export
		ld.lookup[path] = file
	}
	return os.Open(file)
}
