package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags range-over-map loops in golden-pinned packages whose
// bodies do order-sensitive work. Go randomizes map iteration order,
// so a loop that draws from a threaded RNG, appends to an
// outer-scoped slice, accumulates floats or strings, sends on a
// channel, or pushes into a transport/encoder produces
// run-to-run-different bytes. Sanctioned sites (the body is provably
// order-insensitive, or keys are drained and sorted first) carry a
// justified //lint:sorted directive.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag order-sensitive bodies under range-over-map in golden-pinned packages",
	Run:  runMapIter,
}

// orderSinkMethods are method names whose call inside a map-ordered
// loop pushes bytes toward a golden artifact or a peer.
var orderSinkMethods = map[string]bool{
	"Send": true, "Broadcast": true, "Upload": true, "Publish": true,
	"Encode": true, "Gather": true,
}

func runMapIter(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(pass, rng); reason != "" {
				pass.Reportf(rng.For,
					"range over map is iteration-order-sensitive (%s) in golden-pinned package %s: iterate sorted keys, or sanction with //lint:sorted <why order cannot leak>",
					reason, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// orderSensitive classifies the loop body; a non-empty return is the
// human-readable reason the iteration order can leak into output.
func orderSensitive(pass *Pass, rng *ast.RangeStmt) string {
	body := rng.Body
	var reason string
	set := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			set("sends on a channel")
		case *ast.CallExpr:
			if isAppendToOuter(pass, n, body) {
				set("appends to a slice declared outside the loop")
			}
			if consumesRand(pass, n) {
				set("consumes a threaded RNG stream")
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if orderSinkMethods[name] || strings.HasPrefix(name, "Write") {
					set("pushes into a transport/encoder (" + name + ")")
				}
			}
		case *ast.AssignStmt:
			if r := orderSensitiveAssign(pass, n, body); r != "" {
				set(r)
			}
		}
		return true
	})
	return reason
}

// isAppendToOuter reports whether call is append(dst, ...) with dst
// declared outside the loop body.
func isAppendToOuter(pass *Pass, call *ast.CallExpr, body *ast.BlockStmt) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	return declaredOutside(pass, dst, body)
}

// orderSensitiveAssign flags compound accumulation (+=, -=, *=, /=)
// into an outer variable of float or string kind — the
// non-associative cases where accumulation order changes the bytes.
func orderSensitiveAssign(pass *Pass, as *ast.AssignStmt, body *ast.BlockStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	for _, lhs := range as.Lhs {
		id, ok := rootIdent(lhs)
		if !ok || !declaredOutside(pass, id, body) {
			continue
		}
		t := pass.TypeOf(lhs)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
				return "accumulates floats in iteration order (FP addition is non-associative)"
			case b.Info()&types.IsString != 0:
				return "concatenates strings in iteration order"
			}
		}
	}
	return ""
}

// consumesRand reports whether the call advances a *rand.Rand stream:
// a method on *rand.Rand, or any function taking one as an argument
// (the mathx helpers all thread the generator explicitly).
func consumesRand(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isRandPtr(pass.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isRandPtr(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

func isRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

// rootIdent unwraps x[i].f style expressions to the base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}

// declaredOutside reports whether id's object is declared outside
// body (and outside the range statement's own Key/Value vars).
func declaredOutside(pass *Pass, id *ast.Ident, body *ast.BlockStmt) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Lbrace || obj.Pos() > body.Rbrace
}
