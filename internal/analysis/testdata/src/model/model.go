// Package model fixtures the mathxseam analyzer: the recognizable
// kernel shapes are findings pointing at the mathx call to use, while
// per-element calls (work no kernel absorbs) and justified
// suppressions are not.
package model

func badSum(x []float64) float64 {
	var s float64
	for i := range x { // want `use mathx\.Sum`
		s += x[i]
	}
	return s
}

func badDot(x, y []float64) float64 {
	var s float64
	for i := 0; i < len(x); i++ { // want `use mathx\.Dot`
		s += x[i] * y[i]
	}
	return s
}

func badAxpy(a float64, x, y []float64) {
	for i := range y { // want `use mathx\.Axpy`
		y[i] += a * x[i]
	}
}

func badScale(a float64, x []float64) {
	for i := range x { // want `use mathx\.Scale`
		x[i] *= a
	}
}

func badReduction(x, y []float64) float64 {
	var s float64
	for i := range x { // want `use a mathx reduction`
		s += 2*x[i] - y[i]
	}
	return s
}

func relu(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// A call in the body is per-element work no kernel absorbs: silent.
func okPerElementCall(x []float64) float64 {
	var s float64
	for i := range x {
		s += relu(x[i])
	}
	return s
}

// Multi-statement bodies are not the single-kernel shape: silent.
func okMultiStmt(x []float64) float64 {
	var s float64
	for i := range x {
		v := x[i]
		s += v
	}
	return s
}

func okSanctioned(x []float64) float64 {
	var s float64
	//lint:ignore mathxseam accumulation order here is golden-pinned; Sum would reassociate
	for i := range x {
		s += x[i]
	}
	return s
}
