// Package gossip fixtures the mapiter analyzer: order-sensitive bodies
// under range-over-map are findings; a justified //lint:sorted
// sanctions a site; an unjustified directive does not.
package gossip

import (
	"math/rand/v2"
	"sort"
)

func badAppend(pool map[int]bool) []int {
	out := make([]int, 0, len(pool))
	for v := range pool { // want `appends to a slice declared outside the loop`
		out = append(out, v)
	}
	return out
}

func badFloatAccum(w map[int]float64) float64 {
	var total float64
	for k := range w { // want `accumulates floats in iteration order`
		total += w[k]
	}
	return total
}

func badRandDraw(pool map[int]bool, r *rand.Rand) int {
	last := -1
	for v := range pool { // want `consumes a threaded RNG stream`
		if r.IntN(2) == 0 {
			last = v
		}
	}
	return last
}

func badSend(pool map[int]bool, ch chan int) {
	for v := range pool { // want `sends on a channel`
		ch <- v
	}
}

type wire struct{}

func (wire) Send(v int) {}

func badSink(pool map[int]bool, w wire) {
	for v := range pool { // want `pushes into a transport/encoder \(Send\)`
		w.Send(v)
	}
}

// Counting is order-insensitive: no finding.
func okCount(pool map[int]bool) int {
	n := 0
	for range pool {
		n++
	}
	return n
}

func okSanctioned(pool map[int]bool) []int {
	out := make([]int, 0, len(pool))
	//lint:sorted keys are drained into a slice and sorted immediately below
	for v := range pool {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func badUnjustified(pool map[int]bool) []int {
	out := make([]int, 0, len(pool))
	//lint:sorted
	for v := range pool { // want `missing its justification`
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
