// Package param stubs the real pool API for the poolleak fixtures:
// the analyzer matches on the type name Buffers inside a package named
// param, so these empty bodies carry exactly the shape it needs.
package param

type Set struct{ vals []float64 }

type Buffers struct{ free []*Set }

func (b *Buffers) Get() *Set                            { return &Set{} }
func (b *Buffers) GetShaped(ref *Set) *Set              { return &Set{} }
func (b *Buffers) Clone(src *Set) *Set                  { return &Set{} }
func (b *Buffers) CloneWithout(src *Set, k string) *Set { return &Set{} }
func (b *Buffers) Put(s *Set)                           {}
