// Package obsout is reporting code outside the deterministic set: the
// same reads that obsleak flags in fed/obsflow are sanctioned here.
package obsout

import "obs"

// Report reads obs scalars freely: this package renders, it does not
// simulate.
func Report(t *obs.Tracer, s obs.Snapshot) (int64, float64) {
	return t.Dropped(), s.Value("transport_bytes_total")
}
