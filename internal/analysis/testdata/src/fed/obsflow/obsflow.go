// Package obsflow exercises the obsleak contract inside a
// deterministic package path ("fed" segment): recording is
// sanctioned, reading back is not.
package obsflow

import (
	"io"

	"obs"
)

// Record is the sanctioned shape: opaque token out, straight back in.
func Record(t *obs.Tracer, round, u int) {
	start := t.Start()
	t.Span(0, obs.PhaseTrain, round, u, start)
}

// RegisterViews is sanctioned: handles and registration only.
func RegisterViews(r *obs.Registry) {
	c := r.Counter("rounds_total")
	c.Inc()
	r.RegisterFunc("live_view", func() float64 { return 0 })
}

// SnapshotOK returns an obs-owned value: safe to hold and hand off.
func SnapshotOK(r *obs.Registry) obs.Snapshot {
	return r.Snapshot()
}

// IndexOK is the sanctioned rendering read: plain map indexing of an
// immutable end-of-run snapshot.
func IndexOK(s obs.Snapshot) float64 {
	return s["transport_bytes_total"]
}

// DumpOK exercises the error-result exemption of the export writers.
func DumpOK(s obs.Snapshot, w io.Writer) error {
	return s.WriteJSON(w)
}

// LeakDropped reads a tracer scalar back into deterministic code.
func LeakDropped(t *obs.Tracer) int64 {
	return t.Dropped() // want `obs\.Dropped result \(int64\) read in deterministic package`
}

// LeakCounter reads a counter value back.
func LeakCounter(r *obs.Registry) int64 {
	c := r.Counter("rounds_total")
	return c.Value() // want `obs\.Value result \(int64\) read in deterministic package`
}

// LeakSnapshotMethod uses the method form of a snapshot read.
func LeakSnapshotMethod(s obs.Snapshot) float64 {
	return s.Value("transport_bytes_total") // want `obs\.Value result \(float64\) read in deterministic package`
}

// LeakConvert cracks an opaque token open.
func LeakConvert(t *obs.Tracer) int64 {
	start := t.Start()
	return int64(start) // want `conversion of obs value to int64 in deterministic package`
}

// Justified shows the sanctioned suppression path.
func Justified(t *obs.Tracer) int64 {
	//lint:ignore obsleak span-drop diagnostics for a progress line, never enters round state
	return t.Dropped()
}
