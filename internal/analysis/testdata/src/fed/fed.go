// Package fed fixtures the detrand analyzer: the package-path segment
// "fed" puts it in the deterministic set, so wall-clock reads and the
// global rand stream are findings while seeded, threaded generators
// and justified suppressions are not.
package fed

import (
	"math/rand/v2"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package fed`
}

func badGlobalRand() float64 {
	return rand.Float64() // want `global rand\.Float64 in deterministic package fed`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

func okConstructor(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0))
}

func okThreadedMethod(r *rand.Rand) float64 {
	return r.Float64()
}

func okSuppressed() int64 {
	//lint:ignore detrand wall-clock timing here is reporting-only and never enters golden bytes
	return time.Now().UnixNano()
}
