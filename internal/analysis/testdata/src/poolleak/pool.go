// Package poolleak fixtures the pool-recycling analyzer against the
// param.Buffers stub: every acquisition must settle (Put or hand-off)
// on every path out of its scope, early error returns included.
package poolleak

import "param"

func okDefer(b *param.Buffers) {
	s := b.Get()
	defer b.Put(s)
}

func okHandOff(b *param.Buffers) *param.Set {
	s := b.Clone(nil)
	return s
}

func okBothBranches(b *param.Buffers, cond bool) {
	s := b.GetShaped(nil)
	if cond {
		b.Put(s)
	} else {
		b.Put(s)
	}
}

func badDropped(b *param.Buffers) {
	b.Get() // want `result of param\.Buffers\.Get dropped`
}

func badBlank(b *param.Buffers) {
	_ = b.Clone(nil) // want `result of param\.Buffers\.Clone assigned to _`
}

// The classic bug class: the early error return between Get and Put.
func badErrReturn(b *param.Buffers, err error) error {
	s := b.Clone(nil)
	if err != nil {
		return err // want `return leaks pooled set s acquired at line \d+`
	}
	b.Put(s)
	return nil
}

func badOneBranch(b *param.Buffers, cond bool) {
	s := b.Get() // want `pooled set s \(param\.Buffers\.Get\) may reach the end of its scope`
	if cond {
		b.Put(s)
	}
}

// Inside a loop the obligation must settle every iteration.
func badInLoop(b *param.Buffers, n int, cond bool) {
	for i := 0; i < n; i++ {
		s := b.GetShaped(nil) // want `pooled set s \(param\.Buffers\.GetShaped\) may reach the end of its scope`
		if cond {
			b.Put(s)
		}
	}
}

func okSanctionedReturn(b *param.Buffers, err error) error {
	s := b.CloneWithout(nil, "bias")
	if err != nil {
		//lint:ignore poolleak the registry owns the set past this point in production
		return err
	}
	b.Put(s)
	return nil
}
