// Package obs is a fixture stub of the observability API surface the
// obsleak analyzer reasons about: opaque tokens, write-only recording
// calls, scalar accessors, snapshots and export writers.
package obs

import "io"

// Time is the opaque span-start token.
type Time int64

// Phase labels one span.
type Phase int

// PhaseTrain is the only phase the fixtures need.
const PhaseTrain Phase = 0

// RoundLevel marks coordinator-level spans.
const RoundLevel = -1

// Tracer records spans.
type Tracer struct{ dropped int64 }

// NewTracer returns a tracer.
func NewTracer(spansPerRing int) *Tracer { return &Tracer{} }

// Start returns an opaque start token.
func (t *Tracer) Start() Time { return 0 }

// Span records one span.
func (t *Tracer) Span(ringIdx int, phase Phase, round, participant int, start Time) {}

// Dropped is a scalar accessor deterministic code must not call.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Counter is a monotone counter.
type Counter struct{ v int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Value is a scalar accessor deterministic code must not call.
func (c *Counter) Value() int64 { return c.v }

// Snapshot is an immutable end-of-run metric copy.
type Snapshot map[string]float64

// Value is the method form of a snapshot read (flagged; map indexing
// is the sanctioned rendering read).
func (s Snapshot) Value(name string) float64 { return s[name] }

// WriteJSON exports the snapshot; its error result is exempt.
func (s Snapshot) WriteJSON(w io.Writer) error { return nil }

// Registry holds metrics.
type Registry struct{}

// NewRegistry returns a registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter (an obs-owned handle: safe).
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// RegisterFunc installs a gauge view.
func (r *Registry) RegisterFunc(name string, fn func() float64) {}

// Snapshot gathers an end-of-run copy (an obs-owned value: safe).
func (r *Registry) Snapshot() Snapshot { return Snapshot{} }
