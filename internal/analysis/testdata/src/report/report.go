// Package report fixtures the negative direction: its path segment is
// in neither the deterministic nor the hot-kernel set, so detrand and
// mathxseam must both stay silent here.
package report

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Sum(x []float64) float64 {
	var s float64
	for i := range x {
		s += x[i]
	}
	return s
}
