package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsLeak enforces the write-only observability contract of
// internal/obs in deterministic packages: simulations may hand spans
// and counter updates *to* the obs layer, but no obs reading — counter
// values, span counts, snapshot scalars, opaque-token conversions —
// may flow back where it could steer golden-pinned computation. Two
// shapes are flagged in non-test files of deterministic packages:
//
//   - a call into package obs whose results include a non-obs type
//     (Counter.Value, Tracer.Dropped, Snapshot.Value, ...); opaque
//     obs-owned types (Time tokens, *Registry, Snapshot) and the error
//     of the export writers are exempt, since neither carries usable
//     round state;
//   - a conversion of an obs-typed value to a non-obs type
//     (int64(tracerStart), ...), which would crack an opaque token
//     open.
//
// Snapshot map indexing (snap["transport_bytes_total"]) is
// deliberately not a finding: a Snapshot is an immutable end-of-run
// copy, and indexing it is how the rendering layer reads it. The
// contract this analyzer pins is that live obs state never feeds back
// into round computation; sanctioned exceptions carry a justified
// //lint:ignore obsleak directive.
var ObsLeak = &Analyzer{
	Name: "obsleak",
	Doc:  "forbid obs API results and obs-value conversions from flowing into deterministic (golden-pinned) packages",
	Run:  runObsLeak,
}

// isObsPkg matches the observability package by import path: the real
// module path (…/internal/obs) and the analysistest fixture path
// (plain "obs").
func isObsPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// isObsNamed reports whether t is (a pointer to) a named type owned by
// package obs.
func isObsNamed(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && isObsPkg(named.Obj().Pkg())
}

// obsSafeResult reports whether deterministic code may hold one result
// of an obs call: obs-owned named types (opaque tokens, registries,
// snapshots — possibly behind pointers or slices) and the error
// interface of the export writers. Everything else (int64 counter
// reads, float64 samples) is a leak.
func obsSafeResult(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return obsSafeResult(t.Elem())
	case *types.Slice:
		return obsSafeResult(t.Elem())
	case *types.Named:
		if t.Obj().Pkg() == nil {
			return t.Obj().Name() == "error"
		}
		return isObsPkg(t.Obj().Pkg())
	}
	return false
}

func runObsLeak(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Conversion form: T(x) with an obs-typed x and a non-obs
			// target cracks an opaque token open.
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				if len(call.Args) == 1 && isObsNamed(pass.TypeOf(call.Args[0])) && !obsSafeResult(tv.Type) {
					pass.Reportf(call.Pos(),
						"conversion of obs value to %s in deterministic package %s: obs tokens are opaque; keep reads in the obs layer or justify with //lint:ignore obsleak",
						tv.Type, pass.Pkg.Name())
				}
				return true
			}
			fn := calleeFuncObj(pass, call)
			if fn == nil || !isObsPkg(fn.Pkg()) {
				return true
			}
			res := fn.Signature().Results()
			for i := 0; i < res.Len(); i++ {
				if !obsSafeResult(res.At(i).Type()) {
					pass.Reportf(call.Pos(),
						"obs.%s result (%s) read in deterministic package %s: observability is write-only here; move the read to the obs/rendering layer or justify with //lint:ignore obsleak",
						fn.Name(), res.At(i).Type(), pass.Pkg.Name())
					break
				}
			}
			return true
		})
	}
	return nil
}

// calleeFuncObj resolves a call's callee to its function object (nil
// for builtins, type conversions already filtered, and indirect calls
// through function values).
func calleeFuncObj(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}
