package analysis_test

import (
	"testing"

	"github.com/collablearn/ciarec/internal/analysis"
	"github.com/collablearn/ciarec/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetRand, "fed", "report")
}
