package analysis

// All returns the full cialint suite in reporting order. cmd/cialint
// and the analysistest runner are the only consumers.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapIter, PoolLeak, MathxSeam, ObsLeak}
}
