package analysis_test

import (
	"testing"

	"github.com/collablearn/ciarec/internal/analysis"
	"github.com/collablearn/ciarec/internal/analysis/analysistest"
)

func TestObsLeak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ObsLeak, "fed/obsflow", "obsout")
}
