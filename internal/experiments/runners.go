package experiments

import (
	"math/rand/v2"
	"strings"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// UtilityKind selects the recommendation-quality metric recorded per
// round.
type UtilityKind int

const (
	// UtilityHR is the leave-one-out hit ratio (GMF).
	UtilityHR UtilityKind = iota + 1
	// UtilityF1 is the held-out top-K F1 (PRME).
	UtilityF1
	// UtilityNone skips utility evaluation.
	UtilityNone
)

// RunResult bundles the attack and utility outcome of one protocol run.
type RunResult struct {
	Attack  evalx.Result
	Utility []float64 // one value per round (empty with UtilityNone)
	// TransportName and Traffic record which round-transport backend
	// carried the run and what it cost (messages, bytes, RPC
	// round-trips), so wire vs socket overhead is visible per run.
	TransportName string
	Traffic       transport.Stats
	// Resilience summarizes the run's non-zero fault, churn and
	// Byzantine counters as key=value pairs (fed.Resilience.String /
	// gossip.Resilience.String; "" for an uneventful run).
	Resilience string
	// Metrics is the end-of-run snapshot of the run's obs registry
	// (the same counters the transport/resilience accessors expose,
	// under the metric names in OBSERVABILITY.md). Always populated:
	// runs without a Spec.Metrics registry gather into a private one.
	Metrics obs.Snapshot
}

// runRegistry returns the registry a run should register its metric
// views into: the spec's shared one, or a fresh private registry so
// the run's RunResult.Metrics snapshot is populated either way.
func runRegistry(s Spec) *obs.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return obs.NewRegistry()
}

// newTransport builds the transport a run's spec asks for: a loopback
// or in-process backend via transport.New, or a connection to an
// external worker process when TransportAddr is set; a FaultPlan (or
// the "faulty:" name prefix) wraps it in the deterministic fault
// injector, and Retry tunes the socket backends' RPC policy. The
// caller owns the instance and must Close it when the run is done.
func newTransport(s Spec) (transport.Transport, error) {
	o := transport.Options{Plan: s.FaultPlan, Retry: s.Retry, Compression: s.Compression}
	if s.TransportAddr != "" {
		return transport.DialOptions(s.Transport, s.TransportAddr, o)
	}
	return transport.NewOptions(s.Transport, o)
}

// effectivePlan is the fault plan the protocol simulators should see:
// the spec's explicit plan, or the default one implied by a bare
// "faulty:" transport prefix (nil when no faults are configured).
func effectivePlan(s Spec) *transport.FaultPlan {
	if s.FaultPlan != nil {
		return s.FaultPlan
	}
	if strings.HasPrefix(s.Transport, transport.FaultyPrefix) {
		p := transport.DefaultFaultPlan()
		return &p
	}
	return nil
}

// BestUtility returns the best per-round utility (0 when not recorded).
func (r RunResult) BestUtility() float64 {
	if len(r.Utility) == 0 {
		return 0
	}
	return mathx.Max(r.Utility)
}

// FLOpts parameterizes a federated CIA run. Every user plays the
// adversary (V_target = their training set), exactly as in §VI-A.
type FLOpts struct {
	Data    *dataset.Dataset
	Family  string // "gmf" | "prme"
	Policy  defense.Policy
	Spec    Spec
	Utility UtilityKind
	// ClientFraction overrides the per-round client sampling fraction
	// when > 0 (default: full participation, the paper's setting).
	ClientFraction float64
	// DropoutProb injects client upload failures when > 0.
	DropoutProb float64
	// FictiveEpochs is the e_A fit length under Share-less (default 5).
	FictiveEpochs int
}

// RunFLCIA trains a FedAvg federation with a server-side CIA adversary
// and returns the attack metrics (Table II shape) plus the per-round
// utility curve.
func RunFLCIA(o FLOpts) (RunResult, error) {
	if o.Policy == nil {
		o.Policy = defense.FullSharing{}
	}
	if o.FictiveEpochs == 0 {
		o.FictiveEpochs = 5
	}
	factory, err := MakeFactory(o.Family, o.Data, o.Spec)
	if err != nil {
		return RunResult{}, err
	}
	k := o.Spec.K(o.Data.NumUsers)
	targets := o.Data.Train
	truths := evalx.TrueCommunities(o.Data, k)

	shareLess := isShareLess(o.Policy)
	var ev *attack.RecommenderEval
	if shareLess {
		ev = attack.NewShareLessEval(factory(0), targets)
	} else {
		ev = attack.NewRecommenderEval(factory(0), targets)
	}
	cfg := attack.Config{
		Beta:     o.Spec.Beta,
		K:        k,
		NumUsers: o.Data.NumUsers,
		Eval:     ev,
	}
	// Parallel CIA scoring whenever the spec doesn't force serial
	// execution: Workers == 0 resolves to runtime.NumCPU() inside
	// attack.New once NewEval is supplied.
	if !shareLess && (o.Spec.Workers == 0 || o.Spec.Workers > 1) {
		cfg.Workers = o.Spec.Workers
		cfg.NewEval = func() attack.Evaluator {
			return attack.NewRecommenderEval(factory(0), targets)
		}
	}
	cia := attack.New(cfg)

	flObs := &flObserver{
		cia:           cia,
		ev:            ev,
		truths:        truths,
		rec:           evalx.NewRecorder(),
		rng:           mathx.NewRand(o.Spec.Seed ^ 0x51ce),
		fictiveEpochs: o.FictiveEpochs,
	}
	tr, err := newTransport(o.Spec)
	if err != nil {
		return RunResult{}, err
	}
	defer tr.Close()
	var utility []float64
	sim, err := fed.New(fed.Config{
		Dataset:           o.Data,
		Factory:           factory,
		Policy:            o.Policy,
		Rounds:            o.Spec.Rounds,
		ClientFraction:    o.ClientFraction,
		DropoutProb:       o.DropoutProb,
		Train:             model.TrainOptions{Epochs: o.Spec.LocalEpochs},
		Workers:           o.Spec.Workers,
		Transport:         tr,
		FaultPlan:         effectivePlan(o.Spec),
		StragglerDeadline: o.Spec.StragglerDeadline,
		Quorum:            o.Spec.Quorum,
		Compression:       o.Spec.Compression,
		ChurnPlan:         o.Spec.ChurnPlan,
		Byzantine:         o.Spec.Byzantine,
		Aggregator:        o.Spec.Aggregator,
		TrimFraction:      o.Spec.TrimFraction,
		ClipNorm:          o.Spec.ClipNorm,
		Tracer:            o.Spec.Trace,
		Observer:          flObs,
		// Utility sweeps run on the simulator's deterministic parallel
		// evaluation engine (Spec.Workers, per-(seed, round, user)
		// negative streams), so the recorded curve is independent of the
		// worker count, of the attack evaluation above and of how often
		// it is sampled.
		OnRound: func(round int, s *fed.Simulation) {
			switch o.Utility {
			case UtilityHR:
				utility = append(utility, s.UtilityHR(o.Spec.HRK, o.Spec.NumNeg))
			case UtilityF1:
				utility = append(utility, s.UtilityF1(o.Spec.HRK))
			}
		},
		Seed: o.Spec.Seed,
	})
	if err != nil {
		return RunResult{}, err
	}
	flObs.sim = sim
	reg := runRegistry(o.Spec)
	sim.RegisterMetrics(reg)
	sim.Run()

	// The FL server's upper bound is 1 under full participation; with
	// sampling or dropout it is whatever coverage it accumulated.
	var upper float64
	seen := cia.Seen()
	for _, truth := range truths {
		upper += evalx.UpperBound(seen, truth)
	}
	upper /= float64(len(truths))
	res := flObs.rec.Summarize(evalx.RandomBound(k, o.Data.NumUsers), upper)
	return RunResult{
		Attack: res, Utility: utility,
		TransportName: tr.Name(), Traffic: tr.Stats(),
		Resilience: sim.Resilience().String(),
		Metrics:    reg.Snapshot(),
	}, nil
}

// flObserver adapts the CIA instance to the fed.Observer interface:
// Alg. 1's loop over received models plus per-round accuracy
// recording.
type flObserver struct {
	cia           *attack.CIA
	ev            *attack.RecommenderEval
	sim           *fed.Simulation
	truths        []map[int]struct{}
	rec           *evalx.Recorder
	rng           *rand.Rand
	fictiveEpochs int
}

func (o *flObserver) OnUpload(msg fed.Message) { o.cia.Observe(msg.From, msg.Params) }

func (o *flObserver) OnRoundEnd(round int) {
	if o.ev.ShareLess() {
		// Re-fit e_A against the freshest item embeddings the server
		// holds (§IV-C); under full participation every sender is
		// re-scored this round anyway.
		o.ev.RefreshFictive(o.sim.Global().Params(), o.fictiveEpochs, o.rng)
	}
	o.cia.EndRound()
	o.rec.Record(o.cia.Accuracies(o.truths))
}

// GLOpts parameterizes a gossip CIA run.
type GLOpts struct {
	Data    *dataset.Dataset
	Family  string
	Policy  defense.Policy
	Variant gossip.Variant
	Spec    Spec
	Utility UtilityKind
	// ColluderFrac > 0 switches from the every-placement
	// single-adversary protocol (§VI-B) to a single random coalition
	// controlling that fraction of nodes (§VI-D).
	ColluderFrac float64
	// MomentumOff disables the attack momentum (β = 0), the Table VI
	// ablation.
	MomentumOff bool
	// WakeProb overrides the per-round gossip wake probability when
	// > 0. Sparse wake-ups (< 1) reproduce the paper's temporality:
	// models arrive at heterogeneous training stages, which is the
	// regime where the attack momentum pays off (§IV-B3, Table VI).
	WakeProb float64
	// StaticGraph freezes the communication graph (no view refresh) —
	// the ablation for the paper's claim that gossip's privacy stems
	// from its randomness and dynamics (§X).
	StaticGraph   bool
	FictiveEpochs int
}

// RunGLCIA trains a gossip network with CIA adversaries and returns
// attack metrics plus the utility curve. In single-adversary mode
// every node is (independently) an adversary targeting its own
// training set and the AAC averages over placements; in colluder mode
// one coalition attacks every target simultaneously.
func RunGLCIA(o GLOpts) (RunResult, error) {
	if o.Policy == nil {
		o.Policy = defense.FullSharing{}
	}
	if o.FictiveEpochs == 0 {
		o.FictiveEpochs = 5
	}
	beta := o.Spec.Beta
	if o.MomentumOff {
		beta = 0
	}
	factory, err := MakeFactory(o.Family, o.Data, o.Spec)
	if err != nil {
		return RunResult{}, err
	}
	n := o.Data.NumUsers
	k := o.Spec.K(n)
	targets := o.Data.Train
	truths := evalx.TrueCommunities(o.Data, k)

	shareLess := isShareLess(o.Policy)
	var ev *attack.RecommenderEval
	if shareLess {
		ev = attack.NewShareLessEval(factory(0), targets)
	} else {
		ev = attack.NewRecommenderEval(factory(0), targets)
	}

	glObs := &glObserver{
		ev:            ev,
		truths:        truths,
		rec:           evalx.NewRecorder(),
		rng:           mathx.NewRand(o.Spec.Seed ^ 0x90551b),
		fictiveEpochs: o.FictiveEpochs,
		shareLess:     shareLess,
	}
	if o.ColluderFrac > 0 {
		nc := int(o.ColluderFrac * float64(n))
		if nc < 1 {
			nc = 1
		}
		glObs.colluders = make(map[int]struct{}, nc)
		for _, c := range mathx.SampleWithoutReplacement(glObs.rng, n, nc) {
			glObs.colluders[c] = struct{}{}
		}
		glObs.coalition = attack.New(attack.Config{
			Beta: beta, K: k, NumUsers: n, Eval: ev,
		})
	} else {
		glObs.perNode = make([]*attack.CIA, n)
		for a := 0; a < n; a++ {
			glObs.perNode[a] = attack.New(attack.Config{
				Beta: beta, K: k, NumUsers: n,
				Eval: &targetView{ev: ev, t: a},
			})
		}
	}

	glRounds := o.Spec.GLRounds
	if glRounds == 0 {
		glRounds = o.Spec.Rounds
	}
	tr, err := newTransport(o.Spec)
	if err != nil {
		return RunResult{}, err
	}
	defer tr.Close()
	var utility []float64
	sim, err := gossip.New(gossip.Config{
		Dataset:     o.Data,
		Factory:     factory,
		Policy:      o.Policy,
		Variant:     o.Variant,
		Rounds:      glRounds,
		WakeProb:    o.WakeProb,
		StaticGraph: o.StaticGraph,
		Train:       model.TrainOptions{Epochs: o.Spec.LocalEpochs},
		Workers:     o.Spec.Workers,
		Transport:   tr,
		FaultPlan:   effectivePlan(o.Spec),
		Compression: o.Spec.Compression,
		ChurnPlan:   o.Spec.ChurnPlan,
		Byzantine:   o.Spec.Byzantine,
		Tracer:      o.Spec.Trace,
		Observer:    glObs,
		OnRound: func(round int, s *gossip.Simulation) {
			switch o.Utility {
			case UtilityHR:
				utility = append(utility, s.UtilityHR(o.Spec.HRK, o.Spec.NumNeg))
			case UtilityF1:
				utility = append(utility, s.UtilityF1(o.Spec.HRK))
			}
		},
		Seed: o.Spec.Seed,
	})
	if err != nil {
		return RunResult{}, err
	}
	glObs.sim = sim
	reg := runRegistry(o.Spec)
	sim.RegisterMetrics(reg)
	sim.Run()

	res := glObs.rec.Summarize(evalx.RandomBound(k, n), glObs.meanUpperBound())
	return RunResult{
		Attack: res, Utility: utility,
		TransportName: tr.Name(), Traffic: tr.Stats(),
		Resilience: sim.Resilience().String(),
		Metrics:    reg.Snapshot(),
	}, nil
}

// targetView exposes a single target of a shared multi-target
// evaluator, so per-placement CIA instances can share one scratch
// model.
type targetView struct {
	ev Evaluatorish
	t  int
}

// Evaluatorish is the subset of attack.Evaluator targetView needs.
type Evaluatorish interface {
	Load(*param.Set)
	Score(sender, t int) float64
}

func (v *targetView) Load(s *param.Set)           { v.ev.Load(s) }
func (v *targetView) Score(sender, _ int) float64 { return v.ev.Score(sender, v.t) }
func (v *targetView) NumTargets() int             { return 1 }

// glObserver adapts CIA instances to gossip traffic (Alg. 2).
type glObserver struct {
	sim    *gossip.Simulation
	ev     *attack.RecommenderEval
	truths []map[int]struct{}
	rec    *evalx.Recorder
	rng    *rand.Rand

	// single-adversary mode: one CIA per placement.
	perNode []*attack.CIA
	// colluder mode: one coalition fed by all colluders' inboxes.
	colluders map[int]struct{}
	coalition *attack.CIA

	shareLess     bool
	fictiveEpochs int
}

func (o *glObserver) OnReceive(msg gossip.Message) {
	if o.coalition != nil {
		if _, ok := o.colluders[msg.To]; ok {
			o.coalition.Observe(msg.From, msg.Params)
		}
		return
	}
	o.perNode[msg.To].Observe(msg.From, msg.Params)
}

func (o *glObserver) OnRoundEnd(round int) {
	if o.coalition != nil {
		if o.shareLess {
			// The coalition refreshes every target's e_A against one
			// colluder's item embeddings.
			var anyC int
			for c := range o.colluders {
				anyC = c
				break
			}
			o.ev.RefreshFictive(o.sim.Node(anyC).Params(), o.fictiveEpochs, o.rng)
		}
		o.coalition.EndRound()
		o.rec.Record(o.coalition.Accuracies(o.truths))
		return
	}
	accs := make([]float64, len(o.perNode))
	for a, cia := range o.perNode {
		if o.shareLess {
			o.ev.RefreshFictiveOne(a, o.sim.Node(a).Params(), o.fictiveEpochs, o.rng)
		}
		cia.EndRound()
		accs[a] = evalx.Accuracy(cia.Predict(0), o.truths[a])
	}
	o.rec.Record(accs)
}

// meanUpperBound is the §V-C accuracy upper bound averaged over
// adversaries (placements or coalition targets) at the end of the run.
func (o *glObserver) meanUpperBound() float64 {
	if o.coalition != nil {
		seen := o.coalition.Seen()
		var sum float64
		for _, truth := range o.truths {
			sum += evalx.UpperBound(seen, truth)
		}
		return sum / float64(len(o.truths))
	}
	var sum float64
	for a, cia := range o.perNode {
		sum += evalx.UpperBound(cia.Seen(), o.truths[a])
	}
	return sum / float64(len(o.perNode))
}

func isShareLess(p defense.Policy) bool {
	_, ok := p.(defense.ShareLess)
	return ok
}

// utilityFor maps a model family to its paper utility metric.
func utilityFor(family string) UtilityKind {
	if family == "prme" {
		return UtilityF1
	}
	return UtilityHR
}
