package experiments

import "testing"

// TestCompressionRatioSmoke runs a reduced bits × keep grid and sanity
// checks the cells: the compressing cells must actually shrink the
// wire, every accuracy is a probability, and every run learned.
func TestCompressionRatioSmoke(t *testing.T) {
	spec := BenchSpec()
	spec.Rounds = 4
	spec.Workers = 2
	rows, err := RunCompressionRatio(spec, []int{0, 8}, []float64{1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Bits == 0 && r.Keep == 1 && r.Ratio != 1 {
			t.Errorf("uncompressed full-update cell reports ratio %.2fx, want 1x", r.Ratio)
		}
		if r.Bits == 8 && r.Ratio <= 1.5 {
			t.Errorf("8-bit cell (keep %.1f) compressed only %.2fx", r.Keep, r.Ratio)
		}
		probs := []struct {
			name string
			v    float64
		}{
			{"CIA", r.CIAMaxAAC}, {"MIA", r.MIAMaxAAC}, {"AIA", r.AIAMaxAAC}, {"random", r.Random},
		}
		for _, p := range probs {
			if p.v < 0 || p.v > 1 {
				t.Errorf("cell bits=%d keep=%.1f: %s accuracy %.3f outside [0,1]", r.Bits, r.Keep, p.name, p.v)
			}
		}
		if r.Utility <= 0 {
			t.Errorf("cell bits=%d keep=%.1f recorded no utility", r.Bits, r.Keep)
		}
		// 4 rounds is far too short for the attacks to converge; the
		// smoke check only demands each one actually scored uploads.
		if r.CIAMaxAAC <= 0 || r.MIAMaxAAC <= 0 {
			t.Errorf("cell bits=%d keep=%.1f: CIA %.3f / MIA %.3f — an attack observed nothing",
				r.Bits, r.Keep, r.CIAMaxAAC, r.MIAMaxAAC)
		}
	}
	out := RenderCompressionRatio(rows)
	if out == "" {
		t.Fatal("empty render")
	}
}
