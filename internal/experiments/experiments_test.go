package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/collablearn/ciarec/internal/gossip"
)

// testSpec trims the bench spec so the whole package tests in ~1 min.
func testSpec() Spec {
	s := BenchSpec()
	s.Rounds = 12
	s.GLRounds = 50
	return s
}

func TestMakeDatasetKnownNames(t *testing.T) {
	spec := testSpec()
	for _, name := range DatasetNames() {
		d, err := MakeDataset(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.NumUsers < 50 {
			t.Fatalf("%s: degenerate bench size %d", name, d.NumUsers)
		}
	}
	if _, err := MakeDataset("nope", spec); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if _, err := MakeDataset("nope", PaperSpec()); err == nil {
		t.Fatal("unknown paper dataset must error")
	}
}

func TestMakeFactoryFamilies(t *testing.T) {
	spec := testSpec()
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range ModelNames() {
		f, err := MakeFactory(fam, d, spec)
		if err != nil {
			t.Fatal(err)
		}
		if m := f(1); m.Name() != fam {
			t.Fatalf("factory produced %s for %s", m.Name(), fam)
		}
	}
	if _, err := MakeFactory("nope", d, spec); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestSpecK(t *testing.T) {
	s := Spec{KFrac: 0.05}
	if got := s.K(1000); got != 50 {
		t.Fatalf("K(1000) = %d, want 50", got)
	}
	if got := s.K(10); got != 2 {
		t.Fatalf("K floor = %d, want 2", got)
	}
}

// Table II shape: FL CIA far above random on every configuration, and
// GMF more vulnerable than PRME on the same dataset.
func TestTable2Shape(t *testing.T) {
	rows, err := RunTable2(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.Result.MaxAAC < 2*r.Result.RandomBound {
			t.Errorf("%s/%s: MaxAAC %.3f < 2x random %.3f",
				r.Dataset, r.Model, r.Result.MaxAAC, r.Result.RandomBound)
		}
		if r.Result.UpperBound != 1 {
			t.Errorf("%s/%s: FL upper bound %v, want 1", r.Dataset, r.Model, r.Result.UpperBound)
		}
		if r.Result.Best10AAC < r.Result.MaxAAC {
			t.Errorf("%s/%s: Best10 %.3f below MaxAAC %.3f",
				r.Dataset, r.Model, r.Result.Best10AAC, r.Result.MaxAAC)
		}
		byKey[r.Dataset+"/"+r.Model] = r.Result.MaxAAC
	}
	for _, ds := range []string{"foursquare", "gowalla"} {
		if byKey[ds+"/gmf"] <= byKey[ds+"/prme"] {
			t.Errorf("%s: GMF (%.3f) should be more vulnerable than PRME (%.3f)",
				ds, byKey[ds+"/gmf"], byKey[ds+"/prme"])
		}
	}
	if out := RenderRows("Table II", rows); !strings.Contains(out, "MaxAAC") {
		t.Fatal("render output malformed")
	}
}

// Tables II vs III: gossip leaks less than FL (the paper's central
// comparison), while still being attackable where coverage allows.
func TestGossipLeaksLessThanFL(t *testing.T) {
	spec := testSpec()
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	fl, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec, Variant: gossip.RandGossip})
	if err != nil {
		t.Fatal(err)
	}
	if gl.Attack.MaxAAC >= fl.Attack.MaxAAC {
		t.Fatalf("gossip (%.3f) should leak less than FL (%.3f)", gl.Attack.MaxAAC, fl.Attack.MaxAAC)
	}
	if gl.Attack.UpperBound >= 0.99 {
		t.Fatal("gossip upper bound should be < 1 (partial observation)")
	}
}

// Table IV shape: colluders strictly improve over a single adversary
// and accuracy grows with the coalition (paper: 14.6 → 24.8 → 31 → 45).
func TestCollusionImprovesAttack(t *testing.T) {
	spec := testSpec()
	rows, err := RunTable4(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	single := rows[0].Result.MaxAAC
	top := rows[3].Result.MaxAAC // 20% colluders
	if top <= single {
		t.Fatalf("20%% colluders (%.3f) should beat single adversary (%.3f)", top, single)
	}
	if rows[3].Result.UpperBound <= rows[1].Result.UpperBound {
		t.Fatal("coalition upper bound should grow with colluder count")
	}
}

// Table VI ablation: the momentum tracker must not destroy the
// colluding attack. NOTE (documented divergence, see EXPERIMENTS.md):
// the paper reports momentum *rescuing* collusion (45% vs 17.6%)
// because in its asynchronous gossip the colluders' scores are
// computed on models at wildly different training stages. This
// round-synchronous simulator has far less temporality and a
// deterministic relevance metric, so β = 0 is already strong and
// momentum only needs to stay within range of it.
func TestMomentumAblation(t *testing.T) {
	spec := testSpec()
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	with, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec, ColluderFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec, ColluderFrac: 0.2, MomentumOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Attack.MaxAAC < 0.6*without.Attack.MaxAAC {
		t.Fatalf("momentum (%.3f) degraded the colluding attack far below beta=0 (%.3f)",
			with.Attack.MaxAAC, without.Attack.MaxAAC)
	}
	random := with.Attack.RandomBound
	if with.Attack.MaxAAC < 2*random || without.Attack.MaxAAC < 2*random {
		t.Fatal("colluding attack should stay well above random in both ablation arms")
	}
}

// Table VII shape: random bound grows with K; attack accuracy stays
// comparatively flat for small K (the paper's point that small
// communities are as detectable).
func TestTable7Shape(t *testing.T) {
	rows, err := RunTable7(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].K < rows[i-1].K {
			t.Fatal("K not increasing")
		}
		if rows[i].RandomBound < rows[i-1].RandomBound {
			t.Fatal("random bound must increase with K")
		}
	}
	for _, r := range rows {
		if r.FullAAC < r.RandomBound {
			t.Errorf("K=%d: full-model AAC %.3f below random %.3f", r.K, r.FullAAC, r.RandomBound)
		}
	}
	if out := RenderTable7(rows); !strings.Contains(out, "Random guess") {
		t.Fatal("render output malformed")
	}
}

// Table VIII shape: CIA beats the paper's entropy-only MIA proxy at
// every threshold; the confidence-guarded extension dominates the
// plain variant.
func TestTable8Shape(t *testing.T) {
	res, err := RunTable8(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if res.CIAMaxAAC <= r.MIAMaxAAC {
			t.Errorf("rho=%.1f: CIA (%.3f) should beat plain MIA (%.3f)", r.Rho, res.CIAMaxAAC, r.MIAMaxAAC)
		}
		if r.GuardedMaxAAC < r.MIAMaxAAC {
			t.Errorf("rho=%.1f: guard should not weaken MIA (%.3f < %.3f)",
				r.Rho, r.GuardedMaxAAC, r.MIAMaxAAC)
		}
		if r.Precision < 0 || r.Precision > 1 || r.GuardedPrecision < 0 || r.GuardedPrecision > 1 {
			t.Errorf("rho=%.1f: precision out of range", r.Rho)
		}
	}
	if out := RenderTable8(res); !strings.Contains(out, "CIA Max AAC") {
		t.Fatal("render output malformed")
	}
}

// Table IX shape: the analytic ordering AIA >> CIA <= MIA holds, and
// the measured timings exist for all three attacks.
func TestTable9Shape(t *testing.T) {
	res, err := RunTable9(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Model
	if cm.AIACost() <= cm.CIACost() {
		t.Fatal("AIA must be analytically costlier than CIA")
	}
	if cm.CIACost() > cm.MIACost() {
		t.Fatal("CIA must not exceed MIA cost when |Vtarget| <= Dmax")
	}
	for _, name := range []string{"cia", "mia", "aia"} {
		if res.Measured[name] <= 0 {
			t.Fatalf("missing measured time for %s", name)
		}
	}
	if res.Measured["aia"] <= res.Measured["cia"] {
		t.Fatal("AIA should measure slower than CIA (it trains N+M models)")
	}
	if out := RenderTable9(res); !strings.Contains(out, "measured") {
		t.Fatal("render output malformed")
	}
}

// Figures 3/4 harness (single dataset to keep tests fast): Share-less
// reduces FL attack accuracy.
func TestTradeoffShareLessHelpsFL(t *testing.T) {
	points, err := runTradeoff(testSpec(), "gmf", []string{"movielens"})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6 (3 protocols x 2 policies)", len(points))
	}
	var flFull, flSL *TradeoffPoint
	for i := range points {
		p := &points[i]
		if p.Protocol == "FL" && p.Policy == "full" {
			flFull = p
		}
		if p.Protocol == "FL" && p.Policy == "share-less" {
			flSL = p
		}
	}
	if flFull == nil || flSL == nil {
		t.Fatal("missing FL points")
	}
	if flSL.MaxAAC >= flFull.MaxAAC {
		t.Fatalf("share-less (%.3f) should reduce FL attack accuracy (%.3f)", flSL.MaxAAC, flFull.MaxAAC)
	}
	if out := RenderTradeoff("fig", "HR", points); !strings.Contains(out, "MaxAAC") {
		t.Fatal("render output malformed")
	}
}

// Figure 5 shape: utility collapses as epsilon shrinks; strong noise
// also caps the attack.
func TestFigure5Shape(t *testing.T) {
	spec := testSpec()
	spec.GLRounds = 30 // DP gossip runs are slow; the shape needs few rounds
	points, err := RunFigure5(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(Figure5Epsilons) {
		t.Fatalf("got %d points", len(points))
	}
	var flInf, flOne *DPPoint
	for i := range points {
		p := &points[i]
		if p.Protocol != "FL" {
			continue
		}
		if math.IsInf(p.Epsilon, 1) {
			flInf = p
		}
		if p.Epsilon == 1 {
			flOne = p
		}
	}
	if flInf == nil || flOne == nil {
		t.Fatal("missing FL epsilon endpoints")
	}
	if flOne.Utility >= flInf.Utility {
		t.Fatalf("eps=1 utility (%.3f) should be below eps=inf (%.3f)", flOne.Utility, flInf.Utility)
	}
	if flOne.Noise <= flInf.Noise {
		t.Fatal("smaller epsilon must calibrate more noise")
	}
	if out := RenderFigure5(points); !strings.Contains(out, "eps=inf") {
		t.Fatal("render output malformed")
	}
}

// Figure 1 shape: the inferred 3-community is overwhelmingly
// health-focused relative to the population baseline.
func TestFigure1HealthCommunity(t *testing.T) {
	res, err := RunFigure1(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.CommunitySize != 3 {
		t.Fatalf("community size %d, want 3", res.CommunitySize)
	}
	if res.MemberHealthShare < 3*res.GlobalHealthShare {
		t.Fatalf("member health share %.3f not >> baseline %.3f",
			res.MemberHealthShare, res.GlobalHealthShare)
	}
	if !strings.Contains(RenderFigure1(res), "health") {
		t.Fatal("render output malformed")
	}
}

// §VIII-E shape: near-perfect community recovery on the non-iid
// classification federation.
func TestUniversalityShape(t *testing.T) {
	res, err := RunUniversality(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.CIAAccuracy < 0.9 {
		t.Fatalf("universality CIA accuracy %.3f, want ~1", res.CIAAccuracy)
	}
	if res.GlobalAccuracy < 0.75 {
		t.Fatalf("global accuracy %.3f too low", res.GlobalAccuracy)
	}
	if !strings.Contains(RenderUniversality(res), "universality") {
		t.Fatal("render output malformed")
	}
}

// §VIII-C2 shape: CIA beats the AIA proxy.
func TestAIAComparisonShape(t *testing.T) {
	res, err := RunAIAComparison(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.CIAMaxAAC <= res.AIAMaxAAC {
		t.Fatalf("CIA (%.3f) should beat AIA (%.3f)", res.CIAMaxAAC, res.AIAMaxAAC)
	}
	if !strings.Contains(RenderAIAComparison(res), "AIA") {
		t.Fatal("render output malformed")
	}
}
