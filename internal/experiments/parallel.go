package experiments

import (
	"runtime"

	"github.com/collablearn/ciarec/internal/parx"
)

// forEachCell runs the i'th independent table/figure cell for every i
// in [0, n) on a bounded worker pool sized to the machine, so
// multi-cell runners (and `go test -bench=.`) exploit all cores.
//
// Cells must be independent: each builds its own simulation from the
// spec seed and writes only rows[i]. Runs are deterministic per cell,
// so the assembled table is identical to a serial sweep; on error the
// lowest-indexed cell's error is returned.
//
// Cell-level and simulator-level parallelism compose: the Go scheduler
// multiplexes both pools over GOMAXPROCS, so oversubscription costs
// scheduling overhead, not correctness.
func forEachCell(n int, fn func(i int) error) error {
	return parx.ForEachErr(runtime.GOMAXPROCS(0), n, func(_, i int) error {
		return fn(i)
	})
}
