package experiments

import (
	"fmt"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/classify"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

// RunUniversality reproduces §VIII-E: CIA against an MLP
// classification federation with a strongly non-iid (one class per
// client) partition. The paper reports 100% community recovery at an
// 87% global accuracy, against a 10% random bound.
func RunUniversality(spec Spec) (classify.Result, error) {
	cfg := classify.RunConfig{
		Gen: classify.GenConfig{
			NumClients: 100,
			NumClasses: 10,
			Dim:        32,
			Seed:       spec.Seed,
		},
		Rounds: spec.Rounds,
		Hidden: 100,
		Beta:   spec.Beta,
		Seed:   spec.Seed ^ 0x8e,
	}
	if !spec.Paper {
		// Scaled config tuned so the global model sits near the
		// synthetic task's Bayes accuracy (~85%, mirroring the paper's
		// 87% on MNIST) while CIA still has to separate 10 communities.
		cfg.Gen.NumClients = 50
		cfg.Gen.Dim = 24
		cfg.Gen.SamplesPerClient = 30
		cfg.Gen.Separation = 3.2
		cfg.Hidden = 64
		cfg.LR = 0.2
		if cfg.Rounds < 30 {
			cfg.Rounds = 30
		}
	}
	return classify.RunUniversality(cfg)
}

// RenderUniversality formats the §VIII-E outcome.
func RenderUniversality(res classify.Result) string {
	return fmt.Sprintf(
		"== Section VIII-E: universality (non-iid classification, FL, 1-hidden-layer MLP) ==\n"+
			"global accuracy %.1f%%  CIA community accuracy %.1f%%  random bound %.1f%%\n",
		100*res.GlobalAccuracy, 100*res.CIAAccuracy, 100*res.RandomBound)
}

// AIAComparison is the §VIII-C2 outcome: AIA vs CIA on one community.
type AIAComparison struct {
	AIAMaxAAC float64
	CIAMaxAAC float64
	Random    float64
}

// RunAIAComparison reproduces §VIII-C2: a gradient-classifier AIA
// detecting one community in FL, against CIA on the same uploads
// (paper: 40% vs 62%).
func RunAIAComparison(spec Spec) (AIAComparison, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return AIAComparison{}, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		return AIAComparison{}, err
	}
	k := spec.K(d.NumUsers)
	rng := mathx.NewRand(spec.Seed ^ 0xc2)
	// The paper attacks a randomly selected community.
	targetUser := rng.IntN(d.NumUsers)
	target := d.Train[targetUser]
	truth := evalx.TrueCommunity(d, target, k)

	// Warm-up federation to give the AIA a meaningful global model.
	warmTr, err := newTransport(spec)
	if err != nil {
		return AIAComparison{}, err
	}
	defer warmTr.Close()
	warm, err := fed.New(fed.Config{
		Dataset: d, Factory: factory, Rounds: spec.Rounds / 2,
		Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers:   spec.Workers,
		Transport: warmTr,
		Seed:      spec.Seed,
	})
	if err != nil {
		return AIAComparison{}, err
	}
	warm.Run()

	aia, err := attack.TrainAIA(warm.Global(), d, attack.AIAConfig{
		Target: target, K: k, Rand: rng,
	})
	if err != nil {
		return AIAComparison{}, err
	}
	cia := attack.New(attack.Config{
		Beta: spec.Beta, K: k, NumUsers: d.NumUsers,
		Eval: attack.NewRecommenderEval(factory(0), [][]int{target}),
	})

	obs := &aiaObserver{aia: aia, cia: cia, truth: truth}
	// Continue the federation with both attacks observing. A fresh
	// simulation seeded from the warm global keeps the harness simple:
	// install the warm parameters into the new run's global model.
	tr, err := newTransport(spec)
	if err != nil {
		return AIAComparison{}, err
	}
	defer tr.Close()
	sim, err := fed.New(fed.Config{
		Dataset: d, Factory: factory, Rounds: spec.Rounds / 2,
		Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers:   spec.Workers,
		Transport: tr,
		Observer:  obs,
		Seed:      spec.Seed ^ 0x5ec,
	})
	if err != nil {
		return AIAComparison{}, err
	}
	sim.Global().Params().CopyFrom(warm.Global().Params())
	sim.Run()

	return AIAComparison{
		AIAMaxAAC: obs.bestAIA,
		CIAMaxAAC: obs.bestCIA,
		Random:    evalx.RandomBound(k, d.NumUsers),
	}, nil
}

type aiaObserver struct {
	aia     *attack.AIA
	cia     *attack.CIA
	truth   map[int]struct{}
	bestAIA float64
	bestCIA float64
}

func (o *aiaObserver) OnUpload(msg fed.Message) {
	o.aia.Observe(msg.From, msg.Params)
	o.cia.Observe(msg.From, msg.Params)
}

func (o *aiaObserver) OnRoundEnd(round int) {
	if acc := o.aia.Accuracy(o.truth); acc > o.bestAIA {
		o.bestAIA = acc
	}
	o.cia.EndRound()
	if acc := evalx.Accuracy(o.cia.Predict(0), o.truth); acc > o.bestCIA {
		o.bestCIA = acc
	}
}

// RenderAIAComparison formats the §VIII-C2 outcome.
func RenderAIAComparison(res AIAComparison) string {
	return fmt.Sprintf(
		"== Section VIII-C2: AIA as a community-inference proxy (FL, GMF, MovieLens-like) ==\n"+
			"AIA Max AAC %.1f%%  CIA Max AAC %.1f%%  random %.1f%%\n",
		100*res.AIAMaxAAC, 100*res.CIAMaxAAC, 100*res.Random)
}
