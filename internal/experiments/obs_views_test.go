package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/collablearn/ciarec/internal/transport"
)

// TestRegistryViewsAgree pins the deduplicated counter plumbing: the
// obs registry is the rendering source of truth, and the legacy views
// (transport.Stats, the pre-rendered Resilience string) must agree
// with it exactly. One eventful run (churn + Byzantine + trimmed
// mean) checks all three surfaces at once:
//
//   - resilienceLine rendered from the registry snapshot reproduces
//     the protocol's Resilience.String byte for byte;
//   - transport.StatsSnapshot of the Stats struct equals the
//     registry's transport_* values sample for sample;
//   - the scenario's metrics_out dump round-trips to the same
//     snapshot.
func TestRegistryViewsAgree(t *testing.T) {
	sc := ChurnByzScenario()
	sc.MetricsOut = filepath.Join(t.TempDir(), "metrics.json")
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience == "" {
		t.Fatal("churn-byz scenario produced no resilience activity")
	}
	if res.Metrics == nil {
		t.Fatal("RunResult.Metrics not populated")
	}

	row := AttackRow{Metrics: res.Metrics, Resilience: "fallback-must-not-be-used"}
	if got := resilienceLine(row); got != res.Resilience {
		t.Errorf("registry-rendered resilience line %q != Resilience.String view %q", got, res.Resilience)
	}
	if got := resilienceLine(AttackRow{Resilience: res.Resilience}); got != res.Resilience {
		t.Errorf("snapshot-less row must fall back to the string view, got %q", got)
	}

	statsView := transport.StatsSnapshot(res.Traffic)
	if statsView["transport_messages_total"] == 0 {
		t.Fatalf("run recorded no transport traffic: %v", statsView)
	}
	for name, v := range statsView {
		if res.Metrics[name] != v {
			t.Errorf("%s: Stats view %v != registry %v", name, v, res.Metrics[name])
		}
	}

	blob, err := os.ReadFile(sc.MetricsOut)
	if err != nil {
		t.Fatalf("metrics_out dump not written: %v", err)
	}
	dumped := map[string]float64{}
	if err := json.Unmarshal(blob, &dumped); err != nil {
		t.Fatalf("metrics_out dump is not valid JSON: %v", err)
	}
	if len(dumped) != len(res.Metrics) {
		t.Errorf("dump has %d samples, snapshot %d", len(dumped), len(res.Metrics))
	}
	for name, v := range res.Metrics {
		if dumped[name] != v {
			t.Errorf("%s: dumped %v != snapshot %v", name, dumped[name], v)
		}
	}
}
