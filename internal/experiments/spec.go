// Package experiments contains one runner per table and figure of the
// paper's evaluation, plus the shared workload sizing and the FL/GL
// attack harnesses they are built from. Each runner returns typed rows
// and offers a Render function printing the same layout as the paper.
//
// Every runner takes a Spec. BenchSpec (the default used by the
// repository's benchmarks and CLI) runs scaled-down datasets so each
// experiment finishes in seconds; PaperSpec sizes everything like the
// paper (943–1083 users, tens of thousands of items) for users with
// the patience and memory for full-scale runs.
package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// DefaultShareLessTau is the item-drift regularization factor τ used
// by every Share-less experiment. The paper does not publish its τ;
// this value was selected (see EXPERIMENTS.md) so the Share-less
// defense lands in the paper's Figure-3 regime on all three datasets:
// a large Max-AAC drop at an 8–19% utility cost. Weak τ (≲2) leaves
// item-embedding drift large enough that the fictive-user attack on
// partial models matches or exceeds the full-sharing attack.
const DefaultShareLessTau = 5.0

// Spec is the workload sizing shared by all experiment runners.
type Spec struct {
	// Paper switches the dataset constructors to full paper scale.
	Paper bool

	// Rounds is the number of FL rounds per run.
	Rounds int
	// GLRounds is the number of gossip rounds per run. Gossip needs a
	// much longer horizon than FL: a single adversary observes ~1
	// model per round (vs all N in FL), so its accuracy upper bound
	// grows slowly with time (§V-C; the paper's 81%/72% bounds imply
	// long runs).
	GLRounds int
	// Dim is the embedding dimension.
	Dim int
	// KFrac sizes communities as a fraction of the user count (the
	// paper's K=50 of ~1000 users ≈ 5%).
	KFrac float64
	// Beta is the CIA momentum coefficient. The paper uses 0.99 over
	// long trainings; scaled runs default to 0.9 so the momentum
	// window matches the shorter horizon.
	Beta float64
	// HRK is the utility cut-off (HR@K / F1@K; the paper uses 20).
	HRK int
	// NumNeg is the negative-sample count for HR evaluation (99 in the
	// NCF protocol).
	NumNeg int
	// LocalEpochs is the per-round local-training length.
	LocalEpochs int
	// Workers bounds per-run parallelism: the protocol simulators'
	// client/node training pools, their utility-evaluation sweeps and
	// the FedAvg reduce, plus CIA scoring in FL runs. 0 lets the
	// simulators default to runtime.NumCPU(). Results are independent
	// of the value (see fed.Config.Workers / gossip.Config.Workers).
	Workers int
	// Transport selects the round-transport backend threaded into the
	// protocol simulators: "" or "inproc" (pointer passing), "wire"
	// (every parameter transfer round-trips the binary codec),
	// "wire-chunked" (wire plus fixed-size frame reassembly), "socket"
	// (framed RPC over an in-process loopback Unix-domain socket
	// server) or "socket-tcp" (the same over loopback TCP). Results are
	// byte-identical across backends (see internal/transport).
	Transport string
	// TransportAddr, when non-empty, dials an external RPC worker (a
	// running `ciaworker` process) at this address instead of spinning
	// up a loopback server: a socket path for "socket", a host:port for
	// "socket-tcp". Every parameter transfer of the run then crosses OS
	// process boundaries. Only meaningful with the socket backends.
	TransportAddr string
	// FaultPlan, when non-nil, wraps the run's transport in the
	// deterministic fault injector (transport.NewFaulty) and hands the
	// same plan to the protocol simulators for straggler latencies and
	// peer-reachability decisions. Alternatively prefix Transport with
	// "faulty:" for transport.DefaultFaultPlan. A (Seed, FaultPlan)
	// pair pins the run's exact output on every backend.
	FaultPlan *transport.FaultPlan
	// Retry overrides the socket backends' RPC RetryPolicy (nil keeps
	// the defaults: 4 attempts, capped jittered exponential backoff,
	// 30s per-attempt deadline).
	Retry *transport.RetryPolicy
	// Compression, when enabled, runs every parameter transfer through
	// the sparse+quantized delta codec (see internal/param). The zero
	// value keeps the lossless dense codec; compressed runs are still
	// deterministic and byte-identical across backends and worker
	// counts, but quantization moves them off the dense golden hashes
	// (they have their own golden cells).
	Compression param.Compression
	// StragglerDeadline and Quorum parameterize the FL server's partial
	// aggregation (see fed.Config). Zero values disable both.
	StragglerDeadline time.Duration
	Quorum            float64
	// ChurnPlan, when non-nil, drives deterministic participant churn
	// in both protocol simulators: memberships grow and shrink round
	// over round, rejoining participants resume from their stale
	// snapshot (see fed.Config.ChurnPlan / gossip.Config.ChurnPlan).
	ChurnPlan *transport.ChurnPlan
	// Byzantine, when non-nil, turns a deterministic pseudo-random
	// fraction of participants into model-poisoning adversaries (see
	// attack.Byzantine).
	Byzantine *attack.Byzantine
	// Aggregator selects the FL server's aggregation rule (zero value:
	// classic FedAvg; see fed.Aggregator for the robust rules).
	// TrimFraction and ClipNorm parameterize the trimmed-mean and
	// norm-clip rules. Gossip runs ignore all three.
	Aggregator   fed.Aggregator
	TrimFraction float64
	ClipNorm     float64
	// Trace, when non-nil, records phase spans for every simulated
	// round (see internal/obs and OBSERVABILITY.md). Metrics, when
	// non-nil, receives live views of the run's transport, resilience
	// and pool counters (a nil registry makes each runner gather into a
	// private one so RunResult.Metrics is always populated). Neither
	// affects results: all golden hashes are byte-identical with both
	// enabled.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// Seed drives all generation and training.
	Seed uint64
}

// BenchSpec returns the scaled default configuration.
func BenchSpec() Spec {
	return Spec{
		Rounds:      25,
		GLRounds:    80,
		Dim:         8,
		KFrac:       0.05,
		Beta:        0.9,
		HRK:         10,
		NumNeg:      50,
		LocalEpochs: 2,
		Workers:     4,
		Seed:        1,
	}
}

// PaperSpec returns the paper-scale configuration (expensive: hours of
// CPU and hundreds of MB of momentum state on the larger datasets).
func PaperSpec() Spec {
	s := BenchSpec()
	s.Paper = true
	s.Rounds = 60
	s.GLRounds = 600
	s.Dim = 16
	s.Beta = 0.99
	s.HRK = 20
	s.NumNeg = 99
	return s
}

// K returns the community size for a dataset of n users (rounded, at
// least 2).
func (s Spec) K(n int) int {
	k := int(math.Round(s.KFrac * float64(n)))
	if k < 2 {
		k = 2
	}
	return k
}

// DatasetNames lists the paper's three datasets in table order.
func DatasetNames() []string { return []string{"foursquare", "gowalla", "movielens"} }

// MakeDataset builds the named dataset at the spec's scale. Bench
// datasets mirror the presets' shape (community structure, popularity
// skew, Foursquare categories and health community) at a size where a
// full experiment takes seconds.
func MakeDataset(name string, s Spec) (*dataset.Dataset, error) {
	if s.Paper {
		switch name {
		case "movielens":
			return dataset.MovieLensLike(1, s.Seed), nil
		case "foursquare":
			return dataset.FoursquareLike(1, s.Seed), nil
		case "gowalla":
			return dataset.GowallaLike(1, s.Seed), nil
		}
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	switch name {
	case "movielens":
		return dataset.GenerateSynthetic(dataset.SyntheticConfig{
			Name: "movielens-like", NumUsers: 140, NumItems: 260,
			NumCommunities: 4, MeanItemsPerUser: 40, MinItemsPerUser: 10,
			Affinity: 0.85, ZipfExponent: 0.9, Seed: s.Seed,
		})
	case "foursquare":
		return dataset.GenerateSynthetic(dataset.SyntheticConfig{
			Name: "foursquare-like", NumUsers: 150, NumItems: 700,
			NumCommunities: 5, MeanItemsPerUser: 45, MinItemsPerUser: 10,
			Affinity:         0.85,
			AffinityOverride: map[int]float64{0: 0.9},
			CommunitySizes:   []int{5},
			ZipfExponent:     0.8,
			NumCategories:    len(dataset.FoursquareCategories()),
			CategoryNames:    dataset.FoursquareCategories(),
			Seed:             s.Seed,
		})
	case "gowalla":
		return dataset.GenerateSynthetic(dataset.SyntheticConfig{
			Name: "gowalla-like", NumUsers: 110, NumItems: 600,
			NumCommunities: 4, MeanItemsPerUser: 50, MinItemsPerUser: 10,
			Affinity: 0.85, ZipfExponent: 0.8, Seed: s.Seed,
		})
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// ModelNames lists the recommendation models evaluated in the paper's
// tables. BPR-MF ("bprmf") and NeuMF ("neumf") are additionally
// supported as extension families (see RunModelFamilyStudy).
func ModelNames() []string { return []string{"gmf", "prme"} }

// MakeFactory returns the model factory for a family name
// ("gmf", "prme", or the extension families "bprmf" and "neumf").
func MakeFactory(family string, d *dataset.Dataset, s Spec) (model.Factory, error) {
	switch family {
	case "gmf":
		return model.NewGMFFactory(d.NumUsers, d.NumItems, s.Dim), nil
	case "prme":
		return model.NewPRMEFactory(d.NumUsers, d.NumItems, s.Dim), nil
	case "bprmf":
		return model.NewBPRMFFactory(d.NumUsers, d.NumItems, s.Dim), nil
	case "neumf":
		dim := s.Dim
		if dim%2 != 0 {
			dim++
		}
		return model.NewNeuMFFactory(d.NumUsers, d.NumItems, dim), nil
	}
	return nil, fmt.Errorf("experiments: unknown model %q", family)
}

// SplitFor applies the model family's evaluation split: leave-one-out
// for GMF (HR@K) and a 20% holdout for PRME (F1@K), per §V-C.
func SplitFor(family string, d *dataset.Dataset) {
	if family == "prme" {
		d.SplitFraction(0.2)
		return
	}
	d.SplitLeaveOneOut(3)
}
