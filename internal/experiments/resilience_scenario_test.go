package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/collablearn/ciarec/internal/transport"
)

// TestResilienceScenarioTurnover: the churn-byz acceptance scenario
// really is heavy churn — at least 20% of the membership turns over
// (joins + leaves vs the previous round's population) per round on
// average, proven by replaying the pure membership fold.
func TestResilienceScenarioTurnover(t *testing.T) {
	sc := ChurnByzScenario()
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	d, err := sc.makeDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := transport.NewMembership(*spec.ChurnPlan, d.NumUsers)
	m.Advance(0)
	prevPresent := m.NumPresent()
	prevJoins, prevLeaves := m.Joins(), m.Leaves()
	var sum float64
	for round := 1; round < spec.Rounds; round++ {
		m.Advance(round)
		moved := (m.Joins() - prevJoins) + (m.Leaves() - prevLeaves)
		if prevPresent == 0 {
			t.Fatalf("round %d started with an empty membership", round)
		}
		sum += float64(moved) / float64(prevPresent)
		prevPresent = m.NumPresent()
		prevJoins, prevLeaves = m.Joins(), m.Leaves()
	}
	turnover := sum / float64(spec.Rounds-1)
	if turnover < 0.2 {
		t.Fatalf("mean round-over-round turnover %.1f%% < 20%% — the acceptance scenario is too tame", 100*turnover)
	}
}

// TestResilienceScenarioChurnByzEquivalence is the PR's acceptance
// check, driven through the declarative path: the churn-byz scenario
// (≥20% turnover, 10% sign-flip adversaries, trimmed-mean
// aggregation) completes with identical attack metrics, utility curve
// and resilience accounting on every transport backend and worker
// count.
func TestResilienceScenarioChurnByzEquivalence(t *testing.T) {
	run := func(backend string, workers int) RunResult {
		sc := ChurnByzScenario()
		sc.Transport = backend
		sc.Workers = workers
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run("inproc", 1)
	for _, key := range []string{"joins=", "leaves=", "rejoins=", "byzantine-uploads="} {
		if !strings.Contains(ref.Resilience, key) {
			t.Fatalf("resilience summary %q lacks %q — the scenario exercised nothing", ref.Resilience, key)
		}
	}
	if len(ref.Utility) == 0 || ref.BestUtility() <= 0 {
		t.Fatal("the scenario recorded no utility")
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{1, 3} {
			if backend == "inproc" && workers == 1 {
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				res := run(backend, workers)
				if !reflect.DeepEqual(res.Attack, ref.Attack) {
					t.Fatalf("attack metrics differ from the reference run:\n  got  %+v\n  want %+v", res.Attack, ref.Attack)
				}
				if len(res.Utility) != len(ref.Utility) {
					t.Fatalf("utility curve length %d != %d", len(res.Utility), len(ref.Utility))
				}
				for r := range ref.Utility {
					if res.Utility[r] != ref.Utility[r] {
						t.Fatalf("utility differs at round %d: %v != %v", r, res.Utility[r], ref.Utility[r])
					}
				}
				if res.Resilience != ref.Resilience {
					t.Fatalf("resilience accounting %q != reference %q", res.Resilience, ref.Resilience)
				}
			})
		}
	}
}

// TestResilienceScenarioRenderCounters: the rendered scenario table
// carries the resilience counters next to the attack numbers.
func TestResilienceScenarioRenderCounters(t *testing.T) {
	sc := ChurnByzScenario()
	sc.Rounds = 3
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderScenario(sc, res)
	if !strings.Contains(out, "resilience counters per run") {
		t.Fatalf("rendered scenario lacks the resilience table:\n%s", out)
	}
	if !strings.Contains(out, "byzantine-uploads=") {
		t.Fatalf("rendered scenario lacks the Byzantine accounting:\n%s", out)
	}
}
