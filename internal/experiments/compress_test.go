package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// compressionOffFedRun is the reference federated workload run through
// the full Options plumbing with an explicitly zero Compression, at a
// caller-chosen worker count. Returns the digest plus the transport's
// traffic accounting so callers can assert the codec layer stayed cold.
func compressionOffFedRun(t *testing.T, backend string, workers int) (string, transport.Stats) {
	t.Helper()
	tr, err := transport.NewOptions(backend, transport.Options{Compression: param.Compression{}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = workers
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return hashRun([]*param.Set{sim.Global().Params()}, hr), tr.Stats()
}

// TestCompressionOffByteIdentical pins the compression-off contract:
// threading a zero Compression through transport.Options must leave
// every run byte-identical to the pre-codec dense path — the same
// golden hashes, on every backend, at every worker count — and must
// not engage the codec's raw-vs-moved accounting (RawBytes == Bytes).
func TestCompressionOffByteIdentical(t *testing.T) {
	type cell struct {
		backend string
		workers int
	}
	cells := []cell{
		{"inproc", 1}, {"inproc", 4},
		{"wire", 1}, {"wire", 4},
		{"socket", 1}, {"socket", 4},
	}
	hashes := make(map[cell]string, len(cells))
	for _, c := range cells {
		t.Run(fmt.Sprintf("%s/workers=%d", c.backend, c.workers), func(t *testing.T) {
			h, st := compressionOffFedRun(t, c.backend, c.workers)
			hashes[cell{c.backend, c.workers}] = h
			if st.RawBytes != st.Bytes || st.RawBroadcastBytes != st.BroadcastBytes {
				t.Errorf("compression off but raw accounting diverged: %+v", st)
			}
		})
	}
	ref := hashes[cells[0]]
	for _, c := range cells[1:] {
		if h := hashes[cell{c.backend, c.workers}]; h != ref {
			t.Errorf("%s/workers=%d hash %s != inproc/workers=1 %s", c.backend, c.workers, h, ref)
		}
	}

	// The golden file's dense fed hashes were recorded before the codec
	// layer existed (and re-verified since); compression off must still
	// land exactly on them. Architecture-gated like TestGoldenDeterminism.
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hashes are recorded on amd64; GOARCH=%s may round differently", runtime.GOARCH)
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		if ref != want["fed-gmf/"+backend] {
			t.Errorf("compression-off run hashes %s, golden fed-gmf/%s is %s", ref, backend, want["fed-gmf/"+backend])
		}
	}
	// And the compressed cells must NOT collide with the dense hash —
	// otherwise the compressed goldens would be pinning a codec that
	// never engaged.
	for _, k := range []string{"fed-gmf-compressed8/inproc", "fed-gmf-compressed16/inproc"} {
		if want[k] == "" {
			t.Errorf("golden file is missing %s (regenerate with -update)", k)
		}
		if want[k] == ref {
			t.Errorf("%s equals the dense hash — quantization never engaged", k)
		}
	}
}
