package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// readGolden loads the checked-in determinism hashes, skipping on
// architectures they were not recorded on (mirrors
// TestGoldenDeterminism's gate).
func readGolden(t *testing.T) map[string]string {
	t.Helper()
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hashes are recorded on amd64; GOARCH=%s may round differently", runtime.GOARCH)
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// obsFedRun executes the reference federated workload (the same one
// goldenFedRun pins) with the full observability surface attached:
// the tracer recording every phase span, a registry serving live
// counter views, and a snapshot gathered every round while the next
// one runs. Returns the run digest, which must match the untraced
// golden hash byte for byte.
func obsFedRun(t *testing.T, backend string, workers int, tracer *obs.Tracer) string {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = workers
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	reg := obs.NewRegistry()
	var hr []float64
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   workers,
		Transport: tr,
		Tracer:    tracer,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
			reg.Snapshot() // live mid-run gather must not disturb the run
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RegisterMetrics(reg)
	sim.Run()
	if snap := reg.Snapshot(); snap["transport_messages_total"] == 0 {
		t.Fatalf("registry recorded no transport traffic: %v", snap)
	}
	return hashRun([]*param.Set{sim.Global().Params()}, hr)
}

// obsGossipRun is obsFedRun's gossip counterpart, mirroring
// goldenGossipRun's workload.
func obsGossipRun(t *testing.T, backend string, workers int, tracer *obs.Tracer) string {
	t.Helper()
	spec := BenchSpec()
	spec.Workers = workers
	d, err := MakeDataset("gowalla", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("prme", d)
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := obs.NewRegistry()
	var f1 []float64
	sim, err := gossip.New(gossip.Config{
		Dataset:   d,
		Factory:   model.NewPRMEFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    5,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   workers,
		Transport: tr,
		Tracer:    tracer,
		OnRound: func(round int, s *gossip.Simulation) {
			f1 = append(f1, s.UtilityF1(spec.HRK))
			reg.Snapshot()
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RegisterMetrics(reg)
	sim.Run()
	params := make([]*param.Set, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		params[u] = sim.Node(u).Params()
	}
	return hashRun(params, f1)
}

// TestObsOffByteIdentical pins the disabled-recorder half of the obs
// determinism contract: with a metrics registry attached but no
// tracer (the nil recorder is the hot-path no-op), the reference fed
// and gossip workloads reproduce the checked-in golden hashes exactly
// on every backend.
func TestObsOffByteIdentical(t *testing.T) {
	want := readGolden(t)
	for _, backend := range []string{"inproc", "wire", "socket"} {
		if got := obsFedRun(t, backend, 2, nil); got != want["fed-gmf/"+backend] {
			t.Errorf("fed-gmf/%s with metrics registry attached: hash %s != golden %s", backend, got, want["fed-gmf/"+backend])
		}
		if got := obsGossipRun(t, backend, 2, nil); got != want["gossip-prme/"+backend] {
			t.Errorf("gossip-prme/%s with metrics registry attached: hash %s != golden %s", backend, got, want["gossip-prme/"+backend])
		}
	}
}

// TestObsOnByteIdentical pins the enabled half: with full span
// tracing (including a deliberately tiny ring, so wraparound and drop
// accounting are exercised mid-run) and live metric gathering every
// round, the golden hashes are still byte-identical — across
// inproc/wire/socket and across worker counts. This is the hard
// determinism constraint of the observability subsystem: recording
// must never perturb results.
func TestObsOnByteIdentical(t *testing.T) {
	want := readGolden(t)
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{2, 3} {
			tracer := obs.NewTracer(64) // tiny rings: force wraparound
			if got := obsFedRun(t, backend, workers, tracer); got != want["fed-gmf/"+backend] {
				t.Errorf("fed-gmf/%s workers=%d traced: hash %s != golden %s", backend, workers, got, want["fed-gmf/"+backend])
			}
			if tracer.Recorded() == 0 {
				t.Fatalf("fed-gmf/%s workers=%d: tracer recorded nothing", backend, workers)
			}
			tracer = obs.NewTracer(64)
			if got := obsGossipRun(t, backend, workers, tracer); got != want["gossip-prme/"+backend] {
				t.Errorf("gossip-prme/%s workers=%d traced: hash %s != golden %s", backend, workers, got, want["gossip-prme/"+backend])
			}
			if tracer.Recorded() == 0 {
				t.Fatalf("gossip-prme/%s workers=%d: tracer recorded nothing", backend, workers)
			}
		}
	}
}
