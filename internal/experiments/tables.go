package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// AttackRow is one table line of attack metrics, optionally annotated
// with the transport traffic its run generated.
type AttackRow struct {
	Dataset string
	Model   string
	Setting string // protocol / colluder / defense label
	Result  evalx.Result

	// Transport and Traffic carry the run's round-transport backend and
	// its traffic accounting when the runner recorded them (RunTable2,
	// RunTable3); RenderRows then appends a per-row traffic table so
	// wire vs socket cost is visible next to the attack numbers.
	Transport string
	Traffic   transport.Stats
	// Resilience is the run's non-zero fault/churn/Byzantine counter
	// summary (RunResult.Resilience); RenderRows appends a resilience
	// table when any row carries one.
	Resilience string
	// Metrics is the run's end-of-run registry snapshot
	// (RunResult.Metrics). When present it is the source the traffic
	// and resilience tables render from; rows without one (hand-built
	// rows, older callers) fall back to the Traffic struct and the
	// Resilience string, which are kept as tested views of the same
	// counters.
	Metrics obs.Snapshot
}

func (r AttackRow) String() string {
	return fmt.Sprintf("%-12s %-6s %-22s MaxAAC=%5.1f%%  Best10%%=%5.1f%%  random=%4.1f%%  upper=%5.1f%%",
		r.Dataset, r.Model, r.Setting,
		100*r.Result.MaxAAC, 100*r.Result.Best10AAC,
		100*r.Result.RandomBound, 100*r.Result.UpperBound)
}

// RenderRows formats rows under a title, one per line, followed by a
// transport-traffic table when the rows carry one.
func RenderRows(title string, rows []AttackRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, r := range rows {
		fmt.Fprintln(&b, r.String())
	}
	b.WriteString(renderTraffic(rows))
	b.WriteString(renderResilience(rows))
	return b.String()
}

// resilienceKeys is the merged fed+gossip resilience counter order:
// each protocol's Resilience.String declaration order is preserved (a
// run only ever populates one protocol's keys), mapped to the
// resilience_* metric names the simulations register.
var resilienceKeys = []struct{ key, metric string }{
	{"blackouts", "resilience_blackouts"},
	{"deliver-failures", "resilience_deliver_failures"},
	{"upload-failures", "resilience_upload_failures"},
	{"stragglers", "resilience_stragglers"},
	{"quorum-misses", "resilience_quorum_misses"},
	{"lost-pushes", "resilience_lost_pushes"},
	{"skipped-peers", "resilience_skipped_peers"},
	{"absent-skips", "resilience_absent_skips"},
	{"joins", "resilience_joins"},
	{"leaves", "resilience_leaves"},
	{"rejoins", "resilience_rejoins"},
	{"stale-resets", "resilience_stale_resets"},
	{"byzantine-uploads", "resilience_byzantine_uploads"},
	{"byzantine-pushes", "resilience_byzantine_pushes"},
	{"clipped-uploads", "resilience_clipped_uploads"},
}

// resilienceLine renders a row's non-zero resilience counters as
// key=value pairs from its registry snapshot, matching the protocols'
// Resilience.String output exactly; rows without a snapshot fall back
// to the pre-rendered string.
func resilienceLine(r AttackRow) string {
	if r.Metrics == nil {
		return r.Resilience
	}
	var b strings.Builder
	for _, k := range resilienceKeys {
		v := r.Metrics[k.metric]
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k.key, int64(v))
	}
	return b.String()
}

// renderResilience formats the per-run fault, churn and Byzantine
// accounting of rows that recorded a non-zero counter: one line per
// eventful run, the counters as key=value pairs (read from the row's
// registry snapshot when it has one). Uneventful runs (and tables
// without any resilience activity) print nothing.
func renderResilience(rows []AttackRow) string {
	lines := make([]string, len(rows))
	any := false
	for i, r := range rows {
		lines[i] = resilienceLine(r)
		if lines[i] != "" {
			any = true
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("-- resilience counters per run --\n")
	for i, r := range rows {
		if lines[i] == "" {
			continue
		}
		fmt.Fprintf(&b, "%-12s %-6s %-22s %s\n", r.Dataset, r.Model, r.Setting, lines[i])
	}
	return b.String()
}

// trafficSnapshot returns the registry snapshot a row's traffic cells
// render from: the row's own end-of-run snapshot, or the transport_*
// view of its Traffic struct for rows that never carried one.
func trafficSnapshot(r AttackRow) obs.Snapshot {
	if r.Metrics != nil {
		return r.Metrics
	}
	return transport.StatsSnapshot(r.Traffic)
}

// renderTraffic formats the per-run transport accounting of rows that
// recorded it: point-to-point and broadcast volume, frame counts, the
// socket backends' RPC round-trip/reconnect/retry counters, and —
// when any run used the retry or fault layers — the timeout, give-up
// and injected-fault columns. Runs carried by a compressing transport
// additionally get the dense-equivalent volume and the compression
// ratio, so the codec's saving is visible next to what actually moved.
// All cells read from the rows' registry snapshots (see
// trafficSnapshot), making the obs registry the rendering source of
// truth.
func renderTraffic(rows []AttackRow) string {
	snaps := make([]obs.Snapshot, len(rows))
	any, resil, comp := false, false, false
	for i, r := range rows {
		if r.Transport != "" {
			any = true
		}
		snaps[i] = trafficSnapshot(r)
		st := snaps[i]
		if st["transport_retries_total"] > 0 || st["transport_timeouts_total"] > 0 ||
			st["transport_gave_up_total"] > 0 || st["transport_injected_faults_total"] > 0 {
			resil = true
		}
		if st["transport_raw_bytes_total"] != st["transport_bytes_total"] ||
			st["transport_raw_broadcast_bytes_total"] != st["transport_broadcast_bytes_total"] {
			comp = true
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("-- transport traffic per run --\n")
	fmt.Fprintf(&b, "%-12s %-6s %-22s %-11s %8s %9s %8s %9s %8s %7s %6s",
		"dataset", "model", "setting", "backend",
		"msgs", "MB", "bcasts", "bcastMB", "chunks", "rtrips", "reconn")
	if comp {
		fmt.Fprintf(&b, " %9s %6s", "rawMB", "ratio")
	}
	if resil {
		fmt.Fprintf(&b, " %7s %8s %6s %6s", "retries", "timeouts", "gaveup", "faults")
	}
	b.WriteByte('\n')
	for i, r := range rows {
		if r.Transport == "" {
			continue
		}
		st := snaps[i]
		count := func(name string) int64 { return int64(st[name]) }
		fmt.Fprintf(&b, "%-12s %-6s %-22s %-11s %8d %9.2f %8d %9.2f %8d %7d %6d",
			r.Dataset, r.Model, r.Setting, r.Transport,
			count("transport_messages_total"), st["transport_bytes_total"]/(1<<20),
			count("transport_broadcast_messages_total"), st["transport_broadcast_bytes_total"]/(1<<20),
			count("transport_chunks_total"), count("transport_round_trips_total"), count("transport_reconnects_total"))
		if comp {
			raw := st["transport_raw_bytes_total"] + st["transport_raw_broadcast_bytes_total"]
			moved := st["transport_bytes_total"] + st["transport_broadcast_bytes_total"]
			ratio := 1.0
			if moved > 0 {
				ratio = raw / moved
			}
			fmt.Fprintf(&b, " %9.2f %5.1fx", raw/(1<<20), ratio)
		}
		if resil {
			fmt.Fprintf(&b, " %7d %8d %6d %6d",
				count("transport_retries_total"), count("transport_timeouts_total"),
				count("transport_gave_up_total"), count("transport_injected_faults_total"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// table2Configs are the dataset × model pairs of Table II (the paper
// reports no PRME row for MovieLens).
var table2Configs = []struct{ dataset, family string }{
	{"foursquare", "gmf"},
	{"foursquare", "prme"},
	{"gowalla", "gmf"},
	{"gowalla", "prme"},
	{"movielens", "gmf"},
}

// RunTable2 reproduces Table II: CIA on FedRecs, every user playing
// the adversary, full model sharing. Cells are independent (each
// builds its own dataset and simulation from the spec seed) and run
// concurrently on the table-cell worker pool; row order and values are
// identical to a serial sweep.
func RunTable2(spec Spec) ([]AttackRow, error) {
	rows := make([]AttackRow, len(table2Configs))
	err := forEachCell(len(table2Configs), func(i int) error {
		c := table2Configs[i]
		d, err := MakeDataset(c.dataset, spec)
		if err != nil {
			return err
		}
		SplitFor(c.family, d)
		res, err := RunFLCIA(FLOpts{Data: d, Family: c.family, Spec: spec, Utility: UtilityNone})
		if err != nil {
			return err
		}
		rows[i] = AttackRow{
			Dataset: c.dataset, Model: c.family, Setting: "FL", Result: res.Attack,
			Transport: res.TransportName, Traffic: res.Traffic, Resilience: res.Resilience, Metrics: res.Metrics,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunTable3 reproduces Table III: CIA on GossipRecs under Rand-Gossip
// and Pers-Gossip, single adversary at every placement.
func RunTable3(spec Spec) ([]AttackRow, error) {
	configs := []struct {
		variant gossip.Variant
		dataset string
		family  string
	}{
		{gossip.RandGossip, "movielens", "gmf"},
		{gossip.RandGossip, "foursquare", "gmf"},
		{gossip.RandGossip, "foursquare", "prme"},
		{gossip.RandGossip, "gowalla", "gmf"},
		{gossip.RandGossip, "gowalla", "prme"},
		{gossip.PersGossip, "movielens", "gmf"},
		{gossip.PersGossip, "foursquare", "gmf"},
		{gossip.PersGossip, "foursquare", "prme"},
		{gossip.PersGossip, "gowalla", "gmf"},
		{gossip.PersGossip, "gowalla", "prme"},
	}
	rows := make([]AttackRow, len(configs))
	err := forEachCell(len(configs), func(i int) error {
		c := configs[i]
		d, err := MakeDataset(c.dataset, spec)
		if err != nil {
			return err
		}
		SplitFor(c.family, d)
		res, err := RunGLCIA(GLOpts{Data: d, Family: c.family, Variant: c.variant, Spec: spec})
		if err != nil {
			return err
		}
		rows[i] = AttackRow{
			Dataset: c.dataset, Model: c.family, Setting: c.variant.String(), Result: res.Attack,
			Transport: res.TransportName, Traffic: res.Traffic, Resilience: res.Resilience, Metrics: res.Metrics,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ColluderFracs are the coalition sizes of Tables IV–VI.
var ColluderFracs = []float64{0.05, 0.10, 0.20}

// RunTable4 reproduces Table IV: collusion in Rand-Gossip with GMF on
// the MovieLens-like dataset (single adversary + 5/10/20% colluders).
func RunTable4(spec Spec) ([]AttackRow, error) {
	return runCollusion(spec, nil)
}

// RunTable5 reproduces Table V: the same collusion sweep under the
// Share-less strategy, where the colluding advantage largely vanishes.
func RunTable5(spec Spec) ([]AttackRow, error) {
	return runCollusion(spec, defense.ShareLess{Tau: DefaultShareLessTau})
}

func runCollusion(spec Spec, policy defense.Policy) ([]AttackRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	// Cell 0 is the single adversary; cells 1.. are the colluder
	// fractions. All share the (read-only) dataset and run concurrently.
	rows := make([]AttackRow, 1+len(ColluderFracs))
	err = forEachCell(len(rows), func(i int) error {
		if i == 0 {
			single, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec, Policy: policy})
			if err != nil {
				return err
			}
			rows[0] = AttackRow{Dataset: "movielens", Model: "gmf", Setting: "single adversary", Result: single.Attack}
			return nil
		}
		f := ColluderFracs[i-1]
		res, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec, Policy: policy, ColluderFrac: f})
		if err != nil {
			return err
		}
		rows[i] = AttackRow{
			Dataset: "movielens", Model: "gmf",
			Setting: fmt.Sprintf("%.0f%% colluders", 100*f),
			Result:  res.Attack,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RunTable6 reproduces Table VI: the momentum ablation (β = 0 vs the
// configured β) across colluder ratios.
func RunTable6(spec Spec) ([]AttackRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	type cell struct {
		momentumOff bool
		frac        float64
	}
	var cells []cell
	for _, momentumOff := range []bool{true, false} {
		for _, f := range ColluderFracs {
			cells = append(cells, cell{momentumOff, f})
		}
	}
	rows := make([]AttackRow, len(cells))
	err = forEachCell(len(cells), func(i int) error {
		c := cells[i]
		res, err := RunGLCIA(GLOpts{
			Data: d, Family: "gmf", Spec: spec,
			ColluderFrac: c.frac, MomentumOff: c.momentumOff,
		})
		if err != nil {
			return err
		}
		beta := spec.Beta
		if c.momentumOff {
			beta = 0
		}
		rows[i] = AttackRow{
			Dataset: "movielens", Model: "gmf",
			Setting: fmt.Sprintf("beta=%.2f %.0f%% colluders", beta, 100*c.frac),
			Result:  res.Attack,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table7Row is one K-sensitivity line.
type Table7Row struct {
	K           int
	FullAAC     float64
	ShareLess   float64
	RandomBound float64
}

// RunTable7 reproduces Table VII: Max AAC across community sizes K in
// FL, for full sharing and Share-less. The paper's K values
// (10/20/40/50/100 of ~943 users) are expressed as user fractions so
// scaled runs keep the same relative sizes.
func RunTable7(spec Spec) ([]Table7Row, error) {
	fracs := []float64{0.01, 0.02, 0.04, 0.05, 0.10}
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	rows := make([]Table7Row, len(fracs))
	err = forEachCell(len(fracs), func(i int) error {
		s := spec
		s.KFrac = fracs[i]
		full, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: s, Utility: UtilityNone})
		if err != nil {
			return err
		}
		sl, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: s, Utility: UtilityNone,
			Policy: defense.ShareLess{Tau: DefaultShareLessTau}})
		if err != nil {
			return err
		}
		rows[i] = Table7Row{
			K:           s.K(d.NumUsers),
			FullAAC:     full.Attack.MaxAAC,
			ShareLess:   sl.Attack.MaxAAC,
			RandomBound: full.Attack.RandomBound,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable7 formats the K-sensitivity sweep like Table VII.
func RenderTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("== Table VII: Max AAC vs community size K (FL, GMF, MovieLens-like) ==\n")
	fmt.Fprintf(&b, "%-14s", "Setting")
	for _, r := range rows {
		fmt.Fprintf(&b, "  K=%-5d", r.K)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "Full models")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5.1f%%", 100*r.FullAAC)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "Share less")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5.1f%%", 100*r.ShareLess)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "Random guess")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5.1f%%", 100*r.RandomBound)
	}
	b.WriteString("\n")
	return b.String()
}

// Table8Row is one MIA-threshold line of Table VIII, reporting both
// the paper-faithful entropy-only threshold and the confidence-guarded
// repair (an extension of this reproduction; see attack.MIA.Guarded).
type Table8Row struct {
	Rho              float64
	Precision        float64
	MIAMaxAAC        float64
	GuardedPrecision float64
	GuardedMaxAAC    float64
}

// Table8Result bundles the MIA sweep with the CIA reference row.
type Table8Result struct {
	Rows      []Table8Row
	CIAMaxAAC float64
}

// RunTable8 reproduces Table VIII: the entropy-MIA used as a community
// detector across thresholds ρ, against CIA on the same observations
// (FL, GMF, MovieLens-like).
func RunTable8(spec Spec) (Table8Result, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return Table8Result{}, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		return Table8Result{}, err
	}
	k := spec.K(d.NumUsers)
	targets := d.Train
	truths := evalx.TrueCommunities(d, k)
	rhos := []float64{0.2, 0.4, 0.6, 0.8, 1.0}

	// One federation run, all attacks observing the same uploads.
	cia := attack.New(attack.Config{
		Beta: spec.Beta, K: k, NumUsers: d.NumUsers,
		Eval: attack.NewRecommenderEval(factory(0), targets),
	})
	plain := make([]*attack.MIA, len(rhos))
	guarded := make([]*attack.MIA, len(rhos))
	for i, rho := range rhos {
		plain[i] = attack.NewMIA(rho, k, factory(0), targets, d)
		guarded[i] = attack.NewMIA(rho, k, factory(0), targets, d)
		guarded[i].Guarded = true
	}
	rec := evalx.NewRecorder()
	newRecs := func() []*evalx.Recorder {
		out := make([]*evalx.Recorder, len(rhos))
		for i := range out {
			out[i] = evalx.NewRecorder()
		}
		return out
	}
	obs := &table8Observer{
		cia: cia, plain: plain, guarded: guarded,
		truths: truths, rec: rec,
		plainRecs: newRecs(), guardedRecs: newRecs(),
	}
	tr, err := newTransport(spec)
	if err != nil {
		return Table8Result{}, err
	}
	defer tr.Close()
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   factory,
		Rounds:    spec.Rounds,
		Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers:   spec.Workers,
		Transport: tr,
		Observer:  obs,
		Seed:      spec.Seed,
	})
	if err != nil {
		return Table8Result{}, err
	}
	sim.Run()

	out := Table8Result{}
	ciaAAC, _ := rec.MaxAAC()
	out.CIAMaxAAC = ciaAAC
	for i, rho := range rhos {
		pAAC, _ := obs.plainRecs[i].MaxAAC()
		gAAC, _ := obs.guardedRecs[i].MaxAAC()
		out.Rows = append(out.Rows, Table8Row{
			Rho:              rho,
			Precision:        plain[i].Precision(),
			MIAMaxAAC:        pAAC,
			GuardedPrecision: guarded[i].Precision(),
			GuardedMaxAAC:    gAAC,
		})
	}
	return out, nil
}

type table8Observer struct {
	cia         *attack.CIA
	plain       []*attack.MIA
	guarded     []*attack.MIA
	truths      []map[int]struct{}
	rec         *evalx.Recorder
	plainRecs   []*evalx.Recorder
	guardedRecs []*evalx.Recorder
}

func (o *table8Observer) OnUpload(msg fed.Message) {
	o.cia.Observe(msg.From, msg.Params)
	for i := range o.plain {
		o.plain[i].Observe(msg.From, msg.Params)
		o.guarded[i].Observe(msg.From, msg.Params)
	}
}

func (o *table8Observer) OnRoundEnd(round int) {
	o.cia.EndRound()
	o.rec.Record(o.cia.Accuracies(o.truths))
	for i := range o.plain {
		o.plainRecs[i].Record(o.plain[i].Accuracies(o.truths))
		o.guardedRecs[i].Record(o.guarded[i].Accuracies(o.truths))
	}
}

// RenderTable8 formats the MIA-vs-CIA comparison like Table VIII, with
// the guarded-MIA extension rows appended.
func RenderTable8(res Table8Result) string {
	var b strings.Builder
	b.WriteString("== Table VIII: entropy-MIA as a community-inference proxy (FL, GMF, MovieLens-like) ==\n")
	row := func(label string, f func(Table8Row) float64) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "  %6.1f ", 100*f(r))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-22s", "Attack")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "  rho=%-4.1f", r.Rho)
	}
	b.WriteString("\n")
	row("MIA precision %", func(r Table8Row) float64 { return r.Precision })
	row("MIA Max AAC %", func(r Table8Row) float64 { return r.MIAMaxAAC })
	row("MIA+guard precision %", func(r Table8Row) float64 { return r.GuardedPrecision })
	row("MIA+guard Max AAC %", func(r Table8Row) float64 { return r.GuardedMaxAAC })
	fmt.Fprintf(&b, "%-22s%.1f\n", "CIA Max AAC %", 100*res.CIAMaxAAC)
	return b.String()
}

// Table9Result carries the measured per-attack costs plus the symbolic
// cost model.
type Table9Result struct {
	Model    attack.CostModel
	Measured map[string]float64 // attack → seconds for one full pass
}

// RunTable9 reproduces Table IX: the temporal-complexity comparison.
// The symbolic rows come from attack.CostModel; the measured column
// times one full observation pass of each attack over the same set of
// client uploads from a warmed-up federation.
func RunTable9(spec Spec) (Table9Result, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return Table9Result{}, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		return Table9Result{}, err
	}
	k := spec.K(d.NumUsers)
	rng := mathx.NewRand(spec.Seed)

	// Warm global model + one round of per-client uploads.
	global := factory(rng.Uint64())
	for e := 0; e < 4; e++ {
		for u := 0; u < d.NumUsers; u++ {
			global.TrainLocal(d, u, model.TrainOptions{Epochs: 1, Rand: rng})
		}
	}
	uploads := make([]*param.Set, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		local := global.Clone()
		local.TrainLocal(d, u, model.TrainOptions{Epochs: 1, Rand: rng})
		uploads[u] = local.Params().Clone()
	}
	target := d.Train[0]
	targets := [][]int{target}

	measured := make(map[string]float64)

	start := time.Now() //lint:ignore detrand wall-clock timing is reporting-only; it never enters table values or golden hashes
	cia := attack.New(attack.Config{
		Beta: spec.Beta, K: k, NumUsers: d.NumUsers,
		Eval: attack.NewRecommenderEval(factory(0), targets),
	})
	for u, p := range uploads {
		cia.Observe(u, p)
	}
	cia.EndRound()
	cia.Predict(0)
	measured["cia"] = time.Since(start).Seconds()

	start = time.Now() //lint:ignore detrand wall-clock timing is reporting-only; it never enters table values or golden hashes
	mia := attack.NewMIA(0.6, k, factory(0), targets, d)
	for u, p := range uploads {
		mia.Observe(u, p)
	}
	mia.Predict(0)
	measured["mia"] = time.Since(start).Seconds()

	start = time.Now() //lint:ignore detrand wall-clock timing is reporting-only; it never enters table values or golden hashes
	aia, err := attack.TrainAIA(global, d, attack.AIAConfig{
		Target: target, K: k, Rand: mathx.NewRand(spec.Seed ^ 0xa1a),
	})
	if err != nil {
		return Table9Result{}, err
	}
	for u, p := range uploads {
		aia.Observe(u, p)
	}
	aia.Predict()
	measured["aia"] = time.Since(start).Seconds()

	dmax := 0
	for u := 0; u < d.NumUsers; u++ {
		if len(d.Train[u]) > dmax {
			dmax = len(d.Train[u])
		}
	}
	cm := attack.CostModel{
		Users:      d.NumUsers,
		TargetSize: len(target),
		DMax:       dmax,
		// Unit costs in "embedding ops": one inference touches ~dim
		// multiplies; training touches every interaction several times.
		TrainModel:      float64(d.NumInteractions() * 5 * spec.Dim),
		InferModel:      float64(spec.Dim),
		TrainClassifier: float64(40 * 60 * d.NumItems * spec.Dim), // samples × epochs × input dim
		InferClassifier: float64(d.NumItems * spec.Dim),
		FictiveUsers:    40,
	}
	return Table9Result{Model: cm, Measured: measured}, nil
}

// RenderTable9 formats the complexity comparison like Table IX.
func RenderTable9(res Table9Result) string {
	var b strings.Builder
	b.WriteString("== Table IX: temporal complexity of CIA vs proxy attacks ==\n")
	b.WriteString(res.Model.Table())
	fmt.Fprintf(&b, "measured (one observation pass): CIA %.4fs  MIA %.4fs  AIA %.4fs\n",
		res.Measured["cia"], res.Measured["mia"], res.Measured["aia"])
	return b.String()
}
