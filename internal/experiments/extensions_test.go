package experiments

import (
	"strings"
	"testing"
)

// Every model family leaks communities well above random; the ranking
// models (GMF, BPR-MF) leak more than the harder metric-embedding
// task, mirroring the paper's GMF-vs-PRME gap.
func TestModelFamilyStudy(t *testing.T) {
	rows, err := RunModelFamilyStudy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byFam := map[string]FamilyRow{}
	for _, r := range rows {
		byFam[r.Family] = r
		if r.MaxAAC < 1.5*r.Random {
			t.Errorf("%s: CIA %.3f not above random %.3f", r.Family, r.MaxAAC, r.Random)
		}
		if r.Utility <= 0 {
			t.Errorf("%s: model did not learn (utility 0)", r.Family)
		}
	}
	if byFam["bprmf"].MaxAAC < byFam["prme"].MaxAAC {
		t.Errorf("BPR-MF (%.3f) expected to leak at least as much as PRME (%.3f)",
			byFam["bprmf"].MaxAAC, byFam["prme"].MaxAAC)
	}
	if !strings.Contains(RenderModelFamilyStudy(rows), "bprmf") {
		t.Fatal("render malformed")
	}
}

// Sparsification barely protects until it destroys the update.
func TestSparsifyStudy(t *testing.T) {
	rows, err := RunSparsifyStudy(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	base, half := rows[0], rows[1]
	// Keeping 50% of coordinates should leave the attack essentially
	// intact (within 40% of baseline).
	if half.MaxAAC < 0.6*base.MaxAAC {
		t.Errorf("50%% sparsification unexpectedly strong defense: %.3f vs %.3f",
			half.MaxAAC, base.MaxAAC)
	}
	if !strings.Contains(RenderSparsifyStudy(rows), "sparsification") {
		t.Fatal("render malformed")
	}
}
