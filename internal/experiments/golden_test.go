package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// updateGolden regenerates testdata/golden.json:
//
//	go test ./internal/experiments/ -run TestGoldenDeterminism -update
var updateGolden = flag.Bool("update", false, "rewrite the golden determinism hashes")

const goldenPath = "testdata/golden.json"

// hashRun folds final model parameters (through the wire codec, so
// the digest covers exactly the bytes a deployment would persist) and
// the per-round utility curve into one digest.
func hashRun(params []*param.Set, utility []float64) string {
	h := sha256.New()
	for _, p := range params {
		if _, err := p.WriteTo(h); err != nil {
			panic(err)
		}
	}
	var buf [8]byte
	for _, v := range utility {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenFedRun executes the reference federated workload on the given
// transport backend and digests it.
func goldenFedRun(t *testing.T, backend string) string {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	return goldenFedRunOn(t, tr)
}

// goldenFedRunOn is goldenFedRun on an explicit transport instance
// (owned and closed here), so the two-process test can dial a worker.
func goldenFedRunOn(t *testing.T, tr transport.Transport) string {
	t.Helper()
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return hashRun([]*param.Set{sim.Global().Params()}, hr)
}

// goldenGossipRun executes the reference gossip workload on the given
// transport backend and digests every node's model plus the F1 curve.
func goldenGossipRun(t *testing.T, backend string) string {
	t.Helper()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("gowalla", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("prme", d)
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var f1 []float64
	sim, err := gossip.New(gossip.Config{
		Dataset:   d,
		Factory:   model.NewPRMEFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    5,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *gossip.Simulation) {
			f1 = append(f1, s.UtilityF1(spec.HRK))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	params := make([]*param.Set, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		params[u] = sim.Node(u).Params()
	}
	return hashRun(params, f1)
}

// TestGoldenDeterminism pins the end-to-end numerical behaviour of the
// round engines: a small fed and gossip run, hashed over final model
// parameters plus the per-round utility curve, must reproduce the
// checked-in digests exactly. A refactor that silently changes results
// — RNG stream reordering, aggregation-order drift, codec corruption —
// fails here loudly instead of shifting every experiment table a
// little. After an *intentional* behaviour change, regenerate with
//
//	go test ./internal/experiments/ -run TestGoldenDeterminism -update
//
// and justify the new hashes in the commit. The digests are recorded
// on amd64; other architectures may fuse multiply-adds differently, so
// the comparison is gated to amd64 (where CI runs).
func TestGoldenDeterminism(t *testing.T) {
	hashes := map[string]string{}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		hashes["fed-gmf/"+backend] = goldenFedRun(t, backend)
		hashes["gossip-prme/"+backend] = goldenGossipRun(t, backend)
	}
	// The transport backends must agree with each other regardless of
	// what the golden file says (this half runs on every architecture).
	// "socket" runs the complete RPC network path over a loopback
	// Unix-domain socket server, so agreement here means the framed
	// protocol is value-transparent end to end.
	for _, workload := range []string{"fed-gmf", "gossip-prme"} {
		for _, backend := range []string{"wire", "socket"} {
			if hashes[workload+"/inproc"] != hashes[workload+"/"+backend] {
				t.Fatalf("%s: %s and inproc hashes differ", workload, backend)
			}
		}
	}

	if *updateGolden {
		blob, err := json.MarshalIndent(hashes, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hashes are recorded on amd64; GOARCH=%s may round differently", runtime.GOARCH)
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if hashes[k] == "" {
			t.Errorf("golden file has %s but the test no longer produces it (regenerate with -update)", k)
			continue
		}
		if hashes[k] != want[k] {
			t.Errorf("%s: hash %s != golden %s — results changed; if intentional, rerun with -update",
				k, hashes[k], want[k])
		}
	}
	if len(hashes) != len(want) {
		t.Errorf("produced %d hashes, golden file has %d (regenerate with -update)", len(hashes), len(want))
	}
}

// workerEnv is the re-exec trigger: when set (to "network:address"),
// the test binary serves the transport RPC protocol at that address
// instead of running tests — a real second OS process for
// TestGoldenSocketTwoProcess, sharing cmd/ciaworker's serving path
// (rpc.Serve) without needing the Go toolchain to build the binary
// inside the test.
const workerEnv = "CIAREC_RPC_WORKER"

func TestMain(m *testing.M) {
	if spec := os.Getenv(workerEnv); spec != "" {
		network, addr, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad %s %q (want network:addr)\n", workerEnv, spec)
			os.Exit(1)
		}
		if _, err := rpc.Serve(network, addr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		select {} // serve until the parent kills the process (no orderly teardown)
	}
	os.Exit(m.Run())
}

// TestGoldenSocketTwoProcess is the acceptance check for the
// multi-process round engine: the reference federated workload, with
// every parameter transfer dialed out to an RPC worker running in a
// separate OS process, must hash identically to the in-process run.
func TestGoldenSocketTwoProcess(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "worker.sock")
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), workerEnv+"=unix:"+sock)
	var output bytes.Buffer
	cmd.Stdout, cmd.Stderr = &output, &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// Wait until the worker's socket accepts connections.
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker process never came up: %v\noutput: %s", err, output.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	ref := goldenFedRun(t, "inproc")
	tr, err := transport.Dial("socket", sock)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenFedRunOn(t, tr)
	if got != ref {
		t.Fatalf("two-process socket hash %s != inproc %s", got, ref)
	}
}
