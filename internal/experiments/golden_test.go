package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
	"github.com/collablearn/ciarec/internal/transport/rpc"
)

// updateGolden regenerates testdata/golden.json:
//
//	go test ./internal/experiments/ -run TestGoldenDeterminism -update
var updateGolden = flag.Bool("update", false, "rewrite the golden determinism hashes")

const goldenPath = "testdata/golden.json"

// hashRun folds final model parameters (through the wire codec, so
// the digest covers exactly the bytes a deployment would persist) and
// the per-round utility curve into one digest.
func hashRun(params []*param.Set, utility []float64) string {
	h := sha256.New()
	for _, p := range params {
		if _, err := p.WriteTo(h); err != nil {
			panic(err)
		}
	}
	var buf [8]byte
	for _, v := range utility {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenFedRun executes the reference federated workload on the given
// transport backend and digests it.
func goldenFedRun(t *testing.T, backend string) string {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	return goldenFedRunOn(t, tr)
}

// goldenFedRunOn is goldenFedRun on an explicit transport instance
// (owned and closed here), so the two-process test can dial a worker.
func goldenFedRunOn(t *testing.T, tr transport.Transport) string {
	t.Helper()
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return hashRun([]*param.Set{sim.Global().Params()}, hr)
}

// goldenCompressedFedRun executes the reference federated workload
// with every parameter transfer running through the sparse+quantized
// delta codec at the given bit width, and digests it. Quantization
// moves the result off the dense fed-gmf hashes, but the compressed
// result itself is pinned: the same digest on every backend, every
// run, every worker count.
func goldenCompressedFedRun(t *testing.T, backend string, bits int) string {
	t.Helper()
	tr, err := transport.NewOptions(backend, transport.Options{
		Compression: param.Compression{Bits: bits},
	})
	if err != nil {
		t.Fatal(err)
	}
	return goldenFedRunOn(t, tr)
}

// goldenFaultPlan is the chaos scenario pinned by the faulty golden
// hashes: every fault family active, so the digest covers blackout
// rounds, skipped clients, lost uploads and straggler exclusion.
func goldenFaultPlan() transport.FaultPlan {
	return transport.FaultPlan{
		Seed:              3,
		DropProb:          0.1,
		SendLossProb:      0.1,
		DeliverLossProb:   0.1,
		BroadcastFailProb: 0.1,
		SlowProb:          0.3,
		SlowLatency:       500 * time.Millisecond,
	}
}

// goldenFaultyFedRun executes the reference federated workload under
// the golden fault plan — straggler deadline and quorum active — on the
// given backend behind the fault injector, and digests the surviving
// model plus the utility curve and the full fault accounting. A (seed,
// plan) pair must pin the exact output: the same digest on every
// backend, every run.
func goldenFaultyFedRun(t *testing.T, backend string) string {
	t.Helper()
	plan := goldenFaultPlan()
	tr, err := transport.NewOptions(transport.FaultyPrefix+backend, transport.Options{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	sim, err := fed.New(fed.Config{
		Dataset:           d,
		Factory:           model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:            4,
		Train:             model.TrainOptions{Epochs: 1},
		Workers:           spec.Workers,
		Transport:         tr,
		FaultPlan:         &plan,
		StragglerDeadline: 100 * time.Millisecond,
		Quorum:            0.3,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Fold the fault accounting into the digest so the hash pins the
	// fault schedule, not just what survived it.
	r := sim.Resilience()
	if r.DeliverFailures == 0 || r.UploadFailures == 0 || r.Stragglers == 0 {
		t.Fatalf("golden fault plan failed to exercise every failure path: %+v", r)
	}
	counts := []float64{
		float64(r.BlackoutRounds), float64(r.DeliverFailures),
		float64(r.UploadFailures), float64(r.Stragglers), float64(r.QuorumMisses),
	}
	return hashRun([]*param.Set{sim.Global().Params()}, append(hr, counts...))
}

// goldenRobustFedRun executes the reference federated workload with a
// caller-tweaked config (churn plan, Byzantine population, robust
// aggregator) and digests the surviving model, the utility curve and
// the churn/Byzantine accounting. check rejects a run too tame to pin
// anything (no leaves, no corrupted uploads, …).
func goldenRobustFedRun(t *testing.T, backend string, tweak func(*fed.Config), check func(fed.Resilience) string) string {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	cfg := fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
		},
		Seed: 7,
	}
	tweak(&cfg)
	sim, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	r := sim.Resilience()
	if msg := check(r); msg != "" {
		t.Fatal(msg)
	}
	counts := []float64{
		float64(r.Joins), float64(r.Leaves), float64(r.Rejoins),
		float64(r.ByzantineUploads), float64(r.ClippedUploads),
	}
	return hashRun([]*param.Set{sim.Global().Params()}, append(hr, counts...))
}

// goldenChurnFedRun pins the PR's acceptance scenario: heavy
// deterministic churn (≥20% round-over-round turnover; see
// TestResilienceScenarioTurnover), a 10% sign-flip Byzantine
// population and trimmed-mean aggregation.
func goldenChurnFedRun(t *testing.T, backend string) string {
	t.Helper()
	churn := transport.ChurnPlan{Seed: 5, InitialFraction: 0.8, LeaveProb: 0.25, JoinProb: 0.5, StaleBound: 2}
	byz := attack.Byzantine{Kind: attack.ByzSignFlip, Fraction: 0.1, Seed: 1}
	return goldenRobustFedRun(t, backend, func(c *fed.Config) {
		c.ChurnPlan = &churn
		c.Byzantine = &byz
		c.Aggregator = fed.AggTrimmedMean
		c.TrimFraction = 0.2
	}, func(r fed.Resilience) string {
		if r.Joins == 0 || r.Leaves == 0 || r.Rejoins == 0 || r.ByzantineUploads == 0 {
			return fmt.Sprintf("golden churn scenario failed to exercise every membership path: %+v", r)
		}
		return ""
	})
}

// goldenByzMedianFedRun pins scaled-noise adversaries against the
// coordinate-wise median.
func goldenByzMedianFedRun(t *testing.T, backend string) string {
	t.Helper()
	byz := attack.Byzantine{Kind: attack.ByzScaledNoise, Fraction: 0.2, Scale: 2, Seed: 2}
	return goldenRobustFedRun(t, backend, func(c *fed.Config) {
		c.Byzantine = &byz
		c.Aggregator = fed.AggMedian
	}, func(r fed.Resilience) string {
		if r.ByzantineUploads == 0 {
			return fmt.Sprintf("golden median scenario corrupted nothing: %+v", r)
		}
		return ""
	})
}

// goldenByzClipFedRun pins sign-flip adversaries against norm
// clipping; the bound is chosen below the honest delta norms so the
// hash also covers the clip accounting.
func goldenByzClipFedRun(t *testing.T, backend string) string {
	t.Helper()
	byz := attack.Byzantine{Kind: attack.ByzSignFlip, Fraction: 0.2, Seed: 3}
	return goldenRobustFedRun(t, backend, func(c *fed.Config) {
		c.Byzantine = &byz
		c.Aggregator = fed.AggNormClip
		c.ClipNorm = 0.5
	}, func(r fed.Resilience) string {
		if r.ByzantineUploads == 0 || r.ClippedUploads == 0 {
			return fmt.Sprintf("golden norm-clip scenario clipped nothing: %+v", r)
		}
		return ""
	})
}

// goldenGossipRun executes the reference gossip workload on the given
// transport backend and digests every node's model plus the F1 curve.
func goldenGossipRun(t *testing.T, backend string) string {
	t.Helper()
	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("gowalla", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("prme", d)
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var f1 []float64
	sim, err := gossip.New(gossip.Config{
		Dataset:   d,
		Factory:   model.NewPRMEFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    5,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *gossip.Simulation) {
			f1 = append(f1, s.UtilityF1(spec.HRK))
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	params := make([]*param.Set, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		params[u] = sim.Node(u).Params()
	}
	return hashRun(params, f1)
}

// TestGoldenDeterminism pins the end-to-end numerical behaviour of the
// round engines: a small fed and gossip run, hashed over final model
// parameters plus the per-round utility curve, must reproduce the
// checked-in digests exactly. A refactor that silently changes results
// — RNG stream reordering, aggregation-order drift, codec corruption —
// fails here loudly instead of shifting every experiment table a
// little. After an *intentional* behaviour change, regenerate with
//
//	go test ./internal/experiments/ -run TestGoldenDeterminism -update
//
// and justify the new hashes in the commit. The digests are recorded
// on amd64; other architectures may fuse multiply-adds differently, so
// the comparison is gated to amd64 (where CI runs).
func TestGoldenDeterminism(t *testing.T) {
	hashes := map[string]string{}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		hashes["fed-gmf/"+backend] = goldenFedRun(t, backend)
		hashes["gossip-prme/"+backend] = goldenGossipRun(t, backend)
		hashes["fed-gmf-faulty/"+backend] = goldenFaultyFedRun(t, backend)
		hashes["fed-gmf-compressed8/"+backend] = goldenCompressedFedRun(t, backend, 8)
		hashes["fed-gmf-compressed16/"+backend] = goldenCompressedFedRun(t, backend, 16)
		hashes["fed-gmf-churn/"+backend] = goldenChurnFedRun(t, backend)
		hashes["fed-gmf-byz-median/"+backend] = goldenByzMedianFedRun(t, backend)
		hashes["fed-gmf-byz-clip/"+backend] = goldenByzClipFedRun(t, backend)
	}
	// The transport backends must agree with each other regardless of
	// what the golden file says (this half runs on every architecture).
	// "socket" runs the complete RPC network path over a loopback
	// Unix-domain socket server, so agreement here means the framed
	// protocol is value-transparent end to end — and for the faulty
	// workload, that the injected fault schedule is backend-independent.
	for _, workload := range []string{
		"fed-gmf", "gossip-prme", "fed-gmf-faulty",
		"fed-gmf-compressed8", "fed-gmf-compressed16",
		"fed-gmf-churn", "fed-gmf-byz-median", "fed-gmf-byz-clip",
	} {
		for _, backend := range []string{"wire", "socket"} {
			if hashes[workload+"/inproc"] != hashes[workload+"/"+backend] {
				t.Fatalf("%s: %s and inproc hashes differ", workload, backend)
			}
		}
	}

	if *updateGolden {
		blob, err := json.MarshalIndent(hashes, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hashes are recorded on amd64; GOARCH=%s may round differently", runtime.GOARCH)
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if hashes[k] == "" {
			t.Errorf("golden file has %s but the test no longer produces it (regenerate with -update)", k)
			continue
		}
		if hashes[k] != want[k] {
			t.Errorf("%s: hash %s != golden %s — results changed; if intentional, rerun with -update",
				k, hashes[k], want[k])
		}
	}
	if len(hashes) != len(want) {
		t.Errorf("produced %d hashes, golden file has %d (regenerate with -update)", len(hashes), len(want))
	}
}

// workerEnv is the re-exec trigger: when set (to "network:address"),
// the test binary serves the transport RPC protocol at that address
// instead of running tests — a real second OS process for
// TestGoldenSocketTwoProcess, sharing cmd/ciaworker's serving path
// (rpc.Serve) without needing the Go toolchain to build the binary
// inside the test.
const workerEnv = "CIAREC_RPC_WORKER"

func TestMain(m *testing.M) {
	if spec := os.Getenv(workerEnv); spec != "" {
		network, addr, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad %s %q (want network:addr)\n", workerEnv, spec)
			os.Exit(1)
		}
		if _, err := rpc.Serve(network, addr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		select {} // serve until the parent kills the process (no orderly teardown)
	}
	os.Exit(m.Run())
}

// startWorker launches a second OS process serving the transport RPC
// protocol on the unix socket path and waits until it accepts
// connections. The returned command is registered for cleanup; callers
// that bounce the worker mid-test kill it themselves.
func startWorker(t *testing.T, sock string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), workerEnv+"=unix:"+sock)
	var output bytes.Buffer
	cmd.Stdout, cmd.Stderr = &output, &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.Dial("unix", sock)
		if err == nil {
			conn.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker process never came up: %v\noutput: %s", err, output.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGoldenSocketTwoProcess is the acceptance check for the
// multi-process round engine: the reference federated workload, with
// every parameter transfer dialed out to an RPC worker running in a
// separate OS process, must hash identically to the in-process run.
func TestGoldenSocketTwoProcess(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "worker.sock")
	startWorker(t, sock)

	ref := goldenFedRun(t, "inproc")
	tr, err := transport.Dial("socket", sock)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenFedRunOn(t, tr)
	if got != ref {
		t.Fatalf("two-process socket hash %s != inproc %s", got, ref)
	}
}

// TestGoldenFaultyRepeatable is the chaos acceptance check: a run
// under an active fault plan is byte-identical across two executions
// with the same (seed, plan) — chaos is replayable, not random.
func TestGoldenFaultyRepeatable(t *testing.T) {
	first := goldenFaultyFedRun(t, "inproc")
	second := goldenFaultyFedRun(t, "inproc")
	if first != second {
		t.Fatalf("two chaos runs with the same (seed, plan) hash differently: %s vs %s", first, second)
	}
}

// TestGoldenSocketRelayRestart is the partition/heal acceptance check:
// the relay worker process is killed and restarted on the same address
// between rounds, every pooled client connection goes stale, and the
// continuing run — recovering purely through the RPC retry/reconnect
// path — must still hash identically to the in-process run.
func TestGoldenSocketRelayRestart(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "worker.sock")
	worker := startWorker(t, sock)

	ref := goldenFedRun(t, "inproc")
	tr, err := transport.Dial("socket", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	spec := BenchSpec()
	spec.Workers = 2
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)
	var hr []float64
	bounced := false
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, spec.Dim),
		Rounds:    4,
		Train:     model.TrainOptions{Epochs: 1},
		Workers:   spec.Workers,
		Transport: tr,
		OnRound: func(round int, s *fed.Simulation) {
			hr = append(hr, s.UtilityHR(spec.HRK, 20))
			if round == 1 {
				// Partition: the relay dies between rounds. A killed
				// process does not unlink its socket file, so clear it
				// before the healed relay binds the same address.
				worker.Process.Kill()
				worker.Wait()
				os.Remove(sock)
				startWorker(t, sock)
				bounced = true
			}
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !bounced {
		t.Fatal("the relay was never bounced — the test is vacuous")
	}
	got := hashRun([]*param.Set{sim.Global().Params()}, hr)
	if got != ref {
		t.Fatalf("run across a relay restart hashes %s, inproc %s", got, ref)
	}
	// Healing must have gone through the reconnect path: every pooled
	// connection was stale after the bounce.
	if st := tr.Stats(); st.Reconnects == 0 {
		t.Fatalf("relay restart healed without a single reconnect: %+v", st)
	}
}
