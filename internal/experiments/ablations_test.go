package experiments

import (
	"strings"
	"testing"
)

// Secure Aggregation alone does not fix FedRec leakage (the aggregate
// still carries per-user embedding rows); SA + Share-less does.
func TestSecureAggAblation(t *testing.T) {
	rows, err := RunSecureAggAblation(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	baseline, saFull, saShareLess := rows[0], rows[1], rows[2]
	if saFull.MaxAAC < 2*saFull.Random {
		t.Fatalf("SA with full sharing should still leak via user rows: %.3f vs random %.3f",
			saFull.MaxAAC, saFull.Random)
	}
	if saShareLess.MaxAAC > 2*saShareLess.Random {
		t.Fatalf("SA + share-less should approach random: %.3f vs %.3f",
			saShareLess.MaxAAC, saShareLess.Random)
	}
	if baseline.MaxAAC < saShareLess.MaxAAC {
		t.Fatal("baseline CIA should dominate the fully-defended setting")
	}
	if !strings.Contains(RenderSecureAggAblation(rows), "Secure Aggregation") {
		t.Fatal("render malformed")
	}
}

// Freezing the gossip graph caps the adversary's observation bound.
func TestStaticGraphAblation(t *testing.T) {
	rows, err := RunStaticGraphAblation(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	dynamic, static := rows[0], rows[1]
	if static.UpperBound >= dynamic.UpperBound {
		t.Fatalf("static graph should have a lower observation bound: %.3f vs %.3f",
			static.UpperBound, dynamic.UpperBound)
	}
	if !strings.Contains(RenderStaticGraphAblation(rows), "dynamic") {
		t.Fatal("render malformed")
	}
}

// The fitted fictive-user embedding is what makes Share-less CIA work.
func TestFictiveAblation(t *testing.T) {
	rows, err := RunFictiveAblation(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	fitted, zero := rows[0], rows[1]
	if fitted.MaxAAC <= zero.MaxAAC {
		t.Fatalf("fitted e_A (%.3f) should beat the zero vector (%.3f)",
			fitted.MaxAAC, zero.MaxAAC)
	}
	if !strings.Contains(RenderFictiveAblation(rows), "fictive") {
		t.Fatal("render malformed")
	}
}

// The norm-adjusted PRME relevance is what makes PRME attackable.
func TestRelevanceAblation(t *testing.T) {
	rows, err := RunRelevanceAblation(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	adjusted, raw := rows[0], rows[1]
	if adjusted.MaxAAC <= raw.MaxAAC {
		t.Fatalf("norm-adjusted relevance (%.3f) should beat raw distances (%.3f)",
			adjusted.MaxAAC, raw.MaxAAC)
	}
	if !strings.Contains(RenderRelevanceAblation(rows), "PRME") {
		t.Fatal("render malformed")
	}
}

// Partial participation slows but does not stop the FL attack; upper
// bounds reflect accumulated coverage.
func TestParticipationAblation(t *testing.T) {
	rows, err := RunParticipationAblation(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	full, sparse := rows[0], rows[2] // full vs 20% sampling
	if full.MaxAAC < sparse.MaxAAC {
		t.Fatalf("full participation (%.3f) should leak at least as much as 20%% sampling (%.3f)",
			full.MaxAAC, sparse.MaxAAC)
	}
	for _, r := range rows {
		if r.MaxAAC < r.Random {
			t.Errorf("%s: attack below random", r.Setting)
		}
		if r.UpperBound <= 0 || r.UpperBound > 1 {
			t.Errorf("%s: bad upper bound %v", r.Setting, r.UpperBound)
		}
	}
	if !strings.Contains(RenderParticipationAblation(rows), "participation") {
		t.Fatal("render malformed")
	}
}
