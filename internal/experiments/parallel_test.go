package experiments

import (
	"testing"

	"github.com/collablearn/ciarec/internal/gossip"
)

// Worker-count invariance at the harness level: the same spec run with
// serial and parallel simulators must produce identical per-round CIA
// accuracy series and identical rendered table rows. This is the
// user-visible face of the simulators' byte-identical guarantee.
func TestWorkersInvariance(t *testing.T) {
	base := BenchSpec()
	base.Rounds = 5
	base.GLRounds = 8

	d, err := MakeDataset("movielens", base)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)

	runFL := func(workers int) (RunResult, string) {
		s := base
		s.Workers = workers
		res, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: s, Utility: UtilityNone})
		if err != nil {
			t.Fatal(err)
		}
		row := AttackRow{Dataset: "movielens", Model: "gmf", Setting: "FL", Result: res.Attack}
		return res, row.String()
	}
	runGL := func(workers int) (RunResult, string) {
		s := base
		s.Workers = workers
		res, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Variant: gossip.RandGossip, Spec: s})
		if err != nil {
			t.Fatal(err)
		}
		row := AttackRow{Dataset: "movielens", Model: "gmf", Setting: "rand-gossip", Result: res.Attack}
		return res, row.String()
	}

	for name, run := range map[string]func(int) (RunResult, string){"fl": runFL, "gl": runGL} {
		t.Run(name, func(t *testing.T) {
			serial, serialRow := run(-1) // forced serial
			parallel, parallelRow := run(4)
			if len(serial.Attack.Series) != len(parallel.Attack.Series) {
				t.Fatalf("series lengths differ: %d vs %d",
					len(serial.Attack.Series), len(parallel.Attack.Series))
			}
			for i := range serial.Attack.Series {
				if serial.Attack.Series[i] != parallel.Attack.Series[i] {
					t.Fatalf("round %d AAC differs: %v vs %v",
						i, serial.Attack.Series[i], parallel.Attack.Series[i])
				}
			}
			if serial.Attack.MaxAAC != parallel.Attack.MaxAAC {
				t.Fatalf("MaxAAC differs: %v vs %v", serial.Attack.MaxAAC, parallel.Attack.MaxAAC)
			}
			if serialRow != parallelRow {
				t.Fatalf("rendered rows differ:\n%s\n%s", serialRow, parallelRow)
			}
		})
	}
}
