package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioRoundTrip: every preset survives Encode → DecodeScenario
// unchanged, so a checked-in scenario file reproduces the exact run.
func TestScenarioRoundTrip(t *testing.T) {
	for _, sc := range ScenarioPresets() {
		var buf bytes.Buffer
		if err := sc.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", sc.Name, err)
		}
		back, err := DecodeScenario(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("%s: round trip changed the scenario:\n  out %+v\n  in  %+v", sc.Name, sc, back)
		}
	}
}

// TestScenarioPresetsResolve: the presets validate and resolve into
// runnable specs with the resilience knobs actually threaded through.
func TestScenarioPresetsResolve(t *testing.T) {
	sc, ok := ScenarioPreset("churn-byz")
	if !ok {
		t.Fatal("churn-byz preset missing")
	}
	spec, err := sc.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.ChurnPlan == nil || !spec.ChurnPlan.Enabled() {
		t.Fatal("churn-byz preset resolved without an enabled churn plan")
	}
	if spec.Byzantine == nil || !spec.Byzantine.Enabled() {
		t.Fatal("churn-byz preset resolved without an enabled Byzantine population")
	}
	if spec.Aggregator.String() != "trimmed-mean" {
		t.Fatalf("churn-byz aggregator = %v, want trimmed-mean", spec.Aggregator)
	}

	mu, ok := ScenarioPreset("million-user")
	if !ok {
		t.Fatal("million-user preset missing")
	}
	if err := mu.Validate(); err != nil {
		t.Fatal(err)
	}
	if mu.Users < 1_000_000 {
		t.Fatalf("million-user preset sizes %d users", mu.Users)
	}
	if _, ok := ScenarioPreset("no-such"); ok {
		t.Fatal("unknown preset resolved")
	}
}

// minimalScenario is the smallest valid scenario, cloned per test case.
func minimalScenario() Scenario {
	return Scenario{Protocol: "fed", Dataset: "movielens", Family: "gmf"}
}

// TestScenarioValidationNamesField: every rejection must name the
// offending JSON field, the contract `ciabench -scenario` relies on.
func TestScenarioValidationNamesField(t *testing.T) {
	cases := []struct {
		field  string
		mutate func(*Scenario)
	}{
		{"protocol", func(sc *Scenario) { sc.Protocol = "p2p" }},
		{"dataset", func(sc *Scenario) { sc.Dataset = "netflix" }},
		{"family", func(sc *Scenario) { sc.Family = "transformer" }},
		{"defense", func(sc *Scenario) { sc.Defense = "prayer" }},
		{"defense", func(sc *Scenario) { sc.Defense = "sparsify:1.5" }},
		{"variant", func(sc *Scenario) { sc.Protocol = "gossip"; sc.Variant = "ring" }},
		{"variant", func(sc *Scenario) { sc.Variant = "rand-gossip" }}, // fed-only misuse
		{"rounds", func(sc *Scenario) { sc.Rounds = -1 }},
		{"local_epochs", func(sc *Scenario) { sc.LocalEpochs = -1 }},
		{"workers", func(sc *Scenario) { sc.Workers = -2 }},
		{"client_fraction", func(sc *Scenario) { sc.ClientFraction = 1.5 }},
		{"dropout_prob", func(sc *Scenario) { sc.DropoutProb = -0.1 }},
		{"aggregator", func(sc *Scenario) { sc.Aggregator = "krum" }},
		{"aggregator", func(sc *Scenario) { sc.Protocol = "gossip"; sc.Aggregator = "median" }},
		{"trim_fraction", func(sc *Scenario) { sc.TrimFraction = 0.5 }},
		{"clip_norm", func(sc *Scenario) { sc.ClipNorm = -1 }},
		{"clip_norm", func(sc *Scenario) { sc.Aggregator = "norm-clip" }},
		{"quorum", func(sc *Scenario) { sc.Quorum = 2 }},
		{"straggler_deadline", func(sc *Scenario) { sc.StragglerDeadline = "soon" }},
		{"transport", func(sc *Scenario) { sc.Transport = "carrier-pigeon" }},
		{"compression", func(sc *Scenario) { sc.Compression = "4bit" }},
		{"faults", func(sc *Scenario) { sc.Faults = "drop=2" }},
		{"retry", func(sc *Scenario) { sc.Retry = "attempts=maybe" }},
		{"churn", func(sc *Scenario) { sc.Churn = "leave=2" }},
		{"churn", func(sc *Scenario) { sc.Churn = "seed=1,vanish=0.5" }},
		{"byzantine", func(sc *Scenario) { sc.Byzantine = "kind=polite" }},
		{"users", func(sc *Scenario) { sc.Users = 50 }},
		{"users", func(sc *Scenario) { sc.Dataset = "powerlaw"; sc.Users = 1 }},
		{"items", func(sc *Scenario) { sc.Dataset = "powerlaw"; sc.Users = 10; sc.Items = 0 }},
		{"zipf", func(sc *Scenario) { sc.Zipf = 0.8 }},
		{"communities", func(sc *Scenario) { sc.Dataset = "powerlaw"; sc.Users = 10; sc.Items = 10; sc.Communities = 11 }},
		{"mean_items", func(sc *Scenario) { sc.Dataset = "powerlaw"; sc.Users = 10; sc.Items = 10; sc.MeanItems = -1 }},
	}
	for i, c := range cases {
		sc := minimalScenario()
		c.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("case %d: bad %s accepted: %+v", i, c.field, sc)
			continue
		}
		if want := fmt.Sprintf("field %q", c.field); !strings.Contains(err.Error(), want) {
			t.Errorf("case %d: error %q does not name %s", i, err, want)
		}
	}
	if err := minimalScenario().Validate(); err != nil {
		t.Fatalf("minimal scenario rejected: %v", err)
	}
}

// TestScenarioDecodeRejectsUnknownFields: a typo'd knob fails loudly
// and is named in the error instead of silently running the default.
func TestScenarioDecodeRejectsUnknownFields(t *testing.T) {
	blob := `{"protocol":"fed","dataset":"movielens","family":"gmf","agregator":"median"}`
	_, err := DecodeScenario(strings.NewReader(blob))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "agregator") {
		t.Fatalf("error %q does not name the unknown field", err)
	}
}

// TestScenarioRunsSmall executes tiny fed and gossip scenarios end to
// end through the declarative path, churn and Byzantine knobs active.
func TestScenarioRunsSmall(t *testing.T) {
	fedSC := ChurnByzScenario()
	fedSC.Rounds = 3
	fedSC.Workers = 2
	res, err := RunScenario(fedSC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience == "" {
		t.Fatal("churn-byz run reported no resilience counters")
	}
	if !strings.Contains(res.Resilience, "byzantine-uploads=") {
		t.Fatalf("resilience summary %q lacks byzantine uploads", res.Resilience)
	}
	if res.BestUtility() <= 0 {
		t.Fatal("churn-byz run recorded no utility")
	}

	gsc := Scenario{
		Name: "gossip-churn", Protocol: "gossip", Dataset: "gowalla", Family: "prme",
		Rounds: 4, Workers: 2,
		Churn:     "seed=5,initial=0.8,leave=0.3,join=0.3,stale-bound=2",
		Byzantine: "kind=collude,frac=0.2,seed=9",
	}
	gres, err := RunScenario(gsc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gres.Resilience, "leaves=") {
		t.Fatalf("gossip resilience summary %q lacks churn counters", gres.Resilience)
	}
}

// FuzzScenarioDecode hammers the scenario decoder: any input that
// decodes cleanly must also survive an encode → decode round trip
// unchanged, and validation must never panic. The committed seed
// corpus covers the presets, a minimal scenario and the documented
// rejection classes (unknown field, bad nested plan, truncation).
func FuzzScenarioDecode(f *testing.F) {
	for _, sc := range ScenarioPresets() {
		blob, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{"protocol":"fed","dataset":"movielens","family":"gmf"}`))
	f.Add([]byte(`{"protocol":"gossip","dataset":"gowalla","family":"prme","variant":"pers-gossip","churn":"default","byzantine":"default"}`))
	f.Add([]byte(`{"protocol":"fed","dataset":"movielens","family":"gmf","typo":1}`))
	f.Add([]byte(`{"protocol":"fed","dataset":"movielens","family":"gmf","churn":"leave=2"}`))
	f.Add([]byte(`{"protocol":"fed"`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScenario(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := sc.Encode(&buf); err != nil {
			t.Fatalf("decoded scenario failed to encode: %v", err)
		}
		back, err := DecodeScenario(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", buf.String(), err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip changed the scenario:\n  first  %+v\n  second %+v", sc, back)
		}
	})
}
