package experiments

import (
	"fmt"
	"strings"

	"github.com/collablearn/ciarec/internal/defense"
)

// This file contains extension studies that go beyond the paper's
// evaluation: a third model family (BPR-MF) and a third candidate
// defense (top-k update sparsification). Both reuse the identical
// harness, which is the point — the attack and protocols are
// model- and defense-agnostic.

// FamilyRow is one line of the model-family study.
type FamilyRow struct {
	Family  string
	MaxAAC  float64
	Best10  float64
	Random  float64
	Utility float64
}

// RunModelFamilyStudy compares CIA leakage across four model families
// (GMF, BPR-MF, NeuMF, PRME) on the same federation and dataset. The
// paper evaluates two; BPR-MF checks that the leakage is not tied to
// the pointwise BCE objective and NeuMF that it survives a deeper
// architecture. Utility is HR@K for the dot-product/neural models and
// F1@K for PRME (not directly comparable across columns; it is
// reported to show every model actually learned).
func RunModelFamilyStudy(spec Spec) ([]FamilyRow, error) {
	var rows []FamilyRow
	for _, family := range []string{"gmf", "bprmf", "neumf", "prme"} {
		d, err := MakeDataset("movielens", spec)
		if err != nil {
			return nil, err
		}
		SplitFor(family, d)
		res, err := RunFLCIA(FLOpts{
			Data: d, Family: family, Spec: spec,
			Utility: utilityFor(family),
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FamilyRow{
			Family:  family,
			MaxAAC:  res.Attack.MaxAAC,
			Best10:  res.Attack.Best10AAC,
			Random:  res.Attack.RandomBound,
			Utility: res.BestUtility(),
		})
	}
	return rows, nil
}

// RenderModelFamilyStudy formats the model-family comparison.
func RenderModelFamilyStudy(rows []FamilyRow) string {
	var b strings.Builder
	b.WriteString("== Extension: CIA across model families (FL, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s MaxAAC=%5.1f%%  Best10%%=%5.1f%%  random=%4.1f%%  utility=%.3f\n",
			r.Family, 100*r.MaxAAC, 100*r.Best10, 100*r.Random, r.Utility)
	}
	return b.String()
}

// SparsifyRow is one line of the sparsification study.
type SparsifyRow struct {
	Setting string
	MaxAAC  float64
	Utility float64
	Random  float64
}

// RunSparsifyStudy evaluates top-k update sparsification as a
// candidate CIA defense across kept fractions. Expectation (confirmed
// by the study): sparsification is a bandwidth tool, not a privacy
// tool — the surviving coordinates are exactly the strongest taste
// signal, so the attack degrades only once the update is almost
// entirely discarded, by which point utility suffers too.
func RunSparsifyStudy(spec Spec) ([]SparsifyRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	var rows []SparsifyRow
	base, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: spec, Utility: UtilityHR})
	if err != nil {
		return nil, err
	}
	rows = append(rows, SparsifyRow{
		Setting: "full updates", MaxAAC: base.Attack.MaxAAC,
		Utility: base.BestUtility(), Random: base.Attack.RandomBound,
	})
	for _, frac := range []float64{0.5, 0.1, 0.01} {
		res, err := RunFLCIA(FLOpts{
			Data: d, Family: "gmf", Spec: spec, Utility: UtilityHR,
			Policy: defense.TopKSparsify{Fraction: frac},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SparsifyRow{
			Setting: fmt.Sprintf("top %.0f%% of coordinates", 100*frac),
			MaxAAC:  res.Attack.MaxAAC,
			Utility: res.BestUtility(),
			Random:  res.Attack.RandomBound,
		})
	}
	return rows, nil
}

// RenderSparsifyStudy formats the sparsification study.
func RenderSparsifyStudy(rows []SparsifyRow) string {
	var b strings.Builder
	b.WriteString("== Extension: top-k update sparsification vs CIA (FL, GMF, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s MaxAAC=%5.1f%%  HR=%5.3f  random=%4.1f%%\n",
			r.Setting, 100*r.MaxAAC, r.Utility, 100*r.Random)
	}
	return b.String()
}
