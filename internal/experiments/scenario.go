package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// Scenario is a declarative, JSON-able description of one complete
// protocol run: workload sizing, transport, compression, fault
// injection, participant churn, Byzantine adversaries and the
// aggregation rule, all in one struct. It is the single artifact a
// run is reproduced from — `ciabench -scenario run.json` executes it,
// and the same JSON checked into a repository pins the run forever
// (every knob is deterministic, so a Scenario is a golden cell).
//
// The nested plan fields (faults, churn, byzantine) reuse the textual
// key=value specs of their typed parsers (transport.ParseFaultPlan,
// transport.ParseChurnPlan, attack.ParseByzantine), so a Scenario
// stays a flat, diffable JSON object and the CLI flags and scenario
// files share one syntax. DecodeScenario rejects unknown fields, and
// every validation error names the offending field.
type Scenario struct {
	// Name labels the run in rendered output.
	Name string `json:"name,omitempty"`
	// Protocol is "fed" (FedAvg federation, CIA at the server) or
	// "gossip" (decentralized, CIA at every placement).
	Protocol string `json:"protocol"`
	// Dataset is one of the named workloads (foursquare, gowalla,
	// movielens) or "powerlaw" for a synthetic power-law population
	// sized by the users/items/zipf/communities fields.
	Dataset string `json:"dataset"`
	// Family is the model family: gmf, prme, bprmf or neumf.
	Family string `json:"family"`
	// Defense is "" or "full" (full sharing), "share-less", or
	// "sparsify:<keep>" for top-k update sparsification keeping the
	// given coordinate fraction.
	Defense string `json:"defense,omitempty"`
	// Variant selects the gossip peer sampling: "" or "rand-gossip"
	// (uniform) or "pers-gossip" (performance-biased). Fed runs must
	// leave it empty.
	Variant string `json:"variant,omitempty"`

	// Paper switches the named datasets to full paper scale.
	Paper bool `json:"paper,omitempty"`
	// Rounds overrides the protocol round count (fed and gossip).
	Rounds int `json:"rounds,omitempty"`
	// LocalEpochs overrides the per-round local-training length.
	LocalEpochs int `json:"local_epochs,omitempty"`
	// Workers bounds per-run parallelism (0: runtime.NumCPU()).
	// Results are independent of the value.
	Workers int `json:"workers,omitempty"`
	// Seed drives all generation and training (0 keeps the default).
	Seed uint64 `json:"seed,omitempty"`
	// ClientFraction samples that fraction of the present clients per
	// fed round (0: full participation). Fed only.
	ClientFraction float64 `json:"client_fraction,omitempty"`
	// DropoutProb injects client upload failures. Fed only.
	DropoutProb float64 `json:"dropout_prob,omitempty"`

	// Transport names the round-transport backend (see Spec.Transport);
	// TransportAddr dials an external ciaworker instead of a loopback
	// server.
	Transport     string `json:"transport,omitempty"`
	TransportAddr string `json:"transport_addr,omitempty"`
	// Compression is "off", "8bit" or "16bit" (param.ParseCompression).
	Compression string `json:"compression,omitempty"`
	// Faults is a transport.ParseFaultPlan spec
	// (e.g. "seed=3,drop=0.1,slow=0.3,slow-latency=500ms") or "default".
	Faults string `json:"faults,omitempty"`
	// Retry is a transport.ParseRetryPolicy spec for the socket
	// backends (e.g. "attempts=6,backoff=5ms,timeout=2s").
	Retry string `json:"retry,omitempty"`

	// Churn is a transport.ParseChurnPlan spec
	// (e.g. "seed=5,initial=0.8,leave=0.25,join=0.5,stale-bound=2")
	// or "default". Empty: static membership.
	Churn string `json:"churn,omitempty"`
	// Byzantine is an attack.ParseByzantine spec
	// (e.g. "kind=sign-flip,frac=0.1,seed=1") or "default". Empty: no
	// adversaries.
	Byzantine string `json:"byzantine,omitempty"`
	// Aggregator is the fed server's rule: "" or "fedavg", "median",
	// "trimmed-mean", "norm-clip" (fed.ParseAggregator). Fed only.
	Aggregator string `json:"aggregator,omitempty"`
	// TrimFraction is the trimmed mean's per-end trim in [0, 0.5).
	TrimFraction float64 `json:"trim_fraction,omitempty"`
	// ClipNorm is norm-clip's per-upload L2 bound (required with
	// aggregator "norm-clip").
	ClipNorm float64 `json:"clip_norm,omitempty"`
	// Quorum and StragglerDeadline parameterize fed partial
	// aggregation; the deadline is a Go duration string ("100ms").
	Quorum            float64 `json:"quorum,omitempty"`
	StragglerDeadline string  `json:"straggler_deadline,omitempty"`

	// MetricsOut, when non-empty, writes the run's end-of-run registry
	// snapshot (RunResult.Metrics) as JSON to this path after the run
	// completes. Observability only: the dump never feeds back into the
	// run, and results stay byte-identical with or without it.
	MetricsOut string `json:"metrics_out,omitempty"`

	// Power-law sizing, only meaningful with dataset "powerlaw":
	// Users × Items drawn from Zipf(zipf)-skewed topics across
	// Communities communities, MeanItems interactions per user.
	Users       int     `json:"users,omitempty"`
	Items       int     `json:"items,omitempty"`
	Zipf        float64 `json:"zipf,omitempty"`
	Communities int     `json:"communities,omitempty"`
	MeanItems   int     `json:"mean_items,omitempty"`
}

// fieldErr wraps a validation failure with the JSON field it came
// from, so `ciabench -scenario bad.json` points at the exact knob.
func fieldErr(field string, err error) error {
	return fmt.Errorf("scenario: field %q: %v", field, err)
}

// DecodeScenario reads one JSON scenario, rejecting unknown fields
// (a typo'd knob fails loudly, naming itself, instead of silently
// running the default) and validating every field.
func DecodeScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("scenario: %v", err)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Encode renders the scenario as indented JSON, the round-trip
// counterpart of DecodeScenario.
func (sc Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// parseDefense resolves the defense token ("", "full", "share-less",
// "sparsify:<keep>") into a policy (nil for full sharing).
func parseDefense(s string) (defense.Policy, error) {
	switch {
	case s == "" || s == "full":
		return nil, nil
	case s == "share-less":
		return defense.ShareLess{Tau: DefaultShareLessTau}, nil
	case strings.HasPrefix(s, "sparsify:"):
		keep, err := strconv.ParseFloat(strings.TrimPrefix(s, "sparsify:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad sparsify fraction: %v", err)
		}
		if keep <= 0 || keep > 1 {
			return nil, fmt.Errorf("sparsify fraction %g outside (0, 1]", keep)
		}
		return defense.TopKSparsify{Fraction: keep}, nil
	}
	return nil, fmt.Errorf("unknown defense %q (want full, share-less or sparsify:<keep>)", s)
}

// parseVariant resolves the gossip peer-sampling token.
func parseVariant(s string) (gossip.Variant, error) {
	switch s {
	case "", "rand-gossip":
		return gossip.RandGossip, nil
	case "pers-gossip":
		return gossip.PersGossip, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want rand-gossip or pers-gossip)", s)
}

// Validate checks every field and reports the first offender by its
// JSON name.
func (sc Scenario) Validate() error {
	switch sc.Protocol {
	case "fed", "gossip":
	default:
		return fieldErr("protocol", fmt.Errorf("unknown protocol %q (want fed or gossip)", sc.Protocol))
	}
	switch sc.Dataset {
	case "foursquare", "gowalla", "movielens", "powerlaw":
	default:
		return fieldErr("dataset", fmt.Errorf("unknown dataset %q (want foursquare, gowalla, movielens or powerlaw)", sc.Dataset))
	}
	switch sc.Family {
	case "gmf", "prme", "bprmf", "neumf":
	default:
		return fieldErr("family", fmt.Errorf("unknown family %q (want gmf, prme, bprmf or neumf)", sc.Family))
	}
	if _, err := parseDefense(sc.Defense); err != nil {
		return fieldErr("defense", err)
	}
	if _, err := parseVariant(sc.Variant); err != nil {
		return fieldErr("variant", err)
	}
	if sc.Protocol == "fed" && sc.Variant != "" {
		return fieldErr("variant", fmt.Errorf("only meaningful with protocol gossip"))
	}
	if sc.Rounds < 0 {
		return fieldErr("rounds", fmt.Errorf("negative round count %d", sc.Rounds))
	}
	if sc.LocalEpochs < 0 {
		return fieldErr("local_epochs", fmt.Errorf("negative epoch count %d", sc.LocalEpochs))
	}
	if sc.Workers < 0 {
		return fieldErr("workers", fmt.Errorf("negative worker count %d", sc.Workers))
	}
	if sc.ClientFraction < 0 || sc.ClientFraction > 1 {
		return fieldErr("client_fraction", fmt.Errorf("%g outside [0, 1]", sc.ClientFraction))
	}
	if sc.DropoutProb < 0 || sc.DropoutProb > 1 {
		return fieldErr("dropout_prob", fmt.Errorf("%g outside [0, 1]", sc.DropoutProb))
	}
	if sc.Protocol == "gossip" {
		fedOnly := []struct {
			field string
			set   bool
		}{
			{"client_fraction", sc.ClientFraction != 0},
			{"dropout_prob", sc.DropoutProb != 0},
			{"aggregator", sc.Aggregator != ""},
			{"trim_fraction", sc.TrimFraction != 0},
			{"clip_norm", sc.ClipNorm != 0},
			{"quorum", sc.Quorum != 0},
			{"straggler_deadline", sc.StragglerDeadline != ""},
		}
		for _, f := range fedOnly {
			if f.set {
				return fieldErr(f.field, fmt.Errorf("only meaningful with protocol fed"))
			}
		}
	}
	if !transport.Known(sc.Transport) {
		return fieldErr("transport", fmt.Errorf("unknown transport %q (have %s)", sc.Transport, strings.Join(transport.Names(), ", ")))
	}
	if _, err := param.ParseCompression(sc.Compression); err != nil {
		return fieldErr("compression", err)
	}
	if sc.Faults != "" {
		if _, err := transport.ParseFaultPlan(sc.Faults); err != nil {
			return fieldErr("faults", err)
		}
	}
	if sc.Retry != "" {
		if _, err := transport.ParseRetryPolicy(sc.Retry); err != nil {
			return fieldErr("retry", err)
		}
	}
	if sc.Churn != "" {
		if _, err := transport.ParseChurnPlan(sc.Churn); err != nil {
			return fieldErr("churn", err)
		}
	}
	if sc.Byzantine != "" {
		if _, err := attack.ParseByzantine(sc.Byzantine); err != nil {
			return fieldErr("byzantine", err)
		}
	}
	if _, err := fed.ParseAggregator(sc.Aggregator); err != nil {
		return fieldErr("aggregator", err)
	}
	if sc.TrimFraction < 0 || sc.TrimFraction >= 0.5 {
		return fieldErr("trim_fraction", fmt.Errorf("%g outside [0, 0.5)", sc.TrimFraction))
	}
	if sc.ClipNorm < 0 {
		return fieldErr("clip_norm", fmt.Errorf("negative bound %g", sc.ClipNorm))
	}
	if agg, _ := fed.ParseAggregator(sc.Aggregator); agg == fed.AggNormClip && sc.ClipNorm == 0 {
		return fieldErr("clip_norm", fmt.Errorf("required with aggregator norm-clip"))
	}
	if sc.Quorum < 0 || sc.Quorum > 1 {
		return fieldErr("quorum", fmt.Errorf("%g outside [0, 1]", sc.Quorum))
	}
	if sc.StragglerDeadline != "" {
		d, err := time.ParseDuration(sc.StragglerDeadline)
		if err != nil {
			return fieldErr("straggler_deadline", err)
		}
		if d < 0 {
			return fieldErr("straggler_deadline", fmt.Errorf("negative deadline %v", d))
		}
	}
	if sc.Dataset != "powerlaw" {
		powerlawOnly := []struct {
			field string
			set   bool
		}{
			{"users", sc.Users != 0},
			{"items", sc.Items != 0},
			{"zipf", sc.Zipf != 0},
			{"communities", sc.Communities != 0},
			{"mean_items", sc.MeanItems != 0},
		}
		for _, f := range powerlawOnly {
			if f.set {
				return fieldErr(f.field, fmt.Errorf("only meaningful with dataset powerlaw"))
			}
		}
		return nil
	}
	if sc.Users < 2 {
		return fieldErr("users", fmt.Errorf("powerlaw needs at least 2 users, got %d", sc.Users))
	}
	if sc.Items < 2 {
		return fieldErr("items", fmt.Errorf("powerlaw needs at least 2 items, got %d", sc.Items))
	}
	if sc.Zipf < 0 {
		return fieldErr("zipf", fmt.Errorf("negative exponent %g", sc.Zipf))
	}
	if sc.Communities < 0 || sc.Communities > sc.Users {
		return fieldErr("communities", fmt.Errorf("%d outside [0, users]", sc.Communities))
	}
	if sc.MeanItems < 0 {
		return fieldErr("mean_items", fmt.Errorf("negative history size %d", sc.MeanItems))
	}
	return nil
}

// Spec resolves the scenario's sizing and resilience knobs into the
// runner Spec (BenchSpec defaults, PaperSpec with paper=true).
func (sc Scenario) Spec() (Spec, error) {
	if err := sc.Validate(); err != nil {
		return Spec{}, err
	}
	spec := BenchSpec()
	if sc.Paper {
		spec = PaperSpec()
	}
	if sc.Rounds > 0 {
		spec.Rounds = sc.Rounds
		spec.GLRounds = sc.Rounds
	}
	if sc.LocalEpochs > 0 {
		spec.LocalEpochs = sc.LocalEpochs
	}
	if sc.Workers > 0 {
		spec.Workers = sc.Workers
	}
	if sc.Seed != 0 {
		spec.Seed = sc.Seed
	}
	spec.Transport = sc.Transport
	spec.TransportAddr = sc.TransportAddr
	spec.Compression, _ = param.ParseCompression(sc.Compression)
	if sc.Faults != "" {
		plan, err := transport.ParseFaultPlan(sc.Faults)
		if err != nil {
			return Spec{}, fieldErr("faults", err)
		}
		spec.FaultPlan = &plan
	}
	if sc.Retry != "" {
		policy, err := transport.ParseRetryPolicy(sc.Retry)
		if err != nil {
			return Spec{}, fieldErr("retry", err)
		}
		spec.Retry = &policy
	}
	if sc.Churn != "" {
		plan, err := transport.ParseChurnPlan(sc.Churn)
		if err != nil {
			return Spec{}, fieldErr("churn", err)
		}
		spec.ChurnPlan = &plan
	}
	if sc.Byzantine != "" {
		byz, err := attack.ParseByzantine(sc.Byzantine)
		if err != nil {
			return Spec{}, fieldErr("byzantine", err)
		}
		spec.Byzantine = &byz
	}
	spec.Aggregator, _ = fed.ParseAggregator(sc.Aggregator)
	spec.TrimFraction = sc.TrimFraction
	spec.ClipNorm = sc.ClipNorm
	spec.Quorum = sc.Quorum
	if sc.StragglerDeadline != "" {
		d, err := time.ParseDuration(sc.StragglerDeadline)
		if err != nil {
			return Spec{}, fieldErr("straggler_deadline", err)
		}
		spec.StragglerDeadline = d
	}
	return spec, nil
}

// makeDataset builds the scenario's dataset: a named workload at the
// spec scale, or the power-law synthetic population.
func (sc Scenario) makeDataset(spec Spec) (*dataset.Dataset, error) {
	if sc.Dataset != "powerlaw" {
		return MakeDataset(sc.Dataset, spec)
	}
	communities := sc.Communities
	if communities == 0 {
		communities = sc.Users / 1000
		if communities < 2 {
			communities = 2
		}
	}
	mean := sc.MeanItems
	if mean == 0 {
		mean = 30
	}
	zipf := sc.Zipf
	if zipf == 0 {
		zipf = 1.1
	}
	return dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name:             "powerlaw",
		NumUsers:         sc.Users,
		NumItems:         sc.Items,
		NumCommunities:   communities,
		MeanItemsPerUser: mean,
		MinItemsPerUser:  2,
		Affinity:         0.85,
		ZipfExponent:     zipf,
		Seed:             spec.Seed,
	})
}

// RunScenario executes one declarative scenario end to end and
// returns the run's attack, utility, traffic and resilience outcome.
// Everything in the scenario is deterministic, so two executions of
// the same JSON produce byte-identical results on every backend and
// worker count.
func RunScenario(sc Scenario) (RunResult, error) {
	spec, err := sc.Spec()
	if err != nil {
		return RunResult{}, err
	}
	return RunScenarioWith(sc, spec)
}

// RunScenarioWith executes the scenario against an already-resolved
// spec, letting callers decorate the spec with run-scoped observers
// (Spec.Trace, Spec.Metrics — this is how `ciabench -trace` and
// `-metrics-addr` attach to a scenario run) before handing it back.
// The spec must come from sc.Spec(); only the observability fields are
// meant to differ.
func RunScenarioWith(sc Scenario, spec Spec) (RunResult, error) {
	d, err := sc.makeDataset(spec)
	if err != nil {
		return RunResult{}, err
	}
	SplitFor(sc.Family, d)
	policy, err := parseDefense(sc.Defense)
	if err != nil {
		return RunResult{}, fieldErr("defense", err)
	}
	res := RunResult{}
	if sc.Protocol == "gossip" {
		variant, verr := parseVariant(sc.Variant)
		if verr != nil {
			return RunResult{}, fieldErr("variant", verr)
		}
		res, err = RunGLCIA(GLOpts{
			Data: d, Family: sc.Family, Policy: policy, Variant: variant,
			Spec: spec, Utility: utilityFor(sc.Family),
		})
	} else {
		res, err = RunFLCIA(FLOpts{
			Data: d, Family: sc.Family, Policy: policy,
			Spec: spec, Utility: utilityFor(sc.Family),
			ClientFraction: sc.ClientFraction,
			DropoutProb:    sc.DropoutProb,
		})
	}
	if err != nil {
		return res, err
	}
	if werr := sc.writeMetricsDump(res); werr != nil {
		return res, werr
	}
	return res, nil
}

// writeMetricsDump writes the run's end-of-run registry snapshot as
// JSON to sc.MetricsOut (no-op when the field is empty). The dump is
// write-only observability output: nothing read back, nothing fed
// into round state.
func (sc Scenario) writeMetricsDump(res RunResult) error {
	if sc.MetricsOut == "" {
		return nil
	}
	f, err := os.Create(sc.MetricsOut)
	if err != nil {
		return fmt.Errorf("scenario: metrics_out: %v", err)
	}
	if err := res.Metrics.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("scenario: metrics_out: %v", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("scenario: metrics_out: %v", err)
	}
	return nil
}

// RenderScenario formats one scenario run like the experiment tables.
func RenderScenario(sc Scenario, res RunResult) string {
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	rows := []AttackRow{{
		Dataset: sc.Dataset, Model: sc.Family, Setting: sc.Protocol,
		Result:    res.Attack,
		Transport: res.TransportName, Traffic: res.Traffic,
		Resilience: res.Resilience, Metrics: res.Metrics,
	}}
	out := RenderRows("Scenario: "+name, rows)
	if u := res.BestUtility(); u > 0 {
		out += fmt.Sprintf("best utility %.3f over %d rounds\n", u, len(res.Utility))
	}
	return out
}

// ChurnByzScenario is the robustness acceptance scenario: an FL run
// with heavy deterministic churn (≥20% round-over-round membership
// turnover), a 10% sign-flip Byzantine population and trimmed-mean
// aggregation. It completes, learns and hashes identically across
// inproc/wire/socket × worker counts (see the resilience golden
// tests).
func ChurnByzScenario() Scenario {
	return Scenario{
		Name:      "churn-byz",
		Protocol:  "fed",
		Dataset:   "movielens",
		Family:    "gmf",
		Rounds:    6,
		Seed:      7,
		Churn:     "seed=5,initial=0.8,leave=0.25,join=0.5,stale-bound=2",
		Byzantine: "kind=sign-flip,frac=0.1,seed=1",

		Aggregator:   "trimmed-mean",
		TrimFraction: 0.2,
	}
}

// MillionUserScenario is the power-law scale preset: a million-user,
// hundred-thousand-item synthetic population with Zipf-skewed
// popularity, 0.1% client sampling per round, 8-bit sparse+quantized
// wire compression and a robust (median) server. It exists to size
// the system honestly — running it takes hours and tens of GB; the
// test suite only validates and round-trips it.
func MillionUserScenario() Scenario {
	return Scenario{
		Name:           "million-user",
		Protocol:       "fed",
		Dataset:        "powerlaw",
		Family:         "gmf",
		Rounds:         20,
		Seed:           1,
		ClientFraction: 0.001,
		Compression:    "8bit",
		Aggregator:     "median",
		Churn:          "seed=1,leave=0.05,join=0.2,stale-bound=5",
		Users:          1_000_000,
		Items:          100_000,
		Zipf:           1.1,
		Communities:    1000,
		MeanItems:      25,
	}
}

// ScenarioPresets lists the named scenarios `ciabench -scenario` can
// run without a file.
func ScenarioPresets() []Scenario {
	return []Scenario{ChurnByzScenario(), MillionUserScenario()}
}

// ScenarioPreset returns the named preset, if any.
func ScenarioPreset(name string) (Scenario, bool) {
	for _, sc := range ScenarioPresets() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
