package experiments

import (
	"fmt"
	"strings"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

// This file implements the ablations called out in DESIGN.md §6 plus
// the Secure-Aggregation extension the paper discusses but does not
// evaluate (§IX). None of these correspond to a numbered table or
// figure; they probe *why* the headline results hold.

// SecureAggRow is one line of the Secure-Aggregation extension study.
type SecureAggRow struct {
	Setting string
	MaxAAC  float64
	Random  float64
}

// RunSecureAggAblation studies the §IX discussion: Secure Aggregation
// (SA) hides individual uploads, so the server only sees the round
// aggregate. The study evaluates three FL configurations on GMF /
// MovieLens-like data:
//
//  1. no SA — the paper's baseline threat model;
//  2. SA with full sharing — the adversary can no longer compare
//     individual models, but the *aggregate still embeds every user's
//     embedding row* (only its owner ever trains it), so scoring each
//     row of the aggregate remains a potent community attack: SA alone
//     does NOT fix FedRec leakage;
//  3. SA + Share-less — user embeddings never leave devices, the
//     aggregate carries no per-user signal, and the attack finally
//     collapses towards random.
func RunSecureAggAblation(spec Spec) ([]SecureAggRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		return nil, err
	}
	k := spec.K(d.NumUsers)
	truths := evalx.TrueCommunities(d, k)
	random := evalx.RandomBound(k, d.NumUsers)
	var rows []SecureAggRow

	// (1) Baseline: ordinary server-side CIA.
	base, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: spec})
	if err != nil {
		return nil, err
	}
	rows = append(rows, SecureAggRow{Setting: "no SA (baseline CIA)", MaxAAC: base.Attack.MaxAAC, Random: random})

	// (2, 3) SA: the adversary only sees the aggregated global model.
	for _, withShareLess := range []bool{false, true} {
		var policy defense.Policy = defense.FullSharing{}
		setting := "SA, full sharing (row-scoring attack)"
		if withShareLess {
			policy = defense.ShareLess{Tau: DefaultShareLessTau}
			setting = "SA + share-less"
		}
		rec := evalx.NewRecorder()
		scratch := factory(0)
		tr, err := newTransport(spec)
		if err != nil {
			return nil, err
		}
		defer tr.Close()
		sim, err := fed.New(fed.Config{
			Dataset:   d,
			Factory:   factory,
			Policy:    policy,
			Rounds:    spec.Rounds,
			Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
			Workers:   spec.Workers,
			Transport: tr,
			Seed:      spec.Seed,
			OnRound: func(round int, s *fed.Simulation) {
				// The adversary's whole view is the aggregate. Score
				// every user's row of the global model against every
				// target; under Share-less those rows never learn.
				scratch.Params().CopyFrom(s.Global().Params())
				accs := make([]float64, d.NumUsers)
				scores := make([]float64, d.NumUsers)
				for a := 0; a < d.NumUsers; a++ {
					for u := 0; u < d.NumUsers; u++ {
						scores[u] = scratch.Relevance(u, d.Train[a])
					}
					pred := mathx.TopK(scores, k)
					accs[a] = evalx.Accuracy(pred, truths[a])
				}
				rec.Record(accs)
			},
		})
		if err != nil {
			return nil, err
		}
		sim.Run()
		aac, _ := rec.MaxAAC()
		rows = append(rows, SecureAggRow{Setting: setting, MaxAAC: aac, Random: random})
	}
	return rows, nil
}

// RenderSecureAggAblation formats the SA study.
func RenderSecureAggAblation(rows []SecureAggRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: Secure Aggregation (extension of §IX; FL, GMF, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s MaxAAC=%5.1f%%  random=%4.1f%%\n", r.Setting, 100*r.MaxAAC, 100*r.Random)
	}
	return b.String()
}

// StaticGraphRow is one line of the graph-dynamics ablation.
type StaticGraphRow struct {
	Setting    string
	MaxAAC     float64
	UpperBound float64
	Random     float64
}

// RunStaticGraphAblation probes the related-work claim (§X) that
// gossip's inherent privacy "stems primarily from its randomness and
// dynamics": freezing the communication graph pins each adversary to a
// fixed neighbour set, capping its observation bound and therefore its
// accuracy, while the dynamic graph steadily widens coverage.
func RunStaticGraphAblation(spec Spec) ([]StaticGraphRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	var rows []StaticGraphRow
	for _, static := range []bool{false, true} {
		res, err := RunGLCIA(GLOpts{
			Data: d, Family: "gmf", Spec: spec,
			Variant: gossip.RandGossip, StaticGraph: static,
		})
		if err != nil {
			return nil, err
		}
		setting := "dynamic graph (Exp(0.1) view refresh)"
		if static {
			setting = "static graph (frozen views)"
		}
		rows = append(rows, StaticGraphRow{
			Setting:    setting,
			MaxAAC:     res.Attack.MaxAAC,
			UpperBound: res.Attack.UpperBound,
			Random:     res.Attack.RandomBound,
		})
	}
	return rows, nil
}

// RenderStaticGraphAblation formats the graph-dynamics study.
func RenderStaticGraphAblation(rows []StaticGraphRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: gossip graph dynamics (Rand-Gossip, GMF, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s MaxAAC=%5.1f%%  upper=%5.1f%%  random=%4.1f%%\n",
			r.Setting, 100*r.MaxAAC, 100*r.UpperBound, 100*r.Random)
	}
	return b.String()
}

// FictiveRow is one line of the Share-less-adaptation ablation.
type FictiveRow struct {
	Setting string
	MaxAAC  float64
	Random  float64
}

// RunFictiveAblation ablates the §IV-C fictive-user embedding: under
// Share-less the adversary receives partial models and needs *some*
// user vector to score them. The fitted e_A is compared against a
// zero vector (no reference basis at all). The fitted embedding should
// preserve substantially more attack accuracy.
func RunFictiveAblation(spec Spec) ([]FictiveRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		return nil, err
	}
	k := spec.K(d.NumUsers)
	targets := d.Train
	truths := evalx.TrueCommunities(d, k)
	random := evalx.RandomBound(k, d.NumUsers)

	run := func(zeroVector bool) (float64, error) {
		ev := attack.NewShareLessEval(factory(0), targets)
		cia := attack.New(attack.Config{Beta: spec.Beta, K: k, NumUsers: d.NumUsers, Eval: ev})
		obs := &fictiveAblationObserver{
			cia: cia, ev: ev, truths: truths,
			rec:        evalx.NewRecorder(),
			zeroVector: zeroVector,
			dim:        spec.Dim,
		}
		tr, err := newTransport(spec)
		if err != nil {
			return 0, err
		}
		defer tr.Close()
		sim, err := fed.New(fed.Config{
			Dataset:   d,
			Factory:   factory,
			Policy:    defense.ShareLess{Tau: DefaultShareLessTau},
			Rounds:    spec.Rounds,
			Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
			Workers:   spec.Workers,
			Transport: tr,
			Observer:  obs,
			Seed:      spec.Seed,
		})
		if err != nil {
			return 0, err
		}
		obs.sim = sim
		sim.Run()
		aac, _ := obs.rec.MaxAAC()
		return aac, nil
	}

	fitted, err := run(false)
	if err != nil {
		return nil, err
	}
	zero, err := run(true)
	if err != nil {
		return nil, err
	}
	return []FictiveRow{
		{Setting: "fitted fictive user e_A (§IV-C)", MaxAAC: fitted, Random: random},
		{Setting: "zero user vector (no reference)", MaxAAC: zero, Random: random},
	}, nil
}

type fictiveAblationObserver struct {
	cia        *attack.CIA
	ev         *attack.RecommenderEval
	sim        *fed.Simulation
	truths     []map[int]struct{}
	rec        *evalx.Recorder
	zeroVector bool
	dim        int
}

func (o *fictiveAblationObserver) OnUpload(msg fed.Message) { o.cia.Observe(msg.From, msg.Params) }

func (o *fictiveAblationObserver) OnRoundEnd(round int) {
	if o.zeroVector {
		o.ev.SetFictive(make([]float64, o.dim))
	} else {
		o.ev.RefreshFictive(o.sim.Global().Params(), 5, mathx.NewRand(uint64(round)^0xf17))
	}
	o.cia.EndRound()
	o.rec.Record(o.cia.Accuracies(o.truths))
}

// RenderFictiveAblation formats the fictive-user study.
func RenderFictiveAblation(rows []FictiveRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: Share-less CIA reference basis (FL, GMF, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s MaxAAC=%5.1f%%  random=%4.1f%%\n", r.Setting, 100*r.MaxAAC, 100*r.Random)
	}
	return b.String()
}

// RelevanceRow is one line of the PRME relevance-metric ablation.
type RelevanceRow struct {
	Setting string
	MaxAAC  float64
	Random  float64
}

// RunRelevanceAblation ablates DESIGN.md §6 decision 2: PRME's
// cross-model relevance metric. The raw -‖P_u − L_i‖² score carries a
// target-independent ‖P_u‖² term that varies per model and swamps the
// community signal; the norm-adjusted 2·P_u·L_i − ‖L_i‖² removes it.
func RunRelevanceAblation(spec Spec) ([]RelevanceRow, error) {
	d, err := MakeDataset("foursquare", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("prme", d)
	random := evalx.RandomBound(spec.K(d.NumUsers), d.NumUsers)
	var rows []RelevanceRow
	for _, raw := range []bool{false, true} {
		factory := func(seed uint64) model.Recommender {
			m := model.NewPRME(d.NumUsers, d.NumItems, spec.Dim, seed)
			m.SetRawRelevance(raw)
			return m
		}
		res, err := runFLCIAWithFactory(d, factory, spec)
		if err != nil {
			return nil, err
		}
		setting := "norm-adjusted relevance (default)"
		if raw {
			setting = "raw squared-distance relevance"
		}
		rows = append(rows, RelevanceRow{Setting: setting, MaxAAC: res, Random: random})
	}
	return rows, nil
}

// runFLCIAWithFactory is a trimmed FL+CIA loop for factories that are
// not expressible as a family name (ablation-modified models).
func runFLCIAWithFactory(d *dataset.Dataset, factory model.Factory, spec Spec) (float64, error) {
	k := spec.K(d.NumUsers)
	targets := d.Train
	truths := evalx.TrueCommunities(d, k)
	ev := attack.NewRecommenderEval(factory(0), targets)
	cia := attack.New(attack.Config{Beta: spec.Beta, K: k, NumUsers: d.NumUsers, Eval: ev})
	rec := evalx.NewRecorder()
	tr, err := newTransport(spec)
	if err != nil {
		return 0, err
	}
	defer tr.Close()
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   factory,
		Rounds:    spec.Rounds,
		Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers:   spec.Workers,
		Transport: tr,
		Observer:  &simpleFLObserver{cia: cia, truths: truths, rec: rec},
		Seed:      spec.Seed,
	})
	if err != nil {
		return 0, err
	}
	sim.Run()
	aac, _ := rec.MaxAAC()
	return aac, nil
}

type simpleFLObserver struct {
	cia    *attack.CIA
	truths []map[int]struct{}
	rec    *evalx.Recorder
}

func (o *simpleFLObserver) OnUpload(msg fed.Message) { o.cia.Observe(msg.From, msg.Params) }
func (o *simpleFLObserver) OnRoundEnd(int) {
	o.cia.EndRound()
	o.rec.Record(o.cia.Accuracies(o.truths))
}

// RenderRelevanceAblation formats the PRME relevance study.
func RenderRelevanceAblation(rows []RelevanceRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: PRME cross-model relevance metric (FL, foursquare-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s MaxAAC=%5.1f%%  random=%4.1f%%\n", r.Setting, 100*r.MaxAAC, 100*r.Random)
	}
	return b.String()
}

// ParticipationRow is one line of the participation/coverage study.
type ParticipationRow struct {
	Setting    string
	MaxAAC     float64
	UpperBound float64
	Random     float64
}

// RunParticipationAblation studies the FL threat model's sensitivity
// to the server's view: the paper assumes the server "may contact all
// or part of the users each round". Sweeping the per-round client
// sampling fraction (and a crash-failure dropout arm) shows that CIA
// degrades gracefully — over enough rounds the server still accumulates
// full coverage, and per-round sparsity mostly slows the attack rather
// than stopping it.
func RunParticipationAblation(spec Spec) ([]ParticipationRow, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	var rows []ParticipationRow
	configs := []struct {
		label    string
		fraction float64
		dropout  float64
	}{
		{"full participation", 0, 0},
		{"50% sampled per round", 0.5, 0},
		{"20% sampled per round", 0.2, 0},
		{"full, 30% upload dropout", 0, 0.3},
	}
	for _, c := range configs {
		res, err := RunFLCIA(FLOpts{
			Data: d, Family: "gmf", Spec: spec,
			ClientFraction: c.fraction, DropoutProb: c.dropout,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParticipationRow{
			Setting:    c.label,
			MaxAAC:     res.Attack.MaxAAC,
			UpperBound: res.Attack.UpperBound,
			Random:     res.Attack.RandomBound,
		})
	}
	return rows, nil
}

// RenderParticipationAblation formats the participation study.
func RenderParticipationAblation(rows []ParticipationRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: FL participation & failures (GMF, MovieLens-like) ==\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s MaxAAC=%5.1f%%  upper=%5.1f%%  random=%4.1f%%\n",
			r.Setting, 100*r.MaxAAC, 100*r.UpperBound, 100*r.Random)
	}
	return b.String()
}
