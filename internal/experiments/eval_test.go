package experiments

import (
	"testing"

	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/model"
)

// Regression for the shared-evalRng bug at the harness level: the
// per-round utility curve of a full attack run (CIA observer, attack
// accuracy evaluation, summary metrics) must be identical to the curve
// of a bare simulation with no adversary at all. Utility evaluation
// draws from per-(seed, round, user) streams, so no other consumer —
// attack scoring included — can shift its negative samples.
func TestUtilityCurveIndependentOfAttackEval(t *testing.T) {
	spec := BenchSpec()
	spec.Rounds = 5

	d, err := MakeDataset("movielens", spec)
	if err != nil {
		t.Fatal(err)
	}
	SplitFor("gmf", d)

	withAttack, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: spec, Utility: UtilityHR})
	if err != nil {
		t.Fatal(err)
	}
	if len(withAttack.Utility) != spec.Rounds {
		t.Fatalf("utility curve has %d rounds, want %d", len(withAttack.Utility), spec.Rounds)
	}

	// The same federation, no observer: exactly the fed.Config RunFLCIA
	// builds, minus the adversary.
	factory, err := MakeFactory("gmf", d, spec)
	if err != nil {
		t.Fatal(err)
	}
	var bare []float64
	sim, err := fed.New(fed.Config{
		Dataset: d,
		Factory: factory,
		Rounds:  spec.Rounds,
		Train:   model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers: spec.Workers,
		OnRound: func(round int, s *fed.Simulation) {
			bare = append(bare, s.UtilityHR(spec.HRK, spec.NumNeg))
		},
		Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	for r := range bare {
		if withAttack.Utility[r] != bare[r] {
			t.Fatalf("round %d utility differs with attack evaluation on: %v != %v",
				r, withAttack.Utility[r], bare[r])
		}
	}
}
