package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/gossip"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

// TradeoffPoint is one bar group of Figures 3 and 4: a protocol ×
// policy cell with its privacy (Max AAC) and utility values.
type TradeoffPoint struct {
	Dataset  string
	Protocol string // "FL" | "rand-gossip" | "pers-gossip"
	Policy   string // "full" | "share-less"
	MaxAAC   float64
	Utility  float64 // HR@K (Fig 3) or F1@K (Fig 4)
	Random   float64
}

// RunFigure3 reproduces Figure 3: the attack-accuracy / HR@K trade-off
// of full sharing vs Share-less on GMF, for FL, Rand-Gossip and
// Pers-Gossip across the three datasets.
func RunFigure3(spec Spec) ([]TradeoffPoint, error) {
	return runTradeoff(spec, "gmf", DatasetNames())
}

// RunFigure4 reproduces Figure 4: the same trade-off on PRME with the
// F1 score, for the two POI datasets.
func RunFigure4(spec Spec) ([]TradeoffPoint, error) {
	return runTradeoff(spec, "prme", []string{"foursquare", "gowalla"})
}

func runTradeoff(spec Spec, family string, datasets []string) ([]TradeoffPoint, error) {
	util := utilityFor(family)
	policies := []defense.Policy{defense.FullSharing{}, defense.ShareLess{Tau: DefaultShareLessTau}}
	var points []TradeoffPoint
	for _, ds := range datasets {
		for _, pol := range policies {
			d, err := MakeDataset(ds, spec)
			if err != nil {
				return nil, err
			}
			SplitFor(family, d)

			fl, err := RunFLCIA(FLOpts{Data: d, Family: family, Spec: spec, Policy: pol, Utility: util})
			if err != nil {
				return nil, err
			}
			points = append(points, TradeoffPoint{
				Dataset: ds, Protocol: "FL", Policy: pol.Name(),
				MaxAAC: fl.Attack.MaxAAC, Utility: fl.BestUtility(), Random: fl.Attack.RandomBound,
			})
			for _, variant := range []gossip.Variant{gossip.RandGossip, gossip.PersGossip} {
				gl, err := RunGLCIA(GLOpts{Data: d, Family: family, Spec: spec, Policy: pol,
					Variant: variant, Utility: util})
				if err != nil {
					return nil, err
				}
				points = append(points, TradeoffPoint{
					Dataset: ds, Protocol: variant.String(), Policy: pol.Name(),
					MaxAAC: gl.Attack.MaxAAC, Utility: gl.BestUtility(), Random: gl.Attack.RandomBound,
				})
			}
		}
	}
	return points, nil
}

// RenderTradeoff formats trade-off points grouped by dataset, one
// protocol × policy per line, mirroring the figures' bar groups.
func RenderTradeoff(title, utilityName string, points []TradeoffPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Dataset != points[j].Dataset {
			return points[i].Dataset < points[j].Dataset
		}
		if points[i].Protocol != points[j].Protocol {
			return points[i].Protocol < points[j].Protocol
		}
		return points[i].Policy < points[j].Policy
	})
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %-12s %-11s MaxAAC=%5.1f%%  %s=%5.3f  random=%4.1f%%\n",
			p.Dataset, p.Protocol, p.Policy, 100*p.MaxAAC, utilityName, p.Utility, 100*p.Random)
	}
	return b.String()
}

// DPPoint is one ε setting of Figure 5.
type DPPoint struct {
	Protocol string
	Epsilon  float64 // +Inf = no noise
	Noise    float64 // calibrated noise multiplier ι
	MaxAAC   float64
	Utility  float64
	Random   float64
}

// Figure5Epsilons are the paper's privacy budgets (∞, 1000, 100, 10, 1).
var Figure5Epsilons = []float64{math.Inf(1), 1000, 100, 10, 1}

// RunFigure5 reproduces Figure 5: the DP-SGD privacy/utility trade-off
// on the MovieLens-like dataset with GMF, in FL and Rand-Gossip, with
// δ = 1e-6 and clipping C = 2 as in the paper.
func RunFigure5(spec Spec) ([]DPPoint, error) {
	d, err := MakeDataset("movielens", spec)
	if err != nil {
		return nil, err
	}
	SplitFor("gmf", d)
	var points []DPPoint
	for _, eps := range Figure5Epsilons {
		flAcct := defense.Accountant{Delta: 1e-6, Rounds: spec.Rounds}
		iota := flAcct.Calibrate(eps)
		policy := defense.DPSGD{Clip: 2, NoiseMultiplier: iota}
		fl, err := RunFLCIA(FLOpts{Data: d, Family: "gmf", Spec: spec, Policy: policy, Utility: UtilityHR})
		if err != nil {
			return nil, err
		}
		points = append(points, DPPoint{
			Protocol: "FL", Epsilon: eps, Noise: iota,
			MaxAAC: fl.Attack.MaxAAC, Utility: fl.BestUtility(), Random: fl.Attack.RandomBound,
		})

		glRounds := spec.GLRounds
		if glRounds == 0 {
			glRounds = spec.Rounds
		}
		glAcct := defense.Accountant{Delta: 1e-6, Rounds: glRounds}
		iotaGL := glAcct.Calibrate(eps)
		gl, err := RunGLCIA(GLOpts{Data: d, Family: "gmf", Spec: spec,
			Policy: defense.DPSGD{Clip: 2, NoiseMultiplier: iotaGL}, Utility: UtilityHR})
		if err != nil {
			return nil, err
		}
		points = append(points, DPPoint{
			Protocol: "rand-gossip", Epsilon: eps, Noise: iotaGL,
			MaxAAC: gl.Attack.MaxAAC, Utility: gl.BestUtility(), Random: gl.Attack.RandomBound,
		})
	}
	return points, nil
}

// RenderFigure5 formats the DP sweep like Figure 5's two panels.
func RenderFigure5(points []DPPoint) string {
	var b strings.Builder
	b.WriteString("== Figure 5: DP-SGD privacy/utility (MovieLens-like, GMF, delta=1e-6, C=2) ==\n")
	for _, p := range points {
		eps := "inf"
		if !math.IsInf(p.Epsilon, 1) {
			eps = fmt.Sprintf("%g", p.Epsilon)
		}
		fmt.Fprintf(&b, "%-12s eps=%-5s iota=%-8.4f MaxAAC=%5.1f%%  HR=%5.3f  random=%4.1f%%\n",
			p.Protocol, eps, p.Noise, 100*p.MaxAAC, p.Utility, 100*p.Random)
	}
	return b.String()
}

// HealthResult is the outcome of the Figure-1 motivating example.
type HealthResult struct {
	// CommunitySize is the number of users the adversary extracts.
	CommunitySize int
	// MemberHealthShare is the mean fraction of health-category items
	// in the inferred members' histories (paper: >= 68%).
	MemberHealthShare float64
	// GlobalHealthShare is the population baseline (paper: 6.7%).
	GlobalHealthShare float64
	// Members lists the inferred user ids.
	Members []int
}

// RunTargetedFL trains a federation and runs a server-side CIA with a
// single hand-crafted target item set, returning the inferred top-k
// community. This is the primitive behind the §II motivating example
// and the facade's targeted-attack API.
func RunTargetedFL(d *dataset.Dataset, family string, spec Spec, target []int, k int, policy defense.Policy) ([]int, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("experiments: empty target item set")
	}
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k must be positive")
	}
	factory, err := MakeFactory(family, d, spec)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = defense.FullSharing{}
	}
	shareLess := isShareLess(policy)
	var ev *attack.RecommenderEval
	if shareLess {
		ev = attack.NewShareLessEval(factory(0), [][]int{target})
	} else {
		ev = attack.NewRecommenderEval(factory(0), [][]int{target})
	}
	cia := attack.New(attack.Config{
		Beta: spec.Beta, K: k, NumUsers: d.NumUsers, Eval: ev,
	})
	obs := &targetedObserver{cia: cia, ev: ev, rng: mathx.NewRand(spec.Seed ^ 0x7a9), shareLess: shareLess}
	tr, err := newTransport(spec)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	sim, err := fed.New(fed.Config{
		Dataset:   d,
		Factory:   factory,
		Policy:    policy,
		Rounds:    spec.Rounds,
		Train:     model.TrainOptions{Epochs: spec.LocalEpochs},
		Workers:   spec.Workers,
		Transport: tr,
		Observer:  obs,
		Seed:      spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	obs.sim = sim
	sim.Run()
	return cia.Predict(0), nil
}

type targetedObserver struct {
	cia       *attack.CIA
	ev        *attack.RecommenderEval
	sim       *fed.Simulation
	rng       *rand.Rand
	shareLess bool
}

func (o *targetedObserver) OnUpload(msg fed.Message) { o.cia.Observe(msg.From, msg.Params) }

func (o *targetedObserver) OnRoundEnd(int) {
	if o.shareLess {
		o.ev.RefreshFictive(o.sim.Global().Params(), 5, o.rng)
	}
	o.cia.EndRound()
}

// RunFigure1 reproduces the §II motivating example: a server-side CIA
// on a Foursquare-like federation, with V_target hand-crafted from the
// public "Health & Medicine" POI category, extracting a small
// community of health-vulnerable users.
func RunFigure1(spec Spec) (HealthResult, error) {
	d, err := MakeDataset("foursquare", spec)
	if err != nil {
		return HealthResult{}, err
	}
	SplitFor("gmf", d)
	healthCat := d.CategoryID(dataset.HealthCategory)
	if healthCat < 0 {
		return HealthResult{}, fmt.Errorf("experiments: dataset has no health category")
	}
	// The adversary crafts V_target from the public catalogue: the
	// most popular health POIs.
	healthItems := d.ItemsInCategory(healthCat)
	counts := make(map[int]int)
	for u := 0; u < d.NumUsers; u++ {
		for _, it := range d.Train[u] {
			counts[it]++
		}
	}
	sort.Slice(healthItems, func(a, b int) bool { return counts[healthItems[a]] > counts[healthItems[b]] })
	targetSize := 40
	if targetSize > len(healthItems) {
		targetSize = len(healthItems)
	}
	target := healthItems[:targetSize]

	const communitySize = 3 // the paper's 3-community of users
	members, err := RunTargetedFL(d, "gmf", spec, target, communitySize, nil)
	if err != nil {
		return HealthResult{}, err
	}

	var share float64
	for _, u := range members {
		share += d.CategoryShare(u, healthCat)
	}
	if len(members) > 0 {
		share /= float64(len(members))
	}
	return HealthResult{
		CommunitySize:     len(members),
		MemberHealthShare: share,
		GlobalHealthShare: d.GlobalCategoryShare(healthCat),
		Members:           members,
	}, nil
}

// RenderFigure1 formats the motivating example outcome.
func RenderFigure1(res HealthResult) string {
	return fmt.Sprintf(
		"== Figure 1: health-vulnerable community (Foursquare-like, FL, GMF) ==\n"+
			"inferred %d-community %v\n"+
			"member health share %.1f%% vs population baseline %.1f%%\n",
		res.CommunitySize, res.Members,
		100*res.MemberHealthShare, 100*res.GlobalHealthShare)
}
