package experiments

import (
	"fmt"
	"strings"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/fed"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// CompressionRatioRow is one cell of the compression-ratio study:
// a quantization width × sparsification level, with the measured wire
// ratio and what the run cost in utility and leaked to each attack.
type CompressionRatioRow struct {
	// Bits is the wire quantization width (0: lossless dense codec).
	Bits int
	// Keep is the top-k sparsification kept fraction (1: full updates).
	Keep float64
	// Ratio is the measured dense-equivalent ÷ moved bytes on the wire.
	Ratio float64
	// Utility is the run's best HR@K.
	Utility float64
	// CIAMaxAAC, MIAMaxAAC and AIAMaxAAC are each attack's best
	// community accuracy on the same uploads; Random is the guessing
	// bound they all share.
	CIAMaxAAC float64
	MIAMaxAAC float64
	AIAMaxAAC float64
	Random    float64
}

// DefaultCompressionBits and DefaultCompressionKeeps are the study's
// default grid: the codec widths the wire supports × the
// sparsification levels of the top-k defense study.
var (
	DefaultCompressionBits  = []int{0, 16, 8}
	DefaultCompressionKeeps = []float64{1, 0.5, 0.1}
)

// RunCompressionRatio sweeps wire compression (bits) × top-k update
// sparsification (keeps) over the reference federation (GMF,
// MovieLens-like) and reports, per cell, the measured compression
// ratio next to utility and the leakage of all three attacks — CIA,
// the entropy-MIA proxy and the gradient-classifier AIA — on the same
// uploads. Nil grids select the defaults. The question the table
// answers: does shrinking the wire also shrink the leak, or is
// bandwidth saving privacy-neutral (the sparsify study's finding,
// now measured against the real codec and all three attacks)?
//
// Cells are independent and run concurrently on the table-cell pool;
// runs default to the "wire" transport so the ratio is measured on
// real encoded bytes even when the caller's spec leaves Transport
// empty.
func RunCompressionRatio(spec Spec, bits []int, keeps []float64) ([]CompressionRatioRow, error) {
	if bits == nil {
		bits = DefaultCompressionBits
	}
	if keeps == nil {
		keeps = DefaultCompressionKeeps
	}
	type cell struct {
		bits int
		keep float64
	}
	var cells []cell
	for _, b := range bits {
		for _, k := range keeps {
			cells = append(cells, cell{b, k})
		}
	}
	rows := make([]CompressionRatioRow, len(cells))
	err := forEachCell(len(cells), func(i int) error {
		row, err := runCompressionRatioCell(spec, cells[i].bits, cells[i].keep)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runCompressionRatioCell executes one bits × keep federation with all
// three attacks observing the same uploads. The AIA needs a trained
// global model for its shadow training, so it is fitted at the run's
// halfway round and observes the second half (the continuation
// pattern of RunAIAComparison, without a second simulation).
func runCompressionRatioCell(spec Spec, bits int, keep float64) (CompressionRatioRow, error) {
	s := spec
	s.Compression = param.Compression{Bits: bits}
	if s.Transport == "" {
		s.Transport = "wire"
	}
	d, err := MakeDataset("movielens", s)
	if err != nil {
		return CompressionRatioRow{}, err
	}
	SplitFor("gmf", d)
	factory, err := MakeFactory("gmf", d, s)
	if err != nil {
		return CompressionRatioRow{}, err
	}
	k := s.K(d.NumUsers)
	targets := d.Train
	truths := evalx.TrueCommunities(d, k)
	var policy defense.Policy
	if keep < 1 {
		policy = defense.TopKSparsify{Fraction: keep}
	}

	rng := mathx.NewRand(s.Seed ^ 0xc0a1)
	targetUser := rng.IntN(d.NumUsers)
	target := d.Train[targetUser]
	truth := evalx.TrueCommunity(d, target, k)

	obs := &ratioObserver{
		cia: attack.New(attack.Config{
			Beta: s.Beta, K: k, NumUsers: d.NumUsers,
			Eval: attack.NewRecommenderEval(factory(0), targets),
		}),
		mia:    attack.NewMIA(0.6, k, factory(0), targets, d),
		truths: truths,
		truth:  truth,
		ciaRec: evalx.NewRecorder(),
		miaRec: evalx.NewRecorder(),
	}
	tr, err := newTransport(s)
	if err != nil {
		return CompressionRatioRow{}, err
	}
	defer tr.Close()
	var utility []float64
	aiaRound := s.Rounds / 2
	sim, err := fed.New(fed.Config{
		Dataset:     d,
		Factory:     factory,
		Policy:      policy,
		Rounds:      s.Rounds,
		Train:       model.TrainOptions{Epochs: s.LocalEpochs},
		Workers:     s.Workers,
		Transport:   tr,
		Compression: s.Compression,
		Observer:    obs,
		OnRound: func(round int, fs *fed.Simulation) {
			utility = append(utility, fs.UtilityHR(s.HRK, s.NumNeg))
			if round == aiaRound && obs.aia == nil && obs.aiaErr == nil {
				// OnRound runs between rounds on the driving goroutine;
				// the next round's uploads (and so OnUpload calls) start
				// strictly after it returns.
				obs.aia, obs.aiaErr = attack.TrainAIA(fs.Global(), d, attack.AIAConfig{
					Target: target, K: k, Rand: rng,
				})
			}
		},
		Seed: s.Seed,
	})
	if err != nil {
		return CompressionRatioRow{}, err
	}
	sim.Run()
	if obs.aiaErr != nil {
		return CompressionRatioRow{}, obs.aiaErr
	}

	st := tr.Stats()
	raw := st.RawBytes + st.RawBroadcastBytes
	moved := st.Bytes + st.BroadcastBytes
	ratio := 1.0
	if moved > 0 && raw > 0 {
		ratio = float64(raw) / float64(moved)
	}
	ciaAAC, _ := obs.ciaRec.MaxAAC()
	miaAAC, _ := obs.miaRec.MaxAAC()
	return CompressionRatioRow{
		Bits:      bits,
		Keep:      keep,
		Ratio:     ratio,
		Utility:   mathx.Max(utility),
		CIAMaxAAC: ciaAAC,
		MIAMaxAAC: miaAAC,
		AIAMaxAAC: obs.bestAIA,
		Random:    evalx.RandomBound(k, d.NumUsers),
	}, nil
}

// ratioObserver feeds one federation's uploads to CIA, MIA and (once
// trained) AIA simultaneously.
type ratioObserver struct {
	cia    *attack.CIA
	mia    *attack.MIA
	aia    *attack.AIA
	aiaErr error

	truths  []map[int]struct{}
	truth   map[int]struct{}
	ciaRec  *evalx.Recorder
	miaRec  *evalx.Recorder
	bestAIA float64
}

func (o *ratioObserver) OnUpload(msg fed.Message) {
	o.cia.Observe(msg.From, msg.Params)
	o.mia.Observe(msg.From, msg.Params)
	if o.aia != nil {
		o.aia.Observe(msg.From, msg.Params)
	}
}

func (o *ratioObserver) OnRoundEnd(round int) {
	o.cia.EndRound()
	o.ciaRec.Record(o.cia.Accuracies(o.truths))
	o.miaRec.Record(o.mia.Accuracies(o.truths))
	if o.aia != nil {
		if acc := o.aia.Accuracy(o.truth); acc > o.bestAIA {
			o.bestAIA = acc
		}
	}
}

// RenderCompressionRatio formats the sweep, one line per cell.
func RenderCompressionRatio(rows []CompressionRatioRow) string {
	var b strings.Builder
	b.WriteString("== Extension: wire compression × sparsification vs utility and all three attacks (FL, GMF, MovieLens-like) ==\n")
	fmt.Fprintf(&b, "%-6s %-6s %7s %7s %7s %7s %7s %7s\n",
		"bits", "keep", "ratio", "HR", "CIA%", "MIA%", "AIA%", "rand%")
	for _, r := range rows {
		width := "off"
		if r.Bits != 0 {
			width = fmt.Sprintf("%dbit", r.Bits)
		}
		fmt.Fprintf(&b, "%-6s %-6s %6.1fx %7.3f %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			width, fmt.Sprintf("%.0f%%", 100*r.Keep), r.Ratio, r.Utility,
			100*r.CIAMaxAAC, 100*r.MIAMaxAAC, 100*r.AIAMaxAAC, 100*r.Random)
	}
	return b.String()
}
