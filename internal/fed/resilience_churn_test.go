package fed

import (
	"fmt"
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// churnTestPlan is lively enough to exercise leave, join and rejoin
// within a short run on the 30-user test dataset.
func churnTestPlan() transport.ChurnPlan {
	return transport.ChurnPlan{Seed: 5, InitialFraction: 0.8, LeaveProb: 0.25, JoinProb: 0.5, StaleBound: 2}
}

// TestResilienceChurnBackendWorkerEquivalence is the fed half of the
// churn determinism contract: a churn + Byzantine + robust-aggregation
// run is byte-identical across transport backends and worker counts,
// and its counters match on every combination.
func TestResilienceChurnBackendWorkerEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	plan := churnTestPlan()
	byz := attack.Byzantine{Kind: attack.ByzSignFlip, Fraction: 0.2, Scale: 1, Seed: 9}

	run := func(backend string, workers int) (*Simulation, *param.Set, []float64) {
		cfg := fedConfig(d)
		cfg.Rounds = 6
		cfg.Workers = workers
		tr, err := transport.New(backend)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		cfg.Transport = tr
		cfg.ChurnPlan = &plan
		cfg.Byzantine = &byz
		cfg.Aggregator = AggTrimmedMean
		cfg.TrimFraction = 0.2
		var hr []float64
		cfg.OnRound = func(round int, s *Simulation) {
			hr = append(hr, s.UtilityHR(10, 20))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s, s.Global().Params().Clone(), hr
	}

	refSim, refParams, refHR := run("inproc", 1)
	ref := refSim.Resilience()
	if ref.Joins == 0 || ref.Leaves == 0 || ref.Rejoins == 0 || ref.ByzantineUploads == 0 {
		t.Fatalf("scenario too tame to prove anything: %+v", ref)
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{1, 3} {
			if backend == "inproc" && workers == 1 {
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				sim, params, hr := run(backend, workers)
				if !param.Equal(refParams, params, 0) {
					t.Fatal("final global params differ from the reference churn run")
				}
				for r := range refHR {
					if hr[r] != refHR[r] {
						t.Fatalf("utility curve differs at round %d", r)
					}
				}
				if sim.Resilience() != ref {
					t.Fatalf("churn accounting %+v != reference %+v", sim.Resilience(), ref)
				}
			})
		}
	}
}

// TestResilienceChurnReplayPredictsCounters replays the pure
// membership fold outside the simulator and demands the simulator's
// counters match the prediction exactly.
func TestResilienceChurnReplayPredictsCounters(t *testing.T) {
	d := fedTestDataset(t)
	plan := churnTestPlan()
	cfg := fedConfig(d)
	cfg.Rounds = 8
	cfg.ChurnPlan = &plan
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	m := transport.NewMembership(plan, d.NumUsers)
	for round := 0; round < cfg.Rounds; round++ {
		m.Advance(round)
	}
	r := s.Resilience()
	if r.Joins != m.Joins() || r.Leaves != m.Leaves() || r.Rejoins != m.Rejoins() {
		t.Fatalf("simulator counters joins/leaves/rejoins = %d/%d/%d, replay predicts %d/%d/%d",
			r.Joins, r.Leaves, r.Rejoins, m.Joins(), m.Leaves(), m.Rejoins())
	}
	if r.Rejoins == 0 {
		t.Fatal("scenario produced no rejoins; nothing was tested")
	}
}

// TestResilienceChurnInactivePlanIsFree pins the free-when-disabled
// contract: a plan that cannot change membership leaves the run
// byte-identical to no plan at all.
func TestResilienceChurnInactivePlanIsFree(t *testing.T) {
	d := fedTestDataset(t)
	run := func(plan *transport.ChurnPlan) *param.Set {
		cfg := fedConfig(d)
		cfg.Rounds = 3
		cfg.ChurnPlan = plan
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Global().Params().Clone()
	}
	ref := run(nil)
	inactive := run(&transport.ChurnPlan{Seed: 99})
	if !param.Equal(ref, inactive, 0) {
		t.Fatal("an inactive churn plan must be byte-identical to no plan")
	}
}

// robustTestSim builds a tiny simulation for direct aggregate() tests.
func robustTestSim(t *testing.T, cfg func(*Config)) *Simulation {
	t.Helper()
	d := fedTestDataset(t)
	c := fedConfig(d)
	cfg(&c)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// robustTestUploads builds deterministic pseudo-random full-model
// uploads for n clients.
func robustTestUploads(s *Simulation, n int) []upload {
	uploads := make([]upload, 0, n)
	for u := 0; u < n; u++ {
		p := s.global.Params().Clone()
		rng := mathx.NewStreamRand(1234, uint64(u))
		p.AddNoise(rng.NormFloat64, 0.5)
		uploads = append(uploads, upload{from: u, payload: p, weight: float64(u + 1)})
	}
	return uploads
}

// TestResiliencePermutationInvariantAggregators: coordinate-wise
// median and trimmed mean are order statistics — permuting the uploads
// must not change a single bit of the result.
func TestResiliencePermutationInvariantAggregators(t *testing.T) {
	for _, agg := range []Aggregator{AggMedian, AggTrimmedMean} {
		t.Run(agg.String(), func(t *testing.T) {
			run := func(perm []int) *param.Set {
				s := robustTestSim(t, func(c *Config) {
					c.Aggregator = agg
					c.TrimFraction = 0.25
				})
				uploads := robustTestUploads(s, 7)
				permuted := make([]upload, len(uploads))
				for i, j := range perm {
					permuted[i] = uploads[j]
				}
				s.aggregate(permuted)
				return s.global.Params().Clone()
			}
			ref := run([]int{0, 1, 2, 3, 4, 5, 6})
			got := run([]int{6, 2, 0, 5, 1, 4, 3})
			if !param.Equal(ref, got, 0) {
				t.Fatal("permuting uploads changed the robust aggregate")
			}
		})
	}
}

// TestResilienceMedianIgnoresOutlier: a single wildly-scaled adversary
// cannot move the coordinate-wise median beyond the honest value range
// — whereas it drags the FedAvg mean arbitrarily.
func TestResilienceMedianIgnoresOutlier(t *testing.T) {
	build := func(agg Aggregator) (*Simulation, []upload) {
		s := robustTestSim(t, func(c *Config) { c.Aggregator = agg })
		uploads := robustTestUploads(s, 5)
		// Upload 0 becomes a scaled adversary.
		uploads[0].payload.Scale(1e6)
		return s, uploads
	}
	s, uploads := build(AggMedian)
	honest := s.global.Params().Clone()
	s.aggregate(uploads)
	// Every non-private coordinate of the median must be bounded by the
	// honest uploads' value range (noise 0.5 around the global), far
	// below the 1e6-scaled outlier.
	gp := s.global.Params()
	for ei := 0; ei < gp.Len(); ei++ {
		ge := gp.At(ei)
		if _, private := s.privateSet[ge.Name]; private {
			continue
		}
		for i, v := range ge.Data {
			if math.Abs(v) > math.Abs(honest.At(ei).Data[i])+10 {
				t.Fatalf("median moved %s[%d] to %g — outlier leaked through", ge.Name, i, v)
			}
		}
	}

	sAvg, uploadsAvg := build(AggFedAvg)
	sAvg.aggregate(uploadsAvg)
	if param.Equal(sAvg.global.Params(), s.global.Params(), 0) {
		t.Fatal("FedAvg and median agreed under a scaled outlier; the outlier did nothing")
	}
}

// TestResilienceNormClipBound: after clipping, a lone oversized upload
// moves the shared entries by at most ClipNorm.
func TestResilienceNormClipBound(t *testing.T) {
	const clip = 0.5
	s := robustTestSim(t, func(c *Config) {
		c.Aggregator = AggNormClip
		c.ClipNorm = clip
	})
	before := s.global.Params().Clone()
	p := s.global.Params().Clone()
	rng := mathx.NewStreamRand(77)
	p.AddNoise(rng.NormFloat64, 50) // enormous delta, must be clipped
	s.aggregate([]upload{{from: 0, payload: p, weight: 3}})

	var sq float64
	gp := s.global.Params()
	for ei := 0; ei < gp.Len(); ei++ {
		ge := gp.At(ei)
		if _, private := s.privateSet[ge.Name]; private {
			continue
		}
		sq += mathx.SqDist(ge.Data, before.At(ei).Data)
	}
	if moved := math.Sqrt(sq); moved > clip*(1+1e-9) {
		t.Fatalf("global moved %g, clip bound is %g", moved, clip)
	}
	if r := s.Resilience(); r.ClippedUploads != 1 {
		t.Fatalf("ClippedUploads = %d, want 1", r.ClippedUploads)
	}
	// A small delta passes through unscaled.
	s2 := robustTestSim(t, func(c *Config) {
		c.Aggregator = AggNormClip
		c.ClipNorm = 1e9
	})
	small := s2.global.Params().Clone()
	rng2 := mathx.NewStreamRand(78)
	small.AddNoise(rng2.NormFloat64, 0.01)
	s2.aggregate([]upload{{from: 0, payload: small, weight: 1}})
	if r := s2.Resilience(); r.ClippedUploads != 0 {
		t.Fatalf("ClippedUploads = %d for an in-bound upload, want 0", r.ClippedUploads)
	}
}

// TestResilienceRobustStreamingWorkerEquivalence: the compressed
// (streaming) path stages uploads for the robust reduce; the result
// must still be byte-identical across worker counts and backends.
func TestResilienceRobustStreamingWorkerEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	byz := attack.Byzantine{Kind: attack.ByzScaledNoise, Fraction: 0.2, Scale: 2, Seed: 4}
	run := func(backend string, workers int) *param.Set {
		cfg := fedConfig(d)
		cfg.Rounds = 3
		cfg.Workers = workers
		cfg.Compression = param.Compression{Bits: 16}
		tr, err := transport.NewOptions(backend, transport.Options{Compression: cfg.Compression})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		cfg.Transport = tr
		cfg.Byzantine = &byz
		cfg.Aggregator = AggMedian
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		if r := s.Resilience(); r.ByzantineUploads == 0 {
			t.Fatal("no byzantine uploads; scenario too tame")
		}
		return s.Global().Params().Clone()
	}
	ref := run("inproc", 1)
	for _, backend := range []string{"inproc", "wire"} {
		for _, workers := range []int{1, 4} {
			if backend == "inproc" && workers == 1 {
				continue
			}
			if got := run(backend, workers); !param.Equal(ref, got, 0) {
				t.Fatalf("streaming robust run differs on %s/workers=%d", backend, workers)
			}
		}
	}
}

// TestResilienceAggregatorValidation covers the new Config checks.
func TestResilienceAggregatorValidation(t *testing.T) {
	d := fedTestDataset(t)
	bad := []func(*Config){
		func(c *Config) { c.Aggregator = Aggregator(42) },
		func(c *Config) { c.TrimFraction = 0.5 },
		func(c *Config) { c.TrimFraction = -0.1 },
		func(c *Config) { c.Aggregator = AggNormClip }, // missing ClipNorm
		func(c *Config) { c.ChurnPlan = &transport.ChurnPlan{LeaveProb: 2} },
		func(c *Config) { c.Byzantine = &attack.Byzantine{Fraction: -1} },
	}
	for i, mutate := range bad {
		cfg := fedConfig(d)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if _, err := ParseAggregator("nonsense"); err == nil {
		t.Error("ParseAggregator should reject unknown names")
	}
	for _, a := range []Aggregator{AggFedAvg, AggMedian, AggTrimmedMean, AggNormClip} {
		got, err := ParseAggregator(a.String())
		if err != nil || got != a {
			t.Errorf("aggregator round trip %v: got %v, %v", a, got, err)
		}
	}
}
