package fed

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// faultyTransport builds the named backend wrapped in the fault
// injector driven by plan.
func faultyTransport(t *testing.T, backend string, plan transport.FaultPlan) transport.Transport {
	t.Helper()
	tr, err := transport.NewOptions(transport.FaultyPrefix+backend, transport.Options{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// A round whose broadcast open fails is a blackout: nobody trains, the
// global model stands still, and the round still completes (callbacks,
// counter).
func TestBlackoutRoundKeepsGlobal(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 1, BroadcastFailProb: 1}
	cfg := fedConfig(d)
	cfg.Rounds = 3
	cfg.Transport = faultyTransport(t, "inproc", plan)
	cfg.FaultPlan = &plan
	var uploads int
	cfg.Observer = observerFunc(func(Message) { uploads++ })
	var rounds []int
	cfg.OnRound = func(round int, s *Simulation) { rounds = append(rounds, round) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := s.Global().Params().Clone()
	s.Run()
	if !param.Equal(initial, s.Global().Params(), 0) {
		t.Fatal("blackout rounds must leave the global model untouched")
	}
	if uploads != 0 {
		t.Fatalf("observer saw %d uploads during total blackout", uploads)
	}
	r := s.Resilience()
	if r.BlackoutRounds != 3 {
		t.Fatalf("BlackoutRounds = %d, want 3", r.BlackoutRounds)
	}
	if len(rounds) != 3 || s.Round() != 3 {
		t.Fatalf("blackout rounds must still advance: OnRound fired %d times, Round() = %d", len(rounds), s.Round())
	}
	if st := s.TransportStats(); st.InjectedFaults != 3 {
		t.Fatalf("InjectedFaults = %d, want 3", st.InjectedFaults)
	}
}

// A client whose broadcast delivery fails skips the round entirely: no
// training, no upload, no observation — and with every delivery lost,
// the global model never moves.
func TestDeliverFailureSkipsRound(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 1, DeliverLossProb: 1}
	cfg := fedConfig(d)
	cfg.Rounds = 2
	cfg.Transport = faultyTransport(t, "inproc", plan)
	var uploads int
	cfg.Observer = observerFunc(func(Message) { uploads++ })
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := s.Global().Params().Clone()
	s.Run()
	if !param.Equal(initial, s.Global().Params(), 0) {
		t.Fatal("with every delivery lost the global model must stand still")
	}
	if uploads != 0 {
		t.Fatalf("observer saw %d uploads from clients that never got the model", uploads)
	}
	r := s.Resilience()
	want := int64(d.NumUsers * cfg.Rounds)
	if r.DeliverFailures != want {
		t.Fatalf("DeliverFailures = %d, want %d", r.DeliverFailures, want)
	}
	if r.UploadFailures != 0 || r.BlackoutRounds != 0 {
		t.Fatalf("unexpected extra failures: %+v", r)
	}
}

// An upload lost in transit is invisible to both the server and the
// adversary — the clients still trained (their private state moved),
// but the global model never hears from them.
func TestUploadLossNotObserved(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 1, SendLossProb: 1}
	cfg := fedConfig(d)
	cfg.Rounds = 2
	cfg.Transport = faultyTransport(t, "inproc", plan)
	var uploads int
	cfg.Observer = observerFunc(func(Message) { uploads++ })
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := s.Global().Params().Clone()
	s.Run()
	if !param.Equal(initial, s.Global().Params(), 0) {
		t.Fatal("with every upload lost the global model must stand still")
	}
	if uploads != 0 {
		t.Fatalf("adversary observed %d uploads that were lost in transit", uploads)
	}
	r := s.Resilience()
	want := int64(d.NumUsers * cfg.Rounds)
	if r.UploadFailures != want {
		t.Fatalf("UploadFailures = %d, want %d", r.UploadFailures, want)
	}
}

// Stragglers are the attack surface the paper's adversary loves: the
// upload is observed (it arrived, late) but excluded from aggregation.
// The straggler schedule is a pure plan function, so the test predicts
// the exact count.
func TestStragglerObservedButExcluded(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 5, SlowProb: 0.5, SlowLatency: 500 * time.Millisecond}
	deadline := 100 * time.Millisecond

	run := func(withDeadline bool) (*Simulation, *param.Set, int) {
		cfg := fedConfig(d)
		cfg.Rounds = 3
		cfg.FaultPlan = &plan
		if withDeadline {
			cfg.StragglerDeadline = deadline
		}
		var uploads int
		cfg.Observer = observerFunc(func(Message) { uploads++ })
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s, s.Global().Params().Clone(), uploads
	}

	sim, gotParams, observed := run(true)
	wantObserved := d.NumUsers * 3
	if observed != wantObserved {
		t.Fatalf("adversary observed %d uploads, want %d (stragglers included)", observed, wantObserved)
	}
	var wantStragglers int64
	for round := 0; round < 3; round++ {
		for u := 0; u < d.NumUsers; u++ {
			if plan.Latency(round, u) > deadline {
				wantStragglers++
			}
		}
	}
	if wantStragglers == 0 {
		t.Fatal("test plan produced no stragglers — pick a different seed")
	}
	r := sim.Resilience()
	if r.Stragglers != wantStragglers {
		t.Fatalf("Stragglers = %d, want %d (predicted from the plan)", r.Stragglers, wantStragglers)
	}

	// Excluding stragglers must actually change the aggregate.
	_, refParams, _ := run(false)
	if param.Equal(refParams, gotParams, 0) {
		t.Fatal("straggler exclusion had no effect on the global model")
	}
}

// Below quorum the round keeps the previous global model. The miss
// schedule is predictable from the plan, and a quorum of zero restores
// the pre-resilience behaviour (aggregate whatever arrived).
func TestQuorumKeepsPreviousGlobal(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 5, SlowProb: 0.5, SlowLatency: 500 * time.Millisecond}
	deadline := 100 * time.Millisecond

	run := func(quorum float64) (*Simulation, *param.Set) {
		cfg := fedConfig(d)
		cfg.Rounds = 3
		cfg.FaultPlan = &plan
		cfg.StragglerDeadline = deadline
		cfg.Quorum = quorum
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s, s.Global().Params().Clone()
	}

	// Predict per-round timely arrivals from the plan (full sampling, no
	// other faults: arrivals = non-stragglers).
	quorum := 0.9
	var wantMisses int64
	for round := 0; round < 3; round++ {
		timely := 0
		for u := 0; u < d.NumUsers; u++ {
			if plan.Latency(round, u) <= deadline {
				timely++
			}
		}
		if timely < int(math.Ceil(quorum*float64(d.NumUsers))) {
			wantMisses++
		}
	}
	if wantMisses == 0 {
		t.Fatal("quorum 0.9 never misses under this plan — pick a different seed")
	}
	strict, strictParams := run(quorum)
	if got := strict.Resilience().QuorumMisses; got != wantMisses {
		t.Fatalf("QuorumMisses = %d, want %d (predicted from the plan)", got, wantMisses)
	}
	lax, laxParams := run(0)
	if got := lax.Resilience().QuorumMisses; got != 0 {
		t.Fatalf("QuorumMisses = %d with quorum disabled", got)
	}
	if wantMisses == 3 {
		// Every round missed: the strict run's global model never moved.
		sInit, err := New(func() Config {
			cfg := fedConfig(d)
			cfg.Rounds = 3
			return cfg
		}())
		if err != nil {
			t.Fatal(err)
		}
		if !param.Equal(sInit.Global().Params(), strictParams, 0) {
			t.Fatal("all-miss quorum run must keep the initial global model")
		}
	}
	if param.Equal(strictParams, laxParams, 0) {
		t.Fatal("quorum gating had no effect on the global model")
	}
}

// The tentpole determinism guarantee for chaos runs: the same (seed,
// plan) pair produces byte-identical models, utility curves and fault
// accounting on every backend and worker count — fault injection does
// not reopen the scheduling-dependence hole the transport seam closed.
func TestFaultyBackendEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{
		Seed:              3,
		DropProb:          0.1,
		SendLossProb:      0.1,
		DeliverLossProb:   0.1,
		BroadcastFailProb: 0.1,
		SlowProb:          0.3,
		SlowLatency:       500 * time.Millisecond,
	}

	run := func(backend string, workers int) (*Simulation, *param.Set, []float64) {
		cfg := fedConfig(d)
		cfg.Rounds = 4
		cfg.Workers = workers
		cfg.Transport = faultyTransport(t, backend, plan)
		cfg.FaultPlan = &plan
		cfg.StragglerDeadline = 100 * time.Millisecond
		cfg.Quorum = 0.3
		var hr []float64
		cfg.OnRound = func(round int, s *Simulation) {
			hr = append(hr, s.UtilityHR(10, 20))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s, s.Global().Params().Clone(), hr
	}

	refSim, refParams, refHR := run("inproc", 1)
	ref := refSim.Resilience()
	// The plan must actually exercise every failure path, or this test
	// proves nothing.
	if ref.DeliverFailures == 0 || ref.UploadFailures == 0 || ref.Stragglers == 0 {
		t.Fatalf("chaos plan too tame: %+v", ref)
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{1, 3} {
			if backend == "inproc" && workers == 1 {
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				sim, params, hr := run(backend, workers)
				if !param.Equal(refParams, params, 0) {
					t.Fatal("final global params differ from the reference chaos run")
				}
				for r := range refHR {
					if hr[r] != refHR[r] {
						t.Fatalf("utility curve differs at round %d", r)
					}
				}
				if sim.Resilience() != ref {
					t.Fatalf("fault accounting %+v != reference %+v", sim.Resilience(), ref)
				}
				ws, is := sim.TransportStats(), refSim.TransportStats()
				if ws.InjectedFaults != is.InjectedFaults {
					t.Fatalf("injected %d faults, reference injected %d", ws.InjectedFaults, is.InjectedFaults)
				}
				if sim.Traffic() != refSim.Traffic() {
					t.Fatalf("surviving traffic %+v != reference %+v", sim.Traffic(), refSim.Traffic())
				}
			})
		}
	}
}

// A fault plan with nothing enabled must be byte-identical to no plan
// at all: the resilience layer is invisible until switched on.
func TestInactivePlanIsFree(t *testing.T) {
	d := fedTestDataset(t)
	base := fedConfig(d)
	base.Rounds = 3
	ref, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run()

	cfg := fedConfig(d)
	cfg.Rounds = 3
	cfg.FaultPlan = &transport.FaultPlan{Seed: 99} // no probabilities: inactive
	cfg.StragglerDeadline = time.Second
	cfg.Quorum = 0.5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !param.Equal(ref.Global().Params(), s.Global().Params(), 0) {
		t.Fatal("an inactive fault plan changed the run")
	}
	if r := s.Resilience(); r != (Resilience{}) {
		t.Fatalf("inactive plan accumulated fault accounting: %+v", r)
	}
}
