// Package fed simulates Federated Recommender Systems (§III-B): the
// classic FedAvg loop in which selected clients download the global
// model, train locally on their private interactions, and upload their
// models to a central server that aggregates them.
//
// The simulator is single-process and round-synchronous, which is
// exactly the abstraction level of the paper's protocols. The
// honest-but-curious server adversary is modelled with an Observer
// that sees every upload (Alg. 1, line 6).
//
// User-embedding aggregation follows standard FedRec practice: the
// global table takes user u's row from client u's upload (only the
// owner ever trains that row; averaging it with N−1 stale copies would
// dilute it to nothing). All other shared entries aggregate as
// data-size-weighted deltas, i.e. classic FedAvg.
package fed

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/parx"
	"github.com/collablearn/ciarec/internal/transport"
)

// Message is one client upload as seen by the server (and therefore by
// a server-side adversary).
type Message struct {
	Round  int
	From   int
	Params *param.Set
}

// Observer receives the traffic a server-side adversary can see.
// msg.Params is only valid for the duration of the OnUpload call: the
// simulator recycles payload storage once the round that produced it
// is aggregated, so implementations must clone anything they retain.
// Calls are never concurrent and always arrive in the round's sampling
// order (ascending client index under full participation; the
// sampler's draw order under ClientFraction < 1) — identical for every
// Workers setting. On an uncompressed transport all calls come from
// the goroutine running the simulation; on a compressed transport
// OnUpload fires from the round's streaming-fold goroutine, still
// strictly ordered before the same round's OnRoundEnd.
type Observer interface {
	// OnUpload is called for every client upload, before aggregation.
	OnUpload(msg Message)
	// OnRoundEnd is called after aggregation each round.
	OnRoundEnd(round int)
}

// Config parameterizes a federated simulation.
type Config struct {
	Dataset *dataset.Dataset
	Factory model.Factory
	// Policy defaults to defense.FullSharing.
	Policy defense.Policy

	// Rounds is the number of FedAvg rounds (required, > 0).
	Rounds int
	// ClientFraction is the fraction of clients sampled per round
	// (default 1: full participation, as in the paper's FL setting).
	ClientFraction float64
	// DropoutProb is the probability that a sampled client fails mid-
	// round (trains but never uploads — a crash or network partition).
	// The server aggregates whatever arrives; droppers keep their
	// private state. Used for failure-injection testing.
	DropoutProb float64
	// Train is the local-training option template; its Rand field is
	// ignored (each client owns a generator).
	Train model.TrainOptions

	// Workers bounds the number of goroutines running per-client local
	// training, the sharded FedAvg reduce and the UtilityHR/UtilityF1
	// sweeps concurrently. 0 defaults to runtime.NumCPU(); negative
	// forces serial execution. Results are byte-identical whatever the
	// worker count: every client owns its RNG stream and private state,
	// round-level randomness (sampling, dropout) is drawn before
	// dispatch, uploads are observed and aggregated in client-index
	// order, reduce shards preserve the serial addition order, and
	// utility evaluation derives one counter-based stream per
	// (seed, round, user).
	Workers int

	// Transport carries all parameter traffic: the global-model
	// broadcast each sampled client downloads and the upload it sends
	// back. nil defaults to a fresh transport.Inproc (pointer passing).
	// Pass transport.NewWire() to round-trip every transfer through the
	// binary wire codec, or a transport.New("socket")/transport.Dial
	// instance to push it through the framed RPC protocol over a real
	// socket (loopback or an external ciaworker process) — results are
	// byte-identical on every backend (the cross-backend equivalence
	// suite enforces it). The caller keeps ownership: the simulation
	// never closes the transport. Instances accumulate per-simulation
	// traffic stats, so do not share one across simulations.
	Transport transport.Transport

	// Compression selects the transport payload codec: the zero value
	// keeps the dense float64 codec (bit-exact transfers, the golden
	// reference), 8 or 16 bits switches every transfer to the
	// sparse+quantized CPQ1 codec and the server to streaming
	// aggregation — each upload is folded into the accumulator as it
	// arrives, in sampling order, instead of being staged until the
	// round ends. When Transport is nil the default inproc transport is
	// built at this level; a non-nil Transport must either match (its
	// own Compression equals this one) or this field must be zero, in
	// which case the transport's setting is adopted.
	Compression param.Compression

	// FaultPlan is the declarative failure scenario the simulator
	// consults for protocol-level decisions the transport cannot make —
	// today, each sampled client's virtual latency for the straggler
	// deadline. Message loss itself flows through the transport: wrap it
	// in transport.NewFaulty with the same plan (or use the "faulty:"
	// backend prefix) and the simulator treats the injected transfer
	// errors as lost uploads, skipped clients and blackout rounds. nil
	// disables straggler modelling.
	FaultPlan *transport.FaultPlan
	// StragglerDeadline is the server's per-round upload deadline: a
	// sampled client whose virtual latency (FaultPlan.Latency) exceeds
	// it uploads too late — the adversary still observes the upload, but
	// aggregation excludes it (partial aggregation over the timely
	// survivors, reweighted by FedAvg's data-size weights). 0 disables
	// the deadline.
	StragglerDeadline time.Duration
	// Quorum is the minimum fraction of the round's sampled clients
	// whose uploads must arrive in time for aggregation to proceed;
	// below it the round keeps the previous global model (counted in
	// Resilience.QuorumMisses). 0 disables the check — any non-empty
	// set of arrivals aggregates, the pre-resilience behaviour.
	Quorum float64

	// ChurnPlan drives deterministic participant churn: each round,
	// present clients leave and absent ones (re)join as pure functions
	// of (plan seed, round, client), so membership can grow and shrink
	// mid-run without consuming any simulator RNG. An absent client's
	// state (its RNG, private rows and last-received snapshot) is
	// frozen; a rejoiner resumes from that stale snapshot — it
	// downloads the current global model like everyone else, but its
	// never-shared private rows are as old as its departure. nil (or a
	// disabled plan) is byte-identical to no churn at all.
	ChurnPlan *transport.ChurnPlan
	// Byzantine, when non-nil with Fraction > 0, turns a deterministic
	// subset of clients into active adversaries that corrupt every
	// upload they send (sign-flip, scaled noise or collusion echo; see
	// attack.Byzantine). Corruption happens after the defense policy
	// builds the outgoing payload — the adversary ignores the policy's
	// honesty, not its entry selection — and before the transport, so
	// the server-side Observer sees the corrupted traffic exactly as a
	// real adversary would send it.
	Byzantine *attack.Byzantine
	// Aggregator selects the server's aggregation rule (the zero value
	// is classic FedAvg; see Aggregator for the robust rules).
	Aggregator Aggregator
	// TrimFraction is AggTrimmedMean's per-end trim, in [0, 0.5).
	// 0 means the default, 0.1.
	TrimFraction float64
	// ClipNorm is AggNormClip's per-upload L2 bound (required > 0 when
	// that aggregator is selected).
	ClipNorm float64

	// Tracer optionally records phase spans (train/encode/send/
	// aggregate/broadcast/eval) for every round. nil disables tracing;
	// the simulation's outputs are byte-identical either way — the
	// tracer is write-only from the simulation's point of view (the
	// obsleak analyzer enforces it).
	Tracer *obs.Tracer

	// Observer optionally receives all uploads (the adversary hook).
	Observer Observer
	// OnRound is called after every round with the live simulation,
	// e.g. to record utility curves.
	OnRound func(round int, s *Simulation)

	Seed uint64
}

func (c *Config) validate() error {
	if c.Dataset == nil {
		return fmt.Errorf("fed: Config.Dataset is required")
	}
	if c.Factory == nil {
		return fmt.Errorf("fed: Config.Factory is required")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("fed: Config.Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("fed: Config.ClientFraction %v out of [0,1]", c.ClientFraction)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("fed: Config.DropoutProb %v out of [0,1)", c.DropoutProb)
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("fed: Config.Quorum %v out of [0,1]", c.Quorum)
	}
	if c.StragglerDeadline < 0 {
		return fmt.Errorf("fed: Config.StragglerDeadline %v is negative", c.StragglerDeadline)
	}
	if err := c.Compression.Validate(); err != nil {
		return fmt.Errorf("fed: %w", err)
	}
	switch c.Aggregator {
	case AggFedAvg, AggMedian, AggTrimmedMean, AggNormClip:
	default:
		return fmt.Errorf("fed: Config.Aggregator %d unknown", int(c.Aggregator))
	}
	if c.TrimFraction < 0 || c.TrimFraction >= 0.5 {
		return fmt.Errorf("fed: Config.TrimFraction %v out of [0, 0.5)", c.TrimFraction)
	}
	if c.Aggregator == AggNormClip && c.ClipNorm <= 0 {
		return fmt.Errorf("fed: Config.ClipNorm must be positive for the norm-clip aggregator, got %v", c.ClipNorm)
	}
	if c.ChurnPlan != nil {
		if err := c.ChurnPlan.Validate(); err != nil {
			return fmt.Errorf("fed: %w", err)
		}
	}
	if c.Byzantine != nil {
		if err := c.Byzantine.Validate(); err != nil {
			return fmt.Errorf("fed: %w", err)
		}
	}
	if c.Transport != nil {
		if tc := c.Transport.Compression(); c.Compression.Enabled() && tc != c.Compression {
			return fmt.Errorf("fed: Config.Compression %v conflicts with the transport's %v", c.Compression, tc)
		}
	}
	return nil
}

// clientState is the per-client persistent state: its RNG and, under
// Share-less, its private (never-shared) user-embedding rows.
type clientState struct {
	rng *rand.Rand
	// privateRows maps private entry name → the client's own row.
	// Empty until first populated; absent entries mean "use global".
	privateRows map[string][]float64
	// lastReceived is the payload the client installed most recently
	// (the Share-less drift reference).
	lastReceived *param.Set
}

// Traffic is the client → server upload accounting, mirrored from the
// transport's point-to-point counters. The global-model broadcast is
// accounted separately: see TransportStats.
type Traffic struct {
	Messages int
	Bytes    int64
}

// Simulation is a running federated system. Create with New, then call
// Run (or RunRound repeatedly).
type Simulation struct {
	cfg     Config
	global  model.Recommender
	scratch model.Recommender // reusable client/eval workspace (worker 0)
	clients []clientState
	rng     *rand.Rand
	round   int
	tr      transport.Transport

	privateEntries []string
	privateSet     map[string]struct{}

	workers   int
	scratches []model.Recommender // per-worker client workspaces
	pool      param.Buffers       // payload free-list
	payloads  []*param.Set        // per-round payload staging, by sample index
	dropped   []bool              // per-round dropout decisions, by sample index
	uploads   []upload            // reusable aggregation input

	// Sharded-reduce state: one accumulator region per entry (offsets
	// into aggBuf), a reusable chunk work-list and normalized weights.
	aggBuf     []float64
	aggOff     []int
	aggChunks  []aggChunk
	aggW       []float64
	aggFactors []float64 // per-upload norm-clip scales

	// Utility-evaluation state: the deterministic parallel engine plus,
	// per worker, the user whose private rows are currently installed in
	// that worker's scratch model (-1 = scratch needs a global re-sync).
	eval     *model.Eval
	evalPrev []int

	// Churn membership fold (nil when no ChurnPlan is active) and the
	// reusable present-id scratch.
	membership *transport.Membership
	presentIDs []int

	// Resilience accounting. deliverFailures, uploadFailures and
	// byzantineUploads are incremented from worker goroutines (atomic);
	// the rest only from the sequential round phase (the streaming
	// folder's clip count is merged after its goroutine drains).
	deliverFailures  atomic.Int64
	uploadFailures   atomic.Int64
	byzantineUploads atomic.Int64
	stragglers       int64
	quorumMisses     int64
	blackoutRounds   int64
	clippedUploads   int64
}

// Resilience is the simulation's accumulated fault accounting.
type Resilience struct {
	// BlackoutRounds counts rounds whose global-model broadcast failed
	// outright: no client trained, the global model stood still.
	BlackoutRounds int64
	// DeliverFailures counts sampled clients that never received the
	// round's global model (they skip the round entirely).
	DeliverFailures int64
	// UploadFailures counts uploads lost in transit after training (the
	// server, and the adversary, never saw them).
	UploadFailures int64
	// Stragglers counts uploads that arrived past StragglerDeadline:
	// observed by the adversary, excluded from aggregation.
	Stragglers int64
	// QuorumMisses counts rounds whose timely arrivals fell below
	// Quorum, keeping the previous global model.
	QuorumMisses int64
	// Joins, Leaves and Rejoins are the ChurnPlan membership
	// transitions (a rejoin — a client returning after participating
	// before — is also counted as a join).
	Joins   int64
	Leaves  int64
	Rejoins int64
	// ByzantineUploads counts uploads corrupted by the Byzantine
	// adversary population before sending.
	ByzantineUploads int64
	// ClippedUploads counts uploads whose delta the norm-clip
	// aggregator scaled down to ClipNorm.
	ClippedUploads int64
}

// Resilience returns the accumulated fault accounting.
func (s *Simulation) Resilience() Resilience {
	r := Resilience{
		BlackoutRounds:   s.blackoutRounds,
		DeliverFailures:  s.deliverFailures.Load(),
		UploadFailures:   s.uploadFailures.Load(),
		ByzantineUploads: s.byzantineUploads.Load(),
		Stragglers:       s.stragglers,
		QuorumMisses:     s.quorumMisses,
		ClippedUploads:   s.clippedUploads,
	}
	if s.membership != nil {
		r.Joins = s.membership.Joins()
		r.Leaves = s.membership.Leaves()
		r.Rejoins = s.membership.Rejoins()
	}
	return r
}

// String renders the non-zero counters as space-separated key=value
// pairs in declaration order ("" when nothing happened), the form the
// experiment tables print per run.
func (r Resilience) String() string {
	var b strings.Builder
	add := func(key string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", key, v)
	}
	add("blackouts", r.BlackoutRounds)
	add("deliver-failures", r.DeliverFailures)
	add("upload-failures", r.UploadFailures)
	add("stragglers", r.Stragglers)
	add("quorum-misses", r.QuorumMisses)
	add("joins", r.Joins)
	add("leaves", r.Leaves)
	add("rejoins", r.Rejoins)
	add("byzantine-uploads", r.ByzantineUploads)
	add("clipped-uploads", r.ClippedUploads)
	return b.String()
}

// Traffic returns the accumulated upload statistics (the transport's
// point-to-point counters).
func (s *Simulation) Traffic() Traffic {
	st := s.tr.Stats()
	return Traffic{Messages: int(st.Messages), Bytes: st.Bytes}
}

// TransportStats returns the transport's full traffic accounting,
// including the per-client global-model broadcast deliveries.
func (s *Simulation) TransportStats() transport.Stats { return s.tr.Stats() }

// New builds a federated simulation from cfg.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = defense.FullSharing{}
	}
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 1
	}
	if cfg.TrimFraction == 0 {
		cfg.TrimFraction = 0.1
	}
	if cfg.Transport == nil {
		tr, err := transport.NewOptions("inproc", transport.Options{Compression: cfg.Compression})
		if err != nil {
			return nil, fmt.Errorf("fed: %w", err)
		}
		cfg.Transport = tr
	} else {
		// Adopt the transport's codec so the streaming-aggregation
		// decision below sees one authoritative setting.
		cfg.Compression = cfg.Transport.Compression()
	}
	rng := mathx.NewRand(cfg.Seed)
	global := cfg.Factory(rng.Uint64())
	if global.NumUsers() != cfg.Dataset.NumUsers {
		return nil, fmt.Errorf("fed: model has %d users, dataset has %d",
			global.NumUsers(), cfg.Dataset.NumUsers)
	}
	if global.NumItems() != cfg.Dataset.NumItems {
		return nil, fmt.Errorf("fed: model has %d items, dataset has %d",
			global.NumItems(), cfg.Dataset.NumItems)
	}
	s := &Simulation{
		cfg:            cfg,
		global:         global,
		scratch:        global.Clone(),
		clients:        make([]clientState, cfg.Dataset.NumUsers),
		rng:            rng,
		tr:             cfg.Transport,
		privateEntries: global.PrivateEntries(),
		workers:        parx.Workers(cfg.Workers),
	}
	// A round never runs more concurrent clients than the dataset has
	// users, so don't build scratch models beyond that.
	if s.workers > cfg.Dataset.NumUsers {
		s.workers = cfg.Dataset.NumUsers
	}
	s.privateSet = make(map[string]struct{}, len(s.privateEntries))
	for _, n := range s.privateEntries {
		s.privateSet[n] = struct{}{}
	}
	// One accumulator region per entry so reduce chunks from different
	// entries never share storage.
	gp := global.Params()
	s.aggOff = make([]int, gp.Len())
	var total int
	for ei := 0; ei < gp.Len(); ei++ {
		s.aggOff[ei] = total
		total += len(gp.At(ei).Data)
	}
	s.aggBuf = make([]float64, total)
	s.scratches = []model.Recommender{s.scratch}
	for w := 1; w < s.workers; w++ {
		s.scratches = append(s.scratches, global.Clone())
	}
	// The same eval seed constant as the historical shared evalRng, now
	// feeding per-(round, user) counter-derived streams.
	s.eval = model.NewEval(cfg.Dataset, s.workers, cfg.Seed^0xabcdef)
	s.evalPrev = make([]int, len(s.scratches))
	for u := range s.clients {
		s.clients[u] = clientState{
			rng:         mathx.Split(rng),
			privateRows: make(map[string][]float64),
		}
	}
	// The membership fold consumes no simulator RNG, so building it (or
	// not) leaves every stream above untouched.
	if cfg.ChurnPlan != nil && cfg.ChurnPlan.Enabled() {
		s.membership = transport.NewMembership(*cfg.ChurnPlan, cfg.Dataset.NumUsers)
	}
	return s, nil
}

// Global returns the live global model (do not mutate).
func (s *Simulation) Global() model.Recommender { return s.global }

// Round returns the number of completed rounds.
func (s *Simulation) Round() int { return s.round }

// Run executes all configured rounds.
func (s *Simulation) Run() {
	for s.round < s.cfg.Rounds {
		s.RunRound()
	}
}

// RunRound executes a single FedAvg round: sample clients, local
// training (on the worker pool), observation, aggregation, callbacks.
//
// Determinism: the round RNG is consumed in exactly the same order as
// a serial round (sampling, then one dropout draw per sampled client),
// every client trains with its own RNG on its own state, and uploads
// are observed and aggregated in the round's sampling order — so the
// outcome is byte-identical for every Workers setting. Fault handling
// preserves this: transfer failures from a FaultPlan-driven transport
// are pure functions of (plan seed, round, participant), and straggler
// latencies are virtual, so a (seed, plan) pair pins the exact output
// on every backend.
//
// Failure taxonomy (all counted in Resilience):
//
//   - broadcast open fails → blackout round: nobody trains, the global
//     model stands still, callbacks still fire.
//   - a client's broadcast delivery fails → the client skips the round
//     (no training, no upload).
//   - a client's upload Send fails → the upload is lost in transit;
//     neither the server nor the adversary sees it.
//   - an upload arrives past StragglerDeadline → the adversary observes
//     it, aggregation excludes it.
//   - timely arrivals fall below Quorum → the round keeps the previous
//     global model (the observer still saw the arrivals).
func (s *Simulation) RunRound() {
	round := s.round
	if s.membership != nil {
		// Apply the round's churn transitions before sampling. Pure
		// plan functions — no simulator RNG consumed.
		s.membership.Advance(round)
	}
	n := s.cfg.Dataset.NumUsers
	sampled := s.sampleClients(n)

	// Pre-draw dropout decisions so the shared round RNG is not touched
	// from worker goroutines. Drawn before the broadcast so a blackout
	// round consumes the round RNG exactly like a normal round — the
	// continuation stays comparable to a fault-free run.
	s.dropped = s.dropped[:0]
	for range sampled {
		s.dropped = append(s.dropped, s.cfg.DropoutProb > 0 && mathx.Bernoulli(s.rng, s.cfg.DropoutProb))
	}

	// Local training, fanned out over the worker pool. Each worker owns
	// a scratch model; each client owns its RNG and private rows. All
	// parameter traffic — the global-model download and the upload back
	// — rides the transport: the broadcast is encoded once here, each
	// client decodes/installs it and sends its payload inside the
	// parallel region (transport stats are atomic sums, so totals do not
	// depend on worker interleaving), and the order-sensitive effects
	// (observation, aggregation) are applied afterwards, indexed by
	// sample position.
	s.payloads = s.payloads[:0]
	for range sampled {
		s.payloads = append(s.payloads, nil)
	}
	// Span ring convention: parallel workers record on their parx index
	// (0..workers-1), the sequential coordinator phases on ring
	// s.workers, the streaming folder goroutine on s.workers+1.
	encStart := s.cfg.Tracer.Start()
	bcast, err := s.tr.OpenBroadcast(round, s.global.Params())
	s.cfg.Tracer.Span(s.workers, obs.PhaseEncode, round, obs.RoundLevel, encStart)
	if err != nil {
		// Blackout round: the server could not stage the global model.
		s.blackoutRounds++
		s.finishRound(round)
		return
	}
	// On a compressed transport the server aggregates streamingly: a
	// folder goroutine consumes each upload in sampling order as soon
	// as it (and all earlier ones) resolved, folding it into the
	// accumulator and recycling it immediately instead of staging every
	// decoded set until the round ends.
	var fold *folder
	if s.cfg.Compression.Enabled() {
		fold = s.startFold(round, sampled)
	}
	parx.ForEach(s.workers, len(sampled), func(w, i int) {
		payload := s.clientRound(round, sampled[i], w, s.scratches[w], bcast)
		switch {
		case payload == nil:
			// Delivery failed: the client skipped the round.
		case s.dropped[i]:
			// Failure injection: the client crashed before uploading.
			// Its local training (and private state) already happened.
			s.pool.Put(payload)
		default:
			sendStart := s.cfg.Tracer.Start()
			sent, err := s.tr.Send(round, sampled[i], payload, &s.pool)
			s.cfg.Tracer.Span(w, obs.PhaseSend, round, sampled[i], sendStart)
			if err != nil {
				// Upload lost in transit (payload already recycled).
				s.uploadFailures.Add(1)
			} else {
				s.payloads[i] = sent
			}
		}
		if fold != nil {
			fold.resolve(i)
		}
	})
	bcast.Close()
	if fold != nil {
		aggStart := s.cfg.Tracer.Start()
		s.finishFold(fold, sampled)
		s.cfg.Tracer.Span(s.workers, obs.PhaseAggregate, round, obs.RoundLevel, aggStart)
		s.finishRound(round)
		return
	}

	// Sequential phase: observe and aggregate in client-index order.
	// Straggler decisions are pure plan functions, so drawing them here
	// (not in the parallel region) changes nothing and keeps the
	// exclusion logic next to the aggregation it affects.
	aggStart := s.cfg.Tracer.Start()
	uploads := s.uploads[:0]
	for i, u := range sampled {
		payload := s.payloads[i]
		s.payloads[i] = nil
		if payload == nil {
			continue // dropped, skipped or lost before arrival
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.OnUpload(Message{Round: round, From: u, Params: payload})
		}
		if s.isStraggler(round, u) {
			// Too late for aggregation; the adversary saw it anyway.
			s.stragglers++
			s.pool.Put(payload)
			continue
		}
		uploads = append(uploads, upload{
			from:    u,
			payload: payload,
			weight:  float64(len(s.cfg.Dataset.Train[u])),
		})
	}
	if s.cfg.Quorum > 0 && len(uploads) < int(math.Ceil(s.cfg.Quorum*float64(len(sampled)))) {
		// Quorum miss: keep the previous global model.
		s.quorumMisses++
	} else {
		s.aggregate(uploads)
	}
	for i := range uploads {
		s.pool.Put(uploads[i].payload)
		uploads[i].payload = nil
	}
	s.uploads = uploads[:0]
	s.cfg.Tracer.Span(s.workers, obs.PhaseAggregate, round, obs.RoundLevel, aggStart)
	s.finishRound(round)
}

// finishRound fires the end-of-round callbacks and advances the round
// counter (shared by normal and blackout rounds).
func (s *Simulation) finishRound(round int) {
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnRoundEnd(round)
	}
	s.round++
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(round, s)
	}
}

// isStraggler reports whether client u's round upload misses the
// straggler deadline: its virtual latency under the fault plan exceeds
// StragglerDeadline. Pure, deterministic, backend-independent.
func (s *Simulation) isStraggler(round, u int) bool {
	if s.cfg.StragglerDeadline <= 0 || s.cfg.FaultPlan == nil {
		return false
	}
	return s.cfg.FaultPlan.Latency(round, u) > s.cfg.StragglerDeadline
}

func (s *Simulation) sampleClients(n int) []int {
	if s.membership != nil {
		// Churn: only present clients are eligible. Under full
		// participation no RNG is consumed (exactly like the static
		// path); under a fraction the sampler draws from the present
		// set in ascending-id order, so the draw sequence is a pure
		// function of (seed, membership) — backend- and worker-
		// independent.
		s.presentIDs = s.membership.AppendPresent(s.presentIDs[:0])
		present := s.presentIDs
		if s.cfg.ClientFraction >= 1 || len(present) == 0 {
			return present
		}
		k := int(s.cfg.ClientFraction * float64(len(present)))
		if k < 1 {
			k = 1
		}
		idx := mathx.SampleWithoutReplacement(s.rng, len(present), k)
		sampled := make([]int, len(idx))
		for i, j := range idx {
			sampled[i] = present[j]
		}
		return sampled
	}
	if s.cfg.ClientFraction >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := int(s.cfg.ClientFraction * float64(n))
	if k < 1 {
		k = 1
	}
	return mathx.SampleWithoutReplacement(s.rng, n, k)
}

// clientRound simulates client u's round on the given scratch model:
// install the broadcast global model (plus persistent private rows),
// train locally, build the outgoing payload via the policy. It touches
// only client u's state, the concurrency-safe payload pool and the
// (concurrency-safe, read-only) broadcast handle, so distinct clients
// may run concurrently on distinct scratch models. A failed delivery
// means the client never got this round's model: it returns nil
// without training (its RNG and private state untouched, so the
// failure is purely a skipped round).
func (s *Simulation) clientRound(round, u, w int, m model.Recommender, bcast transport.Broadcast) *param.Set {
	st := &s.clients[u]
	dlvStart := s.cfg.Tracer.Start()
	err := bcast.Deliver(u, m.Params())
	s.cfg.Tracer.Span(w, obs.PhaseBroadcast, round, u, dlvStart)
	if err != nil {
		s.deliverFailures.Add(1)
		return nil
	}
	s.installPrivateRows(m, u)
	st.lastReceived = m.Params().CloneInto(st.lastReceived)

	prev := st.lastReceived // pre-training snapshot (same values)
	opt := s.cfg.Train
	opt.Rand = st.rng
	s.cfg.Policy.PrepareTrain(&opt, m, st.lastReceived)
	trainStart := s.cfg.Tracer.Start()
	m.TrainLocal(s.cfg.Dataset, u, opt)
	s.cfg.Tracer.Span(w, obs.PhaseTrain, round, u, trainStart)

	s.capturePrivateRows(m, u)
	payload := s.cfg.Policy.Outgoing(m, prev, st.rng, &s.pool)
	if s.cfg.Byzantine != nil && s.cfg.Byzantine.IsAdversary(u) {
		// Active adversary: corrupt the outgoing payload in place,
		// reflecting around / echoing the model this client received.
		// Deterministic (counter-based streams only) and applied before
		// the transport, so the Observer sees the corrupted upload.
		s.cfg.Byzantine.Corrupt(round, u, payload, st.lastReceived)
		s.byzantineUploads.Add(1)
	}
	return payload
}

// installPrivateRows copies the client's persisted private rows into
// the working model (no-op until they have been captured once).
func (s *Simulation) installPrivateRows(m model.Recommender, u int) {
	st := &s.clients[u]
	for _, name := range s.privateEntries {
		row, ok := st.privateRows[name]
		if !ok {
			continue
		}
		e := m.Params().Entry(name)
		copy(e.Data[u*e.Cols:(u+1)*e.Cols], row)
	}
}

// capturePrivateRows persists the client's own private rows after
// training so they survive across rounds even when never shared.
func (s *Simulation) capturePrivateRows(m model.Recommender, u int) {
	st := &s.clients[u]
	for _, name := range s.privateEntries {
		e := m.Params().Entry(name)
		row := st.privateRows[name]
		if row == nil {
			row = make([]float64, e.Cols)
			st.privateRows[name] = row
		}
		copy(row, e.Data[u*e.Cols:(u+1)*e.Cols])
	}
}

// upload is one client's contribution to a round's aggregation.
type upload struct {
	from    int
	payload *param.Set
	weight  float64
}

// aggChunk is one unit of the sharded reduce: the element range
// [lo, hi) of parameter entry ei.
type aggChunk struct {
	ei, lo, hi int
}

// aggShard is the reduce chunk size in elements. Entries smaller than
// this (biases, output layers) stay single-chunk; paper-scale item
// tables (tens of thousands of rows) split into enough chunks to keep
// every worker busy.
const aggShard = 2048

// aggregate folds the uploads into the global model: row routing for
// the private user tables, then the weighted-delta FedAvg reduce
// sharded per entry element-range over the worker pool. Chunks of one
// entry write disjoint ranges of that entry's accumulator region and of
// the entry itself, and every element sees the same upload-order
// addition sequence as a serial reduce — so the result is byte-
// identical for every worker count.
func (s *Simulation) aggregate(uploads []upload) {
	if len(uploads) == 0 {
		return
	}
	if s.cfg.Aggregator.robust() {
		// Median / trimmed mean need every coordinate column staged;
		// they replace the weighted-delta reduce wholesale.
		s.aggregateRobust(uploads)
		return
	}
	// Norm-clip keeps the FedAvg reduce but scales each upload's
	// normalized weight by its clip factor, computed against the
	// pre-reduce global model.
	s.aggFactors = s.aggFactors[:0]
	if s.cfg.Aggregator == AggNormClip {
		for i := range uploads {
			f, clipped := s.clipFactor(uploads[i].payload)
			if clipped {
				s.clippedUploads++
			}
			s.aggFactors = append(s.aggFactors, f)
		}
	}
	var totalW float64
	for _, up := range uploads {
		totalW += up.weight
	}
	if totalW == 0 {
		totalW = 1
	}
	s.aggW = s.aggW[:0]
	for i, up := range uploads {
		w := up.weight / totalW
		if len(s.aggFactors) > 0 {
			w *= s.aggFactors[i]
		}
		s.aggW = append(s.aggW, w)
	}
	globalParams := s.global.Params()
	s.aggChunks = s.aggChunks[:0]
	for ei := 0; ei < globalParams.Len(); ei++ {
		ge := globalParams.At(ei)
		name := ge.Name
		if _, isUserTable := s.privateSet[name]; isUserTable {
			// Row routing: take row u from client u's upload (if the
			// policy shared it at all). Cheap — stays serial.
			for _, up := range uploads {
				if !up.payload.Has(name) {
					continue
				}
				pe := up.payload.Entry(name)
				u := up.from
				copy(ge.Data[u*ge.Cols:(u+1)*ge.Cols], pe.Data[u*pe.Cols:(u+1)*pe.Cols])
			}
			continue
		}
		var any bool
		for _, up := range uploads {
			if up.payload.Has(name) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		for lo := 0; lo < len(ge.Data); lo += aggShard {
			hi := lo + aggShard
			if hi > len(ge.Data) {
				hi = len(ge.Data)
			}
			s.aggChunks = append(s.aggChunks, aggChunk{ei: ei, lo: lo, hi: hi})
		}
	}
	parx.ForEach(s.workers, len(s.aggChunks), func(_, ci int) {
		c := s.aggChunks[ci]
		ge := globalParams.At(c.ei)
		acc := s.aggBuf[s.aggOff[c.ei]+c.lo : s.aggOff[c.ei]+c.hi]
		mathx.Zero(acc)
		gd := ge.Data[c.lo:c.hi]
		for ui := range uploads {
			if !uploads[ui].payload.Has(ge.Name) {
				continue
			}
			pe := uploads[ui].payload.Get(ge.Name)[c.lo:c.hi]
			mathx.AxpyDiff(s.aggW[ui], pe, gd, acc)
		}
		mathx.Axpy(1, acc, gd)
	})
}

// routedRow is a private user-table row captured from a streamed
// upload: row routing must wait until the round's quorum is known, so
// the row (a few floats) is stashed while the rest of the payload is
// folded and recycled.
type routedRow struct {
	name string
	u    int
	row  []float64
}

// folder is the compressed path's streaming aggregator. Workers signal
// each sample index once its upload resolved (arrived, dropped, lost
// or skipped); the folder's goroutine advances a cursor through the
// sampling order, and for every arrival in turn observes it, folds its
// weighted delta into the accumulator (raw weights — the 1/totalW
// normalization is applied once at the end, when totalW is known) and
// recycles the payload. Peak live payloads shrink from "every upload
// of the round" to the out-of-order window between the cursor and the
// fastest worker. The global model is only read during the round
// (concurrently with broadcast deliveries — also reads) and only
// written in finishFold, after the parallel region and the broadcast
// close.
//
// Determinism: the fold order is the sampling order whatever the
// worker interleaving, and every float operation sequence is fixed, so
// a compressed run is byte-identical across Workers settings and
// backends — it differs from the dense path (which normalizes each
// weight before accumulating), but only by its own fixed rounding.
type folder struct {
	s       *Simulation
	round   int
	sampled []int
	ch      chan int
	done    chan struct{}
	ready   []bool
	touched []bool // per-entry: accumulator region has folds
	timely  int
	totalW  float64
	routed  []routedRow
	// Robust-aggregator staging: coordinate-wise order statistics need
	// every upload's column at once, so under AggMedian/AggTrimmedMean
	// the folder keeps the decoded payloads (still consumed in
	// sampling order — observation order is unchanged) and finishFold
	// runs the shared robust reduce over them. This trades the
	// streaming path's bounded payload residency for robustness; the
	// norm-clip rule has no such trade-off and streams like FedAvg,
	// scaling each fold by its clip factor (the global model is stable
	// for the whole round, so the factor is computable on arrival).
	robust  bool
	stage   []upload
	clipped int64
}

// startFold zeroes the accumulator and launches the round's folder
// goroutine.
func (s *Simulation) startFold(round int, sampled []int) *folder {
	f := &folder{
		s:       s,
		round:   round,
		sampled: sampled,
		ch:      make(chan int, len(sampled)),
		done:    make(chan struct{}),
		ready:   make([]bool, len(sampled)),
		touched: make([]bool, s.global.Params().Len()),
		robust:  s.cfg.Aggregator.robust(),
	}
	mathx.Zero(s.aggBuf)
	go f.run()
	return f
}

// resolve signals that sample index i's outcome is final (s.payloads[i]
// holds the arrival, or nil). Called once per index, from workers; the
// channel send publishes the payload write to the folder goroutine.
func (f *folder) resolve(i int) { f.ch <- i }

func (f *folder) run() {
	defer close(f.done)
	next := 0
	for n := len(f.sampled); next < n; {
		f.ready[<-f.ch] = true
		for next < n && f.ready[next] {
			f.consume(next)
			next++
		}
	}
}

// consume processes one resolved sample index in cursor order:
// observation, straggler exclusion, private-row capture, accumulator
// fold, recycle.
func (f *folder) consume(i int) {
	s := f.s
	payload := s.payloads[i]
	s.payloads[i] = nil
	if payload == nil {
		return // dropped, skipped or lost before arrival
	}
	u := f.sampled[i]
	foldStart := s.cfg.Tracer.Start()
	defer s.cfg.Tracer.Span(s.workers+1, obs.PhaseAggregate, f.round, u, foldStart)
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnUpload(Message{Round: f.round, From: u, Params: payload})
	}
	if s.isStraggler(f.round, u) {
		// Too late for aggregation; the adversary saw it anyway.
		s.stragglers++
		s.pool.Put(payload)
		return
	}
	w := float64(len(s.cfg.Dataset.Train[u]))
	f.timely++
	f.totalW += w
	if f.robust {
		// Stage for the order-statistic reduce; finishFold recycles.
		f.stage = append(f.stage, upload{from: u, payload: payload, weight: w})
		return
	}
	factor := 1.0
	if s.cfg.Aggregator == AggNormClip {
		var clipped bool
		factor, clipped = s.clipFactor(payload)
		if clipped {
			f.clipped++
		}
	}
	gp := s.global.Params()
	for ei := 0; ei < gp.Len(); ei++ {
		ge := gp.At(ei)
		if !payload.Has(ge.Name) {
			continue
		}
		if _, isUserTable := s.privateSet[ge.Name]; isUserTable {
			pe := payload.Entry(ge.Name)
			f.routed = append(f.routed, routedRow{
				name: ge.Name,
				u:    u,
				row:  append([]float64(nil), pe.Data[u*pe.Cols:(u+1)*pe.Cols]...),
			})
			continue
		}
		f.touched[ei] = true
		acc := s.aggBuf[s.aggOff[ei] : s.aggOff[ei]+len(ge.Data)]
		mathx.AxpyDiff(w*factor, payload.Get(ge.Name), ge.Data, acc)
	}
	s.pool.Put(payload)
}

// finishFold waits for the folder to drain, then applies the round's
// aggregate to the global model — unless the timely arrivals missed
// quorum, in which case the accumulator (and the stashed private rows)
// are discarded and the previous global model stands.
func (s *Simulation) finishFold(f *folder, sampled []int) {
	<-f.done
	s.clippedUploads += f.clipped
	if s.cfg.Quorum > 0 && f.timely < int(math.Ceil(s.cfg.Quorum*float64(len(sampled)))) {
		// Quorum miss: keep the previous global model.
		s.quorumMisses++
		s.recycleStage(f)
		return
	}
	if f.timely == 0 {
		return
	}
	if f.robust {
		// The shared order-statistic reduce over the staged uploads
		// (same code as the dense path — streaming robust runs are
		// byte-identical to dense robust runs modulo the codec).
		s.aggregateRobust(f.stage)
		s.recycleStage(f)
		return
	}
	totalW := f.totalW
	if totalW == 0 {
		totalW = 1
	}
	gp := s.global.Params()
	for _, r := range f.routed {
		ge := gp.Entry(r.name)
		copy(ge.Data[r.u*ge.Cols:(r.u+1)*ge.Cols], r.row)
	}
	for ei := 0; ei < gp.Len(); ei++ {
		if !f.touched[ei] {
			continue
		}
		ge := gp.At(ei)
		mathx.Axpy(1/totalW, s.aggBuf[s.aggOff[ei]:s.aggOff[ei]+len(ge.Data)], ge.Data)
	}
}

// recycleStage returns a robust folder's staged payloads to the pool.
func (s *Simulation) recycleStage(f *folder) {
	for i := range f.stage {
		s.pool.Put(f.stage[i].payload)
		f.stage[i].payload = nil
	}
	f.stage = f.stage[:0]
}

// UtilityHR computes the mean leave-one-out hit ratio across users,
// honouring Share-less privacy: each user is evaluated with the global
// model plus their own private rows. The sweep fans out over the worker
// pool with one negative-sampling stream per (seed, round, user), so
// the value is byte-identical for every Workers setting and depends
// only on the seed, the current round and the model — never on how
// often (or whether) earlier rounds were evaluated.
func (s *Simulation) UtilityHR(k, numNeg int) float64 {
	s.beginUtilitySweep()
	evalStart := s.cfg.Tracer.Start()
	hr := s.eval.HR(s.round, s.evalModel, k, numNeg)
	s.cfg.Tracer.Span(s.workers, obs.PhaseEval, s.round, obs.RoundLevel, evalStart)
	return hr
}

// UtilityF1 computes the mean top-k F1 across users, honouring
// Share-less privacy like UtilityHR.
func (s *Simulation) UtilityF1(k int) float64 {
	s.beginUtilitySweep()
	evalStart := s.cfg.Tracer.Start()
	f1 := s.eval.F1(s.evalModel, k)
	s.cfg.Tracer.Span(s.workers, obs.PhaseEval, s.round, obs.RoundLevel, evalStart)
	return f1
}

// beginUtilitySweep marks every worker scratch as stale: training
// rounds reuse the same scratch models, so each worker's first
// evaluated user triggers a full re-sync from the global parameters.
func (s *Simulation) beginUtilitySweep() {
	for w := range s.evalPrev {
		s.evalPrev[w] = -1
	}
}

// evalModel prepares worker w's scratch as the model user u would serve
// recommendations with: the global model overlaid with u's private
// rows. After the first user, only the previous user's private rows are
// restored from the global table instead of re-copying every parameter
// — evaluation never mutates parameters, so the scratch stays a faithful
// copy of the global model elsewhere.
func (s *Simulation) evalModel(w, u int) model.Recommender {
	m := s.scratches[w]
	if s.evalPrev[w] < 0 {
		m.Params().CopyFrom(s.global.Params())
	} else {
		s.restoreGlobalRows(m, s.evalPrev[w])
	}
	s.evalPrev[w] = u
	s.installPrivateRows(m, u)
	return m
}

// restoreGlobalRows undoes installPrivateRows for user u by copying the
// global table's rows back into the scratch model.
func (s *Simulation) restoreGlobalRows(m model.Recommender, u int) {
	for _, name := range s.privateEntries {
		ge := s.global.Params().Entry(name)
		e := m.Params().Entry(name)
		copy(e.Data[u*e.Cols:(u+1)*e.Cols], ge.Data[u*ge.Cols:(u+1)*ge.Cols])
	}
}
