// Package fed simulates Federated Recommender Systems (§III-B): the
// classic FedAvg loop in which selected clients download the global
// model, train locally on their private interactions, and upload their
// models to a central server that aggregates them.
//
// The simulator is single-process and round-synchronous, which is
// exactly the abstraction level of the paper's protocols. The
// honest-but-curious server adversary is modelled with an Observer
// that sees every upload (Alg. 1, line 6).
//
// User-embedding aggregation follows standard FedRec practice: the
// global table takes user u's row from client u's upload (only the
// owner ever trains that row; averaging it with N−1 stale copies would
// dilute it to nothing). All other shared entries aggregate as
// data-size-weighted deltas, i.e. classic FedAvg.
package fed

import (
	"fmt"
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/parx"
)

// Message is one client upload as seen by the server (and therefore by
// a server-side adversary).
type Message struct {
	Round  int
	From   int
	Params *param.Set
}

// Observer receives the traffic a server-side adversary can see.
// msg.Params is only valid for the duration of the OnUpload call: the
// simulator recycles payload storage once the round that produced it
// is aggregated, so implementations must clone anything they retain.
// Calls are always made sequentially from a single goroutine, in the
// round's sampling order (ascending client index under full
// participation; the sampler's draw order under ClientFraction < 1) —
// identical for every Workers setting.
type Observer interface {
	// OnUpload is called for every client upload, before aggregation.
	OnUpload(msg Message)
	// OnRoundEnd is called after aggregation each round.
	OnRoundEnd(round int)
}

// Config parameterizes a federated simulation.
type Config struct {
	Dataset *dataset.Dataset
	Factory model.Factory
	// Policy defaults to defense.FullSharing.
	Policy defense.Policy

	// Rounds is the number of FedAvg rounds (required, > 0).
	Rounds int
	// ClientFraction is the fraction of clients sampled per round
	// (default 1: full participation, as in the paper's FL setting).
	ClientFraction float64
	// DropoutProb is the probability that a sampled client fails mid-
	// round (trains but never uploads — a crash or network partition).
	// The server aggregates whatever arrives; droppers keep their
	// private state. Used for failure-injection testing.
	DropoutProb float64
	// Train is the local-training option template; its Rand field is
	// ignored (each client owns a generator).
	Train model.TrainOptions

	// Workers bounds the number of goroutines running per-client local
	// training concurrently. 0 defaults to runtime.NumCPU(); negative
	// forces serial execution. Results are byte-identical whatever the
	// worker count: every client owns its RNG stream and private state,
	// round-level randomness (sampling, dropout) is drawn before
	// dispatch, and uploads are observed and aggregated in client-index
	// order.
	Workers int

	// Observer optionally receives all uploads (the adversary hook).
	Observer Observer
	// OnRound is called after every round with the live simulation,
	// e.g. to record utility curves.
	OnRound func(round int, s *Simulation)

	Seed uint64
}

func (c *Config) validate() error {
	if c.Dataset == nil {
		return fmt.Errorf("fed: Config.Dataset is required")
	}
	if c.Factory == nil {
		return fmt.Errorf("fed: Config.Factory is required")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("fed: Config.Rounds must be positive, got %d", c.Rounds)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("fed: Config.ClientFraction %v out of [0,1]", c.ClientFraction)
	}
	if c.DropoutProb < 0 || c.DropoutProb >= 1 {
		return fmt.Errorf("fed: Config.DropoutProb %v out of [0,1)", c.DropoutProb)
	}
	return nil
}

// clientState is the per-client persistent state: its RNG and, under
// Share-less, its private (never-shared) user-embedding rows.
type clientState struct {
	rng *rand.Rand
	// privateRows maps private entry name → the client's own row.
	// Empty until first populated; absent entries mean "use global".
	privateRows map[string][]float64
	// lastReceived is the payload the client installed most recently
	// (the Share-less drift reference).
	lastReceived *param.Set
}

// Traffic accumulates protocol communication statistics (client →
// server uploads; the broadcast of the global model is counted once
// per sampled client as the same wire size).
type Traffic struct {
	Messages int
	Bytes    int64
}

// Simulation is a running federated system. Create with New, then call
// Run (or RunRound repeatedly).
type Simulation struct {
	cfg     Config
	global  model.Recommender
	scratch model.Recommender // reusable client/eval workspace (worker 0)
	clients []clientState
	rng     *rand.Rand
	evalRng *rand.Rand
	round   int
	traffic Traffic

	privateEntries []string

	workers   int
	scratches []model.Recommender // per-worker client workspaces
	pool      param.Buffers       // payload free-list
	aggBuf    []float64           // reusable aggregation accumulator
	payloads  []*param.Set        // per-round payload staging, by sample index
	dropped   []bool              // per-round dropout decisions, by sample index
	uploads   []upload            // reusable aggregation input
}

// Traffic returns the accumulated upload statistics.
func (s *Simulation) Traffic() Traffic { return s.traffic }

// New builds a federated simulation from cfg.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = defense.FullSharing{}
	}
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 1
	}
	rng := mathx.NewRand(cfg.Seed)
	global := cfg.Factory(rng.Uint64())
	if global.NumUsers() != cfg.Dataset.NumUsers {
		return nil, fmt.Errorf("fed: model has %d users, dataset has %d",
			global.NumUsers(), cfg.Dataset.NumUsers)
	}
	if global.NumItems() != cfg.Dataset.NumItems {
		return nil, fmt.Errorf("fed: model has %d items, dataset has %d",
			global.NumItems(), cfg.Dataset.NumItems)
	}
	s := &Simulation{
		cfg:            cfg,
		global:         global,
		scratch:        global.Clone(),
		clients:        make([]clientState, cfg.Dataset.NumUsers),
		rng:            rng,
		evalRng:        mathx.NewRand(cfg.Seed ^ 0xabcdef),
		privateEntries: global.PrivateEntries(),
		workers:        parx.Workers(cfg.Workers),
	}
	// A round never runs more concurrent clients than the dataset has
	// users, so don't build scratch models beyond that.
	if s.workers > cfg.Dataset.NumUsers {
		s.workers = cfg.Dataset.NumUsers
	}
	var maxEntry int
	for _, name := range global.Params().Names() {
		if n := len(global.Params().Get(name)); n > maxEntry {
			maxEntry = n
		}
	}
	s.aggBuf = make([]float64, maxEntry)
	s.scratches = []model.Recommender{s.scratch}
	for w := 1; w < s.workers; w++ {
		s.scratches = append(s.scratches, global.Clone())
	}
	for u := range s.clients {
		s.clients[u] = clientState{
			rng:         mathx.Split(rng),
			privateRows: make(map[string][]float64),
		}
	}
	return s, nil
}

// Global returns the live global model (do not mutate).
func (s *Simulation) Global() model.Recommender { return s.global }

// Round returns the number of completed rounds.
func (s *Simulation) Round() int { return s.round }

// Run executes all configured rounds.
func (s *Simulation) Run() {
	for s.round < s.cfg.Rounds {
		s.RunRound()
	}
}

// RunRound executes a single FedAvg round: sample clients, local
// training (on the worker pool), observation, aggregation, callbacks.
//
// Determinism: the round RNG is consumed in exactly the same order as
// a serial round (sampling, then one dropout draw per sampled client),
// every client trains with its own RNG on its own state, and uploads
// are observed and aggregated in the round's sampling order — so the
// outcome is byte-identical for every Workers setting.
func (s *Simulation) RunRound() {
	round := s.round
	n := s.cfg.Dataset.NumUsers
	sampled := s.sampleClients(n)

	// Pre-draw dropout decisions so the shared round RNG is not touched
	// from worker goroutines.
	s.dropped = s.dropped[:0]
	for range sampled {
		s.dropped = append(s.dropped, s.cfg.DropoutProb > 0 && mathx.Bernoulli(s.rng, s.cfg.DropoutProb))
	}

	// Local training, fanned out over the worker pool. Each worker owns
	// a scratch model; each client owns its RNG and private rows.
	s.payloads = s.payloads[:0]
	for range sampled {
		s.payloads = append(s.payloads, nil)
	}
	parx.ForEach(s.workers, len(sampled), func(w, i int) {
		s.payloads[i] = s.clientRound(round, sampled[i], s.scratches[w])
	})

	// Sequential phase: observe and aggregate in client-index order.
	uploads := s.uploads[:0]
	for i, u := range sampled {
		payload := s.payloads[i]
		s.payloads[i] = nil
		if s.dropped[i] {
			// Failure injection: the client crashed before uploading.
			// Its local training (and private state) already happened.
			s.pool.Put(payload)
			continue
		}
		uploads = append(uploads, upload{
			from:    u,
			payload: payload,
			weight:  float64(len(s.cfg.Dataset.Train[u])),
		})
		s.traffic.Messages++
		s.traffic.Bytes += int64(payload.WireBytes())
		if s.cfg.Observer != nil {
			s.cfg.Observer.OnUpload(Message{Round: round, From: u, Params: payload})
		}
	}
	s.aggregate(uploads)
	for i := range uploads {
		s.pool.Put(uploads[i].payload)
		uploads[i].payload = nil
	}
	s.uploads = uploads[:0]
	if s.cfg.Observer != nil {
		s.cfg.Observer.OnRoundEnd(round)
	}
	s.round++
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(round, s)
	}
}

func (s *Simulation) sampleClients(n int) []int {
	if s.cfg.ClientFraction >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := int(s.cfg.ClientFraction * float64(n))
	if k < 1 {
		k = 1
	}
	return mathx.SampleWithoutReplacement(s.rng, n, k)
}

// clientRound simulates client u's round on the given scratch model:
// install the global model (plus persistent private rows), train
// locally, build the outgoing payload via the policy. It touches only
// client u's state, the (read-only) global parameters and the
// concurrency-safe payload pool, so distinct clients may run
// concurrently on distinct scratch models.
func (s *Simulation) clientRound(round, u int, m model.Recommender) *param.Set {
	st := &s.clients[u]
	m.Params().CopyFrom(s.global.Params())
	s.installPrivateRows(m, u)
	st.lastReceived = m.Params().CloneInto(st.lastReceived)

	prev := st.lastReceived // pre-training snapshot (same values)
	opt := s.cfg.Train
	opt.Rand = st.rng
	s.cfg.Policy.PrepareTrain(&opt, m, st.lastReceived)
	m.TrainLocal(s.cfg.Dataset, u, opt)

	s.capturePrivateRows(m, u)
	return s.cfg.Policy.Outgoing(m, prev, st.rng, &s.pool)
}

// installPrivateRows copies the client's persisted private rows into
// the working model (no-op until they have been captured once).
func (s *Simulation) installPrivateRows(m model.Recommender, u int) {
	st := &s.clients[u]
	for _, name := range s.privateEntries {
		row, ok := st.privateRows[name]
		if !ok {
			continue
		}
		e := m.Params().Entry(name)
		copy(e.Data[u*e.Cols:(u+1)*e.Cols], row)
	}
}

// capturePrivateRows persists the client's own private rows after
// training so they survive across rounds even when never shared.
func (s *Simulation) capturePrivateRows(m model.Recommender, u int) {
	st := &s.clients[u]
	for _, name := range s.privateEntries {
		e := m.Params().Entry(name)
		row := st.privateRows[name]
		if row == nil {
			row = make([]float64, e.Cols)
			st.privateRows[name] = row
		}
		copy(row, e.Data[u*e.Cols:(u+1)*e.Cols])
	}
}

// upload is one client's contribution to a round's aggregation.
type upload struct {
	from    int
	payload *param.Set
	weight  float64
}

// aggregate folds the uploads into the global model.
func (s *Simulation) aggregate(uploads []upload) {
	if len(uploads) == 0 {
		return
	}
	var totalW float64
	for _, up := range uploads {
		totalW += up.weight
	}
	if totalW == 0 {
		totalW = 1
	}
	private := make(map[string]struct{}, len(s.privateEntries))
	for _, n := range s.privateEntries {
		private[n] = struct{}{}
	}
	globalParams := s.global.Params()
	for ei := 0; ei < globalParams.Len(); ei++ {
		ge := globalParams.At(ei)
		name := ge.Name
		if _, isUserTable := private[name]; isUserTable {
			// Row routing: take row u from client u's upload (if the
			// policy shared it at all).
			for _, up := range uploads {
				if !up.payload.Has(name) {
					continue
				}
				pe := up.payload.Entry(name)
				u := up.from
				copy(ge.Data[u*ge.Cols:(u+1)*ge.Cols], pe.Data[u*pe.Cols:(u+1)*pe.Cols])
			}
			continue
		}
		// Weighted-delta FedAvg for every other shared entry, accumulated
		// in the reusable round buffer (allocation-free).
		acc := s.aggBuf[:len(ge.Data)]
		mathx.Zero(acc)
		var any bool
		for _, up := range uploads {
			if !up.payload.Has(name) {
				continue
			}
			any = true
			pe := up.payload.Entry(name)
			w := up.weight / totalW
			for i := range acc {
				acc[i] += w * (pe.Data[i] - ge.Data[i])
			}
		}
		if any {
			mathx.Axpy(1, acc, ge.Data)
		}
	}
}

// UtilityHR computes the mean leave-one-out hit ratio across users,
// honouring Share-less privacy: each user is evaluated with the global
// model plus their own private rows.
func (s *Simulation) UtilityHR(k, numNeg int) float64 {
	var sum float64
	var evaluable int
	for u := 0; u < s.cfg.Dataset.NumUsers; u++ {
		m := s.effectiveModel(u)
		if hit, ok := model.HitForUser(m, s.cfg.Dataset, u, k, numNeg, s.evalRng); ok {
			sum += hit
			evaluable++
		}
	}
	if evaluable == 0 {
		return 0
	}
	return sum / float64(evaluable)
}

// UtilityF1 computes the mean top-k F1 across users, honouring
// Share-less privacy like UtilityHR.
func (s *Simulation) UtilityF1(k int) float64 {
	var sum float64
	var evaluable int
	for u := 0; u < s.cfg.Dataset.NumUsers; u++ {
		m := s.effectiveModel(u)
		if f1, ok := model.F1ForUser(m, s.cfg.Dataset, u, k); ok {
			sum += f1
			evaluable++
		}
	}
	if evaluable == 0 {
		return 0
	}
	return sum / float64(evaluable)
}

// effectiveModel returns the model user u would serve recommendations
// with: the global model overlaid with u's private rows.
func (s *Simulation) effectiveModel(u int) model.Recommender {
	s.scratch.Params().CopyFrom(s.global.Params())
	s.installPrivateRows(s.scratch, u)
	return s.scratch
}
