package fed

import (
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

func fedTestDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 30, NumItems: 100, NumCommunities: 3,
		MeanItemsPerUser: 18, MinItemsPerUser: 6, Affinity: 0.9, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	return d
}

func fedConfig(d *dataset.Dataset) Config {
	return Config{
		Dataset: d,
		Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:  5,
		Train:   model.TrainOptions{Epochs: 1},
		Seed:    1,
	}
}

func TestNewValidation(t *testing.T) {
	d := fedTestDataset(t)
	bad := []Config{
		{},
		{Dataset: d},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 4)},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 4), Rounds: 5, ClientFraction: 2},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers+1, d.NumItems, 4), Rounds: 5},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems+1, 4), Rounds: 5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

type countingObserver struct {
	uploads   int
	rounds    int
	senders   map[int]int
	lastRound int
}

func (o *countingObserver) OnUpload(msg Message) {
	o.uploads++
	if o.senders == nil {
		o.senders = map[int]int{}
	}
	o.senders[msg.From]++
	o.lastRound = msg.Round
	if msg.Params == nil || msg.Params.Len() == 0 {
		panic("empty payload")
	}
}
func (o *countingObserver) OnRoundEnd(round int) { o.rounds++ }

func TestFullParticipationObservations(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	obs := &countingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if obs.uploads != d.NumUsers*cfg.Rounds {
		t.Fatalf("uploads = %d, want %d", obs.uploads, d.NumUsers*cfg.Rounds)
	}
	if obs.rounds != cfg.Rounds {
		t.Fatalf("round-end callbacks = %d, want %d", obs.rounds, cfg.Rounds)
	}
	for u := 0; u < d.NumUsers; u++ {
		if obs.senders[u] != cfg.Rounds {
			t.Fatalf("user %d uploaded %d times", u, obs.senders[u])
		}
	}
	if s.Round() != cfg.Rounds {
		t.Fatalf("Round() = %d", s.Round())
	}
}

func TestClientFractionSampling(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.ClientFraction = 0.3
	obs := &countingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := int(0.3*float64(d.NumUsers)) * cfg.Rounds
	if obs.uploads != want {
		t.Fatalf("uploads = %d, want %d", obs.uploads, want)
	}
}

func TestTrainingImprovesUtility(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 25
	cfg.Train.Epochs = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.UtilityHR(10, 30)
	s.Run()
	after := s.UtilityHR(10, 30)
	if after <= before {
		t.Fatalf("FedAvg did not improve HR: %.3f -> %.3f", before, after)
	}
	if after < 0.3 {
		t.Fatalf("HR@10 = %.3f after 25 rounds; training is broken", after)
	}
}

func TestDeterministicRuns(t *testing.T) {
	d := fedTestDataset(t)
	run := func() *param.Set {
		s, err := New(fedConfig(d))
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Global().Params().Clone()
	}
	if !param.Equal(run(), run(), 0) {
		t.Fatal("same seed produced different global models")
	}
}

func TestShareLessNeverLeaksUserEmbeddings(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Policy = defense.ShareLess{Tau: 0.5}
	leak := false
	cfg.Observer = observerFunc(func(msg Message) {
		if msg.Params.Has(model.GMFUserEmb) {
			leak = true
		}
	})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if leak {
		t.Fatal("share-less payload contained user embeddings")
	}
	// Global user table must be untouched (stays at init).
	// Utility must still be computable via private rows.
	if hr := s.UtilityHR(10, 30); hr < 0 || hr > 1 {
		t.Fatalf("share-less utility out of range: %v", hr)
	}
}

type observerFunc func(Message)

func (f observerFunc) OnUpload(msg Message) { f(msg) }
func (observerFunc) OnRoundEnd(int)         {}

func TestShareLessPersistsPrivateRows(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 3
	cfg.Policy = defense.ShareLess{Tau: 0.5}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// After training, private rows must exist and differ from the
	// (never-updated) global user table.
	globalRow := s.Global().Params().Entry(model.GMFUserEmb)
	var differs bool
	for u := 0; u < d.NumUsers; u++ {
		row := s.clients[u].privateRows[model.GMFUserEmb]
		if row == nil {
			t.Fatalf("user %d has no persisted private row", u)
		}
		for k := range row {
			if row[k] != globalRow.Data[u*globalRow.Cols+k] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("private rows identical to global init; persistence broken")
	}
}

func TestDPSGDNoisePreservesShape(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 2
	cfg.Policy = defense.DPSGD{Clip: 2, NoiseMultiplier: 0.5}
	var sawFull bool
	cfg.Observer = observerFunc(func(msg Message) {
		if msg.Params.Has(model.GMFUserEmb) && msg.Params.Has(model.GMFItemEmb) {
			sawFull = true
		}
	})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !sawFull {
		t.Fatal("DP-SGD payload missing entries")
	}
}

func TestOnRoundCallback(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	var rounds []int
	cfg.OnRound = func(round int, s *Simulation) {
		rounds = append(rounds, round)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(rounds) != cfg.Rounds || rounds[0] != 0 || rounds[len(rounds)-1] != cfg.Rounds-1 {
		t.Fatalf("OnRound rounds = %v", rounds)
	}
}

func TestUtilityF1RunsOnPRME(t *testing.T) {
	d := fedTestDataset(t)
	// Re-split for F1 (need multi-item test sets).
	d2, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 30, NumItems: 100, NumCommunities: 3,
		MeanItemsPerUser: 18, MinItemsPerUser: 6, Affinity: 0.9, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2.SplitFraction(0.2)
	_ = d
	cfg := Config{
		Dataset: d2,
		Factory: model.NewPRMEFactory(d2.NumUsers, d2.NumItems, 8),
		Rounds:  3,
		Train:   model.TrainOptions{Epochs: 1},
		Seed:    2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if f1 := s.UtilityF1(10); f1 < 0 || f1 > 1 {
		t.Fatalf("F1 out of range: %v", f1)
	}
}
