package fed

import (
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/transport"
)

// RegisterMetrics installs live views of the simulation's counters
// into reg: the transport's transport_* traffic counters, the
// resilience_* fault accounting (same keys as Resilience.String with
// dashes underscored), the parameter pool's hit/miss counts and —
// when the simulation is traced — the tracer's span volume. The
// registry only ever reads; the simulation stays the owner of every
// counter. No-op on a nil registry.
func (s *Simulation) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	transport.RegisterStats(reg, s.tr)
	res := func(get func(Resilience) int64) func() float64 {
		return func() float64 { return float64(get(s.Resilience())) }
	}
	reg.RegisterFunc("resilience_blackouts", res(func(r Resilience) int64 { return r.BlackoutRounds }))
	reg.RegisterFunc("resilience_deliver_failures", res(func(r Resilience) int64 { return r.DeliverFailures }))
	reg.RegisterFunc("resilience_upload_failures", res(func(r Resilience) int64 { return r.UploadFailures }))
	reg.RegisterFunc("resilience_stragglers", res(func(r Resilience) int64 { return r.Stragglers }))
	reg.RegisterFunc("resilience_quorum_misses", res(func(r Resilience) int64 { return r.QuorumMisses }))
	reg.RegisterFunc("resilience_joins", res(func(r Resilience) int64 { return r.Joins }))
	reg.RegisterFunc("resilience_leaves", res(func(r Resilience) int64 { return r.Leaves }))
	reg.RegisterFunc("resilience_rejoins", res(func(r Resilience) int64 { return r.Rejoins }))
	reg.RegisterFunc("resilience_byzantine_uploads", res(func(r Resilience) int64 { return r.ByzantineUploads }))
	reg.RegisterFunc("resilience_clipped_uploads", res(func(r Resilience) int64 { return r.ClippedUploads }))
	reg.RegisterFunc("param_pool_hits_total", func() float64 {
		h, _ := s.pool.Stats()
		return float64(h)
	})
	reg.RegisterFunc("param_pool_misses_total", func() float64 {
		_, m := s.pool.Stats()
		return float64(m)
	})
	reg.RegisterTracer(s.cfg.Tracer)
}
