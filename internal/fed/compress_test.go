package fed

import (
	"fmt"
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// runCompressed executes a fresh simulation on the named backend at
// the given compression level, recording the adversary's observation
// stream, and returns the simulation plus its final global parameters.
func runCompressed(t *testing.T, cfg Config, backend string, comp param.Compression, log *[]obsEntry) (*Simulation, *param.Set) {
	t.Helper()
	tr, err := transport.NewOptions(backend, transport.Options{Compression: comp})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg.Transport = tr
	if log != nil {
		cfg.Observer = observerFunc(func(msg Message) {
			*log = append(*log, obsEntry{msg.Round, msg.From, msg.Params.L2Norm()})
		})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return s, s.Global().Params().Clone()
}

type obsEntry struct {
	round, from int
	norm        float64
}

// A compressed federated run must be byte-identical across backends
// and worker counts, like the dense golden reference: the streaming
// fold consumes uploads in sampling order whatever the scheduling, and
// every backend applies the same quantization (inproc round-trips the
// codec too). The adversary's observation stream — now emitted from
// the fold goroutine — must also be identical.
func TestCompressedBackendEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	for _, bits := range []int{8, 16} {
		comp := param.Compression{Bits: bits}
		t.Run(comp.String(), func(t *testing.T) {
			cfg := fedConfig(d)
			cfg.Rounds = 3
			cfg.Workers = 1
			var refLog []obsEntry
			refSim, refParams := runCompressed(t, cfg, "inproc", comp, &refLog)
			for _, cell := range []struct {
				backend string
				workers int
			}{
				{"inproc", 4}, {"wire", 1}, {"wire", 4}, {"socket", 4},
			} {
				t.Run(fmt.Sprintf("%s/workers=%d", cell.backend, cell.workers), func(t *testing.T) {
					c := cfg
					c.Workers = cell.workers
					var log []obsEntry
					sim, params := runCompressed(t, c, cell.backend, comp, &log)
					if !param.Equal(refParams, params, 0) {
						t.Fatal("final global params differ from the inproc/workers=1 reference")
					}
					if len(log) != len(refLog) {
						t.Fatalf("observation count %d != %d", len(log), len(refLog))
					}
					for i := range refLog {
						if log[i] != refLog[i] {
							t.Fatalf("observation %d differs: %+v vs %+v", i, log[i], refLog[i])
						}
					}
					if sim.Traffic() != refSim.Traffic() {
						t.Fatalf("traffic %+v != %+v", sim.Traffic(), refSim.Traffic())
					}
				})
			}
		})
	}
}

// The compressed round must actually save wire bytes: the 8-bit
// sparse+delta codec has to move at least 2× fewer upload bytes than
// the dense codec would have (RawBytes is the dense-equivalent
// accounting of the same traffic), and produce a finite model.
func TestCompressedRoundSavesBytes(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 3
	cfg.Workers = 2
	sim, params := runCompressed(t, cfg, "wire", param.Compression{Bits: 8}, nil)
	st := sim.TransportStats()
	if st.RawBytes == 0 || st.Bytes == 0 {
		t.Fatalf("no traffic accounted: %+v", st)
	}
	if st.Bytes*2 > st.RawBytes {
		t.Errorf("compressed uploads moved %d bytes, dense-equivalent %d — want ≥2× saving",
			st.Bytes, st.RawBytes)
	}
	if st.BroadcastBytes*2 > st.RawBroadcastBytes {
		t.Errorf("compressed broadcasts moved %d bytes, dense-equivalent %d — want ≥2× saving",
			st.BroadcastBytes, st.RawBroadcastBytes)
	}
	for i := 0; i < params.Len(); i++ {
		for _, v := range params.At(i).Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("entry %s contains a non-finite value after a compressed run", params.At(i).Name)
			}
		}
	}
}

// Resilience features must compose with the streaming fold: a faulty
// compressed run (lost sends, lost deliveries, stragglers, quorum)
// stays byte-identical across backends and worker counts.
func TestCompressedFaultyRunDeterministic(t *testing.T) {
	d := fedTestDataset(t)
	plan := transport.FaultPlan{Seed: 9, DropProb: 0.1, SendLossProb: 0.1, DeliverLossProb: 0.1, SlowProb: 0.3, SlowLatency: 100}
	comp := param.Compression{Bits: 16}
	run := func(backend string, workers int) (*param.Set, Resilience) {
		tr, err := transport.NewOptions("faulty:"+backend, transport.Options{Compression: comp, Plan: &plan})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		cfg := fedConfig(d)
		cfg.Rounds = 4
		cfg.Workers = workers
		cfg.Transport = tr
		cfg.FaultPlan = &plan
		cfg.StragglerDeadline = 50
		cfg.Quorum = 0.5
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Global().Params().Clone(), s.Resilience()
	}
	refParams, refRes := run("inproc", 1)
	if refRes.UploadFailures+refRes.DeliverFailures+refRes.Stragglers == 0 {
		t.Fatal("fault plan injected nothing — the test is vacuous")
	}
	for _, cell := range []struct {
		backend string
		workers int
	}{{"inproc", 3}, {"wire", 3}, {"socket", 2}} {
		params, res := run(cell.backend, cell.workers)
		if !param.Equal(refParams, params, 0) {
			t.Fatalf("faulty:%s/workers=%d differs from the reference", cell.backend, cell.workers)
		}
		if res != refRes {
			t.Fatalf("faulty:%s resilience %+v != %+v", cell.backend, res, refRes)
		}
	}
}

// Config.Compression and Config.Transport must agree: a conflicting
// pair is rejected, a zero Config.Compression adopts the transport's
// setting, and a nil transport builds a compressed inproc.
func TestCompressionConfigValidation(t *testing.T) {
	d := fedTestDataset(t)
	tr, err := transport.NewOptions("inproc", transport.Options{Compression: param.Compression{Bits: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	cfg := fedConfig(d)
	cfg.Transport = tr
	cfg.Compression = param.Compression{Bits: 16}
	if _, err := New(cfg); err == nil {
		t.Fatal("conflicting Config.Compression and transport codec must be rejected")
	}

	cfg.Compression = param.Compression{}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.cfg.Compression; got.Bits != 8 {
		t.Fatalf("zero Config.Compression must adopt the transport's codec, got %v", got)
	}

	cfg = fedConfig(d)
	cfg.Compression = param.Compression{Bits: 12}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid bit width must be rejected")
	}

	cfg = fedConfig(d)
	cfg.Compression = param.Compression{Bits: 8}
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.tr.Compression(); got.Bits != 8 {
		t.Fatalf("nil transport must build a compressed default, got %v", got)
	}
	s.Run()
}
