package fed

import (
	"fmt"
	"testing"
)

// Property: sampleClients honours ClientFraction exactly — the sample
// has max(1, ⌊fraction·n⌋) clients under partial participation and all
// n in ascending order under full participation — and every draw is
// distinct and in range, across many consecutive rounds of RNG state.
func TestSampleClientsProperties(t *testing.T) {
	d := fedTestDataset(t)
	n := d.NumUsers
	for _, frac := range []float64{0.03, 0.1, 0.34, 0.5, 0.9, 1} {
		t.Run(fmt.Sprintf("fraction=%v", frac), func(t *testing.T) {
			cfg := fedConfig(d)
			cfg.ClientFraction = frac
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantK := int(frac * float64(n))
			if wantK < 1 {
				wantK = 1
			}
			if frac >= 1 {
				wantK = n
			}
			everSampled := make([]bool, n)
			for trial := 0; trial < 300; trial++ {
				sampled := s.sampleClients(n)
				if len(sampled) != wantK {
					t.Fatalf("trial %d: sampled %d clients, want %d", trial, len(sampled), wantK)
				}
				seen := make(map[int]struct{}, len(sampled))
				for i, u := range sampled {
					if u < 0 || u >= n {
						t.Fatalf("trial %d: client %d out of range [0,%d)", trial, u, n)
					}
					if _, dup := seen[u]; dup {
						t.Fatalf("trial %d: client %d sampled twice", trial, u)
					}
					seen[u] = struct{}{}
					everSampled[u] = true
					if frac >= 1 && u != i {
						t.Fatalf("full participation must sample in ascending order, got %v", sampled[:i+1])
					}
				}
			}
			// Ergodicity: over 300 rounds every client should have been
			// sampled at least once (P(miss) < (1-1/n)^300k, astronomically
			// small for the test sizes).
			for u, ok := range everSampled {
				if !ok {
					t.Fatalf("client %d never sampled across 300 rounds", u)
				}
			}
		})
	}
}

// Property: dropout never forges uploads — every upload comes from a
// sampled client, at most one per client per round, and the realized
// dropout rate concentrates near DropoutProb.
func TestDropoutUploadProperties(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 40
	cfg.DropoutProb = 0.3
	perRound := make(map[int]int)
	var uploads, slots int
	cfg.Observer = observerFunc(func(msg Message) {
		if msg.From < 0 || msg.From >= d.NumUsers {
			panic("upload from out-of-range client")
		}
		perRound[msg.From]++
		if perRound[msg.From] > 1 {
			panic("client uploaded twice in one round")
		}
		uploads++
	})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < cfg.Rounds; r++ {
		clear(perRound)
		s.RunRound()
		slots += d.NumUsers
	}
	rate := 1 - float64(uploads)/float64(slots)
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("realized dropout rate %.3f too far from configured 0.3 (%d/%d uploads)",
			rate, uploads, slots)
	}
}
