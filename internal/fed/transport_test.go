package fed

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// runWithTransport executes a fresh simulation from cfg on the named
// transport backend and returns the final global parameters plus the
// per-round HR/F1 utility curves.
func runWithTransport(t *testing.T, cfg Config, backend string) (*Simulation, *param.Set, []float64, []float64) {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg.Transport = tr
	var hr, f1 []float64
	cfg.OnRound = func(round int, s *Simulation) {
		hr = append(hr, s.UtilityHR(10, 20))
		f1 = append(f1, s.UtilityF1(10))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return s, s.Global().Params().Clone(), hr, f1
}

// The tentpole guarantee of the pluggable round transport: for every
// (policy, model, workers) cell, routing all parameter traffic through
// the serializing backends — the wire codec (plain and chunk-framed)
// and the socket RPC path over a loopback Unix-domain socket server —
// produces byte-identical final models, identical utility curves and
// identical upload accounting to the in-memory backend. CI runs this
// under -race, which also exercises concurrent wire encode/decode and
// concurrent RPC round-trips from the worker pool.
func TestTransportBackendEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	policies := map[string]defense.Policy{
		"full":       nil,
		"share-less": defense.ShareLess{Tau: 1},
		"dp-sgd":     defense.DPSGD{Clip: 2, NoiseMultiplier: 0.05},
	}
	models := map[string]model.Factory{
		"gmf":  model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		"prme": model.NewPRMEFactory(d.NumUsers, d.NumItems, 8),
	}
	for pname, policy := range policies {
		for mname, factory := range models {
			for _, workers := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", pname, mname, workers), func(t *testing.T) {
					cfg := fedConfig(d)
					cfg.Policy = policy
					cfg.Factory = factory
					cfg.Rounds = 3
					cfg.Workers = workers
					refSim, refParams, refHR, refF1 := runWithTransport(t, cfg, "inproc")
					for _, backend := range []string{"wire", "wire-chunked", "socket"} {
						sim, params, hr, f1 := runWithTransport(t, cfg, backend)
						if !param.Equal(refParams, params, 0) {
							t.Fatalf("%s final global params differ from inproc", backend)
						}
						for r := range refHR {
							if hr[r] != refHR[r] || f1[r] != refF1[r] {
								t.Fatalf("%s utility curve differs from inproc at round %d", backend, r)
							}
						}
						if sim.Traffic() != refSim.Traffic() {
							t.Fatalf("%s traffic %+v != inproc %+v", backend, sim.Traffic(), refSim.Traffic())
						}
						ws, is := sim.TransportStats(), refSim.TransportStats()
						if ws.BroadcastMessages != is.BroadcastMessages || ws.BroadcastBytes != is.BroadcastBytes {
							t.Fatalf("%s broadcast accounting %+v != inproc %+v", backend, ws, is)
						}
					}
				})
			}
		}
	}
}

// Sampling and dropout consume the shared round RNG before dispatch;
// the wire backend must not perturb that discipline.
func TestTransportEquivalenceWithDropoutAndSampling(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 6
	cfg.ClientFraction = 0.6
	cfg.DropoutProb = 0.2
	cfg.Workers = 3
	refSim, refParams, refHR, _ := runWithTransport(t, cfg, "inproc")
	for _, backend := range []string{"wire", "socket"} {
		sim, params, hr, _ := runWithTransport(t, cfg, backend)
		if !param.Equal(refParams, params, 0) {
			t.Fatalf("%s run differs from inproc under sampling+dropout", backend)
		}
		for r := range refHR {
			if hr[r] != refHR[r] {
				t.Fatalf("%s utility differs at round %d", backend, r)
			}
		}
		if sim.Traffic() != refSim.Traffic() {
			t.Fatalf("%s traffic %+v != %+v", backend, sim.Traffic(), refSim.Traffic())
		}
	}
}

// The adversary's observation stream must be identical under the wire
// backend: same senders, same order, same payload values.
func TestTransportObserverSequence(t *testing.T) {
	d := fedTestDataset(t)
	type seen struct {
		round, from int
		norm        float64
	}
	record := func(backend string) []seen {
		tr, err := transport.New(backend)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		var log []seen
		cfg := fedConfig(d)
		cfg.Workers = 4
		cfg.Transport = tr
		cfg.Observer = observerFunc(func(msg Message) {
			log = append(log, seen{msg.Round, msg.From, msg.Params.L2Norm()})
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return log
	}
	ref := record("inproc")
	for _, backend := range []string{"wire", "wire-chunked", "socket"} {
		got := record(backend)
		if len(ref) != len(got) {
			t.Fatalf("%s observation count %d != inproc %d", backend, len(got), len(ref))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("%s observation %d differs: %+v vs %+v", backend, i, got[i], ref[i])
			}
		}
	}
}

// The fed broadcast is accounted per sampled client, and wire byte
// accounting must agree exactly with the WireBytes predictor.
func TestTransportBroadcastAccounting(t *testing.T) {
	d := fedTestDataset(t)
	tr := transport.NewWire()
	cfg := fedConfig(d)
	cfg.Rounds = 2
	cfg.Transport = tr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	st := tr.Stats()
	wantMsgs := int64(d.NumUsers * cfg.Rounds)
	if st.BroadcastMessages != wantMsgs {
		t.Fatalf("broadcast messages = %d, want %d", st.BroadcastMessages, wantMsgs)
	}
	perMsg := int64(s.Global().Params().WireBytes())
	if st.BroadcastBytes != wantMsgs*perMsg {
		t.Fatalf("broadcast bytes = %d, want %d", st.BroadcastBytes, wantMsgs*perMsg)
	}
	if st.Messages != wantMsgs || st.Bytes != wantMsgs*perMsg {
		t.Fatalf("upload accounting %+v, want %d msgs × %d bytes", st, wantMsgs, perMsg)
	}
}
