package fed

import (
	"testing"

	"github.com/collablearn/ciarec/internal/defense"
)

func TestDropoutReducesUploads(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 10
	cfg.DropoutProb = 0.4
	obs := &countingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	expected := 0.6 * float64(d.NumUsers*cfg.Rounds)
	if got := float64(obs.uploads); got < 0.4*expected || got > 1.4*expected {
		t.Fatalf("uploads = %v, want ~%v under 40%% dropout", got, expected)
	}
	if got := s.Traffic().Messages; got != obs.uploads {
		t.Fatalf("traffic messages %d != observed uploads %d", got, obs.uploads)
	}
}

// Training must still converge (more slowly) despite dropout — the
// federation tolerates crash-stop clients.
func TestDropoutDoesNotBreakTraining(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 25
	cfg.Train.Epochs = 2
	cfg.DropoutProb = 0.3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.UtilityHR(10, 30)
	s.Run()
	after := s.UtilityHR(10, 30)
	if after <= before {
		t.Fatalf("training under dropout did not improve HR: %.3f -> %.3f", before, after)
	}
}

func TestDropoutValidation(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.DropoutProb = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("DropoutProb=1 must be rejected (no uploads ever)")
	}
	cfg.DropoutProb = -0.1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative DropoutProb must be rejected")
	}
}

func TestTrafficAccounting(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tr := s.Traffic()
	if tr.Messages != d.NumUsers*2 {
		t.Fatalf("messages = %d, want %d", tr.Messages, d.NumUsers*2)
	}
	perMsg := s.Global().Params().WireBytes()
	if tr.Bytes != int64(tr.Messages*perMsg) {
		t.Fatalf("bytes = %d, want %d", tr.Bytes, tr.Messages*perMsg)
	}
}

func TestTrafficShrinksUnderShareLess(t *testing.T) {
	d := fedTestDataset(t)
	full := fedConfig(d)
	full.Rounds = 2
	sFull, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	sFull.Run()

	sl := fedConfig(d)
	sl.Rounds = 2
	sl.Policy = defense.ShareLess{Tau: 1}
	sSL, err := New(sl)
	if err != nil {
		t.Fatal(err)
	}
	sSL.Run()

	if sSL.Traffic().Bytes >= sFull.Traffic().Bytes {
		t.Fatalf("share-less should shrink messages: %d >= %d",
			sSL.Traffic().Bytes, sFull.Traffic().Bytes)
	}
}
