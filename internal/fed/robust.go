package fed

import (
	"fmt"
	"math"
	"sort"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/parx"
)

// Aggregator selects the server's aggregation rule. The zero value is
// classic data-size-weighted FedAvg; the robust rules bound what a
// Byzantine minority can do to the aggregate.
type Aggregator int

const (
	// AggFedAvg is the paper's aggregation: data-size-weighted mean of
	// the uploaded deltas. No robustness — a single scaled adversary
	// moves the aggregate arbitrarily.
	AggFedAvg Aggregator = iota
	// AggMedian takes the coordinate-wise median of the uploaded
	// values, one vote per client (weights are ignored: robust
	// statistics and data-size weighting don't compose — a weighted
	// median would let an adversary with a big dataset outvote the
	// honest majority).
	AggMedian
	// AggTrimmedMean sorts each coordinate across uploads, discards the
	// TrimFraction extremes at each end and averages the rest (one vote
	// per client, like AggMedian).
	AggTrimmedMean
	// AggNormClip keeps the weighted FedAvg mean but scales every
	// upload's delta down to an L2 norm of at most ClipNorm first, so
	// no single client can contribute an oversized step.
	AggNormClip
)

// String returns the spec token ParseAggregator accepts.
func (a Aggregator) String() string {
	switch a {
	case AggFedAvg:
		return "fedavg"
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed-mean"
	case AggNormClip:
		return "norm-clip"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// ParseAggregator parses an aggregator name; the empty string selects
// FedAvg (the default).
func ParseAggregator(name string) (Aggregator, error) {
	switch name {
	case "", "fedavg":
		return AggFedAvg, nil
	case "median":
		return AggMedian, nil
	case "trimmed-mean":
		return AggTrimmedMean, nil
	case "norm-clip":
		return AggNormClip, nil
	default:
		return 0, fmt.Errorf("fed: unknown aggregator %q (want fedavg, median, trimmed-mean or norm-clip)", name)
	}
}

// robust reports whether the rule needs every upload staged before it
// can combine them (order statistics need the whole column).
func (a Aggregator) robust() bool { return a == AggMedian || a == AggTrimmedMean }

// trimCount returns how many values to discard from each end of a
// sorted column of m uploads, clamped so at least one value survives.
func trimCount(trim float64, m int) int {
	t := int(trim * float64(m))
	if 2*t >= m {
		t = (m - 1) / 2
	}
	return t
}

// aggregateRobust applies a coordinate-wise order-statistic rule
// (median or trimmed mean) to the uploads: private user-table rows are
// routed exactly like FedAvg (client u is the only voter for its own
// row), and every shared coordinate is replaced by the statistic over
// the uploads that carry the entry. One vote per client — weights are
// deliberately ignored (see Aggregator).
//
// Determinism: chunks partition each entry's coordinates disjointly,
// the per-coordinate gather order is the upload (sampling) order, and
// sort.Float64s is deterministic — so the result is byte-identical for
// every worker count and backend.
func (s *Simulation) aggregateRobust(uploads []upload) {
	globalParams := s.global.Params()
	s.aggChunks = s.aggChunks[:0]
	for ei := 0; ei < globalParams.Len(); ei++ {
		ge := globalParams.At(ei)
		name := ge.Name
		if _, isUserTable := s.privateSet[name]; isUserTable {
			for _, up := range uploads {
				if !up.payload.Has(name) {
					continue
				}
				pe := up.payload.Entry(name)
				u := up.from
				copy(ge.Data[u*ge.Cols:(u+1)*ge.Cols], pe.Data[u*pe.Cols:(u+1)*pe.Cols])
			}
			continue
		}
		var any bool
		for _, up := range uploads {
			if up.payload.Has(name) {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		for lo := 0; lo < len(ge.Data); lo += aggShard {
			hi := lo + aggShard
			if hi > len(ge.Data) {
				hi = len(ge.Data)
			}
			s.aggChunks = append(s.aggChunks, aggChunk{ei: ei, lo: lo, hi: hi})
		}
	}
	trimmed := s.cfg.Aggregator == AggTrimmedMean
	parx.ForEach(s.workers, len(s.aggChunks), func(_, ci int) {
		c := s.aggChunks[ci]
		ge := globalParams.At(c.ei)
		// The carriers of this entry, in upload order, and a per-chunk
		// sort scratch. Robust aggregation trades the FedAvg path's
		// zero-alloc reduce for one small slice pair per chunk.
		cols := make([][]float64, 0, len(uploads))
		for ui := range uploads {
			if uploads[ui].payload.Has(ge.Name) {
				cols = append(cols, uploads[ui].payload.Get(ge.Name))
			}
		}
		vals := make([]float64, len(cols))
		gd := ge.Data[c.lo:c.hi]
		for j := range gd {
			for k, col := range cols {
				vals[k] = col[c.lo+j]
			}
			sort.Float64s(vals)
			m := len(vals)
			if trimmed {
				t := trimCount(s.cfg.TrimFraction, m)
				gd[j] = mathx.Mean(vals[t : m-t])
			} else if m%2 == 1 {
				gd[j] = vals[m/2]
			} else {
				gd[j] = 0.5 * (vals[m/2-1] + vals[m/2])
			}
		}
	})
}

// clipFactor returns the norm-clip scale for one upload: 1 when its
// shared-entry delta (vs the current global model) fits inside
// ClipNorm, ClipNorm/‖Δ‖ otherwise. Private user-table rows are
// excluded — they are routed, not averaged, so clipping them would
// only corrupt the owner's own row.
func (s *Simulation) clipFactor(payload *param.Set) (factor float64, clipped bool) {
	gp := s.global.Params()
	var sq float64
	for ei := 0; ei < gp.Len(); ei++ {
		ge := gp.At(ei)
		if !payload.Has(ge.Name) {
			continue
		}
		if _, isUserTable := s.privateSet[ge.Name]; isUserTable {
			continue
		}
		sq += mathx.SqDist(payload.Get(ge.Name), ge.Data)
	}
	norm := math.Sqrt(sq)
	if norm <= s.cfg.ClipNorm || norm == 0 {
		return 1, false
	}
	return s.cfg.ClipNorm / norm, true
}
