package fed

import (
	"testing"

	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/param"
)

// runWithWorkers executes a fresh simulation from cfg with the given
// worker count and returns the final global parameter set.
func runWithWorkers(t *testing.T, cfg Config, workers int) (*Simulation, *param.Set) {
	t.Helper()
	cfg.Workers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return s, s.Global().Params().Clone()
}

// The round engine's core determinism guarantee: Workers=1 and
// Workers=N produce byte-identical final parameters (tolerance 0),
// identical traffic, and identical per-client private state, for every
// policy family.
func TestSerialParallelEquivalence(t *testing.T) {
	d := fedTestDataset(t)
	policies := map[string]defense.Policy{
		"full":       nil,
		"share-less": defense.ShareLess{Tau: 1},
		"dp-sgd":     defense.DPSGD{Clip: 2, NoiseMultiplier: 0.05},
	}
	for name, policy := range policies {
		t.Run(name, func(t *testing.T) {
			cfg := fedConfig(d)
			cfg.Policy = policy
			serialSim, serial := runWithWorkers(t, cfg, 1)
			parallelSim, parallel := runWithWorkers(t, cfg, 4)
			if !param.Equal(serial, parallel, 0) {
				t.Fatal("Workers=1 and Workers=4 final global params differ")
			}
			if serialSim.Traffic() != parallelSim.Traffic() {
				t.Fatalf("traffic differs: %+v vs %+v", serialSim.Traffic(), parallelSim.Traffic())
			}
			for u := range serialSim.clients {
				sp := serialSim.clients[u].privateRows
				pp := parallelSim.clients[u].privateRows
				if len(sp) != len(pp) {
					t.Fatalf("client %d private-row count differs", u)
				}
				for k, row := range sp {
					prow := pp[k]
					for i := range row {
						if row[i] != prow[i] {
							t.Fatalf("client %d private row %q differs at %d", u, k, i)
						}
					}
				}
			}
		})
	}
}

// Dropout draws come from the shared round RNG; the parallel engine
// must consume that stream exactly like a serial round.
func TestSerialParallelEquivalenceWithDropoutAndSampling(t *testing.T) {
	d := fedTestDataset(t)
	cfg := fedConfig(d)
	cfg.Rounds = 6
	cfg.ClientFraction = 0.6
	cfg.DropoutProb = 0.2
	serialSim, serial := runWithWorkers(t, cfg, 1)
	parallelSim, parallel := runWithWorkers(t, cfg, 3)
	if !param.Equal(serial, parallel, 0) {
		t.Fatal("dropout/sampling run differs between Workers=1 and Workers=3")
	}
	if serialSim.Traffic() != parallelSim.Traffic() {
		t.Fatalf("traffic differs: %+v vs %+v", serialSim.Traffic(), parallelSim.Traffic())
	}
}

// Observers must see the same upload sequence whatever the worker
// count (the CIA adversary's view is part of the reproduced protocol).
func TestParallelObserverSequence(t *testing.T) {
	d := fedTestDataset(t)
	type seen struct {
		round, from int
		norm        float64
	}
	record := func(workers int) []seen {
		var log []seen
		cfg := fedConfig(d)
		cfg.Workers = workers
		cfg.Observer = observerFunc(func(msg Message) {
			log = append(log, seen{msg.Round, msg.From, msg.Params.L2Norm()})
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return log
	}
	serial := record(1)
	parallel := record(4)
	if len(serial) != len(parallel) {
		t.Fatalf("observation count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("observation %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
