package fed

import (
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// utilityCurves runs cfg to completion recording both metrics each
// round via OnRound.
func utilityCurves(t *testing.T, cfg Config, workers int) (hr, f1 []float64) {
	t.Helper()
	cfg.Workers = workers
	cfg.OnRound = func(round int, s *Simulation) {
		hr = append(hr, s.UtilityHR(10, 20))
		f1 = append(f1, s.UtilityF1(10))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return hr, f1
}

// Utility curves must be byte-identical across worker counts — the
// evaluation engine's half of the determinism contract, on top of the
// round engine's (training is already covered by
// TestSerialParallelEquivalence). Share-less exercises the per-worker
// private-row overlay path.
func TestUtilityCurveWorkersInvariance(t *testing.T) {
	d := fedTestDataset(t)
	policies := map[string]defense.Policy{
		"full":       nil,
		"share-less": defense.ShareLess{Tau: 1},
	}
	for name, policy := range policies {
		t.Run(name, func(t *testing.T) {
			cfg := fedConfig(d)
			cfg.Policy = policy
			hr1, f11 := utilityCurves(t, cfg, 1)
			hr4, f14 := utilityCurves(t, cfg, 4)
			for r := range hr1 {
				if hr1[r] != hr4[r] {
					t.Fatalf("round %d: HR differs across workers: %v != %v", r, hr1[r], hr4[r])
				}
				if f11[r] != f14[r] {
					t.Fatalf("round %d: F1 differs across workers: %v != %v", r, f11[r], f14[r])
				}
			}
		})
	}
}

// Regression for the shared-evalRng bug: a round's utility must not
// depend on evaluation history. Recording every round and recording
// only the final round must agree on the final round's value (under the
// old shared generator, the earlier sweeps advanced the stream and
// shifted the final round's negative samples).
func TestUtilityIndependentOfEvalCadence(t *testing.T) {
	d := fedTestDataset(t)

	var everyRound []float64
	cfg := fedConfig(d)
	cfg.OnRound = func(round int, s *Simulation) {
		everyRound = append(everyRound, s.UtilityHR(10, 20))
		s.UtilityF1(10) // extra unrelated evaluation traffic
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	cfg2 := fedConfig(d)
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	lastOnly := s2.UtilityHR(10, 20)

	if got := everyRound[len(everyRound)-1]; got != lastOnly {
		t.Fatalf("final-round utility depends on evaluation cadence: %v (evaluated every round) != %v (evaluated once)", got, lastOnly)
	}
	// And re-evaluating the same round is idempotent.
	if again := s.UtilityHR(10, 20); again != lastOnly {
		t.Fatalf("re-evaluating the same round is not idempotent: %v != %v", again, lastOnly)
	}
}

// shardTestSim builds a simulation whose item table spans several
// reduce shards (600 items × 8 dims > 2 × aggShard).
func shardTestSim(t *testing.T, workers int) *Simulation {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 12, NumItems: 600, NumCommunities: 3,
		MeanItemsPerUser: 20, MinItemsPerUser: 6, Affinity: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	s, err := New(Config{
		Dataset: d,
		Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:  1,
		Train:   model.TrainOptions{Epochs: 1},
		Workers: workers,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The sharded weighted-delta reduce must be byte-identical to the
// serial reduce, including with partial (Share-less-style) payloads
// that skip entries.
func TestAggregateShardedEquivalence(t *testing.T) {
	serial := shardTestSim(t, -1)
	parallel := shardTestSim(t, 4)
	if !param.Equal(serial.Global().Params(), parallel.Global().Params(), 0) {
		t.Fatal("sims start from different globals")
	}

	buildUploads := func(s *Simulation) []upload {
		var ups []upload
		for u := 0; u < 6; u++ {
			payload := s.Global().Params().Clone()
			for _, name := range payload.Names() {
				data := payload.Get(name)
				for i := range data {
					data[i] += float64(u+1) * 0.01 * float64(i%7)
				}
			}
			if u%2 == 1 {
				payload = payload.Without(model.GMFUserEmb)
			}
			ups = append(ups, upload{from: u, payload: payload, weight: float64(u + 1)})
		}
		return ups
	}
	serial.aggregate(buildUploads(serial))
	parallel.aggregate(buildUploads(parallel))
	if !param.Equal(serial.Global().Params(), parallel.Global().Params(), 0) {
		t.Fatal("sharded reduce differs from serial reduce")
	}
}
