package fed

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/model"
)

// Hand-crafted aggregation check: with two uploads of known values and
// known weights, every shared entry must land exactly on the
// weighted-delta FedAvg result, while user-embedding rows route from
// their owners.
func TestAggregateWeightedDeltaMath(t *testing.T) {
	d, err := dataset.New("agg", 2, 4, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dataset: d,
		Factory: model.NewGMFFactory(2, 4, 2),
		Rounds:  1,
		Seed:    1,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	globalBefore := s.Global().Params().Clone()

	// Build two synthetic uploads: global + known per-entry shifts.
	up0 := globalBefore.Clone()
	up1 := globalBefore.Clone()
	for i := range up0.Get(model.GMFOutput) {
		up0.Get(model.GMFOutput)[i] += 1.0
		up1.Get(model.GMFOutput)[i] += 3.0
	}
	// Distinct user rows to verify routing.
	for i := range up0.Get(model.GMFUserEmb) {
		up0.Get(model.GMFUserEmb)[i] = 100
		up1.Get(model.GMFUserEmb)[i] = 200
	}

	s.aggregate([]upload{
		{from: 0, payload: up0, weight: 2}, // user 0 has 2 items
		{from: 1, payload: up1, weight: 1}, // user 1 has 1 item
	})

	// h entry: delta = (2/3)*1 + (1/3)*3 = 5/3.
	after := s.Global().Params()
	for i, v := range after.Get(model.GMFOutput) {
		want := globalBefore.Get(model.GMFOutput)[i] + 5.0/3.0
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("h[%d] = %v, want %v", i, v, want)
		}
	}
	// User rows: row 0 from upload 0, row 1 from upload 1.
	ue := after.Entry(model.GMFUserEmb)
	for k := 0; k < ue.Cols; k++ {
		if ue.Data[0*ue.Cols+k] != 100 {
			t.Fatalf("user row 0 not routed from its owner: %v", ue.Data[0*ue.Cols+k])
		}
		if ue.Data[1*ue.Cols+k] != 200 {
			t.Fatalf("user row 1 not routed from its owner: %v", ue.Data[1*ue.Cols+k])
		}
	}
}

// Entries absent from every payload (Share-less user embeddings) must
// leave the global untouched.
func TestAggregateSkipsMissingEntries(t *testing.T) {
	d, err := dataset.New("agg2", 2, 4, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dataset: d,
		Factory: model.NewGMFFactory(2, 4, 2),
		Rounds:  1,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Global().Params().Clone()
	partial := before.Filter(model.GMFItemEmb) // only item embeddings
	for i := range partial.Get(model.GMFItemEmb) {
		partial.Get(model.GMFItemEmb)[i] += 2
	}
	s.aggregate([]upload{{from: 0, payload: partial, weight: 1}})

	after := s.Global().Params()
	for i, v := range after.Get(model.GMFUserEmb) {
		if v != before.Get(model.GMFUserEmb)[i] {
			t.Fatal("user embeddings changed despite not being shared")
		}
	}
	for i, v := range after.Get(model.GMFItemEmb) {
		if math.Abs(v-(before.Get(model.GMFItemEmb)[i]+2)) > 1e-12 {
			t.Fatal("item embeddings not aggregated")
		}
	}
	for i, v := range after.Get(model.GMFOutput) {
		if v != before.Get(model.GMFOutput)[i] {
			t.Fatal("h changed despite not being shared")
		}
	}
}

// Aggregating zero uploads must be a no-op, not a crash.
func TestAggregateEmptyRound(t *testing.T) {
	d, err := dataset.New("agg3", 2, 4, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dataset: d,
		Factory: model.NewGMFFactory(2, 4, 2),
		Rounds:  1,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Global().Params().Clone()
	s.aggregate(nil)
	if s.Global().Params().L2Norm() != before.L2Norm() {
		t.Fatal("empty aggregation modified the global model")
	}
}
