package fed

import (
	"fmt"
	"testing"
	"time"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// benchSim builds a bench-scale federation (the Table II MovieLens
// sizing) with the given worker count on the default (inproc)
// transport.
func benchSim(b *testing.B, workers int) *Simulation {
	return benchSimOn(b, workers, nil)
}

// benchSimOn is benchSim on an explicit transport backend.
func benchSimOn(b *testing.B, workers int, tr transport.Transport) *Simulation {
	b.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "bench", NumUsers: 140, NumItems: 260,
		NumCommunities: 4, MeanItemsPerUser: 40, MinItemsPerUser: 10,
		Affinity: 0.85, ZipfExponent: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	s, err := New(Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:    1 << 30, // benchmarks drive RunRound directly
		Train:     model.TrainOptions{Epochs: 2},
		Workers:   workers,
		Transport: tr,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchSimTraced is benchSim with the span tracer attached, for
// pricing the observability layer on the hot round path.
func benchSimTraced(b *testing.B, workers int, tracer *obs.Tracer) *Simulation {
	b.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "bench", NumUsers: 140, NumItems: 260,
		NumCommunities: 4, MeanItemsPerUser: 40, MinItemsPerUser: 10,
		Affinity: 0.85, ZipfExponent: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	s, err := New(Config{
		Dataset: d,
		Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:  1 << 30, // benchmarks drive RunRound directly
		Train:   model.TrainOptions{Epochs: 2},
		Workers: workers,
		Tracer:  tracer,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchRound runs one RunRound benchmark cell on the named backend and
// reports payload traffic next to the usual time/allocs: payloadB/round
// is the encoded bytes actually moved (sends + broadcast deliveries),
// rawB/round what the same transfers would cost under the dense codec
// (transport.Stats raw accounting). Dense cells report the two equal;
// compressed cells show the measured wire saving.
func benchRound(b *testing.B, workers int, backend string, comp param.Compression) {
	b.Helper()
	tr, err := transport.NewOptions(backend, transport.Options{Compression: comp})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	s := benchSimOn(b, workers, tr)
	s.RunRound() // warm scratch models, pools (and the conn pool on socket)
	b.ReportAllocs()
	before := tr.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunRound()
	}
	b.StopTimer()
	st := tr.Stats()
	rounds := float64(b.N)
	b.ReportMetric(float64((st.Bytes+st.BroadcastBytes)-(before.Bytes+before.BroadcastBytes))/rounds, "payloadB/round")
	b.ReportMetric(float64((st.RawBytes+st.RawBroadcastBytes)-(before.RawBytes+before.RawBroadcastBytes))/rounds, "rawB/round")
}

// BenchmarkWireRound prices the wire transport against the in-memory
// baseline: one full FedAvg round where every download and upload
// round-trips the binary codec through pooled buffers (140 clients ×
// ~26 KB models each way per round). The wire/inproc gap is the
// serialization tax a multi-process deployment would pay on top of
// training; the c8/c16 cells run the same round through the
// sparse+quantized CPQ1 codec (8/16-bit, delta-coded uploads) and
// report how many payload bytes the round still moves — see
// PERFORMANCE.md for recorded numbers.
func BenchmarkWireRound(b *testing.B) {
	cases := []struct {
		name, backend string
		comp          param.Compression
	}{
		{"inproc", "inproc", param.Compression{}},
		{"wire", "wire", param.Compression{}},
		{"wire-chunked", "wire-chunked", param.Compression{}},
		{"wire/c8", "wire", param.Compression{Bits: 8}},
		{"wire/c16", "wire", param.Compression{Bits: 16}},
	}
	for _, bc := range cases {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", bc.name, workers), func(b *testing.B) {
				benchRound(b, workers, bc.backend, bc.comp)
			})
		}
	}
}

// BenchmarkSocketRound prices the multi-process RPC transport: one
// full FedAvg round where every download and upload is a framed
// request/response round-trip over a loopback Unix-domain socket
// against the in-process rpc.Server — serialization plus syscalls,
// kernel socket buffers and connection-pool traffic. The socket/inproc
// gap is the full single-host IPC tax; compare with BenchmarkWireRound
// to isolate what the socket hop adds on top of the codec. The c8/c16
// cells push the same RPC traffic through the CPQ1 codec — the
// acceptance gauge for the compression work is the socket/c8
// payloadB/round at ≤½ the dense socket cell. See PERFORMANCE.md for
// recorded numbers.
func BenchmarkSocketRound(b *testing.B) {
	cases := []struct {
		name, backend string
		comp          param.Compression
	}{
		{"inproc", "inproc", param.Compression{}},
		{"socket", "socket", param.Compression{}},
		{"socket/c8", "socket", param.Compression{Bits: 8}},
		{"socket/c16", "socket", param.Compression{Bits: 16}},
	}
	for _, bc := range cases {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", bc.name, workers), func(b *testing.B) {
				benchRound(b, workers, bc.backend, bc.comp)
			})
		}
	}
}

// BenchmarkFaultyRound prices the resilience layer: one full FedAvg
// round behind the fault injector — every transfer pays the plan's
// counter-based fault draws, plus straggler-deadline and quorum checks
// in the sequential phase — against the plain inproc baseline. The
// "clean" case runs an all-zero plan (the wrapper installed but every
// probability off) to isolate the pure bookkeeping overhead; "chaos"
// runs the default plan, where the work saved on lost transfers can
// even make rounds cheaper. Latencies are virtual, so no case sleeps.
// See PERFORMANCE.md for recorded numbers.
func BenchmarkFaultyRound(b *testing.B) {
	plans := []struct {
		name string
		plan *transport.FaultPlan
	}{
		{"baseline", nil},
		{"clean", &transport.FaultPlan{Seed: 1}},
		{"chaos", func() *transport.FaultPlan { p := transport.DefaultFaultPlan(); return &p }()},
	}
	for _, pc := range plans {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", pc.name, workers), func(b *testing.B) {
				var tr transport.Transport
				var err error
				if pc.plan == nil {
					tr, err = transport.New("inproc")
				} else {
					tr, err = transport.NewOptions("faulty:inproc", transport.Options{Plan: pc.plan})
				}
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { tr.Close() })
				s := benchSimOn(b, workers, tr)
				s.cfg.FaultPlan = pc.plan
				if pc.plan != nil {
					s.cfg.StragglerDeadline = 100 * time.Millisecond
					s.cfg.Quorum = 0.3
				}
				s.RunRound() // warm scratch models and both pools
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.RunRound()
				}
			})
		}
	}
}

// BenchmarkFedRound measures one full FedAvg round (140 clients × 2
// local epochs plus aggregation) at several worker counts. The
// acceptance target is ≥2× wall-clock at workers=4 vs workers=1 on a
// ≥4-core machine; allocs/op tracks the zero-allocation payload
// pipeline.
func BenchmarkFedRound(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSim(b, workers)
			s.RunRound() // warm scratch models and the payload pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunRound()
			}
		})
	}
}

// BenchmarkObsOverhead prices the observability layer on the hot
// round path: the BenchmarkFedRound workload untraced (nil tracer —
// the disabled recorder's no-op fast path) against fully traced
// (every phase span of every participant recorded into the per-worker
// rings, including ring wraparound at steady state). The acceptance
// budget is <5% wall-clock overhead on/off; PERFORMANCE.md records
// the measured numbers.
func BenchmarkObsOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var tracer *obs.Tracer
			if traced {
				tracer = obs.NewTracer(obs.DefaultSpansPerRing)
			}
			s := benchSimTraced(b, 4, tracer)
			s.RunRound() // warm scratch models and the payload pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunRound()
			}
			b.StopTimer()
			if traced && tracer.Recorded() == 0 {
				b.Fatal("traced cell recorded no spans")
			}
		})
	}
}

// BenchmarkUtilityHR measures one leave-one-out HR@10 sweep (140 users
// × 50 negatives) on the deterministic parallel evaluation engine.
// allocs/op tracks the per-worker scratch discipline: after warm-up a
// sweep allocates O(1) regardless of the user count.
func BenchmarkUtilityHR(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSim(b, workers)
			s.RunRound()
			s.UtilityHR(10, 50) // warm eval scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.UtilityHR(10, 50)
			}
		})
	}
}

// BenchmarkUtilityF1 measures one top-10 F1 sweep (140 users × the full
// 260-item catalogue) on the evaluation engine — the acceptance gauge
// for the parallel eval work: expect ≥2× at workers=4 on a ≥4-core
// machine and ~zero per-user allocations (the seed implementation
// allocated two catalogue-length slices per user per round).
func BenchmarkUtilityF1(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSim(b, workers)
			s.RunRound()
			s.UtilityF1(10) // warm eval scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.UtilityF1(10)
			}
		})
	}
}

// BenchmarkFedAggregate isolates the sharded weighted-delta FedAvg
// reduce at a paper-ish catalogue size (2000 items × dim 16 ≈ 32k-
// element item table, 40 full-model uploads), without the local
// training that dominates BenchmarkFedRound.
func BenchmarkFedAggregate(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
				Name: "agg-bench", NumUsers: 40, NumItems: 2000,
				NumCommunities: 4, MeanItemsPerUser: 40, MinItemsPerUser: 10,
				Affinity: 0.85, ZipfExponent: 0.8, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(Config{
				Dataset: d,
				Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 16),
				Rounds:  1,
				Workers: workers,
				Seed:    1,
			})
			if err != nil {
				b.Fatal(err)
			}
			uploads := make([]upload, d.NumUsers)
			for u := range uploads {
				payload := s.Global().Params().Clone()
				for _, name := range payload.Names() {
					data := payload.Get(name)
					for i := range data {
						data[i] += float64(u+1) * 1e-4
					}
				}
				uploads[u] = upload{from: u, payload: payload, weight: float64(1 + u%5)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.aggregate(uploads)
			}
		})
	}
}
