package mathx

import (
	"math"
	"sort"
)

// ArgsortDesc returns the indices of x ordered by decreasing value.
// Ties break by ascending index so results are deterministic.
func ArgsortDesc(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
	return idx
}

// TopK returns the indices of the k largest values of x in decreasing
// order. k is clamped to len(x).
func TopK(x []float64, k int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return nil
	}
	return ArgsortDesc(x)[:k]
}

// TopKSelect writes the indices of the k largest values of x into dst
// in the exact order TopK returns them (decreasing value, ascending
// index on ties) and returns dst[:min(k, len(x))]. It is the
// allocation-free variant for hot evaluation sweeps: dst must have
// capacity for min(k, len(x)) entries.
//
// The selection runs as one pass over x maintaining a size-k min-heap
// of candidates (O(n log k) instead of the former k full scans), then
// heap-sorts the survivors into the output order. The output is a pure
// function of the values — identical, index for index, to the scan
// implementation — and x is no longer mutated (earlier versions
// consumed selected positions; no caller relied on that).
func TopKSelect(x []float64, k int, dst []int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return dst[:0]
	}
	dst = dst[:k]
	// worse reports whether candidate index a ranks below candidate b:
	// smaller value, or equal value with larger index. The heap keeps
	// the worst kept candidate at the root.
	worse := func(a, b int) bool {
		if x[a] != x[b] {
			return x[a] < x[b]
		}
		return a > b
	}
	siftDown := func(h []int, i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			c := l
			if r := l + 1; r < len(h) && worse(h[r], h[l]) {
				c = r
			}
			if !worse(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := 0; i < k; i++ {
		dst[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(dst, i)
	}
	for i := k; i < len(x); i++ {
		if worse(i, dst[0]) {
			continue
		}
		dst[0] = i
		siftDown(dst, 0)
	}
	// Pop ascending-badness candidates to the tail: the slice ends up
	// ordered best first (decreasing value, ascending index on ties).
	for n := k - 1; n > 0; n-- {
		dst[0], dst[n] = dst[n], dst[0]
		siftDown(dst[:n], 0)
	}
	return dst
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. It panics on an empty slice
// or an out-of-range q. The input is not modified.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("mathx: Quantile q out of [0,1]")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Max returns the maximum of x. It panics on an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of x. It panics on an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation of x
// (0 for slices shorter than 2).
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero entries contribute zero; the vector is assumed normalized.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// BinaryEntropy returns the entropy (nats) of a Bernoulli(p) variable,
// clamping p into (0,1) to stay finite at the boundary.
func BinaryEntropy(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// JaccardInt computes the Jaccard index between two integer sets
// represented as map[int]struct{}. Two empty sets have similarity 0,
// matching the paper's convention that a user with no history belongs
// to no community.
func JaccardInt(a, b map[int]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	var inter int
	for v := range small {
		if _, ok := large[v]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
