package mathx

import (
	"fmt"
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(1)
	c1 := Split(r)
	c2 := Split(r)
	equal := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split children too correlated: %d/64 equal draws", equal)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(7)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(r, 2, 3)
	}
	if m := Mean(xs); math.Abs(m-2) > 0.1 {
		t.Fatalf("sample mean %v, want ~2", m)
	}
	if s := StdDev(xs); math.Abs(s-3) > 0.1 {
		t.Fatalf("sample stddev %v, want ~3", s)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(9)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := Exponential(r, 0.1)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Fatalf("Exp(0.1) sample mean %v, want ~10", mean)
	}
}

func TestZipfTableSkew(t *testing.T) {
	r := NewRand(11)
	z := NewZipfTable(100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Draw(r)
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf draw out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[50] {
		t.Fatal("Zipf(1) should strongly favour low ranks")
	}
	// Theoretical P(0)/P(1) = 2 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("P(0)/P(1) ratio %v, want ~2", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRand(13)
	z := NewZipfTable(10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Fatalf("uniform Zipf bucket %d count %d, want ~10000", k, c)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(17)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {50, 49}} {
		got := SampleWithoutReplacement(r, tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("n=%d k=%d: got %d samples", tc.n, tc.k, len(got))
		}
		seen := map[int]struct{}{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("sample %d out of range [0,%d)", v, tc.n)
			}
			if _, dup := seen[v]; dup {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	SampleWithoutReplacement(NewRand(1), 3, 4)
}

func TestWeightedChoice(t *testing.T) {
	r := NewRand(19)
	w := []float64{0, 0, 1}
	for i := 0; i < 100; i++ {
		if WeightedChoice(r, w) != 2 {
			t.Fatal("WeightedChoice must always pick the only positive weight")
		}
	}
	// All-zero weights fall back to uniform over all indices.
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[WeightedChoice(r, []float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 800 {
			t.Fatalf("all-zero fallback not uniform: bucket %d = %d", i, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(23)
	p := Perm(r, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}

func TestStreamSeedsDeterministicAndDistinct(t *testing.T) {
	lo1, hi1 := StreamSeeds(7, 3, 11)
	lo2, hi2 := StreamSeeds(7, 3, 11)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("StreamSeeds is not a pure function of its inputs")
	}
	// Distinct labels (and orderings) must land on distinct streams.
	seen := make(map[[2]uint64]string)
	add := func(name string, lo, hi uint64) {
		key := [2]uint64{lo, hi}
		if prev, dup := seen[key]; dup {
			t.Fatalf("streams %s and %s collide", prev, name)
		}
		seen[key] = name
	}
	add("base", lo1, hi1)
	for round := uint64(0); round < 8; round++ {
		for user := uint64(0); user < 64; user++ {
			lo, hi := StreamSeeds(1, round, user)
			add(fmt.Sprintf("(1,%d,%d)", round, user), lo, hi)
		}
	}
	// Label order and the seed itself must matter (these tuples are not
	// covered by the sweep above).
	lo, hi := StreamSeeds(1, 100, 2)
	add("(1,100,2)", lo, hi)
	lo, hi = StreamSeeds(1, 2, 100)
	add("(1,2,100)", lo, hi)
	lo, hi = StreamSeeds(2, 2, 3)
	add("(2,2,3)", lo, hi)
}

// The defining property of counter-based streams: a stream's draws
// depend only on its labels, never on how many other streams were
// created or consumed before it.
func TestNewStreamRandHistoryIndependence(t *testing.T) {
	fresh := NewStreamRand(9, 4, 17).Uint64()
	// Burn through unrelated streams and draws, then re-derive.
	for i := uint64(0); i < 50; i++ {
		r := NewStreamRand(9, i, i+1)
		for j := 0; j < 10; j++ {
			r.Uint64()
		}
	}
	if again := NewStreamRand(9, 4, 17).Uint64(); again != fresh {
		t.Fatalf("stream (9,4,17) shifted after unrelated consumption: %d != %d", again, fresh)
	}
}
