package mathx

import (
	"math/rand/v2"
	"testing"
)

// randMatrix fills a rows×cols matrix with standard normals.
func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// batchShapes exercises tails (cols % 4 != 0), tiny dims below the
// unroll width, and catalogue-sized row counts.
var batchShapes = []struct{ rows, cols int }{
	{1, 1}, {3, 2}, {5, 3}, {7, 4}, {16, 5}, {40, 8},
	{255, 7}, {256, 9}, {259, 16}, {1000, 13},
}

// TestGemvBitIdenticalToDot pins the tentpole contract: every batched
// row result equals the scalar Dot of that row, bit for bit, with and
// without bias, for contiguous and gathered row sets.
func TestGemvBitIdenticalToDot(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, sh := range batchShapes {
		m := randMatrix(r, sh.rows, sh.cols)
		v := randVec(r, sh.cols)
		bias := randVec(r, sh.rows)
		dst := make([]float64, sh.rows)

		Gemv(m, v, nil, dst)
		for i := range dst {
			if want := Dot(m.Row(i), v); dst[i] != want {
				t.Fatalf("%dx%d Gemv row %d: %v != Dot %v", sh.rows, sh.cols, i, dst[i], want)
			}
		}
		Gemv(m, v, bias, dst)
		for i := range dst {
			if want := Dot(m.Row(i), v) + bias[i]; dst[i] != want {
				t.Fatalf("%dx%d Gemv+bias row %d: %v != %v", sh.rows, sh.cols, i, dst[i], want)
			}
		}

		rows := make([]int, 0, sh.rows)
		for n := 0; n < sh.rows; n++ {
			rows = append(rows, r.IntN(sh.rows))
		}
		got := make([]float64, len(rows))
		GemvRows(m, rows, v, nil, got)
		for i, row := range rows {
			if want := Dot(m.Row(row), v); got[i] != want {
				t.Fatalf("%dx%d GemvRows[%d]=row %d: %v != %v", sh.rows, sh.cols, i, row, got[i], want)
			}
		}
		GemvRows(m, rows, v, bias, got)
		for i, row := range rows {
			if want := Dot(m.Row(row), v) + bias[row]; got[i] != want {
				t.Fatalf("%dx%d GemvRows+bias[%d]: %v != %v", sh.rows, sh.cols, i, got[i], want)
			}
		}
	}
}

// TestSqDistRowsBitIdenticalToSqDist pins the metric-space kernels to
// the scalar SqDist, bit for bit, in both argument orders.
func TestSqDistRowsBitIdenticalToSqDist(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, sh := range batchShapes {
		m := randMatrix(r, sh.rows, sh.cols)
		v := randVec(r, sh.cols)
		dst := make([]float64, sh.rows)
		SqDistRows(m, v, dst)
		for i := range dst {
			if want := SqDist(v, m.Row(i)); dst[i] != want {
				t.Fatalf("%dx%d SqDistRows row %d: %v != %v", sh.rows, sh.cols, i, dst[i], want)
			}
			if want := SqDist(m.Row(i), v); dst[i] != want {
				t.Fatalf("%dx%d SqDistRows row %d asymmetric: %v != %v", sh.rows, sh.cols, i, dst[i], want)
			}
		}

		rows := []int{sh.rows - 1, 0, sh.rows / 2}
		got := make([]float64, len(rows))
		SqDistRowsGather(m, rows, v, got)
		for i, row := range rows {
			if want := SqDist(v, m.Row(row)); got[i] != want {
				t.Fatalf("%dx%d SqDistRowsGather[%d]: %v != %v", sh.rows, sh.cols, i, got[i], want)
			}
		}
	}
}

func TestDotNormRows(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for _, sh := range batchShapes {
		m := randMatrix(r, sh.rows, sh.cols)
		v := randVec(r, sh.cols)
		rows := []int{0, sh.rows - 1, sh.rows / 3}
		dots := make([]float64, len(rows))
		norms := make([]float64, len(rows))
		DotNormRows(m, rows, v, dots, norms)
		for i, row := range rows {
			if want := Dot(m.Row(row), v); dots[i] != want {
				t.Fatalf("DotNormRows dots[%d]: %v != %v", i, dots[i], want)
			}
			if want := Dot(m.Row(row), m.Row(row)); norms[i] != want {
				t.Fatalf("DotNormRows norms[%d]: %v != %v", i, norms[i], want)
			}
		}
	}
}

func TestElementwiseHelpers(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{0, 1, 3, 4, 7, 129} {
		a, b := randVec(r, n), randVec(r, n)
		dst := make([]float64, n)
		AddInto(a, b, dst)
		for i := range dst {
			if dst[i] != a[i]+b[i] {
				t.Fatalf("AddInto[%d]: %v != %v", i, dst[i], a[i]+b[i])
			}
		}
		// Aliased destination.
		c := append([]float64(nil), a...)
		AddInto(c, b, c)
		for i := range c {
			if c[i] != a[i]+b[i] {
				t.Fatalf("AddInto aliased[%d]: %v != %v", i, c[i], a[i]+b[i])
			}
		}

		SigmoidInto(a, dst)
		for i := range dst {
			if dst[i] != Sigmoid(a[i]) {
				t.Fatalf("SigmoidInto[%d]: %v != %v", i, dst[i], Sigmoid(a[i]))
			}
		}

		s := append([]float64(nil), a...)
		AddScalar(0.25, s)
		for i := range s {
			if s[i] != a[i]+0.25 {
				t.Fatalf("AddScalar[%d]: %v != %v", i, s[i], a[i]+0.25)
			}
		}

		NegScaleInto(0.3, a, dst)
		for i := range dst {
			if dst[i] != -(0.3 * a[i]) {
				t.Fatalf("NegScaleInto[%d]: %v != %v", i, dst[i], -(0.3 * a[i]))
			}
		}
	}
}

func TestBatchKernelPanics(t *testing.T) {
	m := NewMatrix(3, 4)
	v3, v4 := make([]float64, 3), make([]float64, 4)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("Gemv bad vec", func() { Gemv(m, v3, nil, v3) })
	expectPanic("Gemv bad dst", func() { Gemv(m, v4, nil, v4) })
	expectPanic("Gemv bad bias", func() { Gemv(m, v4, v4, v3) })
	expectPanic("GemvRows bad dst", func() { GemvRows(m, []int{0, 1}, v4, nil, v3) })
	expectPanic("SqDistRows bad vec", func() { SqDistRows(m, v3, v3) })
	expectPanic("SqDistRowsGather bad dst", func() { SqDistRowsGather(m, []int{0}, v4, v3) })
	expectPanic("DotNormRows bad dst", func() { DotNormRows(m, []int{0}, v4, v3, make([]float64, 1)) })
	expectPanic("SigmoidInto mismatch", func() { SigmoidInto(v3, v4) })
	expectPanic("AddInto mismatch", func() { AddInto(v3, v4, v4) })
	expectPanic("NegScaleInto mismatch", func() { NegScaleInto(1, v3, v4) })
}
