package mathx

import "fmt"

// Batched scoring kernels: the matrix-vector sweeps behind the
// full-catalogue item scoring of every model family (HR/F1 utility
// sweeps, CIA sender re-scoring, shadow-model evaluation). They replace
// one mathx.Dot call per catalogue item with a single streaming pass
// over the embedding table — row-major traversal with the shared
// vector register/L1-resident is already the cache-optimal access
// pattern for a mat-vec, so the win over the per-item loop is the
// hoisted per-call setup (no Row() slice construction or per-call
// length checks per item) and the callers' per-user precomputation,
// not tiling.
//
// Determinism contract: every kernel accumulates each row in exactly
// the order of its scalar sibling — Gemv/GemvRows/DotNormRows use Dot's
// 4-way independent-accumulator scheme (pairwise combine, see the note
// on Dot), SqDistRows/SqDistRowsGather use SqDist's strictly sequential
// order — so a batched sweep is bit-identical to the per-item loop it
// replaces, row by row, regardless of how many rows a call covers.

// dotRow is Dot without the length check, operating on pre-sliced
// row storage. It must mirror Dot exactly (same unroll, same pairwise
// combine) — the batched kernels' bit-identity contract hangs on it.
func dotRow(row, v []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(row); i += 4 {
		rr := row[i : i+4 : i+4]
		vv := v[i : i+4 : i+4]
		s0 += rr[0] * vv[0]
		s1 += rr[1] * vv[1]
		s2 += rr[2] * vv[2]
		s3 += rr[3] * vv[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(row); i++ {
		s += row[i] * v[i]
	}
	return s
}

// sqDistRow is SqDist without the length check: the strictly sequential
// accumulation order of the scalar kernel, preserved bit for bit.
func sqDistRow(v, row []float64) float64 {
	var s float64
	for i, x := range v {
		d := x - row[i]
		s += d * d
	}
	return s
}

// Gemv computes the dense matrix-vector product dst[i] = Dot(m.Row(i), v)
// (+ bias[i] when bias is non-nil) over every row of m in one streaming
// pass. Each row's accumulation order is identical to Dot, so the
// result is bit-identical to the per-row scalar loop. It panics on
// shape mismatches.
func Gemv(m *Matrix, v, bias, dst []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: Gemv vector length %d != cols %d", len(v), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: Gemv dst length %d != rows %d", len(dst), m.Rows))
	}
	if bias != nil && len(bias) != m.Rows {
		panic(fmt.Sprintf("mathx: Gemv bias length %d != rows %d", len(bias), m.Rows))
	}
	cols := m.Cols
	base := 0
	for i := 0; i < m.Rows; i++ {
		dst[i] = dotRow(m.Data[base:base+cols:base+cols], v)
		base += cols
	}
	if bias != nil {
		AddInto(dst, bias, dst)
	}
}

// GemvRows is the gather form of Gemv: dst[i] = Dot(m.Row(rows[i]), v)
// (+ bias[rows[i]] when bias is non-nil; bias is indexed by row id, the
// item-bias layout of the models). Row ids out of range panic via the
// bounds check on the backing slice. It panics on length mismatches.
func GemvRows(m *Matrix, rows []int, v, bias, dst []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: GemvRows vector length %d != cols %d", len(v), m.Cols))
	}
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("mathx: GemvRows dst length %d != rows length %d", len(dst), len(rows)))
	}
	cols := m.Cols
	if bias == nil {
		for i, r := range rows {
			base := r * cols
			dst[i] = dotRow(m.Data[base:base+cols:base+cols], v)
		}
		return
	}
	for i, r := range rows {
		base := r * cols
		dst[i] = dotRow(m.Data[base:base+cols:base+cols], v) + bias[r]
	}
}

// SqDistRows computes dst[i] = SqDist(v, m.Row(i)) over every row of m
// in one streaming pass. Each row's accumulation is strictly
// sequential, matching SqDist bit for bit (squared differences are
// symmetric, so the argument order of the scalar call is immaterial).
// It panics on shape mismatches.
func SqDistRows(m *Matrix, v, dst []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: SqDistRows vector length %d != cols %d", len(v), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: SqDistRows dst length %d != rows %d", len(dst), m.Rows))
	}
	cols := m.Cols
	base := 0
	for i := 0; i < m.Rows; i++ {
		dst[i] = sqDistRow(v, m.Data[base:base+cols:base+cols])
		base += cols
	}
}

// SqDistRowsGather is the gather form of SqDistRows:
// dst[i] = SqDist(v, m.Row(rows[i])).
func SqDistRowsGather(m *Matrix, rows []int, v, dst []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: SqDistRowsGather vector length %d != cols %d", len(v), m.Cols))
	}
	if len(dst) != len(rows) {
		panic(fmt.Sprintf("mathx: SqDistRowsGather dst length %d != rows length %d", len(dst), len(rows)))
	}
	cols := m.Cols
	for i, r := range rows {
		base := r * cols
		dst[i] = sqDistRow(v, m.Data[base:base+cols:base+cols])
	}
}

// DotNormRows computes, for each gathered row r = m.Row(rows[i]), both
// dots[i] = Dot(r, v) and sqnorms[i] = Dot(r, r) in one pass over the
// row — the pair PRME's norm-adjusted relevance metric 2·v·L − ‖L‖²
// needs. Both accumulations follow Dot's scheme. It panics on length
// mismatches.
func DotNormRows(m *Matrix, rows []int, v, dots, sqnorms []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mathx: DotNormRows vector length %d != cols %d", len(v), m.Cols))
	}
	if len(dots) != len(rows) || len(sqnorms) != len(rows) {
		panic(fmt.Sprintf("mathx: DotNormRows dst lengths %d/%d != rows length %d",
			len(dots), len(sqnorms), len(rows)))
	}
	cols := m.Cols
	for i, r := range rows {
		base := r * cols
		row := m.Data[base : base+cols : base+cols]
		dots[i] = dotRow(row, v)
		sqnorms[i] = dotRow(row, row)
	}
}

// SigmoidInto writes Sigmoid(x[i]) into dst[i]. dst may alias x.
// It panics if the lengths differ.
func SigmoidInto(x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mathx: SigmoidInto length mismatch %d != %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] = Sigmoid(v)
	}
}

// AddInto writes a[i] + b[i] into dst[i]. dst may alias a or b.
// Element updates are independent, so the result is bit-identical to
// the naive loop. It panics if the lengths differ.
func AddInto(a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic(fmt.Sprintf("mathx: AddInto length mismatch %d/%d/%d", len(a), len(b), len(dst)))
	}
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] = aa[0] + bb[0]
		dd[1] = aa[1] + bb[1]
		dd[2] = aa[2] + bb[2]
		dd[3] = aa[3] + bb[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + b[i]
	}
}

// AddScalar adds c to every element of x in place.
func AddScalar(c float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		xx[0] += c
		xx[1] += c
		xx[2] += c
		xx[3] += c
	}
	for ; i < len(x); i++ {
		x[i] += c
	}
}

// NegScaleInto writes -alpha*x[i] into dst[i] — the "negative weighted
// distance" step of metric-embedding scores. dst may alias x.
// It panics if the lengths differ.
func NegScaleInto(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mathx: NegScaleInto length mismatch %d != %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] = -(alpha * v)
	}
}
