package mathx

import "testing"

func TestMatrixRowSetAt(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(1, 1, 7)
	if m.At(1, 1) != 7 {
		t.Fatalf("At(1,1) = %v, want 7", m.At(1, 1))
	}
	row := m.Row(1)
	row[0] = 5 // row is a view, not a copy
	if m.At(1, 0) != 5 {
		t.Fatal("Row must return a mutable view")
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestMatrixCopyFrom(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	b.Set(1, 0, 3)
	a.CopyFrom(b)
	if a.At(1, 0) != 3 {
		t.Fatal("CopyFrom did not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom must panic on shape mismatch")
		}
	}()
	a.CopyFrom(NewMatrix(1, 2))
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, dst)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, dst)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestMatrixBoundsPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.Row(2) },
		func() { m.Row(-1) },
		func() { m.At(0, 2) },
		func() { m.Set(0, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected bounds panic")
				}
			}()
			f()
		}()
	}
}
